// Package repro is a full reimplementation of Nogueira & Pinho,
// "Dynamic QoS-Aware Coalition Formation" (IPPS 2005): QoS-aware
// cooperative service allocation for wireless ad-hoc neighbourhoods of
// heterogeneous devices.
//
// The library lives under internal/ (see DESIGN.md for the module map):
//
//   - internal/qos       — the Section 3 QoS representation, Section 3.1
//     preference-ordered requests, the Section 6 multi-attribute distance
//     and the Section 5 reward function;
//   - internal/resource  — Resource Managers with reservation ledgers;
//   - internal/task      — services, tasks and demand models;
//   - internal/core      — the contribution: proposal formulation,
//     evaluation, winner selection, the Negotiation Organizer / QoS
//     Provider state machines and the coalition life cycle;
//   - internal/sim, internal/radio — deterministic discrete-event engine
//     and the simulated ad-hoc radio medium;
//   - internal/live      — the same protocol over goroutines + channels;
//   - internal/baseline, internal/workload, internal/metrics,
//     internal/xp — baselines, synthetic workloads and the experiment
//     suite (E1–E16, run by a parallel sweep engine; see EXPERIMENTS.md).
//
// Entry points: cmd/qosim (single scenario), cmd/qosbench (experiment
// tables), cmd/qosspec (spec tooling); examples/ holds four runnable
// walkthroughs. The benchmarks in bench_test.go regenerate every
// experiment table via `go test -bench=.`.
package repro
