#!/usr/bin/env bash
# coverage.sh — run the whole test suite with statement coverage, write
# cover.out (CI uploads it as an artifact), and fail if total coverage
# drops below the floor. The floor (82%) sits a few points under the
# measured state at PR 4 (85.6%), so ordinary growth never trips it but
# a PR that lands a subsystem without tests does.
#
# Usage: scripts/coverage.sh [FLOOR_PERCENT] [PROFILE]
set -euo pipefail
cd "$(dirname "$0")/.."

floor="${1:-82}"
profile="${2:-cover.out}"

go test -coverprofile="$profile" -covermode=atomic ./...
total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "coverage: total ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }' || {
  echo "coverage: total ${total}% fell below the ${floor}% floor" >&2
  exit 1
}
