#!/usr/bin/env bash
# docs.sh — the documentation quality gate (CI "docs" job):
#
#   1. go vet across the module (doc files must still compile and pass
#      vet, so examples embedded in package docs stay honest);
#   2. every package must carry package documentation: a "// Package x"
#      (or "// Command x" for mains) doc comment in some non-test file
#      (a dedicated doc.go is the house convention, not enforced here);
#   3. every relative markdown link in *.md must resolve to an existing
#      file or directory (external http(s)/mailto and pure #anchor links
#      are not checked — CI has no network guarantee).
#
# Usage: scripts/docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== go vet =="
go vet ./...

echo "== package documentation =="
while IFS= read -r dir; do
  # Skip directories without non-test Go files.
  files=$(find "$dir" -maxdepth 1 -name '*.go' ! -name '*_test.go' | sort)
  [ -n "$files" ] || continue
  pkg=$(basename "$dir")
  case "$dir" in
    ./internal/*|./cmd/*|.)
      # Library and command packages must carry a conventional doc
      # comment ("// Package x ..." / "// Command x ...").
      if ! grep -l -E '^// (Package|Command) ' $files > /dev/null 2>&1; then
        echo "docs: package $dir has no package documentation (// Package $pkg ...)" >&2
        status=1
      fi
      ;;
    *)
      # Example mains only need a leading doc comment of some form.
      documented=0
      for f in $files; do
        if head -1 "$f" | grep -q '^//'; then
          documented=1
          break
        fi
      done
      if [ "$documented" -eq 0 ]; then
        echo "docs: package $dir has no leading doc comment" >&2
        status=1
      fi
      ;;
  esac
done < <(find . -type d ! -path './.git*' ! -path './testdata*' ! -path '*/testdata*')

echo "== markdown links =="
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Inline links: [text](target). Reference-style and autolinks are rare
  # here; inline covers every link these docs use.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    # Paths resolving outside the repository are GitHub-UI-relative
    # (the CI badge), not files we can check.
    case "$(realpath -m "$dir/$path")" in
      "$PWD"/*) ;;
      *) continue ;;
    esac
    if [ ! -e "$dir/$path" ]; then
      echo "docs: $md links to missing path: $target" >&2
      status=1
    fi
  done < <(grep -oE '\[[^][]*\]\(([^()[:space:]]+)\)' "$md" | sed -E 's/^\[[^][]*\]\(//; s/\)$//')
done < <(find . -name '*.md' ! -path './.git*')

if [ "$status" -eq 0 ]; then
  echo "docs: OK (vet clean, all packages documented, all markdown links resolve)"
fi
exit $status
