#!/usr/bin/env bash
# benchgate.sh — perf-regression gate over the repo's key benchmarks:
#
#   BenchmarkFormulate                    compiled QoS formulation (PR 2)
#   BenchmarkDistanceEval                 compiled distance hot loop (PR 2)
#   BenchmarkOptimal                      branch-and-bound baseline (PR 2)
#   BenchmarkSweepParallel/workers=1      sweep engine, sequential floor (PR 1)
#   BenchmarkCityFabric/shards=8          city fabric weak scaling (PR 4)
#
# Each benchmark runs COUNT times; the per-benchmark *minimum* ns/op
# (the least-noisy statistic for a gate) is compared against the
# committed baseline in scripts/bench_baseline.txt. The gate fails when
# any benchmark's minimum regresses more than THRESHOLD percent beyond
# the baseline — a generous noise margin because the baseline machine
# and the CI runner differ; catastrophic regressions (an accidental
# O(n^2), a lost cache) blow well past it, honest noise does not.
# When benchstat is installed, its statistical report is printed too.
#
# Usage:
#   scripts/benchgate.sh            compare against the committed baseline
#   scripts/benchgate.sh --update   rewrite the baseline from this machine
#
# When a results store (RESULTS.jsonl, see cmd/qostrend) is present and
# STORE_BASELINE=1, the baseline side is rendered from the store's
# newest recorded commit via `qostrend -baseline` instead of the
# committed text file — the gate then tracks the recorded trajectory.
#
# Environment:
#   BENCHTIME       go test -benchtime per run     (default 0.3s)
#   COUNT           repetitions per benchmark      (default 5)
#   THRESHOLD       allowed regression in percent  (default 40)
#   STORE_BASELINE  1 = derive baseline from RESULTS.jsonl via qostrend
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="scripts/bench_baseline.txt"
benchtime="${BENCHTIME:-0.3s}"
count="${COUNT:-5}"
threshold="${THRESHOLD:-40}"

run_gate_benchmarks() {
  go test -run '^$' -benchmem -benchtime "$benchtime" -count "$count" \
    -bench 'BenchmarkFormulate$|BenchmarkDistanceEval$|BenchmarkSweepParallel/workers=1$|BenchmarkCityFabric/shards=8$|BenchmarkSessionsPerSecond/workers=1$' .
  go test -run '^$' -benchmem -benchtime "$benchtime" -count "$count" \
    -bench 'BenchmarkOptimal$' ./internal/baseline
}

if [ "${1:-}" = "--update" ]; then
  run_gate_benchmarks > "$baseline"
  echo "benchgate: baseline rewritten at $baseline" >&2
  exit 0
fi

store_baseline=""
if [ "${STORE_BASELINE:-0}" = "1" ] && [ -f "RESULTS.jsonl" ]; then
  baseline="$(mktemp)"
  store_baseline="$baseline"
  # Keep only the gate's benchmark set: the store records the whole
  # bench.sh suite, and a baseline-only benchmark would fail the gate
  # as "missing from current run".
  go run ./cmd/qostrend -store RESULTS.jsonl -baseline \
    | grep -E '^(BenchmarkFormulate|BenchmarkDistanceEval|BenchmarkOptimal|BenchmarkSweepParallel/workers=1|BenchmarkCityFabric/shards=8|BenchmarkSessionsPerSecond/workers=1) ' > "$baseline"
  echo "benchgate: baseline rendered from RESULTS.jsonl via qostrend" >&2
fi

if [ ! -f "$baseline" ]; then
  echo "benchgate: missing baseline $baseline (generate with scripts/benchgate.sh --update)" >&2
  exit 1
fi

current="$(mktemp)"
trap 'rm -f "$current" "$store_baseline"' EXIT
run_gate_benchmarks | tee "$current" >&2

if command -v benchstat >/dev/null 2>&1; then
  echo "--- benchstat old vs new ---" >&2
  benchstat "$baseline" "$current" >&2 || true
fi

# Gate decision: per-benchmark min ns/op, new vs baseline.
awk -v thr="$threshold" '
function key() { name = $1; sub(/-[0-9]+$/, "", name); return name }
FNR == 1 { file++ }
/^Benchmark/ {
  for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") ns = $i
  k = key()
  if (file == 1) { if (!(k in old) || ns < old[k]) old[k] = ns }
  else           { if (!(k in new) || ns < new[k]) new[k] = ns }
}
END {
  status = 0
  for (k in old) {
    if (!(k in new)) { printf "benchgate: %s missing from current run\n", k; status = 1; continue }
    ratio = new[k] / old[k]
    verdict = "ok"
    if (ratio > 1 + thr / 100) { verdict = "REGRESSION"; status = 1 }
    printf "benchgate: %-40s %12.0f -> %12.0f ns/op  (%+6.1f%%) %s\n", k, old[k], new[k], (ratio - 1) * 100, verdict
  }
  for (k in new) if (!(k in old)) printf "benchgate: %-40s new benchmark, no baseline (run --update)\n", k
  exit status
}
' "$baseline" "$current"

# Admission-policy gate (PR 10): a quick E29 run lands in a throwaway
# results store and every row's optimality-gap column must sit in
# [0, 1]. gap > 1 cannot happen by construction; what this really pins
# is that the gap is present, finite, and that no policy's achieved
# utility ever exceeds the clairvoyant bound (which would read as a
# negative gap before clamping — see xp.optGap — and as a broken bound
# in the fuzz harness).
admit_store="$(mktemp)"
go run ./cmd/qosbench -quick -run E29 -store "$admit_store" >/dev/null
gaps="$(grep '"name":"E29/' "$admit_store" | grep -o '"gap":[0-9.eE+-]*' | cut -d: -f2 || true)"
rm -f "$admit_store"
if [ -z "$gaps" ]; then
  echo "benchgate: E29 store carries no gap column" >&2
  exit 1
fi
for g in $gaps; do
  if ! awk -v g="$g" 'BEGIN { exit !(g >= 0 && g <= 1.0) }'; then
    echo "benchgate: E29 optimality gap $g outside [0, 1]" >&2
    exit 1
  fi
done
echo "benchgate: E29 optimality gaps within [0, 1]: $(echo $gaps | tr '\n' ' ')" >&2
echo "benchgate: PASS (threshold ${threshold}%)" >&2
