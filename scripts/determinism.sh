#!/usr/bin/env bash
# determinism.sh — assert that qosbench emits byte-identical tables at
# -parallel 1 and -parallel 8 for the experiments that exercise each
# layer of the concurrency stack:
#
#   E1   the sweep runner (replication fan-out, PR 1)
#   E17  the open-system session engine under the sweep runner (PR 3)
#   E20  the city fabric's shard pool nested inside the sweep (PR 4)
#   E22-E24  the mid-session adaptation engine, which must stay a pure
#            function of (cluster, config, seed) at any width (PR 5)
#   E25-E27  the chaos experiments: the fault injector and the
#            reliability layer draw only from private seeded rngs, so
#            faulted tables pin like clean ones (PR 7)
#   E29-E30  the admission-policy layer: queue retry timers and yield
#            journals must admit/expire in the same order at any width
#            and on either session loop (PR 10)
#
# Since PR 6 the session engine has two implementations — the pooled
# fast path (default) and the retained -slowpath reference loop — so
# each experiment is checked twice over:
#
#   parallel 1 vs parallel 8      on the pooled fast path
#   fast path vs -slowpath        at parallel 8 (the equivalence gate)
#
# Usage: scripts/determinism.sh [EXPERIMENT...]   (default: E1 E17 E20 E22-E27 E29-E30)
#
# Only wall-clock lines ("elapsed") may differ between runs; any other
# byte is a determinism regression in a worker pool, an accumulator, or
# an experiment body drawing randomness outside its replication's rng —
# or, on the fast-vs-slowpath diff, a pooled object leaking state
# between sessions.
#
# Since PR 8 each invocation also records the flight-recorder trace
# (-trace-out) and the same three-way diff applies to the JSONL traces:
# a trace that differs across pool widths means a journal scope leaked
# between replications; one that differs across session loops means an
# emission site sits on a path only one implementation takes.
set -euo pipefail
cd "$(dirname "$0")/.."

exps=("$@")
if [ "${#exps[@]}" -eq 0 ]; then
  exps=(E1 E17 E20 E22 E23 E24 E25 E26 E27 E29 E30)
fi

bin="$(mktemp -d)/qosbench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/qosbench

status=0
for e in "${exps[@]}"; do
  p1="$(dirname "$bin")/$e.p1.txt"
  p8="$(dirname "$bin")/$e.p8.txt"
  ref="$(dirname "$bin")/$e.slow.txt"
  t1="$(dirname "$bin")/$e.p1.jsonl"
  t8="$(dirname "$bin")/$e.p8.jsonl"
  tref="$(dirname "$bin")/$e.slow.jsonl"
  "$bin" -run "$e" -quick -parallel 1 -trace-out "$t1" | grep -v elapsed > "$p1"
  "$bin" -run "$e" -quick -parallel 8 -trace-out "$t8" | grep -v elapsed > "$p8"
  if diff -u "$p1" "$p8"; then
    echo "determinism: $e OK (parallel 1 == parallel 8)"
  else
    echo "determinism: $e FAILED — table depends on worker-pool width" >&2
    status=1
  fi
  "$bin" -run "$e" -quick -parallel 8 -slowpath -trace-out "$tref" | grep -v elapsed > "$ref"
  if diff -u "$ref" "$p8"; then
    echo "determinism: $e OK (fast path == slowpath reference)"
  else
    echo "determinism: $e FAILED — pooled fast path diverges from the reference loop" >&2
    status=1
  fi
  if cmp -s "$t1" "$t8"; then
    echo "determinism: $e OK (trace parallel 1 == parallel 8, $(wc -l < "$t1") events)"
  else
    echo "determinism: $e FAILED — flight-recorder trace depends on worker-pool width" >&2
    status=1
  fi
  if cmp -s "$tref" "$t8"; then
    echo "determinism: $e OK (trace fast path == slowpath reference)"
  else
    echo "determinism: $e FAILED — trace emission differs between session loops" >&2
    status=1
  fi
done
exit $status
