#!/usr/bin/env bash
# bench.sh — snapshot the hot-path micro-benchmarks and the sweep
# benchmarks into a JSON document for the perf trajectory.
#
# Usage: scripts/bench.sh [OUT.json] [BENCHTIME] [STORE.jsonl]
#
#   OUT.json     output path (default BENCH.json)
#   BENCHTIME    go test -benchtime value (default 1s; use 1x for a smoke
#                run, which is what CI does)
#   STORE.jsonl  optional results store (cmd/qostrend): when given, the
#                snapshot is also appended to it via qostrend -import,
#                extending the recorded trajectory
#
# BENCH_PR2.json in the repo root is the first committed point of this
# trajectory: the same benchmarks captured immediately before and after
# the PR-2 compiled-hot-path refactor. BENCH_PR3.json is the second
# point, adding the E17 open-system sweep. BENCH_PR4.json is the third,
# adding the city-fabric weak-scaling benchmark and the E20 shard sweep.
# BENCH_PR5.json is the fourth, adding the E22 adaptation-under-churn
# sweep. BENCH_PR6.json is the fifth, capturing the pooled session
# engine: the E17 allocation drop and the new sessions-per-second
# weak-scaling benchmark. BENCH_PR8.json is the sixth, adding the sweep
# runner's weak-scaling benchmark and the nil-sink flight-recorder
# overhead benchmark; since PR 8 every snapshot can also land in the
# append-only results store (RESULTS.jsonl) that cmd/qostrend renders.
# BENCH_PR10.json adds the E29 admission-policy sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
benchtime="${2:-1s}"
store="${3:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run_bench() { # pkg, pattern
  go test -run '^$' -bench "$2" -benchmem -benchtime "$benchtime" "$1" | tee -a "$tmp" >&2
}

# Micro-benchmarks of the three compiled inner loops, their pre-compile
# counterparts, the end-to-end E1/E5/E16 sweeps, the E17 open-system
# (session churn) sweep, the city fabric (E20 shard sweep plus the
# weak-scaling benchmark at 1 and 8 shards), and the E22 mid-session
# adaptation sweep, and the sessions-per-second weak-scaling benchmark
# (the pooled engine's throughput headline, at 1 and 8 workers);
# since PR 10 the E29 admission-policy sweep (session engine + the
# clairvoyant bound per replication) rides along.
run_bench . 'BenchmarkFormulate$|BenchmarkFormulateOneShot$|BenchmarkFormulateExhaustive$|BenchmarkDistanceEval$|BenchmarkE1AcceptanceVsNodes$|BenchmarkE5HeuristicVsOptimal$|BenchmarkE16OptimalScaling$|BenchmarkE17OfferedLoad$|BenchmarkE20ShardScaling$|BenchmarkE22AdaptChurn$|BenchmarkE29AdmissionPolicies$|BenchmarkCityFabric/shards=1$|BenchmarkCityFabric/shards=8$|BenchmarkSessionsPerSecond/workers=1$|BenchmarkSessionsPerSecond/workers=8$|BenchmarkSweepParallel/workers=1$|BenchmarkSweepParallel/workers=8$'
run_bench ./internal/qos 'BenchmarkDistance$|BenchmarkDistanceCompiled$|BenchmarkReward$|BenchmarkRewardCompiled$|BenchmarkBuildLadder$'
run_bench ./internal/baseline 'BenchmarkOptimal$|BenchmarkOptimalExhaustive$|BenchmarkOptimalLarge$'
run_bench ./internal/trace 'BenchmarkRecorderNil$|BenchmarkRecorderBufferPoint$'

awk -v commit="$(git describe --always --dirty 2>/dev/null || echo unknown)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gover="$(go version | awk '{print $3}')" '
BEGIN {
  printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {\n", commit, date, gover
  sep = ""
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns = ""; bytes = ""; allocs = ""
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  printf "%s    \"%s\": {\"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s}", sep, name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs
  sep = ",\n"
}
END { printf "\n  }\n}\n" }
' "$tmp" > "$out"

echo "wrote $out" >&2

if [ -n "$store" ]; then
  go run ./cmd/qostrend -store "$store" -import "$out"
fi
