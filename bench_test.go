package repro

// One benchmark per experiment (E1-E19, the repo's "evaluation section";
// the paper publishes no tables or figures, see DESIGN.md and
// EXPERIMENTS.md) plus micro-benchmarks for the hot paths: distance
// evaluation, proposal formulation, winner selection, and a full
// end-to-end formation.
//
// Experiment benchmarks run the Quick configuration once per iteration;
// run cmd/qosbench for the full-size tables. BenchmarkSweepParallel
// measures how the xp sweep engine scales with worker-pool width.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/workload"
	"repro/internal/xp"
)

func benchExperiment(b *testing.B, run func(xp.Config) (*metrics.Table, error)) {
	b.Helper()
	cfg := xp.Config{Seed: 1, Repeats: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1AcceptanceVsNodes(b *testing.B)  { benchExperiment(b, xp.E1AcceptanceVsNodes) }
func BenchmarkE2UtilityVsLoad(b *testing.B)      { benchExperiment(b, xp.E2UtilityVsLoad) }
func BenchmarkE3MessageOverhead(b *testing.B)    { benchExperiment(b, xp.E3MessageOverhead) }
func BenchmarkE4CoalitionSize(b *testing.B)      { benchExperiment(b, xp.E4CoalitionSize) }
func BenchmarkE5HeuristicVsOptimal(b *testing.B) { benchExperiment(b, xp.E5HeuristicVsOptimal) }
func BenchmarkE6SelectionAblation(b *testing.B)  { benchExperiment(b, xp.E6SelectionAblation) }
func BenchmarkE7FailureReconfig(b *testing.B)    { benchExperiment(b, xp.E7FailureReconfig) }
func BenchmarkE8Heterogeneity(b *testing.B)      { benchExperiment(b, xp.E8Heterogeneity) }
func BenchmarkE9DistanceConsistency(b *testing.B) {
	benchExperiment(b, xp.E9DistanceConsistency)
}
func BenchmarkE10LiveVsSim(b *testing.B)          { benchExperiment(b, xp.E10LiveVsSim) }
func BenchmarkE11MobilityStress(b *testing.B)     { benchExperiment(b, xp.E11MobilityStress) }
func BenchmarkE12LossyRadio(b *testing.B)         { benchExperiment(b, xp.E12LossyRadio) }
func BenchmarkE13ConcurrentServices(b *testing.B) { benchExperiment(b, xp.E13ConcurrentServices) }
func BenchmarkE14EnergyDepletion(b *testing.B)    { benchExperiment(b, xp.E14EnergyDepletion) }
func BenchmarkE15QualityUpgrade(b *testing.B)     { benchExperiment(b, xp.E15QualityUpgrade) }
func BenchmarkE16OptimalScaling(b *testing.B)     { benchExperiment(b, xp.E16OptimalScaling) }
func BenchmarkE17OfferedLoad(b *testing.B)        { benchExperiment(b, xp.E17OfferedLoad) }
func BenchmarkE18ArrivalShapes(b *testing.B)      { benchExperiment(b, xp.E18ArrivalShapes) }
func BenchmarkE19CombinedChurn(b *testing.B)      { benchExperiment(b, xp.E19CombinedChurn) }
func BenchmarkE20ShardScaling(b *testing.B)       { benchExperiment(b, xp.E20ShardScaling) }
func BenchmarkE21HotspotImbalance(b *testing.B)   { benchExperiment(b, xp.E21HotspotImbalance) }
func BenchmarkE22AdaptChurn(b *testing.B)         { benchExperiment(b, xp.E22AdaptChurn) }
func BenchmarkE23UpgradeReclamation(b *testing.B) { benchExperiment(b, xp.E23UpgradeReclamation) }
func BenchmarkE24CityAdaptation(b *testing.B)     { benchExperiment(b, xp.E24CityAdaptation) }
func BenchmarkE25LossRetry(b *testing.B)          { benchExperiment(b, xp.E25LossRetry) }
func BenchmarkE26BurstLoss(b *testing.B)          { benchExperiment(b, xp.E26BurstLoss) }
func BenchmarkE27PartitionHeal(b *testing.B)      { benchExperiment(b, xp.E27PartitionHeal) }
func BenchmarkE28InteropTCP(b *testing.B)         { benchExperiment(b, xp.E28InteropTCP) }
func BenchmarkE29AdmissionPolicies(b *testing.B)  { benchExperiment(b, xp.E29AdmissionPolicies) }
func BenchmarkE30QueueVsYieldBurst(b *testing.B)  { benchExperiment(b, xp.E30QueueVsYieldBurst) }

// BenchmarkSweepParallel runs one full-size replication-heavy
// experiment at increasing worker-pool widths. Throughput should scale
// with cores while the emitted table stays bit-identical (asserted in
// internal/xp's determinism test).
func BenchmarkSweepParallel(b *testing.B) {
	widths := []int{1, 2, 4, runtime.NumCPU()}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := xp.Config{Seed: 1, Repeats: 5, Parallel: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tbl, err := xp.E1AcceptanceVsNodes(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(tbl.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// BenchmarkCityFabric measures the fabric's weak scaling: every shard
// carries the same fixed load (2 erlangs on 16 nodes), so an N-shard
// city simulates N times the work of a single neighbourhood. Because
// shards are independent deterministic sub-simulations fanned out over
// the worker pool, wall time should stay near-flat up to the core count
// while simulated sessions per wall-second — the sessions/s metric —
// grows near-linearly in the shard count.
func BenchmarkCityFabric(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := fabric.Config{
				City: workload.CityScenario{
					Rows: 1, Cols: shards, NodesPerShard: 16,
					TotalRate: 0.05 * float64(shards), Profile: workload.CityUniform,
				},
				Template:  workload.SessionTemplate{Name: "bench-city", Tasks: 3, Scale: 1.0},
				HoldMean:  40,
				Horizon:   300,
				Warmup:    60,
				Organizer: core.DefaultOrganizerConfig,
				Parallel:  runtime.NumCPU(),
				Seed:      1,
			}
			b.ReportAllocs()
			var sessions int
			for i := 0; i < b.N; i++ {
				res, err := fabric.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sessions = res.City.Arrivals
			}
			b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		})
	}
}

// BenchmarkSessionsPerSecond is the repo's throughput headline: how
// many complete session lifecycles (arrival, negotiation, operation,
// departure) the pooled engine simulates per wall-clock second. The
// sweep is weak-scaling — workers=N drives N independent 16-node
// neighbourhoods, each under the same fixed load, across N pool
// workers — so sessions/s should grow near-linearly in N up to the core
// count while ns/op stays near-flat. workers=1 is the single-engine
// figure the PR-6 pooling targeted; scripts/benchgate.sh gates
// workers=1 against the committed baseline.
func BenchmarkSessionsPerSecond(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := fabric.Config{
				City: workload.CityScenario{
					Rows: 1, Cols: workers, NodesPerShard: 16,
					TotalRate: 0.1 * float64(workers), Profile: workload.CityUniform,
				},
				Template:  workload.SessionTemplate{Name: "bench-sps", Tasks: 2, Scale: 1.0},
				HoldMean:  30,
				Horizon:   600,
				Warmup:    60,
				Organizer: core.DefaultOrganizerConfig,
				Parallel:  workers,
				Seed:      1,
			}
			b.ReportAllocs()
			var sessions int
			for i := 0; i < b.N; i++ {
				res, err := fabric.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sessions = res.City.Arrivals
			}
			if sessions == 0 {
				b.Fatal("no sessions simulated")
			}
			b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		})
	}
}

// --- micro-benchmarks ---

// BenchmarkDistanceEval measures one Section 6 multi-attribute
// evaluation (the organizer's inner loop).
func BenchmarkDistanceEval(b *testing.B) {
	spec := workload.VideoSpec()
	req := workload.SurveillanceRequest()
	eval, err := qos.NewEvaluator(spec, &req)
	if err != nil {
		b.Fatal(err)
	}
	level := qos.Level{
		{Dim: "video", Attr: "frame_rate"}:    qos.Int(7),
		{Dim: "video", Attr: "color_depth"}:   qos.Int(1),
		{Dim: "audio", Attr: "sampling_rate"}: qos.Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   qos.Int(8),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Distance(level); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormulate measures the Section 5 degradation heuristic under
// moderate scarcity — the provider's inner loop. Providers compile a
// CFP task once and reuse the compiled problem across rounds and
// concurrent negotiations, so the steady-state cost is cp.Formulate on
// cached tables; BenchmarkFormulateOneShot prices the cold path.
func BenchmarkFormulate(b *testing.B) {
	spec := workload.VideoSpec()
	req := workload.StreamingRequest("b")
	dm := workload.VideoDemand(1)
	capacity := workload.PDA.Capacity
	avail := func(d resource.Vector) bool { return d.Fits(capacity) }
	cp, err := core.CompileProblem(spec, &req, dm, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Formulate(avail); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormulateOneShot includes ladder construction and table
// compilation in every iteration (a cache-miss CFP task).
func BenchmarkFormulateOneShot(b *testing.B) {
	spec := workload.VideoSpec()
	req := workload.StreamingRequest("b")
	dm := workload.VideoDemand(1)
	capacity := workload.PDA.Capacity
	avail := func(d resource.Vector) bool { return d.Fits(capacity) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Formulate(spec, &req, dm, avail, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormulateExhaustive measures the optimal formulator that E5
// compares against.
func BenchmarkFormulateExhaustive(b *testing.B) {
	spec := workload.VideoSpec()
	req := workload.StreamingRequest("b")
	dm := workload.VideoDemand(1)
	capacity := workload.PDA.Capacity
	avail := func(d resource.Vector) bool { return d.Fits(capacity) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FormulateExhaustive(spec, &req, dm, avail, 3, nil, 1<<21); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectWinners measures winner selection over 64 candidates x
// 8 tasks with the full three-criteria policy.
func BenchmarkSelectWinners(b *testing.B) {
	var tasks []string
	cands := make(map[string][]core.Candidate)
	level := qos.Level{{Dim: "d", Attr: "a"}: qos.Int(1)}
	for t := 0; t < 8; t++ {
		tid := string(rune('a' + t))
		tasks = append(tasks, tid)
		for n := 0; n < 64; n++ {
			cands[tid] = append(cands[tid], core.Candidate{
				Node: radio.NodeID(n), TaskID: tid, Level: level,
				Distance: float64(n%7) * 0.03, CommCost: float64(n%5) * 0.01, Copies: 2 + n%3,
			})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := core.SelectWinners(tasks, cands, core.DefaultPolicy)
		if len(sel.Assigned) == 0 {
			b.Fatal("no assignment")
		}
	}
}

// BenchmarkFormation measures one complete negotiation (CFP through
// awards and acks) on a 16-node simulated neighbourhood.
func BenchmarkFormation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scfg := workload.DefaultScenario(int64(i))
		sc, err := workload.Build(scfg)
		if err != nil {
			b.Fatal(err)
		}
		svc := workload.StreamService("bench", 4, 1.0)
		done := false
		if _, err := sc.Cluster.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(*core.Result) {
			done = true
		}); err != nil {
			b.Fatal(err)
		}
		sc.Cluster.Run(10)
		if !done {
			b.Fatal("formation incomplete")
		}
	}
}

// BenchmarkReservationChurn measures the resource substrate under
// reserve/release pressure.
func BenchmarkReservationChurn(b *testing.B) {
	set := resource.NewSet(workload.Laptop.Capacity)
	demand := resource.V(resource.KV{K: resource.CPU, A: 10}, resource.KV{K: resource.Memory, A: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := set.Reserve("bench", demand); err != nil {
			b.Fatal(err)
		}
		set.Release("bench")
	}
}
