package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 1 || o.repeats != 5 || o.quick || o.csv || o.run != "" || o.jsonPath != "" {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if o.parallel != runtime.NumCPU() {
		t.Errorf("default parallel = %d, want NumCPU = %d", o.parallel, runtime.NumCPU())
	}
}

func TestParseFlagsAll(t *testing.T) {
	o, err := parseFlags([]string{
		"-seed", "7", "-repeats", "3", "-quick", "-csv",
		"-run", "E1,E5", "-parallel", "8", "-json", "out.json",
		"-trace-out", "trace.jsonl", "-store", "results.jsonl",
		"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := options{seed: 7, repeats: 3, quick: true, csv: true,
		run: "E1,E5", parallel: 8, jsonPath: "out.json",
		traceOut: "trace.jsonl", storePath: "results.jsonl",
		cpuProfile: "cpu.pprof", memProfile: "mem.pprof"}
	if *o != want {
		t.Errorf("got %+v, want %+v", *o, want)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-parallel", "0"},
		{"-repeats", "0"},
		{"-nonsense"},
		{"stray-positional"},
	} {
		var errw bytes.Buffer
		if _, err := parseFlags(args, &errw); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		} else if errw.Len() == 0 {
			t.Errorf("parseFlags(%v) reported nothing to errw", args)
		}
	}
	// -h is help, not an invalid invocation.
	if _, err := parseFlags([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("")
	if err != nil || len(all) != 30 {
		t.Fatalf("default selection: %d experiments, err %v", len(all), err)
	}
	two, err := selectExperiments("E5, E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].ID != "E5" || two[1].ID != "E1" {
		t.Errorf("filtered selection wrong: %+v", two)
	}
	if _, err := selectExperiments("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

// TestRunSuiteParallelIdenticalOutput is the CLI-level determinism
// check behind the -parallel flag: the printed tables are byte-identical
// at widths 1 and 8, and the JSON document carries every requested
// experiment with a wall time.
func TestRunSuiteParallelIdenticalOutput(t *testing.T) {
	outputs := map[int]string{}
	var res *metrics.Results
	exps, err := selectExperiments("E1,E5")
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 8} {
		var out, errw bytes.Buffer
		o := &options{seed: 1, repeats: 2, quick: true, run: "E1,E5", parallel: par}
		r, failed := runSuite(o, exps, nil, &out, &errw)
		if failed != 0 {
			t.Fatalf("parallel=%d: %d failures: %s", par, failed, errw.String())
		}
		// Strip the wall-clock elapsed lines; everything else must match.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if !strings.HasPrefix(line, "# elapsed:") {
				kept = append(kept, line)
			}
		}
		outputs[par] = strings.Join(kept, "\n")
		res = r
	}
	if outputs[1] != outputs[8] {
		t.Errorf("output differs between -parallel 1 and -parallel 8:\n--- 1 ---\n%s\n--- 8 ---\n%s",
			outputs[1], outputs[8])
	}
	if len(res.Experiments) != 2 || res.Experiments[0].ID != "E1" || res.Experiments[1].ID != "E5" {
		t.Fatalf("results document experiments wrong: %+v", res.Experiments)
	}
	for _, e := range res.Experiments {
		if e.WallSeconds <= 0 {
			t.Errorf("%s: wall time %v not recorded", e.ID, e.WallSeconds)
		}
		if e.Table == nil || len(e.Table.Rows) == 0 {
			t.Errorf("%s: table missing from document", e.ID)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("results document does not marshal: %v", err)
	}
}

// TestSuiteTraceAndStoreArtifacts runs a traced quick suite twice —
// parallel 1 and 8 — and checks the CLI-level flight-recorder
// contract: the journal serializes to identical JSONL at both widths,
// and writeArtifacts lands the trace file plus one store entry per
// experiment-table row (and wall-time entry).
func TestSuiteTraceAndStoreArtifacts(t *testing.T) {
	dir := t.TempDir()
	exps, err := selectExperiments("E17,E26")
	if err != nil {
		t.Fatal(err)
	}
	render := func(par int) (string, *metrics.Results) {
		journal := trace.NewJournal()
		o := &options{seed: 1, repeats: 2, quick: true, parallel: par,
			traceOut: filepath.Join(dir, "trace.jsonl"), storePath: filepath.Join(dir, "results.jsonl")}
		res, failed := runSuite(o, exps, journal, io.Discard, io.Discard)
		if failed != 0 {
			t.Fatalf("parallel=%d: %d failures", par, failed)
		}
		var buf bytes.Buffer
		if err := journal.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if err := writeArtifacts(o, res, journal); err != nil {
			t.Fatal(err)
		}
		return buf.String(), res
	}
	trace1, _ := render(1)
	trace8, res := render(8)
	if trace1 == "" {
		t.Fatal("traced suite recorded nothing")
	}
	if trace1 != trace8 {
		t.Error("suite trace differs between -parallel 1 and 8")
	}
	for _, scope := range []string{`"scope":"E17/0000"`, `"scope":"E26/0000"`} {
		if !strings.Contains(trace1, scope) {
			t.Errorf("trace missing %s", scope)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != trace8 {
		t.Error("trace file does not match the journal serialization")
	}

	entries, err := metrics.ReadStore(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// Two renders appended twice; each suite contributes rows+wall per
	// experiment.
	want := 2 * len(res.Entries("qosbench"))
	if len(entries) != want {
		t.Fatalf("store entries = %d, want %d", len(entries), want)
	}
	found := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name, "E17/") && e.Kind == "experiment" {
			found = true
		}
	}
	if !found {
		t.Error("store has no E17 experiment rows")
	}
}
