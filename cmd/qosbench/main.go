// Command qosbench regenerates every experiment table of the
// reproduction (this repository's "evaluation section"; the paper itself
// publishes no tables or figures — see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	qosbench [-seed N] [-repeats N] [-quick] [-csv] [-run E1,E7]
//	         [-parallel N] [-json FILE]
//
// -parallel fans each experiment's replications and sweep points out
// across a bounded worker pool; tables are bit-identical at every width
// because every replication owns a rand.Rand seeded with seed+r and
// aggregation is ordered. The city experiments (E20-E21) reuse the same
// width for the fabric's shard pool one level down — shard s derives
// every draw from a fixed hash of (seed, s), so their city-wide tables
// carry the identical guarantee (scripts/determinism.sh enforces it in
// CI). -json additionally writes a machine-readable results document
// (run metadata, config, and per-experiment wall time) for recording
// benchmark trajectories across commits; FILE may be "-" for stdout.
//
// Observability flags:
//
//	-trace-out FILE   collect every replication's flight-recorder
//	                  events (experiments that support tracing) into a
//	                  journal and write it as JSONL; the bytes are
//	                  identical at any -parallel width and with
//	                  -slowpath (scripts/determinism.sh diffs them)
//	-store FILE       append the run's experiment metrics to the
//	                  results-store JSONL (rendered by cmd/qostrend)
//	-cpuprofile FILE  write a pprof CPU profile of the suite run
//	-memprofile FILE  write a pprof heap profile taken after the run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/xp"
)

// options is the parsed command line.
type options struct {
	seed     int64
	repeats  int
	quick    bool
	csv      bool
	run      string
	parallel int
	jsonPath string
	slowpath bool

	traceOut   string
	storePath  string
	cpuProfile string
	memProfile string
}

// parseFlags parses args (without the program name) into options.
// Parse and validation errors are reported to errw exactly once; the
// returned error is for flow control only.
func parseFlags(args []string, errw io.Writer) (*options, error) {
	fs := flag.NewFlagSet("qosbench", flag.ContinueOnError)
	fs.SetOutput(errw)
	o := &options{}
	fs.Int64Var(&o.seed, "seed", 1, "base random seed")
	fs.IntVar(&o.repeats, "repeats", 5, "seeds averaged per sweep point")
	fs.BoolVar(&o.quick, "quick", false, "shrink sweeps for a fast pass")
	fs.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned text")
	fs.StringVar(&o.run, "run", "", "comma-separated experiment IDs (default: all)")
	fs.IntVar(&o.parallel, "parallel", runtime.NumCPU(), "worker-pool width for replications (1 = sequential; output is identical at any width)")
	fs.StringVar(&o.jsonPath, "json", "", "write a JSON results document to FILE (\"-\" = stdout, suppressing the text tables)")
	fs.BoolVar(&o.slowpath, "slowpath", false, "drive the open-system experiments on the reference (unpooled) session loop; tables are bit-identical to the default fast path")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the suite's flight-recorder trace as JSONL to FILE")
	fs.StringVar(&o.storePath, "store", "", "append experiment metrics to the results-store JSONL at FILE")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to FILE")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to FILE (taken after the run)")
	if err := fs.Parse(args); err != nil {
		return nil, err // fs has already printed the error and usage
	}
	fail := func(format string, a ...any) (*options, error) {
		err := fmt.Errorf(format, a...)
		fmt.Fprintln(errw, err)
		return nil, err
	}
	if o.parallel < 1 {
		return fail("qosbench: -parallel must be >= 1, got %d", o.parallel)
	}
	if o.repeats < 1 {
		return fail("qosbench: -repeats must be >= 1, got %d", o.repeats)
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fail("qosbench: unexpected arguments %q", rest)
	}
	return o, nil
}

// selectExperiments resolves the -run filter against the suite.
func selectExperiments(run string) ([]xp.Experiment, error) {
	if run == "" {
		return xp.All(), nil
	}
	var filtered []xp.Experiment
	for _, id := range strings.Split(run, ",") {
		e, err := xp.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		filtered = append(filtered, e)
	}
	return filtered, nil
}

// runSuite executes exps, prints tables to out, and returns the results
// document plus the number of failed experiments. A non-nil journal
// switches the flight recorder on: every experiment records under its
// own ID as the scope group.
func runSuite(o *options, exps []xp.Experiment, journal *trace.Journal, out, errw io.Writer) (*metrics.Results, int) {
	cfg := xp.Config{Seed: o.seed, Repeats: o.repeats, Quick: o.quick, Parallel: o.parallel, SlowPath: o.slowpath}
	cfg.Trace = journal
	res := metrics.NewResults("qosbench", map[string]any{
		"seed": o.seed, "repeats": o.repeats, "quick": o.quick,
		"parallel": o.parallel, "run": o.run,
	})
	suiteStart := time.Now()
	failed := 0
	for _, e := range exps {
		start := time.Now()
		cfg.TraceGroup = e.ID
		table, err := e.Run(cfg)
		elapsed := time.Since(start)
		res.Add(e.ID, e.Title, e.Claim, elapsed, table, err)
		if err != nil {
			fmt.Fprintf(errw, "%s %s: %v\n", e.ID, e.Title, err)
			failed++
			continue
		}
		fmt.Fprintf(out, "# %s — %s\n# claim: %s\n", e.ID, e.Title, e.Claim)
		if o.csv {
			fmt.Fprint(out, table.CSV())
		} else {
			fmt.Fprint(out, table.String())
		}
		fmt.Fprintf(out, "# elapsed: %v\n\n", elapsed.Round(time.Millisecond))
	}
	res.WallSeconds = time.Since(suiteStart).Seconds()
	return res, failed
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	exps, err := selectExperiments(o.run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// With -json - the document owns stdout; route the text tables away
	// so the output stays parseable.
	var out io.Writer = os.Stdout
	if o.jsonPath == "-" {
		out = io.Discard
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var journal *trace.Journal
	if o.traceOut != "" {
		journal = trace.NewJournal()
	}
	res, failed := runSuite(o, exps, journal, out, os.Stderr)
	if err := writeArtifacts(o, res, journal); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeArtifacts emits the post-run documents: the JSON results file,
// the trace JSONL, the results-store entries, and the heap profile.
func writeArtifacts(o *options, res *metrics.Results, journal *trace.Journal) error {
	if o.jsonPath != "" {
		if err := res.WriteFile(o.jsonPath); err != nil {
			return err
		}
	}
	if journal != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := journal.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.storePath != "" {
		store, err := metrics.OpenJSONLStore(o.storePath)
		if err != nil {
			return err
		}
		for _, e := range res.Entries("qosbench") {
			if err := store.Record(e); err != nil {
				store.Close()
				return err
			}
		}
		if err := store.Close(); err != nil {
			return err
		}
	}
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
