// Command qosbench regenerates every experiment table of the
// reproduction (this repository's "evaluation section"; the paper itself
// publishes no tables or figures — see DESIGN.md).
//
// Usage:
//
//	qosbench [-seed N] [-repeats N] [-quick] [-csv] [-run E1,E7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/xp"
)

func main() {
	seed := flag.Int64("seed", 1, "base random seed")
	reps := flag.Int("repeats", 5, "seeds averaged per sweep point")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	flag.Parse()

	cfg := xp.Config{Seed: *seed, Repeats: *reps, Quick: *quick}
	exps := xp.All()
	if *run != "" {
		var filtered []xp.Experiment
		for _, id := range strings.Split(*run, ",") {
			e, err := xp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			filtered = append(filtered, e)
		}
		exps = filtered
	}

	failed := 0
	for _, e := range exps {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s %s: %v\n", e.ID, e.Title, err)
			failed++
			continue
		}
		fmt.Printf("# %s — %s\n# claim: %s\n", e.ID, e.Title, e.Claim)
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Print(table.String())
		}
		fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
