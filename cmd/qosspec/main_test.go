package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/qos"
	"repro/internal/workload"
)

// TestEmitExample: the emitted example must be valid JSON that decodes
// back to a valid (spec, request) pair — the round-trip users are told
// to start from.
func TestEmitExample(t *testing.T) {
	var out bytes.Buffer
	if err := emitExample(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"// spec (paper Section 3):", "// request (paper Section 3.1):", "multimedia", "frame_rate"} {
		if !strings.Contains(got, want) {
			t.Errorf("emit output missing %q", want)
		}
	}
}

// TestInspectSpecAndRequest writes the example spec and request to disk
// and inspects them, the command's primary workflow.
func TestInspectSpecAndRequest(t *testing.T) {
	dir := t.TempDir()
	sb, err := qos.EncodeSpec(workload.VideoSpec())
	if err != nil {
		t.Fatal(err)
	}
	req := workload.SurveillanceRequest()
	rb, err := qos.EncodeRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "spec.json")
	reqPath := filepath.Join(dir, "req.json")
	if err := os.WriteFile(specPath, sb, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(reqPath, rb, 0o644); err != nil {
		t.Fatal(err)
	}

	var specOnly bytes.Buffer
	if err := inspect(specPath, "", &specOnly); err != nil {
		t.Fatalf("inspect spec: %v", err)
	}
	if !strings.Contains(specOnly.String(), `spec "multimedia": 2 dimensions`) {
		t.Errorf("spec summary wrong:\n%s", specOnly.String())
	}
	if strings.Contains(specOnly.String(), "request") {
		t.Errorf("spec-only inspection mentioned a request:\n%s", specOnly.String())
	}

	var both bytes.Buffer
	if err := inspect(specPath, reqPath, &both); err != nil {
		t.Fatalf("inspect spec+request: %v", err)
	}
	for _, want := range []string{"valid against", "preferred level:", "max distance:", "degradation space:"} {
		if !strings.Contains(both.String(), want) {
			t.Errorf("request summary missing %q:\n%s", want, both.String())
		}
	}
}

// TestInspectRejectsGarbage covers the error paths: missing file,
// invalid JSON, and a request that does not validate against the spec.
func TestInspectRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := inspect(filepath.Join(dir, "missing.json"), "", os.Stdout); err == nil {
		t.Error("missing spec file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inspect(bad, "", os.Stdout); err == nil {
		t.Error("invalid spec JSON accepted")
	}

	sb, err := qos.EncodeSpec(workload.OffloadSpec())
	if err != nil {
		t.Fatal(err)
	}
	offload := filepath.Join(dir, "offload.json")
	if err := os.WriteFile(offload, sb, 0o644); err != nil {
		t.Fatal(err)
	}
	// A multimedia request cannot validate against the offload spec.
	req := workload.SurveillanceRequest()
	rb, err := qos.EncodeRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	mismatched := filepath.Join(dir, "req.json")
	if err := os.WriteFile(mismatched, rb, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := inspect(offload, mismatched, &out); err == nil {
		t.Error("mismatched request accepted")
	}
}
