// Command qosspec validates and inspects QoS specs and service requests
// in the repo's JSON wire format, and can evaluate a concrete proposal
// against a request with the Section 6 distance function.
//
// Usage:
//
//	qosspec -spec file.json                  validate and pretty-print a spec
//	qosspec -spec file.json -request r.json  validate a request against the spec
//	qosspec -emit-example                    print the paper's Section 3 spec +
//	                                         Section 3.1 request as JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/qos"
	"repro/internal/workload"
)

func main() {
	specPath := flag.String("spec", "", "path to a spec JSON file")
	reqPath := flag.String("request", "", "path to a request JSON file (requires -spec)")
	emit := flag.Bool("emit-example", false, "emit the paper's example spec and request")
	flag.Parse()

	switch {
	case *emit:
		emitExample()
	case *specPath != "":
		inspect(*specPath, *reqPath)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emitExample() {
	spec := workload.VideoSpec()
	sb, err := qos.EncodeSpec(spec)
	if err != nil {
		fatal(err)
	}
	req := workload.SurveillanceRequest()
	rb, err := qos.EncodeRequest(&req)
	if err != nil {
		fatal(err)
	}
	fmt.Println("// spec (paper Section 3):")
	fmt.Println(string(sb))
	fmt.Println("// request (paper Section 3.1):")
	fmt.Println(string(rb))
}

func inspect(specPath, reqPath string) {
	sb, err := os.ReadFile(specPath)
	if err != nil {
		fatal(err)
	}
	spec, err := qos.DecodeSpec(sb)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spec %q: %d dimensions, %d dependencies — OK\n", spec.Name, len(spec.Dimensions), len(spec.Deps))
	for _, d := range spec.Dimensions {
		fmt.Printf("  %s (%s)\n", d.ID, d.Name)
		for _, a := range d.Attributes {
			dom := a.Domain
			if dom.Kind == qos.Discrete {
				fmt.Printf("    %-16s %s %s, %d values (quality index order)\n", a.ID, dom.Kind, dom.Type, len(dom.Values))
			} else {
				fmt.Printf("    %-16s %s %s [%g, %g]\n", a.ID, dom.Kind, dom.Type, dom.Min, dom.Max)
			}
		}
	}
	if reqPath == "" {
		return
	}
	rb, err := os.ReadFile(reqPath)
	if err != nil {
		fatal(err)
	}
	req, err := qos.DecodeRequest(rb)
	if err != nil {
		fatal(err)
	}
	if err := req.Validate(spec); err != nil {
		fatal(err)
	}
	eval, err := qos.NewEvaluator(spec, req)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("request %q: valid against %q\n", req.Service, spec.Name)
	fmt.Printf("  preferred level: %v\n", req.Preferred())
	fmt.Printf("  max distance:    %.4f\n", eval.MaxDistance())
	ld, err := qos.BuildLadder(spec, req, qos.DefaultGridSteps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  degradation space: %d candidate levels over %d attributes\n", ld.Combinations(), ld.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qosspec:", err)
	os.Exit(1)
}
