// Command qosspec validates and inspects QoS specs and service requests
// in the repo's JSON wire format, and can evaluate a concrete proposal
// against a request with the Section 6 distance function.
//
// Usage:
//
//	qosspec -spec file.json                  validate and pretty-print a spec
//	qosspec -spec file.json -request r.json  validate a request against the spec
//	qosspec -emit-example                    print the paper's Section 3 spec +
//	                                         Section 3.1 request as JSON
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/qos"
	"repro/internal/workload"
)

func main() {
	specPath := flag.String("spec", "", "path to a spec JSON file")
	reqPath := flag.String("request", "", "path to a request JSON file (requires -spec)")
	emit := flag.Bool("emit-example", false, "emit the paper's example spec and request")
	flag.Parse()

	var err error
	switch {
	case *emit:
		err = emitExample(os.Stdout)
	case *specPath != "":
		err = inspect(*specPath, *reqPath, os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qosspec:", err)
		os.Exit(1)
	}
}

// emitExample prints the paper's Section 3 spec and Section 3.1 request
// as JSON.
func emitExample(out io.Writer) error {
	spec := workload.VideoSpec()
	sb, err := qos.EncodeSpec(spec)
	if err != nil {
		return err
	}
	req := workload.SurveillanceRequest()
	rb, err := qos.EncodeRequest(&req)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "// spec (paper Section 3):")
	fmt.Fprintln(out, string(sb))
	fmt.Fprintln(out, "// request (paper Section 3.1):")
	fmt.Fprintln(out, string(rb))
	return nil
}

// inspect validates a spec file (and optionally a request against it)
// and prints a structural summary.
func inspect(specPath, reqPath string, out io.Writer) error {
	sb, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := qos.DecodeSpec(sb)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "spec %q: %d dimensions, %d dependencies — OK\n", spec.Name, len(spec.Dimensions), len(spec.Deps))
	for _, d := range spec.Dimensions {
		fmt.Fprintf(out, "  %s (%s)\n", d.ID, d.Name)
		for _, a := range d.Attributes {
			dom := a.Domain
			if dom.Kind == qos.Discrete {
				fmt.Fprintf(out, "    %-16s %s %s, %d values (quality index order)\n", a.ID, dom.Kind, dom.Type, len(dom.Values))
			} else {
				fmt.Fprintf(out, "    %-16s %s %s [%g, %g]\n", a.ID, dom.Kind, dom.Type, dom.Min, dom.Max)
			}
		}
	}
	if reqPath == "" {
		return nil
	}
	rb, err := os.ReadFile(reqPath)
	if err != nil {
		return err
	}
	req, err := qos.DecodeRequest(rb)
	if err != nil {
		return err
	}
	if err := req.Validate(spec); err != nil {
		return err
	}
	eval, err := qos.NewEvaluator(spec, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "request %q: valid against %q\n", req.Service, spec.Name)
	fmt.Fprintf(out, "  preferred level: %v\n", req.Preferred())
	fmt.Fprintf(out, "  max distance:    %.4f\n", eval.MaxDistance())
	ld, err := qos.BuildLadder(spec, req, qos.DefaultGridSteps)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  degradation space: %d candidate levels over %d attributes\n", ld.Combinations(), ld.Len())
	return nil
}
