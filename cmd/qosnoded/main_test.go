package main

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	qnet "repro/internal/net"
	"repro/internal/radio"
)

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(nil, io.Discard); err == nil {
		t.Error("missing -id accepted")
	}
	if _, err := parseFlags([]string{"-id", "0"}, io.Discard); err == nil {
		t.Error("-id 0 accepted (reserved for the qosim client)")
	}
	if _, err := parseFlags([]string{"-id", "6", "-nodes", "6"}, io.Discard); err == nil {
		t.Error("-id outside the topology accepted")
	}
	o, err := parseFlags([]string{"-id", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.id != 2 || o.nodes != 6 || o.listen != "127.0.0.1:0" || o.timeScale != 0.02 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if _, err := parseFlags([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
}

// syncBuffer lets the test read daemon output while run is writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServesAndStops boots a daemon, handshakes with it over TCP,
// and shuts it down via the signal channel.
func TestRunServesAndStops(t *testing.T) {
	traceOut := filepath.Join(t.TempDir(), "trace.jsonl")
	o, err := parseFlags([]string{"-id", "1", "-nodes", "4", "-trace-out", traceOut}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, &out, stop) }()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address; output: %q", out.String())
	}

	client := qnet.NewEndpoint(qnet.InteropEndpointConfig(0, 4, "", 0.02))
	defer client.Close()
	if err := client.Dial(radio.NodeID(1), addr); err != nil {
		t.Fatalf("dialing daemon: %v", err)
	}
	if _, ok := client.PeerLink(1); !ok {
		t.Error("handshake did not populate the peer directory")
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop on signal")
	}
	if !strings.Contains(out.String(), "stopped") {
		t.Errorf("no shutdown line in output: %q", out.String())
	}
	if fi, err := os.Stat(traceOut); err != nil || fi.Size() == 0 {
		t.Errorf("trace file not written: %v", err)
	}
}
