// Command qosnoded runs one QoS provider node as a network daemon: a
// TCP endpoint speaking the framed binary protocol codec, hosting the
// same provider state machine the simulator and the live runtime use.
// A fleet of qosnoded processes plus a qosim client (-connect) is the
// fully networked deployment of the coalition-formation protocol.
//
// Usage:
//
//	qosnoded -id N [-listen addr] [-nodes N] [-timescale F] [-trace-out FILE]
//
// The daemon takes its position, radio range, bitrate and capacity
// from the fixed interop topology (the E10/E28 neighbourhood): node id
// out of -nodes total on a 10 m grid with the phone/PDA/laptop profile
// rotation. It prints one line
//
//	qosnoded: node N listening on HOST:PORT
//
// to stdout once ready (bind -listen to 127.0.0.1:0 and scrape the
// real port from it), then serves until SIGINT/SIGTERM.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/net"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/trace"
)

type options struct {
	id        int
	listen    string
	nodes     int
	timeScale float64
	traceOut  string
}

func parseFlags(args []string, errw io.Writer) (*options, error) {
	fs := flag.NewFlagSet("qosnoded", flag.ContinueOnError)
	fs.SetOutput(errw)
	o := &options{}
	fs.IntVar(&o.id, "id", -1, "node identity in the interop topology (required, >= 1)")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:0", "TCP listen address")
	fs.IntVar(&o.nodes, "nodes", 6, "total nodes in the interop topology (fixes this node's grid position)")
	fs.Float64Var(&o.timeScale, "timescale", 0.02, "wall-clock seconds per virtual protocol second")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the endpoint's trace as JSONL to FILE on shutdown")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.id < 1 || o.id >= o.nodes {
		err := fmt.Errorf("qosnoded: -id must be in [1, %d) (node 0 is the qosim client)", o.nodes)
		fmt.Fprintln(errw, err)
		return nil, err
	}
	return o, nil
}

// run serves the daemon until the stop channel fires.
func run(o *options, out io.Writer, stop <-chan os.Signal) error {
	var buf *trace.Buffer
	ecfg := net.InteropEndpointConfig(radio.NodeID(o.id), o.nodes, o.listen, o.timeScale)
	if o.traceOut != "" {
		buf = &trace.Buffer{}
		ecfg.Trace = buf
	}
	n := net.NewNode(net.NodeConfig{
		Endpoint: ecfg,
		Provider: core.DefaultProviderConfig,
		Retry:    proto.DefaultRetryConfig,
	})
	if err := n.Start(); err != nil {
		return err
	}
	fmt.Fprintf(out, "qosnoded: node %d listening on %s\n", o.id, n.Endpoint.Addr())
	<-stop
	err := n.Close()
	fmt.Fprintf(out, "qosnoded: node %d stopped (%d sent, %d delivered, %d send errors)\n",
		o.id, n.Endpoint.Sent.Load(), n.Endpoint.Delivered.Load(), n.Endpoint.SendErrors.Load())
	if buf != nil {
		f, ferr := os.Create(o.traceOut)
		if ferr != nil {
			return errors.Join(err, ferr)
		}
		if werr := buf.WriteJSONL(f); werr != nil {
			f.Close()
			return errors.Join(err, werr)
		}
		return errors.Join(err, f.Close())
	}
	return err
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(o, os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "qosnoded:", err)
		os.Exit(1)
	}
}
