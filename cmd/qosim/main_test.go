package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	qosnet "repro/internal/net"
	"repro/internal/proto"
	"repro/internal/radio"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 1 || o.nodes != 12 || o.tasks != 4 || o.scale != 1.5 || o.kind != "stream" {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if _, err := parseFlags([]string{"-nonsense"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	// -h is help, not an invalid invocation (main exits 0 on it).
	if _, err := parseFlags([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestRunStreamScenario is the end-to-end smoke test: a default-ish
// scenario forms a coalition and the report names every task.
func TestRunStreamScenario(t *testing.T) {
	var out bytes.Buffer
	o, err := parseFlags([]string{"-seed", "1", "-nodes", "10", "-tasks", "3", "-verbose"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"population:", "formation:", "final allocation:", "t0", "t2", "radio:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunServiceKinds exercises the other service templates and the
// failure-injection path.
func TestRunServiceKinds(t *testing.T) {
	for _, args := range [][]string{
		{"-service", "surveillance", "-scale", "1"},
		{"-service", "offload", "-tasks", "2", "-scale", "1"},
		{"-fail", "1", "-trace"},
	} {
		var out bytes.Buffer
		o, err := parseFlags(args, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(o, &out); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
		if !strings.Contains(out.String(), "final allocation:") {
			t.Errorf("run(%v) produced no allocation report", args)
		}
	}
}

func TestRunRejectsUnknownService(t *testing.T) {
	o, err := parseFlags([]string{"-service", "nonsense"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown service kind accepted")
	}
}

// TestRunDeterministic: same seed, same report (the CLI is a thin shell
// over the deterministic simulator).
func TestRunDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		o, err := parseFlags([]string{"-seed", "7", "-nodes", "8"}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(o, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("same seed rendered different reports:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestRunOpenMode exercises the open-system lifecycle path with every
// adaptation policy, plus the -adapt validation.
func TestRunOpenMode(t *testing.T) {
	for _, policy := range []string{"off", "kill", "migrate", "degrade"} {
		var out bytes.Buffer
		o, err := parseFlags([]string{
			"-open", "-horizon", "300", "-rate", "0.1", "-tasks", "2", "-scale", "1",
			"-churn", "240", "-adapt", policy,
		}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(o, &out); err != nil {
			t.Fatalf("-adapt %s: %v\noutput:\n%s", policy, err, out.String())
		}
		got := out.String()
		for _, want := range []string{"open system:", "sessions:", "steady state:", "churn:"} {
			if !strings.Contains(got, want) {
				t.Errorf("-adapt %s output missing %q:\n%s", policy, want, got)
			}
		}
		if policy != "off" && !strings.Contains(got, "adaptation ("+policy+")") {
			t.Errorf("-adapt %s output missing its adaptation report:\n%s", policy, got)
		}
		if policy == "off" && strings.Contains(got, "adaptation (") {
			t.Errorf("-adapt off printed an adaptation report:\n%s", got)
		}
	}
	if _, err := parseFlags([]string{"-open", "-adapt", "bogus"}, io.Discard); err == nil {
		t.Error("bogus -adapt policy accepted")
	}
}

// TestRunFaultsMode exercises the chaos quick-start: the representative
// fault plan runs to completion, reports the adversary's counters and
// the hardening's recovery work, and stays deterministic per seed.
func TestRunFaultsMode(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		o, err := parseFlags([]string{
			"-open", "-faults", "-horizon", "400", "-rate", "0.1", "-tasks", "2", "-scale", "1",
		}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(o, &out); err != nil {
			t.Fatalf("-faults: %v\noutput:\n%s", err, out.String())
		}
		return out.String()
	}
	got := render()
	for _, want := range []string{"faults:", "hardening:", "retransmissions", "reclaimed"} {
		if !strings.Contains(got, want) {
			t.Errorf("-faults output missing %q:\n%s", want, got)
		}
	}
	if again := render(); again != got {
		t.Errorf("-faults is not deterministic per seed:\n--- a ---\n%s--- b ---\n%s", got, again)
	}
}

// TestRunObservabilityArtifacts drives the open+faults mode with every
// observability flag on and checks each artifact landed: a non-empty
// JSONL trace whose lines are JSON objects, pprof CPU and heap
// profiles, and a results-store entry carrying the hardening counters.
func TestRunObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "trace.jsonl")
	store := filepath.Join(dir, "results.jsonl")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	o, err := parseFlags([]string{
		"-open", "-faults", "-horizon", "300", "-rate", "0.1", "-tasks", "2", "-scale", "1",
		"-trace-out", traceOut, "-store", store, "-cpuprofile", cpu, "-memprofile", mem,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace JSONL is empty")
	}
	for i, l := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v: %q", i+1, err, l)
		}
		if ev["scope"] != "qosim/0000" {
			t.Fatalf("trace line %d has scope %v", i+1, ev["scope"])
		}
	}

	entries, err := metrics.ReadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "qosim/open" || entries[0].Kind != "experiment" {
		t.Fatalf("store entries: %+v", entries)
	}
	if _, ok := entries[0].Metrics["admission"]; !ok {
		t.Errorf("store entry missing admission: %v", entries[0].Metrics)
	}
	if _, ok := entries[0].Metrics["proto.retransmissions"]; !ok {
		t.Errorf("store entry missing hardening counters: %v", entries[0].Metrics)
	}

	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (%v)", p, err)
		}
	}
}

// TestRunOneShotTraceOut: the one-shot mode serializes the protocol
// timeline as JSONL too.
func TestRunOneShotTraceOut(t *testing.T) {
	traceOut := filepath.Join(t.TempDir(), "oneshot.jsonl")
	o, err := parseFlags([]string{"-nodes", "8", "-tasks", "2", "-trace-out", traceOut}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"cfp"`) {
		t.Errorf("one-shot trace misses the protocol handshake:\n%s", raw)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=127.0.0.1:7001, 2=127.0.0.1:7002")
	if err != nil || len(peers) != 2 || peers[1] != "127.0.0.1:7001" {
		t.Fatalf("peers = %v, err %v", peers, err)
	}
	for _, bad := range []string{"", "nonsense", "0=127.0.0.1:1", "1=a,1=b", "2=127.0.0.1:1"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

// TestRunNetworked drives the TCP client mode against two in-process
// daemon nodes and requires the simulator comparison to report MATCH.
func TestRunNetworked(t *testing.T) {
	const total = 3
	var daemons []*qosnet.Node
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()
	spec := make([]string, 0, total-1)
	for i := 1; i < total; i++ {
		d := qosnet.NewNode(qosnet.NodeConfig{
			Endpoint: qosnet.InteropEndpointConfig(radio.NodeID(i), total, "127.0.0.1:0", 0.02),
			Provider: core.DefaultProviderConfig,
			Retry:    proto.DefaultRetryConfig,
		})
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
		spec = append(spec, fmt.Sprintf("%d=%s", i, d.Endpoint.Addr()))
	}
	o, err := parseFlags([]string{"-connect", strings.Join(spec, ","), "-tasks", "2", "-scale", "1.0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"fabric: 2 remote daemon(s)", "formation: 2/2", "interop: MATCH"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The dissolve must have drained the daemons' ledgers.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		clean := true
		for _, d := range daemons {
			if d.Res.Available() != d.Res.Capacity() {
				clean = false
			}
		}
		if clean {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("daemon ledgers not drained after dissolve")
}
