// Command qosim runs a single coalition-formation scenario and prints
// the outcome: who serves which task, at which QoS level, at what
// distance from the user's preferences, plus negotiation statistics.
//
// Usage:
//
//	qosim [-seed N] [-nodes N] [-tasks N] [-scale F] [-service kind]
//	      [-mobile] [-loss F] [-fail N] [-verbose]
//
// Service kinds: stream (default), surveillance, offload.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "scenario seed")
	nodes := flag.Int("nodes", 12, "population size")
	tasks := flag.Int("tasks", 4, "tasks in the requested service")
	scale := flag.Float64("scale", 1.5, "demand scale factor")
	kind := flag.String("service", "stream", "service template: stream | surveillance | offload")
	mobile := flag.Bool("mobile", false, "random-waypoint mobility")
	loss := flag.Float64("loss", 0, "radio loss probability [0,1)")
	fail := flag.Int("fail", 0, "kill N coalition members at t=5s")
	verbose := flag.Bool("verbose", false, "print per-node detail")
	showTrace := flag.Bool("trace", false, "print the protocol event timeline")
	flag.Parse()

	ring := trace.NewRing(4096)
	scfg := workload.DefaultScenario(*seed)
	scfg.Nodes = *nodes
	scfg.Mobile = *mobile
	scfg.Radio.LossProb = *loss
	if *showTrace {
		scfg.Provider.Trace = ring
	}
	sc, err := workload.Build(scfg)
	if err != nil {
		fatal(err)
	}

	var svc *task.Service
	switch *kind {
	case "stream":
		svc = workload.StreamService("svc", *tasks, *scale)
	case "surveillance":
		svc = workload.SurveillanceService("svc", *scale)
	case "offload":
		svc = workload.OffloadService("svc", *tasks, *scale)
	default:
		fatal(fmt.Errorf("unknown service kind %q", *kind))
	}

	if *verbose {
		fmt.Println("population:")
		for _, id := range sc.Cluster.Nodes() {
			n := sc.Cluster.Node(id)
			pos, _ := sc.Cluster.Medium.PosOf(id)
			fmt.Printf("  node %2d %-12s at (%3.0f,%3.0f)  capacity %v\n",
				id, n.Profile, pos.X, pos.Y, n.Res.Capacity())
		}
		fmt.Println()
	}

	ocfg := core.DefaultOrganizerConfig
	if *showTrace {
		ocfg.Trace = ring
	}
	var results []*core.Result
	org, err := sc.Cluster.Submit(0, 0, svc, ocfg, func(r *core.Result) {
		results = append(results, r)
	})
	if err != nil {
		fatal(err)
	}
	if *fail > 0 {
		sc.Cluster.Eng.At(5, func() {
			if len(results) == 0 {
				return
			}
			killed := 0
			for _, m := range results[0].Members() {
				if m == 0 {
					continue
				}
				sc.Cluster.FailNode(m)
				fmt.Printf("t=5.0s  node %d failed\n", m)
				killed++
				if killed == *fail {
					return
				}
			}
		})
	}
	horizon := 10.0
	if *fail > 0 {
		horizon = 40
	}
	sc.Cluster.Run(horizon)

	if len(results) == 0 {
		fatal(fmt.Errorf("formation did not complete"))
	}
	for i, r := range results {
		label := "formation"
		if i > 0 {
			label = fmt.Sprintf("reformation %d", i)
		}
		fmt.Printf("%s: %d/%d tasks in %d round(s), %.0f ms, %d proposals\n",
			label, len(r.Assigned), len(svc.Tasks), r.Rounds, r.FormationTime*1000, r.ProposalsReceived)
	}
	final := org.Snapshot()
	fmt.Println("\nfinal allocation:")
	ids := make([]string, 0, len(final))
	for tid := range final {
		ids = append(ids, tid)
	}
	sort.Strings(ids)
	for _, tid := range ids {
		a := final[tid]
		n := sc.Cluster.Node(a.Node)
		eval, _ := qos.NewEvaluator(svc.Spec, &svc.Task(tid).Request)
		fmt.Printf("  %-8s -> node %2d (%-12s) distance %.4f  utility %.3f\n",
			tid, a.Node, n.Profile, a.Distance, eval.Utility(a.Distance))
		if *verbose {
			fmt.Printf("           level %v\n", a.Level)
		}
	}
	for _, t := range svc.Tasks {
		if _, ok := final[t.ID]; !ok {
			fmt.Printf("  %-8s UNSERVED\n", t.ID)
		}
	}
	st := sc.Cluster.Medium.Stats
	fmt.Printf("\nradio: %d broadcasts, %d unicasts, %d deliveries, %d drops, %.1f KiB\n",
		st.Broadcasts, st.Unicasts, st.Deliveries, st.Drops, float64(st.Bytes)/1024)
	if org.Failures > 0 {
		fmt.Printf("monitor: %d failure(s) detected, %d reconfiguration(s)\n", org.Failures, org.Reconfigurations)
	}
	if *showTrace {
		fmt.Printf("\nprotocol timeline (%d events):\n%s", ring.Total(), ring.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qosim:", err)
	os.Exit(1)
}
