// Command qosim runs a single coalition-formation scenario and prints
// the outcome: who serves which task, at which QoS level, at what
// distance from the user's preferences, plus negotiation statistics.
//
// Usage:
//
//	qosim [-seed N] [-nodes N] [-tasks N] [-scale F] [-service kind]
//	      [-mobile] [-loss F] [-fail N] [-verbose]
//
// Service kinds: stream (default), surveillance, offload.
//
// With -open, qosim instead drives the open-system session lifecycle
// (continuous arrivals, holding times, departures) to a horizon and
// prints steady-state statistics:
//
//	qosim -open [-rate F] [-hold F] [-horizon F] [-churn F]
//	      [-adapt off|kill|migrate|degrade] [-admit block|queue|yield]
//	      [-faults]
//
// -churn sets node leaves per hour; -adapt picks the mid-session QoS
// adaptation policy applied when churn orphans a live session's tasks
// (see internal/adapt). "degrade" additionally enables
// utilisation-pressure QoS shedding and epoch-driven upgrade
// reclamation at the engine defaults.
//
// -admit picks the admission policy for blocked arrivals (see
// internal/admit): "block" rejects immediately (the default economy),
// "queue" lets them wait out congestion with the default deadline and
// retry cadence, "yield" admits them by degrading incumbents when the
// marginal utility gain exceeds the drift cost (this implies the
// adaptation engine; -adapt off is promoted to a minimal config).
//
// -faults is the chaos quick-start: it runs the open system against a
// representative deterministic fault plan (i.i.d. + bursty loss, delay
// spikes, duplication, node freezes, transient 2-way partitions; see
// internal/faults) with the protocol's reliability layer on, and
// reports what the adversary did and what the hardening recovered.
//
// With -connect, qosim becomes the organizer of a networked fabric: it
// joins a fleet of qosnoded daemons over TCP as node 0 of the interop
// topology, negotiates the service with the remote providers (its own
// in-process provider participates too), prints the allocation, and —
// unless -compare=false — replays the identical scenario on the
// discrete-event simulator and reports interop: MATCH or MISMATCH:
//
//	qosim -connect "1=127.0.0.1:7001,2=127.0.0.1:7002,..." [-tasks N]
//	      [-scale F] [-seed N] [-timescale F] [-compare=true]
//
// Daemon ids must be contiguous from 1; daemons must have been started
// with -nodes equal to the number of daemons plus one.
//
// Observability flags (both modes unless noted):
//
//	-trace-out FILE   write the structured flight-recorder trace as
//	                  JSONL (open mode: engine events; one-shot mode:
//	                  protocol events)
//	-store FILE       open mode: append the run's headline metrics to
//	                  the results-store JSONL (see cmd/qostrend)
//	-cpuprofile FILE  write a pprof CPU profile of the run
//	-memprofile FILE  write a pprof heap profile taken after the run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/admit"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	qosnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/session"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

// options is the parsed command line.
type options struct {
	seed      int64
	nodes     int
	tasks     int
	scale     float64
	kind      string
	mobile    bool
	loss      float64
	fail      int
	verbose   bool
	showTrace bool

	connect   string
	compare   bool
	timeScale float64

	open     bool
	rate     float64
	hold     float64
	horizon  float64
	churn    float64
	adapt    string
	admit    string
	slowpath bool
	faults   bool

	traceOut   string
	storePath  string
	cpuProfile string
	memProfile string
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string, errw io.Writer) (*options, error) {
	fs := flag.NewFlagSet("qosim", flag.ContinueOnError)
	fs.SetOutput(errw)
	o := &options{}
	fs.Int64Var(&o.seed, "seed", 1, "scenario seed")
	fs.IntVar(&o.nodes, "nodes", 12, "population size")
	fs.IntVar(&o.tasks, "tasks", 4, "tasks in the requested service")
	fs.Float64Var(&o.scale, "scale", 1.5, "demand scale factor")
	fs.StringVar(&o.kind, "service", "stream", "one-shot mode: service template: stream | surveillance | offload")
	fs.BoolVar(&o.mobile, "mobile", false, "one-shot mode: random-waypoint mobility")
	fs.Float64Var(&o.loss, "loss", 0, "one-shot mode: radio loss probability [0,1)")
	fs.IntVar(&o.fail, "fail", 0, "one-shot mode: kill N coalition members at t=5s")
	fs.BoolVar(&o.verbose, "verbose", false, "one-shot mode: print per-node detail")
	fs.BoolVar(&o.showTrace, "trace", false, "one-shot mode: print the protocol event timeline")
	fs.StringVar(&o.connect, "connect", "", `networked mode: comma-separated "id=host:port" qosnoded peers`)
	fs.BoolVar(&o.compare, "compare", true, "networked mode: replay the scenario on the simulator and report MATCH/MISMATCH")
	fs.Float64Var(&o.timeScale, "timescale", 0.02, "networked mode: wall-clock seconds per virtual protocol second")
	fs.BoolVar(&o.open, "open", false, "run the open-system session lifecycle instead of one formation")
	fs.Float64Var(&o.rate, "rate", 0.1, "open mode: session arrivals per second")
	fs.Float64Var(&o.hold, "hold", 40, "open mode: mean session holding time (s)")
	fs.Float64Var(&o.horizon, "horizon", 600, "open mode: simulated span (s); warmup is horizon/10")
	fs.Float64Var(&o.churn, "churn", 0, "open mode: node leaves per hour (0 = no churn)")
	fs.StringVar(&o.adapt, "adapt", "off", "open mode: mid-session QoS adaptation: off | kill | migrate | degrade")
	fs.StringVar(&o.admit, "admit", "block", "open mode: admission policy for blocked arrivals: block | queue | yield")
	fs.BoolVar(&o.slowpath, "slowpath", false, "open mode: drive the reference (unpooled) session loop; output is bit-identical to the default fast path")
	fs.BoolVar(&o.faults, "faults", false, "open mode: inject the representative deterministic fault plan with the reliability layer on")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the flight-recorder trace as JSONL to FILE")
	fs.StringVar(&o.storePath, "store", "", "open mode: append headline metrics to the results-store JSONL at FILE")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to FILE")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to FILE (taken after the run)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch o.adapt {
	case "off", "kill", "migrate", "degrade":
	default:
		err := fmt.Errorf("qosim: unknown -adapt policy %q (off | kill | migrate | degrade)", o.adapt)
		fmt.Fprintln(errw, err)
		return nil, err
	}
	if _, err := admit.ParsePolicy(o.admit); err != nil {
		err = fmt.Errorf("qosim: unknown -admit policy %q (block | queue | yield)", o.admit)
		fmt.Fprintln(errw, err)
		return nil, err
	}
	return o, nil
}

// runOpen drives the open-system session lifecycle and prints its
// steady-state report.
func runOpen(o *options, out io.Writer) error {
	scfg := workload.DefaultScenario(o.seed)
	scfg.Nodes = o.nodes
	// No churn-proof access-point giant: churn and adaptation act on
	// real coalitions.
	scfg.Mix = workload.ChurnMix
	if o.faults {
		scfg.Retry = proto.DefaultRetryConfig
	}
	sc, err := workload.Build(scfg)
	if err != nil {
		return err
	}
	ocfg := core.DefaultOrganizerConfig
	cfg := session.Config{
		Arrivals:   arrival.Poisson{Rate: o.rate},
		NewService: workload.SessionTemplate{Name: "qosim", Tasks: o.tasks, Scale: o.scale}.Instantiate,
		HoldMean:   o.hold,
		Horizon:    o.horizon,
		Warmup:     o.horizon / 10,
		Organizer:  ocfg,
		SlowPath:   o.slowpath,
	}
	if o.churn > 0 {
		cfg.Churn = &session.ChurnConfig{
			Leave:    arrival.Poisson{Rate: o.churn / 3600},
			DownMean: 30,
		}
	}
	var inj *faults.Injector
	if o.faults {
		plan := faults.Plan{
			Loss:      0.05,
			Burst:     &faults.BurstLoss{LossOn: 0.8, MeanOn: 3, MeanOff: 30},
			DelayProb: 0.05, DelayMean: 0.1,
			DupProb: 0.05, DupLag: 0.02,
			Freeze:    &faults.FreezePlan{Rate: 0.02, MeanDur: 20, Protected: []radio.NodeID{0}},
			Partition: &faults.PartitionPlan{K: 2, Every: 120, Len: 15},
		}
		inj, err = faults.New(o.seed, o.horizon, sc.Cluster.Nodes(), plan)
		if err != nil {
			return err
		}
		cfg.Faults = inj
		cfg.ReconcileEvery = 10
	}
	if o.adapt != "off" {
		policy := adapt.KillAffected
		acfg := &adapt.Config{}
		switch o.adapt {
		case "migrate":
			policy = adapt.MigrateExact
		case "degrade":
			policy = adapt.DegradeToFit
			acfg.DegradeOnPressure = true
			acfg.UpgradeOnSlack = true
		}
		acfg.OnChurn = policy
		cfg.Adapt = acfg
		// The adaptation engine owns churn repair; keep the protocol
		// monitor out of its way (DESIGN.md §10).
		cfg.Organizer.Monitor = false
		cfg.Organizer.Reconfigure = false
	}
	if pol, _ := admit.ParsePolicy(o.admit); pol != admit.Block {
		cfg.Admission = &admit.Config{Policy: pol}
		if pol == admit.Yield && cfg.Adapt == nil {
			// Yield degrades incumbents through the adaptation engine;
			// promote -adapt off to a minimal config that owns the
			// ladder bookkeeping (and the monitor hand-off above).
			cfg.Adapt = &adapt.Config{OnChurn: adapt.DegradeToFit}
			cfg.Organizer.Monitor = false
			cfg.Organizer.Reconfigure = false
		}
	}
	var journal *trace.Journal
	if o.traceOut != "" {
		journal = trace.NewJournal()
		cfg.Trace = trace.NewRecorder(journal.Scope(trace.ScopeName("qosim", 0)))
	}
	eng, err := session.New(sc.Cluster, cfg, o.seed)
	if err != nil {
		return err
	}
	st, err := eng.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "open system: %d nodes, %.2f sessions/s, holding %gs, horizon %gs (warmup %gs)\n",
		o.nodes, o.rate, o.hold, o.horizon, o.horizon/10)
	fmt.Fprintf(out, "sessions: %d arrivals, %d admitted (%.1f%%), %d blocked, %d departed\n",
		st.Arrivals, st.Admitted, 100*st.AdmissionRatio(), st.Blocked, st.Departed)
	fmt.Fprintf(out, "steady state: %.2f live avg (peak %d), QoS distance %.4f, cpu util %.1f%%\n",
		st.LiveAvg, st.PeakLive, st.DistanceAvg, 100*st.Util[resource.CPU])
	if o.churn > 0 {
		fmt.Fprintf(out, "churn: %d node leaves, survival %.1f%%\n", st.NodeLeaves, 100*st.SurvivalRatio())
	}
	if o.adapt != "off" {
		a := st.Adapt
		fmt.Fprintf(out, "adaptation (%s): %d repairs, %d degrades, %d upgrades, %d kills, drift %.4f\n",
			o.adapt, a.Repairs, a.Degrades, a.Upgrades, a.Kills, a.MeanDrift())
	}
	if o.admit != "block" {
		ad := st.Admit
		fmt.Fprintf(out, "admission (%s): %d queued, %d retries, %d queue admits, %d expired, %d yield admits (%d steps, %d reverted), utility %.1f, drift cost %.3f\n",
			o.admit, ad.Queued, ad.Retries, ad.QueueAdmits, ad.Expired,
			ad.YieldAdmits, ad.YieldSteps, ad.YieldReverted, ad.UtilitySum, ad.DriftCost)
	}
	if inj != nil {
		fs := inj.Stats
		fmt.Fprintf(out, "faults: %d loss drops, %d freeze drops, %d partition drops, %d delayed, %d duplicated\n",
			fs.Drops, fs.FreezeDrops, fs.PartitionDrops, fs.Delayed, fs.Dups)
		fmt.Fprintf(out, "hardening: %d retransmissions, %d duplicates suppressed, %d freezes bridged, %d orphaned reservations reclaimed\n",
			st.Counters.Get(obs.Retransmissions), st.Counters.Get(obs.Duplicates),
			st.Freezes(), st.Reclaimed())
	}
	if journal != nil {
		if err := writeTraceFile(o.traceOut, journal); err != nil {
			return err
		}
	}
	if o.storePath != "" {
		if err := recordRun(o, st); err != nil {
			return err
		}
	}
	return nil
}

// writeTraceFile serializes the journal as JSONL at path.
func writeTraceFile(path string, journal *trace.Journal) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := journal.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// recordRun appends the open run's headline metrics — steady-state
// quality plus the unified hardening counters — to the results store,
// keyed by the commit of the running binary.
func recordRun(o *options, st *session.Stats) error {
	store, err := metrics.OpenJSONLStore(o.storePath)
	if err != nil {
		return err
	}
	defer store.Close()
	m := map[string]float64{
		"admission": st.AdmissionRatio(),
		"qos_dist":  st.DistanceAvg,
		"live_avg":  st.LiveAvg,
		"cpu_util":  st.Util[resource.CPU],
	}
	for name, v := range st.Counters {
		m[name] = float64(v)
	}
	return store.Record(metrics.Entry{
		Commit:  metrics.Describe(),
		Date:    time.Now().UTC().Format(time.RFC3339),
		Source:  "qosim",
		Kind:    "experiment",
		Name:    "qosim/open",
		Metrics: m,
	})
}

// run wraps the selected mode with the optional pprof profiles: the
// CPU profile spans the run; the heap profile is taken after it.
func run(o *options, out io.Writer) (err error) {
	if o.cpuProfile != "" {
		f, ferr := os.Create(o.cpuProfile)
		if ferr != nil {
			return ferr
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			return perr
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
	}
	if o.memProfile != "" {
		defer func() {
			if err == nil {
				err = writeMemProfile(o.memProfile)
			}
		}()
	}
	if o.connect != "" {
		return runNetworked(o, out)
	}
	if o.open {
		return runOpen(o, out)
	}
	return runOneShot(o, out)
}

// parsePeers parses the -connect list into contiguous daemon addresses
// keyed by node id (1..len).
func parsePeers(spec string) (map[radio.NodeID]string, error) {
	peers := make(map[radio.NodeID]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("qosim: bad -connect entry %q (want id=host:port)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("qosim: bad node id in -connect entry %q", part)
		}
		if _, dup := peers[radio.NodeID(n)]; dup {
			return nil, fmt.Errorf("qosim: duplicate node id %d in -connect", n)
		}
		peers[radio.NodeID(n)] = strings.TrimSpace(addr)
	}
	if len(peers) == 0 {
		return nil, errors.New("qosim: -connect lists no peers")
	}
	for i := 1; i <= len(peers); i++ {
		if _, ok := peers[radio.NodeID(i)]; !ok {
			return nil, fmt.Errorf("qosim: -connect ids must be contiguous from 1 (missing %d)", i)
		}
	}
	return peers, nil
}

// runNetworked joins a qosnoded fleet as organizer node 0, negotiates
// over TCP, and optionally verifies the allocation against the
// simulator's run of the identical scenario.
func runNetworked(o *options, out io.Writer) error {
	peers, err := parsePeers(o.connect)
	if err != nil {
		return err
	}
	total := len(peers) + 1
	n := qosnet.NewNode(qosnet.NodeConfig{
		Endpoint: qosnet.InteropEndpointConfig(0, total, "", o.timeScale),
		Provider: core.DefaultProviderConfig,
		Retry:    proto.DefaultRetryConfig,
	})
	if err := n.Start(); err != nil {
		return err
	}
	defer n.Close()
	for i := 1; i < total; i++ {
		id := radio.NodeID(i)
		if err := n.Endpoint.Dial(id, peers[id]); err != nil {
			return fmt.Errorf("qosim: joining fabric: %w", err)
		}
	}
	fmt.Fprintf(out, "fabric: %d remote daemon(s) + in-process node 0\n", len(peers))

	svc := qosnet.InteropService(o.tasks, o.scale)
	ch := make(chan *core.Result, 4)
	org, err := n.Submit(svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		select {
		case ch <- r:
		default:
		}
	})
	if err != nil {
		return err
	}
	var res *core.Result
	select {
	case res = <-ch:
	case <-time.After(60 * time.Second):
		return errors.New("qosim: networked formation timed out")
	}
	fmt.Fprintf(out, "formation: %d/%d tasks in %d round(s), %d proposals\n",
		len(res.Assigned), len(svc.Tasks), res.Rounds, res.ProposalsReceived)
	ids := make([]string, 0, len(res.Assigned))
	for tid := range res.Assigned {
		ids = append(ids, tid)
	}
	sort.Strings(ids)
	for _, tid := range ids {
		a := res.Assigned[tid]
		where := "remote daemon"
		if a.Node == 0 {
			where = "in-process"
		}
		fmt.Fprintf(out, "  %-8s -> node %2d (%s) distance %.4f\n", tid, a.Node, where, a.Distance)
	}
	for _, t := range svc.Tasks {
		if _, ok := res.Assigned[t.ID]; !ok {
			fmt.Fprintf(out, "  %-8s UNSERVED\n", t.ID)
		}
	}
	org.Dissolve("qosim done")
	time.Sleep(500 * time.Millisecond) // let the dissolve reach the daemons

	if o.compare {
		simRes, err := qosnet.InteropSim(o.seed, total, o.tasks, o.scale)
		if err != nil {
			return err
		}
		if qosnet.SameAssignment(simRes, res) {
			fmt.Fprintln(out, "interop: MATCH (simulator and TCP fabric agree)")
		} else {
			fmt.Fprintf(out, "interop: MISMATCH\n  sim: %v\n  tcp: %v\n", simRes.Assigned, res.Assigned)
			return errors.New("qosim: runtimes disagree")
		}
	}
	return nil
}

// writeMemProfile snapshots the heap (after a GC, so live objects
// dominate) to path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runOneShot executes one formation scenario and prints the report.
func runOneShot(o *options, out io.Writer) error {
	ring := trace.NewRing(4096)
	var traceBuf *trace.Buffer
	var sink trace.Tracer
	if o.showTrace {
		sink = ring
	}
	if o.traceOut != "" {
		traceBuf = &trace.Buffer{}
		if sink != nil {
			sink = trace.Multi{ring, traceBuf}
		} else {
			sink = traceBuf
		}
	}
	scfg := workload.DefaultScenario(o.seed)
	scfg.Nodes = o.nodes
	scfg.Mobile = o.mobile
	scfg.Radio.LossProb = o.loss
	if sink != nil {
		scfg.Provider.Trace = sink
	}
	sc, err := workload.Build(scfg)
	if err != nil {
		return err
	}

	var svc *task.Service
	switch o.kind {
	case "stream":
		svc = workload.StreamService("svc", o.tasks, o.scale)
	case "surveillance":
		svc = workload.SurveillanceService("svc", o.scale)
	case "offload":
		svc = workload.OffloadService("svc", o.tasks, o.scale)
	default:
		return fmt.Errorf("unknown service kind %q", o.kind)
	}

	if o.verbose {
		fmt.Fprintln(out, "population:")
		for _, id := range sc.Cluster.Nodes() {
			n := sc.Cluster.Node(id)
			pos, _ := sc.Cluster.Medium.PosOf(id)
			fmt.Fprintf(out, "  node %2d %-12s at (%3.0f,%3.0f)  capacity %v\n",
				id, n.Profile, pos.X, pos.Y, n.Res.Capacity())
		}
		fmt.Fprintln(out)
	}

	ocfg := core.DefaultOrganizerConfig
	if sink != nil {
		ocfg.Trace = sink
	}
	var results []*core.Result
	org, err := sc.Cluster.Submit(0, 0, svc, ocfg, func(r *core.Result) {
		results = append(results, r)
	})
	if err != nil {
		return err
	}
	if o.fail > 0 {
		sc.Cluster.Eng.At(5, func() {
			if len(results) == 0 {
				return
			}
			killed := 0
			for _, m := range results[0].Members() {
				if m == 0 {
					continue
				}
				sc.Cluster.FailNode(m)
				fmt.Fprintf(out, "t=5.0s  node %d failed\n", m)
				killed++
				if killed == o.fail {
					return
				}
			}
		})
	}
	horizon := 10.0
	if o.fail > 0 {
		horizon = 40
	}
	sc.Cluster.Run(horizon)

	if len(results) == 0 {
		return fmt.Errorf("formation did not complete")
	}
	for i, r := range results {
		label := "formation"
		if i > 0 {
			label = fmt.Sprintf("reformation %d", i)
		}
		fmt.Fprintf(out, "%s: %d/%d tasks in %d round(s), %.0f ms, %d proposals\n",
			label, len(r.Assigned), len(svc.Tasks), r.Rounds, r.FormationTime*1000, r.ProposalsReceived)
	}
	final := org.Snapshot()
	fmt.Fprintln(out, "\nfinal allocation:")
	ids := make([]string, 0, len(final))
	for tid := range final {
		ids = append(ids, tid)
	}
	sort.Strings(ids)
	for _, tid := range ids {
		a := final[tid]
		n := sc.Cluster.Node(a.Node)
		eval, _ := qos.NewEvaluator(svc.Spec, &svc.Task(tid).Request)
		fmt.Fprintf(out, "  %-8s -> node %2d (%-12s) distance %.4f  utility %.3f\n",
			tid, a.Node, n.Profile, a.Distance, eval.Utility(a.Distance))
		if o.verbose {
			fmt.Fprintf(out, "           level %v\n", a.Level)
		}
	}
	for _, t := range svc.Tasks {
		if _, ok := final[t.ID]; !ok {
			fmt.Fprintf(out, "  %-8s UNSERVED\n", t.ID)
		}
	}
	st := sc.Cluster.Medium.Stats
	fmt.Fprintf(out, "\nradio: %d broadcasts, %d unicasts, %d deliveries, %d drops, %.1f KiB\n",
		st.Broadcasts, st.Unicasts, st.Deliveries, st.Drops, float64(st.Bytes)/1024)
	if org.Failures > 0 {
		fmt.Fprintf(out, "monitor: %d failure(s) detected, %d reconfiguration(s)\n", org.Failures, org.Reconfigurations)
	}
	if o.showTrace {
		fmt.Fprintf(out, "\nprotocol timeline (%d events):\n%s", ring.Total(), ring.String())
	}
	if traceBuf != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := traceBuf.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qosim:", err)
		os.Exit(1)
	}
}
