package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeBenchDoc(t *testing.T, dir, name, commit string, ns float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	doc := `{"commit": "` + commit + `", "date": "2026-08-08T00:00:00Z", "go": "go1.24.0",
	  "benchmarks": {
	    "BenchmarkFormulate": {"ns_op": ` + fmtValue(ns) + `, "bytes_op": 816, "allocs_op": 4},
	    "BenchmarkOptimal": {"ns_op": 116766, "bytes_op": null, "allocs_op": null}
	  }}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseFlagsRejectsBadCombos(t *testing.T) {
	var errw bytes.Buffer
	if _, err := parseFlags([]string{"-import"}, &errw); err == nil {
		t.Error("-import with no files accepted")
	}
	if _, err := parseFlags([]string{"stray.json"}, &errw); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, err := parseFlags([]string{"-import", "-baseline", "x.json"}, &errw); err == nil {
		t.Error("-import -baseline accepted")
	}
	if _, err := parseFlags([]string{"-window", "-1"}, &errw); err == nil {
		t.Error("negative window accepted")
	}
}

// TestImportTrendBaseline drives the full tool flow: import two legacy
// BENCH docs, render the trend table, emit the benchgate baseline.
func TestImportTrendBaseline(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "RESULTS.jsonl")
	d1 := writeBenchDoc(t, dir, "BENCH_PR2.json", "aaa1111", 600)
	d2 := writeBenchDoc(t, dir, "BENCH_PR6.json", "bbb2222", 500)

	var out, errw bytes.Buffer
	o, err := parseFlags([]string{"-store", store, "-import", d1, d2}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, &out, &errw); err != nil {
		t.Fatalf("import: %v", err)
	}

	// Trend: both commits as columns, oldest first.
	out.Reset()
	o, err = parseFlags([]string{"-store", store}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, &out, &errw); err != nil {
		t.Fatalf("trend: %v", err)
	}
	text := out.String()
	ia, ib := strings.Index(text, "aaa1111"), strings.Index(text, "bbb2222")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("trend misses or misorders commits:\n%s", text)
	}
	for _, want := range []string{"BenchmarkFormulate", "BenchmarkOptimal", "600", "500"} {
		if !strings.Contains(text, want) {
			t.Errorf("trend missing %q:\n%s", want, text)
		}
	}

	// Window 1 keeps only the newest commit.
	out.Reset()
	o, _ = parseFlags([]string{"-store", store, "-window", "1"}, &errw)
	if err := run(o, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "aaa1111") {
		t.Errorf("-window 1 kept the older commit:\n%s", out.String())
	}

	// Baseline: go-bench format lines, newest value per benchmark.
	out.Reset()
	o, _ = parseFlags([]string{"-store", store, "-baseline"}, &errw)
	if err := run(o, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("baseline lines = %d:\n%s", len(lines), out.String())
	}
	re := regexp.MustCompile(`^Benchmark\S+ 1 [0-9.]+ ns/op$`)
	for _, l := range lines {
		if !re.MatchString(l) {
			t.Errorf("baseline line not in go-bench format: %q", l)
		}
	}
	if lines[0] != "BenchmarkFormulate 1 500 ns/op" {
		t.Errorf("baseline did not pick the newest value: %q", lines[0])
	}
}

func TestTrendOnEmptyStoreFails(t *testing.T) {
	var out, errw bytes.Buffer
	o, err := parseFlags([]string{"-store", filepath.Join(t.TempDir(), "none.jsonl")}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, &out, &errw); err == nil {
		t.Error("empty store rendered a trend")
	}
}
