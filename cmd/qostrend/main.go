// Command qostrend renders performance trajectories from the results
// store (RESULTS.jsonl, see internal/metrics): how each benchmark or
// experiment metric moved across the commits recorded in the store.
//
// Usage:
//
//	qostrend [-store FILE] [-kind bench] [-metric ns_op] [-window N]
//	qostrend [-store FILE] -import BENCH_PR2.json BENCH_PR3.json ...
//	qostrend [-store FILE] -baseline
//
// The default mode prints one row per recorded name with one column
// per commit, oldest first (the store is append-only, so append order
// is commit order). -import appends legacy BENCH_PR*.json documents —
// the per-PR benchmark snapshots scripts/bench.sh has emitted since
// PR 2 — so the whole historical trajectory lives in one store.
// -baseline emits the newest commit's benchmarks in go-test benchmark
// format ("BenchmarkX 1 123 ns/op"), which is exactly what the
// scripts/benchgate.sh regression gate consumes as its baseline side.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// options is the parsed command line.
type options struct {
	store    string
	kind     string
	metric   string
	window   int
	imports  bool
	baseline bool
	files    []string
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string, errw io.Writer) (*options, error) {
	fs := flag.NewFlagSet("qostrend", flag.ContinueOnError)
	fs.SetOutput(errw)
	o := &options{}
	fs.StringVar(&o.store, "store", "RESULTS.jsonl", "results-store JSONL file")
	fs.StringVar(&o.kind, "kind", "bench", "entry kind to render: bench or experiment")
	fs.StringVar(&o.metric, "metric", "ns_op", "metric to render per commit")
	fs.IntVar(&o.window, "window", 0, "render only the newest N commits (0 = all)")
	fs.BoolVar(&o.imports, "import", false, "append the BENCH_PR*.json files given as arguments to the store")
	fs.BoolVar(&o.baseline, "baseline", false, "emit the newest commit's benchmarks in go-bench format for scripts/benchgate.sh")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fail := func(format string, a ...any) (*options, error) {
		err := fmt.Errorf(format, a...)
		fmt.Fprintln(errw, err)
		return nil, err
	}
	o.files = fs.Args()
	if o.imports && len(o.files) == 0 {
		return fail("qostrend: -import needs at least one BENCH_*.json argument")
	}
	if !o.imports && len(o.files) > 0 {
		return fail("qostrend: unexpected arguments %q (did you mean -import?)", o.files)
	}
	if o.imports && o.baseline {
		return fail("qostrend: -import and -baseline are mutually exclusive")
	}
	if o.window < 0 {
		return fail("qostrend: -window must be >= 0, got %d", o.window)
	}
	return o, nil
}

// doImport appends every named BENCH doc to the store.
func doImport(o *options, errw io.Writer) error {
	st, err := metrics.OpenJSONLStore(o.store)
	if err != nil {
		return err
	}
	defer st.Close()
	total := 0
	for _, path := range o.files {
		doc, err := metrics.ReadBenchDoc(path)
		if err != nil {
			return err
		}
		entries := doc.Entries("import:" + path)
		for _, e := range entries {
			if err := st.Record(e); err != nil {
				return err
			}
		}
		total += len(entries)
		fmt.Fprintf(errw, "qostrend: imported %d benchmarks from %s (commit %s)\n",
			len(entries), path, doc.Commit)
	}
	fmt.Fprintf(errw, "qostrend: %d entries appended to %s\n", total, o.store)
	return nil
}

// series is the store pivoted for one metric: value by (name, commit),
// with commits in first-appearance (= append = chronological) order.
type series struct {
	commits []string
	names   []string
	cells   map[string]map[string]float64 // name -> commit -> value
}

// pivot filters entries by kind and folds them into a series. When one
// (name, commit) pair was recorded more than once the smallest value
// wins — the gate statistic is the per-benchmark minimum.
func pivot(entries []metrics.Entry, kind, metric string) *series {
	s := &series{cells: make(map[string]map[string]float64)}
	seenCommit := make(map[string]bool)
	seenName := make(map[string]bool)
	for _, e := range entries {
		if e.Kind != kind {
			continue
		}
		v, ok := e.Metrics[metric]
		if !ok {
			continue
		}
		if !seenCommit[e.Commit] {
			seenCommit[e.Commit] = true
			s.commits = append(s.commits, e.Commit)
		}
		if !seenName[e.Name] {
			seenName[e.Name] = true
			s.names = append(s.names, e.Name)
		}
		row := s.cells[e.Name]
		if row == nil {
			row = make(map[string]float64)
			s.cells[e.Name] = row
		}
		if old, ok := row[e.Commit]; !ok || v < old {
			row[e.Commit] = v
		}
	}
	sort.Strings(s.names)
	return s
}

// fmtValue renders a metric without exponent notation (awk-friendly).
func fmtValue(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// doTrend renders the trajectory table.
func doTrend(o *options, entries []metrics.Entry, out io.Writer) error {
	s := pivot(entries, o.kind, o.metric)
	if len(s.names) == 0 {
		return fmt.Errorf("qostrend: no %q entries with metric %q in %s", o.kind, o.metric, o.store)
	}
	commits := s.commits
	if o.window > 0 && len(commits) > o.window {
		commits = commits[len(commits)-o.window:]
	}
	cols := append([]string{"name"}, commits...)
	t := metrics.NewTable(fmt.Sprintf("%s %s by commit (oldest first)", o.kind, o.metric), cols...)
	for _, name := range s.names {
		row := make([]any, 0, len(cols))
		row = append(row, name)
		for _, c := range commits {
			if v, ok := s.cells[name][c]; ok {
				row = append(row, fmtValue(v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Note("%d commits in store %s; cells are the per-commit minimum when recorded repeatedly", len(s.commits), o.store)
	fmt.Fprint(out, t.String())
	return nil
}

// doBaseline emits the newest recorded value of every benchmark in
// go-test benchmark format. For each name the newest commit that
// recorded it wins, so a benchmark missing from the latest snapshot
// still gates against its most recent measurement.
func doBaseline(o *options, entries []metrics.Entry, out io.Writer) error {
	s := pivot(entries, "bench", "ns_op")
	if len(s.names) == 0 {
		return fmt.Errorf("qostrend: no bench entries in %s", o.store)
	}
	for _, name := range s.names {
		for i := len(s.commits) - 1; i >= 0; i-- {
			if v, ok := s.cells[name][s.commits[i]]; ok {
				fmt.Fprintf(out, "%s 1 %s ns/op\n", name, fmtValue(v))
				break
			}
		}
	}
	return nil
}

// run dispatches the selected mode.
func run(o *options, out, errw io.Writer) error {
	if o.imports {
		return doImport(o, errw)
	}
	entries, err := metrics.ReadStore(o.store)
	if err != nil {
		return err
	}
	if o.baseline {
		return doBaseline(o, entries, out)
	}
	return doTrend(o, entries, out)
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	if err := run(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
