// Offload: the computation-offloading motivation of Sections 1 and 7.
//
// "Playing downloaded movies may require decompression ... transmitting
// data to the Internet from the mobile devices may require compression.
// It's possible to partition the entire process into tasks and divide
// them among different devices with spare resources."
//
// A phone partitions a compression pipeline into N tasks and compares
// three strategies on the same neighbourhood snapshot:
//
//   - doing everything locally (the paper's default, with its time
//     penalty),
//   - coalition formation (the paper's proposal), and
//   - greedy first-fit (cooperation without proposal evaluation).
//
// Run: go run ./examples/offload
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/workload"
)

func main() {
	const parts = 4
	svc := workload.OffloadService("compress", parts, 1.0)

	// The neighbourhood: the requesting phone plus four neighbours.
	profiles := []workload.Profile{
		workload.Phone, workload.Phone, workload.PDA, workload.Laptop, workload.Laptop,
	}

	// --- coalition formation on the simulator ---
	cluster := core.NewCluster(3, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	for i, p := range profiles {
		if _, err := cluster.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, len(profiles), 14))); err != nil {
			log.Fatal(err)
		}
	}
	var res *core.Result
	if _, err := cluster.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		log.Fatal(err)
	}
	cluster.Run(5)
	if res == nil {
		log.Fatal("formation incomplete")
	}

	// --- offline baselines on an identical snapshot ---
	problem := func() *baseline.Problem {
		p := &baseline.Problem{Service: svc, Organizer: 0, GridSteps: qos.DefaultGridSteps}
		for i, prof := range profiles {
			p.Nodes = append(p.Nodes, baseline.NodeView{
				ID: radio.NodeID(i), Res: resource.NewSet(prof.Capacity),
			})
		}
		return p
	}
	local, err := (baseline.LocalOnly{}).Allocate(problem())
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := (baseline.Greedy{}).Allocate(problem())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compression pipeline: %d parts, preferred 48 blocks/s on the hq profile\n\n", parts)
	fmt.Printf("%-22s %8s %12s %10s\n", "strategy", "served", "mean dist", "members")
	printAllocRow("local-only (default)", localRow(local))
	printAllocRow("greedy first-fit", localRow(greedy))
	coalition := struct {
		served  int
		dist    float64
		members int
	}{len(res.Assigned), res.MeanDistance(), len(res.Members())}
	fmt.Printf("%-22s %5d/%d %12.4f %10d\n", "coalition (paper)", coalition.served, parts, coalition.dist, coalition.members)

	fmt.Println("\ncoalition detail:")
	for _, t := range svc.Tasks {
		a, ok := res.Assigned[t.ID]
		if !ok {
			fmt.Printf("  %-6s UNSERVED\n", t.ID)
			continue
		}
		bps := a.Level[qos.AttrKey{Dim: "throughput", Attr: "blocks_per_s"}]
		codec := a.Level[qos.AttrKey{Dim: "throughput", Attr: "codec"}]
		fmt.Printf("  %-6s -> node %d (%-6s)  %s blocks/s on %q, distance %.3f\n",
			t.ID, a.Node, profiles[a.Node].Name, bps, codec.S, a.Distance)
	}
}

type row struct {
	served  int
	total   int
	dist    float64
	members int
}

func localRow(a *baseline.Allocation) row {
	return row{served: len(a.Assigned), total: len(a.Assigned) + len(a.Unserved), dist: a.MeanDistance(), members: a.Members()}
}

func printAllocRow(name string, r row) {
	fmt.Printf("%-22s %5d/%d %12.4f %10d\n", name, r.served, r.total, r.dist, r.members)
}
