// Videostream: coalition formation over the live goroutine runtime.
//
// Every node is a real goroutine (the repo's agents) and radio links are
// channels; the protocol code is byte-for-byte the one the simulator
// runs. A phone joins a neighbourhood of eight devices, requests a
// 4-task video conference pipeline, and the program reports the formed
// coalition, then kills one member and shows the operation-phase monitor
// reconfiguring the coalition (Section 4's "coalition reconfiguration
// due to partial failures").
//
// Run: go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/radio"
	"repro/internal/workload"
)

func main() {
	rt := live.NewRuntime(live.Config{TimeScale: 0.01, Provider: core.DefaultProviderConfig})
	defer rt.Shutdown()

	profiles := []workload.Profile{
		workload.Phone, workload.PDA, workload.Laptop, workload.PDA,
		workload.Laptop, workload.Phone, workload.PDA, workload.Laptop,
	}
	for i, p := range profiles {
		pos := core.GridPlacement(i, len(profiles), 12)
		if _, err := rt.AddNode(radio.NodeID(i), radio.Pos(pos), p.RangeM, p.Bitrate, p.Capacity); err != nil {
			log.Fatal(err)
		}
	}

	svc := workload.StreamService("conf", 4, 1.2)
	results := make(chan *core.Result, 8)
	org, err := rt.Node(0).Submit(svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		results <- r
	})
	if err != nil {
		log.Fatal(err)
	}

	first := waitResult(results, 10*time.Second)
	if first == nil {
		log.Fatal("formation timed out")
	}
	fmt.Printf("formed coalition (round trip over goroutines + channels):\n")
	printResult(rt, profiles, first)

	// Kill a remote member; the heartbeat monitor detects the silence
	// and renegotiates the orphaned tasks among the survivors.
	victim := pickRemoteMember(first)
	if victim < 0 {
		fmt.Println("all tasks ran locally; nothing to fail")
		return
	}
	fmt.Printf("\nkilling node %d (%s)...\n", victim, profiles[victim].Name)
	rt.Node(victim).Provider.SetDown(true)

	second := waitResult(results, 30*time.Second)
	if second == nil {
		log.Fatal("reconfiguration timed out")
	}
	fmt.Printf("reconfigured coalition (%d failure(s) detected, %d reconfiguration(s)):\n",
		org.Failures, org.Reconfigurations)
	printResult(rt, profiles, second)
	for tid, a := range second.Assigned {
		if a.Node == victim {
			log.Fatalf("task %s still on the failed node", tid)
		}
	}
	fmt.Printf("\ntraffic: %d messages sent, %d delivered, %d dropped\n",
		rt.Sent.Load(), rt.Delivered.Load(), rt.Dropped.Load())
}

func waitResult(ch <-chan *core.Result, timeout time.Duration) *core.Result {
	select {
	case r := <-ch:
		return r
	case <-time.After(timeout):
		return nil
	}
}

func printResult(rt *live.Runtime, profiles []workload.Profile, r *core.Result) {
	for _, t := range []string{"t0", "t1", "t2", "t3"} {
		a, ok := r.Assigned[t]
		if !ok {
			fmt.Printf("  %-3s UNSERVED\n", t)
			continue
		}
		fmt.Printf("  %-3s -> node %d (%-6s) distance %.3f\n", t, a.Node, profiles[a.Node].Name, a.Distance)
	}
	fmt.Printf("  members: %v\n", r.Members())
}

func pickRemoteMember(r *core.Result) radio.NodeID {
	for _, a := range r.Assigned {
		if a.Node != 0 {
			return a.Node
		}
	}
	return -1
}
