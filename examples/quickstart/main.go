// Quickstart: the smallest end-to-end use of the library.
//
// Five heterogeneous wireless nodes stand near each other; the phone
// (node 0) requests a 2-task video streaming service it cannot serve
// alone; a coalition forms and the program prints who serves what, at
// which QoS level, and how far each level sits from the user's
// preferences.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/workload"
)

func main() {
	// A cluster is a deterministic simulated neighbourhood: a seeded
	// discrete-event engine plus a unit-disk radio medium.
	cluster := core.NewCluster(1, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)

	// Node 0 is a weak phone; its neighbours are stronger devices.
	profiles := []workload.Profile{
		workload.Phone, workload.PDA, workload.Laptop, workload.PDA, workload.Laptop,
	}
	for i, p := range profiles {
		spec := workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, len(profiles), 15))
		if _, err := cluster.AddNode(spec); err != nil {
			log.Fatal(err)
		}
	}

	// A service = QoS spec + tasks with preference-ordered requests and
	// demand models (paper Sections 3 and 4.1).
	svc := workload.StreamService("demo", 2, 1.5)

	// Submit at the phone. The phone's QoS Provider becomes the
	// Negotiation Organizer: it broadcasts the service description,
	// collects multi-attribute proposals, evaluates them with the
	// Section 6 distance and awards tasks (Section 4.2).
	var result *core.Result
	org, err := cluster.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if result == nil {
			result = r
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run(5)

	if result == nil {
		log.Fatal("formation did not complete")
	}
	fmt.Printf("coalition for %q formed in %d round(s), %.0f ms of negotiation\n",
		result.ServiceID, result.Rounds, result.FormationTime*1000)
	for _, tid := range []string{"t0", "t1"} {
		a, ok := result.Assigned[tid]
		if !ok {
			fmt.Printf("  %s: UNSERVED\n", tid)
			continue
		}
		node := cluster.Node(a.Node)
		fmt.Printf("  %s -> node %d (%s)  distance %.3f  level %v\n",
			tid, a.Node, node.Profile, a.Distance, a.Level)
	}
	fmt.Printf("members: %v\n", result.Members())

	// Dissolution (Section 4): members release their reservations.
	org.Dissolve("demo finished")
	cluster.Run(6)
	fmt.Println("coalition dissolved; all reservations released")
}
