// Surveillance: the paper's own Section 3.1 example, verbatim.
//
// A remote-surveillance user cares far more about video than audio and
// tolerates gray-scale, low-frame-rate video:
//
//  1. Video Quality:  frame rate [10..5],[4..1]; color depth 3, 1
//  2. Audio Quality:  sampling rate 8; sample bits 8
//
// The example shows (a) the preference order in action — proposals
// closer to frame rate 10 / color depth 3 evaluate lower — and (b) the
// degradation path a scarce node takes: it sheds frame rate first
// (cheapest reward loss), exactly the Section 5 heuristic.
//
// Run: go run ./examples/surveillance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/workload"
)

func main() {
	spec := workload.VideoSpec()
	req := workload.SurveillanceRequest()

	// Show the request as the paper writes it.
	fmt.Println("user request (Section 3.1, decreasing importance):")
	for k, dp := range req.Dims {
		fmt.Printf("  %d. %s\n", k+1, spec.Dimension(dp.Dim).Name)
		for i, ap := range dp.Attrs {
			fmt.Printf("     (%c) %s: ", 'a'+i, ap.Attr)
			for j, set := range ap.Sets {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Print(set)
			}
			fmt.Println()
		}
	}

	// Formulation on an abundant node: the preferred level.
	eval, err := qos.NewEvaluator(spec, &req)
	if err != nil {
		log.Fatal(err)
	}
	abundant := resource.NewSet(workload.Laptop.Capacity)
	f, err := core.Formulate(spec, &req, workload.VideoDemand(1), abundant.CanReserve, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	d, _ := eval.Distance(f.Level)
	fmt.Printf("\nabundant laptop proposes  %v  (distance %.3f, reward %.2f)\n", f.Level, d, f.Reward)

	// Formulation under scarcity: watch the degradation order.
	scarce := resource.NewSet(workload.Phone.Capacity.Scale(0.45))
	f2, err := core.Formulate(spec, &req, workload.VideoDemand(1), scarce.CanReserve, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	d2, _ := eval.Distance(f2.Level)
	fmt.Printf("scarce phone proposes     %v  (distance %.3f, reward %.2f, %d degradations)\n",
		f2.Level, d2, f2.Reward, f2.Degradations)
	fmt.Println("note: frame rate degrades first — its many grid steps make each step the")
	fmt.Println("cheapest reward loss, the minimal-decrease rule of Section 5")

	// Full negotiation across a small neighbourhood.
	cluster := core.NewCluster(7, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	for i, p := range []workload.Profile{workload.Phone, workload.Phone, workload.PDA, workload.Laptop} {
		if _, err := cluster.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, 4, 12))); err != nil {
			log.Fatal(err)
		}
	}
	svc := workload.SurveillanceService("cam1", 1.0)
	var res *core.Result
	if _, err := cluster.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		log.Fatal(err)
	}
	cluster.Run(5)
	if res == nil {
		log.Fatal("formation incomplete")
	}
	fmt.Printf("\ncoalition for %q (tasks: encode, relay):\n", svc.ID)
	for _, t := range svc.Tasks {
		a, ok := res.Assigned[t.ID]
		if !ok {
			fmt.Printf("  %-7s UNSERVED\n", t.ID)
			continue
		}
		fmt.Printf("  %-7s -> node %d (%s), distance %.3f\n",
			t.ID, a.Node, cluster.Node(a.Node).Profile, a.Distance)
	}
}
