// Package faults is the deterministic adversarial layer of the
// simulator: an Injector attaches to the radio medium's delivery hook
// (radio.Interceptor) and subjects every otherwise-successful delivery
// to a seeded fault plan — i.i.d. and bursty message loss, delay
// spikes, duplication (and, through delay, reordering), node
// freeze/unfreeze schedules, and transient k-way partitions.
//
// Every decision is a pure function of (Seed, Plan) and the delivery
// sequence: the injector owns private rngs derived from the seed by
// splitmix64 and never touches the engine rng, so a chaos run replays
// bit-identically and its experiment tables golden-pin like any other
// (E25-E27). Burst-loss phases and freeze schedules are precomputed
// on/off processes in the style of internal/arrival's MMPP: alternating
// exponential on/off dwell times drawn once at construction.
//
// The injector heals at its horizon: past Horizon every fate is the
// zero fate, so the session engine's drain (dissolves, release
// broadcasts) settles over a clean medium and leak accounting isolates
// what the faults themselves orphaned. A frozen node whose interval is
// cut by the horizon thaws with coalition state intact — the
// reservation-reconciliation sweep (internal/session) is what reclaims
// it.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/radio"
)

// BurstLoss is an on/off (MMPP-style) loss process layered over the
// plan's i.i.d. loss: while the process is ON every delivery drops
// with probability LossOn, while OFF the base Plan.Loss applies. Dwell
// times are exponential with the given means, starting OFF.
type BurstLoss struct {
	// LossOn is the drop probability during ON phases (0,1].
	LossOn float64
	// MeanOn and MeanOff are the mean phase durations in seconds.
	MeanOn, MeanOff float64
}

// FreezePlan schedules gray failures: a frozen node keeps its radio,
// timers and ledger — the paper's "silent member" — but every delivery
// from or to it is consumed until it thaws. Freeze events arrive as a
// Poisson process over the population; victims and exponential
// durations are drawn at construction.
type FreezePlan struct {
	// Rate is freezes per second across the whole population.
	Rate float64
	// MeanDur is the mean frozen duration in seconds.
	MeanDur float64
	// Protected lists nodes never frozen (typically the organizer
	// nodes, mirroring session.Config.Organizers churn protection).
	Protected []radio.NodeID
}

// PartitionPlan opens periodic k-way splits: during each window the
// population is hashed into K groups and cross-group deliveries drop.
// Group membership is re-drawn (by hash) every window, so successive
// splits cut the neighbourhood differently.
type PartitionPlan struct {
	// K is the number of groups (>= 2).
	K int
	// Every is the window cadence in seconds: window w covers
	// [Every*(w+1), Every*(w+1)+Len).
	Every float64
	// Len is the window length in seconds (must stay below Every).
	Len float64
}

// Plan is one deterministic adversarial schedule. The zero Plan
// injects nothing.
type Plan struct {
	// Loss is the i.i.d. per-delivery drop probability.
	Loss float64
	// Burst layers an on/off loss process over Loss.
	Burst *BurstLoss
	// DelayProb is the probability a delivery suffers a latency spike;
	// spike sizes are exponential with mean DelayMean seconds.
	DelayProb float64
	DelayMean float64
	// DupProb is the probability a delivery is duplicated; the clone
	// lands DupLag seconds after the original, so a positive lag also
	// reorders it past back-to-back traffic.
	DupProb float64
	DupLag  float64
	// Freeze schedules node freeze/unfreeze events.
	Freeze *FreezePlan
	// Partition opens periodic k-way splits.
	Partition *PartitionPlan
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	return p.Loss > 0 || p.Burst != nil || p.DelayProb > 0 || p.DupProb > 0 ||
		p.Freeze != nil || p.Partition != nil
}

// validate rejects plans outside their domains.
func (p *Plan) validate() error {
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("faults: Loss %g outside [0,1)", p.Loss)
	}
	if p.Burst != nil {
		b := p.Burst
		if b.LossOn <= 0 || b.LossOn > 1 {
			return fmt.Errorf("faults: Burst.LossOn %g outside (0,1]", b.LossOn)
		}
		if b.MeanOn <= 0 || b.MeanOff <= 0 {
			return fmt.Errorf("faults: burst phase means must be positive")
		}
	}
	if p.DelayProb < 0 || p.DelayProb >= 1 {
		return fmt.Errorf("faults: DelayProb %g outside [0,1)", p.DelayProb)
	}
	if p.DelayProb > 0 && p.DelayMean <= 0 {
		return fmt.Errorf("faults: DelayMean must be positive with DelayProb set")
	}
	if p.DupProb < 0 || p.DupProb >= 1 {
		return fmt.Errorf("faults: DupProb %g outside [0,1)", p.DupProb)
	}
	if p.DupLag < 0 {
		return fmt.Errorf("faults: DupLag must be non-negative")
	}
	if f := p.Freeze; f != nil && (f.Rate <= 0 || f.MeanDur <= 0) {
		return fmt.Errorf("faults: freeze plan needs positive Rate and MeanDur")
	}
	if pt := p.Partition; pt != nil {
		if pt.K < 2 {
			return fmt.Errorf("faults: partition K must be >= 2, got %d", pt.K)
		}
		if pt.Every <= 0 || pt.Len <= 0 || pt.Len >= pt.Every {
			return fmt.Errorf("faults: partition needs 0 < Len < Every")
		}
	}
	return nil
}

// interval is one half-open [start, end) span.
type interval struct{ start, end float64 }

// FreezeEvent is one freeze-state transition, for owners that mirror
// the schedule onto their own clock (the session engine bridges these
// to the adaptation repair path).
type FreezeEvent struct {
	T      float64
	Node   radio.NodeID
	Frozen bool
}

// Stats counts what the injector actually did to one run.
type Stats struct {
	// Drops counts deliveries consumed by loss (i.i.d. or burst).
	Drops uint64
	// Delayed and Dups count latency spikes and duplications applied.
	Delayed uint64
	Dups    uint64
	// FreezeDrops and PartitionDrops count deliveries consumed because
	// an endpoint was frozen, or the endpoints were in different
	// partition groups.
	FreezeDrops    uint64
	PartitionDrops uint64
}

// Injector implements radio.Interceptor over one plan. It must only be
// consulted with non-decreasing now values (the engine clock), which
// lets the precomputed on/off schedules advance by cursor.
type Injector struct {
	plan    Plan
	horizon float64
	seed    int64

	// draws serves the per-delivery loss/delay/dup draws, in delivery
	// order; phase/freeze schedules were drawn at construction from
	// separately derived rngs so the two streams never interleave.
	draws *rand.Rand

	// burstOn holds the precomputed ON intervals, cursor-advanced.
	burstOn  []interval
	burstCur int

	// frozen maps each node to its merged freeze intervals.
	frozen    map[radio.NodeID]*freezeTrack
	freezeEvs []FreezeEvent

	partSalt uint64

	// Stats is exported for experiment tables and the qosim CLI.
	Stats Stats
}

type freezeTrack struct {
	ivs []interval
	cur int
}

// splitmix64 is the seed-derivation hash (Steele et al.), also used to
// hash partition group membership.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// subRng derives an independent rng stream for one concern.
func subRng(seed int64, concern uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ concern))))
}

// exp draws an exponential with the given mean.
func exp(rng *rand.Rand, mean float64) float64 { return rng.ExpFloat64() * mean }

// New builds an injector for one run: nodes is the population the
// freeze plan draws victims from, horizon the time past which the plan
// heals (the session engine's Config.Horizon). The whole schedule —
// burst phases, freeze victims and durations — is drawn here, so two
// injectors with equal (seed, horizon, nodes, plan) are
// indistinguishable whatever traffic they see.
func New(seed int64, horizon float64, nodes []radio.NodeID, plan Plan) (*Injector, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("faults: horizon must be positive, got %g", horizon)
	}
	inj := &Injector{
		plan:     plan,
		horizon:  horizon,
		seed:     seed,
		draws:    subRng(seed, 0xfa17de11),
		partSalt: splitmix64(uint64(seed) ^ 0x9a97170970),
	}
	if b := plan.Burst; b != nil {
		rng := subRng(seed, 0xb1257)
		t := 0.0
		on := false
		for t < horizon {
			var dwell float64
			if on {
				dwell = exp(rng, b.MeanOn)
				inj.burstOn = append(inj.burstOn, interval{t, math.Min(t+dwell, horizon)})
			} else {
				dwell = exp(rng, b.MeanOff)
			}
			t += dwell
			on = !on
		}
	}
	if f := plan.Freeze; f != nil {
		prot := make(map[radio.NodeID]bool, len(f.Protected))
		for _, id := range f.Protected {
			prot[id] = true
		}
		var eligible []radio.NodeID
		for _, id := range nodes {
			if !prot[id] {
				eligible = append(eligible, id)
			}
		}
		if len(eligible) == 0 {
			return nil, fmt.Errorf("faults: freeze plan protects every node")
		}
		rng := subRng(seed, 0xf2331e)
		raw := make(map[radio.NodeID][]interval)
		for t := exp(rng, 1/f.Rate); t < horizon; t += exp(rng, 1/f.Rate) {
			victim := eligible[rng.Intn(len(eligible))]
			raw[victim] = append(raw[victim], interval{t, t + exp(rng, f.MeanDur)})
		}
		inj.frozen = make(map[radio.NodeID]*freezeTrack, len(raw))
		for id, ivs := range raw {
			merged := mergeIntervals(ivs)
			inj.frozen[id] = &freezeTrack{ivs: merged}
			for _, iv := range merged {
				inj.freezeEvs = append(inj.freezeEvs, FreezeEvent{T: iv.start, Node: id, Frozen: true})
				inj.freezeEvs = append(inj.freezeEvs, FreezeEvent{T: math.Min(iv.end, horizon), Node: id, Frozen: false})
			}
		}
		sort.SliceStable(inj.freezeEvs, func(i, j int) bool {
			a, b := inj.freezeEvs[i], inj.freezeEvs[j]
			if a.T != b.T {
				return a.T < b.T
			}
			if a.Node != b.Node {
				return a.Node < b.Node
			}
			return !a.Frozen && b.Frozen // thaw before freeze at a tie
		})
	}
	return inj, nil
}

// mergeIntervals sorts and merges overlapping spans so the cursor scan
// in frozenAt stays monotone.
func mergeIntervals(ivs []interval) []interval {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		if last := &out[len(out)-1]; iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// Plan returns the injector's plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// Horizon returns the time past which the plan heals.
func (inj *Injector) Horizon() float64 { return inj.horizon }

// FreezeEvents returns the full freeze/thaw schedule in time order.
// Owners that must *react* to freezes (the session engine's adaptation
// bridge) schedule these on their own clock; the injector itself needs
// no callbacks — delivery fates read the precomputed intervals.
func (inj *Injector) FreezeEvents() []FreezeEvent { return inj.freezeEvs }

// Frozen reports whether the node is inside a freeze interval at now.
// Like DeliverFate it must be called with non-decreasing now.
func (inj *Injector) Frozen(id radio.NodeID, now float64) bool {
	if now >= inj.horizon {
		return false
	}
	tr, ok := inj.frozen[id]
	if !ok {
		return false
	}
	for tr.cur < len(tr.ivs) && tr.ivs[tr.cur].end <= now {
		tr.cur++
	}
	return tr.cur < len(tr.ivs) && tr.ivs[tr.cur].start <= now
}

// burstActive reports whether the on/off loss process is ON at now.
func (inj *Injector) burstActive(now float64) bool {
	for inj.burstCur < len(inj.burstOn) && inj.burstOn[inj.burstCur].end <= now {
		inj.burstCur++
	}
	return inj.burstCur < len(inj.burstOn) && inj.burstOn[inj.burstCur].start <= now
}

// group hashes a node into its partition group for window w.
func (inj *Injector) group(id radio.NodeID, w uint64) int {
	h := splitmix64(inj.partSalt ^ uint64(id)*0x9e3779b97f4a7c15 ^ w<<32)
	return int(h % uint64(inj.plan.Partition.K))
}

// partitioned reports whether from and to are split at now.
func (inj *Injector) partitioned(now float64, from, to radio.NodeID) bool {
	pt := inj.plan.Partition
	if pt == nil || now < pt.Every {
		return false
	}
	w := uint64((now - pt.Every) / pt.Every)
	start := pt.Every * float64(w+1)
	if now < start || now >= start+pt.Len {
		return false
	}
	return inj.group(from, w) != inj.group(to, w)
}

// DeliverFate implements radio.Interceptor: the fate of one delivery,
// drawn in delivery order from the injector's private rng. Past the
// horizon the plan heals and every fate is the zero fate.
func (inj *Injector) DeliverFate(now float64, from, to radio.NodeID, size int) radio.Fate {
	if now >= inj.horizon {
		return radio.Fate{}
	}
	if inj.frozen != nil && (inj.Frozen(from, now) || inj.Frozen(to, now)) {
		inj.Stats.FreezeDrops++
		return radio.Fate{Drop: true}
	}
	if inj.partitioned(now, from, to) {
		inj.Stats.PartitionDrops++
		return radio.Fate{Drop: true}
	}
	loss := inj.plan.Loss
	if inj.plan.Burst != nil && inj.burstActive(now) {
		loss = inj.plan.Burst.LossOn
	}
	if loss > 0 && inj.draws.Float64() < loss {
		inj.Stats.Drops++
		return radio.Fate{Drop: true}
	}
	var fate radio.Fate
	if inj.plan.DelayProb > 0 && inj.draws.Float64() < inj.plan.DelayProb {
		fate.Delay = exp(inj.draws, inj.plan.DelayMean)
		inj.Stats.Delayed++
	}
	if inj.plan.DupProb > 0 && inj.draws.Float64() < inj.plan.DupProb {
		fate.Dup, fate.DupDelay = true, inj.plan.DupLag
		inj.Stats.Dups++
	}
	return fate
}
