package faults

import (
	"math"
	"testing"

	"repro/internal/radio"
)

func nodeList(n int) []radio.NodeID {
	ids := make([]radio.NodeID, n)
	for i := range ids {
		ids[i] = radio.NodeID(i)
	}
	return ids
}

// TestReplayIdentical drives two injectors with equal (seed, plan)
// through the same delivery sequence and requires identical fates and
// counters: the pure-function-of-(Seed, plan) contract behind golden
// pinning.
func TestReplayIdentical(t *testing.T) {
	plan := Plan{
		Loss:      0.1,
		Burst:     &BurstLoss{LossOn: 0.9, MeanOn: 2, MeanOff: 6},
		DelayProb: 0.05, DelayMean: 0.2,
		DupProb: 0.05, DupLag: 0.01,
		Freeze:    &FreezePlan{Rate: 0.05, MeanDur: 5, Protected: []radio.NodeID{0}},
		Partition: &PartitionPlan{K: 2, Every: 40, Len: 10},
	}
	nodes := nodeList(8)
	a, err := New(7, 100, nodes, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(7, 100, nodes, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		now := float64(i) * 0.02
		from := radio.NodeID(i % 8)
		to := radio.NodeID((i + 3) % 8)
		fa := a.DeliverFate(now, from, to, 64)
		fb := b.DeliverFate(now, from, to, 64)
		if fa != fb {
			t.Fatalf("delivery %d: fates diverge: %+v vs %+v", i, fa, fb)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.Drops == 0 || a.Stats.Dups == 0 || a.Stats.Delayed == 0 {
		t.Fatalf("plan was not exercised: %+v", a.Stats)
	}
}

// TestZeroPlanInert: the zero plan never touches a delivery.
func TestZeroPlanInert(t *testing.T) {
	inj, err := New(1, 100, nodeList(4), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if fate := inj.DeliverFate(float64(i)*0.05, 0, 1, 64); fate != (radio.Fate{}) {
			t.Fatalf("zero plan produced a fate: %+v", fate)
		}
	}
	if inj.Stats != (Stats{}) {
		t.Fatalf("zero plan counted something: %+v", inj.Stats)
	}
	if (&Plan{}).Active() {
		t.Fatal("zero plan reports Active")
	}
}

// TestIIDLossRate checks the i.i.d. drop probability empirically.
func TestIIDLossRate(t *testing.T) {
	inj, err := New(3, 1e6, nodeList(2), Plan{Loss: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		inj.DeliverFate(float64(i), 0, 1, 64)
	}
	got := float64(inj.Stats.Drops) / n
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("i.i.d. loss rate %.3f, want ~0.2", got)
	}
}

// TestBurstEqualMean calibrates a pure burst plan (base loss zero, ON
// loss 0.9) against its analytic mean loss fraction
// LossOn * MeanOn/(MeanOn+MeanOff) and checks the OFF phases drop
// nothing while ON phases drop at LossOn.
func TestBurstEqualMean(t *testing.T) {
	plan := Plan{Burst: &BurstLoss{LossOn: 0.9, MeanOn: 2, MeanOff: 16}}
	inj, err := New(5, 1e5, nodeList(2), plan)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	const dt = 0.5
	for i := 0; i < n; i++ {
		inj.DeliverFate(float64(i)*dt, 0, 1, 64)
	}
	want := 0.9 * 2 / (2 + 16.0)
	got := float64(inj.Stats.Drops) / n
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("burst mean loss %.3f, want ~%.3f", got, want)
	}
}

// TestFreezeScheduleConsistent: Frozen agrees with the FreezeEvents
// stream, protected nodes never freeze, and frozen endpoints drop.
func TestFreezeScheduleConsistent(t *testing.T) {
	plan := Plan{Freeze: &FreezePlan{Rate: 0.2, MeanDur: 4, Protected: []radio.NodeID{0}}}
	nodes := nodeList(6)
	inj, err := New(11, 200, nodes, plan)
	if err != nil {
		t.Fatal(err)
	}
	evs := inj.FreezeEvents()
	if len(evs) == 0 {
		t.Fatal("no freeze events at rate 0.2 over 200s")
	}
	last := -1.0
	for _, ev := range evs {
		if ev.T < last {
			t.Fatalf("events out of order: %v", evs)
		}
		last = ev.T
		if ev.Node == 0 {
			t.Fatal("protected node frozen")
		}
		if ev.T > 200 {
			t.Fatalf("event past horizon: %+v", ev)
		}
	}
	// Replay the event stream as a state machine and check Frozen
	// matches between transitions (query strictly after each event;
	// queries must be time-monotone). A second injector drives the
	// delivery check at the same instants.
	chk, err := New(11, 200, nodes, plan)
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[radio.NodeID]bool)
	for i, ev := range evs {
		state[ev.Node] = ev.Frozen
		// Probe just after this event but before the next.
		probe := ev.T + 1e-9
		if i+1 < len(evs) && evs[i+1].T <= probe {
			continue
		}
		for id, frozen := range state {
			if got := inj.Frozen(id, probe); got != frozen {
				t.Fatalf("t=%g node %d: Frozen=%v, events say %v", probe, id, got, frozen)
			}
			fate := chk.DeliverFate(probe, id, 0, 64)
			if fate.Drop != frozen {
				t.Fatalf("t=%g node %d: delivery drop=%v, frozen=%v", probe, id, fate.Drop, frozen)
			}
		}
	}
}

// TestPartitionWindows: drops happen only inside windows, only across
// groups, symmetrically, and heal at the horizon.
func TestPartitionWindows(t *testing.T) {
	plan := Plan{Partition: &PartitionPlan{K: 2, Every: 50, Len: 10}}
	nodes := nodeList(8)
	inj, err := New(13, 300, nodes, plan)
	if err != nil {
		t.Fatal(err)
	}
	if inj.DeliverFate(20, 1, 2, 64).Drop {
		t.Fatal("drop before the first window")
	}
	// Inside window 0 ([50, 60)): some pair must be split, drops must be
	// symmetric, and same-node never drops.
	split := false
	for a := 0; a < 8 && !split; a++ {
		for b := a + 1; b < 8; b++ {
			fa := inj.DeliverFate(55, radio.NodeID(a), radio.NodeID(b), 64)
			fb := inj.DeliverFate(55, radio.NodeID(b), radio.NodeID(a), 64)
			if fa.Drop != fb.Drop {
				t.Fatalf("asymmetric partition between %d and %d", a, b)
			}
			if fa.Drop {
				split = true
				break
			}
		}
	}
	if !split {
		t.Fatal("no pair split inside the window")
	}
	if inj.DeliverFate(65, 1, 2, 64).Drop {
		t.Fatal("drop after the window closed")
	}
	if inj.DeliverFate(300, 1, 2, 64) != (radio.Fate{}) {
		t.Fatal("plan did not heal at the horizon")
	}
}

// TestValidate rejects out-of-domain plans.
func TestValidate(t *testing.T) {
	bad := []Plan{
		{Loss: 1.0},
		{Loss: -0.1},
		{Burst: &BurstLoss{LossOn: 0, MeanOn: 1, MeanOff: 1}},
		{Burst: &BurstLoss{LossOn: 0.5, MeanOn: 0, MeanOff: 1}},
		{DelayProb: 0.5},
		{DupProb: 0.5, DupLag: -1},
		{Freeze: &FreezePlan{Rate: 0, MeanDur: 1}},
		{Partition: &PartitionPlan{K: 1, Every: 10, Len: 5}},
		{Partition: &PartitionPlan{K: 2, Every: 10, Len: 10}},
	}
	for i, plan := range bad {
		if _, err := New(1, 100, nodeList(4), plan); err == nil {
			t.Errorf("plan %d accepted: %+v", i, plan)
		}
	}
	if _, err := New(1, 100, []radio.NodeID{0}, Plan{Freeze: &FreezePlan{Rate: 1, MeanDur: 1, Protected: []radio.NodeID{0}}}); err == nil {
		t.Error("all-protected freeze plan accepted")
	}
	if _, err := New(1, 0, nodeList(2), Plan{}); err == nil {
		t.Error("zero horizon accepted")
	}
}
