package adapt

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/task"
)

// This file is the adaptation engine's half of the Yield admission
// policy (internal/admit): the session engine prices an arriving
// session's best attainable utility with SessionBestUtility, buys
// incumbent degrade steps with Yield while the cumulative utility cost
// stays strictly under that gain, and settles with YieldResolve once the
// retried formation resolves — commit on admission, best-effort rollback
// on failure. The steps themselves are the ordinary dep-consistent
// ladder steps of degradeStep/upgradeStep, so everything stays on the
// compiled fast path and degrade→revert round-trips are float64-exact.

// yieldMark remembers one incumbent degrade applied on behalf of a
// pending yield admission, so a failed retry can roll it back.
type yieldMark struct {
	svcID  string
	taskID string
}

// evalFor caches the eq. 3 evaluator of a compiled problem; it shares
// the problem's Spec/Req, so cache identity follows cp identity.
func (e *Engine) evalFor(cp *core.CompiledProblem) *qos.Evaluator {
	if ev, ok := e.evals[cp]; ok {
		return ev
	}
	ev := &qos.Evaluator{Spec: cp.Spec, Req: cp.Req}
	e.evals[cp] = ev
	return ev
}

// SessionBestUtility returns the eq. 3 utility the service would earn if
// every task were served at its best dependency-consistent degradation
// stop — the marginal gain an arriving session offers the system, and
// the budget the Yield policy may spend on incumbent drift. Tasks with
// no consistent stop contribute 0 (the session can never fully form).
func (e *Engine) SessionBestUtility(svc *task.Service) (float64, error) {
	var u float64
	for _, t := range svc.Tasks {
		cp, err := e.compileFor(svc, t)
		if err != nil {
			return 0, err
		}
		stops := e.stopsFor(cp)
		if len(stops) == 0 {
			continue
		}
		best := math.Inf(1)
		for i := range stops {
			if d := cp.C.Distance(stops[i].a); d < best {
				best = d
			}
		}
		u += e.evalFor(cp).Utility(best)
	}
	return u, nil
}

// Yield buys incumbent degrade steps for a pending admission of forSvc:
// repeatedly degrade one task on the most-utilized node, most-loaded
// node first (ties by ascending node ID, sessions in admission order —
// the same deterministic orders the pressure trigger uses), while the
// cumulative utility cost stays strictly below gain and at most maxSteps
// steps apply. Every step is journaled under forSvc for YieldResolve.
// Returns the steps applied and their total utility cost.
func (e *Engine) Yield(now float64, forSvc string, gain float64, maxSteps int) (steps int, cost float64) {
	for steps < maxSteps {
		price, ok := e.yieldStep(now, forSvc, gain-cost)
		if !ok {
			break
		}
		cost += price
		steps++
	}
	return steps, cost
}

// yieldStep locates, prices and applies one affordable incumbent
// degrade: candidate nodes by descending utilisation, resident sessions
// in admission order, and a step is affordable when its utility price is
// strictly below budget. Returns the price paid.
func (e *Engine) yieldStep(now float64, forSvc string, budget float64) (float64, bool) {
	counts := e.counts(now)
	ids := e.cl.Medium.IDs()
	type cand struct {
		id   radio.NodeID
		util float64
	}
	cands := make([]cand, 0, len(ids))
	for _, id := range ids {
		if e.cl.Medium.Down(id) || e.avoid[id] {
			continue
		}
		if u := e.nodeUtil(id); u > 0 {
			cands = append(cands, cand{id: id, util: u})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].util != cands[j].util {
			return cands[i].util > cands[j].util
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		for _, svcID := range e.order {
			if svcID == forSvc {
				continue
			}
			st := e.sessions[svcID]
			if st.killed {
				continue
			}
			for _, ts := range st.tasks {
				if ts.node != c.id {
					continue
				}
				price, ok := e.priceDegrade(ts)
				if !ok || price >= budget {
					continue
				}
				if !e.degradeStep(now, st, ts, counts) {
					continue
				}
				e.yields[forSvc] = append(e.yields[forSvc], yieldMark{svcID: st.svcID, taskID: ts.t.ID})
				return price, true
			}
		}
	}
	return 0, false
}

// priceDegrade walks the same next-relieving-stop search as degradeStep
// without applying it, returning the step's utility price (clamped
// nonnegative: distance is non-decreasing along the path, but clamping
// keeps the budget arithmetic safe regardless).
func (e *Engine) priceDegrade(ts *taskState) (float64, bool) {
	curDemand, err := ts.cp.DemandAt(ts.cur)
	if err != nil {
		return 0, false
	}
	a := ts.cur.Clone()
	for {
		i, ok := ts.cp.NextDegradation(a)
		if !ok {
			return 0, false
		}
		a[i]++
		if ok, _ := ts.cp.C.DepsSatisfied(a); !ok {
			continue
		}
		demand, err := ts.cp.DemandAt(a)
		if err != nil {
			return 0, false
		}
		relieves := false
		for k := range demand {
			if demand[k] < curDemand[k] {
				relieves = true
				break
			}
		}
		if !relieves {
			continue
		}
		ev := e.evalFor(ts.cp)
		price := ev.Utility(ts.cp.C.Distance(ts.cur)) - ev.Utility(ts.cp.C.Distance(a))
		if price < 0 {
			price = 0
		}
		return price, true
	}
}

// YieldResolve settles the yield journal of forSvc: on commit the
// degrades stand (they are ordinary history entries the epoch scan may
// reclaim later); otherwise the steps are rolled back newest-first,
// best-effort — an incumbent that departed meanwhile, or whose freed
// capacity was since taken, keeps its degraded level and the ordinary
// upgrade reclamation recovers it when slack returns. Returns the number
// of steps actually rolled back.
func (e *Engine) YieldResolve(now float64, forSvc string, commit bool) (reverted int) {
	marks := e.yields[forSvc]
	if marks == nil {
		return 0
	}
	delete(e.yields, forSvc)
	if commit {
		return 0
	}
	for i := len(marks) - 1; i >= 0; i-- {
		m := marks[i]
		st, ok := e.sessions[m.svcID]
		if !ok {
			continue
		}
		for _, ts := range st.tasks {
			if ts.t.ID != m.taskID {
				continue
			}
			if e.revertStep(now, st, ts) {
				reverted++
			}
			break
		}
	}
	return reverted
}

// revertStep pops one entry of the task's degrade history like
// upgradeStep, but without the UtilLow slack ceiling — a yield rollback
// restores what the failed admission took, it does not wait for slack.
// Feasibility is still enforced by the reservation resize. Deliberately
// not counted as an Upgrade: reclamation stats measure slack recovery,
// not un-doing an admission attempt.
func (e *Engine) revertStep(now float64, st *state, ts *taskState) bool {
	if len(ts.hist) == 0 || e.cl.Medium.Down(ts.node) || e.avoid[ts.node] {
		return false
	}
	prev := ts.hist[len(ts.hist)-1]
	prevDemand, err := ts.cp.DemandAt(prev)
	if err != nil {
		return false
	}
	prov := e.cl.Node(ts.node).Provider
	if err := prov.ResizeReservation(st.svcID, ts.t.ID, prevDemand); err != nil {
		return false
	}
	dist := ts.cp.C.Distance(prev)
	st.org.ApplyAdaptation(ts.t.ID, core.Assignment3{
		TaskID: ts.t.ID, Node: ts.node, Level: ts.cp.Ladder.Level(prev),
		Distance: dist, CommCost: ts.comm,
	})
	ts.hist = ts.hist[:len(ts.hist)-1]
	ts.cur = prev
	st.events = append(st.events, Event{T: now, Kind: "revert", Task: ts.t.ID, Node: ts.node, Distance: dist})
	return true
}
