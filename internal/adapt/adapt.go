package adapt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
)

// ChurnPolicy selects what happens to a live session that loses a
// coalition member to node churn.
type ChurnPolicy int

const (
	// KillAffected tears the whole session down — the open system of
	// PR 3/PR 4 made explicit: a session either keeps its admission-time
	// coalition or dies. The baseline the adaptive policies beat in E22.
	KillAffected ChurnPolicy = iota
	// MigrateExact re-places orphaned tasks on another node at their
	// current QoS level; the session is killed only when no reachable
	// node can host the unchanged demand.
	MigrateExact
	// DegradeToFit re-places orphaned tasks via the Section 5
	// degradation walk, preferring the smallest QoS degradation that
	// restores feasibility on any reachable node (ranked by resulting
	// distance, then communication cost, then node ID); the session is
	// killed only when no node admits any acceptable level.
	DegradeToFit
)

// String names the policy (table rows of E22/E24).
func (p ChurnPolicy) String() string {
	switch p {
	case MigrateExact:
		return "migrate"
	case DegradeToFit:
		return "degrade"
	default:
		return "kill"
	}
}

// Config parameterizes the adaptation engine.
type Config struct {
	// OnChurn picks the churn repair policy (default KillAffected).
	OnChurn ChurnPolicy
	// DegradeOnPressure sheds QoS from sessions holding reservations on
	// nodes whose utilisation exceeds UtilHigh, one dep-consistent
	// ladder step at a time, freeing capacity for new arrivals.
	DegradeOnPressure bool
	// UtilHigh is the pressure threshold on a node's maximum per-kind
	// utilisation (default 0.9).
	UtilHigh float64
	// UpgradeOnSlack reclaims QoS at epoch scans: previously degraded
	// tasks step back toward their admission-time level while the
	// serving node's post-upgrade utilisation stays below UtilLow.
	UpgradeOnSlack bool
	// UtilLow is the hysteresis threshold upgrades must keep the node
	// under (default 0.55; must stay below UtilHigh or reclamation and
	// shedding would chase each other).
	UtilLow float64
	// Epoch is the reclamation scan period in simulated seconds
	// (default 10).
	Epoch float64
	// PressureEvery is the utilisation check period in simulated
	// seconds (default 1).
	PressureEvery float64
	// GridSteps must match the providers' ladder discretization so
	// admission-time levels re-anchor exactly onto the compiled ladder
	// (default qos.DefaultGridSteps, the provider default).
	GridSteps int
	// Penalty must match the providers' reward penalty function so the
	// engine's degradation steps retrace the admission-time Formulate
	// path (nil = qos.DefaultPenalty, the provider default).
	Penalty qos.PenaltyFunc
}

// withDefaults normalizes zero values.
func (c Config) withDefaults() Config {
	if c.UtilHigh <= 0 {
		c.UtilHigh = 0.9
	}
	if c.UtilLow <= 0 {
		c.UtilLow = 0.55
	}
	if c.Epoch <= 0 {
		c.Epoch = 10
	}
	if c.PressureEvery <= 0 {
		c.PressureEvery = 1
	}
	if c.GridSteps <= 0 {
		c.GridSteps = qos.DefaultGridSteps
	}
	return c
}

// Validate rejects configurations whose triggers would fight each other.
func (c Config) Validate() error {
	d := c.withDefaults()
	if d.UpgradeOnSlack && d.DegradeOnPressure && d.UtilLow >= d.UtilHigh {
		return fmt.Errorf("adapt: UtilLow %g must stay below UtilHigh %g (hysteresis)", d.UtilLow, d.UtilHigh)
	}
	return nil
}

// Stats aggregates the engine's counters over one run. Counter events
// before the engine's countFrom stamp (the session engine passes its
// warmup) are applied but not counted, mirroring the steady-state
// convention of session.Stats.
type Stats struct {
	// Triggers counts trigger activations: one per (churn event,
	// affected session) pair, and one per pressure tick per node found
	// above UtilHigh — a node pinned over the threshold counts every
	// tick it stays there.
	Triggers int
	// Epochs counts reclamation scans run.
	Epochs int
	// Degrades and Upgrades count applied single-level QoS changes;
	// Repairs counts churn-orphaned tasks successfully re-placed on
	// another node (the orphan's old node is down by definition, so
	// every repair is also a migration).
	Degrades, Upgrades, Repairs int
	// Kills counts admitted (post-warmup) sessions the engine had to
	// kill: churn policy KillAffected, or no node could host an
	// orphaned task under the configured policy.
	Kills int
	// AdaptedSessions counts departed sessions that experienced at
	// least one adaptation event.
	AdaptedSessions int
	// DriftSum accumulates, over departed (non-killed) sessions, the
	// session's mean task distance at departure minus at admission;
	// DriftN is the number of contributing sessions. Positive drift
	// means the engine traded QoS for survival or admission headroom.
	DriftSum float64
	// DriftN counts the sessions contributing to DriftSum.
	DriftN int
}

// MeanDrift is DriftSum/DriftN (0 when no session departed).
func (s *Stats) MeanDrift() float64 {
	if s.DriftN == 0 {
		return 0
	}
	return s.DriftSum / float64(s.DriftN)
}

// Merge folds another run's (or shard's) counters into s; all fields
// sum, so the fold is commutative and the fabric's ascending-shard merge
// order keeps city tables deterministic.
func (s *Stats) Merge(o *Stats) {
	s.Triggers += o.Triggers
	s.Epochs += o.Epochs
	s.Degrades += o.Degrades
	s.Upgrades += o.Upgrades
	s.Repairs += o.Repairs
	s.Kills += o.Kills
	s.AdaptedSessions += o.AdaptedSessions
	s.DriftSum += o.DriftSum
	s.DriftN += o.DriftN
}

// Event is one entry of a session's adaptation history.
type Event struct {
	// T is the simulated time of the event.
	T float64
	// Kind is "degrade", "upgrade", "repair" or "kill".
	Kind string
	// Task is the affected task ID ("" for kill).
	Task string
	// Node is the serving node after the event.
	Node radio.NodeID
	// Distance is the task's QoS distance after the event.
	Distance float64
}

// taskState tracks one live task on the compiled ladder.
type taskState struct {
	t    *task.Task
	cp   *core.CompiledProblem
	node radio.NodeID
	// comm is the task's current communication cost: admission-time
	// from the winning proposal, recomputed on migration, carried
	// forward unchanged by same-node degrades/upgrades.
	comm float64
	// cur is the current dep-consistent ladder assignment; admitDist is
	// the task's distance at admission.
	cur       qos.Assignment
	admit     qos.Assignment
	admitDist float64
	// hist stacks the dep-consistent assignments this task degraded
	// away from, most recent last; upgrades pop it, making
	// degrade→upgrade round-trips exact.
	hist []qos.Assignment
}

// state is one registered live session.
type state struct {
	svcID   string
	orgNode radio.NodeID
	org     *core.Organizer
	tasks   []*taskState
	counted bool
	killed  bool
	events  []Event
}

// compiledKey caches compiled problems per (spec, demand reference),
// mirroring the provider-side cache.
type compiledKey struct {
	spec string
	ref  string
}

// compiledEntry remembers the request the problem was compiled for:
// tasks sharing a demand reference must share a demand model but may
// carry different requests (task.Task's contract), so a hit requires
// request equality and a mismatch recompiles — the same guard the
// provider-side cache applies.
type compiledEntry struct {
	req qos.Request
	cp  *core.CompiledProblem
}

// Engine renegotiates live sessions' QoS in place. It is driven
// entirely by its owner (the session lifecycle engine) on the cluster's
// single-threaded virtual clock and draws no randomness of its own.
type Engine struct {
	cl        *core.Cluster
	cfg       Config
	countFrom float64

	compiled map[compiledKey]*compiledEntry
	// stops caches each compiled problem's degradation-path stops: the
	// path is availability-independent, so it is shared by every
	// re-placement over the same (spec, demand reference).
	stops    map[*core.CompiledProblem][]pathStop
	sessions map[string]*state
	order    []string // svcIDs in admission order
	// avoid marks nodes the engine must not place on or renegotiate
	// with: frozen nodes (internal/faults) whose radio is blackholed but
	// whose process — and reservation ledger — is still alive, so they
	// are neither Down nor usable (see SetAvoid, NodeUnreachable).
	avoid map[radio.NodeID]bool
	// yields journals incumbent degrades applied for pending Yield
	// admissions, keyed by the beneficiary service ID (see yield.go);
	// evals caches each compiled problem's eq. 3 evaluator for pricing.
	yields map[string][]yieldMark
	evals  map[*core.CompiledProblem]*qos.Evaluator

	// Steady-state scratch and free-lists: open-system runs admit and
	// forget sessions continuously, so session records, task records and
	// the per-trigger work lists are recycled instead of reallocated.
	// Event histories and degrade histories are NOT recycled — History's
	// callers may hold them past Forget — so a recycled record starts
	// with nil events/hist and ownership of the old slices stays with
	// whoever read them.
	statePool    []*state
	taskPool     []*taskState
	orderScratch []string
	orphanBuf    []*taskState

	stats Stats
}

// New builds an engine over the cluster. Events at simulated times
// before countFrom are applied but not counted (the session engine
// passes its warmup).
func New(cl *core.Cluster, cfg Config, countFrom float64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cl:        cl,
		cfg:       cfg.withDefaults(),
		countFrom: countFrom,
		compiled:  make(map[compiledKey]*compiledEntry),
		stops:     make(map[*core.CompiledProblem][]pathStop),
		sessions:  make(map[string]*state),
		avoid:     make(map[radio.NodeID]bool),
		yields:    make(map[string][]yieldMark),
		evals:     make(map[*core.CompiledProblem]*qos.Evaluator),
	}, nil
}

// SetAvoid marks or unmarks a node as unreachable-but-alive (frozen):
// avoided nodes are skipped as re-placement candidates and exempt from
// direct reservation resizes — a call into a node the radio cannot
// reach would model messages a partition is supposed to be dropping.
func (e *Engine) SetAvoid(id radio.NodeID, avoid bool) {
	if avoid {
		e.avoid[id] = true
	} else {
		delete(e.avoid, id)
	}
}

// Config returns the engine's normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns the engine's counters (also folded into session.Stats
// at the end of a run).
func (e *Engine) Stats() *Stats { return &e.stats }

// History returns a session's adaptation events in order, or nil; live
// until Forget. Tests and the qosim CLI read it.
func (e *Engine) History(svcID string) []Event {
	st, ok := e.sessions[svcID]
	if !ok {
		return nil
	}
	return st.events
}

// compileFor returns the cached compiled problem for one task of svc.
func (e *Engine) compileFor(svc *task.Service, t *task.Task) (*core.CompiledProblem, error) {
	ref := t.Ref(svc.ID)
	key := compiledKey{spec: svc.Spec.Name, ref: ref}
	if entry, ok := e.compiled[key]; ok && entry.req.Equal(&t.Request) {
		return entry.cp, nil
	}
	dm, ok := e.cl.Catalog.Demand(ref)
	if !ok {
		return nil, fmt.Errorf("adapt: demand reference %q not in catalog", ref)
	}
	entry := &compiledEntry{req: t.Request}
	cp, err := core.CompileProblem(svc.Spec, &entry.req, dm, e.cfg.GridSteps, e.cfg.Penalty)
	if err != nil {
		return nil, err
	}
	entry.cp = cp
	e.compiled[key] = entry
	return cp, nil
}

// getState pops a recycled session record (or allocates the first time).
func (e *Engine) getState() *state {
	if n := len(e.statePool); n > 0 {
		st := e.statePool[n-1]
		e.statePool = e.statePool[:n-1]
		return st
	}
	return &state{}
}

// getTaskState pops a recycled task record.
func (e *Engine) getTaskState() *taskState {
	if n := len(e.taskPool); n > 0 {
		ts := e.taskPool[n-1]
		e.taskPool = e.taskPool[:n-1]
		return ts
	}
	return &taskState{}
}

// Admit registers a freshly admitted session: its assignments are
// re-anchored from protocol Levels onto the compiled ladder so every
// later adaptation evaluates on the slot-indexed fast path. counted
// marks sessions arriving at or after the owner's warmup.
func (e *Engine) Admit(now float64, orgNode radio.NodeID, org *core.Organizer, counted bool) error {
	svc := org.Service()
	st := e.getState()
	st.svcID, st.orgNode, st.org, st.counted = svc.ID, orgNode, org, counted
	st.killed = false
	st.events = nil
	st.tasks = st.tasks[:0]
	for _, t := range svc.Tasks {
		a3, ok := org.Assignment(t.ID)
		if !ok {
			continue
		}
		cp, err := e.compileFor(svc, t)
		if err != nil {
			return err
		}
		a, err := cp.Ladder.AssignmentOf(a3.Level)
		if err != nil {
			return fmt.Errorf("adapt: session %s task %s: %w (provider GridSteps mismatch?)", svc.ID, t.ID, err)
		}
		ts := e.getTaskState()
		ts.t, ts.cp, ts.node, ts.comm = t, cp, a3.Node, a3.CommCost
		ts.cur, ts.admit, ts.admitDist = a, a.Clone(), cp.C.Distance(a)
		ts.hist = nil
		st.tasks = append(st.tasks, ts)
	}
	e.sessions[svc.ID] = st
	e.order = append(e.order, svc.ID)
	return nil
}

// Forget closes a session's adaptation record (departure, kill or
// drain). Safe to call for unknown sessions; later triggers skip the
// session entirely — adaptation of a departed session is a no-op.
func (e *Engine) Forget(now float64, svcID string) {
	st, ok := e.sessions[svcID]
	if !ok {
		return
	}
	delete(e.sessions, svcID)
	for i, id := range e.order {
		if id == svcID {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	if st.counted && !st.killed {
		if len(st.tasks) > 0 {
			var drift float64
			for _, ts := range st.tasks {
				drift += ts.cp.C.Distance(ts.cur) - ts.admitDist
			}
			e.stats.DriftSum += drift / float64(len(st.tasks))
			e.stats.DriftN++
		}
		if len(st.events) > 0 {
			e.stats.AdaptedSessions++
		}
	}
	// Recycle the records. The stats above were folded from values, not
	// retained slices, so a recycled session can never perturb them; the
	// event history's ownership has already passed to any History caller
	// (Admit starts the recycled record with nil events).
	for _, ts := range st.tasks {
		ts.t = nil
		e.taskPool = append(e.taskPool, ts)
	}
	st.org = nil
	e.statePool = append(e.statePool, st)
}

// counts reports whether events at time now enter the counters.
func (e *Engine) counts(now float64) bool { return now >= e.countFrom }

// NodeDown repairs every live session that lost a serving node: the
// owner calls it right after taking a node off the air. Orphaned
// reservations on dead nodes are dropped from their ledgers first (no
// protocol message can reach a node that is off the air), then each
// orphaned task is handled per the churn policy. It returns the IDs of
// sessions the engine decided to kill, in admission order; the owner
// tears them down.
func (e *Engine) NodeDown(now float64) (killed []string) {
	counts := e.counts(now)
	e.orderScratch = append(e.orderScratch[:0], e.order...)
	for _, svcID := range e.orderScratch {
		st, ok := e.sessions[svcID]
		if !ok {
			continue
		}
		orphans := e.orphanBuf[:0]
		for _, ts := range st.tasks {
			if e.cl.Medium.Down(ts.node) {
				orphans = append(orphans, ts)
			}
		}
		e.orphanBuf = orphans[:0]
		if len(orphans) == 0 {
			continue
		}
		if counts {
			e.stats.Triggers++
		}
		// Ledger hygiene first: the dead nodes' reservations for these
		// tasks can never be released over the air.
		for _, ts := range orphans {
			if n := e.cl.Node(ts.node); n != nil {
				n.Provider.DropTask(svcID, ts.t.ID)
			}
		}
		if e.cfg.OnChurn == KillAffected {
			killed = append(killed, e.kill(now, st, counts))
			continue
		}
		dead := false
		repaired := 0
		for _, ts := range orphans {
			if !e.replace(now, st, ts, counts) {
				dead = true
				break
			}
			repaired++
		}
		if dead {
			// Repairs applied to this session moments before its kill did
			// not save anything: back them out of the counter so Repairs
			// keeps meaning "repairs that saved a task". The adopted
			// reservations themselves are released by the kill teardown.
			if counts {
				e.stats.Repairs -= repaired
			}
			killed = append(killed, e.kill(now, st, counts))
		}
	}
	return killed
}

// NodeUnreachable repairs every live session with a task on a node
// that froze: still alive and holding its reservations, but radio-dark,
// so no message in either direction will land until it thaws. Unlike
// NodeDown the orphans' reservations are NOT dropped — the frozen
// process still accounts them, and only the owner's reconciliation
// sweep may reclaim them after the thaw (DESIGN.md §12). Callers
// should SetAvoid(id, true) first so re-placements skip the node. It
// returns the sessions the engine decided to kill, in admission order.
func (e *Engine) NodeUnreachable(now float64, id radio.NodeID) (killed []string) {
	counts := e.counts(now)
	e.orderScratch = append(e.orderScratch[:0], e.order...)
	for _, svcID := range e.orderScratch {
		st, ok := e.sessions[svcID]
		if !ok {
			continue
		}
		orphans := e.orphanBuf[:0]
		for _, ts := range st.tasks {
			if ts.node == id {
				orphans = append(orphans, ts)
			}
		}
		e.orphanBuf = orphans[:0]
		if len(orphans) == 0 {
			continue
		}
		if counts {
			e.stats.Triggers++
		}
		if e.cfg.OnChurn == KillAffected {
			killed = append(killed, e.kill(now, st, counts))
			continue
		}
		dead := false
		repaired := 0
		for _, ts := range orphans {
			if !e.replace(now, st, ts, counts) {
				dead = true
				break
			}
			repaired++
		}
		if dead {
			if counts {
				e.stats.Repairs -= repaired
			}
			killed = append(killed, e.kill(now, st, counts))
		}
	}
	return killed
}

// kill marks the session dead and records the event; the owner performs
// the actual teardown (which calls Forget).
func (e *Engine) kill(now float64, st *state, counts bool) string {
	st.killed = true
	st.events = append(st.events, Event{T: now, Kind: "kill"})
	if counts && st.counted {
		e.stats.Kills++
	}
	return st.svcID
}

// replace re-places one churn-orphaned task per the configured policy,
// returning false when no reachable node can host it.
func (e *Engine) replace(now float64, st *state, ts *taskState, counts bool) bool {
	type placement struct {
		node radio.NodeID
		// stop indexes the candidate's degradation-path stop
		// (DegradeToFit only, -1 for MigrateExact); the winner's
		// assignment and history are cloned out of the shared stops
		// cache only after selection.
		stop int
		dist float64
		comm float64
	}
	var best placement
	haveBest := false
	var curDemand resource.Vector
	var curDist float64
	var stops []pathStop
	if e.cfg.OnChurn == MigrateExact {
		d, err := ts.cp.DemandAt(ts.cur)
		if err != nil {
			return false
		}
		curDemand, curDist = d, ts.cp.C.Distance(ts.cur)
	} else {
		// The degradation path is availability-independent (see
		// WalkDegradationPath), so its dep-consistent stops and their
		// demands are computed once; each candidate node only picks its
		// own stopping point below.
		stops = e.stopsFor(ts.cp)
	}
	for _, id := range e.cl.Medium.IDs() {
		if e.cl.Medium.Down(id) || e.avoid[id] {
			continue
		}
		if id != st.orgNode && !e.cl.Medium.InRange(st.orgNode, id) {
			continue
		}
		res := e.cl.Node(id).Res
		var cand placement
		switch e.cfg.OnChurn {
		case MigrateExact:
			if !res.CanReserve(curDemand) {
				continue
			}
			cand = placement{node: id, stop: -1, dist: curDist}
		default: // DegradeToFit
			stop := -1
			for i := range stops {
				if res.CanReserve(stops[i].demand) {
					stop = i
					break
				}
			}
			if stop < 0 {
				continue
			}
			cand = placement{node: id, stop: stop, dist: ts.cp.C.Distance(stops[stop].a)}
		}
		if id != st.orgNode {
			cand.comm = e.cl.Medium.TxTime(st.orgNode, id, ts.t.DataBytes())
		}
		if math.IsNaN(cand.comm) || cand.comm > core.MaxCommCost {
			continue // effectively unreachable, mirroring proposal admission
		}
		if !haveBest || cand.dist < best.dist ||
			(cand.dist == best.dist && (cand.comm < best.comm ||
				(cand.comm == best.comm && cand.node < best.node))) {
			best, haveBest = cand, true
		}
	}
	if !haveBest {
		return false
	}
	// Materialize the winner only: clone its assignment (and, for a
	// degraded placement, the richer stops before it — the task's new
	// upgrade-reclamation history) out of the shared stops cache.
	a, hist := ts.cur.Clone(), ts.hist
	if best.stop >= 0 {
		a = stops[best.stop].a.Clone()
		hist = make([]qos.Assignment, best.stop)
		for i := 0; i < best.stop; i++ {
			hist[i] = stops[i].a.Clone()
		}
	}
	demand, err := ts.cp.DemandAt(a)
	if err != nil {
		return false
	}
	prov := e.cl.Node(best.node).Provider
	if err := prov.AdoptReservation(st.orgNode, st.svcID, ts.t.ID, demand); err != nil {
		return false
	}
	st.org.ApplyAdaptation(ts.t.ID, core.Assignment3{
		TaskID: ts.t.ID, Node: best.node, Level: ts.cp.Ladder.Level(a),
		Distance: best.dist, CommCost: best.comm,
	})
	ts.node = best.node
	ts.comm = best.comm
	ts.cur = a
	ts.hist = hist
	st.events = append(st.events, Event{T: now, Kind: "repair", Task: ts.t.ID, Node: best.node, Distance: best.dist})
	if counts {
		e.stats.Repairs++
	}
	return true
}

// pathStop is one dep-consistent stop of the Section 5 degradation
// path with its demand, from most to least preferred.
type pathStop struct {
	a      qos.Assignment
	demand resource.Vector
}

// stopsFor returns the cached degradation-path stops of a compiled
// problem, enumerating them on first use.
func (e *Engine) stopsFor(cp *core.CompiledProblem) []pathStop {
	if s, ok := e.stops[cp]; ok {
		return s
	}
	s := degradationStops(cp)
	e.stops[cp] = s
	return s
}

// degradationStops enumerates the dep-consistent stops of the
// degradation path from the all-preferred assignment to ladder
// exhaustion. The path is availability-independent, so the result
// serves every candidate node of a re-placement: a node's repair level
// is simply the first stop whose demand it can reserve, and the stops
// before it become the task's upgrade-reclamation history.
func degradationStops(cp *core.CompiledProblem) []pathStop {
	a := cp.Ladder.NewAssignment()
	var stops []pathStop
	for {
		if ok, _ := cp.C.DepsSatisfied(a); ok {
			demand, err := cp.DemandAt(a)
			if err != nil {
				return nil
			}
			stops = append(stops, pathStop{a: a.Clone(), demand: demand})
		}
		i, ok := cp.NextDegradation(a)
		if !ok {
			return stops
		}
		a[i]++
	}
}

// nodeUtil is a node's maximum per-kind utilisation (1 - avail/cap).
func (e *Engine) nodeUtil(id radio.NodeID) float64 {
	res := e.cl.Node(id).Res
	cap, avail := res.Capacity(), res.Available()
	var util float64
	for k := range cap {
		if cap[k] <= 0 {
			continue
		}
		if u := 1 - avail[k]/cap[k]; u > util {
			util = u
		}
	}
	return util
}

// Tick is the utilisation-pressure trigger: every node whose maximum
// per-kind utilisation crossed UtilHigh has its resident sessions shed
// QoS, cheapest reward loss first, until it recovers or nothing more
// can degrade. The owner calls it on a fixed cadence (PressureEvery).
func (e *Engine) Tick(now float64) {
	if !e.cfg.DegradeOnPressure {
		return
	}
	counts := e.counts(now)
	for _, id := range e.cl.Medium.IDs() {
		if e.cl.Medium.Down(id) || e.avoid[id] {
			continue
		}
		if e.nodeUtil(id) <= e.cfg.UtilHigh {
			continue
		}
		if counts {
			e.stats.Triggers++
		}
		e.shedNode(now, id, counts)
	}
}

// shedNode degrades sessions holding reservations on the node, one
// relieving step per task per pass, until utilisation drops to UtilHigh
// or a full pass applies nothing.
func (e *Engine) shedNode(now float64, id radio.NodeID, counts bool) {
	for {
		applied := false
		for _, svcID := range e.order {
			st := e.sessions[svcID]
			for _, ts := range st.tasks {
				if ts.node != id {
					continue
				}
				if e.degradeStep(now, st, ts, counts) {
					applied = true
					if e.nodeUtil(id) <= e.cfg.UtilHigh {
						return
					}
				}
			}
		}
		if !applied {
			return
		}
	}
}

// degradeStep walks the task one dep-consistent step down its ladder —
// continuing past steps that relieve nothing until one strictly lowers
// demand in some kind — and applies it exactly: resize the reservation,
// publish the new level to the organizer, push the old assignment onto
// the round-trip history.
func (e *Engine) degradeStep(now float64, st *state, ts *taskState, counts bool) bool {
	curDemand, err := ts.cp.DemandAt(ts.cur)
	if err != nil {
		return false
	}
	a := ts.cur.Clone()
	for {
		i, ok := ts.cp.NextDegradation(a)
		if !ok {
			return false
		}
		a[i]++
		if ok, _ := ts.cp.C.DepsSatisfied(a); !ok {
			continue
		}
		demand, err := ts.cp.DemandAt(a)
		if err != nil {
			return false
		}
		relieves := false
		for k := range demand {
			if demand[k] < curDemand[k] {
				relieves = true
				break
			}
		}
		if !relieves {
			// A stop that frees nothing is not worth applying; keep
			// walking. It is deliberately NOT pushed onto hist — the
			// history records applied states only, so one counted
			// degrade reverses as exactly one counted upgrade.
			continue
		}
		prov := e.cl.Node(ts.node).Provider
		if err := prov.ResizeReservation(st.svcID, ts.t.ID, demand); err != nil {
			return false
		}
		dist := ts.cp.C.Distance(a)
		st.org.ApplyAdaptation(ts.t.ID, core.Assignment3{
			TaskID: ts.t.ID, Node: ts.node, Level: ts.cp.Ladder.Level(a),
			Distance: dist, CommCost: ts.comm,
		})
		ts.hist = append(ts.hist, ts.cur)
		ts.cur = a
		st.events = append(st.events, Event{T: now, Kind: "degrade", Task: ts.t.ID, Node: ts.node, Distance: dist})
		if counts {
			e.stats.Degrades++
		}
		return true
	}
}

// EpochScan is the periodic reclamation trigger: previously degraded
// tasks step back toward their admission-time level, most recent
// degradation first, as long as the serving node's post-upgrade
// utilisation stays below UtilLow. The scan loops to a fixpoint, so
// re-running it at the same simulated state applies nothing —
// adaptation within one epoch is idempotent.
func (e *Engine) EpochScan(now float64) {
	if !e.cfg.UpgradeOnSlack {
		return
	}
	if e.counts(now) {
		e.stats.Epochs++
	}
	for {
		applied := false
		for _, svcID := range e.order {
			st := e.sessions[svcID]
			for _, ts := range st.tasks {
				if e.upgradeStep(now, st, ts) {
					applied = true
				}
			}
		}
		if !applied {
			return
		}
	}
}

// upgradeStep pops one entry of the task's degrade history when the
// richer level fits under the UtilLow ceiling, applying it exactly.
func (e *Engine) upgradeStep(now float64, st *state, ts *taskState) bool {
	if len(ts.hist) == 0 || e.cl.Medium.Down(ts.node) || e.avoid[ts.node] {
		return false
	}
	prev := ts.hist[len(ts.hist)-1]
	prevDemand, err := ts.cp.DemandAt(prev)
	if err != nil {
		return false
	}
	curDemand, err := ts.cp.DemandAt(ts.cur)
	if err != nil {
		return false
	}
	res := e.cl.Node(ts.node).Res
	cap, avail := res.Capacity(), res.Available()
	for k := range cap {
		if cap[k] <= 0 {
			continue
		}
		after := 1 - (avail[k]-(prevDemand[k]-curDemand[k]))/cap[k]
		if after > e.cfg.UtilLow {
			return false
		}
	}
	prov := e.cl.Node(ts.node).Provider
	if err := prov.ResizeReservation(st.svcID, ts.t.ID, prevDemand); err != nil {
		return false
	}
	dist := ts.cp.C.Distance(prev)
	st.org.ApplyAdaptation(ts.t.ID, core.Assignment3{
		TaskID: ts.t.ID, Node: ts.node, Level: ts.cp.Ladder.Level(prev),
		Distance: dist, CommCost: ts.comm,
	})
	ts.hist = ts.hist[:len(ts.hist)-1]
	ts.cur = prev
	st.events = append(st.events, Event{T: now, Kind: "upgrade", Task: ts.t.ID, Node: ts.node, Distance: dist})
	if e.counts(now) {
		e.stats.Upgrades++
	}
	return true
}
