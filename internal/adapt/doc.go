// Package adapt is the mid-session QoS renegotiation engine: it lets an
// open-system run change the QoS of *live* sessions instead of only
// blocking new ones or killing admitted ones, realizing the paper's
// run-time adaptation ("applications ... can dynamically change the
// executing quality level", Section 4) at neighbourhood scale.
//
// The engine watches three triggers and answers each with the compiled
// formulation fast path (core.CompiledProblem, DESIGN.md §7) re-run over
// the affected sessions' slots:
//
//   - Node churn: when a helper node drops off the air, every live
//     session with a task on it is repaired per the configured
//     ChurnPolicy — killed outright (the PR-3 behaviour made explicit),
//     migrated at its current level, or re-placed via the degradation
//     walk at the smallest QoS degradation that restores feasibility.
//   - Utilisation pressure: when a node's utilisation crosses UtilHigh,
//     sessions holding reservations there shed QoS one dep-consistent
//     ladder step at a time until the node recovers.
//   - Adaptation epochs: every Epoch seconds of simulated time a
//     reclamation scan upgrades previously degraded sessions back toward
//     their admission-time level wherever capacity has freed, with
//     UtilLow hysteresis so upgrades do not immediately re-trigger
//     pressure shedding.
//
// Every change is applied exactly: reservations are resized or adopted
// through the owning QoS Provider (so dissolution, reboot and ledger
// accounting see adapted sessions identically to awarded ones) and
// published to the session's Organizer via ApplyAdaptation (so sampled
// QoS distance and departure statistics report the current level, not
// the admission-time one). Degrade history is kept as a stack of
// dep-consistent assignments per task, which makes degrade→upgrade
// round-trips exact and epoch scans idempotent at a fixpoint.
//
// Determinism: the engine draws no randomness. All scans iterate
// sessions in admission order, tasks in declaration order and candidate
// nodes in ascending ID, and run on the cluster's single-threaded
// virtual clock, so a run with adaptation enabled is a pure function of
// (cluster, config, seed) — the property scripts/determinism.sh checks
// for experiments E22–E24. See DESIGN.md §10 for the full design.
package adapt
