package adapt

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/workload"
)

// formedSession builds a small static neighbourhood, negotiates one
// 2-task stream service on it, and returns the cluster plus the
// operating organizer.
func formedSession(t *testing.T, seed int64, nodes int) (*core.Cluster, *task.Service, *core.Organizer) {
	t.Helper()
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = nodes
	sc, err := workload.Build(scfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := workload.StreamService("svc", 2, 1.0)
	var res *core.Result
	org, err := sc.Cluster.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Cluster.Run(10)
	if res == nil || !res.Complete() {
		t.Fatalf("formation incomplete: %+v", res)
	}
	return sc.Cluster, svc, org
}

// snapshotAvailable copies every node's available vector.
func snapshotAvailable(cl *core.Cluster) map[radio.NodeID]resource.Vector {
	out := make(map[radio.NodeID]resource.Vector)
	for _, id := range cl.Nodes() {
		out[id] = cl.Node(id).Res.Available()
	}
	return out
}

// TestDegradeUpgradeRoundTripExact drives the full pressure round trip
// on a live session: filler load pushes the serving node over UtilHigh,
// Tick sheds QoS; the filler is released and EpochScan reclaims it. The
// ledger and the organizer's view must return to the admission state
// exactly (float64 equality), and a second EpochScan at the same
// simulated state must be a no-op — adaptation within one epoch is
// idempotent.
func TestDegradeUpgradeRoundTripExact(t *testing.T) {
	cl, svc, org := formedSession(t, 7, 6)
	// UtilLow sits above the serving node's admission-time utilisation,
	// so reclamation can climb all the way back; a tighter UtilLow would
	// correctly stop short (that is the hysteresis working, not a bug).
	eng, err := New(cl, Config{
		OnChurn:           DegradeToFit,
		DegradeOnPressure: true, UtilHigh: 0.9,
		UpgradeOnSlack: true, UtilLow: 0.8,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Admit(cl.Eng.Now(), 0, org, true); err != nil {
		t.Fatal(err)
	}
	admitSnap := org.Snapshot()
	preAvail := snapshotAvailable(cl)

	// Saturate every serving node with filler so Tick finds pressure.
	serving := make(map[radio.NodeID]bool)
	for _, a := range admitSnap {
		serving[a.Node] = true
	}
	for id := range serving {
		res := cl.Node(id).Res
		avail := res.Available()
		var filler resource.Vector
		for k := range avail {
			filler[k] = avail[k] * 0.9
		}
		if err := res.Reserve("filler", filler); err != nil {
			t.Fatalf("filler on node %d: %v", id, err)
		}
	}
	eng.Tick(cl.Eng.Now())
	if eng.Stats().Degrades == 0 {
		t.Fatal("pressure tick applied no degradation")
	}
	degraded := org.Snapshot()
	worse := false
	for tid, a := range degraded {
		if a.Distance > admitSnap[tid].Distance {
			worse = true
		}
	}
	if !worse {
		t.Fatal("degradation did not raise any task's distance")
	}

	// Free the filler; the epoch scan must reclaim the exact admission
	// state.
	for id := range serving {
		cl.Node(id).Res.Release("filler")
	}
	eng.EpochScan(cl.Eng.Now())
	restored := org.Snapshot()
	for _, tk := range svc.Tasks {
		if restored[tk.ID].Distance != admitSnap[tk.ID].Distance {
			t.Errorf("task %s: distance %g after round trip, admitted at %g",
				tk.ID, restored[tk.ID].Distance, admitSnap[tk.ID].Distance)
		}
	}
	for id, want := range preAvail {
		if got := cl.Node(id).Res.Available(); got != want {
			t.Errorf("node %d: available %v after round trip, want %v", id, got, want)
		}
	}

	// Idempotence: a second scan at the same state changes nothing.
	upgrades, hist := eng.Stats().Upgrades, len(eng.History(svc.ID))
	eng.EpochScan(cl.Eng.Now())
	if eng.Stats().Upgrades != upgrades || len(eng.History(svc.ID)) != hist {
		t.Errorf("second epoch scan at the same state applied changes: upgrades %d -> %d, events %d -> %d",
			upgrades, eng.Stats().Upgrades, hist, len(eng.History(svc.ID)))
	}
}

// TestForgottenSessionIsNoOp pins the departed-session contract: after
// Forget, churn repair, pressure ticks and epoch scans must all skip
// the session without effect.
func TestForgottenSessionIsNoOp(t *testing.T) {
	cl, svc, org := formedSession(t, 7, 6)
	eng, err := New(cl, Config{
		OnChurn:           DegradeToFit,
		DegradeOnPressure: true, UtilHigh: 0.0001, // any load is "pressure"
		UpgradeOnSlack: true, UtilLow: 0.00005,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Admit(cl.Eng.Now(), 0, org, true); err != nil {
		t.Fatal(err)
	}
	eng.Forget(cl.Eng.Now(), svc.ID)
	if eng.History(svc.ID) != nil {
		t.Fatal("history survived Forget")
	}
	before := *eng.Stats()
	snap := org.Snapshot()
	for _, a := range snap {
		if a.Node != 0 {
			cl.FailNode(a.Node)
		}
	}
	if killed := eng.NodeDown(cl.Eng.Now()); len(killed) != 0 {
		t.Fatalf("NodeDown killed forgotten sessions: %v", killed)
	}
	eng.Tick(cl.Eng.Now())
	eng.EpochScan(cl.Eng.Now())
	after := *eng.Stats()
	before.Epochs = after.Epochs // epoch counter ticks regardless of sessions
	if before != after {
		t.Errorf("adaptation of a forgotten session changed counters:\nbefore %+v\nafter  %+v", before, after)
	}
	if got := org.Snapshot(); len(got) != len(snap) {
		t.Errorf("forgotten session's assignments changed: %d -> %d", len(snap), len(got))
	}
	// Double Forget stays safe.
	eng.Forget(cl.Eng.Now(), svc.ID)
}

// TestStatsMergeSums pins the fold semantics: every counter sums.
func TestStatsMergeSums(t *testing.T) {
	a := Stats{Triggers: 1, Epochs: 2, Degrades: 3, Upgrades: 4,
		Repairs: 6, Kills: 7, AdaptedSessions: 8, DriftSum: 0.5, DriftN: 2}
	b := Stats{Triggers: 10, Epochs: 20, Degrades: 30, Upgrades: 40,
		Repairs: 60, Kills: 70, AdaptedSessions: 80, DriftSum: 1.5, DriftN: 6}
	m := a
	m.Merge(&b)
	want := Stats{Triggers: 11, Epochs: 22, Degrades: 33, Upgrades: 44,
		Repairs: 66, Kills: 77, AdaptedSessions: 88, DriftSum: 2.0, DriftN: 8}
	if m != want {
		t.Fatalf("merge wrong:\ngot  %+v\nwant %+v", m, want)
	}
	if math.Abs(m.MeanDrift()-0.25) > 1e-15 {
		t.Fatalf("mean drift %g, want 0.25", m.MeanDrift())
	}
	n := b
	n.Merge(&a)
	if n != m {
		t.Fatal("merge not commutative")
	}
}

// TestConfigValidation rejects inverted hysteresis thresholds.
func TestConfigValidation(t *testing.T) {
	bad := Config{DegradeOnPressure: true, UpgradeOnSlack: true, UtilHigh: 0.5, UtilLow: 0.6}
	if err := bad.Validate(); err == nil {
		t.Fatal("UtilLow >= UtilHigh accepted")
	}
	if _, err := New(nil, bad, 0); err == nil {
		t.Fatal("New accepted an invalid config")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}
