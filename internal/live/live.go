// Package live runs the coalition formation protocol over real
// concurrency: every node is a goroutine (the agent), radio links are
// buffered channels, and latency is modeled with scaled wall-clock
// timers. The protocol state machines are exactly the ones the simulator
// runs (internal/core); only the transport and timers differ, which is
// how experiment E10 checks runtime equivalence.
package live

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/trace"
)

// envelope is one in-flight message.
type envelope struct {
	from radio.NodeID
	msg  proto.Msg
}

// Config tunes the runtime.
type Config struct {
	// TimeScale converts virtual seconds (the protocol's time base) to
	// wall-clock: wall = virtual * TimeScale. Default 0.02 (a 0.25 s
	// proposal window becomes 5 ms of wall time).
	TimeScale float64
	// InboxDepth is each node's channel buffer; overflowing messages are
	// dropped like a saturated radio (default 256).
	InboxDepth int
	// Provider configures every node's QoS Provider.
	Provider core.ProviderConfig
	// Retry enables the at-least-once reliability layer on every node's
	// transport (DESIGN.md §12): retriable messages are sequenced and
	// blindly retransmitted on the bounded backoff schedule, and each
	// node's dispatcher deduplicates by (sender, seq) before handling.
	Retry proto.RetryConfig
	// Trace receives runtime events (today: inbox overflows), so daemon
	// backpressure shows up on the PR-8 flight recorder alongside the
	// protocol timeline. Nil discards.
	Trace trace.Tracer
}

// Runtime hosts the goroutine nodes.
type Runtime struct {
	cfg     Config
	catalog *core.Catalog
	start   time.Time

	mu    sync.RWMutex
	nodes map[radio.NodeID]*Node

	// Sent, Delivered and Dropped count message traffic. Overflows counts
	// the subset of drops caused by a full inbox (receiver saturation, as
	// opposed to range or membership failures) — the live analogue of a
	// congested radio queue, watched by the chaos invariants. All four
	// register into Obs alongside each node's protocol counters.
	Sent      obs.Counter
	Delivered obs.Counter
	Dropped   obs.Counter
	Overflows obs.Counter

	// Obs aggregates the runtime's traffic counters and every node's
	// retransmission/dedup counters into one snapshot.
	Obs *obs.Registry
}

// Node is one live agent.
type Node struct {
	ID       radio.NodeID
	Pos      radio.Pos
	RangeM   float64
	Bitrate  float64
	Res      *resource.Set
	Provider *core.Provider

	rt         *Runtime
	inbox      chan envelope
	quit       chan struct{}
	done       chan struct{}
	orgMu      sync.Mutex
	organizers map[string]*core.Organizer
	orgSink    func(svc string) proto.Sink // persistent lookup for proto.Dispatch
	reliable   *proto.Reliable             // non-nil when cfg.Retry is enabled
	dedup      proto.Dedup                 // touched only by the node's loop goroutine
}

// transport returns the node's outbound transport: the shared reliability
// wrapper when retries are on, the bare channel transport otherwise.
func (n *Node) transport() proto.Transport {
	if n.reliable != nil {
		return n.reliable
	}
	return liveTransport{rt: n.rt, id: n.ID}
}

// Duplicates reports the sequenced deliveries this node suppressed. Call
// after Shutdown (or quiesce) — the counter is owned by the loop goroutine.
func (n *Node) Duplicates() uint64 { return n.dedup.Duplicates.Load() }

// NewRuntime builds an empty runtime.
func NewRuntime(cfg Config) *Runtime {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 0.02
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 256
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.Nop{}
	}
	rt := &Runtime{
		cfg:     cfg,
		catalog: core.NewCatalog(),
		start:   time.Now(),
		nodes:   make(map[radio.NodeID]*Node),
		Obs:     obs.NewRegistry(),
	}
	rt.Obs.Register(obs.LiveSent, &rt.Sent)
	rt.Obs.Register(obs.LiveDelivered, &rt.Delivered)
	rt.Obs.Register(obs.LiveDropped, &rt.Dropped)
	rt.Obs.Register(obs.LiveOverflows, &rt.Overflows)
	rt.Obs.Counter(obs.Retransmissions)
	rt.Obs.Counter(obs.Duplicates)
	rt.Obs.Counter(obs.StaleReleases)
	return rt
}

// Catalog exposes the shared application catalog.
func (rt *Runtime) Catalog() *core.Catalog { return rt.catalog }

// liveTimers adapts wall-clock time to the protocol's virtual seconds.
type liveTimers struct{ rt *Runtime }

func (t liveTimers) Now() float64 {
	return time.Since(t.rt.start).Seconds() / t.rt.cfg.TimeScale
}

func (t liveTimers) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(time.Duration(d*t.rt.cfg.TimeScale*float64(time.Second)), fn)
}

// liveTransport sends through channels with modeled latency.
type liveTransport struct {
	rt *Runtime
	id radio.NodeID
}

func (t liveTransport) Self() radio.NodeID { return t.id }

// Send implements proto.Transport. In-process channels cannot fail the
// way a socket can; modeled loss (range, membership, overflow) is not a
// send error, so the live transport always returns nil.
func (t liveTransport) Send(to radio.NodeID, m proto.Msg) error {
	t.rt.send(t.id, to, m)
	return nil
}

func (t liveTransport) Broadcast(m proto.Msg) error {
	t.rt.mu.RLock()
	src, ok := t.rt.nodes[t.id]
	var dests []*Node
	if ok {
		for _, n := range t.rt.nodes {
			if n.ID != t.id && inRange(src, n) {
				dests = append(dests, n)
			}
		}
	}
	t.rt.mu.RUnlock()
	for _, n := range dests {
		t.rt.send(t.id, n.ID, m)
	}
	return nil
}

func (t liveTransport) CommCost(to radio.NodeID, size int64) float64 {
	if to == t.id {
		return 0
	}
	t.rt.mu.RLock()
	defer t.rt.mu.RUnlock()
	src, okA := t.rt.nodes[t.id]
	dst, okB := t.rt.nodes[to]
	if !okA || !okB || !inRange(src, dst) {
		return math.Inf(1)
	}
	rate := math.Min(src.Bitrate, dst.Bitrate)
	return float64(size*8) / rate
}

func inRange(a, b *Node) bool {
	return a.Pos.Dist(b.Pos) <= math.Min(a.RangeM, b.RangeM)
}

// send models latency with a timer, then posts to the destination inbox.
func (rt *Runtime) send(from, to radio.NodeID, m proto.Msg) {
	rt.Sent.Add(1)
	rt.mu.RLock()
	src, okA := rt.nodes[from]
	dst, okB := rt.nodes[to]
	rt.mu.RUnlock()
	if !okA || !okB {
		rt.Dropped.Add(1)
		return
	}
	var latency float64 // virtual seconds
	if from != to {
		if !inRange(src, dst) {
			rt.Dropped.Add(1)
			return
		}
		rate := math.Min(src.Bitrate, dst.Bitrate)
		latency = float64(m.WireSize()*8) / rate
	}
	deliver := func() {
		select {
		case dst.inbox <- envelope{from: from, msg: m}:
			rt.Delivered.Add(1)
		default:
			rt.Dropped.Add(1)
			rt.Overflows.Add(1)
			rt.cfg.Trace.Emit(trace.Event{
				T:      liveTimers{rt}.Now(),
				Node:   int(to),
				Role:   "engine",
				Kind:   "inbox-overflow",
				Detail: fmt.Sprintf("dropped %s from node %d (inbox full)", m.Kind(), from),
			})
		}
	}
	if latency <= 0 {
		deliver()
		return
	}
	liveTimers{rt}.After(latency, deliver)
}

// AddNode spawns a node goroutine.
func (rt *Runtime) AddNode(id radio.NodeID, pos radio.Pos, rangeM, bitrate float64, capacity resource.Vector) (*Node, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.nodes[id]; dup {
		return nil, fmt.Errorf("live: node %d already exists", id)
	}
	n := &Node{
		ID: id, Pos: pos, RangeM: rangeM, Bitrate: bitrate,
		Res:        resource.NewSet(capacity),
		rt:         rt,
		inbox:      make(chan envelope, rt.cfg.InboxDepth),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		organizers: make(map[string]*core.Organizer),
	}
	n.orgSink = func(svc string) proto.Sink {
		if o := n.organizer(svc); o != nil {
			return o
		}
		return nil // explicit nil interface, not a typed-nil *core.Organizer
	}
	if rt.cfg.Retry.Enabled() {
		n.reliable = proto.NewReliable(liveTransport{rt: rt, id: id}, liveTimers{rt}, rt.cfg.Retry)
		rt.Obs.Register(obs.Retransmissions, n.reliable.RetxCounter())
	}
	rt.Obs.Register(obs.Duplicates, &n.dedup.Duplicates)
	n.Provider = core.NewProvider(id, n.Res, rt.catalog, n.transport(), liveTimers{rt}, rt.cfg.Provider)
	rt.Obs.Register(obs.StaleReleases, &n.Provider.StaleReleases)
	rt.nodes[id] = n
	go n.loop()
	return n, nil
}

// loop is the agent goroutine: it drains the inbox and dispatches
// messages to the provider or the owning organizer.
func (n *Node) loop() {
	defer close(n.done)
	for {
		select {
		case <-n.quit:
			return
		case env := <-n.inbox:
			n.dispatch(env.from, env.msg)
		}
	}
}

func (n *Node) dispatch(from radio.NodeID, m proto.Msg) {
	proto.Dispatch(&n.dedup, from, m, n.orgSink, n.Provider)
}

func (n *Node) organizer(svc string) *core.Organizer {
	n.orgMu.Lock()
	defer n.orgMu.Unlock()
	return n.organizers[svc]
}

// Submit starts a negotiation from this node; onFormed fires on each
// completed (re)formation attempt, from a timer goroutine.
func (n *Node) Submit(svc *task.Service, cfg core.OrganizerConfig, onFormed func(*core.Result)) (*core.Organizer, error) {
	if err := n.rt.catalog.RegisterService(svc); err != nil {
		return nil, err
	}
	o, err := core.NewOrganizer(svc, n.transport(), liveTimers{n.rt}, cfg, onFormed)
	if err != nil {
		return nil, err
	}
	n.orgMu.Lock()
	if _, dup := n.organizers[svc.ID]; dup {
		n.orgMu.Unlock()
		return nil, fmt.Errorf("live: node %d already organizes %q", n.ID, svc.ID)
	}
	n.organizers[svc.ID] = o
	n.orgMu.Unlock()
	o.Start()
	return o, nil
}

// Node returns a node by ID, or nil.
func (rt *Runtime) Node(id radio.NodeID) *Node {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.nodes[id]
}

// Shutdown stops all node goroutines and waits for them to drain.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	nodes := make([]*Node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		nodes = append(nodes, n)
	}
	rt.mu.Unlock()
	for _, n := range nodes {
		close(n.quit)
	}
	for _, n := range nodes {
		<-n.done
	}
}

// VirtualSleep blocks for d virtual seconds of wall time; tests use it to
// wait out negotiation windows.
func (rt *Runtime) VirtualSleep(d float64) {
	time.Sleep(time.Duration(d * rt.cfg.TimeScale * float64(time.Second)))
}
