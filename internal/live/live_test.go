package live

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/workload"
)

// buildRuntime spawns a 6-node heterogeneous neighbourhood on a fast
// time scale.
func buildRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt := NewRuntime(Config{TimeScale: 0.01, Provider: core.DefaultProviderConfig})
	t.Cleanup(rt.Shutdown)
	profiles := []workload.Profile{
		workload.Phone, workload.PDA, workload.Laptop,
		workload.PDA, workload.Laptop, workload.Phone,
	}
	for i, p := range profiles {
		pos := core.GridPlacement(i, len(profiles), 10)
		if _, err := rt.AddNode(radio.NodeID(i), radio.Pos(pos), p.RangeM, p.Bitrate, p.Capacity); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	return rt
}

// waitResult polls for a formation result with a wall-clock deadline.
func waitResult(t *testing.T, ch <-chan *core.Result, wallTimeout time.Duration) *core.Result {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(wallTimeout):
		t.Fatal("live formation timed out")
		return nil
	}
}

func TestLiveFormationEndToEnd(t *testing.T) {
	rt := buildRuntime(t)
	svc := workload.StreamService("live1", 3, 1.0)
	ch := make(chan *core.Result, 4)
	org, err := rt.Node(0).Submit(svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		select {
		case ch <- r:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, ch, 10*time.Second)
	if !res.Complete() {
		t.Fatalf("unserved: %v", res.Unserved)
	}
	if len(res.Assigned) != 3 {
		t.Fatalf("assigned %d", len(res.Assigned))
	}
	// Reservations must exist on the winning nodes.
	for tid, a := range res.Assigned {
		n := rt.Node(a.Node)
		avail := n.Res.Available()
		cap := n.Res.Capacity()
		if avail == cap {
			t.Errorf("task %s: node %d holds no reservation", tid, a.Node)
		}
	}
	// Dissolution releases everything (poll briefly: dissolve is async).
	org.Dissolve("done")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		clean := true
		for i := 0; i < 6; i++ {
			n := rt.Node(radio.NodeID(i))
			if n.Res.Available() != n.Res.Capacity() {
				clean = false
			}
		}
		if clean {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("reservations not released after dissolve")
}

func TestLiveMessagesFlow(t *testing.T) {
	rt := buildRuntime(t)
	svc := workload.StreamService("live2", 2, 1.0)
	ch := make(chan *core.Result, 1)
	if _, err := rt.Node(0).Submit(svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		select {
		case ch <- r:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	waitResult(t, ch, 10*time.Second)
	if rt.Sent.Load() == 0 || rt.Delivered.Load() == 0 {
		t.Errorf("no traffic counted: sent=%d delivered=%d", rt.Sent.Load(), rt.Delivered.Load())
	}
}

func TestLiveDuplicateNodeRejected(t *testing.T) {
	rt := NewRuntime(Config{})
	defer rt.Shutdown()
	if _, err := rt.AddNode(1, radio.Pos{}, 10, 1e6, workload.Phone.Capacity); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddNode(1, radio.Pos{}, 10, 1e6, workload.Phone.Capacity); err == nil {
		t.Error("duplicate node accepted")
	}
	if rt.Node(1) == nil || rt.Node(9) != nil {
		t.Error("Node lookup broken")
	}
}

func TestLiveDuplicateServiceRejected(t *testing.T) {
	rt := buildRuntime(t)
	svc := workload.StreamService("dup", 1, 1.0)
	if _, err := rt.Node(0).Submit(svc, core.DefaultOrganizerConfig, nil); err != nil {
		t.Fatal(err)
	}
	svc2 := workload.StreamService("dup", 1, 1.0)
	if _, err := rt.Node(0).Submit(svc2, core.DefaultOrganizerConfig, nil); err == nil {
		t.Error("duplicate service accepted")
	}
}

func TestLiveOutOfRangeNodesExcluded(t *testing.T) {
	rt := NewRuntime(Config{TimeScale: 0.01, Provider: core.DefaultProviderConfig})
	defer rt.Shutdown()
	// Organizer phone at origin; one laptop far out of range.
	if _, err := rt.AddNode(0, radio.Pos{}, 60, 2e6, workload.Phone.Capacity); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddNode(1, radio.Pos{X: 10000}, 100, 11e6, workload.Laptop.Capacity); err != nil {
		t.Fatal(err)
	}
	svc := workload.StreamService("far", 2, 2.0) // too heavy for the phone
	ch := make(chan *core.Result, 1)
	if _, err := rt.Node(0).Submit(svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		select {
		case ch <- r:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, ch, 20*time.Second)
	for tid, a := range res.Assigned {
		if a.Node == 1 {
			t.Errorf("task %s assigned to unreachable node", tid)
		}
	}
}

// TestLiveInboxOverflowCounted pins the saturation accounting: once a
// node's inbox is full, further deliveries land in the Overflows counter
// (and Dropped), distinct from range/membership drops.
func TestLiveInboxOverflowCounted(t *testing.T) {
	rt := NewRuntime(Config{InboxDepth: 1, Provider: core.DefaultProviderConfig})
	if _, err := rt.AddNode(1, radio.Pos{}, 10, 1e6, workload.Phone.Capacity); err != nil {
		t.Fatal(err)
	}
	// Stop the agent goroutine so nothing drains the inbox, then stuff it
	// with zero-latency self-sends: one fits the buffer, the rest overflow.
	rt.Shutdown()
	for i := 0; i < 4; i++ {
		rt.send(1, 1, &proto.Heartbeat{ServiceID: "x"})
	}
	if got := rt.Delivered.Load(); got != 1 {
		t.Errorf("Delivered = %d, want 1 (inbox depth)", got)
	}
	if got := rt.Overflows.Load(); got != 3 {
		t.Errorf("Overflows = %d, want 3", got)
	}
	if d, o := rt.Dropped.Load(), rt.Overflows.Load(); d != o {
		t.Errorf("overflow drops must count in both: Dropped=%d Overflows=%d", d, o)
	}
	// An out-of-membership drop moves Dropped but not Overflows.
	rt.send(1, 99, &proto.Heartbeat{ServiceID: "x"})
	if d, o := rt.Dropped.Load(), rt.Overflows.Load(); d != o+1 {
		t.Errorf("membership drop miscounted: Dropped=%d Overflows=%d", d, o)
	}
}

// TestLiveRetryFormsAndDeduplicates runs a formation with the
// reliability layer on: the goroutine runtime must form and dissolve
// cleanly, with the receivers' dedup windows absorbing every blind
// retransmission the lossless channels deliver twice.
func TestLiveRetryFormsAndDeduplicates(t *testing.T) {
	rt := NewRuntime(Config{TimeScale: 0.01, Provider: core.DefaultProviderConfig, Retry: proto.DefaultRetryConfig})
	profiles := []workload.Profile{
		workload.Phone, workload.PDA, workload.Laptop,
		workload.PDA, workload.Laptop, workload.Phone,
	}
	for i, p := range profiles {
		pos := core.GridPlacement(i, len(profiles), 10)
		if _, err := rt.AddNode(radio.NodeID(i), radio.Pos(pos), p.RangeM, p.Bitrate, p.Capacity); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	svc := workload.StreamService("retry1", 3, 1.0)
	ch := make(chan *core.Result, 4)
	org, err := rt.Node(0).Submit(svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		select {
		case ch <- r:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, ch, 10*time.Second)
	if !res.Complete() {
		t.Fatalf("unserved under retry: %v", res.Unserved)
	}
	org.Dissolve("done")
	deadline := time.Now().Add(5 * time.Second)
	clean := false
	for time.Now().Before(deadline) && !clean {
		clean = true
		for i := range profiles {
			n := rt.Node(radio.NodeID(i))
			if n.Res.Available() != n.Res.Capacity() {
				clean = false
			}
		}
		if !clean {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !clean {
		t.Error("reservations not released after dissolve under retry")
	}
	// Let the retransmission tail land, then quiesce before reading the
	// loop-owned dedup counters.
	rt.VirtualSleep(3)
	rt.Shutdown()
	var retx, dups uint64
	for i := range profiles {
		n := rt.Node(radio.NodeID(i))
		retx += n.reliable.Retransmissions()
		dups += n.Duplicates()
	}
	if retx == 0 {
		t.Error("reliability layer issued no retransmissions")
	}
	if dups == 0 {
		t.Error("no duplicate was suppressed despite lossless retransmission")
	}
}

func TestVirtualSleepScaling(t *testing.T) {
	rt := NewRuntime(Config{TimeScale: 0.001})
	defer rt.Shutdown()
	start := time.Now()
	rt.VirtualSleep(1.0) // 1 virtual second = 1 ms wall
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("VirtualSleep(1.0) took %v at scale 0.001", elapsed)
	}
}
