package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v       Value
		typ     ValueType
		numeric bool
		num     float64
		str     string
	}{
		{Int(42), TypeInt, true, 42, "42"},
		{Int(-7), TypeInt, true, -7, "-7"},
		{Float(2.5), TypeFloat, true, 2.5, "2.5"},
		{Float(0), TypeFloat, true, 0, "0"},
		{Str("hq"), TypeString, false, math.NaN(), "hq"},
	}
	for _, c := range cases {
		if c.v.Type != c.typ {
			t.Errorf("%v: type = %v, want %v", c.v, c.v.Type, c.typ)
		}
		if c.v.IsNumeric() != c.numeric {
			t.Errorf("%v: IsNumeric = %v, want %v", c.v, c.v.IsNumeric(), c.numeric)
		}
		if c.numeric && c.v.Num() != c.num {
			t.Errorf("%v: Num = %v, want %v", c.v, c.v.Num(), c.num)
		}
		if !c.numeric && !math.IsNaN(c.v.Num()) {
			t.Errorf("%v: Num should be NaN for strings", c.v)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: String = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) {
		t.Error("Int(3) != Int(3)")
	}
	if Int(3).Equal(Int(4)) {
		t.Error("Int(3) == Int(4)")
	}
	if Int(3).Equal(Float(3)) {
		t.Error("cross-type equality must be false: Int(3) == Float(3)")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
	if !Float(1.5).Equal(Float(1.5)) || Float(1.5).Equal(Float(1.6)) {
		t.Error("float equality broken")
	}
}

func TestValueEqualReflexiveAndSymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if !va.Equal(va) {
			return false
		}
		return va.Equal(vb) == vb.Equal(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueTypeString(t *testing.T) {
	if TypeInt.String() != "integer" || TypeFloat.String() != "float" || TypeString.String() != "string" {
		t.Error("ValueType names do not match the paper's Type = {integer, float, string}")
	}
	if ValueType(99).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestDomainValidate(t *testing.T) {
	valid := []Domain{
		DiscreteInts(1, 3, 8, 16, 24),
		DiscreteFloats(0.5, 1.5),
		DiscreteStrings("hq", "main", "fast"),
		IntRange(1, 30),
		FloatRange(0, 1),
		FloatRange(5, 5), // degenerate point interval is legal
	}
	for i, d := range valid {
		if err := d.Validate(); err != nil {
			t.Errorf("valid domain %d rejected: %v", i, err)
		}
	}
	invalid := []Domain{
		{Kind: Discrete, Type: TypeInt},                                  // empty
		{Kind: Discrete, Type: TypeInt, Values: []Value{Int(1), Int(1)}}, // dup
		{Kind: Discrete, Type: TypeInt, Values: []Value{Float(1)}},       // type mismatch
		{Kind: Continuous, Type: TypeString, Min: 0, Max: 1},             // string continuous
		{Kind: Continuous, Type: TypeFloat, Min: 2, Max: 1},              // inverted
		{Kind: Continuous, Type: TypeFloat, Min: math.NaN(), Max: 1},     // NaN
		{Kind: DomainKind(9), Type: TypeInt, Values: []Value{Int(1)}},    // bad kind
	}
	for i, d := range invalid {
		if err := d.Validate(); err == nil {
			t.Errorf("invalid domain %d accepted", i)
		}
	}
}

func TestDomainContainsAndIndex(t *testing.T) {
	d := DiscreteInts(1, 3, 8, 16, 24)
	if !d.Contains(Int(8)) || d.Contains(Int(9)) {
		t.Error("discrete Contains broken")
	}
	if d.IndexOf(Int(1)) != 0 || d.IndexOf(Int(24)) != 4 || d.IndexOf(Int(2)) != -1 {
		t.Error("quality index positions broken")
	}
	c := IntRange(1, 30)
	if !c.Contains(Int(1)) || !c.Contains(Int(30)) || c.Contains(Int(31)) || c.Contains(Int(0)) {
		t.Error("continuous Contains broken at bounds")
	}
	if c.Contains(Str("x")) {
		t.Error("continuous domain contains a string")
	}
	if c.IndexOf(Int(5)) != -1 {
		t.Error("IndexOf must be -1 for continuous domains")
	}
	// Type-strict: float domain does not contain ints.
	fd := FloatRange(0, 1)
	if fd.Contains(Int(0)) {
		t.Error("float domain must not contain int-typed values")
	}
}

func TestDomainWidth(t *testing.T) {
	if w := DiscreteInts(1, 3, 8, 16, 24).Width(); w != 4 {
		t.Errorf("discrete width = %v, want 4 (length-1)", w)
	}
	if w := IntRange(1, 30).Width(); w != 29 {
		t.Errorf("continuous width = %v, want 29 (max-min)", w)
	}
	if w := DiscreteInts(7).Width(); w != 0 {
		t.Errorf("single-value domain width = %v, want 0", w)
	}
}

func TestDomainKindString(t *testing.T) {
	if Discrete.String() != "discrete" || Continuous.String() != "continuous" {
		t.Error("DomainKind names do not match the paper's Domain = {continuous, discrete}")
	}
}
