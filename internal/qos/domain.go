package qos

import (
	"fmt"
	"math"
)

// DomainKind distinguishes discrete from continuous attribute domains.
// The paper defines Domain = {continuous, discrete}.
type DomainKind uint8

const (
	// Discrete domains enumerate their admissible values in a canonical
	// order; the position of a value in that order is its quality index
	// (after Lee et al., RTSS'99), used by eq. 5 for discrete attributes.
	Discrete DomainKind = iota
	// Continuous domains are closed numeric intervals [Min, Max];
	// eq. 5 normalizes differences by the interval width.
	Continuous
)

// String returns the paper's name for the domain kind.
func (k DomainKind) String() string {
	if k == Discrete {
		return "discrete"
	}
	return "continuous"
}

// Domain describes the set of admissible values of one attribute
// (Val = {Type, Domain} in the paper's representation).
type Domain struct {
	Kind DomainKind
	Type ValueType

	// Values holds the canonical ordered enumeration of a discrete
	// domain. The index of a value in this slice is its quality index.
	Values []Value

	// Min and Max bound a continuous domain. Only numeric types may be
	// continuous.
	Min, Max float64
}

// DiscreteInts builds a discrete integer domain from the given ordered
// values.
func DiscreteInts(vs ...int64) Domain {
	d := Domain{Kind: Discrete, Type: TypeInt, Values: make([]Value, len(vs))}
	for i, v := range vs {
		d.Values[i] = Int(v)
	}
	return d
}

// DiscreteFloats builds a discrete float domain from the given ordered
// values.
func DiscreteFloats(vs ...float64) Domain {
	d := Domain{Kind: Discrete, Type: TypeFloat, Values: make([]Value, len(vs))}
	for i, v := range vs {
		d.Values[i] = Float(v)
	}
	return d
}

// DiscreteStrings builds a discrete string domain from the given ordered
// values.
func DiscreteStrings(vs ...string) Domain {
	d := Domain{Kind: Discrete, Type: TypeString, Values: make([]Value, len(vs))}
	for i, v := range vs {
		d.Values[i] = Str(v)
	}
	return d
}

// IntRange builds a continuous integer domain covering [min, max].
func IntRange(min, max int64) Domain {
	return Domain{Kind: Continuous, Type: TypeInt, Min: float64(min), Max: float64(max)}
}

// FloatRange builds a continuous float domain covering [min, max].
func FloatRange(min, max float64) Domain {
	return Domain{Kind: Continuous, Type: TypeFloat, Min: min, Max: max}
}

// Validate checks internal consistency of the domain.
func (d Domain) Validate() error {
	switch d.Kind {
	case Discrete:
		if len(d.Values) == 0 {
			return fmt.Errorf("qos: discrete domain has no values")
		}
		for i, v := range d.Values {
			if v.Type != d.Type {
				return fmt.Errorf("qos: discrete domain value %d has type %v, domain declares %v", i, v.Type, d.Type)
			}
			for j := 0; j < i; j++ {
				if d.Values[j].Equal(v) {
					return fmt.Errorf("qos: discrete domain repeats value %v", v)
				}
			}
		}
	case Continuous:
		if d.Type == TypeString {
			return fmt.Errorf("qos: continuous domains must be numeric")
		}
		if math.IsNaN(d.Min) || math.IsNaN(d.Max) || d.Min > d.Max {
			return fmt.Errorf("qos: continuous domain has invalid bounds [%v, %v]", d.Min, d.Max)
		}
	default:
		return fmt.Errorf("qos: unknown domain kind %d", d.Kind)
	}
	return nil
}

// Contains reports whether v is an admissible value of the domain.
func (d Domain) Contains(v Value) bool {
	switch d.Kind {
	case Discrete:
		return d.IndexOf(v) >= 0
	case Continuous:
		if v.Type != d.Type || !v.IsNumeric() {
			return false
		}
		n := v.Num()
		return n >= d.Min && n <= d.Max
	}
	return false
}

// IndexOf returns the quality index (position in the canonical ordering)
// of v within a discrete domain, or -1 when v is not a member or the
// domain is continuous.
func (d Domain) IndexOf(v Value) int {
	if d.Kind != Discrete {
		return -1
	}
	for i, dv := range d.Values {
		if dv.Equal(v) {
			return i
		}
	}
	return -1
}

// Width returns the normalization denominator used by eq. 5:
// max(Qk)-min(Qk) for continuous domains and length(Qk)-1 for discrete
// ones. Degenerate single-point domains yield width 0; the evaluator
// treats any two values in such a domain as distance 0.
func (d Domain) Width() float64 {
	if d.Kind == Continuous {
		return d.Max - d.Min
	}
	return float64(len(d.Values) - 1)
}
