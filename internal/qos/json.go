package qos

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// This file provides a stable JSON wire format for specs and requests so
// that cmd/qosspec can validate externally authored files and so that
// service descriptions can be exchanged between nodes in a
// platform-neutral form.

// MarshalJSON encodes a Value as a bare JSON scalar.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.Type {
	case TypeInt:
		return json.Marshal(v.I)
	case TypeFloat:
		return json.Marshal(v.F)
	default:
		return json.Marshal(v.S)
	}
}

// UnmarshalJSON decodes a bare JSON scalar into a Value. JSON numbers
// with no fractional part decode as integers, consistent with the specs
// authored in this repo; float domains accept either form because
// Domain-aware decoding normalizes via coerce.
func (v *Value) UnmarshalJSON(b []byte) error {
	var raw any
	d := json.NewDecoder(bytes.NewReader(b))
	d.UseNumber()
	if err := d.Decode(&raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			*v = Int(i)
			return nil
		}
		f, err := x.Float64()
		if err != nil {
			return err
		}
		*v = Float(f)
		return nil
	case string:
		*v = Str(x)
		return nil
	default:
		return fmt.Errorf("qos: cannot decode %T as Value", raw)
	}
}

// coerce converts a decoded Value to the type the domain declares, so
// that e.g. "8" in a float domain compares equal to Float(8).
func (d Domain) coerce(v Value) Value {
	if v.Type == d.Type {
		return v
	}
	switch {
	case d.Type == TypeFloat && v.Type == TypeInt:
		return Float(float64(v.I))
	case d.Type == TypeInt && v.Type == TypeFloat && v.F == float64(int64(v.F)):
		return Int(int64(v.F))
	}
	return v
}

type domainJSON struct {
	Kind   string  `json:"kind"`
	Type   string  `json:"type"`
	Values []Value `json:"values,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
}

type attrJSON struct {
	ID     string     `json:"id"`
	Name   string     `json:"name,omitempty"`
	Domain domainJSON `json:"domain"`
}

type dimJSON struct {
	ID         string     `json:"id"`
	Name       string     `json:"name,omitempty"`
	Attributes []attrJSON `json:"attributes"`
}

type depJSON struct {
	Kind  string  `json:"kind"`
	A     string  `json:"a"` // "dim/attr"
	B     string  `json:"b"`
	AVal  *Value  `json:"aval,omitempty"`
	BSet  []Value `json:"bset,omitempty"`
	Bound float64 `json:"bound,omitempty"`
}

type specJSON struct {
	Name       string    `json:"name"`
	Dimensions []dimJSON `json:"dimensions"`
	Deps       []depJSON `json:"deps,omitempty"`
}

func typeName(t ValueType) string { return t.String() }

func parseType(s string) (ValueType, error) {
	switch s {
	case "integer", "int":
		return TypeInt, nil
	case "float":
		return TypeFloat, nil
	case "string":
		return TypeString, nil
	}
	return 0, fmt.Errorf("qos: unknown value type %q", s)
}

func parseAttrKey(s string) (AttrKey, error) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return AttrKey{Dim: s[:i], Attr: s[i+1:]}, nil
		}
	}
	return AttrKey{}, fmt.Errorf("qos: attribute reference %q is not of the form dim/attr", s)
}

// EncodeSpec renders the spec as indented JSON.
func EncodeSpec(s *Spec) ([]byte, error) {
	js := specJSON{Name: s.Name}
	for _, d := range s.Dimensions {
		dj := dimJSON{ID: d.ID, Name: d.Name}
		for _, a := range d.Attributes {
			aj := attrJSON{ID: a.ID, Name: a.Name, Domain: domainJSON{
				Kind: a.Domain.Kind.String(),
				Type: typeName(a.Domain.Type),
			}}
			if a.Domain.Kind == Discrete {
				aj.Domain.Values = a.Domain.Values
			} else {
				aj.Domain.Min, aj.Domain.Max = a.Domain.Min, a.Domain.Max
			}
			dj.Attributes = append(dj.Attributes, aj)
		}
		js.Dimensions = append(js.Dimensions, dj)
	}
	for _, dep := range s.Deps {
		dj := depJSON{A: dep.A.String(), B: dep.B.String(), Bound: dep.Bound}
		switch dep.Kind {
		case DepRequires:
			dj.Kind = "requires"
			av := dep.AVal
			dj.AVal = &av
			dj.BSet = dep.BSet
		case DepMaxSum:
			dj.Kind = "maxsum"
		case DepMaxProduct:
			dj.Kind = "maxproduct"
		}
		js.Deps = append(js.Deps, dj)
	}
	return json.MarshalIndent(js, "", "  ")
}

// DecodeSpec parses and validates a JSON spec.
func DecodeSpec(b []byte) (*Spec, error) {
	var js specJSON
	if err := json.Unmarshal(b, &js); err != nil {
		return nil, fmt.Errorf("qos: decoding spec: %w", err)
	}
	s := &Spec{Name: js.Name}
	for _, dj := range js.Dimensions {
		d := Dimension{ID: dj.ID, Name: dj.Name}
		for _, aj := range dj.Attributes {
			t, err := parseType(aj.Domain.Type)
			if err != nil {
				return nil, err
			}
			dom := Domain{Type: t}
			switch aj.Domain.Kind {
			case "discrete":
				dom.Kind = Discrete
				for _, v := range aj.Domain.Values {
					dom.Values = append(dom.Values, dom.coerce(v))
				}
			case "continuous":
				dom.Kind = Continuous
				dom.Min, dom.Max = aj.Domain.Min, aj.Domain.Max
			default:
				return nil, fmt.Errorf("qos: unknown domain kind %q", aj.Domain.Kind)
			}
			d.Attributes = append(d.Attributes, Attribute{ID: aj.ID, Name: aj.Name, Domain: dom})
		}
		s.Dimensions = append(s.Dimensions, d)
	}
	for _, dj := range js.Deps {
		a, err := parseAttrKey(dj.A)
		if err != nil {
			return nil, err
		}
		b2, err := parseAttrKey(dj.B)
		if err != nil {
			return nil, err
		}
		dep := Dependency{A: a, B: b2, Bound: dj.Bound}
		switch dj.Kind {
		case "requires":
			dep.Kind = DepRequires
			if dj.AVal == nil {
				return nil, fmt.Errorf("qos: requires dependency missing aval")
			}
			dep.AVal = *dj.AVal
			dep.BSet = dj.BSet
		case "maxsum":
			dep.Kind = DepMaxSum
		case "maxproduct":
			dep.Kind = DepMaxProduct
		default:
			return nil, fmt.Errorf("qos: unknown dependency kind %q", dj.Kind)
		}
		s.Deps = append(s.Deps, dep)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

type setJSON struct {
	Value *Value   `json:"value,omitempty"`
	From  *float64 `json:"from,omitempty"`
	To    *float64 `json:"to,omitempty"`
}

type attrPrefJSON struct {
	Attr string    `json:"attr"`
	Sets []setJSON `json:"accept"`
}

type dimPrefJSON struct {
	Dim   string         `json:"dim"`
	Attrs []attrPrefJSON `json:"attrs"`
}

type requestJSON struct {
	Service string        `json:"service"`
	Dims    []dimPrefJSON `json:"dimensions"`
}

// EncodeRequest renders the request as indented JSON.
func EncodeRequest(r *Request) ([]byte, error) {
	js := requestJSON{Service: r.Service}
	for _, dp := range r.Dims {
		dj := dimPrefJSON{Dim: dp.Dim}
		for _, ap := range dp.Attrs {
			aj := attrPrefJSON{Attr: ap.Attr}
			for _, set := range ap.Sets {
				if set.Continuous {
					f, t := set.From, set.To
					aj.Sets = append(aj.Sets, setJSON{From: &f, To: &t})
				} else {
					v := set.Single
					aj.Sets = append(aj.Sets, setJSON{Value: &v})
				}
			}
			dj.Attrs = append(dj.Attrs, aj)
		}
		js.Dims = append(js.Dims, dj)
	}
	return json.MarshalIndent(js, "", "  ")
}

// DecodeRequest parses a JSON request; validation against a spec is the
// caller's responsibility (it needs the spec).
func DecodeRequest(b []byte) (*Request, error) {
	var js requestJSON
	if err := json.Unmarshal(b, &js); err != nil {
		return nil, fmt.Errorf("qos: decoding request: %w", err)
	}
	r := &Request{Service: js.Service}
	for _, dj := range js.Dims {
		dp := DimPref{Dim: dj.Dim}
		for _, aj := range dj.Attrs {
			ap := AttrPref{Attr: aj.Attr}
			for _, sj := range aj.Sets {
				switch {
				case sj.Value != nil:
					ap.Sets = append(ap.Sets, One(*sj.Value))
				case sj.From != nil && sj.To != nil:
					ap.Sets = append(ap.Sets, Span(*sj.From, *sj.To))
				default:
					return nil, fmt.Errorf("qos: request %q: accept entry needs value or from/to", js.Service)
				}
			}
			dp.Attrs = append(dp.Attrs, ap)
		}
		r.Dims = append(r.Dims, dp)
	}
	return r, nil
}
