package qos

import (
	"fmt"
	"math"
)

// Evaluator computes the multi-attribute proposal evaluation of Section 6:
//
//	distance = sum_k w_k * dist(Q_k)                  (eq. 2)
//	w_k      = (n-k+1)/n                              (eq. 3)
//	dist(Qk) = sum_i w_i * dif(Prop_ki, Pref_ki)      (eq. 4)
//
// with dif the normalized value difference (continuous domains) or the
// normalized quality-index difference (discrete domains) of eq. 5. The
// paper leaves the intra-dimension attribute weights w_i implicit; we use
// the formula analogous to eq. 3, w_i = (attr_k-i+1)/attr_k.
//
// The paper's eq. 5 is a signed difference; a proposal strictly better
// than the preference would produce a negative term. By default the
// evaluator uses the absolute difference so that distance is a metric and
// the best proposal (lowest evaluation) is the one closest to the
// preferences in either direction; set Signed to recover the paper's raw
// form.
type Evaluator struct {
	Spec   *Spec
	Req    *Request
	Signed bool
}

// NewEvaluator builds an evaluator after validating the request against
// the spec.
func NewEvaluator(spec *Spec, req *Request) (*Evaluator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := req.Validate(spec); err != nil {
		return nil, err
	}
	return &Evaluator{Spec: spec, Req: req}, nil
}

// DimDistance is the per-dimension breakdown of an evaluation.
type DimDistance struct {
	Dim      string
	Weight   float64
	Distance float64
}

// Distance evaluates a proposal level against the user's preferences.
// The proposal must be admissible (Req.Admits and spec dependencies);
// inadmissible proposals return an error, mirroring the paper's rule that
// only admissible proposals are evaluated.
func (e *Evaluator) Distance(prop Level) (float64, error) {
	d, _, err := e.distance(prop, false)
	return d, err
}

// DistanceBreakdown evaluates a proposal and also returns the weighted
// per-dimension contributions, for diagnostics and the qosim CLI.
func (e *Evaluator) DistanceBreakdown(prop Level) (float64, []DimDistance, error) {
	return e.distance(prop, true)
}

func (e *Evaluator) distance(prop Level, breakdown bool) (float64, []DimDistance, error) {
	if !e.Req.Admits(prop) {
		return 0, nil, fmt.Errorf("qos: proposal %v is not admissible for request %q", prop, e.Req.Service)
	}
	if ok, di := e.Spec.DepsSatisfied(prop); !ok {
		return 0, nil, fmt.Errorf("qos: proposal %v violates dependency %d of spec %q", prop, di, e.Spec.Name)
	}
	n := len(e.Req.Dims)
	var total float64
	var dims []DimDistance
	for k, dp := range e.Req.Dims {
		wk := RankWeight(k+1, n) // eq. 3; k is 0-based here
		ak := len(dp.Attrs)
		var dd float64
		for i, ap := range dp.Attrs {
			wi := RankWeight(i+1, ak)
			key := AttrKey{Dim: dp.Dim, Attr: ap.Attr}
			pref, ok := e.Req.PreferredValue(key)
			if !ok {
				return 0, nil, fmt.Errorf("qos: request %q carries no preference for attribute %v", e.Req.Service, key)
			}
			dif, err := e.Dif(key, prop[key], pref)
			if err != nil {
				return 0, nil, err
			}
			dd += wi * dif
		}
		total += wk * dd
		if breakdown {
			dims = append(dims, DimDistance{Dim: dp.Dim, Weight: wk, Distance: dd})
		}
	}
	return total, dims, nil
}

// Dif computes eq. 5 for one attribute: the degree of acceptability of the
// proposed value compared to the preferred one, normalized to [0,1] over
// the attribute's domain (absolute value unless Signed).
func (e *Evaluator) Dif(key AttrKey, prop, pref Value) (float64, error) {
	attr := e.Spec.Attr(key)
	if attr == nil {
		return 0, fmt.Errorf("qos: unknown attribute %v", key)
	}
	w := attr.Domain.Width()
	if w == 0 {
		return 0, nil
	}
	var d float64
	if attr.Domain.Kind == Continuous {
		d = (prop.Num() - pref.Num()) / w
	} else {
		pi := attr.Domain.IndexOf(prop)
		qi := attr.Domain.IndexOf(pref)
		if pi < 0 || qi < 0 {
			return 0, fmt.Errorf("qos: value outside discrete domain of %v", key)
		}
		d = float64(pi-qi) / w
	}
	if !e.Signed {
		d = math.Abs(d)
	}
	return d, nil
}

// MaxDistance returns an upper bound of the evaluation value for this
// request: the distance each dif term would contribute if it were 1.
// Useful for normalizing distances into [0,1] utilities.
func (e *Evaluator) MaxDistance() float64 {
	n := len(e.Req.Dims)
	var total float64
	for k, dp := range e.Req.Dims {
		wk := RankWeight(k+1, n)
		ak := len(dp.Attrs)
		for i := range dp.Attrs {
			total += wk * RankWeight(i+1, ak)
		}
	}
	return total
}

// Utility maps a distance into a [0,1] utility (1 = exactly the preferred
// level), convenient for reporting "user perceived utility".
func (e *Evaluator) Utility(distance float64) float64 {
	m := e.MaxDistance()
	if m == 0 {
		return 1
	}
	u := 1 - distance/m
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
