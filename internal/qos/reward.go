package qos

// PenaltyFunc computes the penalty contributed by serving one attribute
// away from the user's preferred value (Section 5, eq. 1). choice is the
// 0-based index of the served value in the attribute's ladder (0 =
// preferred), steps is the total number of choices, and weight is the
// attribute's combined importance weight w_k*w_i. The paper only requires
// that the penalty "increases with the distance for user's preferred
// value"; the default is the weighted normalized step distance.
type PenaltyFunc func(choice, steps int, weight float64) float64

// DefaultPenalty is the weighted normalized degradation depth:
// weight * choice/(steps-1). It is 0 at the preferred value and reaches
// the full attribute weight at the deepest degradation.
func DefaultPenalty(choice, steps int, weight float64) float64 {
	if steps <= 1 || choice <= 0 {
		return 0
	}
	return weight * float64(choice) / float64(steps-1)
}

// QuadraticPenalty penalizes deep degradations super-linearly, modelling
// users that tolerate small degradations but dislike large ones.
func QuadraticPenalty(choice, steps int, weight float64) float64 {
	if steps <= 1 || choice <= 0 {
		return 0
	}
	f := float64(choice) / float64(steps-1)
	return weight * f * f
}

// Reward computes the local reward of eq. 1 for an assignment over the
// ladder: r = n when every attribute of every dimension is served at the
// user's first choice, otherwise r = n - sum(penalty_j). n is the number
// of QoS dimensions in the request. penalty defaults to DefaultPenalty
// when nil.
func Reward(ld *Ladder, a Assignment, penalty PenaltyFunc) float64 {
	if penalty == nil {
		penalty = DefaultPenalty
	}
	if len(ld.Attrs) == 0 {
		return 0
	}
	n := float64(ld.Attrs[0].DimCount)
	var sum float64
	for i := range ld.Attrs {
		la := &ld.Attrs[i]
		sum += penalty(a[i], len(la.Choices), la.Weight())
	}
	return n - sum
}
