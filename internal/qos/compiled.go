package qos

import "fmt"

// Compiled is the slot-indexed form of one (Spec, Request, Ladder)
// triple: everything the Section 5/6 inner loops need, precomputed once
// so that Reward, Distance and DepsSatisfied evaluate directly on an
// Assignment (a flat []int) with zero map operations and zero
// allocations. The map-based Level stays the boundary/JSON type; the
// Level and Assignment converters bridge the two worlds.
//
// Bit-compatibility contract: for every assignment a over the ladder,
//
//	c.Distance(a)           == Evaluator.Distance(ld.Level(a))
//	c.Reward(a)             == Reward(ld, a, penalty)
//	c.DepsSatisfied(a)      == Spec.DepsSatisfied(ld.Level(a))
//
// with float64 equality, not epsilon equality: every precomputed term
// is the same product the map-based path computes, summed in the same
// order. The property test in compiled_prop_test.go enforces this.
type Compiled struct {
	Spec   *Spec
	Req    *Request
	Ladder *Ladder
	Slots  []CompiledSlot

	dims []compiledDim
	deps []compiledDep
	// nDims is the reward baseline n (the number of QoS dimensions).
	nDims float64
}

// CompiledSlot is the per-attribute table of one ladder slot.
type CompiledSlot struct {
	Key AttrKey
	// Choices aliases the ladder's candidate list for this attribute.
	Choices []Value
	// Weight is the combined importance weight w_k*w_i (eq. 3).
	Weight float64
	// DifW[c] is w_i * dif(Choices[c], preferred) — the slot's term of
	// the eq. 4 per-dimension distance.
	DifW []float64
	// Pen[c] is penalty(c, len(Choices), Weight) — the slot's term of
	// the eq. 1 reward.
	Pen []float64
}

// compiledDim delimits one request dimension's slot range [lo, hi) and
// carries its eq. 3 weight w_k.
type compiledDim struct {
	weight float64
	lo, hi int
}

// compiledDep is one spec dependency with both endpoints in the ladder,
// flattened to a choice-index satisfaction matrix. Dependencies with an
// endpoint outside the ladder are vacuously satisfied by every ladder
// level (the level simply does not carry the attribute) and are not
// compiled.
type compiledDep struct {
	index int // position in Spec.Deps, for DepsSatisfied parity
	a, b  int // slot indices
	ok    [][]bool
}

// Compile builds the slot-indexed tables for assignments over ld.
// penalty defaults to DefaultPenalty when nil, mirroring Reward.
func (e *Evaluator) Compile(ld *Ladder, penalty PenaltyFunc) (*Compiled, error) {
	if penalty == nil {
		penalty = DefaultPenalty
	}
	c := &Compiled{Spec: e.Spec, Req: e.Req, Ladder: ld, Slots: make([]CompiledSlot, ld.Len())}
	if ld.Len() > 0 {
		c.nDims = float64(ld.Attrs[0].DimCount)
	}
	n := len(e.Req.Dims)
	slot := 0
	for k, dp := range e.Req.Dims {
		wk := RankWeight(k+1, n)
		ak := len(dp.Attrs)
		dim := compiledDim{weight: wk, lo: slot}
		for i, ap := range dp.Attrs {
			key := AttrKey{Dim: dp.Dim, Attr: ap.Attr}
			li := ld.AttrIndex(key)
			if li != slot {
				return nil, fmt.Errorf("qos: compile: ladder slot order diverges from request order at %v", key)
			}
			la := &ld.Attrs[li]
			pref, ok := e.Req.PreferredValue(key)
			if !ok {
				return nil, fmt.Errorf("qos: compile: request %q carries no preference for attribute %v", e.Req.Service, key)
			}
			wi := RankWeight(i+1, ak)
			cs := CompiledSlot{
				Key:     key,
				Choices: la.Choices,
				Weight:  la.Weight(),
				DifW:    make([]float64, len(la.Choices)),
				Pen:     make([]float64, len(la.Choices)),
			}
			for ci, v := range la.Choices {
				dif, err := e.Dif(key, v, pref)
				if err != nil {
					return nil, err
				}
				cs.DifW[ci] = wi * dif
				cs.Pen[ci] = penalty(ci, len(la.Choices), cs.Weight)
			}
			c.Slots[slot] = cs
			slot++
		}
		dim.hi = slot
		c.dims = append(c.dims, dim)
	}
	if slot != ld.Len() {
		return nil, fmt.Errorf("qos: compile: ladder has %d slots, request yields %d", ld.Len(), slot)
	}
	c.compileDeps()
	return c, nil
}

// compileDeps flattens every dependency whose endpoints both appear in
// the ladder into a satisfaction matrix over choice indices, reusing
// Dependency.Satisfied so the semantics stay in one place.
func (c *Compiled) compileDeps() {
	scratch := make(Level, 2)
	for di := range c.Spec.Deps {
		dep := &c.Spec.Deps[di]
		sa, sb := c.Ladder.AttrIndex(dep.A), c.Ladder.AttrIndex(dep.B)
		if sa < 0 || sb < 0 {
			continue // vacuous for every ladder level
		}
		ca, cb := c.Slots[sa].Choices, c.Slots[sb].Choices
		ok := make([][]bool, len(ca))
		for i, va := range ca {
			ok[i] = make([]bool, len(cb))
			for j, vb := range cb {
				scratch[dep.A], scratch[dep.B] = va, vb
				ok[i][j] = dep.Satisfied(scratch)
			}
		}
		delete(scratch, dep.A)
		delete(scratch, dep.B)
		c.deps = append(c.deps, compiledDep{index: di, a: sa, b: sb, ok: ok})
	}
}

// Distance is the Section 6 evaluation of the assignment's level
// against the user's preferences (eqs. 2-5), allocation-free. Ladder
// assignments are admissible by construction; use DepsSatisfied to
// check the spec's dependencies, which Distance (like the paper's
// evaluation) presumes hold.
func (c *Compiled) Distance(a Assignment) float64 {
	var total float64
	for _, d := range c.dims {
		var dd float64
		for s := d.lo; s < d.hi; s++ {
			dd += c.Slots[s].DifW[a[s]]
		}
		total += d.weight * dd
	}
	return total
}

// Reward is the Section 5 local reward (eq. 1) of the assignment,
// allocation-free.
func (c *Compiled) Reward(a Assignment) float64 {
	if len(c.Slots) == 0 {
		return 0
	}
	var sum float64
	for s := range c.Slots {
		sum += c.Slots[s].Pen[a[s]]
	}
	return c.nDims - sum
}

// DepsSatisfied reports whether the assignment's level satisfies every
// spec dependency, returning the index (into Spec.Deps) of the first
// violated one, or -1.
func (c *Compiled) DepsSatisfied(a Assignment) (bool, int) {
	for i := range c.deps {
		d := &c.deps[i]
		if !d.ok[a[d.a]][a[d.b]] {
			return false, d.index
		}
	}
	return true, -1
}

// DegradeCost is the local-reward decrease of stepping slot i one level
// down from its position in a: penalty(a[i]+1) - penalty(a[i]). The
// caller must ensure the step exists (Ladder.CanDegrade).
func (c *Compiled) DegradeCost(a Assignment, i int) float64 {
	return c.Slots[i].Pen[a[i]+1] - c.Slots[i].Pen[a[i]]
}

// Level materializes the assignment as a boundary Level (one map
// allocation — keep it out of inner loops).
func (c *Compiled) Level(a Assignment) Level { return c.Ladder.Level(a) }

// NewAssignment returns the all-preferred assignment.
func (c *Compiled) NewAssignment() Assignment { return c.Ladder.NewAssignment() }
