package qos_test

import (
	"fmt"

	"repro/internal/qos"
)

// ExampleEvaluator_Distance reproduces the paper's Section 6 evaluation
// on the Section 3.1 surveillance request: a proposal at frame rate 5
// and color depth 1 evaluates farther from the preferences than one at
// frame rate 9 and color depth 3.
func ExampleEvaluator_Distance() {
	spec := &qos.Spec{
		Name: "multimedia",
		Dimensions: []qos.Dimension{
			{ID: "video", Name: "Video Quality", Attributes: []qos.Attribute{
				{ID: "frame_rate", Domain: qos.IntRange(1, 30)},
				{ID: "color_depth", Domain: qos.DiscreteInts(1, 3, 8, 16, 24)},
			}},
			{ID: "audio", Name: "Audio Quality", Attributes: []qos.Attribute{
				{ID: "sampling_rate", Domain: qos.DiscreteInts(8, 16, 24, 44)},
				{ID: "sample_bits", Domain: qos.DiscreteInts(8, 16, 24)},
			}},
		},
	}
	req := qos.Request{
		Service: "surveillance",
		Dims: []qos.DimPref{
			{Dim: "video", Attrs: []qos.AttrPref{
				{Attr: "frame_rate", Sets: []qos.ValueSet{qos.Span(10, 5), qos.Span(4, 1)}},
				{Attr: "color_depth", Sets: []qos.ValueSet{qos.One(qos.Int(3)), qos.One(qos.Int(1))}},
			}},
			{Dim: "audio", Attrs: []qos.AttrPref{
				{Attr: "sampling_rate", Sets: []qos.ValueSet{qos.One(qos.Int(8))}},
				{Attr: "sample_bits", Sets: []qos.ValueSet{qos.One(qos.Int(8))}},
			}},
		},
	}
	eval, err := qos.NewEvaluator(spec, &req)
	if err != nil {
		panic(err)
	}
	level := func(fr, cd int64) qos.Level {
		return qos.Level{
			{Dim: "video", Attr: "frame_rate"}:    qos.Int(fr),
			{Dim: "video", Attr: "color_depth"}:   qos.Int(cd),
			{Dim: "audio", Attr: "sampling_rate"}: qos.Int(8),
			{Dim: "audio", Attr: "sample_bits"}:   qos.Int(8),
		}
	}
	near, _ := eval.Distance(level(9, 3))
	far, _ := eval.Distance(level(5, 1))
	fmt.Printf("near: %.4f\n", near)
	fmt.Printf("far:  %.4f\n", far)
	fmt.Println("best is near:", near < far)
	// Output:
	// near: 0.0345
	// far:  0.2974
	// best is near: true
}

// ExampleFormatRequest renders a request in the paper's own numbered
// notation.
func ExampleFormatRequest() {
	req := qos.Request{
		Service: "surveillance",
		Dims: []qos.DimPref{
			{Dim: "video", Attrs: []qos.AttrPref{
				{Attr: "frame_rate", Sets: []qos.ValueSet{qos.Span(10, 5), qos.Span(4, 1)}},
			}},
		},
	}
	fmt.Print(qos.FormatRequest(nil, &req))
	// Output:
	// 1. video
	//    (a) frame_rate: [10,...,5], [4,...,1]
}
