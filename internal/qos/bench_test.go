package qos

import "testing"

func BenchmarkDistance(b *testing.B) {
	e, err := NewEvaluator(paperSpec(), paperRequest())
	if err != nil {
		b.Fatal(err)
	}
	l := Level{
		{Dim: "video", Attr: "frame_rate"}:    Int(7),
		{Dim: "video", Attr: "color_depth"}:   Int(1),
		{Dim: "audio", Attr: "sampling_rate"}: Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   Int(8),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Distance(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdmits(b *testing.B) {
	r := paperRequest()
	l := Level{
		{Dim: "video", Attr: "frame_rate"}:    Int(7),
		{Dim: "video", Attr: "color_depth"}:   Int(1),
		{Dim: "audio", Attr: "sampling_rate"}: Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   Int(8),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Admits(l) {
			b.Fatal("should admit")
		}
	}
}

func BenchmarkBuildLadder(b *testing.B) {
	spec, req := paperSpec(), paperRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLadder(spec, req, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReward(b *testing.B) {
	ld, err := BuildLadder(paperSpec(), paperRequest(), 4)
	if err != nil {
		b.Fatal(err)
	}
	a := ld.NewAssignment()
	a[0] = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Reward(ld, a, nil)
	}
}

func BenchmarkSpecJSONRoundTrip(b *testing.B) {
	s := paperSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := EncodeSpec(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeSpec(buf); err != nil {
			b.Fatal(err)
		}
	}
}
