package qos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustLadder(t *testing.T, gridSteps int) *Ladder {
	t.Helper()
	ld, err := BuildLadder(paperSpec(), paperRequest(), gridSteps)
	if err != nil {
		t.Fatalf("BuildLadder: %v", err)
	}
	return ld
}

func TestLadderStructure(t *testing.T) {
	ld := mustLadder(t, 5)
	if ld.Len() != 4 {
		t.Fatalf("ladder attrs = %d, want 4", ld.Len())
	}
	// frame_rate: span [10..5] (6 ints at grid 5) + span [4..1] (grid 5
	// over 4 ints dedups to 4) = 10 choices, most preferred first.
	fr := ld.Attrs[0]
	if fr.Key != (AttrKey{Dim: "video", Attr: "frame_rate"}) {
		t.Fatalf("first ladder attr = %v; ladder must follow importance order", fr.Key)
	}
	if !fr.Choices[0].Equal(Int(10)) {
		t.Errorf("first choice = %v, want 10 (user preferred)", fr.Choices[0])
	}
	last := fr.Choices[len(fr.Choices)-1]
	if !last.Equal(Int(1)) {
		t.Errorf("last choice = %v, want 1 (deepest degradation)", last)
	}
	// color_depth: {3, 1}.
	cd := ld.Attrs[1]
	if len(cd.Choices) != 2 || !cd.Choices[0].Equal(Int(3)) || !cd.Choices[1].Equal(Int(1)) {
		t.Errorf("color_depth choices = %v", cd.Choices)
	}
	// Audio attrs have a single fixed choice.
	if len(ld.Attrs[2].Choices) != 1 || len(ld.Attrs[3].Choices) != 1 {
		t.Error("audio attributes should have exactly one choice")
	}
	// Indices: video is dim 1 of 2, audio dim 2 of 2.
	if fr.DimIndex != 1 || fr.DimCount != 2 || fr.AttrIndex != 1 || fr.AttrCount != 2 {
		t.Errorf("frame_rate indices = %+v", fr)
	}
	if ld.Attrs[3].DimIndex != 2 || ld.Attrs[3].AttrIndex != 2 {
		t.Errorf("sample_bits indices = %+v", ld.Attrs[3])
	}
}

func TestLadderWeights(t *testing.T) {
	ld := mustLadder(t, 4)
	// w_k = (n-k+1)/n with n=2: video 1.0, audio 0.5.
	// w_i analogous within dimension.
	wantW := []float64{1.0 * 1.0, 1.0 * 0.5, 0.5 * 1.0, 0.5 * 0.5}
	for i, w := range wantW {
		if got := ld.Attrs[i].Weight(); got != w {
			t.Errorf("weight[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestLadderDuplicateDedup(t *testing.T) {
	// Overlapping spans must not produce duplicate candidates.
	spec := paperSpec()
	r := &Request{
		Service: "dup",
		Dims: []DimPref{{
			Dim: "video",
			Attrs: []AttrPref{
				{Attr: "frame_rate", Sets: []ValueSet{Span(10, 5), Span(7, 3)}},
				{Attr: "color_depth", Sets: []ValueSet{One(Int(3))}},
			},
		}},
	}
	ld, err := BuildLadder(spec, r, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, v := range ld.Attrs[0].Choices {
		if seen[v.I] {
			t.Fatalf("duplicate candidate %v", v)
		}
		seen[v.I] = true
	}
}

func TestLadderAssignmentAndLevel(t *testing.T) {
	ld := mustLadder(t, 5)
	a := ld.NewAssignment()
	level := ld.Level(a)
	if !level.Equal(Level{
		{Dim: "video", Attr: "frame_rate"}:    Int(10),
		{Dim: "video", Attr: "color_depth"}:   Int(3),
		{Dim: "audio", Attr: "sampling_rate"}: Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   Int(8),
	}) {
		t.Errorf("preferred level = %v", level)
	}
	if !ld.CanDegrade(a, 0) {
		t.Error("frame_rate must be degradable")
	}
	if ld.CanDegrade(a, 2) {
		t.Error("single-choice attr must not be degradable")
	}
	if ld.Exhausted(a) {
		t.Error("fresh assignment is not exhausted")
	}
	for i := range ld.Attrs {
		a[i] = len(ld.Attrs[i].Choices) - 1
	}
	if !ld.Exhausted(a) {
		t.Error("deepest assignment must be exhausted")
	}
	c := a.Clone()
	c[0] = 0
	if a[0] == 0 {
		t.Error("Clone aliases")
	}
}

func TestLadderEveryChoiceAdmissible(t *testing.T) {
	// Property: every level the ladder can produce is admissible for the
	// request that produced it and within the spec's domains.
	spec, req := paperSpec(), paperRequest()
	ld, err := BuildLadder(spec, req, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := ld.NewAssignment()
		for i := range a {
			a[i] = rng.Intn(len(ld.Attrs[i].Choices))
		}
		level := ld.Level(a)
		if !req.Admits(level) {
			t.Fatalf("ladder produced inadmissible level %v (assignment %v)", level, a)
		}
		for k, v := range level {
			if !spec.Attr(k).Domain.Contains(v) {
				t.Fatalf("ladder produced out-of-domain value %v for %v", v, k)
			}
		}
	}
}

func TestLadderCombinations(t *testing.T) {
	ld := mustLadder(t, 5)
	want := int64(1)
	for i := range ld.Attrs {
		want *= int64(len(ld.Attrs[i].Choices))
	}
	if got := ld.Combinations(); got != want {
		t.Errorf("Combinations = %d, want %d", got, want)
	}
}

func TestLadderAttrIndex(t *testing.T) {
	ld := mustLadder(t, 4)
	if ld.AttrIndex(AttrKey{Dim: "video", Attr: "color_depth"}) != 1 {
		t.Error("AttrIndex lookup broken")
	}
	if ld.AttrIndex(AttrKey{Dim: "x", Attr: "y"}) != -1 {
		t.Error("unknown key should be -1")
	}
}

func TestLadderGridStepsDefault(t *testing.T) {
	ld, err := BuildLadder(paperSpec(), paperRequest(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Default grid steps must yield at least the span endpoints.
	if len(ld.Attrs[0].Choices) < 2 {
		t.Error("default grid did not expand the span")
	}
}

func TestLadderRejectsInvalidRequest(t *testing.T) {
	r := paperRequest()
	r.Dims[0].Dim = "nope"
	if _, err := BuildLadder(paperSpec(), r, 4); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestRewardProperties(t *testing.T) {
	ld := mustLadder(t, 5)
	a := ld.NewAssignment()
	// At the preferred level, reward = n (number of dimensions).
	if r := Reward(ld, a, nil); r != 2 {
		t.Errorf("preferred reward = %v, want 2 (n dimensions)", r)
	}
	// Degradation strictly decreases reward for multi-choice attrs.
	prev := Reward(ld, a, nil)
	for ld.CanDegrade(a, 0) {
		a[0]++
		r := Reward(ld, a, nil)
		if r >= prev {
			t.Fatalf("reward did not decrease: %v -> %v", prev, r)
		}
		prev = r
	}
	// Quadratic penalty is gentler near the top than the default.
	b := ld.NewAssignment()
	b[0] = 1
	if Reward(ld, b, QuadraticPenalty) < Reward(ld, b, DefaultPenalty) {
		t.Error("quadratic penalty should be gentler for shallow degradations")
	}
}

func TestRewardMonotoneProperty(t *testing.T) {
	ld := mustLadder(t, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := ld.NewAssignment()
		for i := range a {
			a[i] = rng.Intn(len(ld.Attrs[i].Choices))
		}
		// Degrading any attribute never increases reward.
		r0 := Reward(ld, a, nil)
		for i := range a {
			if !ld.CanDegrade(a, i) {
				continue
			}
			b := a.Clone()
			b[i]++
			if Reward(ld, b, nil) > r0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPenaltyEdgeCases(t *testing.T) {
	if DefaultPenalty(0, 5, 1) != 0 || QuadraticPenalty(0, 5, 1) != 0 {
		t.Error("no penalty at preferred choice")
	}
	if DefaultPenalty(3, 1, 1) != 0 {
		t.Error("single-step ladder cannot be penalized")
	}
	if DefaultPenalty(4, 5, 1) != 1 {
		t.Error("deepest degradation should cost the full weight")
	}
	if QuadraticPenalty(2, 5, 1) >= DefaultPenalty(2, 5, 1) {
		t.Error("quadratic must undercut linear mid-ladder")
	}
}
