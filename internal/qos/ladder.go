package qos

import (
	"fmt"
	"math"
)

// DefaultGridSteps is the number of degradation steps generated inside one
// continuous accepted span when building a Ladder. The paper's heuristic
// (Section 5) degrades attributes level by level (Qkj -> Qk(j+1)); for
// continuous spans a finite grid realizes those levels.
const DefaultGridSteps = 4

// LadderAttr is the ordered candidate list for one attribute: concrete
// values from most to least preferred, all admissible by construction.
type LadderAttr struct {
	Key AttrKey
	// DimIndex is the 1-based importance position k of the dimension in
	// the request; AttrIndex is the 1-based position i of the attribute
	// within its dimension. DimCount and AttrCount are the totals n and
	// attr_k used by the weight formulas.
	DimIndex, AttrIndex int
	DimCount, AttrCount int
	Choices             []Value
}

// Weight returns the combined importance weight w_k * w_i of the
// attribute, with w_k = (n-k+1)/n (eq. 3) and the analogous intra-dimension
// attribute weight w_i = (attr_k-i+1)/attr_k.
func (la *LadderAttr) Weight() float64 {
	return RankWeight(la.DimIndex, la.DimCount) * RankWeight(la.AttrIndex, la.AttrCount)
}

// Ladder is the discretized degradation space of a request: for each
// requested attribute, the ordered candidate values. The proposal
// formulation heuristic walks levels down these per-attribute lists.
type Ladder struct {
	Attrs []LadderAttr
	index map[AttrKey]int
}

// BuildLadder expands a validated request into a Ladder. Discrete accepted
// sets contribute their values in listed order; continuous spans
// contribute gridSteps+1 evenly spaced values from the preferred endpoint
// to the other end (gridSteps <= 0 selects DefaultGridSteps). Duplicate
// candidates are dropped, keeping the most preferred occurrence.
func BuildLadder(spec *Spec, r *Request, gridSteps int) (*Ladder, error) {
	if err := r.Validate(spec); err != nil {
		return nil, err
	}
	if gridSteps <= 0 {
		gridSteps = DefaultGridSteps
	}
	ld := &Ladder{index: make(map[AttrKey]int)}
	n := len(r.Dims)
	for di, dp := range r.Dims {
		ak := len(dp.Attrs)
		for ai, ap := range dp.Attrs {
			attr := spec.Dimension(dp.Dim).Attribute(ap.Attr)
			la := LadderAttr{
				Key:      AttrKey{Dim: dp.Dim, Attr: ap.Attr},
				DimIndex: di + 1, AttrIndex: ai + 1,
				DimCount: n, AttrCount: ak,
			}
			for _, set := range ap.Sets {
				for _, v := range expandSet(attr, set, gridSteps) {
					if !containsValue(la.Choices, v) {
						la.Choices = append(la.Choices, v)
					}
				}
			}
			if len(la.Choices) == 0 {
				return nil, fmt.Errorf("qos: ladder: attribute %v yields no candidates", la.Key)
			}
			ld.index[la.Key] = len(ld.Attrs)
			ld.Attrs = append(ld.Attrs, la)
		}
	}
	return ld, nil
}

func expandSet(attr *Attribute, set ValueSet, gridSteps int) []Value {
	if !set.Continuous {
		return []Value{set.Single}
	}
	from, to := set.From, set.To
	mk := func(x float64) Value {
		if attr.Domain.Type == TypeInt {
			return Int(int64(math.Round(x)))
		}
		return Float(x)
	}
	if from == to {
		return []Value{mk(from)}
	}
	out := make([]Value, 0, gridSteps+1)
	for s := 0; s <= gridSteps; s++ {
		x := from + (to-from)*float64(s)/float64(gridSteps)
		v := mk(x)
		if !containsValue(out, v) {
			out = append(out, v)
		}
	}
	return out
}

func containsValue(vs []Value, v Value) bool {
	for _, x := range vs {
		if x.Equal(v) {
			return true
		}
	}
	return false
}

// Len returns the number of laddered attributes.
func (ld *Ladder) Len() int { return len(ld.Attrs) }

// AttrIndex returns the position of key in Attrs, or -1.
func (ld *Ladder) AttrIndex(key AttrKey) int {
	if i, ok := ld.index[key]; ok {
		return i
	}
	return -1
}

// Assignment is a selection of one choice index per laddered attribute.
// Index 0 is the user's preferred value; higher indices are progressively
// degraded.
type Assignment []int

// NewAssignment returns the all-preferred assignment (every index 0).
func (ld *Ladder) NewAssignment() Assignment { return make(Assignment, len(ld.Attrs)) }

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	copy(c, a)
	return c
}

// Level materializes the assignment as a concrete Level.
func (ld *Ladder) Level(a Assignment) Level {
	l := make(Level, len(ld.Attrs))
	for i := range ld.Attrs {
		l[ld.Attrs[i].Key] = ld.Attrs[i].Choices[a[i]]
	}
	return l
}

// AssignmentOf inverts Level: it locates each attribute's value in the
// ladder's candidate list and returns the corresponding choice indices.
// It fails when the level misses a laddered attribute or carries a value
// the ladder does not contain — a level produced by Level(a) over the
// same ladder always round-trips exactly. The mid-session adaptation
// engine uses this to re-anchor an admission-time level (a map, the
// protocol's boundary type) onto the slot-indexed fast path.
func (ld *Ladder) AssignmentOf(l Level) (Assignment, error) {
	a := make(Assignment, len(ld.Attrs))
	for i := range ld.Attrs {
		la := &ld.Attrs[i]
		v, ok := l[la.Key]
		if !ok {
			return nil, fmt.Errorf("qos: ladder: level carries no value for attribute %v", la.Key)
		}
		found := false
		for ci, c := range la.Choices {
			if c.Equal(v) {
				a[i] = ci
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("qos: ladder: value %v for attribute %v is not a ladder candidate", v, la.Key)
		}
	}
	return a, nil
}

// CanDegrade reports whether attribute i has a further degradation step.
func (ld *Ladder) CanDegrade(a Assignment, i int) bool {
	return a[i]+1 < len(ld.Attrs[i].Choices)
}

// Exhausted reports whether no attribute can degrade further.
func (ld *Ladder) Exhausted(a Assignment) bool {
	for i := range ld.Attrs {
		if ld.CanDegrade(a, i) {
			return false
		}
	}
	return true
}

// Combinations returns the total number of candidate levels in the ladder
// (the size of the exhaustive search space), saturating at math.MaxInt64.
func (ld *Ladder) Combinations() int64 {
	total := int64(1)
	for i := range ld.Attrs {
		c := int64(len(ld.Attrs[i].Choices))
		if total > math.MaxInt64/c {
			return math.MaxInt64
		}
		total *= c
	}
	return total
}
