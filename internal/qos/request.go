package qos

import (
	"fmt"
	"math"
)

// ValueSet is one entry in a user's ordered list of acceptable values for
// an attribute (Section 3.1). It is either a single discrete value or a
// continuous range written from the preferred endpoint to the least
// preferred one, as in the paper's surveillance example
// "frame rate: [10,...,5], [4,...,1]".
type ValueSet struct {
	Continuous bool
	// Single holds the value of a discrete entry.
	Single Value
	// From and To bound a continuous entry; From is the preferred
	// endpoint. From may be greater or smaller than To.
	From, To float64
}

// One builds a discrete single-value entry.
func One(v Value) ValueSet { return ValueSet{Single: v} }

// Span builds a continuous entry preferring from and degrading toward to.
func Span(from, to float64) ValueSet { return ValueSet{Continuous: true, From: from, To: to} }

// Contains reports whether v falls in the set.
func (vs ValueSet) Contains(v Value) bool {
	if !vs.Continuous {
		return vs.Single.Equal(v)
	}
	if !v.IsNumeric() {
		return false
	}
	lo, hi := vs.From, vs.To
	if lo > hi {
		lo, hi = hi, lo
	}
	n := v.Num()
	return n >= lo && n <= hi
}

// String renders the entry in the paper's request notation.
func (vs ValueSet) String() string {
	if !vs.Continuous {
		return vs.Single.String()
	}
	return fmt.Sprintf("[%g,...,%g]", vs.From, vs.To)
}

// AttrPref is the user's preference for one attribute: acceptable value
// sets in decreasing order of preference.
type AttrPref struct {
	Attr string
	Sets []ValueSet
}

// DimPref is the user's preference for one dimension: attributes in
// decreasing order of importance.
type DimPref struct {
	Dim   string
	Attrs []AttrPref
}

// Request is a service request (Section 3.1): dimensions in decreasing
// order of importance, each with ordered attributes and ordered accepted
// values. Lower index == more important / more preferred.
type Request struct {
	Service string
	Dims    []DimPref
}

// Validate checks the request against a spec: every referenced dimension
// and attribute must exist, every discrete value must belong to the
// attribute's domain, and every continuous span must lie within the
// domain's interval.
func (r *Request) Validate(spec *Spec) error {
	if len(r.Dims) == 0 {
		return fmt.Errorf("qos: request %q names no dimensions", r.Service)
	}
	seenDim := make(map[string]bool, len(r.Dims))
	for _, dp := range r.Dims {
		dim := spec.Dimension(dp.Dim)
		if dim == nil {
			return fmt.Errorf("qos: request %q: unknown dimension %q", r.Service, dp.Dim)
		}
		if seenDim[dp.Dim] {
			return fmt.Errorf("qos: request %q: duplicate dimension %q", r.Service, dp.Dim)
		}
		seenDim[dp.Dim] = true
		if len(dp.Attrs) == 0 {
			return fmt.Errorf("qos: request %q: dimension %q lists no attributes", r.Service, dp.Dim)
		}
		seenAttr := make(map[string]bool, len(dp.Attrs))
		for _, ap := range dp.Attrs {
			attr := dim.Attribute(ap.Attr)
			if attr == nil {
				return fmt.Errorf("qos: request %q: unknown attribute %s/%s", r.Service, dp.Dim, ap.Attr)
			}
			if seenAttr[ap.Attr] {
				return fmt.Errorf("qos: request %q: duplicate attribute %s/%s", r.Service, dp.Dim, ap.Attr)
			}
			seenAttr[ap.Attr] = true
			if len(ap.Sets) == 0 {
				return fmt.Errorf("qos: request %q: attribute %s/%s lists no acceptable values", r.Service, dp.Dim, ap.Attr)
			}
			for si, set := range ap.Sets {
				if err := validateSet(attr, set); err != nil {
					return fmt.Errorf("qos: request %q: %s/%s entry %d: %w", r.Service, dp.Dim, ap.Attr, si, err)
				}
			}
		}
	}
	return nil
}

func validateSet(attr *Attribute, set ValueSet) error {
	if set.Continuous {
		if attr.Domain.Kind != Continuous {
			return fmt.Errorf("continuous span over discrete domain")
		}
		lo, hi := set.From, set.To
		if lo > hi {
			lo, hi = hi, lo
		}
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return fmt.Errorf("span has NaN bound")
		}
		if lo < attr.Domain.Min || hi > attr.Domain.Max {
			return fmt.Errorf("span [%g,%g] outside domain [%g,%g]", lo, hi, attr.Domain.Min, attr.Domain.Max)
		}
		return nil
	}
	if !attr.Domain.Contains(set.Single) {
		return fmt.Errorf("value %v not in attribute domain", set.Single)
	}
	return nil
}

// Admits reports whether the level satisfies the request: every requested
// attribute is present and its value falls in one of the accepted sets.
// Levels may carry extra attributes; those are ignored. A proposal is
// admissible (Section 6) iff Admits returns true and the spec's
// dependencies hold.
func (r *Request) Admits(l Level) bool {
	for _, dp := range r.Dims {
		for _, ap := range dp.Attrs {
			v, ok := l[AttrKey{Dim: dp.Dim, Attr: ap.Attr}]
			if !ok {
				return false
			}
			accepted := false
			for _, set := range ap.Sets {
				if set.Contains(v) {
					accepted = true
					break
				}
			}
			if !accepted {
				return false
			}
		}
	}
	return true
}

// Preferred returns the user's most preferred level: for every requested
// attribute, the first entry of the first accepted set (the preferred
// endpoint for continuous spans).
func (r *Request) Preferred() Level {
	l := make(Level)
	for _, dp := range r.Dims {
		for _, ap := range dp.Attrs {
			set := ap.Sets[0]
			k := AttrKey{Dim: dp.Dim, Attr: ap.Attr}
			if set.Continuous {
				l[k] = Float(set.From)
			} else {
				l[k] = set.Single
			}
		}
	}
	return l
}

// PreferredValue returns the user's most preferred value for the given
// attribute and whether the attribute is part of the request.
func (r *Request) PreferredValue(k AttrKey) (Value, bool) {
	for _, dp := range r.Dims {
		if dp.Dim != k.Dim {
			continue
		}
		for _, ap := range dp.Attrs {
			if ap.Attr != k.Attr {
				continue
			}
			set := ap.Sets[0]
			if set.Continuous {
				return Float(set.From), true
			}
			return set.Single, true
		}
	}
	return Value{}, false
}

// Equal reports whether two requests are structurally identical: same
// service, same dimension/attribute order, same accepted sets. It is
// the allocation-free counterpart of reflect.DeepEqual used by cache
// validation on the CFP hot path.
func (r *Request) Equal(o *Request) bool {
	if r.Service != o.Service || len(r.Dims) != len(o.Dims) {
		return false
	}
	for i := range r.Dims {
		dp, op := &r.Dims[i], &o.Dims[i]
		if dp.Dim != op.Dim || len(dp.Attrs) != len(op.Attrs) {
			return false
		}
		for j := range dp.Attrs {
			ap, bp := &dp.Attrs[j], &op.Attrs[j]
			if ap.Attr != bp.Attr || len(ap.Sets) != len(bp.Sets) {
				return false
			}
			for k := range ap.Sets {
				as, bs := ap.Sets[k], bp.Sets[k]
				if as.Continuous != bs.Continuous {
					return false
				}
				if as.Continuous {
					if as.From != bs.From || as.To != bs.To {
						return false
					}
				} else if !as.Single.Equal(bs.Single) {
					return false
				}
			}
		}
	}
	return true
}

// Keys returns the requested attribute keys in request (importance) order.
func (r *Request) Keys() []AttrKey {
	var ks []AttrKey
	for _, dp := range r.Dims {
		for _, ap := range dp.Attrs {
			ks = append(ks, AttrKey{Dim: dp.Dim, Attr: ap.Attr})
		}
	}
	return ks
}
