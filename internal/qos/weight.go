package qos

// RankWeight is the paper's eq. 3 in one place: the importance weight
// of the element at 1-based position k in an ordered list of n,
// w_k = (n-k+1)/n. The most important element (k=1) weighs 1; the least
// important weighs 1/n. The same formula weighs dimensions within a
// request and attributes within a dimension (the paper leaves the
// intra-dimension weight implicit; we use the analogous form).
func RankWeight(k, n int) float64 {
	return float64(n-k+1) / float64(n)
}
