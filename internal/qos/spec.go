package qos

import "fmt"

// AttrKey names one attribute of one dimension; it is the key type for
// concrete quality levels.
type AttrKey struct {
	Dim  string
	Attr string
}

// String renders the key as "dim/attr".
func (k AttrKey) String() string { return k.Dim + "/" + k.Attr }

// Attribute is one quality attribute of a dimension, with its admissible
// value domain (the AVr relationship of the paper).
type Attribute struct {
	ID     string
	Name   string
	Domain Domain
}

// Dimension is one QoS dimension with its attribute set (the DAr
// relationship of the paper). Example dimensions: Video Quality, Audio
// Quality.
type Dimension struct {
	ID         string
	Name       string
	Attributes []Attribute
}

// Attribute returns the attribute with the given ID, or nil.
func (d *Dimension) Attribute(id string) *Attribute {
	for i := range d.Attributes {
		if d.Attributes[i].ID == id {
			return &d.Attributes[i]
		}
	}
	return nil
}

// DepKind selects the semantics of a Dependency.
type DepKind uint8

const (
	// DepRequires: whenever attribute A holds value AVal, attribute B
	// must hold one of BSet. Models discrete co-constraints such as
	// "24-bit color requires frame rate <= 15" expressed over discrete
	// sets.
	DepRequires DepKind = iota
	// DepMaxSum: the sum of the numeric values of A and B must not
	// exceed Bound.
	DepMaxSum
	// DepMaxProduct: the product of the numeric values of A and B must
	// not exceed Bound. Models bandwidth-style couplings, e.g.
	// frame_rate x color_depth bounded by link capacity.
	DepMaxProduct
)

// Dependency is one element of the paper's Deps relation: a constraint
// over the values of two attributes, Dep_ij = f(Val_ki, Val_kj).
type Dependency struct {
	Kind  DepKind
	A, B  AttrKey
	AVal  Value   // DepRequires: trigger value of A
	BSet  []Value // DepRequires: admissible values of B when triggered
	Bound float64 // DepMaxSum / DepMaxProduct
}

// Satisfied evaluates the dependency against a concrete level. Levels
// missing either attribute satisfy the dependency vacuously; admission of
// incomplete levels is handled by request admissibility, not here.
func (dep *Dependency) Satisfied(l Level) bool {
	av, okA := l[dep.A]
	bv, okB := l[dep.B]
	if !okA || !okB {
		return true
	}
	switch dep.Kind {
	case DepRequires:
		if !av.Equal(dep.AVal) {
			return true
		}
		for _, b := range dep.BSet {
			if b.Equal(bv) {
				return true
			}
		}
		return false
	case DepMaxSum:
		return av.Num()+bv.Num() <= dep.Bound
	case DepMaxProduct:
		return av.Num()*bv.Num() <= dep.Bound
	}
	return false
}

// Spec is the full QoS requirements representation of an application:
// QoS = {Dim, Atr, Val, DAr, AVr, Deps}.
type Spec struct {
	Name       string
	Dimensions []Dimension
	Deps       []Dependency
}

// Dimension returns the dimension with the given ID, or nil.
func (s *Spec) Dimension(id string) *Dimension {
	for i := range s.Dimensions {
		if s.Dimensions[i].ID == id {
			return &s.Dimensions[i]
		}
	}
	return nil
}

// Attr resolves an AttrKey to its Attribute, or nil when either the
// dimension or the attribute does not exist.
func (s *Spec) Attr(k AttrKey) *Attribute {
	d := s.Dimension(k.Dim)
	if d == nil {
		return nil
	}
	return d.Attribute(k.Attr)
}

// Validate checks structural consistency: unique IDs, valid domains, and
// dependencies referring to existing attributes.
func (s *Spec) Validate() error {
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("qos: spec %q has no dimensions", s.Name)
	}
	seenDim := make(map[string]bool, len(s.Dimensions))
	for di := range s.Dimensions {
		d := &s.Dimensions[di]
		if d.ID == "" {
			return fmt.Errorf("qos: spec %q: dimension %d has empty ID", s.Name, di)
		}
		if seenDim[d.ID] {
			return fmt.Errorf("qos: spec %q: duplicate dimension %q", s.Name, d.ID)
		}
		seenDim[d.ID] = true
		if len(d.Attributes) == 0 {
			return fmt.Errorf("qos: spec %q: dimension %q has no attributes", s.Name, d.ID)
		}
		seenAttr := make(map[string]bool, len(d.Attributes))
		for ai := range d.Attributes {
			a := &d.Attributes[ai]
			if a.ID == "" {
				return fmt.Errorf("qos: spec %q: dimension %q attribute %d has empty ID", s.Name, d.ID, ai)
			}
			if seenAttr[a.ID] {
				return fmt.Errorf("qos: spec %q: dimension %q: duplicate attribute %q", s.Name, d.ID, a.ID)
			}
			seenAttr[a.ID] = true
			if err := a.Domain.Validate(); err != nil {
				return fmt.Errorf("qos: spec %q: %s/%s: %w", s.Name, d.ID, a.ID, err)
			}
		}
	}
	for i := range s.Deps {
		dep := &s.Deps[i]
		for _, k := range []AttrKey{dep.A, dep.B} {
			if s.Attr(k) == nil {
				return fmt.Errorf("qos: spec %q: dependency %d refers to unknown attribute %v", s.Name, i, k)
			}
		}
		if dep.Kind != DepRequires && (!s.numericAttr(dep.A) || !s.numericAttr(dep.B)) {
			return fmt.Errorf("qos: spec %q: dependency %d: numeric dependency over non-numeric attribute", s.Name, i)
		}
	}
	return nil
}

func (s *Spec) numericAttr(k AttrKey) bool {
	a := s.Attr(k)
	return a != nil && a.Domain.Type != TypeString
}

// DepsSatisfied reports whether the level satisfies every dependency of
// the spec, returning the index of the first violated dependency (or -1).
func (s *Spec) DepsSatisfied(l Level) (bool, int) {
	for i := range s.Deps {
		if !s.Deps[i].Satisfied(l) {
			return false, i
		}
	}
	return true, -1
}
