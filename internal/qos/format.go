package qos

import (
	"fmt"
	"strings"
)

// FormatRequest renders a request in the paper's Section 3.1 notation:
//
//  1. Video Quality
//     (a) frame rate: [10,...,5], [4,...,1]
//     (b) color depth: 3, 1
//  2. Audio Quality
//     (a) sampling rate: 8
//     (b) sample bits: 8
//
// spec supplies display names; pass nil to fall back to IDs.
func FormatRequest(spec *Spec, r *Request) string {
	var b strings.Builder
	for k, dp := range r.Dims {
		name := dp.Dim
		if spec != nil {
			if d := spec.Dimension(dp.Dim); d != nil && d.Name != "" {
				name = d.Name
			}
		}
		fmt.Fprintf(&b, "%d. %s\n", k+1, name)
		for i, ap := range dp.Attrs {
			attrName := ap.Attr
			if spec != nil {
				if a := spec.Attr(AttrKey{Dim: dp.Dim, Attr: ap.Attr}); a != nil && a.Name != "" {
					attrName = a.Name
				}
			}
			fmt.Fprintf(&b, "   (%c) %s: ", 'a'+i, attrName)
			for j, set := range ap.Sets {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(set.String())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatLevel renders a level against the request's importance order,
// annotating each attribute with its preference depth ("choice 1 of 3").
func FormatLevel(spec *Spec, r *Request, l Level) string {
	ladder, err := BuildLadder(spec, r, DefaultGridSteps)
	if err != nil {
		return l.String()
	}
	var b strings.Builder
	for _, la := range ladder.Attrs {
		v, ok := l[la.Key]
		if !ok {
			continue
		}
		depth := -1
		for i, c := range la.Choices {
			if c.Equal(v) {
				depth = i
				break
			}
		}
		if depth < 0 {
			fmt.Fprintf(&b, "%s=%s (off-ladder)\n", la.Key, v)
			continue
		}
		fmt.Fprintf(&b, "%s=%s (choice %d of %d)\n", la.Key, v, depth+1, len(la.Choices))
	}
	return b.String()
}
