package qos

import (
	"strings"
	"testing"
)

func TestFormatRequestMatchesPaperNotation(t *testing.T) {
	out := FormatRequest(paperSpec(), paperRequest())
	want := []string{
		"1. Video Quality",
		"(a) frame_rate: [10,...,5], [4,...,1]",
		"(b) color_depth: 3, 1",
		"2. Audio Quality",
		"(a) sampling_rate: 8",
		"(b) sample_bits: 8",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// Video must come before audio (importance order preserved).
	if strings.Index(out, "Video") > strings.Index(out, "Audio") {
		t.Error("dimension order lost")
	}
	// nil spec falls back to IDs.
	out2 := FormatRequest(nil, paperRequest())
	if !strings.Contains(out2, "1. video") {
		t.Errorf("nil-spec fallback broken:\n%s", out2)
	}
}

func TestFormatLevelDepths(t *testing.T) {
	l := Level{
		{Dim: "video", Attr: "frame_rate"}:    Int(10),
		{Dim: "video", Attr: "color_depth"}:   Int(1),
		{Dim: "audio", Attr: "sampling_rate"}: Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   Int(8),
	}
	out := FormatLevel(paperSpec(), paperRequest(), l)
	if !strings.Contains(out, "video/frame_rate=10 (choice 1 of") {
		t.Errorf("preferred frame rate not marked choice 1:\n%s", out)
	}
	if !strings.Contains(out, "video/color_depth=1 (choice 2 of 2)") {
		t.Errorf("degraded color depth not marked choice 2:\n%s", out)
	}
	// Off-ladder values are labelled, not dropped.
	l[AttrKey{Dim: "video", Attr: "frame_rate"}] = Int(29)
	out = FormatLevel(paperSpec(), paperRequest(), l)
	if !strings.Contains(out, "off-ladder") {
		t.Errorf("off-ladder value not labelled:\n%s", out)
	}
}
