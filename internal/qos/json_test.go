package qos

import (
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	s := paperSpec()
	s.Deps = []Dependency{
		{Kind: DepRequires, A: AttrKey{"video", "color_depth"}, AVal: Int(24),
			B: AttrKey{"video", "frame_rate"}, BSet: []Value{Int(10), Int(15)}},
		{Kind: DepMaxProduct, A: AttrKey{"video", "frame_rate"},
			B: AttrKey{"video", "color_depth"}, Bound: 300},
		{Kind: DepMaxSum, A: AttrKey{"audio", "sampling_rate"},
			B: AttrKey{"audio", "sample_bits"}, Bound: 60},
	}
	b, err := EncodeSpec(s)
	if err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	got, err := DecodeSpec(b)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if got.Name != s.Name || len(got.Dimensions) != len(s.Dimensions) || len(got.Deps) != len(s.Deps) {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	for di := range s.Dimensions {
		want, have := s.Dimensions[di], got.Dimensions[di]
		if want.ID != have.ID || len(want.Attributes) != len(have.Attributes) {
			t.Fatalf("dimension %d mismatch", di)
		}
		for ai := range want.Attributes {
			wa, ha := want.Attributes[ai], have.Attributes[ai]
			if wa.ID != ha.ID || wa.Domain.Kind != ha.Domain.Kind || wa.Domain.Type != ha.Domain.Type {
				t.Fatalf("attribute %s/%s mismatch: %+v vs %+v", want.ID, wa.ID, wa.Domain, ha.Domain)
			}
			if wa.Domain.Kind == Discrete {
				for vi := range wa.Domain.Values {
					if !wa.Domain.Values[vi].Equal(ha.Domain.Values[vi]) {
						t.Fatalf("value %d of %s differs", vi, wa.ID)
					}
				}
			} else if wa.Domain.Min != ha.Domain.Min || wa.Domain.Max != ha.Domain.Max {
				t.Fatalf("bounds of %s differ", wa.ID)
			}
		}
	}
	for i := range s.Deps {
		if s.Deps[i].Kind != got.Deps[i].Kind || s.Deps[i].A != got.Deps[i].A || s.Deps[i].B != got.Deps[i].B {
			t.Fatalf("dep %d mismatch", i)
		}
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	r := paperRequest()
	b, err := EncodeRequest(r)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	got, err := DecodeRequest(b)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if err := got.Validate(paperSpec()); err != nil {
		t.Fatalf("decoded request invalid: %v", err)
	}
	if !got.Preferred().Equal(r.Preferred()) {
		t.Errorf("preferred level changed across round trip")
	}
	if len(got.Dims) != len(r.Dims) {
		t.Fatalf("dims lost")
	}
	for i := range r.Dims {
		if got.Dims[i].Dim != r.Dims[i].Dim || len(got.Dims[i].Attrs) != len(r.Dims[i].Attrs) {
			t.Fatalf("dim %d mismatch", i)
		}
	}
}

func TestDecodeSpecRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","dimensions":[{"id":"d","attributes":[{"id":"a","domain":{"kind":"fuzzy","type":"integer"}}]}]}`,
		`{"name":"x","dimensions":[{"id":"d","attributes":[{"id":"a","domain":{"kind":"discrete","type":"imaginary","values":[1]}}]}]}`,
		`{"name":"x","dimensions":[]}`,
		`{"name":"x","dimensions":[{"id":"d","attributes":[{"id":"a","domain":{"kind":"continuous","type":"integer","min":1,"max":30}}]}],"deps":[{"kind":"requires","a":"d/a","b":"d/a"}]}`,
		`{"name":"x","dimensions":[{"id":"d","attributes":[{"id":"a","domain":{"kind":"continuous","type":"integer","min":1,"max":30}}]}],"deps":[{"kind":"maxsum","a":"noslash","b":"d/a"}]}`,
	}
	for i, c := range cases {
		if _, err := DecodeSpec([]byte(c)); err == nil {
			t.Errorf("garbage spec %d accepted", i)
		}
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"service":"s","dimensions":[{"dim":"video","attrs":[{"attr":"frame_rate","accept":[{}]}]}]}`,
	}
	for i, c := range cases {
		if _, err := DecodeRequest([]byte(c)); err == nil {
			t.Errorf("garbage request %d accepted", i)
		}
	}
}

func TestValueJSONForms(t *testing.T) {
	var v Value
	if err := v.UnmarshalJSON([]byte(`12`)); err != nil || !v.Equal(Int(12)) {
		t.Errorf("int decode: %v %v", v, nil)
	}
	if err := v.UnmarshalJSON([]byte(`1.5`)); err != nil || !v.Equal(Float(1.5)) {
		t.Errorf("float decode: %v", v)
	}
	if err := v.UnmarshalJSON([]byte(`"hq"`)); err != nil || !v.Equal(Str("hq")) {
		t.Errorf("string decode: %v", v)
	}
	if err := v.UnmarshalJSON([]byte(`[1]`)); err == nil {
		t.Error("array accepted as value")
	}
	b, err := Float(2.5).MarshalJSON()
	if err != nil || string(b) != "2.5" {
		t.Errorf("float encode: %s", b)
	}
	b, err = Str("x").MarshalJSON()
	if err != nil || string(b) != `"x"` {
		t.Errorf("string encode: %s", b)
	}
}

func TestFloatDomainCoercion(t *testing.T) {
	// A float domain authored with integer literals must decode to
	// float values that compare equal within the domain.
	in := `{"name":"x","dimensions":[{"id":"d","attributes":[
	  {"id":"a","domain":{"kind":"discrete","type":"float","values":[1, 2.5]}}]}]}`
	s, err := DecodeSpec([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	dom := s.Attr(AttrKey{Dim: "d", Attr: "a"}).Domain
	if !dom.Contains(Float(1)) {
		t.Error("integer literal in float domain not coerced")
	}
	if !strings.Contains(dom.Values[0].String(), "1") {
		t.Error("coerced value lost content")
	}
}
