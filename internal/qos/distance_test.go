package qos

import (
	"math"
	"math/rand"
	"testing"
)

func mustEval(t *testing.T) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(paperSpec(), paperRequest())
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return e
}

func admissibleLevel(fr int64, cd int64) Level {
	return Level{
		{Dim: "video", Attr: "frame_rate"}:    Int(fr),
		{Dim: "video", Attr: "color_depth"}:   Int(cd),
		{Dim: "audio", Attr: "sampling_rate"}: Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   Int(8),
	}
}

func TestDistanceZeroAtPreferred(t *testing.T) {
	e := mustEval(t)
	d, err := e.Distance(admissibleLevel(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("distance at preferred level = %v, want 0", d)
	}
}

func TestDistanceHandComputed(t *testing.T) {
	// Proposal: frame_rate 5 (pref 10), color_depth 1 (pref 3), audio at
	// preference. Per eq. 5:
	//   dif(frame_rate) = |5-10| / (30-1)   = 5/29
	//   dif(color_depth)= |idx(1)-idx(3)|/4 = 1/4
	// Weights: video w_k=1 (k=1,n=2); frame_rate w_i=1, color_depth
	// w_i=0.5. Audio terms are 0.
	// distance = 1*(1*5/29 + 0.5*0.25) = 5/29 + 0.125
	e := mustEval(t)
	d, err := e.Distance(admissibleLevel(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0/29.0 + 0.125
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("distance = %v, want %v (hand computed from eqs. 2-5)", d, want)
	}
}

func TestDistanceDimensionWeighting(t *testing.T) {
	// The same normalized deviation must cost more in a more important
	// dimension. Build a request where video and audio each have one
	// attribute with two choices of identical normalized step.
	spec := &Spec{
		Name: "w",
		Dimensions: []Dimension{
			{ID: "video", Attributes: []Attribute{{ID: "q", Domain: DiscreteInts(0, 1, 2, 3, 4)}}},
			{ID: "audio", Attributes: []Attribute{{ID: "q", Domain: DiscreteInts(0, 1, 2, 3, 4)}}},
		},
	}
	req := &Request{
		Service: "w",
		Dims: []DimPref{
			{Dim: "video", Attrs: []AttrPref{{Attr: "q", Sets: []ValueSet{One(Int(4)), One(Int(2))}}}},
			{Dim: "audio", Attrs: []AttrPref{{Attr: "q", Sets: []ValueSet{One(Int(4)), One(Int(2))}}}},
		},
	}
	e, err := NewEvaluator(spec, req)
	if err != nil {
		t.Fatal(err)
	}
	vKey := AttrKey{Dim: "video", Attr: "q"}
	aKey := AttrKey{Dim: "audio", Attr: "q"}
	pref := Level{vKey: Int(4), aKey: Int(4)}
	degradeVideo := Level{vKey: Int(2), aKey: Int(4)}
	degradeAudio := Level{vKey: Int(4), aKey: Int(2)}
	_ = pref
	dv, err := e.Distance(degradeVideo)
	if err != nil {
		t.Fatal(err)
	}
	da, err := e.Distance(degradeAudio)
	if err != nil {
		t.Fatal(err)
	}
	if !(dv > da) {
		t.Errorf("degrading the more important dimension must cost more: video %v vs audio %v", dv, da)
	}
	if math.Abs(dv-2*da) > 1e-12 {
		t.Errorf("with n=2, w1/w2 = 2: dv=%v, da=%v", dv, da)
	}
}

func TestDistanceRejectsInadmissible(t *testing.T) {
	e := mustEval(t)
	// frame_rate 20 is outside the accepted spans.
	if _, err := e.Distance(admissibleLevel(20, 3)); err == nil {
		t.Error("inadmissible proposal evaluated; the paper only evaluates admissible proposals")
	}
	// Missing attribute.
	l := admissibleLevel(10, 3)
	delete(l, AttrKey{Dim: "audio", Attr: "sample_bits"})
	if _, err := e.Distance(l); err == nil {
		t.Error("incomplete proposal evaluated")
	}
}

func TestDistanceRejectsDependencyViolation(t *testing.T) {
	spec := paperSpec()
	spec.Deps = []Dependency{
		{Kind: DepMaxProduct, A: AttrKey{"video", "frame_rate"}, B: AttrKey{"video", "color_depth"}, Bound: 20},
	}
	e, err := NewEvaluator(spec, paperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Distance(admissibleLevel(10, 3)); err == nil {
		t.Error("10*3=30 > 20 must violate the dependency")
	}
	if _, err := e.Distance(admissibleLevel(6, 3)); err != nil {
		t.Errorf("6*3=18 <= 20 must pass: %v", err)
	}
}

func TestSignedDistance(t *testing.T) {
	e := mustEval(t)
	e.Signed = true
	// Proposal below the preferred frame rate: signed dif negative.
	d, err := e.Dif(AttrKey{Dim: "video", Attr: "frame_rate"}, Int(5), Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if d >= 0 {
		t.Errorf("signed dif = %v, want negative (paper's raw eq. 5)", d)
	}
	e.Signed = false
	d, err = e.Dif(AttrKey{Dim: "video", Attr: "frame_rate"}, Int(5), Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("absolute dif = %v, want positive", d)
	}
}

func TestDifDiscreteUsesQualityIndex(t *testing.T) {
	e := mustEval(t)
	// color_depth domain {1,3,8,16,24}: idx(24)=4, idx(8)=2, width 4.
	d, err := e.Dif(AttrKey{Dim: "video", Attr: "color_depth"}, Int(8), Int(24))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("dif = %v, want 0.5 (|2-4|/4)", d)
	}
	// Outside the domain errors.
	if _, err := e.Dif(AttrKey{Dim: "video", Attr: "color_depth"}, Int(9), Int(24)); err == nil {
		t.Error("value outside discrete domain accepted")
	}
	if _, err := e.Dif(AttrKey{Dim: "video", Attr: "nope"}, Int(9), Int(24)); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestDifDegenerateDomainIsZero(t *testing.T) {
	spec := &Spec{Name: "deg", Dimensions: []Dimension{
		{ID: "d", Attributes: []Attribute{{ID: "a", Domain: DiscreteInts(7)}}},
	}}
	req := &Request{Service: "deg", Dims: []DimPref{
		{Dim: "d", Attrs: []AttrPref{{Attr: "a", Sets: []ValueSet{One(Int(7))}}}},
	}}
	e, err := NewEvaluator(spec, req)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Dif(AttrKey{Dim: "d", Attr: "a"}, Int(7), Int(7))
	if err != nil || d != 0 {
		t.Errorf("degenerate domain dif = %v, %v", d, err)
	}
}

func TestMaxDistanceBoundsAllAdmissible(t *testing.T) {
	e := mustEval(t)
	ld, err := BuildLadder(paperSpec(), paperRequest(), 6)
	if err != nil {
		t.Fatal(err)
	}
	maxD := e.MaxDistance()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := ld.NewAssignment()
		for j := range a {
			a[j] = rng.Intn(len(ld.Attrs[j].Choices))
		}
		d, err := e.Distance(ld.Level(a))
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > maxD+1e-9 {
			t.Fatalf("distance %v outside [0, %v]", d, maxD)
		}
	}
}

func TestUtilityMapping(t *testing.T) {
	e := mustEval(t)
	if u := e.Utility(0); u != 1 {
		t.Errorf("Utility(0) = %v, want 1", u)
	}
	if u := e.Utility(e.MaxDistance()); u != 0 {
		t.Errorf("Utility(max) = %v, want 0", u)
	}
	if u := e.Utility(e.MaxDistance() * 2); u != 0 {
		t.Error("utility must clamp at 0")
	}
	if u := e.Utility(-1); u != 1 {
		t.Error("utility must clamp at 1")
	}
	mid := e.Utility(e.MaxDistance() / 2)
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid utility = %v", mid)
	}
}

func TestDistanceBreakdown(t *testing.T) {
	e := mustEval(t)
	d, dims, err := e.DistanceBreakdown(admissibleLevel(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 {
		t.Fatalf("breakdown dims = %d", len(dims))
	}
	var sum float64
	for _, dd := range dims {
		sum += dd.Weight * dd.Distance
	}
	if math.Abs(sum-d) > 1e-12 {
		t.Errorf("breakdown does not sum to the distance: %v vs %v", sum, d)
	}
	if dims[0].Dim != "video" || dims[0].Weight != 1.0 {
		t.Errorf("first dimension = %+v, want video with w=1", dims[0])
	}
	if dims[1].Dim != "audio" || dims[1].Weight != 0.5 {
		t.Errorf("second dimension = %+v, want audio with w=0.5", dims[1])
	}
}

func TestNewEvaluatorValidates(t *testing.T) {
	bad := paperRequest()
	bad.Dims[0].Dim = "nope"
	if _, err := NewEvaluator(paperSpec(), bad); err == nil {
		t.Error("invalid request accepted")
	}
	s := paperSpec()
	s.Dimensions[0].Attributes[0].Domain = Domain{Kind: Discrete}
	if _, err := NewEvaluator(s, paperRequest()); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestBestProposalWins encodes the paper's core selection rule: among
// admissible proposals, the one with values closer to the preferences
// evaluates lower.
func TestBestProposalWins(t *testing.T) {
	e := mustEval(t)
	closer, err := e.Distance(admissibleLevel(9, 3))
	if err != nil {
		t.Fatal(err)
	}
	farther, err := e.Distance(admissibleLevel(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !(closer < farther) {
		t.Errorf("closer proposal must evaluate lower: %v vs %v", closer, farther)
	}
}
