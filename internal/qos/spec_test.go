package qos

import (
	"strings"
	"testing"
)

// paperSpec reconstructs the Section 3 example used across these tests.
func paperSpec() *Spec {
	return &Spec{
		Name: "multimedia",
		Dimensions: []Dimension{
			{
				ID: "video", Name: "Video Quality",
				Attributes: []Attribute{
					{ID: "frame_rate", Domain: IntRange(1, 30)},
					{ID: "color_depth", Domain: DiscreteInts(1, 3, 8, 16, 24)},
				},
			},
			{
				ID: "audio", Name: "Audio Quality",
				Attributes: []Attribute{
					{ID: "sampling_rate", Domain: DiscreteInts(8, 16, 24, 44)},
					{ID: "sample_bits", Domain: DiscreteInts(8, 16, 24)},
				},
			},
		},
	}
}

func TestSpecValidateAccepts(t *testing.T) {
	if err := paperSpec().Validate(); err != nil {
		t.Fatalf("paper spec rejected: %v", err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no dimensions", func(s *Spec) { s.Dimensions = nil }, "no dimensions"},
		{"dup dimension", func(s *Spec) { s.Dimensions = append(s.Dimensions, s.Dimensions[0]) }, "duplicate dimension"},
		{"empty dim id", func(s *Spec) { s.Dimensions[0].ID = "" }, "empty ID"},
		{"no attributes", func(s *Spec) { s.Dimensions[0].Attributes = nil }, "no attributes"},
		{"dup attribute", func(s *Spec) {
			s.Dimensions[0].Attributes = append(s.Dimensions[0].Attributes, s.Dimensions[0].Attributes[0])
		}, "duplicate attribute"},
		{"empty attr id", func(s *Spec) { s.Dimensions[0].Attributes[0].ID = "" }, "empty ID"},
		{"bad domain", func(s *Spec) { s.Dimensions[0].Attributes[0].Domain = Domain{Kind: Discrete} }, "no values"},
		{"dep unknown attr", func(s *Spec) {
			s.Deps = []Dependency{{Kind: DepMaxSum, A: AttrKey{"video", "nope"}, B: AttrKey{"audio", "sample_bits"}}}
		}, "unknown attribute"},
	}
	for _, c := range cases {
		s := paperSpec()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSpecLookups(t *testing.T) {
	s := paperSpec()
	if s.Dimension("video") == nil || s.Dimension("haptics") != nil {
		t.Error("Dimension lookup broken")
	}
	if s.Attr(AttrKey{"video", "frame_rate"}) == nil {
		t.Error("Attr lookup broken")
	}
	if s.Attr(AttrKey{"video", "nope"}) != nil || s.Attr(AttrKey{"nope", "frame_rate"}) != nil {
		t.Error("Attr lookup should return nil for unknown keys")
	}
}

func TestDependencyRequires(t *testing.T) {
	dep := Dependency{
		Kind: DepRequires,
		A:    AttrKey{"video", "color_depth"}, AVal: Int(24),
		B: AttrKey{"video", "frame_rate"}, BSet: []Value{Int(10), Int(15)},
	}
	ok := Level{
		{Dim: "video", Attr: "color_depth"}: Int(24),
		{Dim: "video", Attr: "frame_rate"}:  Int(15),
	}
	if !dep.Satisfied(ok) {
		t.Error("satisfying level rejected")
	}
	bad := Level{
		{Dim: "video", Attr: "color_depth"}: Int(24),
		{Dim: "video", Attr: "frame_rate"}:  Int(30),
	}
	if dep.Satisfied(bad) {
		t.Error("violating level accepted")
	}
	// A at a non-trigger value: vacuously satisfied.
	other := Level{
		{Dim: "video", Attr: "color_depth"}: Int(8),
		{Dim: "video", Attr: "frame_rate"}:  Int(30),
	}
	if !dep.Satisfied(other) {
		t.Error("non-triggered dependency must be satisfied")
	}
	// Missing attributes: vacuous.
	if !dep.Satisfied(Level{}) {
		t.Error("incomplete level must satisfy dependency vacuously")
	}
}

func TestDependencyNumeric(t *testing.T) {
	sum := Dependency{Kind: DepMaxSum, A: AttrKey{"video", "frame_rate"}, B: AttrKey{"audio", "sampling_rate"}, Bound: 50}
	prod := Dependency{Kind: DepMaxProduct, A: AttrKey{"video", "frame_rate"}, B: AttrKey{"video", "color_depth"}, Bound: 300}
	l := Level{
		{Dim: "video", Attr: "frame_rate"}:    Int(30),
		{Dim: "video", Attr: "color_depth"}:   Int(8),
		{Dim: "audio", Attr: "sampling_rate"}: Int(16),
	}
	if !sum.Satisfied(l) { // 30+16 = 46 <= 50
		t.Error("maxsum within bound rejected")
	}
	if !prod.Satisfied(l) { // 30*8 = 240 <= 300
		t.Error("maxproduct within bound rejected")
	}
	l[AttrKey{Dim: "video", Attr: "color_depth"}] = Int(16)
	if prod.Satisfied(l) { // 480 > 300
		t.Error("maxproduct beyond bound accepted")
	}
}

func TestSpecDepsSatisfied(t *testing.T) {
	s := paperSpec()
	s.Deps = []Dependency{
		{Kind: DepMaxProduct, A: AttrKey{"video", "frame_rate"}, B: AttrKey{"video", "color_depth"}, Bound: 200},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, idx := s.DepsSatisfied(Level{
		{Dim: "video", Attr: "frame_rate"}:  Int(10),
		{Dim: "video", Attr: "color_depth"}: Int(24),
	})
	if ok || idx != 0 {
		t.Errorf("expected dependency 0 violated, got ok=%v idx=%d", ok, idx)
	}
	ok, idx = s.DepsSatisfied(Level{
		{Dim: "video", Attr: "frame_rate"}:  Int(10),
		{Dim: "video", Attr: "color_depth"}: Int(8),
	})
	if !ok || idx != -1 {
		t.Errorf("expected satisfied, got ok=%v idx=%d", ok, idx)
	}
}

func TestNumericDependencyOverStringRejected(t *testing.T) {
	s := paperSpec()
	s.Dimensions[0].Attributes = append(s.Dimensions[0].Attributes,
		Attribute{ID: "codec", Domain: DiscreteStrings("hq", "fast")})
	s.Deps = []Dependency{
		{Kind: DepMaxSum, A: AttrKey{"video", "codec"}, B: AttrKey{"video", "frame_rate"}, Bound: 10},
	}
	if err := s.Validate(); err == nil {
		t.Error("numeric dependency over string attribute accepted")
	}
}

func TestLevelCloneEqualString(t *testing.T) {
	l := Level{
		{Dim: "video", Attr: "frame_rate"}:  Int(10),
		{Dim: "video", Attr: "color_depth"}: Int(8),
	}
	c := l.Clone()
	if !l.Equal(c) {
		t.Error("clone not equal")
	}
	c[AttrKey{Dim: "video", Attr: "frame_rate"}] = Int(5)
	if l.Equal(c) {
		t.Error("mutating clone affected equality")
	}
	if l[AttrKey{Dim: "video", Attr: "frame_rate"}] != Int(10) {
		t.Error("clone aliases original")
	}
	want := "{video/color_depth=8, video/frame_rate=10}"
	if got := l.String(); got != want {
		t.Errorf("String = %q, want %q (sorted deterministic)", got, want)
	}
	if l.Equal(Level{}) {
		t.Error("different sizes must not be equal")
	}
}

func TestAttrKeyString(t *testing.T) {
	if (AttrKey{Dim: "a", Attr: "b"}).String() != "a/b" {
		t.Error("AttrKey string format")
	}
}
