package qos

import (
	"sort"
	"strings"
)

// Level is a concrete quality setting: one value per attribute. It is the
// payload of a multi-attribute proposal (Section 5) and the argument of the
// evaluation function (Section 6).
type Level map[AttrKey]Value

// Clone returns an independent copy of the level.
func (l Level) Clone() Level {
	c := make(Level, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// Equal reports whether two levels assign identical values to identical
// attribute sets.
func (l Level) Equal(o Level) bool {
	if len(l) != len(o) {
		return false
	}
	for k, v := range l {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// String renders the level deterministically (sorted by key) for logs and
// golden tests.
func (l Level) String() string {
	keys := make([]AttrKey, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Dim != keys[j].Dim {
			return keys[i].Dim < keys[j].Dim
		}
		return keys[i].Attr < keys[j].Attr
	})
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k.String())
		b.WriteByte('=')
		b.WriteString(l[k].String())
	}
	b.WriteByte('}')
	return b.String()
}
