package qos

import (
	"strings"
	"testing"
)

// paperRequest is the Section 3.1 remote-surveillance request.
func paperRequest() *Request {
	return &Request{
		Service: "surveillance",
		Dims: []DimPref{
			{
				Dim: "video",
				Attrs: []AttrPref{
					{Attr: "frame_rate", Sets: []ValueSet{Span(10, 5), Span(4, 1)}},
					{Attr: "color_depth", Sets: []ValueSet{One(Int(3)), One(Int(1))}},
				},
			},
			{
				Dim: "audio",
				Attrs: []AttrPref{
					{Attr: "sampling_rate", Sets: []ValueSet{One(Int(8))}},
					{Attr: "sample_bits", Sets: []ValueSet{One(Int(8))}},
				},
			},
		},
	}
}

func TestPaperRequestValidates(t *testing.T) {
	if err := paperRequest().Validate(paperSpec()); err != nil {
		t.Fatalf("the paper's own Section 3.1 request must validate: %v", err)
	}
}

func TestRequestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Request)
		want   string
	}{
		{"no dims", func(r *Request) { r.Dims = nil }, "names no dimensions"},
		{"unknown dim", func(r *Request) { r.Dims[0].Dim = "haptics" }, "unknown dimension"},
		{"dup dim", func(r *Request) { r.Dims = append(r.Dims, r.Dims[0]) }, "duplicate dimension"},
		{"no attrs", func(r *Request) { r.Dims[0].Attrs = nil }, "lists no attributes"},
		{"unknown attr", func(r *Request) { r.Dims[0].Attrs[0].Attr = "hue" }, "unknown attribute"},
		{"dup attr", func(r *Request) { r.Dims[0].Attrs = append(r.Dims[0].Attrs, r.Dims[0].Attrs[0]) }, "duplicate attribute"},
		{"no sets", func(r *Request) { r.Dims[0].Attrs[0].Sets = nil }, "no acceptable values"},
		{"span over discrete", func(r *Request) { r.Dims[0].Attrs[1].Sets = []ValueSet{Span(1, 3)} }, "continuous span over discrete"},
		{"span outside domain", func(r *Request) { r.Dims[0].Attrs[0].Sets = []ValueSet{Span(10, 40)} }, "outside domain"},
		{"value outside domain", func(r *Request) { r.Dims[0].Attrs[1].Sets = []ValueSet{One(Int(5))} }, "not in attribute domain"},
	}
	for _, c := range cases {
		r := paperRequest()
		c.mutate(r)
		err := r.Validate(paperSpec())
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValueSetContains(t *testing.T) {
	s := Span(10, 5)
	for v := int64(5); v <= 10; v++ {
		if !s.Contains(Int(v)) {
			t.Errorf("[10..5] should contain %d", v)
		}
	}
	if s.Contains(Int(4)) || s.Contains(Int(11)) {
		t.Error("span bounds leak")
	}
	if s.Contains(Str("x")) {
		t.Error("span contains string")
	}
	o := One(Int(3))
	if !o.Contains(Int(3)) || o.Contains(Int(1)) {
		t.Error("singleton broken")
	}
	if got := s.String(); got != "[10,...,5]" {
		t.Errorf("span string = %q", got)
	}
	if got := o.String(); got != "3" {
		t.Errorf("one string = %q", got)
	}
}

func TestRequestPreferred(t *testing.T) {
	r := paperRequest()
	pref := r.Preferred()
	want := Level{
		{Dim: "video", Attr: "frame_rate"}:    Float(10),
		{Dim: "video", Attr: "color_depth"}:   Int(3),
		{Dim: "audio", Attr: "sampling_rate"}: Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   Int(8),
	}
	if !pref.Equal(want) {
		t.Errorf("Preferred = %v, want %v", pref, want)
	}
	v, ok := r.PreferredValue(AttrKey{Dim: "video", Attr: "color_depth"})
	if !ok || !v.Equal(Int(3)) {
		t.Errorf("PreferredValue(color_depth) = %v,%v", v, ok)
	}
	if _, ok := r.PreferredValue(AttrKey{Dim: "video", Attr: "nope"}); ok {
		t.Error("PreferredValue of unknown attr should report !ok")
	}
}

func TestRequestAdmits(t *testing.T) {
	r := paperRequest()
	ok := Level{
		{Dim: "video", Attr: "frame_rate"}:    Int(7),
		{Dim: "video", Attr: "color_depth"}:   Int(1),
		{Dim: "audio", Attr: "sampling_rate"}: Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   Int(8),
	}
	if !r.Admits(ok) {
		t.Error("acceptable level rejected")
	}
	// Second accepted span also admits.
	ok[AttrKey{Dim: "video", Attr: "frame_rate"}] = Int(2)
	if !r.Admits(ok) {
		t.Error("second-choice span rejected")
	}
	// Value outside every accepted set.
	bad := ok.Clone()
	bad[AttrKey{Dim: "video", Attr: "frame_rate"}] = Int(20)
	if r.Admits(bad) {
		t.Error("frame rate 20 accepted though user tolerates only [10..5],[4..1]")
	}
	// Missing attribute.
	missing := ok.Clone()
	delete(missing, AttrKey{Dim: "audio", Attr: "sample_bits"})
	if r.Admits(missing) {
		t.Error("incomplete level admitted")
	}
	// Extra attributes are fine.
	extra := ok.Clone()
	extra[AttrKey{Dim: "video", Attr: "brightness"}] = Int(1)
	if !r.Admits(extra) {
		t.Error("extra attribute should not block admission")
	}
}

func TestRequestKeysOrder(t *testing.T) {
	ks := paperRequest().Keys()
	want := []AttrKey{
		{Dim: "video", Attr: "frame_rate"},
		{Dim: "video", Attr: "color_depth"},
		{Dim: "audio", Attr: "sampling_rate"},
		{Dim: "audio", Attr: "sample_bits"},
	}
	if len(ks) != len(want) {
		t.Fatalf("Keys len = %d", len(ks))
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("Keys[%d] = %v, want %v (importance order)", i, ks[i], want[i])
		}
	}
}

func TestRequestEqual(t *testing.T) {
	a, b := paperRequest(), paperRequest()
	if !a.Equal(b) {
		t.Fatal("identical requests must be Equal")
	}
	b.Service = "other"
	if a.Equal(b) {
		t.Error("service difference not detected")
	}
	b = paperRequest()
	b.Dims[0].Attrs[0].Sets[0].From++
	if a.Equal(b) {
		t.Error("span endpoint difference not detected")
	}
	b = paperRequest()
	b.Dims[1].Attrs[1].Sets[0].Single = Int(99)
	if a.Equal(b) {
		t.Error("discrete value difference not detected")
	}
	b = paperRequest()
	b.Dims[0].Attrs = b.Dims[0].Attrs[:1]
	if a.Equal(b) {
		t.Error("attribute count difference not detected")
	}
}
