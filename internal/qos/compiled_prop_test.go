package qos

import (
	"fmt"
	"math/rand"
	"testing"
)

// genSpecReq builds a random valid (spec, request) pair. Continuous int
// domains get integral span endpoints so grid rounding cannot step
// outside the accepted span (the workload generators obey the same
// convention).
func genSpecReq(rng *rand.Rand) (*Spec, *Request) {
	nDims := 1 + rng.Intn(3)
	spec := &Spec{Name: "prop"}
	req := &Request{Service: "prop"}
	for d := 0; d < nDims; d++ {
		dimID := fmt.Sprintf("d%d", d)
		dim := Dimension{ID: dimID}
		dp := DimPref{Dim: dimID}
		nAttrs := 1 + rng.Intn(3)
		for a := 0; a < nAttrs; a++ {
			attrID := fmt.Sprintf("a%d", a)
			var dom Domain
			var sets []ValueSet
			switch rng.Intn(4) {
			case 0: // discrete ints
				vals := rng.Perm(8)[:2+rng.Intn(5)]
				iv := make([]int64, len(vals))
				for i, v := range vals {
					iv[i] = int64(v)
				}
				dom = DiscreteInts(iv...)
				for _, i := range rng.Perm(len(iv))[:1+rng.Intn(len(iv))] {
					sets = append(sets, One(Int(iv[i])))
				}
			case 1: // discrete strings
				all := []string{"hq", "main", "fast", "eco"}
				k := 2 + rng.Intn(3)
				dom = DiscreteStrings(all[:k]...)
				for _, i := range rng.Perm(k)[:1+rng.Intn(k)] {
					sets = append(sets, One(Str(all[i])))
				}
			case 2: // continuous int range with integral spans
				lo, hi := int64(1), int64(10+rng.Intn(30))
				dom = IntRange(lo, hi)
				from := lo + rng.Int63n(hi-lo)
				to := lo + rng.Int63n(hi-lo)
				sets = append(sets, Span(float64(from), float64(to)))
			default: // continuous float range, quarter-step endpoints so
				// from+(to-from) == to exactly and grid values stay in-span
				lo, hi := 0.0, float64(4+rng.Intn(80))/4
				dom = FloatRange(lo, hi)
				q := int(hi * 4)
				from := float64(rng.Intn(q+1)) / 4
				to := float64(rng.Intn(q+1)) / 4
				sets = append(sets, Span(from, to))
			}
			dim.Attributes = append(dim.Attributes, Attribute{ID: attrID, Domain: dom})
			dp.Attrs = append(dp.Attrs, AttrPref{Attr: attrID, Sets: sets})
		}
		spec.Dimensions = append(spec.Dimensions, dim)
		req.Dims = append(req.Dims, dp)
	}
	genDeps(rng, spec)
	return spec, req
}

// genDeps sprinkles up to two random dependencies over the spec.
func genDeps(rng *rand.Rand, spec *Spec) {
	keys := allKeys(spec)
	if len(keys) < 2 {
		return
	}
	for n := rng.Intn(3); n > 0; n-- {
		perm := rng.Perm(len(keys))
		a, b := keys[perm[0]], keys[perm[1]]
		na, nb := spec.Attr(a), spec.Attr(b)
		if na.Domain.Type != TypeString && nb.Domain.Type != TypeString && rng.Intn(2) == 0 {
			kind := DepMaxSum
			if rng.Intn(2) == 0 {
				kind = DepMaxProduct
			}
			spec.Deps = append(spec.Deps, Dependency{
				Kind: kind, A: a, B: b, Bound: rng.Float64() * 100,
			})
			continue
		}
		av := randomDomainValue(rng, na.Domain)
		var bset []Value
		for i := 0; i < 1+rng.Intn(2); i++ {
			bset = append(bset, randomDomainValue(rng, nb.Domain))
		}
		spec.Deps = append(spec.Deps, Dependency{Kind: DepRequires, A: a, B: b, AVal: av, BSet: bset})
	}
}

func allKeys(spec *Spec) []AttrKey {
	var keys []AttrKey
	for _, d := range spec.Dimensions {
		for _, a := range d.Attributes {
			keys = append(keys, AttrKey{Dim: d.ID, Attr: a.ID})
		}
	}
	return keys
}

func randomDomainValue(rng *rand.Rand, d Domain) Value {
	if d.Kind == Discrete {
		return d.Values[rng.Intn(len(d.Values))]
	}
	x := d.Min + rng.Float64()*(d.Max-d.Min)
	if d.Type == TypeInt {
		return Int(int64(x))
	}
	return Float(x)
}

// TestCompiledMatchesMapPath is the bit-compatibility contract of the
// compiled representation: across random specs, requests, penalties and
// assignments, the slot-indexed Distance/Reward/DepsSatisfied are
// float64-identical (==, not epsilon) to the map-based originals.
func TestCompiledMatchesMapPath(t *testing.T) {
	penalties := []PenaltyFunc{nil, DefaultPenalty, QuadraticPenalty}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec, req := genSpecReq(rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid generated spec: %v", seed, err)
		}
		eval, err := NewEvaluator(spec, req)
		if err != nil {
			t.Fatalf("seed %d: evaluator: %v", seed, err)
		}
		ld, err := BuildLadder(spec, req, 1+rng.Intn(5))
		if err != nil {
			t.Fatalf("seed %d: ladder: %v", seed, err)
		}
		pen := penalties[seed%int64(len(penalties))]
		c, err := eval.Compile(ld, pen)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		for trial := 0; trial < 40; trial++ {
			a := ld.NewAssignment()
			for i := range a {
				a[i] = rng.Intn(len(ld.Attrs[i].Choices))
			}
			level := ld.Level(a)

			wantOK, wantDep := spec.DepsSatisfied(level)
			gotOK, gotDep := c.DepsSatisfied(a)
			if wantOK != gotOK || wantDep != gotDep {
				t.Fatalf("seed %d: DepsSatisfied(%v) = (%v,%d), map path (%v,%d)",
					seed, a, gotOK, gotDep, wantOK, wantDep)
			}

			wantR := Reward(ld, a, pen)
			if gotR := c.Reward(a); gotR != wantR {
				t.Fatalf("seed %d: Reward(%v) = %v, map path %v", seed, a, gotR, wantR)
			}

			if !wantOK {
				continue // the evaluator rejects dependency-violating levels
			}
			wantD, err := eval.Distance(level)
			if err != nil {
				t.Fatalf("seed %d: map distance: %v", seed, err)
			}
			if gotD := c.Distance(a); gotD != wantD {
				t.Fatalf("seed %d: Distance(%v) = %v, map path %v", seed, a, gotD, wantD)
			}

			for i := range a {
				if !ld.CanDegrade(a, i) {
					continue
				}
				p := pen
				if p == nil {
					p = DefaultPenalty
				}
				la := &ld.Attrs[i]
				steps, w := len(la.Choices), la.Weight()
				want := p(a[i]+1, steps, w) - p(a[i], steps, w)
				if got := c.DegradeCost(a, i); got != want {
					t.Fatalf("seed %d: DegradeCost(%v,%d) = %v, map path %v", seed, a, i, got, want)
				}
			}
		}
	}
}

// BenchmarkDistanceCompiled is the compiled counterpart of
// BenchmarkDistance: the same Section 6 evaluation on the slot-indexed
// tables.
func BenchmarkDistanceCompiled(b *testing.B) {
	e, err := NewEvaluator(paperSpec(), paperRequest())
	if err != nil {
		b.Fatal(err)
	}
	ld, err := BuildLadder(paperSpec(), paperRequest(), 4)
	if err != nil {
		b.Fatal(err)
	}
	c, err := e.Compile(ld, nil)
	if err != nil {
		b.Fatal(err)
	}
	a := ld.NewAssignment()
	for i := range a {
		if ld.CanDegrade(a, i) {
			a[i]++
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := c.Distance(a); d < 0 {
			b.Fatal("negative distance")
		}
	}
}

// BenchmarkRewardCompiled is the compiled counterpart of BenchmarkReward.
func BenchmarkRewardCompiled(b *testing.B) {
	e, err := NewEvaluator(paperSpec(), paperRequest())
	if err != nil {
		b.Fatal(err)
	}
	ld, err := BuildLadder(paperSpec(), paperRequest(), 4)
	if err != nil {
		b.Fatal(err)
	}
	c, err := e.Compile(ld, nil)
	if err != nil {
		b.Fatal(err)
	}
	a := ld.NewAssignment()
	a[0] = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reward(a)
	}
}
