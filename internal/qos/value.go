// Package qos implements the QoS requirements representation of
// Nogueira & Pinho, "Dynamic QoS-Aware Coalition Formation" (IPPS 2005),
// Section 3: dimensions, attributes, typed value domains, inter-attribute
// dependencies, preference-ordered service requests (Section 3.1), the
// multi-attribute proposal-evaluation distance (Section 6, eqs. 2-5) and
// the local reward function (Section 5, eq. 1).
package qos

import (
	"fmt"
	"math"
	"strconv"
)

// ValueType identifies the primitive type of an attribute value.
// The paper defines Type = {integer, float, string}.
type ValueType uint8

const (
	// TypeInt is a 64-bit signed integer value.
	TypeInt ValueType = iota
	// TypeFloat is a 64-bit floating point value.
	TypeFloat
	// TypeString is an opaque string value; string attributes must use
	// discrete domains, where ordering comes from the quality index.
	TypeString
)

// String returns the paper's name for the value type.
func (t ValueType) String() string {
	switch t {
	case TypeInt:
		return "integer"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("ValueType(%d)", uint8(t))
	}
}

// Value is a single attribute value. It is a small tagged union so that
// levels and domains can be stored compactly and compared without
// allocation.
type Value struct {
	Type ValueType
	I    int64
	F    float64
	S    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{Type: TypeInt, I: v} }

// Float returns a floating point Value.
func Float(v float64) Value { return Value{Type: TypeFloat, F: v} }

// Str returns a string Value.
func Str(v string) Value { return Value{Type: TypeString, S: v} }

// IsNumeric reports whether the value carries a number.
func (v Value) IsNumeric() bool { return v.Type == TypeInt || v.Type == TypeFloat }

// Num returns the numeric content of the value. String values return NaN;
// callers that may hold string values must check IsNumeric first.
func (v Value) Num() float64 {
	switch v.Type {
	case TypeInt:
		return float64(v.I)
	case TypeFloat:
		return v.F
	default:
		return math.NaN()
	}
}

// Equal reports whether two values are identical in type and content.
// Int and Float values are never equal to each other even when numerically
// equal: a domain is homogeneous in type, so cross-type comparison is a
// specification error that should surface, not be masked.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TypeInt:
		return v.I == o.I
	case TypeFloat:
		return v.F == o.F
	default:
		return v.S == o.S
	}
}

// String renders the value for diagnostics and tables.
func (v Value) String() string {
	switch v.Type {
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}
