// Package resource implements the resource model of the paper's Section 4:
// limited hardware/software quantities supplied by a node (CPU time,
// memory, I/O and network bandwidth, energy) and the Resource Managers
// that grant reservations against them. A node's QoS Provider maps QoS
// levels to resource vectors and asks the managers to reserve them
// (Section 5).
package resource

import (
	"fmt"
	"strings"
)

// Kind enumerates the resource kinds of the simulated devices.
type Kind uint8

const (
	// CPU is processing capacity in MIPS-like units; a node's capacity
	// reflects its device class and current congestion.
	CPU Kind = iota
	// Memory is RAM in megabytes.
	Memory
	// NetBW is wireless link bandwidth in kilobits per second.
	NetBW
	// Energy is battery budget in joule-like units reserved for a task's
	// lifetime.
	Energy
	// Storage is persistent buffer space in megabytes.
	Storage

	// NumKinds is the number of resource kinds; Vector is indexed by Kind.
	NumKinds = 5
)

var kindNames = [NumKinds]string{"cpu", "mem", "netbw", "energy", "storage"}

// String returns the short name of the kind.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Kinds lists all resource kinds in index order.
func Kinds() []Kind {
	return []Kind{CPU, Memory, NetBW, Energy, Storage}
}

// Vector is a fixed-size resource quantity vector, indexed by Kind.
// The zero value is the empty demand.
type Vector [NumKinds]float64

// V builds a vector from (kind, amount) pairs.
func V(pairs ...KV) Vector {
	var v Vector
	for _, p := range pairs {
		v[p.K] = p.A
	}
	return v
}

// KV is a (kind, amount) pair for the V constructor.
type KV struct {
	K Kind
	A float64
}

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o.
func (v Vector) Sub(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v * f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Fits reports whether v <= o component-wise.
func (v Vector) Fits(o Vector) bool {
	for i := range v {
		if v[i] > o[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for i := range v {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// Nonnegative reports whether every component is >= 0; demand vectors and
// capacities must be nonnegative.
func (v Vector) Nonnegative() bool {
	for i := range v {
		if v[i] < 0 {
			return false
		}
	}
	return true
}

// String renders only the nonzero components, e.g. "{cpu:120 mem:32}".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := range v {
		if v[i] == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%s:%g", Kind(i), v[i])
	}
	b.WriteByte('}')
	return b.String()
}

// InsufficientError reports a reservation that could not be granted.
type InsufficientError struct {
	Kind Kind
	Want float64
	Have float64
}

// Error implements the error interface.
func (e *InsufficientError) Error() string {
	return fmt.Sprintf("resource: insufficient %s: want %g, have %g", e.Kind, e.Want, e.Have)
}
