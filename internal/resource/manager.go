package resource

import (
	"fmt"
	"sort"
	"sync"
)

// ReservationID identifies a reservation within one node; the convention
// throughout the repo is "service/task" or "service/task#attempt".
type ReservationID string

// Manager is the paper's Resource Manager: the object that manages one
// particular resource and grants specific amounts to requesting tasks.
// Implementations must be safe for concurrent use (the live runtime calls
// them from per-node goroutines, the negotiation hold timers from timer
// goroutines).
type Manager interface {
	// Kind identifies the managed resource.
	Kind() Kind
	// Capacity is the total manageable amount.
	Capacity() float64
	// Available is the currently unreserved amount.
	Available() float64
	// Reserve grants amount to id, or returns *InsufficientError when
	// the capacity does not cover it. Reserving again under a live id is
	// an error: ids name one reservation, so that rollback and release
	// are exact.
	Reserve(id ReservationID, amount float64) error
	// Release returns the amount held by id (0 when unknown).
	Release(id ReservationID) float64
}

// Bucket is the basic utilization-style Resource Manager: a capacity and
// a ledger of reservations. The CPU admission test "task set is
// schedulable" (Section 5) reduces to total reserved utilization <=
// capacity, i.e. the classic EDF utilization bound with capacity scaled
// to the node's speed.
type Bucket struct {
	kind Kind

	mu       sync.Mutex
	capacity float64
	reserved float64
	ledger   map[ReservationID]float64
}

// NewBucket builds a manager for the given kind and capacity.
func NewBucket(kind Kind, capacity float64) *Bucket {
	if capacity < 0 {
		capacity = 0
	}
	return &Bucket{kind: kind, capacity: capacity, ledger: make(map[ReservationID]float64)}
}

// Kind implements Manager.
func (b *Bucket) Kind() Kind { return b.kind }

// Capacity implements Manager.
func (b *Bucket) Capacity() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// Available implements Manager.
func (b *Bucket) Available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity - b.reserved
}

// Reserve implements Manager.
func (b *Bucket) Reserve(id ReservationID, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("resource: negative reservation %g for %s", amount, b.kind)
	}
	if amount == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, live := b.ledger[id]; live {
		return fmt.Errorf("resource: reservation %q already live on %s", id, b.kind)
	}
	if b.reserved+amount > b.capacity {
		return &InsufficientError{Kind: b.kind, Want: amount, Have: b.capacity - b.reserved}
	}
	b.reserved += amount
	b.ledger[id] = amount
	return nil
}

// Release implements Manager.
func (b *Bucket) Release(id ReservationID) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	amt, ok := b.ledger[id]
	if !ok {
		return 0
	}
	delete(b.ledger, id)
	b.reserved -= amt
	if b.reserved < 0 || len(b.ledger) == 0 {
		// An empty ledger means zero usage by definition; snapping to 0
		// discards the float residue a running sum accumulates across
		// interleaved reserve/release pairs, so a drained bucket's
		// available amount returns exactly to its capacity.
		b.reserved = 0
	}
	return amt
}

// SetCapacity adjusts the capacity at run time (battery decay, congestion
// changes). Existing reservations are never revoked; the available amount
// may temporarily become negative, which only blocks new admissions.
func (b *Bucket) SetCapacity(c float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = c
}

// Holders returns the reservation IDs present in the ledger, sorted, for
// diagnostics.
func (b *Bucket) Holders() []ReservationID {
	b.mu.Lock()
	defer b.mu.Unlock()
	ids := make([]ReservationID, 0, len(b.ledger))
	for id := range b.ledger {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Battery is an Energy manager whose capacity drains over simulated time.
// Drain is driven explicitly by the simulation (or by the live runtime's
// ticker) so the model stays deterministic.
type Battery struct {
	*Bucket
	mu        sync.Mutex
	drainRate float64 // capacity units per simulated second of idle drain
}

// NewBattery builds an energy manager with the given initial budget and
// idle drain rate (units per second).
func NewBattery(capacity, drainRate float64) *Battery {
	return &Battery{Bucket: NewBucket(Energy, capacity), drainRate: drainRate}
}

// Drain advances the battery by dt seconds of idle consumption.
func (b *Battery) Drain(dt float64) {
	b.mu.Lock()
	rate := b.drainRate
	b.mu.Unlock()
	if rate <= 0 || dt <= 0 {
		return
	}
	c := b.Capacity() - rate*dt
	if c < 0 {
		c = 0
	}
	b.SetCapacity(c)
}

// Set is a node's full complement of Resource Managers, one per kind,
// with an all-or-nothing vector reservation primitive. The QoS Provider
// "rather than reserving resources directly ... will contact the Resource
// Managers to grant specific resource amounts" (Section 4.1); Set is that
// contact surface.
type Set struct {
	mu       sync.Mutex
	managers [NumKinds]Manager
}

// NewSet builds a Set with Bucket managers sized by the capacity vector.
func NewSet(capacity Vector) *Set {
	s := &Set{}
	for i := range s.managers {
		s.managers[i] = NewBucket(Kind(i), capacity[i])
	}
	return s
}

// NewSetWith builds a Set from explicit managers; kinds not provided get
// zero-capacity buckets.
func NewSetWith(managers ...Manager) *Set {
	s := &Set{}
	for _, m := range managers {
		s.managers[m.Kind()] = m
	}
	for i := range s.managers {
		if s.managers[i] == nil {
			s.managers[i] = NewBucket(Kind(i), 0)
		}
	}
	return s
}

// Manager returns the manager for a kind.
func (s *Set) Manager(k Kind) Manager { return s.managers[k] }

// Capacity returns the capacity vector.
func (s *Set) Capacity() Vector {
	var v Vector
	for i, m := range s.managers {
		v[i] = m.Capacity()
	}
	return v
}

// Available returns the available vector.
func (s *Set) Available() Vector {
	var v Vector
	for i, m := range s.managers {
		v[i] = m.Available()
	}
	return v
}

// CanReserve reports whether demand would be granted right now, without
// reserving. Callers racing each other must still handle Reserve errors.
func (s *Set) CanReserve(demand Vector) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, m := range s.managers {
		if demand[i] > 0 && m.Available() < demand[i] {
			return false
		}
	}
	return true
}

// Reserve grants the whole demand vector under id, or grants nothing and
// returns the first failure (all-or-nothing with rollback).
func (s *Set) Reserve(id ReservationID, demand Vector) error {
	if !demand.Nonnegative() {
		return fmt.Errorf("resource: demand %v has negative component", demand)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, m := range s.managers {
		if demand[i] == 0 {
			continue
		}
		if err := m.Reserve(id, demand[i]); err != nil {
			for j := 0; j < i; j++ {
				if demand[j] != 0 {
					s.managers[j].Release(id)
				}
			}
			return err
		}
	}
	return nil
}

// Release frees everything held under id across all managers and returns
// the released vector.
func (s *Set) Release(id ReservationID) Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	var v Vector
	for i, m := range s.managers {
		v[i] = m.Release(id)
	}
	return v
}
