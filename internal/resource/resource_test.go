package resource

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestVectorArithmetic(t *testing.T) {
	a := V(KV{CPU, 100}, KV{Memory, 32})
	b := V(KV{CPU, 50}, KV{NetBW, 10})
	sum := a.Add(b)
	if sum[CPU] != 150 || sum[Memory] != 32 || sum[NetBW] != 10 {
		t.Errorf("Add = %v", sum)
	}
	diff := a.Sub(b)
	if diff[CPU] != 50 || diff[NetBW] != -10 {
		t.Errorf("Sub = %v", diff)
	}
	sc := a.Scale(2)
	if sc[CPU] != 200 || sc[Memory] != 64 {
		t.Errorf("Scale = %v", sc)
	}
	if !b.Fits(a.Add(b)) {
		t.Error("b must fit a+b")
	}
	if a.Add(b).Fits(a) {
		t.Error("a+b must not fit a")
	}
	if !(Vector{}).IsZero() || a.IsZero() {
		t.Error("IsZero broken")
	}
	if !a.Nonnegative() || diff.Nonnegative() {
		t.Error("Nonnegative broken")
	}
}

func TestVectorAlgebraProperties(t *testing.T) {
	mk := func(c, m, n float64) Vector { return V(KV{CPU, c}, KV{Memory, m}, KV{NetBW, n}) }
	clamp := func(x float64) float64 { return float64(int64(x) % 1_000_000) } // finite, exact in float64
	// Add commutes; Sub inverts Add; Scale distributes.
	f := func(a1, a2, b1, b2, c1, c2 int64) bool {
		a := mk(clamp(float64(a1)), clamp(float64(b1)), clamp(float64(c1)))
		b := mk(clamp(float64(a2)), clamp(float64(b2)), clamp(float64(c2)))
		if a.Add(b) != b.Add(a) {
			return false
		}
		if a.Add(b).Sub(b) != a {
			return false
		}
		return a.Add(a) == a.Scale(2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVectorString(t *testing.T) {
	v := V(KV{CPU, 120}, KV{Memory, 32})
	if got := v.String(); got != "{cpu:120 mem:32}" {
		t.Errorf("String = %q", got)
	}
	if got := (Vector{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestKindNames(t *testing.T) {
	want := map[Kind]string{CPU: "cpu", Memory: "mem", NetBW: "netbw", Energy: "energy", Storage: "storage"}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), name)
		}
	}
	if len(Kinds()) != NumKinds {
		t.Error("Kinds() incomplete")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestBucketReserveRelease(t *testing.T) {
	b := NewBucket(CPU, 100)
	if b.Capacity() != 100 || b.Available() != 100 {
		t.Fatal("fresh bucket")
	}
	if err := b.Reserve("a", 60); err != nil {
		t.Fatal(err)
	}
	if b.Available() != 40 {
		t.Errorf("available = %v", b.Available())
	}
	// Over-capacity rejected with a typed error.
	err := b.Reserve("b", 50)
	var ie *InsufficientError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InsufficientError, got %v", err)
	}
	if ie.Kind != CPU || ie.Want != 50 || ie.Have != 40 {
		t.Errorf("error detail = %+v", ie)
	}
	if ie.Error() == "" {
		t.Error("error message empty")
	}
	// Duplicate id rejected (ids name one reservation).
	if err := b.Reserve("a", 1); err == nil {
		t.Error("duplicate reservation id accepted")
	}
	// Release returns the held amount; unknown ids release 0.
	if got := b.Release("a"); got != 60 {
		t.Errorf("released %v", got)
	}
	if got := b.Release("a"); got != 0 {
		t.Errorf("double release = %v", got)
	}
	if b.Available() != 100 {
		t.Error("release did not restore capacity")
	}
	// Zero reservations are free and need no ledger entry.
	if err := b.Reserve("z", 0); err != nil {
		t.Error(err)
	}
	if len(b.Holders()) != 0 {
		t.Error("zero reservation created a holder")
	}
	// Negative reservations are errors.
	if err := b.Reserve("n", -5); err == nil {
		t.Error("negative reservation accepted")
	}
}

// TestBucketReleaseReplayIdempotent pins the ledger property the
// at-least-once protocol layer leans on (DESIGN.md §12): a duplicated
// TaskRelease replays Release(id) arbitrarily many times, and every
// replay after the first must be a no-op — reserved can never go
// negative and a drained bucket returns to exactly its capacity.
func TestBucketReleaseReplayIdempotent(t *testing.T) {
	b := NewBucket(CPU, 100)
	ids := []ReservationID{"t1", "t2", "t3"}
	for i, id := range ids {
		if err := b.Reserve(id, float64(10*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// A replay storm: every release delivered three times, interleaved.
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			b.Release(id)
			if avail := b.Available(); avail > b.Capacity() {
				t.Fatalf("replayed release drove reserved negative: available %v > capacity %v", avail, b.Capacity())
			}
		}
	}
	if b.Available() != 100 {
		t.Errorf("drained bucket available = %v, want exactly 100", b.Available())
	}
	if len(b.Holders()) != 0 {
		t.Errorf("holders after drain: %v", b.Holders())
	}
	// A release replayed across a re-reservation of the same id frees the
	// live reservation once, never twice.
	if err := b.Reserve("t1", 25); err != nil {
		t.Fatal(err)
	}
	if got := b.Release("t1"); got != 25 {
		t.Errorf("first release = %v", got)
	}
	if got := b.Release("t1"); got != 0 {
		t.Errorf("replayed release = %v, want 0", got)
	}
	if b.Available() != 100 {
		t.Errorf("available = %v after replay across re-reserve", b.Available())
	}
}

// TestSetReleaseReplayIdempotent lifts the same pin to the vector Set:
// the second release of an id returns the zero vector and leaves every
// bucket exactly full.
func TestSetReleaseReplayIdempotent(t *testing.T) {
	s := NewSet(V(KV{CPU, 100}, KV{Memory, 64}, KV{NetBW, 10}, KV{Energy, 50}))
	if err := s.Reserve("task", V(KV{CPU, 30}, KV{Memory, 16}, KV{NetBW, 2}, KV{Energy, 5})); err != nil {
		t.Fatal(err)
	}
	first := s.Release("task")
	if first[CPU] != 30 || first[Memory] != 16 {
		t.Errorf("first release = %v", first)
	}
	second := s.Release("task")
	if !second.IsZero() {
		t.Errorf("replayed release = %v, want zero vector", second)
	}
	if s.Available() != s.Capacity() {
		t.Errorf("available %v != capacity %v after replay", s.Available(), s.Capacity())
	}
}

func TestBucketSetCapacity(t *testing.T) {
	b := NewBucket(CPU, 100)
	if err := b.Reserve("a", 80); err != nil {
		t.Fatal(err)
	}
	b.SetCapacity(50) // congestion: capacity drops below reserved
	if b.Available() >= 0 {
		t.Errorf("available = %v, want negative (over-committed)", b.Available())
	}
	if err := b.Reserve("b", 1); err == nil {
		t.Error("admission over shrunk capacity accepted")
	}
	if got := b.Release("a"); got != 80 {
		t.Error("existing reservation must survive capacity changes")
	}
}

func TestBucketHolders(t *testing.T) {
	b := NewBucket(Memory, 10)
	for _, id := range []ReservationID{"c", "a", "b"} {
		if err := b.Reserve(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	h := b.Holders()
	if len(h) != 3 || h[0] != "a" || h[1] != "b" || h[2] != "c" {
		t.Errorf("Holders = %v, want sorted", h)
	}
}

func TestBucketConcurrentReserve(t *testing.T) {
	b := NewBucket(CPU, 1000)
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id := ReservationID(rune('a' + n%26))
			// Mix of reservations and releases; invariants checked after.
			if err := b.Reserve(ReservationID(string(id)+string(rune('0'+n/26))), 10); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent reserve failed: %v", err)
	}
	if b.Available() != 0 {
		t.Errorf("available = %v, want 0 after 100x10 on 1000", b.Available())
	}
}

func TestBatteryDrain(t *testing.T) {
	bat := NewBattery(100, 2) // 2 units/s idle drain
	bat.Drain(10)
	if got := bat.Capacity(); got != 80 {
		t.Errorf("capacity after drain = %v, want 80", got)
	}
	bat.Drain(1000)
	if got := bat.Capacity(); got != 0 {
		t.Errorf("capacity floor = %v, want 0", got)
	}
	// Zero and negative drains are no-ops.
	bat2 := NewBattery(50, 0)
	bat2.Drain(100)
	if bat2.Capacity() != 50 {
		t.Error("zero-rate battery drained")
	}
	bat3 := NewBattery(50, 5)
	bat3.Drain(-1)
	if bat3.Capacity() != 50 {
		t.Error("negative dt drained")
	}
}

func TestSetReserveAllOrNothing(t *testing.T) {
	s := NewSet(V(KV{CPU, 100}, KV{Memory, 10}))
	// Demand exceeding memory must not leave a partial CPU reservation.
	demand := V(KV{CPU, 50}, KV{Memory, 20})
	if err := s.Reserve("x", demand); err == nil {
		t.Fatal("infeasible demand accepted")
	}
	if s.Available() != s.Capacity() {
		t.Fatalf("rollback failed: available %v, capacity %v", s.Available(), s.Capacity())
	}
	// Feasible demand reserves everything.
	ok := V(KV{CPU, 50}, KV{Memory, 5})
	if err := s.Reserve("x", ok); err != nil {
		t.Fatal(err)
	}
	avail := s.Available()
	if avail[CPU] != 50 || avail[Memory] != 5 {
		t.Errorf("available = %v", avail)
	}
	// Release returns the full vector.
	rel := s.Release("x")
	if rel[CPU] != 50 || rel[Memory] != 5 {
		t.Errorf("released = %v", rel)
	}
	if s.Available() != s.Capacity() {
		t.Error("release incomplete")
	}
}

func TestSetCanReserveMatchesReserve(t *testing.T) {
	s := NewSet(V(KV{CPU, 100}, KV{Memory, 10}, KV{NetBW, 5}))
	f := func(c, m, n uint8) bool {
		demand := V(KV{CPU, float64(c)}, KV{Memory, float64(m) / 10}, KV{NetBW, float64(n) / 50})
		can := s.CanReserve(demand)
		err := s.Reserve("probe", demand)
		if err == nil {
			s.Release("probe")
		}
		return can == (err == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetRejectsNegativeDemand(t *testing.T) {
	s := NewSet(V(KV{CPU, 10}))
	var d Vector
	d[CPU] = -1
	if err := s.Reserve("x", d); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestNewSetWith(t *testing.T) {
	bat := NewBattery(200, 1)
	s := NewSetWith(NewBucket(CPU, 100), bat)
	if s.Manager(CPU).Capacity() != 100 {
		t.Error("explicit manager lost")
	}
	if s.Manager(Energy) != bat.Bucket {
		// NewSetWith stores the Manager interface; Battery embeds
		// *Bucket so the comparison must be against the embedded value.
		t.Log("battery stored as its own manager type (embedded bucket)")
	}
	if s.Manager(Storage).Capacity() != 0 {
		t.Error("missing kinds must default to zero-capacity buckets")
	}
	// Reservations against zero-capacity kinds fail.
	if err := s.Reserve("x", V(KV{Storage, 1})); err == nil {
		t.Error("zero-capacity manager granted a reservation")
	}
}

func TestSetConcurrentReserveRelease(t *testing.T) {
	s := NewSet(V(KV{CPU, 1000}, KV{Memory, 1000}))
	demand := V(KV{CPU, 10}, KV{Memory, 10})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id := ReservationID(rune('A' + n))
			if err := s.Reserve(id, demand); err == nil {
				s.Release(id)
			}
		}(i)
	}
	wg.Wait()
	if s.Available() != s.Capacity() {
		t.Errorf("leaked reservations: %v vs %v", s.Available(), s.Capacity())
	}
}
