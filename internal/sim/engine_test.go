package sim

import (
	"testing"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := New(1)
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v", e.Now())
	}
	if e.Processed != 3 {
		t.Errorf("processed = %d", e.Processed)
	}
}

func TestEngineFIFOForSimultaneousEvents(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events reordered: got[%d] = %d", i, v)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := New(1)
	var times []Time
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() {
			times = append(times, e.Now())
		})
	})
	e.Run(0)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
	// Negative delay clamps to now.
	e2 := New(1)
	fired := false
	e2.After(5, func() {
		e2.After(-1, func() { fired = e2.Now() == 5 })
	})
	e2.Run(0)
	if !fired {
		t.Error("negative After did not fire at current time")
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEngineHorizon(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(1, func() { fired++ })
	e.At(100, func() { fired++ })
	final := e.Run(10)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (second event beyond horizon)", fired)
	}
	if final != 10 {
		t.Errorf("final time = %v, want horizon", final)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
	if e.Step() {
		t.Error("Step after Stop should be false")
	}
}

func TestEngineDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Rand().Float64() != c.Rand().Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestEngineStepOnEmptyQueue(t *testing.T) {
	e := New(1)
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
	if e.Run(0) != 0 {
		t.Error("Run on empty queue should stay at 0")
	}
}

// TestEngineManyEvents exercises the heap at scale and checks global
// time monotonicity.
func TestEngineManyEvents(t *testing.T) {
	e := New(7)
	last := Time(-1)
	n := 0
	for i := 0; i < 5000; i++ {
		at := e.Rand().Float64() * 1000
		e.At(at, func() {
			if e.Now() < last {
				t.Fatalf("time went backwards: %v after %v", e.Now(), last)
			}
			last = e.Now()
			n++
		})
	}
	e.Run(0)
	if n != 5000 {
		t.Errorf("executed %d events", n)
	}
}
