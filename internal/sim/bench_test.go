package sim

import "testing"

// BenchmarkEventThroughput measures raw scheduler throughput: schedule
// and drain batches of randomly timed events.
func BenchmarkEventThroughput(b *testing.B) {
	const batch = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(int64(i))
		for j := 0; j < batch; j++ {
			e.At(e.Rand().Float64()*100, func() {})
		}
		e.Run(0)
		if e.Processed != batch {
			b.Fatal("lost events")
		}
	}
}

// BenchmarkCascade measures self-rescheduling chains (the heartbeat and
// battery-drain pattern).
func BenchmarkCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(1)
		n := 0
		var loop func()
		loop = func() {
			n++
			if n < 1000 {
				e.After(0.5, loop)
			}
		}
		e.After(0.5, loop)
		e.Run(0)
		if n != 1000 {
			b.Fatal("chain broke")
		}
	}
}
