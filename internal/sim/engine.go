// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, and a seeded random source. All experiment tables
// in this repository are produced on this engine so that every number is
// reproducible from a seed.
//
// The queue is allocation-free on the hot path: events are values in a
// manually managed binary heap (no container/heap interface boxing, no
// per-event pointer), and the AtArg/AfterArg variants let callers
// schedule a shared handler with a pooled argument object instead of
// allocating a fresh closure per event. Run applies events in per-tick
// batches drained into a reused buffer, so every event sharing one
// timestamp is executed in one pass over the heap.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback: either a plain closure (fn) or a shared
// handler plus argument (afn, arg). Exactly one of fn/afn is set.
type event struct {
	at  Time
	seq uint64
	fn  func()
	afn func(any)
	arg any
}

func (ev *event) run() {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.afn(ev.arg)
}

// Engine drives a single-threaded simulation. It is intentionally not
// safe for concurrent use: determinism comes from the single event loop.
type Engine struct {
	now     Time
	seq     uint64
	heap    []event
	batch   []event // reused per-tick batch buffer
	nbatch  int     // batch entries not yet executed (for Pending)
	rng     *rand.Rand
	stopped bool

	// Processed counts executed events, for overhead reporting.
	Processed uint64
}

// New builds an engine seeded deterministically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// is always a logic error in the caller.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// AtArg schedules the shared handler fn with arg at absolute time t.
// It is the allocation-free twin of At: callers that would otherwise
// build a fresh closure per event pass one long-lived handler and a
// (typically pooled) argument instead. Ordering and semantics are
// identical to At.
func (e *Engine) AtArg(t Time, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, afn: fn, arg: arg})
}

// After schedules fn d seconds from now; negative delays clamp to zero.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// AfterArg schedules the shared handler fn with arg d seconds from now;
// negative delays clamp to zero.
func (e *Engine) AfterArg(d float64, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.AtArg(e.now+d, fn, arg)
}

// Stop makes Run return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// less orders events by (time, schedule sequence): stable FIFO for
// simultaneous events.
func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

// push inserts ev into the value heap (sift-up).
func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// pop removes and returns the minimum event (sift-down).
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/arg references
	e.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && e.less(r, l) {
			min = r
		}
		if !e.less(min, i) {
			break
		}
		e.heap[i], e.heap[min] = e.heap[min], e.heap[i]
		i = min
	}
	return top
}

// Step executes the next event, returning false when the queue is empty
// or the engine is stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.Processed++
	ev.run()
	return true
}

// Run executes events until the queue drains, Stop is called, or the
// clock passes until (until <= 0 means no horizon). It returns the final
// simulated time.
//
// Events are applied in per-tick batches: every event sharing the head
// timestamp is drained into a reused buffer and executed in schedule
// order in one pass, so simultaneous arrivals/departures/timers share a
// single heap drain. Events scheduled during a batch at the same
// timestamp carry higher sequence numbers and run in the next batch —
// exactly the (time, sequence) order of one-at-a-time stepping.
func (e *Engine) Run(until Time) Time {
	for !e.stopped && len(e.heap) > 0 {
		next := e.heap[0].at
		if until > 0 && next > until {
			e.now = until
			break
		}
		// Drain the tick's batch; pop order is ascending (at, seq).
		e.batch = e.batch[:0]
		for len(e.heap) > 0 && e.heap[0].at == next {
			e.batch = append(e.batch, e.pop())
		}
		e.now = next
		e.nbatch = len(e.batch)
		for i := range e.batch {
			if e.stopped {
				// Reinsert the unexecuted tail so Stop leaves the queue
				// exactly as one-at-a-time stepping would.
				for j := i; j < len(e.batch); j++ {
					e.push(e.batch[j])
				}
				break
			}
			e.Processed++
			e.nbatch--
			e.batch[i].run()
			e.batch[i] = event{} // release fn/arg references
		}
		e.nbatch = 0
	}
	return e.now
}

// Pending returns the number of queued events, including any events of
// the current tick's batch that have not yet executed.
func (e *Engine) Pending() int { return len(e.heap) + e.nbatch }
