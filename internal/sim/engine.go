// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, and a seeded random source. All experiment tables
// in this repository are produced on this engine so that every number is
// reproducible from a seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine drives a single-threaded simulation. It is intentionally not
// safe for concurrent use: determinism comes from the single event loop.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool

	// Processed counts executed events, for overhead reporting.
	Processed uint64
}

// New builds an engine seeded deterministically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// is always a logic error in the caller.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d seconds from now; negative delays clamp to zero.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop makes Run return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next event, returning false when the queue is empty
// or the engine is stopped.
func (e *Engine) Step() bool {
	if e.stopped || e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.Processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains, Stop is called, or the
// clock passes until (until <= 0 means no horizon). It returns the final
// simulated time.
func (e *Engine) Run(until Time) Time {
	for !e.stopped && e.queue.Len() > 0 {
		next := e.queue[0].at
		if until > 0 && next > until {
			e.now = until
			break
		}
		e.Step()
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
