package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/workload"
)

// traceWith assembles a trace over explicit node capacities. GridSteps
// is kept small so the exhaustive reference enumerator below stays
// tractable on multi-task sessions.
func traceWith(horizon, window float64, caps []resource.Vector, sessions []TraceSession) *Trace {
	tr := &Trace{GridSteps: 2, Horizon: horizon, Window: window, Sessions: sessions}
	for i, c := range caps {
		tr.Nodes = append(tr.Nodes, NodeView{ID: radio.NodeID(i), Res: resource.NewSet(c)})
	}
	return tr
}

// exhaustiveBest is the independent reference for Solve: enumerate every
// accept subset and every per-task (node, stop) placement with no
// pruning, check feasibility at every accepted arrival instant from
// scratch, and return the best total utility. Exponential — test-sized
// traces only.
func exhaustiveBest(t *testing.T, tr *Trace) float64 {
	t.Helper()
	sess := compileTrace(tr)
	caps := make([]resource.Vector, len(tr.Nodes))
	for i, n := range tr.Nodes {
		caps[i] = n.Res.Available()
	}
	accepted := make([]bool, len(sess))
	choice := make([][][2]int, len(sess)) // [session][task] = (node, stop)
	for i := range sess {
		choice[i] = make([][2]int, len(sess[i].tasks))
	}
	feasible := func() bool {
		for i := range sess {
			if !accepted[i] {
				continue
			}
			at := tr.Sessions[i].Arrive
			use := make([]resource.Vector, len(caps))
			for j := range sess {
				if !accepted[j] {
					continue
				}
				sj := tr.Sessions[j]
				if sj.Arrive > at || sj.Arrive+sj.Hold <= at {
					continue
				}
				for ti := range sess[j].tasks {
					ch := choice[j][ti]
					use[ch[0]] = use[ch[0]].Add(sess[j].tasks[ti].stops[ch[1]].demand)
				}
			}
			for ni := range caps {
				for k := range caps[ni] {
					if use[ni][k] > caps[ni][k] {
						return false
					}
				}
			}
		}
		return true
	}
	var best float64
	var rec func(i int, util float64)
	var placeAll func(i, ti int, util float64)
	placeAll = func(i, ti int, util float64) {
		if ti == len(sess[i].tasks) {
			rec(i+1, util)
			return
		}
		for ni := range caps {
			for si := range sess[i].tasks[ti].stops {
				choice[i][ti] = [2]int{ni, si}
				placeAll(i, ti+1, util+sess[i].tasks[ti].stops[si].util)
			}
		}
	}
	rec = func(i int, util float64) {
		if i == len(sess) {
			if feasible() && util > best {
				best = util
			}
			return
		}
		accepted[i] = false
		rec(i+1, util)
		if sess[i].servable {
			accepted[i] = true
			placeAll(i, 0, util)
			accepted[i] = false
		}
	}
	rec(0, 0)
	return best
}

// utilTol compares utilities with the documented float tolerance: the
// search and the reference sum stop utilities in different orders, so
// bitwise equality is not the contract (see cvSearch.search).
func utilTol(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// TestClairvoyantAmpleCapacityAdmitsAll: with one node far larger than
// everything the trace could ever hold at once, the hindsight optimum
// is to admit every session at its best stop — Solve's utility is the
// sum of session maxima, every session is accepted, and the knapsack
// Bound collapses to the same total (no budget binds).
func TestClairvoyantAmpleCapacityAdmitsAll(t *testing.T) {
	big := workload.AccessPoint.Capacity.Scale(100)
	tr := traceWith(100, 0, []resource.Vector{big}, []TraceSession{
		{Arrive: 0, Hold: 50, Service: workload.StreamService("a", 1, 1.0)},
		{Arrive: 10, Hold: 50, Service: workload.StreamService("b", 2, 1.0)},
		{Arrive: 20, Hold: 50, Service: workload.StreamService("c", 1, 0.5)},
	})
	sched, err := Clairvoyant{}.Solve(tr)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, cs := range compileTrace(tr) {
		want += cs.maxU
	}
	if want <= 0 {
		t.Fatal("degenerate trace: no utility available")
	}
	for i, acc := range sched.Accepted {
		if !acc {
			t.Errorf("session %d rejected despite ample capacity", i)
		}
	}
	if !utilTol(sched.Utility, want) {
		t.Errorf("Solve utility %g, want sum of maxima %g", sched.Utility, want)
	}
	bound, err := Clairvoyant{}.Bound(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !utilTol(bound, want) {
		t.Errorf("Bound %g, want unconstrained total %g", bound, want)
	}
}

// TestClairvoyantSolveMatchesExhaustive differentially tests the
// branch-and-bound against the pruning-free enumerator over randomized
// hand-sized traces: 2-3 sessions, 1-2 tasks, 1-2 nodes, overlapping
// holds, capacities tight enough that rejection and degradation both
// happen.
func TestClairvoyantSolveMatchesExhaustive(t *testing.T) {
	capsPool := []resource.Vector{
		workload.Phone.Capacity, workload.Laptop.Capacity, workload.AccessPoint.Capacity,
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var caps []resource.Vector
		for n := 1 + rng.Intn(2); n > 0; n-- {
			caps = append(caps, capsPool[rng.Intn(len(capsPool))])
		}
		nSess := 2 + rng.Intn(2)
		var sessions []TraceSession
		for i := 0; i < nSess; i++ {
			tasks := 1
			if nSess == 2 && rng.Intn(2) == 1 {
				tasks = 2 // keep the enumerator's cross-product tractable
			}
			scale := []float64{0.5, 1, 2}[rng.Intn(3)]
			sessions = append(sessions, TraceSession{
				Arrive:  float64(i * 10),
				Hold:    15 + 30*rng.Float64(),
				Service: workload.StreamService("s", tasks, scale),
			})
		}
		tr := traceWith(100, 0, caps, sessions)
		sched, err := Clairvoyant{}.Solve(tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := exhaustiveBest(t, tr)
		if !utilTol(sched.Utility, want) {
			t.Fatalf("seed %d: Solve utility %g, exhaustive best %g", seed, sched.Utility, want)
		}
	}
}

// TestClairvoyantSolveWithinBound: the polynomial relaxation really is
// a relaxation — the exact optimum never exceeds it, across randomized
// traces with nonzero windows.
func TestClairvoyantSolveWithinBound(t *testing.T) {
	capsPool := []resource.Vector{
		workload.Phone.Capacity, workload.Laptop.Capacity, workload.AccessPoint.Capacity,
	}
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var caps []resource.Vector
		for n := 1 + rng.Intn(2); n > 0; n-- {
			caps = append(caps, capsPool[rng.Intn(len(capsPool))])
		}
		var sessions []TraceSession
		for i, n := 0, 2+rng.Intn(2); i < n; i++ {
			sessions = append(sessions, TraceSession{
				Arrive:  30 * rng.Float64(),
				Hold:    10 + 40*rng.Float64(),
				Service: workload.StreamService("s", 1+rng.Intn(2), []float64{0.5, 1, 2}[rng.Intn(3)]),
			})
		}
		tr := traceWith(120, 10*rng.Float64(), caps, sessions)
		sched, err := Clairvoyant{MaxNodes: 20_000_000}.Solve(tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bound, err := Clairvoyant{}.Bound(tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sched.Utility > bound*(1+1e-9)+1e-9 {
			t.Fatalf("seed %d: Solve %g beats Bound %g", seed, sched.Utility, bound)
		}
	}
}

// TestClairvoyantSolveDeterministic: same trace, same schedule — the
// accept-first, strictly-improving search has no hidden iteration-order
// dependence.
func TestClairvoyantSolveDeterministic(t *testing.T) {
	mk := func() *Trace {
		return traceWith(100, 0,
			[]resource.Vector{workload.Laptop.Capacity, workload.Phone.Capacity},
			[]TraceSession{
				{Arrive: 0, Hold: 40, Service: workload.StreamService("a", 2, 1.0)},
				{Arrive: 5, Hold: 40, Service: workload.StreamService("b", 2, 1.0)},
				{Arrive: 10, Hold: 40, Service: workload.StreamService("c", 1, 2.0)},
			})
	}
	first, err := Clairvoyant{}.Solve(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Clairvoyant{}.Solve(mk())
		if err != nil {
			t.Fatal(err)
		}
		if again.Utility != first.Utility || again.Explored != first.Explored {
			t.Fatalf("run %d differs: (%g, %d) vs (%g, %d)",
				i, again.Utility, again.Explored, first.Utility, first.Explored)
		}
		for j := range first.Accepted {
			if first.Accepted[j] != again.Accepted[j] {
				t.Fatalf("run %d: acceptance of session %d flipped", i, j)
			}
		}
	}
}

// TestClairvoyantBudgetAndValidation: the node budget errors out rather
// than silently truncating the search, and Bound rejects unusable
// horizons/windows.
func TestClairvoyantBudgetAndValidation(t *testing.T) {
	tr := traceWith(100, 0,
		[]resource.Vector{workload.AccessPoint.Capacity, workload.Laptop.Capacity},
		[]TraceSession{
			{Arrive: 0, Hold: 40, Service: workload.StreamService("a", 2, 1.0)},
			{Arrive: 5, Hold: 40, Service: workload.StreamService("b", 2, 1.0)},
		})
	if _, err := (Clairvoyant{MaxNodes: 3}).Solve(tr); err == nil {
		t.Error("MaxNodes=3 search completed; want budget error")
	}
	if _, err := (Clairvoyant{}).Bound(&Trace{Horizon: 0}); err == nil {
		t.Error("Bound accepted a zero horizon")
	}
	if _, err := (Clairvoyant{}).Bound(&Trace{Horizon: 10, Window: -1}); err == nil {
		t.Error("Bound accepted a negative window")
	}
}
