package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/workload"
)

// problemWith builds an allocation problem over explicit capacities;
// node 0 is the organizer.
func problemWith(tasks int, scale float64, caps ...resource.Vector) *Problem {
	svc := workload.StreamService("b", tasks, scale)
	p := &Problem{Service: svc, Organizer: 0, GridSteps: qos.DefaultGridSteps}
	for i, c := range caps {
		p.Nodes = append(p.Nodes, NodeView{
			ID: radio.NodeID(i), Res: resource.NewSet(c), CommCost: float64(i) * 0.1,
		})
	}
	return p
}

func phoneCap() resource.Vector  { return workload.Phone.Capacity }
func laptopCap() resource.Vector { return workload.Laptop.Capacity }
func apCap() resource.Vector     { return workload.AccessPoint.Capacity }

func TestLocalOnlyServesOnOrganizer(t *testing.T) {
	p := problemWith(1, 0.2, laptopCap(), apCap())
	a, err := LocalOnly{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Complete() || a.Assigned[0].Node != 0 {
		t.Fatalf("local-only must serve on node 0: %+v", a)
	}
}

func TestLocalOnlyFailsWhenOrganizerWeak(t *testing.T) {
	p := problemWith(4, 2.0, phoneCap(), apCap())
	a, err := LocalOnly{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Complete() {
		t.Error("a phone must not serve 4 heavy video tasks")
	}
	if len(a.Unserved) == 0 {
		t.Error("unserved must be reported")
	}
	// Organizer absent from the node list is an error.
	p2 := problemWith(1, 1, phoneCap())
	p2.Organizer = 42
	if _, err := (LocalOnly{}).Allocate(p2); err == nil {
		t.Error("missing organizer accepted")
	}
}

func TestGreedyFirstFit(t *testing.T) {
	// Greedy takes nodes in ID order: phone (0) can only serve a
	// degraded level, yet greedy still parks the task there.
	p := problemWith(1, 0.5, phoneCap(), apCap())
	a, err := Greedy{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Complete() {
		t.Fatalf("greedy failed: %+v", a)
	}
	if a.Assigned[0].Node != 0 {
		t.Errorf("greedy must first-fit node 0, got %d", a.Assigned[0].Node)
	}
	if a.Assigned[0].Distance == 0 {
		t.Error("phone at 0.5x cannot serve the preferred level; expected degradation")
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	mk := func(seed int64) *Allocation {
		p := problemWith(3, 0.5, phoneCap(), laptopCap(), apCap(), laptopCap())
		a, err := Random{Rng: rand.New(rand.NewSource(seed))}.Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a2 := mk(7), mk(7)
	if len(a1.Assigned) != len(a2.Assigned) {
		t.Fatal("same seed, different counts")
	}
	for i := range a1.Assigned {
		if a1.Assigned[i].Node != a2.Assigned[i].Node {
			t.Fatal("same seed, different placement")
		}
	}
}

func TestOptimalBeatsOrMatchesGreedy(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p1 := problemWith(2, 1.0, phoneCap(), laptopCap(), laptopCap())
		p2 := problemWith(2, 1.0, phoneCap(), laptopCap(), laptopCap())
		g, err := Greedy{}.Allocate(p1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Optimal{}.Allocate(p2)
		if err != nil {
			t.Fatal(err)
		}
		if len(o.Assigned) < len(g.Assigned) {
			t.Fatalf("optimal served fewer tasks than greedy (%d < %d)", len(o.Assigned), len(g.Assigned))
		}
		if len(o.Assigned) == len(g.Assigned) && o.MeanDistance() > g.MeanDistance()+1e-9 {
			t.Errorf("optimal distance %v worse than greedy %v", o.MeanDistance(), g.MeanDistance())
		}
	}
}

func TestOptimalBoundsSearchSpace(t *testing.T) {
	p := problemWith(8, 1, phoneCap(), phoneCap(), phoneCap(), phoneCap(), phoneCap(), phoneCap())
	if _, err := (Optimal{MaxNodes: 5}).Allocate(p); err == nil {
		t.Error("branch-and-bound effort bound not enforced")
	}
	if _, err := (OptimalExhaustive{MaxCombinations: 100}).Allocate(p); err == nil {
		t.Error("enumerator search-space bound not enforced")
	}
}

// TestOptimalMatchesExhaustive is the argmin oracle: on every instance
// the enumerator can afford, branch-and-bound must return the identical
// allocation — same task->node map, bitwise-same distances, same
// unserved set — because it explores children in the enumerator's order
// and only prunes provably-not-strictly-better subtrees.
func TestOptimalMatchesExhaustive(t *testing.T) {
	capsPool := []resource.Vector{phoneCap(), laptopCap(), apCap()}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var caps []resource.Vector
		for n := 2 + rng.Intn(3); n > 0; n-- {
			caps = append(caps, capsPool[rng.Intn(len(capsPool))])
		}
		nTasks := 1 + rng.Intn(3)
		scale := []float64{0.5, 1, 2, 4}[rng.Intn(4)]
		pb := problemWith(nTasks, scale, caps...)
		pe := problemWith(nTasks, scale, caps...)
		got, err := Optimal{}.Allocate(pb)
		if err != nil {
			t.Fatalf("seed %d: bnb: %v", seed, err)
		}
		want, err := OptimalExhaustive{}.Allocate(pe)
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		if !got.Equal(want) {
			t.Fatalf("seed %d: allocations differ:\nbnb:  %+v\nenum: %+v", seed, got, want)
		}
	}
}

// TestOptimalHandlesEnumeratorIntractable: branch-and-bound solves an
// instance whose cross-product the enumerator refuses to even start.
func TestOptimalHandlesEnumeratorIntractable(t *testing.T) {
	var caps []resource.Vector
	for i := 0; i < 15; i++ {
		caps = append(caps, phoneCap(), laptopCap())
	}
	p := problemWith(4, 1.0, caps...) // 31^4 ≈ 9.2e5 > 1e4
	if _, err := (OptimalExhaustive{MaxCombinations: 10_000}).Allocate(p); err == nil {
		t.Fatal("enumerator accepted an intractable search space")
	}
	a, explored, err := Optimal{}.AllocateCounted(problemWith(4, 1.0, caps...))
	if err != nil {
		t.Fatalf("bnb failed on the same instance: %v", err)
	}
	if !a.Complete() {
		t.Errorf("30 strong nodes must serve 4 tasks: %+v", a)
	}
	if explored <= 0 || explored > 10_000 {
		t.Errorf("explored %d search edges; pruning should keep this far under the 9.2e5 cross-product", explored)
	}
}

func TestAllocationAggregates(t *testing.T) {
	a := &Allocation{
		Assigned: []TaskAlloc{
			{TaskID: "a", Node: 1, Distance: 0.2},
			{TaskID: "b", Node: 1, Distance: 0.4},
			{TaskID: "c", Node: 2, Distance: 0.0},
		},
		Unserved: []string{"d"},
	}
	if a.Complete() {
		t.Error("Complete with unserved")
	}
	if got := a.MeanDistance(); got < 0.2-1e-12 || got > 0.2+1e-12 {
		t.Errorf("MeanDistance = %v", got)
	}
	if a.Members() != 2 {
		t.Errorf("Members = %d", a.Members())
	}
	empty := &Allocation{}
	if empty.MeanDistance() != 0 || empty.Members() != 0 || !empty.Complete() {
		t.Error("empty allocation aggregates")
	}
}

func TestSequentialReservationsSeeEachOther(t *testing.T) {
	// One laptop can hold ~4 preferred tasks at 1.0x; ask greedy for 8
	// tasks on a single laptop: some must degrade or go unserved, never
	// over-commit.
	p := problemWith(8, 1.0, laptopCap())
	a, err := Greedy{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Nodes[0].Res
	if !res.Available().Nonnegative() {
		t.Fatalf("over-committed node: %v", res.Available())
	}
	if len(a.Assigned) == 8 {
		degraded := false
		for _, x := range a.Assigned {
			if x.Distance > 0 {
				degraded = true
			}
		}
		if !degraded {
			t.Error("8 preferred-level tasks cannot all fit one laptop")
		}
	}
}

func TestSnapshotProblem(t *testing.T) {
	svc := workload.StreamService("s", 1, 1)
	nodes := map[radio.NodeID]*resource.Set{
		2: resource.NewSet(laptopCap()),
		0: resource.NewSet(phoneCap()),
	}
	p := SnapshotProblem(svc, 0, nodes, func(id radio.NodeID) float64 { return float64(id) }, 4)
	if len(p.Nodes) != 2 || p.Nodes[0].ID != 0 || p.Nodes[1].ID != 2 {
		t.Fatalf("nodes = %+v, want sorted", p.Nodes)
	}
	if p.Nodes[1].CommCost != 2 {
		t.Error("comm cost not threaded")
	}
	// The snapshot must be isolated: reserving in it leaves the source
	// untouched.
	if err := p.Nodes[0].Res.Reserve("x", resource.V(resource.KV{K: resource.CPU, A: 10})); err != nil {
		t.Fatal(err)
	}
	if nodes[0].Available()[resource.CPU] != phoneCap()[resource.CPU] {
		t.Error("snapshot aliases live resources")
	}
	// Names are stable identifiers used in tables.
	for _, al := range []Allocator{LocalOnly{}, Random{}, Greedy{}, Optimal{}, OptimalExhaustive{}} {
		if al.Name() == "" {
			t.Error("empty allocator name")
		}
	}
}

var _ = []task.DemandModel{} // keep task import for doc reference
