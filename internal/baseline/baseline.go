// Package baseline implements the comparison allocators the experiments
// measure the coalition protocol against. The paper publishes no
// baselines; these are the standard strawmen its prose argues against:
//
//   - LocalOnly: no cooperation — the requesting node serves everything
//     itself (the "single node cannot execute a specific service" case).
//   - Random: cooperation without evaluation — any admissible proposal
//     wins, ignoring the Section 6 distance.
//   - Greedy: first-fit — the first node able to serve a task gets it,
//     ignoring quality comparison across proposals.
//   - Optimal: exhaustive assignment minimizing total distance (with the
//     same resource feasibility), tractable only for small populations;
//     used to measure the protocol's optimality gap.
//
// Baselines run offline against a snapshot of node resources: they answer
// "who would serve what, at which level" without exchanging messages.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
)

// NodeView is the allocator's snapshot of one candidate node.
type NodeView struct {
	ID  radio.NodeID
	Res *resource.Set
	// CommCost estimates moving the task's data to this node (seconds);
	// the organizer node has cost 0.
	CommCost float64
}

// Problem is one allocation instance.
type Problem struct {
	Service *task.Service
	// Organizer indexes into Nodes: the requesting node.
	Organizer radio.NodeID
	Nodes     []NodeView
	// GridSteps and Penalty mirror the provider configuration.
	GridSteps int
	Penalty   qos.PenaltyFunc
}

// TaskAlloc is one task's outcome.
type TaskAlloc struct {
	TaskID   string
	Node     radio.NodeID
	Level    qos.Level
	Distance float64
	Reward   float64
}

// Allocation is an allocator's answer.
type Allocation struct {
	Assigned []TaskAlloc
	Unserved []string
}

// Complete reports whether every task was served.
func (a *Allocation) Complete() bool { return len(a.Unserved) == 0 }

// MeanDistance averages the evaluation value over served tasks.
func (a *Allocation) MeanDistance() float64 {
	if len(a.Assigned) == 0 {
		return 0
	}
	var t float64
	for _, x := range a.Assigned {
		t += x.Distance
	}
	return t / float64(len(a.Assigned))
}

// Members counts distinct serving nodes.
func (a *Allocation) Members() int {
	seen := make(map[radio.NodeID]bool)
	for _, x := range a.Assigned {
		seen[x.Node] = true
	}
	return len(seen)
}

// Allocator is the common baseline interface.
type Allocator interface {
	Name() string
	Allocate(p *Problem) (*Allocation, error)
}

// evaluatorFor builds the Section 6 evaluator for a task.
func evaluatorFor(p *Problem, t *task.Task) (*qos.Evaluator, error) {
	return qos.NewEvaluator(p.Service.Spec, &t.Request)
}

// formulateOn runs the provider-side heuristic for a task against one
// node's snapshot, reserving on success so that subsequent tasks see the
// reduced availability (mirrors award-time reservation).
func formulateOn(p *Problem, n NodeView, t *task.Task, reserve bool) (*core.Formulation, error) {
	f, err := core.Formulate(p.Service.Spec, &t.Request, t.Demand, n.Res.CanReserve, p.GridSteps, p.Penalty)
	if err != nil {
		return nil, err
	}
	if reserve {
		id := resource.ReservationID(p.Service.ID + "/" + t.ID)
		if rerr := n.Res.Reserve(id, f.Demand); rerr != nil {
			return nil, rerr
		}
	}
	return f, nil
}

// LocalOnly serves every task on the organizer node.
type LocalOnly struct{}

// Name implements Allocator.
func (LocalOnly) Name() string { return "local-only" }

// Allocate implements Allocator.
func (LocalOnly) Allocate(p *Problem) (*Allocation, error) {
	var organizer *NodeView
	for i := range p.Nodes {
		if p.Nodes[i].ID == p.Organizer {
			organizer = &p.Nodes[i]
		}
	}
	if organizer == nil {
		return nil, fmt.Errorf("baseline: organizer %d not among nodes", p.Organizer)
	}
	out := &Allocation{}
	for _, t := range p.Service.Tasks {
		eval, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		f, err := formulateOn(p, *organizer, t, true)
		if err != nil {
			out.Unserved = append(out.Unserved, t.ID)
			continue
		}
		d, err := eval.Distance(f.Level)
		if err != nil {
			return nil, err
		}
		out.Assigned = append(out.Assigned, TaskAlloc{
			TaskID: t.ID, Node: organizer.ID, Level: f.Level, Distance: d, Reward: f.Reward,
		})
	}
	return out, nil
}

// Random picks a uniformly random node that can serve each task.
type Random struct {
	Rng *rand.Rand
}

// Name implements Allocator.
func (Random) Name() string { return "random" }

// Allocate implements Allocator.
func (r Random) Allocate(p *Problem) (*Allocation, error) {
	rng := r.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	out := &Allocation{}
	for _, t := range p.Service.Tasks {
		eval, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		perm := rng.Perm(len(p.Nodes))
		served := false
		for _, idx := range perm {
			n := p.Nodes[idx]
			f, ferr := formulateOn(p, n, t, true)
			if ferr != nil {
				continue
			}
			d, derr := eval.Distance(f.Level)
			if derr != nil {
				return nil, derr
			}
			out.Assigned = append(out.Assigned, TaskAlloc{
				TaskID: t.ID, Node: n.ID, Level: f.Level, Distance: d, Reward: f.Reward,
			})
			served = true
			break
		}
		if !served {
			out.Unserved = append(out.Unserved, t.ID)
		}
	}
	return out, nil
}

// Greedy assigns each task to the first node (by ID) that can serve it at
// any acceptable level — first-fit without quality comparison.
type Greedy struct{}

// Name implements Allocator.
func (Greedy) Name() string { return "greedy-first-fit" }

// Allocate implements Allocator.
func (Greedy) Allocate(p *Problem) (*Allocation, error) {
	nodes := append([]NodeView(nil), p.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	out := &Allocation{}
	for _, t := range p.Service.Tasks {
		eval, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		served := false
		for _, n := range nodes {
			f, ferr := formulateOn(p, n, t, true)
			if ferr != nil {
				continue
			}
			d, derr := eval.Distance(f.Level)
			if derr != nil {
				return nil, derr
			}
			out.Assigned = append(out.Assigned, TaskAlloc{
				TaskID: t.ID, Node: n.ID, Level: f.Level, Distance: d, Reward: f.Reward,
			})
			served = true
			break
		}
		if !served {
			out.Unserved = append(out.Unserved, t.ID)
		}
	}
	return out, nil
}

// Optimal enumerates all task->node assignments, serving each assigned
// task at the node's heuristically formulated level, and returns the
// feasible assignment minimizing (unserved count, total distance, member
// count). Exponential in tasks: len(Nodes)^len(Tasks) combinations, so it
// guards against misuse.
type Optimal struct {
	// MaxCombinations bounds the search (default 1e6).
	MaxCombinations int64
}

// Name implements Allocator.
func (Optimal) Name() string { return "optimal-exhaustive" }

// Allocate implements Allocator.
func (o Optimal) Allocate(p *Problem) (*Allocation, error) {
	maxC := o.MaxCombinations
	if maxC == 0 {
		maxC = 1_000_000
	}
	nT := len(p.Service.Tasks)
	nN := len(p.Nodes)
	combos := int64(1)
	for i := 0; i < nT; i++ {
		combos *= int64(nN + 1) // +1 = leave task unserved
		if combos > maxC {
			return nil, fmt.Errorf("baseline: optimal search space exceeds %d", maxC)
		}
	}
	evals := make([]*qos.Evaluator, nT)
	for i, t := range p.Service.Tasks {
		e, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		evals[i] = e
	}

	assign := make([]int, nT) // node index per task; nN == unserved
	var best []int
	bestKey := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}

	var recurse func(ti int) error
	recurse = func(ti int) error {
		if ti == nT {
			key, ok, err := o.scoreAssign(p, evals, assign)
			if err != nil {
				return err
			}
			if ok && lessKey(key, bestKey) {
				bestKey = key
				best = append([]int(nil), assign...)
			}
			return nil
		}
		for choice := 0; choice <= nN; choice++ {
			assign[ti] = choice
			if err := recurse(ti + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, err
	}
	if best == nil {
		return &Allocation{Unserved: taskIDs(p)}, nil
	}
	return o.materialize(p, evals, best)
}

func lessKey(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// scoreAssign tests feasibility of one complete assignment by actually
// reserving on scratch copies, returning (unserved, totalDistance,
// members).
func (o Optimal) scoreAssign(p *Problem, evals []*qos.Evaluator, assign []int) ([3]float64, bool, error) {
	type res struct{ d float64 }
	scratch := make([]*resource.Set, len(p.Nodes))
	for i, n := range p.Nodes {
		scratch[i] = resource.NewSet(n.Res.Available())
	}
	unserved := 0
	var total float64
	members := make(map[int]bool)
	for ti, t := range p.Service.Tasks {
		choice := assign[ti]
		if choice == len(p.Nodes) {
			unserved++
			continue
		}
		f, err := core.Formulate(p.Service.Spec, &t.Request, t.Demand, scratch[choice].CanReserve, p.GridSteps, p.Penalty)
		if err != nil {
			return [3]float64{}, false, nil // infeasible branch
		}
		id := resource.ReservationID(fmt.Sprintf("opt/%d/%s", ti, t.ID))
		if err := scratch[choice].Reserve(id, f.Demand); err != nil {
			return [3]float64{}, false, nil
		}
		d, err := evals[ti].Distance(f.Level)
		if err != nil {
			return [3]float64{}, false, err
		}
		total += d
		members[choice] = true
	}
	_ = res{}
	return [3]float64{float64(unserved), total, float64(len(members))}, true, nil
}

// materialize re-runs the winning assignment against the real node sets.
func (o Optimal) materialize(p *Problem, evals []*qos.Evaluator, assign []int) (*Allocation, error) {
	out := &Allocation{}
	for ti, t := range p.Service.Tasks {
		choice := assign[ti]
		if choice == len(p.Nodes) {
			out.Unserved = append(out.Unserved, t.ID)
			continue
		}
		n := p.Nodes[choice]
		f, err := formulateOn(p, n, t, true)
		if err != nil {
			out.Unserved = append(out.Unserved, t.ID)
			continue
		}
		d, err := evals[ti].Distance(f.Level)
		if err != nil {
			return nil, err
		}
		out.Assigned = append(out.Assigned, TaskAlloc{
			TaskID: t.ID, Node: n.ID, Level: f.Level, Distance: d, Reward: f.Reward,
		})
	}
	return out, nil
}

func taskIDs(p *Problem) []string {
	out := make([]string, len(p.Service.Tasks))
	for i, t := range p.Service.Tasks {
		out[i] = t.ID
	}
	return out
}

// SnapshotProblem builds a Problem from a live cluster: each node's
// current availability becomes an independent scratch resource set, so
// allocations never disturb the cluster.
func SnapshotProblem(svc *task.Service, organizer radio.NodeID, nodes map[radio.NodeID]*resource.Set, comm func(radio.NodeID) float64, gridSteps int) *Problem {
	p := &Problem{Service: svc, Organizer: organizer, GridSteps: gridSteps}
	ids := make([]radio.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cost := 0.0
		if comm != nil {
			cost = comm(id)
		}
		p.Nodes = append(p.Nodes, NodeView{
			ID:       id,
			Res:      resource.NewSet(nodes[id].Available()),
			CommCost: cost,
		})
	}
	return p
}
