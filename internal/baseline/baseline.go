// Package baseline implements the comparison allocators the experiments
// measure the coalition protocol against. The paper publishes no
// baselines; these are the standard strawmen its prose argues against:
//
//   - LocalOnly: no cooperation — the requesting node serves everything
//     itself (the "single node cannot execute a specific service" case).
//   - Random: cooperation without evaluation — any admissible proposal
//     wins, ignoring the Section 6 distance.
//   - Greedy: first-fit — the first node able to serve a task gets it,
//     ignoring quality comparison across proposals.
//   - Optimal: the argmin assignment minimizing (unserved, total
//     distance, members) under the same resource feasibility, found by
//     depth-first branch-and-bound with admissible per-task distance
//     bounds; used to measure the protocol's optimality gap.
//   - OptimalExhaustive: the plain cross-product enumerator Optimal
//     replaced — kept as the oracle the branch-and-bound is asserted
//     against on small instances, and as the tractability strawman of
//     experiment E16.
//
// Baselines run offline against a snapshot of node resources: they answer
// "who would serve what, at which level" without exchanging messages.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
)

// NodeView is the allocator's snapshot of one candidate node.
type NodeView struct {
	ID  radio.NodeID
	Res *resource.Set
	// CommCost estimates moving the task's data to this node (seconds);
	// the organizer node has cost 0.
	CommCost float64
}

// Problem is one allocation instance.
type Problem struct {
	Service *task.Service
	// Organizer indexes into Nodes: the requesting node.
	Organizer radio.NodeID
	Nodes     []NodeView
	// GridSteps and Penalty mirror the provider configuration.
	GridSteps int
	Penalty   qos.PenaltyFunc
}

// TaskAlloc is one task's outcome.
type TaskAlloc struct {
	TaskID   string
	Node     radio.NodeID
	Level    qos.Level
	Distance float64
	Reward   float64
}

// Allocation is an allocator's answer.
type Allocation struct {
	Assigned []TaskAlloc
	Unserved []string
}

// Complete reports whether every task was served.
func (a *Allocation) Complete() bool { return len(a.Unserved) == 0 }

// Equal reports whether two allocations are identical: same assignment
// order, same task->node placements with bit-equal distances and
// rewards, same unserved list. It is the single definition of
// "identical allocation" shared by the branch-and-bound oracle test
// and experiment E16's enum-agrees column.
func (a *Allocation) Equal(b *Allocation) bool {
	if len(a.Assigned) != len(b.Assigned) || len(a.Unserved) != len(b.Unserved) {
		return false
	}
	for i := range a.Assigned {
		x, y := a.Assigned[i], b.Assigned[i]
		if x.TaskID != y.TaskID || x.Node != y.Node || x.Distance != y.Distance ||
			x.Reward != y.Reward || !x.Level.Equal(y.Level) {
			return false
		}
	}
	for i := range a.Unserved {
		if a.Unserved[i] != b.Unserved[i] {
			return false
		}
	}
	return true
}

// MeanDistance averages the evaluation value over served tasks.
func (a *Allocation) MeanDistance() float64 {
	if len(a.Assigned) == 0 {
		return 0
	}
	var t float64
	for _, x := range a.Assigned {
		t += x.Distance
	}
	return t / float64(len(a.Assigned))
}

// Members counts distinct serving nodes.
func (a *Allocation) Members() int {
	seen := make(map[radio.NodeID]bool)
	for _, x := range a.Assigned {
		seen[x.Node] = true
	}
	return len(seen)
}

// Allocator is the common baseline interface.
type Allocator interface {
	Name() string
	Allocate(p *Problem) (*Allocation, error)
}

// evaluatorFor builds the Section 6 evaluator for a task.
func evaluatorFor(p *Problem, t *task.Task) (*qos.Evaluator, error) {
	return qos.NewEvaluator(p.Service.Spec, &t.Request)
}

// formulateOn runs the provider-side heuristic for a task against one
// node's snapshot, reserving on success so that subsequent tasks see the
// reduced availability (mirrors award-time reservation).
func formulateOn(p *Problem, n NodeView, t *task.Task, reserve bool) (*core.Formulation, error) {
	f, err := core.Formulate(p.Service.Spec, &t.Request, t.Demand, n.Res.CanReserve, p.GridSteps, p.Penalty)
	if err != nil {
		return nil, err
	}
	if reserve {
		id := resource.ReservationID(p.Service.ID + "/" + t.ID)
		if rerr := n.Res.Reserve(id, f.Demand); rerr != nil {
			return nil, rerr
		}
	}
	return f, nil
}

// LocalOnly serves every task on the organizer node.
type LocalOnly struct{}

// Name implements Allocator.
func (LocalOnly) Name() string { return "local-only" }

// Allocate implements Allocator.
func (LocalOnly) Allocate(p *Problem) (*Allocation, error) {
	var organizer *NodeView
	for i := range p.Nodes {
		if p.Nodes[i].ID == p.Organizer {
			organizer = &p.Nodes[i]
		}
	}
	if organizer == nil {
		return nil, fmt.Errorf("baseline: organizer %d not among nodes", p.Organizer)
	}
	out := &Allocation{}
	for _, t := range p.Service.Tasks {
		eval, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		f, err := formulateOn(p, *organizer, t, true)
		if err != nil {
			out.Unserved = append(out.Unserved, t.ID)
			continue
		}
		d, err := eval.Distance(f.Level)
		if err != nil {
			return nil, err
		}
		out.Assigned = append(out.Assigned, TaskAlloc{
			TaskID: t.ID, Node: organizer.ID, Level: f.Level, Distance: d, Reward: f.Reward,
		})
	}
	return out, nil
}

// Random picks a uniformly random node that can serve each task.
type Random struct {
	Rng *rand.Rand
}

// Name implements Allocator.
func (Random) Name() string { return "random" }

// Allocate implements Allocator.
func (r Random) Allocate(p *Problem) (*Allocation, error) {
	rng := r.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	out := &Allocation{}
	for _, t := range p.Service.Tasks {
		eval, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		perm := rng.Perm(len(p.Nodes))
		served := false
		for _, idx := range perm {
			n := p.Nodes[idx]
			f, ferr := formulateOn(p, n, t, true)
			if ferr != nil {
				continue
			}
			d, derr := eval.Distance(f.Level)
			if derr != nil {
				return nil, derr
			}
			out.Assigned = append(out.Assigned, TaskAlloc{
				TaskID: t.ID, Node: n.ID, Level: f.Level, Distance: d, Reward: f.Reward,
			})
			served = true
			break
		}
		if !served {
			out.Unserved = append(out.Unserved, t.ID)
		}
	}
	return out, nil
}

// Greedy assigns each task to the first node (by ID) that can serve it at
// any acceptable level — first-fit without quality comparison.
type Greedy struct{}

// Name implements Allocator.
func (Greedy) Name() string { return "greedy-first-fit" }

// Allocate implements Allocator.
func (Greedy) Allocate(p *Problem) (*Allocation, error) {
	nodes := append([]NodeView(nil), p.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	out := &Allocation{}
	for _, t := range p.Service.Tasks {
		eval, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		served := false
		for _, n := range nodes {
			f, ferr := formulateOn(p, n, t, true)
			if ferr != nil {
				continue
			}
			d, derr := eval.Distance(f.Level)
			if derr != nil {
				return nil, derr
			}
			out.Assigned = append(out.Assigned, TaskAlloc{
				TaskID: t.ID, Node: n.ID, Level: f.Level, Distance: d, Reward: f.Reward,
			})
			served = true
			break
		}
		if !served {
			out.Unserved = append(out.Unserved, t.ID)
		}
	}
	return out, nil
}

// Optimal finds the feasible task->node assignment minimizing
// (unserved count, total distance, member count), serving each assigned
// task at the node's heuristically formulated level. Where the old
// cross-product enumerator (kept as OptimalExhaustive) re-formulated
// every task at every one of (len(Nodes)+1)^len(Tasks) leaves, Optimal
// runs a depth-first branch-and-bound: tasks are compiled once,
// formulations happen incrementally along the search tree with exact
// backtracking, and subtrees that provably cannot beat the incumbent
// are pruned using admissible per-task distance lower bounds (the
// minimum evaluation over the task's availability-independent
// degradation path).
//
// Children are explored in the enumerator's order and the incumbent
// only improves on a strictly smaller key, so the returned argmin is
// identical to OptimalExhaustive's (asserted by TestOptimalMatchesExhaustive);
// a best-first child order would be faster on some instances but could
// return a different tie, breaking that oracle.
type Optimal struct {
	// MaxNodes bounds the number of explored search-tree edges
	// (default 1e6) — the effort guard replacing the enumerator's
	// search-space precheck, since the whole point of pruning is that
	// the explored tree is vastly smaller than the cross-product.
	MaxNodes int64
}

// Name implements Allocator.
func (Optimal) Name() string { return "optimal-bnb" }

// bnbNode is the branch-and-bound's exact replica of one node's scratch
// resource state. It performs the same admission comparisons as
// resource.Bucket/Set (CanReserve: available < demand; Reserve:
// reserved+demand > capacity, per kind) and accumulates per-kind
// reservations in task order, so any search prefix sees bit-identical
// availability to the enumerator's fresh per-leaf scratch sets — but
// backtracking restores a saved copy of the reserved vector instead of
// subtracting, which a float ledger could not do exactly.
type bnbNode struct {
	cap      resource.Vector
	reserved resource.Vector
}

func (n *bnbNode) canReserve(d resource.Vector) bool {
	for i := range d {
		if d[i] > 0 && n.cap[i]-n.reserved[i] < d[i] {
			return false
		}
	}
	return true
}

// reserve admits d all-or-nothing, mirroring resource.Set.Reserve's
// checks; the caller restores the previous reserved vector to backtrack.
func (n *bnbNode) reserve(d resource.Vector) bool {
	if !d.Nonnegative() {
		return false
	}
	for i := range d {
		if d[i] > 0 && n.reserved[i]+d[i] > n.cap[i] {
			return false
		}
	}
	for i := range d {
		n.reserved[i] += d[i]
	}
	return true
}

// bnbSearch carries the depth-first state.
type bnbSearch struct {
	p      *Problem
	cps    []*core.CompiledProblem // nil = task cannot be compiled, never servable
	lbs    []float64               // admissible per-task distance lower bounds
	nodes  []bnbNode
	assign []int
	usage  []int // tasks currently placed per node

	unserved int
	dist     float64
	members  int

	best     []int
	bestKey  [3]float64
	explored int64
	maxNodes int64
}

// Allocate implements Allocator.
func (o Optimal) Allocate(p *Problem) (*Allocation, error) {
	a, _, err := o.AllocateCounted(p)
	return a, err
}

// AllocateCounted is Allocate plus the number of explored search-tree
// edges — experiment E16 reports it against the enumerator's
// cross-product size to show how much the bounds prune.
func (o Optimal) AllocateCounted(p *Problem) (*Allocation, int64, error) {
	nT := len(p.Service.Tasks)
	nN := len(p.Nodes)
	evals := make([]*qos.Evaluator, nT)
	for i, t := range p.Service.Tasks {
		e, err := evaluatorFor(p, t)
		if err != nil {
			return nil, 0, err
		}
		evals[i] = e
	}
	s := &bnbSearch{
		p:        p,
		cps:      make([]*core.CompiledProblem, nT),
		lbs:      make([]float64, nT),
		nodes:    make([]bnbNode, nN),
		assign:   make([]int, nT),
		usage:    make([]int, nN),
		bestKey:  [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)},
		maxNodes: o.MaxNodes,
	}
	if s.maxNodes == 0 {
		s.maxNodes = 1_000_000
	}
	for i, t := range p.Service.Tasks {
		// A task whose problem does not compile is exactly as servable
		// as one whose formulation fails on every node: not at all. The
		// enumerator treats both as infeasible branches, not errors.
		if cp, err := core.CompileProblem(p.Service.Spec, &t.Request, t.Demand, p.GridSteps, p.Penalty); err == nil {
			s.cps[i] = cp
		}
	}
	for i, n := range p.Nodes {
		s.nodes[i] = bnbNode{cap: n.Res.Available()}
	}
	for i := range s.lbs {
		s.lbs[i] = taskDistanceLB(s.cps[i])
	}
	if err := s.search(0); err != nil {
		return nil, 0, err
	}
	if s.best == nil {
		return &Allocation{Unserved: taskIDs(p)}, s.explored, nil
	}
	a, err := materialize(p, evals, s.best)
	return a, s.explored, err
}

// taskDistanceLB is the admissible per-task bound: the minimum Section 6
// evaluation over the dependency-consistent stops of the degradation
// path. Formulate returns some such stop regardless of the node's
// availability, so no branch can serve the task at a smaller distance.
// +Inf (no compiled problem, or no consistent stop) means the task can
// never be served — which prunes exactly the completions that would try.
func taskDistanceLB(cp *core.CompiledProblem) float64 {
	lb := math.Inf(1)
	if cp == nil {
		return lb
	}
	cp.WalkDegradationPath(func(a qos.Assignment) {
		if ok, _ := cp.C.DepsSatisfied(a); ok {
			if d := cp.C.Distance(a); d < lb {
				lb = d
			}
		}
	})
	return lb
}

// search explores task ti's choices in enumerator order, pruning
// subtrees whose lexicographic lower bound cannot strictly beat the
// incumbent. Every completion of the current prefix has key[0] >=
// unserved; among those with key[0] == unserved (all remaining tasks
// served) the distance is >= bound and the member count is >= members.
// Completions with more unserved tasks lose on key[0] whenever the
// prefix already ties the incumbent, so the three checks below never
// cut a strictly-better leaf.
//
// bound is computed as the left-fold of the per-task lower bounds in
// task order, starting from the prefix distance — the same summation
// shape a leaf uses for its actual distances. Float addition is
// monotone non-decreasing in each argument and lbs[j] <= d_j bitwise
// (the bound is the min over the stops Formulate can return), so by
// induction the folded bound never exceeds any completion's folded
// distance: admissible down to the last ulp, with no epsilon slack to
// blunt the exact-tie member prune that symmetric instances rely on.
func (s *bnbSearch) search(ti int) error {
	nT := len(s.p.Service.Tasks)
	if ti == nT {
		key := [3]float64{float64(s.unserved), s.dist, float64(s.members)}
		if lessKey(key, s.bestKey) {
			s.bestKey = key
			s.best = append(s.best[:0], s.assign...)
		}
		return nil
	}
	if float64(s.unserved) > s.bestKey[0] {
		return nil
	}
	if float64(s.unserved) == s.bestKey[0] {
		bound := s.dist
		for j := ti; j < nT; j++ {
			bound += s.lbs[j]
		}
		if bound > s.bestKey[1] {
			return nil
		}
		if bound == s.bestKey[1] && float64(s.members) >= s.bestKey[2] {
			return nil
		}
	}
	nN := len(s.p.Nodes)
	for choice := 0; choice <= nN; choice++ {
		s.explored++
		if s.explored > s.maxNodes {
			return fmt.Errorf("baseline: optimal search explored more than %d nodes", s.maxNodes)
		}
		s.assign[ti] = choice
		if choice == nN { // leave the task unserved
			s.unserved++
			if err := s.search(ti + 1); err != nil {
				return err
			}
			s.unserved--
			continue
		}
		cp := s.cps[ti]
		if cp == nil {
			continue
		}
		node := &s.nodes[choice]
		f, err := cp.Formulate(node.canReserve)
		if err != nil {
			continue // not servable here under the current prefix
		}
		saved := node.reserved
		if !node.reserve(f.Demand) {
			continue
		}
		prevDist := s.dist
		s.dist = prevDist + cp.C.Distance(f.Assignment)
		s.usage[choice]++
		if s.usage[choice] == 1 {
			s.members++
		}
		err = s.search(ti + 1)
		s.usage[choice]--
		if s.usage[choice] == 0 {
			s.members--
		}
		s.dist = prevDist
		node.reserved = saved
		if err != nil {
			return err
		}
	}
	return nil
}

// OptimalExhaustive is the cross-product enumerator Optimal replaced:
// it scores every complete task->node assignment by re-formulating all
// tasks against fresh scratch resources. Exponential in tasks —
// (len(Nodes)+1)^len(Tasks) leaves — so it refuses search spaces above
// MaxCombinations; it survives as the oracle for Optimal's argmin and
// as experiment E16's tractability strawman.
type OptimalExhaustive struct {
	// MaxCombinations bounds the search space (default 1e6).
	MaxCombinations int64
}

// Name implements Allocator.
func (OptimalExhaustive) Name() string { return "optimal-exhaustive" }

// Allocate implements Allocator.
func (o OptimalExhaustive) Allocate(p *Problem) (*Allocation, error) {
	maxC := o.MaxCombinations
	if maxC == 0 {
		maxC = 1_000_000
	}
	nT := len(p.Service.Tasks)
	nN := len(p.Nodes)
	combos := int64(1)
	for i := 0; i < nT; i++ {
		combos *= int64(nN + 1) // +1 = leave task unserved
		if combos > maxC {
			return nil, fmt.Errorf("baseline: optimal search space exceeds %d", maxC)
		}
	}
	evals := make([]*qos.Evaluator, nT)
	for i, t := range p.Service.Tasks {
		e, err := evaluatorFor(p, t)
		if err != nil {
			return nil, err
		}
		evals[i] = e
	}
	// Compile each task once; re-running BuildLadder + table compilation
	// at every one of the (nN+1)^nT leaves would make the enumerator an
	// unfairly slow strawman. A task that fails to compile is unservable
	// on every node, exactly like a task whose formulation always fails.
	cps := make([]*core.CompiledProblem, nT)
	for i, t := range p.Service.Tasks {
		if cp, err := core.CompileProblem(p.Service.Spec, &t.Request, t.Demand, p.GridSteps, p.Penalty); err == nil {
			cps[i] = cp
		}
	}

	assign := make([]int, nT) // node index per task; nN == unserved
	var best []int
	bestKey := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}

	var recurse func(ti int) error
	recurse = func(ti int) error {
		if ti == nT {
			key, ok, err := o.scoreAssign(p, evals, cps, assign)
			if err != nil {
				return err
			}
			if ok && lessKey(key, bestKey) {
				bestKey = key
				best = append([]int(nil), assign...)
			}
			return nil
		}
		for choice := 0; choice <= nN; choice++ {
			assign[ti] = choice
			if err := recurse(ti + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, err
	}
	if best == nil {
		return &Allocation{Unserved: taskIDs(p)}, nil
	}
	return materialize(p, evals, best)
}

func lessKey(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// scoreAssign tests feasibility of one complete assignment by actually
// reserving on scratch copies, returning (unserved, totalDistance,
// members).
func (o OptimalExhaustive) scoreAssign(p *Problem, evals []*qos.Evaluator, cps []*core.CompiledProblem, assign []int) ([3]float64, bool, error) {
	scratch := make([]*resource.Set, len(p.Nodes))
	for i, n := range p.Nodes {
		scratch[i] = resource.NewSet(n.Res.Available())
	}
	unserved := 0
	var total float64
	members := make(map[int]bool)
	for ti, t := range p.Service.Tasks {
		choice := assign[ti]
		if choice == len(p.Nodes) {
			unserved++
			continue
		}
		if cps[ti] == nil {
			return [3]float64{}, false, nil // task cannot be served anywhere
		}
		f, err := cps[ti].Formulate(scratch[choice].CanReserve)
		if err != nil {
			return [3]float64{}, false, nil // infeasible branch
		}
		id := resource.ReservationID(fmt.Sprintf("opt/%d/%s", ti, t.ID))
		if err := scratch[choice].Reserve(id, f.Demand); err != nil {
			return [3]float64{}, false, nil
		}
		d, err := evals[ti].Distance(f.Level)
		if err != nil {
			return [3]float64{}, false, err
		}
		total += d
		members[choice] = true
	}
	return [3]float64{float64(unserved), total, float64(len(members))}, true, nil
}

// materialize re-runs the winning assignment against the real node sets.
func materialize(p *Problem, evals []*qos.Evaluator, assign []int) (*Allocation, error) {
	out := &Allocation{}
	for ti, t := range p.Service.Tasks {
		choice := assign[ti]
		if choice == len(p.Nodes) {
			out.Unserved = append(out.Unserved, t.ID)
			continue
		}
		n := p.Nodes[choice]
		f, err := formulateOn(p, n, t, true)
		if err != nil {
			out.Unserved = append(out.Unserved, t.ID)
			continue
		}
		d, err := evals[ti].Distance(f.Level)
		if err != nil {
			return nil, err
		}
		out.Assigned = append(out.Assigned, TaskAlloc{
			TaskID: t.ID, Node: n.ID, Level: f.Level, Distance: d, Reward: f.Reward,
		})
	}
	return out, nil
}

func taskIDs(p *Problem) []string {
	out := make([]string, len(p.Service.Tasks))
	for i, t := range p.Service.Tasks {
		out[i] = t.ID
	}
	return out
}

// SnapshotProblem builds a Problem from a live cluster: each node's
// current availability becomes an independent scratch resource set, so
// allocations never disturb the cluster.
func SnapshotProblem(svc *task.Service, organizer radio.NodeID, nodes map[radio.NodeID]*resource.Set, comm func(radio.NodeID) float64, gridSteps int) *Problem {
	p := &Problem{Service: svc, Organizer: organizer, GridSteps: gridSteps}
	ids := make([]radio.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cost := 0.0
		if comm != nil {
			cost = comm(id)
		}
		p.Nodes = append(p.Nodes, NodeView{
			ID:       id,
			Res:      resource.NewSet(nodes[id].Available()),
			CommCost: cost,
		})
	}
	return p
}
