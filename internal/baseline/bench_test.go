package baseline

import (
	"testing"

	"repro/internal/resource"
)

// benchProblem builds a mixed-strength allocation instance. Allocate
// reserves on the problem's node snapshots, so benchmarks rebuild the
// problem every iteration (construction is cheap next to the search).
func benchProblem(tasks, nodes int, scale float64) *Problem {
	caps := make([]resource.Vector, nodes)
	for i := range caps {
		if i%2 == 0 {
			caps[i] = phoneCap()
		} else {
			caps[i] = laptopCap()
		}
	}
	return problemWith(tasks, scale, caps...)
}

// BenchmarkOptimal measures the branch-and-bound argmin on an instance
// the enumerator can still afford (7^3 = 343 leaves), for a direct
// ns/op comparison with BenchmarkOptimalExhaustive.
func BenchmarkOptimal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Optimal{}).Allocate(benchProblem(3, 6, 1.5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalExhaustive measures the cross-product enumerator on
// the identical instance.
func BenchmarkOptimalExhaustive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (OptimalExhaustive{}).Allocate(benchProblem(3, 6, 1.5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalLarge runs branch-and-bound where the enumerator
// cannot go at all: 4 tasks over 24 nodes is a 25^4 ≈ 3.9e5-leaf
// cross-product of full re-formulations.
func BenchmarkOptimalLarge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Optimal{}).Allocate(benchProblem(4, 24, 1.5)); err != nil {
			b.Fatal(err)
		}
	}
}
