package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/task"
)

// TraceSession is one arrival of a recorded open-system run: the
// instantiated service plus the arrival instant and the holding time the
// engine drew for it. The clairvoyant oracle re-decides its admission in
// hindsight, so blocked and expired sessions appear here too.
type TraceSession struct {
	Arrive  float64
	Hold    float64
	Service *task.Service
}

// Trace is a full recorded arrival trace over a fixed fleet: the offline
// admission problem the clairvoyant oracle optimizes. Node capacities
// must be the fleet's clean capacities (no churn, no faults — the
// oracle's accounting assumes capacity is constant over the horizon).
// GridSteps and Penalty follow the Formulate conventions (<=0 and nil
// select the provider defaults).
type Trace struct {
	Nodes     []NodeView
	GridSteps int
	Penalty   qos.PenaltyFunc
	// Horizon is the run length in simulated seconds; Bound integrates
	// resource-kind-seconds over [0, Horizon].
	Horizon float64
	// Window is the online engine's worst-case arrival-to-admission
	// latency (queue MaxWait plus formation slack). Bound credits each
	// session only the occupancy it must keep inside the horizon even if
	// admitted Window late; larger windows only loosen the bound.
	Window float64
	// Sessions is the trace in arrival order.
	Sessions []TraceSession
}

// Schedule is the oracle's hindsight-optimal answer.
type Schedule struct {
	// Accepted marks the admitted sessions, indexed like Trace.Sessions.
	Accepted []bool
	// Utility is the schedule's total utility: the sum, over admitted
	// sessions and their tasks, of Evaluator.Utility at the chosen
	// degradation-path stop — the same eq. 3 currency the session
	// engine's admit.Stats.UtilitySum accumulates.
	Utility float64
	// Explored counts search-tree edges, mirroring Optimal's effort
	// accounting.
	Explored int64
}

// Clairvoyant optimizes admission and degradation over a full recorded
// arrival trace: with the whole future known, which sessions should have
// been admitted, where, and at which dependency-consistent degradation
// stop, to maximize total utility. Solve is the exact branch-and-bound
// (small traces: the differential-test oracle); Bound is a polynomial
// relaxation valid for traces of any size, and is what the experiments'
// optimality-gap columns and the fuzz harness compare achieved utility
// against.
//
// The model matches the session engine's economy: an admitted session
// occupies its chosen per-task demands from its admission until its
// holding time elapses, feasibility means every node's reservations fit
// capacity at every instant, and a session's utility is the sum of its
// tasks' Utility(distance) at the chosen stop. Occupancy changes only at
// arrivals (departures only release), so per-instant feasibility reduces
// to feasibility at each accepted arrival's instant.
type Clairvoyant struct {
	// MaxNodes bounds Solve's explored search-tree edges (default 1e6),
	// like Optimal.MaxNodes.
	MaxNodes int64
}

// cvStop is one admissible way to serve a task: a dependency-consistent
// degradation-path stop's demand vector and utility.
type cvStop struct {
	demand resource.Vector
	util   float64
}

// cvTask is a trace task compiled to its stop menu; an empty menu means
// the task — and therefore its session — can never be served.
type cvTask struct {
	stops []cvStop
	maxU  float64
}

// cvSession aggregates a session's compiled tasks.
type cvSession struct {
	tasks    []cvTask
	servable bool
	maxU     float64
}

// compileTrace compiles every session of the trace to its stop menus —
// the shared front half of Solve and Bound.
func compileTrace(tr *Trace) []cvSession {
	out := make([]cvSession, len(tr.Sessions))
	for i, s := range tr.Sessions {
		cs := cvSession{servable: true}
		for _, t := range s.Service.Tasks {
			var ct cvTask
			cp, err := core.CompileProblem(s.Service.Spec, &t.Request, t.Demand, tr.GridSteps, tr.Penalty)
			if err == nil {
				ev := &qos.Evaluator{Spec: s.Service.Spec, Req: cp.Req}
				cp.WalkDegradationPath(func(a qos.Assignment) {
					if ok, _ := cp.C.DepsSatisfied(a); !ok {
						return
					}
					d, derr := cp.DemandAt(a)
					if derr != nil {
						return
					}
					u := ev.Utility(cp.C.Distance(a))
					ct.stops = append(ct.stops, cvStop{demand: d, util: u})
					if u > ct.maxU {
						ct.maxU = u
					}
				})
			}
			if len(ct.stops) == 0 {
				cs.servable = false
			}
			cs.tasks = append(cs.tasks, ct)
		}
		if cs.servable {
			for _, ct := range cs.tasks {
				cs.maxU += ct.maxU
			}
		} else {
			cs.maxU = 0
		}
		out[i] = cs
	}
	return out
}

// cvSearch carries Solve's depth-first state.
type cvSearch struct {
	tr     *Trace
	sess   []cvSession
	caps   []resource.Vector
	suffix []float64 // suffix[i] = max utility still reachable from session i on

	accepted []bool
	choice   [][2]int // per (session, task): chosen [node, stop]
	tasksAt  []int    // choice row offset per session
	util     float64

	found    bool
	best     float64
	bestAcc  []bool
	explored int64
	maxNodes int64
}

// Solve finds the hindsight-optimal admission schedule by depth-first
// branch-and-bound over (accept with a complete per-task placement |
// reject) per session, in arrival order. The accept branch is explored
// first and the incumbent only improves strictly, so ties resolve to the
// first schedule found — deterministic. Exponential in trace size: this
// is the differential-test oracle, not a production solver; MaxNodes
// errors out when the budget is exceeded.
func (c Clairvoyant) Solve(tr *Trace) (*Schedule, error) {
	sess := compileTrace(tr)
	s := &cvSearch{
		tr:       tr,
		sess:     sess,
		caps:     make([]resource.Vector, len(tr.Nodes)),
		suffix:   make([]float64, len(sess)+1),
		accepted: make([]bool, len(sess)),
		tasksAt:  make([]int, len(sess)),
		maxNodes: c.MaxNodes,
	}
	if s.maxNodes == 0 {
		s.maxNodes = 1_000_000
	}
	for i, n := range tr.Nodes {
		s.caps[i] = n.Res.Available()
	}
	rows := 0
	for i := range sess {
		s.tasksAt[i] = rows
		rows += len(sess[i].tasks)
	}
	s.choice = make([][2]int, rows)
	for i := len(sess) - 1; i >= 0; i-- {
		s.suffix[i] = s.suffix[i+1] + sess[i].maxU
	}
	if err := s.search(0); err != nil {
		return nil, err
	}
	out := &Schedule{Accepted: make([]bool, len(sess)), Explored: s.explored}
	if s.found {
		copy(out.Accepted, s.bestAcc)
		out.Utility = s.best
	}
	return out, nil
}

// search decides session i. The utility bound prunes subtrees that
// cannot strictly beat the incumbent; in the (ulp-rare) event float
// association makes the bound under-read, callers compare utilities with
// a small tolerance rather than bitwise.
func (s *cvSearch) search(i int) error {
	if i == len(s.sess) {
		if !s.found || s.util > s.best {
			s.found = true
			s.best = s.util
			s.bestAcc = append(s.bestAcc[:0], s.accepted...)
		}
		return nil
	}
	if s.found && s.util+s.suffix[i] <= s.best {
		return nil
	}
	if s.sess[i].servable {
		s.accepted[i] = true
		use := s.usageAt(s.tr.Sessions[i].Arrive, i)
		if err := s.place(i, 0, use); err != nil {
			return err
		}
	}
	s.accepted[i] = false
	return s.search(i + 1)
}

// usageAt sums, per node, the demands of sessions accepted before upto
// that are still alive at time t (alive on [arrive, arrive+hold)).
func (s *cvSearch) usageAt(t float64, upto int) []resource.Vector {
	use := make([]resource.Vector, len(s.caps))
	for j := 0; j < upto; j++ {
		if !s.accepted[j] {
			continue
		}
		sj := s.tr.Sessions[j]
		if sj.Arrive > t || sj.Arrive+sj.Hold <= t {
			continue
		}
		for ti := range s.sess[j].tasks {
			ch := s.choice[s.tasksAt[j]+ti]
			use[ch[0]] = use[ch[0]].Add(s.sess[j].tasks[ti].stops[ch[1]].demand)
		}
	}
	return use
}

// place assigns session i's task ti to every (node, stop) that fits the
// arrival-instant usage, recursing over the remaining tasks and then the
// remaining sessions. Backtracking restores saved vector copies, like
// bnbSearch, so float state is exact along every prefix.
func (s *cvSearch) place(i, ti int, use []resource.Vector) error {
	if ti == len(s.sess[i].tasks) {
		return s.search(i + 1)
	}
	ct := &s.sess[i].tasks[ti]
	for ni := range s.caps {
		for si := range ct.stops {
			s.explored++
			if s.explored > s.maxNodes {
				return fmt.Errorf("baseline: clairvoyant search explored more than %d nodes", s.maxNodes)
			}
			st := &ct.stops[si]
			if !cvFits(use[ni], st.demand, s.caps[ni]) {
				continue
			}
			saved := use[ni]
			use[ni] = saved.Add(st.demand)
			prevU := s.util
			s.util = prevU + st.util
			s.choice[s.tasksAt[i]+ti] = [2]int{ni, si}
			err := s.place(i, ti+1, use)
			s.util = prevU
			use[ni] = saved
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// cvFits mirrors bnbNode's admission comparison: used + demand must fit
// capacity per kind, zero demands always fit.
func cvFits(used, demand, cap resource.Vector) bool {
	for k := range demand {
		if demand[k] > 0 && used[k]+demand[k] > cap[k] {
			return false
		}
	}
	return true
}

// Bound returns a polynomial upper bound on the total utility ANY
// admission policy — including Solve — can achieve on the trace. It is
// the per-resource-kind fractional-knapsack relaxation of the schedule
// economy:
//
//   - A session contributes at most u_i = sum over its tasks of the
//     maximum stop utility (its admission-time utility can only be an
//     actual stop's, and later upgrades never exceed the best stop).
//   - Admitting session i consumes, for each resource kind k, at least
//     w_ik = (sum of per-task minimum stop demand of kind k) x L_i
//     kind-seconds inside [0, Horizon], where L_i = max(0, min(Hold,
//     Horizon - Arrive - Window)): even admitted Window late and
//     degraded to the cheapest stops, the session holds at least that.
//   - Integrating per-instant feasibility over the horizon, the admitted
//     set satisfies sum w_ik <= (total fleet capacity of k) x Horizon.
//
// The fractional knapsack maximizes sum u_i under each kind's budget
// separately; the minimum over kinds (and the trivial sum-of-u_i cap) is
// therefore an upper bound on every feasible admitted set's utility.
// Valid only while capacity is constant and sessions are never killed
// mid-hold — callers must keep churn and fault injection off.
func (c Clairvoyant) Bound(tr *Trace) (float64, error) {
	if tr.Horizon <= 0 {
		return 0, fmt.Errorf("baseline: clairvoyant bound needs a positive horizon, got %g", tr.Horizon)
	}
	if tr.Window < 0 {
		return 0, fmt.Errorf("baseline: negative admission window %g", tr.Window)
	}
	sess := compileTrace(tr)
	type item struct {
		u float64
		w resource.Vector
	}
	items := make([]item, 0, len(sess))
	var total float64
	for i, cs := range sess {
		if !cs.servable || cs.maxU <= 0 {
			continue
		}
		l := tr.Horizon - tr.Sessions[i].Arrive - tr.Window
		if h := tr.Sessions[i].Hold; l > h {
			l = h
		}
		if l < 0 {
			l = 0
		}
		var w resource.Vector
		for _, ct := range cs.tasks {
			var mink resource.Vector
			for k := range mink {
				mink[k] = math.Inf(1)
			}
			for _, st := range ct.stops {
				for k := range st.demand {
					if st.demand[k] < mink[k] {
						mink[k] = st.demand[k]
					}
				}
			}
			w = w.Add(mink)
		}
		items = append(items, item{u: cs.maxU, w: w.Scale(l)})
		total += cs.maxU
	}
	bound := total
	for k := 0; k < resource.NumKinds; k++ {
		var budget float64
		for _, n := range tr.Nodes {
			budget += n.Res.Available()[k]
		}
		budget *= tr.Horizon
		type kitem struct {
			u, w float64
			idx  int
		}
		var ks []kitem
		var free float64
		for idx := range items {
			if w := items[idx].w[k]; w > 0 {
				ks = append(ks, kitem{u: items[idx].u, w: w, idx: idx})
			} else {
				free += items[idx].u
			}
		}
		if len(ks) == 0 {
			continue // kind k does not constrain this trace
		}
		sort.Slice(ks, func(a, b int) bool {
			ra, rb := ks[a].u/ks[a].w, ks[b].u/ks[b].w
			if ra != rb {
				return ra > rb
			}
			return ks[a].idx < ks[b].idx
		})
		got, rem := free, budget
		for _, ki := range ks {
			if ki.w <= rem {
				got += ki.u
				rem -= ki.w
				continue
			}
			if rem > 0 {
				got += ki.u * (rem / ki.w)
			}
			break
		}
		if got < bound {
			bound = got
		}
	}
	return bound, nil
}
