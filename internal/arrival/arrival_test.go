package arrival

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestPoissonInterArrivalKS is a Kolmogorov-Smirnov-style sanity check:
// the empirical CDF of homogeneous inter-arrival times must track the
// exponential CDF at the configured rate. With n = 2000 the 1% KS
// critical value is 1.63/sqrt(n) ~ 0.036; the fixed seed makes the test
// deterministic, the threshold just documents the calibration.
func TestPoissonInterArrivalKS(t *testing.T) {
	const rate = 2.0
	const n = 2000
	r := rng(7)
	p := Poisson{Rate: rate}
	gaps := make([]float64, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		next := p.Next(now, r)
		gaps = append(gaps, next-now)
		now = next
	}
	sort.Float64s(gaps)
	var worst float64
	for i, g := range gaps {
		cdf := 1 - math.Exp(-rate*g)
		lo := float64(i) / n
		hi := float64(i+1) / n
		d := math.Max(math.Abs(cdf-lo), math.Abs(cdf-hi))
		if d > worst {
			worst = d
		}
	}
	if worst > 1.63/math.Sqrt(n) {
		t.Errorf("KS statistic %.4f exceeds the 1%% critical value %.4f", worst, 1.63/math.Sqrt(n))
	}
}

// TestThinningTracksProfile verifies thinning correctness for an
// inhomogeneous step profile: the per-window counts must be
// proportional to the integral of the rate over each window, i.e. the
// burst windows must collect Burst/Base times the arrivals per second
// of the quiet windows.
func TestThinningTracksProfile(t *testing.T) {
	prof := Burst{Base: 0.5, Burst: 5, Period: 100, BurstLen: 20}
	const horizon = 40000.0
	times := Times(Inhomogeneous{Profile: prof}, horizon, rng(11))

	var inBurst, inBase int
	for _, at := range times {
		if math.Mod(at, prof.Period) < prof.BurstLen {
			inBurst++
		} else {
			inBase++
		}
	}
	// Expected arrivals: burst windows 5/s * 20s, base windows 0.5/s * 80s
	// per period, 400 periods.
	periods := horizon / prof.Period
	wantBurst := prof.Burst * prof.BurstLen * periods
	wantBase := prof.Base * (prof.Period - prof.BurstLen) * periods
	for _, c := range []struct {
		name string
		got  int
		want float64
	}{{"burst", inBurst, wantBurst}, {"base", inBase, wantBase}} {
		// Poisson counts: 5 sigma around the mean.
		if math.Abs(float64(c.got)-c.want) > 5*math.Sqrt(c.want) {
			t.Errorf("%s windows collected %d arrivals, want %.0f +- %.0f", c.name, c.got, c.want, 5*math.Sqrt(c.want))
		}
	}

	// Total count must match the profile's mean rate.
	want := prof.MeanRate() * horizon
	if math.Abs(float64(len(times))-want) > 5*math.Sqrt(want) {
		t.Errorf("total %d arrivals, want %.0f from mean rate %.3f", len(times), want, prof.MeanRate())
	}
}

// TestDiurnalHalves splits a sinusoidal cycle into its high (rising
// sine) and low halves: with amplitude a, the high half carries
// (1 + 2a/pi)/2 of the arrivals.
func TestDiurnalHalves(t *testing.T) {
	prof := Diurnal{Mean: 1, Amplitude: 0.8, Period: 200}
	const horizon = 30000.0
	times := Times(Inhomogeneous{Profile: prof}, horizon, rng(13))
	var high int
	for _, at := range times {
		if math.Mod(at, prof.Period) < prof.Period/2 {
			high++
		}
	}
	total := float64(len(times))
	wantFrac := (1 + 2*prof.Amplitude/math.Pi) / 2
	gotFrac := float64(high) / total
	if math.Abs(gotFrac-wantFrac) > 0.02 {
		t.Errorf("high-half fraction %.4f, want %.4f", gotFrac, wantFrac)
	}
	if math.Abs(total-prof.MeanRate()*horizon) > 5*math.Sqrt(prof.MeanRate()*horizon) {
		t.Errorf("total %d arrivals, want %.0f", len(times), prof.MeanRate()*horizon)
	}
}

// TestMMPPMeanRate checks the on/off process against its analytic
// long-run rate.
func TestMMPPMeanRate(t *testing.T) {
	m := &MMPP{OnRate: 2, MeanOn: 30, MeanOff: 90}
	want := m.MeanRate()
	if got := 2.0 * 30 / 120; math.Abs(want-got) > 1e-12 {
		t.Fatalf("analytic MeanRate = %g, want %g", want, got)
	}
	const horizon = 50000.0
	times := Times(m, horizon, rng(17))
	got := float64(len(times)) / horizon
	// On/off modulation inflates count variance well past Poisson:
	// var ~ mean * (1 + 2*lambda_on*burst-length factor); 10% is ample
	// at this horizon.
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("empirical rate %.4f, want %.4f +- 10%%", got, want)
	}
}

// TestBitDeterminism: the same seed must reproduce every process's
// arrival sequence exactly — the property the open-system experiments
// rely on for parallelism-independent tables.
func TestBitDeterminism(t *testing.T) {
	build := func() []Process {
		return []Process{
			Poisson{Rate: 0.3},
			Inhomogeneous{Profile: Diurnal{Mean: 0.2, Amplitude: 0.9, Period: 600}},
			Inhomogeneous{Profile: Burst{Base: 0.05, Burst: 1, Period: 300, BurstLen: 30}},
			&MMPP{OnRate: 0.5, MeanOn: 60, MeanOff: 120},
		}
	}
	a, b := build(), build()
	for i := range a {
		ta := Times(a[i], 5000, rng(99))
		tb := Times(b[i], 5000, rng(99))
		if len(ta) != len(tb) {
			t.Fatalf("process %d: %d vs %d arrivals from the same seed", i, len(ta), len(tb))
		}
		for k := range ta {
			if ta[k] != tb[k] {
				t.Fatalf("process %d arrival %d: %v != %v", i, k, ta[k], tb[k])
			}
		}
		if len(ta) == 0 {
			t.Fatalf("process %d produced no arrivals", i)
		}
	}
}

// TestZeroRateTerminates: zero-rate configurations must yield +Inf, not
// spin.
func TestZeroRateTerminates(t *testing.T) {
	r := rng(1)
	if got := (Poisson{}).Next(0, r); !math.IsInf(got, 1) {
		t.Errorf("Poisson{0}.Next = %v, want +Inf", got)
	}
	if got := (Inhomogeneous{Profile: Const(0)}).Next(0, r); !math.IsInf(got, 1) {
		t.Errorf("Inhomogeneous{0}.Next = %v, want +Inf", got)
	}
	if got := (&MMPP{}).Next(0, r); !math.IsInf(got, 1) {
		t.Errorf("MMPP{}.Next = %v, want +Inf", got)
	}
	if got := Times(Poisson{}, 100, r); len(got) != 0 {
		t.Errorf("Times on a zero-rate process returned %d arrivals", len(got))
	}
}

// TestMonotoneAndEqualMeanCalibration: arrivals are strictly
// increasing, and the three shaped profiles configured for equal mean
// load really do have equal MeanRate — the invariant E18 depends on.
func TestMonotoneAndEqualMeanCalibration(t *testing.T) {
	const mean = 0.1
	profiles := []RateProfile{
		Const(mean),
		Diurnal{Mean: mean, Amplitude: 0.8, Period: 600},
		Burst{Base: mean / 4, Burst: mean/4 + (3.0/4.0)*mean*10, Period: 600, BurstLen: 60},
	}
	for i, p := range profiles {
		if math.Abs(p.MeanRate()-mean) > 1e-12 {
			t.Errorf("profile %d MeanRate = %g, want %g", i, p.MeanRate(), mean)
		}
		times := Times(Inhomogeneous{Profile: p}, 3000, rng(23))
		for k := 1; k < len(times); k++ {
			if times[k] <= times[k-1] {
				t.Fatalf("profile %d: arrivals not strictly increasing at %d", i, k)
			}
		}
	}
	m := &MMPP{OnRate: mean * 3, MeanOn: 200, MeanOff: 400}
	if math.Abs(m.MeanRate()-mean) > 1e-12 {
		t.Errorf("MMPP MeanRate = %g, want %g", m.MeanRate(), mean)
	}
}
