// Package arrival generates the deterministic, seeded arrival processes
// behind the open-system experiments: homogeneous Poisson streams,
// inhomogeneous Poisson streams via thinning (Lewis-Shedler) over
// pluggable rate profiles (constant, diurnal sinusoid, periodic burst),
// and a simple on/off Markov-modulated Poisson process. Every draw
// comes from a caller-supplied *rand.Rand, so a replication that owns
// its rng reproduces the same arrival sequence bit-for-bit at any
// parallelism level — the same contract the sweep runner in internal/xp
// gives every other source of randomness.
//
// The session lifecycle engine (internal/session) consumes these
// processes for both service arrivals and node-churn leave events; the
// city fabric (internal/fabric) calibrates one per shard so per-shard
// mean rates always sum to the configured city-wide total. See
// DESIGN.md §8 for the open-system design and EXPERIMENTS.md E17–E19
// for the experiments built on it.
package arrival
