// Package arrival generates the deterministic, seeded arrival processes
// behind the open-system experiments: homogeneous Poisson streams,
// inhomogeneous Poisson streams via thinning (Lewis-Shedler) over
// pluggable rate profiles, and a simple on/off Markov-modulated Poisson
// process. Every draw comes from a caller-supplied *rand.Rand, so a
// replication that owns its rng reproduces the same arrival sequence
// bit-for-bit at any parallelism level — the same contract the sweep
// runner in internal/xp gives every other source of randomness.
package arrival

import (
	"math"
	"math/rand"
)

// Process generates successive arrival times on the simulated clock.
// Implementations may carry state between calls (the MMPP tracks its
// modulating phase), so a Process value belongs to one replication and
// must be stepped with non-decreasing now values.
type Process interface {
	// Next returns the first arrival time strictly after now, drawing
	// randomness only from rng. It returns +Inf when the process will
	// never produce another arrival (zero-rate configurations).
	Next(now float64, rng *rand.Rand) float64
}

// exp draws an exponential variate with the given mean (0 if mean <= 0).
func exp(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// Exp draws an exponential duration with the given mean: the holding
// times and churn downtimes of the session lifecycle use this so that
// every duration comes from the replication's own rng.
func Exp(rng *rand.Rand, mean float64) float64 { return exp(rng, mean) }

// Poisson is a homogeneous Poisson process: i.i.d. exponential
// inter-arrival times at the configured rate (arrivals per simulated
// second).
type Poisson struct {
	Rate float64
}

// Next implements Process.
func (p Poisson) Next(now float64, rng *rand.Rand) float64 {
	if p.Rate <= 0 {
		return math.Inf(1)
	}
	return now + rng.ExpFloat64()/p.Rate
}

// RateProfile is a deterministic instantaneous-rate function lambda(t)
// for inhomogeneous Poisson streams. MaxRate bounds the profile from
// above (the thinning envelope); MeanRate is the long-run average, used
// by experiments that compare arrival shapes at equal offered load.
type RateProfile interface {
	Rate(t float64) float64
	MaxRate() float64
	MeanRate() float64
}

// Const is the constant-rate profile; thinning over it degenerates to a
// homogeneous Poisson process (every candidate is accepted).
type Const float64

// Rate implements RateProfile.
func (c Const) Rate(float64) float64 { return float64(c) }

// MaxRate implements RateProfile.
func (c Const) MaxRate() float64 { return float64(c) }

// MeanRate implements RateProfile.
func (c Const) MeanRate() float64 { return float64(c) }

// Diurnal is the sinusoidal day/night profile
//
//	lambda(t) = Mean * (1 + Amplitude*sin(2*pi*(t+Phase)/Period))
//
// with relative Amplitude in [0, 1] so the rate never goes negative.
type Diurnal struct {
	// Mean is the long-run average rate (arrivals per second).
	Mean float64
	// Amplitude is the relative swing around the mean, clamped to [0,1].
	Amplitude float64
	// Period is the cycle length in simulated seconds.
	Period float64
	// Phase shifts the cycle start (seconds).
	Phase float64
}

func (d Diurnal) amp() float64 {
	a := d.Amplitude
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	return a
}

// Rate implements RateProfile.
func (d Diurnal) Rate(t float64) float64 {
	if d.Mean <= 0 || d.Period <= 0 {
		return 0
	}
	return d.Mean * (1 + d.amp()*math.Sin(2*math.Pi*(t+d.Phase)/d.Period))
}

// MaxRate implements RateProfile.
func (d Diurnal) MaxRate() float64 {
	if d.Mean <= 0 {
		return 0
	}
	return d.Mean * (1 + d.amp())
}

// MeanRate implements RateProfile: the sinusoid integrates to zero over
// a full period, so the mean is Mean by construction.
func (d Diurnal) MeanRate() float64 {
	if d.Mean <= 0 {
		return 0
	}
	return d.Mean
}

// Burst is the periodic step profile: rate Burst for the first BurstLen
// seconds of every Period, rate Base for the rest. It models flash
// crowds (everyone leaves the meeting room at once) against a quiet
// background.
type Burst struct {
	Base, Burst      float64
	Period, BurstLen float64
}

// Rate implements RateProfile.
func (b Burst) Rate(t float64) float64 {
	if b.Period <= 0 {
		return b.Base
	}
	phase := math.Mod(t, b.Period)
	if phase < 0 {
		phase += b.Period
	}
	if phase < b.BurstLen {
		return b.Burst
	}
	return b.Base
}

// MaxRate implements RateProfile.
func (b Burst) MaxRate() float64 { return math.Max(b.Base, b.Burst) }

// MeanRate implements RateProfile.
func (b Burst) MeanRate() float64 {
	if b.Period <= 0 {
		return b.Base
	}
	frac := b.BurstLen / b.Period
	if frac > 1 {
		frac = 1
	}
	return b.Burst*frac + b.Base*(1-frac)
}

// maxThinningRejects bounds the candidate loop so an (effectively)
// zero-rate profile terminates with +Inf instead of spinning.
const maxThinningRejects = 1 << 20

// Inhomogeneous is an inhomogeneous Poisson process generated by
// thinning: candidates are drawn from a homogeneous envelope process at
// MaxRate and accepted with probability lambda(t)/MaxRate. This is the
// standard conditional-density recipe for simulating inhomogeneous
// Poisson point processes; acceptance consumes exactly two rng draws per
// candidate, so the sequence is a pure function of (profile, seed).
type Inhomogeneous struct {
	Profile RateProfile
}

// Next implements Process.
func (p Inhomogeneous) Next(now float64, rng *rand.Rand) float64 {
	max := p.Profile.MaxRate()
	if max <= 0 {
		return math.Inf(1)
	}
	t := now
	for i := 0; i < maxThinningRejects; i++ {
		t += rng.ExpFloat64() / max
		if rng.Float64()*max < p.Profile.Rate(t) {
			return t
		}
	}
	return math.Inf(1)
}

// MMPP is a two-state (on/off) Markov-modulated Poisson process:
// arrivals come at OnRate while the modulating chain is in the on phase
// and at OffRate (usually 0) in the off phase; phases last exponential
// times with means MeanOn and MeanOff. It produces burstier streams
// than any deterministic profile at the same mean rate. The zero value
// of the phase state starts on; step it with non-decreasing now values
// from a single replication.
type MMPP struct {
	OnRate, OffRate float64
	MeanOn, MeanOff float64

	init     bool
	on       bool
	phaseEnd float64
}

// MeanRate returns the long-run average arrival rate.
func (m *MMPP) MeanRate() float64 {
	total := m.MeanOn + m.MeanOff
	if total <= 0 {
		return 0
	}
	return (m.OnRate*m.MeanOn + m.OffRate*m.MeanOff) / total
}

// Next implements Process. Within a phase the arrival stream is
// Poisson, so a candidate overshooting the phase boundary is discarded
// and redrawn in the next phase (memorylessness makes the restart
// exact).
func (m *MMPP) Next(now float64, rng *rand.Rand) float64 {
	if m.MeanOn <= 0 && m.MeanOff <= 0 {
		return math.Inf(1)
	}
	if !m.init {
		m.init = true
		m.on = true
		m.phaseEnd = now + exp(rng, m.MeanOn)
	}
	t := now
	for i := 0; i < maxThinningRejects; i++ {
		rate := m.OffRate
		if m.on {
			rate = m.OnRate
		}
		if rate > 0 {
			cand := t + rng.ExpFloat64()/rate
			if cand <= m.phaseEnd {
				return cand
			}
		}
		t = m.phaseEnd
		m.on = !m.on
		if m.on {
			m.phaseEnd = t + exp(rng, m.MeanOn)
		} else {
			m.phaseEnd = t + exp(rng, m.MeanOff)
		}
	}
	return math.Inf(1)
}

// Times materializes every arrival in [0, horizon): a convenience for
// tests and for experiments that want the whole schedule up front.
func Times(p Process, horizon float64, rng *rand.Rand) []float64 {
	var out []float64
	t := 0.0
	for {
		t = p.Next(t, rng)
		if math.IsInf(t, 1) || t >= horizon {
			return out
		}
		out = append(out, t)
	}
}
