// Package obs is the unified counter registry of the observability
// subsystem (DESIGN.md §13). Components that count things — protocol
// retransmissions, duplicate suppressions, stale-release refusals,
// freeze events, reclaimed reservations, live-runtime inbox overflows —
// own a zero-value-usable Counter and register it under a canonical
// dotted name. A Registry aggregates every registered instance of a
// name into one Snapshot, and Snapshots carry the only merge primitives
// the rest of the system is allowed to use. That is the point of the
// package: before it existed, every layer that folded statistics
// (session.Stats.Merge, the fabric city fold, the qosim chaos report)
// re-listed each counter by hand, and a counter added to one path was
// silently dropped by the others. Registering once is now sufficient to
// appear in every snapshot, every merge, and every report.
//
// Counters are monotonic and atomic, so a single instance may be shared
// by the live runtime's timer goroutines; the simulator's
// single-threaded use pays only the uncontended cost.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic event counter. The zero value is ready to use;
// share instances by pointer (a Counter must not be copied after first
// use). Load is nil-safe so optional counters read as zero.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value; a nil Counter reads 0.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry binds canonical names to counter instances. Several counters
// may register under one name — one per node, one per provider — and
// Snapshot sums them, which is exactly the aggregation every report
// used to spell out by hand. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu    sync.Mutex
	names []string // first-registration order, for Each
	by    map[string][]*Counter
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string][]*Counter)}
}

// Register adds an externally owned counter instance under name and
// returns it. Registering the same instance twice under one name is an
// error (it would double-count), enforced by panic: registration is
// wiring-time code where a duplicate is a bug, not an input.
func (r *Registry) Register(name string, c *Counter) *Counter {
	if c == nil {
		panic(fmt.Sprintf("obs: Register(%q, nil)", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, got := range r.by[name] {
		if got == c {
			panic(fmt.Sprintf("obs: counter registered twice under %q", name))
		}
	}
	if _, seen := r.by[name]; !seen {
		r.names = append(r.names, name)
	}
	r.by[name] = append(r.by[name], c)
	return c
}

// Counter returns the registry-owned shared counter for name, creating
// and registering it on first use. Use this for counts that are
// naturally global to the registry's scope; use Register for per-node
// instances the registry should sum.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cs := r.by[name]; len(cs) > 0 {
		return cs[0]
	}
	c := &Counter{}
	r.names = append(r.names, name)
	r.by[name] = []*Counter{c}
	return c
}

// Snapshot sums every registered instance per name. Names registered
// but never incremented appear with value 0, so snapshots of equally
// wired systems are comparable key-for-key.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.names))
	for name, cs := range r.by {
		var total uint64
		for _, c := range cs {
			total += c.Load()
		}
		s[name] = total
	}
	return s
}

// Names returns the registered names in first-registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// Snapshot is a point-in-time reading of a registry: name → summed
// value. Snapshots are plain values; Merge and Diff return fresh maps
// and never mutate their operands, so a Snapshot stored in a stats
// document can be shared by any number of copies without aliasing
// hazards.
type Snapshot map[string]uint64

// Get returns the value for name (0 when absent), so callers need not
// distinguish "never registered" from "never fired".
func (s Snapshot) Get(name string) uint64 { return s[name] }

// Merge returns a new snapshot with the union of keys and summed
// values. Neither operand is modified; merging is commutative and
// associative with the empty snapshot as identity, which is what makes
// the fabric's shard fold order-insensitive (the fold still runs in
// ascending shard order for byte-stable reports).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := make(Snapshot, len(s)+len(o))
	for k, v := range s {
		out[k] = v
	}
	for k, v := range o {
		out[k] += v
	}
	return out
}

// Diff returns a new snapshot of s minus prev per key (union of keys).
// Counters are monotonic, so over snapshots of one registry taken in
// order the difference never underflows; a key that would go negative
// (snapshots of different systems) is clamped to 0.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s)+len(prev))
	for k, v := range s {
		if p := prev[k]; v >= p {
			out[k] = v - p
		} else {
			out[k] = 0
		}
	}
	for k := range prev {
		if _, ok := s[k]; !ok {
			out[k] = 0
		}
	}
	return out
}

// Names returns the snapshot's keys sorted, the canonical iteration
// order for every rendered report.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Total sums every value, a quick "did anything fire" probe for tests.
func (s Snapshot) Total() uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

// String renders "name=v name=v" in sorted name order.
func (s Snapshot) String() string {
	var b strings.Builder
	for i, k := range s.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, s[k])
	}
	return b.String()
}
