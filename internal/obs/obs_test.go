package obs

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestCounterZeroValueAndNil(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero counter loads %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("got %d want 42", c.Load())
	}
	var nilc *Counter
	if nilc.Load() != 0 {
		t.Fatalf("nil counter loads %d", nilc.Load())
	}
}

func TestRegistrySumsInstancesPerName(t *testing.T) {
	r := NewRegistry()
	// Per-node instances registered under one name are summed.
	a, b := &Counter{}, &Counter{}
	r.Register("proto.retransmissions", a)
	r.Register("proto.retransmissions", b)
	a.Add(3)
	b.Add(4)
	// Registry-owned counter: repeated lookups share the instance.
	if r.Counter("session.freezes") != r.Counter("session.freezes") {
		t.Fatal("Counter did not return the shared instance")
	}
	r.Counter("session.freezes").Inc()
	got := r.Snapshot()
	want := Snapshot{"proto.retransmissions": 7, "session.freezes": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot %v want %v", got, want)
	}
	if names := r.Names(); !reflect.DeepEqual(names, []string{"proto.retransmissions", "session.freezes"}) {
		t.Fatalf("names %v", names)
	}
}

func TestRegistryRejectsDoubleRegistration(t *testing.T) {
	r := NewRegistry()
	c := &Counter{}
	r.Register("x", c)
	defer func() {
		if recover() == nil {
			t.Fatal("second Register of the same instance did not panic")
		}
	}()
	r.Register("x", c)
}

func TestSnapshotRegisteredButIdleIsZero(t *testing.T) {
	r := NewRegistry()
	r.Register("live.overflows", &Counter{})
	got := r.Snapshot()
	if v, ok := got["live.overflows"]; !ok || v != 0 {
		t.Fatalf("idle counter missing or nonzero: %v", got)
	}
}

// randomSnapshot draws a snapshot over a small shared key space so
// merges exercise both overlapping and disjoint keys.
func randomSnapshot(rng *rand.Rand) Snapshot {
	s := Snapshot{}
	for k := 0; k < 6; k++ {
		if rng.Intn(2) == 0 {
			s[fmt.Sprintf("k%d", k)] = uint64(rng.Intn(100))
		}
	}
	return s
}

func TestMergePropertyCommutativeAssociativeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)
		if got, want := a.Merge(b), b.Merge(a); !reflect.DeepEqual(got, want) {
			t.Fatalf("merge not commutative: %v vs %v", got, want)
		}
		if got, want := a.Merge(b).Merge(c), a.Merge(b.Merge(c)); !reflect.DeepEqual(got, want) {
			t.Fatalf("merge not associative: %v vs %v", got, want)
		}
		id := a.Merge(Snapshot{})
		// Merge with identity preserves values for every key of a.
		for k, v := range a {
			if id[k] != v {
				t.Fatalf("identity merge changed %s: %d != %d", k, id[k], v)
			}
		}
	}
}

func TestMergeDoesNotMutateOperands(t *testing.T) {
	a := Snapshot{"x": 1}
	b := Snapshot{"x": 2, "y": 3}
	_ = a.Merge(b)
	if a["x"] != 1 || b["x"] != 2 || b["y"] != 3 {
		t.Fatalf("merge mutated operands: a=%v b=%v", a, b)
	}
}

func TestDiffOfMergeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		base, delta := randomSnapshot(rng), randomSnapshot(rng)
		got := base.Merge(delta).Diff(base)
		// got must equal delta on the union of keys (absent = 0).
		for _, k := range got.Merge(delta).Names() {
			if got.Get(k) != delta.Get(k) {
				t.Fatalf("diff(merge) != delta at %s: %d != %d (base=%v delta=%v)",
					k, got.Get(k), delta.Get(k), base, delta)
			}
		}
	}
}

func TestDiffClampsAtZero(t *testing.T) {
	got := Snapshot{"x": 1}.Diff(Snapshot{"x": 5, "y": 2})
	if got["x"] != 0 || got["y"] != 0 {
		t.Fatalf("diff did not clamp: %v", got)
	}
}

func TestSnapshotStringSorted(t *testing.T) {
	s := Snapshot{"b": 2, "a": 1}
	if got := s.String(); got != "a=1 b=2" {
		t.Fatalf("String() = %q", got)
	}
}

func TestConcurrentAddAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := r.Register("hot", &Counter{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot()["hot"]; got != workers*each {
		t.Fatalf("lost updates: %d != %d", got, workers*each)
	}
}
