package obs

// Canonical counter names. The registry itself accepts any string, but
// every counter this repository registers does so under one of these
// constants — the single list is what lets session.Stats, the fabric
// merge, the chaos report, and qostrend agree on keys without a shared
// schema file. The prefix is the owning package.
const (
	// Retransmissions counts retry sends the reliability layer issued
	// (proto.Reliable, one counter per node).
	Retransmissions = "proto.retransmissions"
	// Duplicates counts sequenced deliveries the receiver-side window
	// suppressed (proto.Dedup, one counter per node).
	Duplicates = "proto.duplicates"
	// StaleReleases counts TaskRelease messages a provider refused
	// because their round predated the current reservation (core.Provider,
	// one counter per node).
	StaleReleases = "core.stale_releases"
	// Freezes counts gray-failure freeze events a fault plan delivered
	// to the session engine.
	Freezes = "session.freezes"
	// Reclaimed counts reservations the reconciliation sweep reclaimed.
	Reclaimed = "session.reclaimed"
	// LiveSent/LiveDelivered/LiveDropped/LiveOverflows count the live
	// runtime's message traffic; overflows are the full-inbox subset of
	// drops.
	LiveSent      = "live.sent"
	LiveDelivered = "live.delivered"
	LiveDropped   = "live.dropped"
	LiveOverflows = "live.overflows"
	// NetSent/NetDelivered/NetSendErrors/NetOverflows count the TCP
	// fabric's message traffic (internal/net): frames written, frames
	// dispatched after decode, sends that surfaced a socket error
	// (dial/write/deadline failures — modeled loss never counts here),
	// and inbound messages dropped on a full endpoint inbox.
	NetSent       = "net.sent"
	NetDelivered  = "net.delivered"
	NetSendErrors = "net.send_errors"
	NetOverflows  = "net.overflows"
)
