package trace

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.Emit(Event{Kind: "x"})
	r.Point(1, 0, "engine", "arrival", "")
	sp := r.Begin(1, 0, "engine", "round", "")
	sp.End(2, "done")
	if NewRecorder(nil) != nil || NewRecorder(Nop{}) != nil {
		t.Fatal("nil/Nop sink should yield nil recorder")
	}
}

func TestRecorderSpansPairUp(t *testing.T) {
	var b Buffer
	r := NewRecorder(&b)
	if !r.Enabled() {
		t.Fatal("recorder with live sink not enabled")
	}
	s1 := r.Begin(1.0, 0, "organizer", "round", "cfp out")
	r.Point(1.5, 2, "provider", "proposal", "2 tasks")
	s2 := r.Begin(1.6, 0, "engine", "adapt", "")
	s2.End(1.9, "0 moved")
	s1.End(2.0, "formed")
	ev := b.Events()
	if len(ev) != 5 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Kind != "round.begin" || ev[4].Kind != "round.end" {
		t.Fatalf("outer span kinds: %s / %s", ev[0].Kind, ev[4].Kind)
	}
	if ev[0].Span == "" || ev[0].Span != ev[4].Span {
		t.Fatalf("outer span ids do not pair: %q vs %q", ev[0].Span, ev[4].Span)
	}
	if ev[2].Span == ev[0].Span {
		t.Fatal("nested span reused the outer id")
	}
	if ev[1].Span != "" {
		t.Fatalf("point event has span %q", ev[1].Span)
	}
	if !strings.Contains(ev[0].String(), "["+ev[0].Span+"]") {
		t.Fatalf("String() does not show span: %s", ev[0].String())
	}
}

func TestJournalSortsScopesAndIsOrderIndependent(t *testing.T) {
	// Emit into scopes in two different concurrent interleavings; the
	// serialized JSONL must be identical.
	runs := make([]string, 2)
	for run := range runs {
		j := NewJournal()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			idx := i
			if run == 1 {
				idx = 7 - i // reversed start order
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := j.Scope(ScopeName("E17", idx))
				for k := 0; k < 3; k++ {
					b.Emit(Event{T: float64(k), Node: idx, Role: "engine", Kind: "arrival"})
				}
			}()
		}
		wg.Wait()
		var out bytes.Buffer
		if err := j.WriteJSONL(&out); err != nil {
			t.Fatal(err)
		}
		runs[run] = out.String()
		if j.Total() != 24 {
			t.Fatalf("total = %d", j.Total())
		}
	}
	if runs[0] != runs[1] {
		t.Fatalf("journal output depends on emission interleaving:\n%s\nvs\n%s", runs[0], runs[1])
	}
	j := NewJournal()
	j.Scope("b").Emit(Event{Kind: "x"})
	j.Scope("a").Emit(Event{Kind: "y"})
	var out bytes.Buffer
	if err := j.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"scope":"a"`) {
		t.Fatalf("scopes not sorted:\n%s", out.String())
	}
}

func TestJSONLCanonicalShape(t *testing.T) {
	var b Buffer
	b.Emit(Event{T: 1.25, Node: 3, Role: "engine", Kind: "arrival", Detail: "svc 4"})
	b.Emit(Event{T: 2, Node: 0, Role: "organizer", Kind: "round.begin", Span: "round#1"})
	var out bytes.Buffer
	if err := b.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1.25,"node":3,"role":"engine","kind":"arrival","detail":"svc 4"}
{"t":2,"node":0,"role":"organizer","kind":"round.begin","span":"round#1"}
`
	if out.String() != want {
		t.Fatalf("canonical JSONL drifted:\n%s\nwant:\n%s", out.String(), want)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestJSONLWriterRetainsFirstError(t *testing.T) {
	jw := NewJSONLWriter(&failWriter{n: 1})
	jw.Emit(Event{Kind: "ok"})
	if jw.Err() != nil {
		t.Fatalf("unexpected early error: %v", jw.Err())
	}
	jw.Emit(Event{Kind: "boom"})
	jw.Emit(Event{Kind: "after"})
	if jw.Err() == nil || jw.Err().Error() != "disk full" {
		t.Fatalf("err = %v", jw.Err())
	}
}

func TestCountsFilterAndMulti(t *testing.T) {
	counts := NewCounts()
	ring := NewRing(16)
	sink := Multi{
		counts,
		FilterSink{Allow: func(e Event) bool { return e.Kind == "reconcile" }, Next: ring},
	}
	sink.Emit(Event{Kind: "arrival"})
	sink.Emit(Event{Kind: "reconcile"})
	sink.Emit(Event{Kind: "reconcile"})
	if counts.Get("reconcile") != 2 || counts.Get("arrival") != 1 || counts.Total() != 3 {
		t.Fatalf("counts: reconcile=%d arrival=%d total=%d",
			counts.Get("reconcile"), counts.Get("arrival"), counts.Total())
	}
	if ring.Total() != 2 {
		t.Fatalf("filter passed %d events", ring.Total())
	}
	// nil Allow passes everything.
	all := NewCounts()
	FilterSink{Next: all}.Emit(Event{Kind: "x"})
	if all.Total() != 1 {
		t.Fatal("nil Allow filtered")
	}
}

// BenchmarkRecorderNil pins the cost of observability-off: one nil
// check per call site, no allocation.
func BenchmarkRecorderNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Point(1, 0, "engine", "arrival", "")
		sp := r.Begin(1, 0, "engine", "round", "")
		sp.End(2, "")
	}
}

func BenchmarkRecorderBufferPoint(b *testing.B) {
	r := NewRecorder(&Buffer{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Point(1, 0, "engine", "arrival", "")
	}
}
