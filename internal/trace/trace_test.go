package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingKeepsOrder(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.Emit(Event{T: float64(i), Node: i, Kind: "k"})
	}
	ev := r.Events()
	if len(ev) != 10 {
		t.Fatalf("events = %d", len(ev))
	}
	for i, e := range ev {
		if e.Node != i {
			t.Fatalf("order broken at %d: %+v", i, e)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Emit(Event{Node: i})
	}
	ev := r.Events()
	if len(ev) != 16 {
		t.Fatalf("retained = %d, want capacity", len(ev))
	}
	if ev[0].Node != 24 || ev[15].Node != 39 {
		t.Errorf("wrap lost the newest window: first %d last %d", ev[0].Node, ev[15].Node)
	}
	if r.Total() != 40 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(1)
	for i := 0; i < 20; i++ {
		r.Emit(Event{Node: i})
	}
	if len(r.Events()) != 16 {
		t.Errorf("minimum capacity not enforced: %d", len(r.Events()))
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Node: g, Kind: "c"})
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Errorf("total = %d, want 800", r.Total())
	}
	if len(r.Events()) != 64 {
		t.Errorf("retained = %d", len(r.Events()))
	}
}

func TestFilterAndString(t *testing.T) {
	r := NewRing(16)
	r.Emit(Event{T: 1, Node: 0, Role: "organizer", Kind: "cfp", Detail: "round 0"})
	r.Emit(Event{T: 2, Node: 1, Role: "provider", Kind: "propose", Detail: "2 tasks"})
	r.Emit(Event{T: 3, Node: 0, Role: "organizer", Kind: "formed", Detail: "done"})
	if got := len(r.Filter("cfp")); got != 1 {
		t.Errorf("Filter(cfp) = %d", got)
	}
	if got := len(r.Filter("")); got != 3 {
		t.Errorf("Filter(all) = %d", got)
	}
	s := r.String()
	for _, want := range []string{"organizer", "provider", "cfp", "propose", "formed", "round 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("timeline missing %q:\n%s", want, s)
		}
	}
	// Nop never panics and discards.
	(Nop{}).Emit(Event{})
}
