// Package trace provides lightweight structured tracing of the
// negotiation protocol: organizers and providers emit events at every
// protocol transition, and a fixed-capacity ring buffer keeps the most
// recent ones for inspection. Tracing is opt-in and allocation-cheap so
// it can stay enabled in production deployments; cmd/qosim -trace prints
// the timeline of a run.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one protocol transition. The JSON field order is the
// canonical wire order of the flight recorder's JSONL output: Go
// marshals struct fields in declaration order, so every sink that
// marshals Events (JSONLWriter, Journal) emits byte-identical lines for
// identical events with no map-ordering hazards.
type Event struct {
	// T is the emitting entity's clock, in virtual seconds.
	T float64 `json:"t"`
	// Node is the emitting node's ID.
	Node int `json:"node"`
	// Role is "organizer", "provider", or "engine".
	Role string `json:"role"`
	// Kind names the transition ("cfp", "proposal", "award", "ack",
	// "formed", "failure", "upgrade", "dissolve", ...). Span events use
	// "<name>.begin" / "<name>.end".
	Kind string `json:"kind"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail,omitempty"`
	// Span ties a .begin/.end pair together; empty for point events.
	Span string `json:"span,omitempty"`
}

// String renders the event as one timeline line.
func (e Event) String() string {
	s := fmt.Sprintf("%8.3fs node %2d %-9s %-10s %s", e.T, e.Node, e.Role, e.Kind, e.Detail)
	if e.Span != "" {
		s += " [" + e.Span + "]"
	}
	return s
}

// Tracer receives events. Implementations must be safe for concurrent
// use: the live runtime emits from many goroutines.
type Tracer interface {
	Emit(e Event)
}

// Nop discards all events; the zero value is ready to use.
type Nop struct{}

// Emit implements Tracer.
func (Nop) Emit(Event) {}

// Ring keeps the most recent events in a fixed-capacity circular buffer.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	wrap  bool
	total uint64
}

// NewRing builds a ring holding up to capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrap = true
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of events ever emitted.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in emission order.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrap {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// String renders the retained timeline.
func (r *Ring) String() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Filter returns the retained events matching the given kind ("" = all).
func (r *Ring) Filter(kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if kind == "" || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
