package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// writeJSONLine marshals v and appends a newline. encoding/json emits
// struct fields in declaration order, so lines are canonical.
func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Buffer retains every event in emission order. Unlike Ring it is
// unbounded; use it for test assertions and as the Journal's per-scope
// store.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Events returns a copy of the retained events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the retained count.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// WriteJSONL serializes the retained events one JSON object per line.
func (b *Buffer) WriteJSONL(w io.Writer) error {
	for _, e := range b.Events() {
		if err := writeJSONLine(w, e); err != nil {
			return err
		}
	}
	return nil
}

// JSONLWriter streams each event to w as one JSON line under a mutex.
// The first write or marshal error is retained and reported by Err;
// later events are dropped so a full disk cannot panic a run.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: w}
}

// Emit implements Tracer.
func (jw *JSONLWriter) Emit(e Event) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	jw.err = writeJSONLine(jw.w, e)
}

// Err returns the first write error, if any.
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}

// Counts tallies events per kind — the counting sink tests use to
// assert "N reconcile sweeps fired" without retaining events.
type Counts struct {
	mu     sync.Mutex
	byKind map[string]uint64
	total  uint64
}

// NewCounts builds an empty counting sink.
func NewCounts() *Counts {
	return &Counts{byKind: make(map[string]uint64)}
}

// Emit implements Tracer.
func (c *Counts) Emit(e Event) {
	c.mu.Lock()
	c.byKind[e.Kind]++
	c.total++
	c.mu.Unlock()
}

// Get returns the count for kind.
func (c *Counts) Get(kind string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKind[kind]
}

// Total returns the total event count.
func (c *Counts) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// FilterSink forwards events satisfying Allow to Next (nil Allow passes
// everything), composing with any downstream sink.
type FilterSink struct {
	Allow func(Event) bool
	Next  Tracer
}

// Emit implements Tracer.
func (f FilterSink) Emit(e Event) {
	if f.Allow == nil || f.Allow(e) {
		f.Next.Emit(e)
	}
}

// Multi fans each event out to every sink in order.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}
