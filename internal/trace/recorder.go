package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder is the structured flight recorder layered over a Tracer
// sink. It adds two things the bare Tracer interface does not have:
// nil-safety (a nil *Recorder discards everything at the cost of one
// pointer check, which is what keeps observability-off free on the hot
// path — see BenchmarkRecorderNil) and spans, paired begin/end events
// that bracket multi-step work such as a negotiation round, an
// adaptation pass, or a reclamation sweep.
//
// Span IDs are sequential per Recorder. Deterministic traces therefore
// require one Recorder per deterministic unit of work (the experiment
// harness gives every replication its own recorder over its own Journal
// scope); sharing one recorder across concurrent replications would
// interleave IDs in scheduling order.
type Recorder struct {
	sink  Tracer
	spans atomic.Uint64
}

// NewRecorder wraps sink. A nil or Nop sink yields a nil Recorder so
// the disabled path is a single pointer test at every call site.
func NewRecorder(sink Tracer) *Recorder {
	if sink == nil {
		return nil
	}
	if _, off := sink.(Nop); off {
		return nil
	}
	return &Recorder{sink: sink}
}

// Enabled reports whether events reach a sink.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit forwards one event; nil-safe.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.sink.Emit(e)
}

// Point emits a point event; nil-safe.
func (r *Recorder) Point(t float64, node int, role, kind, detail string) {
	if r == nil {
		return
	}
	r.sink.Emit(Event{T: t, Node: node, Role: role, Kind: kind, Detail: detail})
}

// Begin opens a span: emits "<kind>.begin" and returns the handle whose
// End emits the matching "<kind>.end". On a nil Recorder the returned
// zero Span is inert.
func (r *Recorder) Begin(t float64, node int, role, kind, detail string) Span {
	if r == nil {
		return Span{}
	}
	id := fmt.Sprintf("%s#%d", kind, r.spans.Add(1))
	r.sink.Emit(Event{T: t, Node: node, Role: role, Kind: kind + ".begin", Detail: detail, Span: id})
	return Span{r: r, id: id, node: node, role: role, kind: kind}
}

// Span is an open begin/end pair. The zero value (from a nil Recorder)
// discards End.
type Span struct {
	r    *Recorder
	id   string
	node int
	role string
	kind string
}

// End closes the span.
func (s Span) End(t float64, detail string) {
	if s.r == nil {
		return
	}
	s.r.sink.Emit(Event{T: t, Node: s.node, Role: s.role, Kind: s.kind + ".end", Detail: detail, Span: s.id})
}

// Journal collects events from concurrently running units of work into
// named scopes and writes them back out in sorted-scope order, making
// the serialized trace independent of which unit finished first. It is
// the trace-side twin of metrics.Accumulator's slot indexing: the
// experiment harness names each scope "<experiment>/<global rep index>"
// (zero-padded), events within a scope arrive in that replication's own
// deterministic order, and WriteJSONL walks scopes sorted — so the
// bytes are identical at parallel 1 and parallel 8, and on the fast and
// -slowpath session loops, for the same seed.
type Journal struct {
	mu     sync.Mutex
	scopes map[string]*Buffer
}

// NewJournal builds an empty journal.
func NewJournal() *Journal {
	return &Journal{scopes: make(map[string]*Buffer)}
}

// ScopeName renders the canonical scope key for replication index i of
// group (zero-padded so lexicographic order is numeric order).
func ScopeName(group string, i int) string {
	return fmt.Sprintf("%s/%04d", group, i)
}

// Scope returns the buffer for name, creating it on first use. Each
// concurrent unit of work must own a distinct scope.
func (j *Journal) Scope(name string) *Buffer {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.scopes[name]
	if b == nil {
		b = &Buffer{}
		j.scopes[name] = b
	}
	return b
}

// Scopes returns the scope names sorted.
func (j *Journal) Scopes() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	names := make([]string, 0, len(j.scopes))
	for k := range j.scopes {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Total counts events across all scopes.
func (j *Journal) Total() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, b := range j.scopes {
		n += b.Len()
	}
	return n
}

// scopedEvent is the JSONL line shape: the scope key first, then the
// event fields flattened in Event's canonical order.
type scopedEvent struct {
	Scope string `json:"scope"`
	Event
}

// WriteJSONL serializes every scope in sorted order, each event as one
// JSON line carrying its scope key.
func (j *Journal) WriteJSONL(w io.Writer) error {
	for _, name := range j.Scopes() {
		b := j.Scope(name)
		for _, e := range b.Events() {
			if err := writeJSONLine(w, scopedEvent{Scope: name, Event: e}); err != nil {
				return err
			}
		}
	}
	return nil
}
