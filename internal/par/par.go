package par

import "sync"

// Do runs job(0) .. job(n-1), each exactly once, across at most
// workers goroutines (values <= 1 run sequentially on the calling
// goroutine), and returns the lowest-index error (nil if every job
// succeeded). The parallel path runs every job even after a failure so
// that the returned error does not depend on scheduling; the
// sequential path can stop at the first error because index order and
// execution order coincide. Jobs must not share mutable state — the
// callers hand each job its own seed and rand.Rand, which is what
// makes results independent of the pool width.
func Do(n, workers int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
