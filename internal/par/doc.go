// Package par is the one bounded worker pool behind every fan-out in
// the repository: the sweep runner in internal/xp spreads replications
// over it, the city fabric (internal/fabric) spreads neighbourhood
// shards. It sits at the leaf of the import graph so both layers share
// a single implementation of the determinism-friendly error contract:
// Do runs each job exactly once, results land in caller-owned slots,
// and the lowest-index error wins — which is what lets every consumer
// produce bit-identical output at any pool width. See DESIGN.md §9
// (the city fabric) for how the contract composes across nested
// fan-outs.
package par
