package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestDoRunsEveryJob: each index runs exactly once at any pool width,
// including widths above the job count.
func TestDoRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		var ran [37]int32
		err := Do(len(ran), workers, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers %d: job %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestDoLowestIndexError pins the error contract the determinism story
// depends on: the lowest-index failure wins regardless of worker count
// and scheduling, and the parallel path still runs every job.
func TestDoLowestIndexError(t *testing.T) {
	failAt := func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	}
	for _, workers := range []int{1, 2, 8} {
		var ran int32
		err := Do(10, workers, func(i int) error {
			atomic.AddInt32(&ran, 1)
			return failAt(i)
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers %d: want lowest-index error, got %v", workers, err)
		}
		if workers > 1 && ran != 10 {
			t.Fatalf("workers %d: parallel path ran %d/10 jobs", workers, ran)
		}
	}
}

// TestDoSequentialStopsEarly: the sequential path may stop at the
// first error because index order and execution order coincide.
func TestDoSequentialStopsEarly(t *testing.T) {
	var ran int32
	err := Do(10, 1, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 2 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || ran != 3 {
		t.Fatalf("sequential path: ran %d jobs, err %v; want 3 jobs and an error", ran, err)
	}
}
