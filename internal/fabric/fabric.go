package fabric

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/admit"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/session"
	"repro/internal/workload"
)

// Config parameterizes one city-scale run.
type Config struct {
	// City lays out the shard grid and shapes the per-shard load.
	City workload.CityScenario
	// Template stamps out every shard's arriving services. Service IDs
	// only need to be unique within a shard (each shard is its own
	// cluster), so all shards share the template and its compiled
	// demand references.
	Template workload.SessionTemplate
	// HoldMean is the mean exponential session holding time (seconds).
	HoldMean float64
	// Horizon and Warmup bound every shard's common measurement window.
	Horizon, Warmup float64
	// Organizer configures each session's negotiation organizer.
	Organizer core.OrganizerConfig
	// ChurnPerHour, when positive, churns helper nodes within each
	// shard at the given rate (leaves per hour per shard); victims
	// rejoin after an exponential downtime of ChurnDownMean seconds.
	ChurnPerHour, ChurnDownMean float64
	// Adapt, when set, runs the mid-session QoS adaptation engine
	// inside every shard; the city merge folds the per-shard adaptation
	// counters alongside the rest of session.Stats.
	Adapt *adapt.Config
	// Admission, when set, runs the admission-policy layer
	// (internal/admit) inside every shard; the city merge folds the
	// per-shard admission counters alongside the rest of session.Stats.
	Admission *admit.Config
	// Parallel is the worker-pool width shards fan out over (<= 1 runs
	// them sequentially). Results are identical at every width.
	Parallel int
	// SlowPath drives every shard on the retained reference session loop
	// instead of the pooled fast path; stats are bit-identical either way.
	SlowPath bool
	// Seed is the city's base seed; shard s uses shardSeed(Seed, s) —
	// a splitmix64 hash — for both its neighbourhood generation and
	// its session lifecycle streams.
	Seed int64
}

// ShardResult is one shard's outcome plus its grid identity.
type ShardResult struct {
	// Shard is the shard index (row-major over the grid).
	Shard int
	// Row, Col locate the shard on the city grid.
	Row, Col int
	// Rate is the shard's calibrated mean arrival rate (sessions/s).
	Rate float64
	// Stats is the shard's steady-state outcome over [Warmup, Horizon].
	Stats session.Stats
}

// Result is a completed city run: every shard's stats plus the merged
// city-wide view.
type Result struct {
	// Shards holds per-shard results in ascending shard order.
	Shards []ShardResult
	// City folds every shard via session.Stats.Merge in shard order:
	// counters and live averages sum, utilization is node-weighted,
	// QoS distance is admission-weighted.
	City session.Stats
}

// Run executes every shard of the configured city and merges their
// steady-state statistics. It validates the configuration, fans the
// shards out over min(Parallel, shards) workers, and returns the
// lowest-index shard error if any shard fails.
func Run(cfg Config) (*Result, error) {
	if err := cfg.City.Validate(); err != nil {
		return nil, err
	}
	if cfg.HoldMean <= 0 {
		return nil, fmt.Errorf("fabric: holding-time mean must be positive, got %g", cfg.HoldMean)
	}
	if cfg.ChurnPerHour > 0 && cfg.ChurnDownMean <= 0 {
		return nil, fmt.Errorf("fabric: churn needs a positive downtime mean, got %g", cfg.ChurnDownMean)
	}
	n := cfg.City.Shards()
	results := make([]*session.Stats, n)
	err := par.Do(n, cfg.Parallel, func(shard int) error {
		st, err := runShard(cfg, shard)
		if err != nil {
			return fmt.Errorf("fabric: shard %d: %w", shard, err)
		}
		results[shard] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Shards: make([]ShardResult, n)}
	for s := 0; s < n; s++ {
		row, col := cfg.City.Pos(s)
		out.Shards[s] = ShardResult{
			Shard: s, Row: row, Col: col,
			Rate:  cfg.City.ShardRate(s),
			Stats: *results[s],
		}
		out.City.Merge(results[s])
	}
	return out, nil
}

// shardSeed hashes (seed, shard) through the splitmix64 finalizer.
// A plain Seed + shard would collide with the sweep runner one level
// up, which gives replication r the consecutive seed cfg.Seed + r:
// replication 0's shard 1 and replication 1's shard 0 would then run
// the same substreams, making the "N seeds per row" of E20/E21
// near-duplicates instead of independent samples. The hash keeps the
// derivation a pure function of (seed, shard) — the determinism
// contract — while decorrelating consecutive seeds completely.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + (uint64(shard)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// runShard builds one neighbourhood and drives its open-system
// lifecycle to the horizon. Everything random — the node placement and
// device mix, the arrival stream, holding times, churn victims — derives
// from shardSeed(Seed, shard), so a shard's stats are a pure function
// of (cfg, shard) regardless of which worker runs it.
func runShard(cfg Config, shard int) (*session.Stats, error) {
	seed := shardSeed(cfg.Seed, shard)
	sc, err := workload.Build(cfg.City.ScenarioConfig(seed))
	if err != nil {
		return nil, err
	}
	scfg := session.Config{
		Arrivals:   cfg.City.ArrivalProcess(shard),
		NewService: cfg.Template.Instantiate,
		HoldMean:   cfg.HoldMean,
		Horizon:    cfg.Horizon,
		Warmup:     cfg.Warmup,
		Organizer:  cfg.Organizer,
		Adapt:      cfg.Adapt,
		Admission:  cfg.Admission,
		SlowPath:   cfg.SlowPath,
	}
	if cfg.ChurnPerHour > 0 {
		scfg.Churn = &session.ChurnConfig{
			Leave:    arrival.Poisson{Rate: cfg.ChurnPerHour / 3600},
			DownMean: cfg.ChurnDownMean,
		}
	}
	eng, err := session.New(sc.Cluster, scfg, seed)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}
