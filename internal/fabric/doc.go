// Package fabric scales the open-system simulation out from one
// spontaneous neighbourhood to a city: a grid of neighbourhood shards,
// each an independent single-hop cluster running the full session
// lifecycle (arrival, negotiation, holding, dissolve, node churn, and —
// when configured — mid-session QoS adaptation) on its own virtual
// clock. Shards never interact over the air — the grid pitch exceeds
// the radio range by construction — so the fabric can fan them out
// across a bounded worker pool (internal/par) and still produce
// bit-identical city-wide tables at any parallelism level: shard s
// always derives every random draw from a fixed hash of (Seed, s),
// each shard's result lands in its own slot, and the cross-shard merge
// folds slots in ascending shard order after the fan-in. This is the
// same determinism contract the sweep runner in internal/xp gives per
// replication, applied one level up. See DESIGN.md §9 for the sharding
// design and the merge semantics of session.Stats.
package fabric
