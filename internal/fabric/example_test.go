package fabric_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/workload"
)

// ExampleRun is the headline city-scale API: lay out a grid of
// independent neighbourhood shards, drive the full open-system session
// lifecycle in each, and fold the shards into one city-wide view. The
// result is a pure function of the configuration — any Parallel width
// produces these exact numbers, which is why the output below can be
// pinned at all (DESIGN.md §9).
func ExampleRun() {
	res, err := fabric.Run(fabric.Config{
		City: workload.CityScenario{
			Rows: 1, Cols: 2, NodesPerShard: 8,
			TotalRate: 0.1, Profile: workload.CityUniform,
		},
		Template:  workload.SessionTemplate{Name: "example", Tasks: 2, Scale: 1.0},
		HoldMean:  30,
		Horizon:   240,
		Warmup:    40,
		Organizer: core.DefaultOrganizerConfig,
		Parallel:  2,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, sh := range res.Shards {
		fmt.Printf("shard %d (row %d, col %d): %d arrivals, %d admitted\n",
			sh.Shard, sh.Row, sh.Col, sh.Stats.Arrivals, sh.Stats.Admitted)
	}
	fmt.Printf("city: %d arrivals, admission %.0f%%, %d nodes\n",
		res.City.Arrivals, 100*res.City.AdmissionRatio(), res.City.Nodes)

	// Output:
	// shard 0 (row 0, col 0): 12 arrivals, 12 admitted
	// shard 1 (row 0, col 1): 8 arrivals, 8 admitted
	// city: 20 arrivals, admission 100%, 16 nodes
}
