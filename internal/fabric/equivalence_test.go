package fabric

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adapt"
)

// TestPathWidthEquivalence crosses the session engine's two
// implementations with the shard pool's width: the pooled fast path and
// the retained reference loop, each at parallel 1 and 8, must produce
// the same Result to the last bit — every shard's stats and the merged
// city view. This is the fabric-level face of the equivalence harness
// in internal/session: shards exercise slot recycling concurrently, so
// a pooled object escaping one shard's engine would show up here as a
// cross-width or cross-path diff. The churn + adaptation configuration
// drives the deepest event interleavings (kills, repairs, reboots racing
// departures) through both paths.
func TestPathWidthEquivalence(t *testing.T) {
	build := func(slow bool, parallel int) Config {
		cfg := testConfig(parallel)
		cfg.SlowPath = slow
		cfg.ChurnPerHour, cfg.ChurnDownMean = 240, 20
		ocfg := cfg.Organizer
		ocfg.Monitor = false
		ocfg.Reconfigure = false
		cfg.Organizer = ocfg
		cfg.Adapt = &adapt.Config{
			OnChurn:           adapt.DegradeToFit,
			DegradeOnPressure: true, UtilHigh: 0.85,
			UpgradeOnSlack: true, UtilLow: 0.6,
			Epoch: 10,
		}
		return cfg
	}
	ref, err := Run(build(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.City.Arrivals == 0 || ref.City.NodeLeaves == 0 {
		t.Fatalf("degenerate reference run: %+v", ref.City)
	}
	for _, slow := range []bool{false, true} {
		for _, parallel := range []int{1, 8} {
			name := fmt.Sprintf("slow=%v/parallel=%d", slow, parallel)
			got, err := Run(build(slow, parallel))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s diverged from the sequential reference loop:\n ref: %+v\n got: %+v",
					name, ref.City, got.City)
			}
		}
	}
}
