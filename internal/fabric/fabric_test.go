package fabric

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/workload"
)

// testConfig is a small but non-trivial city: 2x2 grid, hotspot skew,
// short horizons, enough arrivals per shard that admission outcomes
// differ across shards.
func testConfig(parallel int) Config {
	return Config{
		City: workload.CityScenario{
			Rows: 2, Cols: 2, NodesPerShard: 12,
			TotalRate: 0.3, Profile: workload.CityHotspot, HotspotBoost: 4,
		},
		Template:  workload.SessionTemplate{Name: "fab", Tasks: 3, Scale: 1.0},
		HoldMean:  30,
		Horizon:   150,
		Warmup:    30,
		Organizer: core.DefaultOrganizerConfig,
		Parallel:  parallel,
		Seed:      7,
	}
}

func TestRunSmoke(t *testing.T) {
	res, err := Run(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 4 {
		t.Fatalf("want 4 shard results, got %d", len(res.Shards))
	}
	if res.City.Arrivals == 0 {
		t.Fatal("city saw no arrivals: horizon too short or rates broken")
	}
	if res.City.Admitted+res.City.Blocked != res.City.Arrivals {
		t.Fatalf("admission invariant broken: %d + %d != %d",
			res.City.Admitted, res.City.Blocked, res.City.Arrivals)
	}
	if res.City.Nodes != 4*12 {
		t.Fatalf("city node count = %d, want 48", res.City.Nodes)
	}
}

// TestParallelDeterminism is the fabric's core contract: the whole
// Result — every shard's stats and the merged city view — is
// bit-identical whether shards run sequentially or across any pool
// width.
func TestParallelDeterminism(t *testing.T) {
	base, err := Run(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Run(testConfig(workers))
		if err != nil {
			t.Fatalf("parallel %d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("parallel %d diverged from sequential run", workers)
		}
	}
}

// TestMergeMatchesShardFold verifies the city view is exactly the
// in-order fold of the per-shard stats — no hidden aggregation path.
func TestMergeMatchesShardFold(t *testing.T) {
	res, err := Run(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var want session.Stats
	for i := range res.Shards {
		st := res.Shards[i].Stats
		want.Merge(&st)
	}
	if !reflect.DeepEqual(want, res.City) {
		t.Fatalf("city stats != in-order shard fold\ncity: %+v\nfold: %+v", res.City, want)
	}
	var counted int
	for i := range res.Shards {
		counted += res.Shards[i].Stats.Arrivals
	}
	if counted != res.City.Arrivals {
		t.Fatalf("city arrivals %d != sum of shard arrivals %d", res.City.Arrivals, counted)
	}
}

// TestHotspotSkew checks the load calibration end to end: the centre-
// weighted shards of a hotspot city must actually see more arrivals
// than the light shards, while the calibrated rates sum to TotalRate.
func TestHotspotSkew(t *testing.T) {
	cfg := testConfig(4)
	cfg.City.Rows, cfg.City.Cols = 3, 3
	cfg.City.Profile = workload.CityHotspot
	cfg.City.HotspotBoost = 8
	cfg.City.TotalRate = 0.45
	var sum float64
	for s := 0; s < cfg.City.Shards(); s++ {
		sum += cfg.City.ShardRate(s)
	}
	if math.Abs(sum-cfg.City.TotalRate) > 1e-12 {
		t.Fatalf("shard rates sum to %g, want %g", sum, cfg.City.TotalRate)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	centre := res.Shards[4] // (1,1) of the 3x3 grid
	var corner = res.Shards[0]
	if centre.Rate <= corner.Rate {
		t.Fatalf("hotspot rate %g not above corner rate %g", centre.Rate, corner.Rate)
	}
	if centre.Stats.Arrivals <= corner.Stats.Arrivals {
		t.Fatalf("hotspot saw %d arrivals, corner %d: skew did not materialize",
			centre.Stats.Arrivals, corner.Stats.Arrivals)
	}
}

// TestChurnWiring checks that the per-shard churn stream is actually
// plumbed through: a city with churn must record node leaves.
func TestChurnWiring(t *testing.T) {
	cfg := testConfig(2)
	cfg.ChurnPerHour = 720 // one leave every 5 s per shard
	cfg.ChurnDownMean = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.City.NodeLeaves == 0 {
		t.Fatal("churn configured but no node leaves recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.City.Rows = 0 },
		func(c *Config) { c.City.TotalRate = 0 },
		func(c *Config) { c.City.Profile = "ring" },
		func(c *Config) { c.HoldMean = 0 },
		func(c *Config) { c.ChurnPerHour = 60; c.ChurnDownMean = 0 },
	}
	for i, mutate := range cases {
		cfg := testConfig(1)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestShardSeedDecorrelation guards against the seed-lattice trap: the
// sweep runner gives replication r the consecutive base seed seed+r, so
// a plain Seed+shard derivation would make replication r's shard s+1
// identical to replication r+1's shard s. With the splitmix derivation,
// cities at consecutive base seeds must share no shard outcome.
func TestShardSeedDecorrelation(t *testing.T) {
	cfgA := testConfig(2)
	cfgB := testConfig(2)
	cfgB.Seed = cfgA.Seed + 1
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(a.Shards); i++ {
		if reflect.DeepEqual(a.Shards[i+1].Stats, b.Shards[i].Stats) {
			t.Fatalf("seed %d shard %d == seed %d shard %d: shard substreams are correlated across replications",
				cfgA.Seed, i+1, cfgB.Seed, i)
		}
	}
	for s := 0; s < 4; s++ {
		if shardSeed(1, s+1) == shardSeed(2, s) {
			t.Fatalf("shardSeed lattice collision at shard %d", s)
		}
	}
}
