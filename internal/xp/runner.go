package xp

import (
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/trace"
)

// nan marks "no observation" in a replication's metric vector; the
// Accumulator skips NaN elements when building Samples.
var nan = math.NaN()

func isNaN(x float64) bool { return math.IsNaN(x) }

// Runner executes independent jobs across the shared bounded worker
// pool (internal/par). Workers is the pool width; values <= 1 run jobs
// sequentially on the calling goroutine. Jobs must not share mutable
// state: the sweep layer above hands each replication its own seed and
// rand.Rand, which is what makes results independent of the pool width.
type Runner struct {
	Workers int
}

// Do runs job(0) .. job(n-1), each exactly once, and returns the
// lowest-index error (nil if every job succeeded) — par.Do's contract.
func (r Runner) Do(n int, job func(i int) error) error {
	return par.Do(n, r.Workers, job)
}

// Rep identifies one replication of a sweep point and carries its
// private deterministic random source. Replication r always uses
// Seed = cfg.Seed + r, so any experiment body that derives all of its
// randomness from Rep produces the same numbers at any parallelism.
type Rep struct {
	// Index is the replication index within the sweep point (0-based).
	Index int
	// Seed is cfg.Seed + Index.
	Seed int64
	// Rng is seeded with Seed and owned exclusively by this
	// replication; bodies may consume it freely.
	Rng *rand.Rand
	// Trace is this replication's private flight recorder, non-nil only
	// when Config.Trace is set. It writes into a journal scope keyed by
	// the replication's fixed (point, rep) slot, so the assembled JSONL
	// is byte-identical at any parallelism — the trace twin of the
	// Accumulator's slot indexing.
	Trace *trace.Recorder
}

// sweep is the shared declaration of every experiment's measurement
// grid: a list of sweep points crossed with reps replications per
// point. body runs once per (point, replication) pair — fanned out
// across cfg.Parallel workers — and returns one metric vector, which
// lands in a fixed (point, rep) slot of the returned Accumulator.
// Aggregation happens after the fan-in, in slot order, so tables built
// from the result are bit-identical at any parallelism level. Use NaN
// elements for "no observation in this replication".
func sweep[P any](cfg Config, reps int, points []P, body func(p P, rep Rep) ([]float64, error)) (*metrics.Accumulator, error) {
	acc := metrics.NewAccumulator(len(points), reps)
	n := len(points) * reps
	err := Runner{Workers: cfg.Parallel}.Do(n, func(i int) error {
		pi, ri := i/reps, i%reps
		seed := cfg.Seed + int64(ri)
		rep := Rep{Index: ri, Seed: seed, Rng: newRng(seed)}
		if cfg.Trace != nil {
			rep.Trace = trace.NewRecorder(cfg.Trace.Scope(trace.ScopeName(cfg.TraceGroup, i)))
		}
		vec, err := body(points[pi], rep)
		if err != nil {
			return err
		}
		acc.Put(pi, ri, vec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}
