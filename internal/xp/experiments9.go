package xp

import (
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/session"
	"repro/internal/workload"
)

// The chaos experiments (E25-E27) run the open system against the
// deterministic fault injector (internal/faults): message loss (i.i.d.
// and bursty), duplication, node freezes and transient partitions. They
// quantify what the partial-failure hardening buys — blind
// retransmission with backoff (internal/proto), receiver-side
// deduplication, and the reservation-reconciliation sweep
// (internal/session). Like every table they are golden-pinned: the
// injector draws from private seeded rngs, so a chaos run is as
// bit-reproducible as a clean one.

// chaosOutcome bundles one faulted replication with the overhead
// counters its tables report.
type chaosOutcome struct {
	Stats *session.Stats
	// Retx and Dups are the cluster-wide reliability-layer totals —
	// retransmissions issued and duplicate deliveries suppressed — read
	// from the run's unified counter snapshot (Stats.Counters), which
	// replaced the old loop summing per-node accessors by hand.
	Retx, Dups uint64
	// Faults is what the injector actually did (zero without a plan).
	Faults faults.Stats
}

// chaosRun drives one open-system replication with an optional retry
// configuration and fault plan. The injector's horizon is the session
// horizon, so the plan heals before the drain and leak accounting
// isolates what the faults orphaned.
func chaosRun(seed int64, nodes int, retry proto.RetryConfig, plan *faults.Plan, cfg session.Config) (*chaosOutcome, error) {
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = nodes
	scfg.Retry = retry
	sc, err := workload.Build(scfg)
	if err != nil {
		return nil, err
	}
	var inj *faults.Injector
	if plan != nil {
		inj, err = faults.New(seed, cfg.Horizon, sc.Cluster.Nodes(), *plan)
		if err != nil {
			return nil, err
		}
		cfg.Faults = inj
	}
	eng, err := session.New(sc.Cluster, cfg, seed)
	if err != nil {
		return nil, err
	}
	st, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &chaosOutcome{
		Stats: st,
		Retx:  st.Counters.Get(obs.Retransmissions),
		Dups:  st.Counters.Get(obs.Duplicates),
	}
	if inj != nil {
		out.Faults = inj.Stats
	}
	return out, nil
}

// chaosFormationConfig is the admission-isolating session configuration
// E25/E26 share: a tight two-round formation deadline (so a lost
// handshake message costs the admission instead of hiding behind
// renegotiation retries), no operation-phase monitor and no adaptation
// (so the only moving part is the formation handshake), and a periodic
// reconciliation sweep reclaiming whatever dropped releases orphan.
func chaosFormationConfig(slow bool, quick bool, tmpl workload.SessionTemplate) session.Config {
	horizon, warmup := openHorizon(quick)
	ocfg := core.DefaultOrganizerConfig
	ocfg.MaxRounds = 2
	ocfg.Monitor = false
	ocfg.Reconfigure = false
	return session.Config{
		Arrivals:       arrival.Poisson{Rate: 0.1},
		NewService:     tmpl.Instantiate,
		HoldMean:       40,
		Horizon:        horizon,
		Warmup:         warmup,
		Organizer:      ocfg,
		ReconcileEvery: 10,
		SlowPath:       slow,
	}
}

// E25LossRetry sweeps i.i.d. message loss and compares three arms per
// seed: a clean run (no faults), the bare protocol under loss, and the
// hardened protocol (3 transmissions, exponential backoff with
// deterministic jitter, receiver dedup) under the same loss. The
// recovered column is the fraction of the admission lost to the faults
// that retransmission wins back — the headline robustness number.
func E25LossRetry(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E25 admission under message loss: blind retransmission vs bare protocol",
		"loss", "adm-clean", "adm-bare", "adm-retry", "recovered", "retx", "dup-drops")
	losses := []float64{0.05, 0.1, 0.2}
	if cfg.Quick {
		losses = []float64{0.1, 0.2}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, losses, func(loss float64, rep Rep) ([]float64, error) {
		tmpl := workload.SessionTemplate{Name: "e25", Tasks: 3, Scale: 1.0}
		mk := func() session.Config { return chaosFormationConfig(cfg.SlowPath, cfg.Quick, tmpl) }
		clean, err := chaosRun(rep.Seed, 16, proto.RetryConfig{}, nil, mk())
		if err != nil {
			return nil, err
		}
		plan := &faults.Plan{Loss: loss}
		bare, err := chaosRun(rep.Seed, 16, proto.RetryConfig{}, plan, mk())
		if err != nil {
			return nil, err
		}
		traced := mk()
		traced.Trace = rep.Trace
		retry, err := chaosRun(rep.Seed, 16, proto.DefaultRetryConfig, plan, traced)
		if err != nil {
			return nil, err
		}
		return []float64{
			clean.Stats.AdmissionRatio(), bare.Stats.AdmissionRatio(),
			retry.Stats.AdmissionRatio(),
			float64(retry.Retx), float64(retry.Dups),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, loss := range losses {
		s := acc.Point(i)
		admClean, admBare, admRetry := s[0].Mean(), s[1].Mean(), s[2].Mean()
		recovered := 1.0 // nothing was lost, so nothing was left unrecovered
		if admClean > admBare {
			recovered = (admRetry - admBare) / (admClean - admBare)
		}
		t.AddRow(loss, metrics.Ratio(admClean, 1), metrics.Ratio(admBare, 1),
			metrics.Ratio(admRetry, 1), metrics.Ratio(recovered, 1),
			s[3].Mean(), s[4].Mean())
	}
	horizon, _ := openHorizon(cfg.Quick)
	t.Note("16 nodes; 3-task sessions at 0.10/s, holding 40s, horizon %gs; formation deadline 2 rounds, monitor off; %d seeds per row", horizon, reps)
	t.Note("retry = 3 transmissions, 50/100ms backoff with deterministic jitter, receiver dedup; recovered = share of fault-lost admission won back")
	return t, nil
}

// E26BurstLoss holds the mean drop rate fixed and changes only its
// shape: i.i.d. loss vs an on/off burst process (90%% loss during ON
// phases of mean 2s, calibrated OFF dwell for the same long-run mean).
// Retransmission backoff is bounded well under a burst, so all three
// transmissions of a handshake can die inside one ON phase — equal mean
// loss does not mean equal admission.
func E26BurstLoss(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E26 loss shape at equal mean drop rate",
		"shape", "admission", "qos-dist", "drops", "retx", "dup-drops")
	shapes := []string{"iid", "burst"}
	const meanLoss = 0.1
	// Burst ON fraction f solves LossOn*f = meanLoss: with LossOn 0.9
	// and MeanOn 2s, f = 1/9 so MeanOff = 8*MeanOn = 16s.
	plans := map[string]*faults.Plan{
		"iid":   {Loss: meanLoss},
		"burst": {Burst: &faults.BurstLoss{LossOn: 0.9, MeanOn: 2, MeanOff: 16}},
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, shapes, func(shape string, rep Rep) ([]float64, error) {
		tmpl := workload.SessionTemplate{Name: "e26", Tasks: 3, Scale: 1.0}
		scfg := chaosFormationConfig(cfg.SlowPath, cfg.Quick, tmpl)
		scfg.Trace = rep.Trace
		out, err := chaosRun(rep.Seed, 16, proto.DefaultRetryConfig, plans[shape], scfg)
		if err != nil {
			return nil, err
		}
		return []float64{
			out.Stats.AdmissionRatio(), out.Stats.DistanceAvg,
			float64(out.Faults.Drops), float64(out.Retx), float64(out.Dups),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, shape := range shapes {
		s := acc.Point(i)
		t.AddRow(shape, metrics.Ratio(s[0].Mean(), 1), s[1].Mean(),
			s[2].Mean(), s[3].Mean(), s[4].Mean())
	}
	t.Note("both shapes drop %.0f%% of deliveries in the long run; burst = 90%% loss in ON phases of mean 2s (OFF mean 16s)", meanLoss*100)
	t.Note("retry on in both arms (same schedule as E25); workload as E25")
	return t, nil
}

// E27PartitionHeal opens periodic 2-way splits of growing length under
// the full protocol path — operation-phase heartbeat monitor and
// reconfiguration on, retry on, no adaptation engine. Members across
// the cut go silent, the organizer reconfigures onto its own side, and
// the reservations stranded on the far side (their releases were cut
// too) are reclaimed by the reconciliation sweep once the split heals.
func E27PartitionHeal(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E27 transient partitions: reconfiguration and reservation reclamation",
		"part-len", "admission", "qos-dist", "reconf/h", "member-fail", "reclaimed")
	lens := []float64{0, 10, 20, 40}
	if cfg.Quick {
		lens = []float64{0, 20}
	}
	horizon, _ := openHorizon(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, lens, func(plen float64, rep Rep) ([]float64, error) {
		tmpl := workload.SessionTemplate{Name: "e27", Tasks: 3, Scale: 1.0}
		scfg := chaosFormationConfig(cfg.SlowPath, cfg.Quick, tmpl)
		// Full protocol path: default formation deadline, monitor and
		// reconfiguration on — the partition is an operation-phase event.
		scfg.Organizer = core.DefaultOrganizerConfig
		var plan *faults.Plan
		if plen > 0 {
			plan = &faults.Plan{Partition: &faults.PartitionPlan{K: 2, Every: 60, Len: plen}}
		}
		out, err := chaosRun(rep.Seed, 16, proto.DefaultRetryConfig, plan, scfg)
		if err != nil {
			return nil, err
		}
		st := out.Stats
		return []float64{
			st.AdmissionRatio(), st.DistanceAvg,
			st.ReconfigPerHour(horizon),
			float64(st.MemberFailures), float64(st.Reclaimed()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, plen := range lens {
		s := acc.Point(i)
		t.AddRow(plen, metrics.Ratio(s[0].Mean(), 1), s[1].Mean(),
			s[2].Mean(), s[3].Mean(), s[4].Mean())
	}
	t.Note("2-way splits every 60s for part-len seconds, group membership re-hashed per window; retry on; monitor+reconfigure on, no adaptation engine")
	t.Note("reclaimed = orphaned reservations released by the reconciliation sweep (every 10s and after the drain); %d seeds per row", reps)
	return t, nil
}
