package xp

import (
	"strconv"
	"testing"
)

// TestE17ParallelDeterminism is the open-system half of the sweep
// engine's core contract: a long-horizon churn simulation, fanned out
// across workers, renders byte-identical tables at any pool width —
// every arrival time, holding time and churn victim comes from rngs the
// replication owns.
func TestE17ParallelDeterminism(t *testing.T) {
	tables := map[int]string{}
	for _, par := range []int{1, 8} {
		cfg := Config{Seed: 3, Repeats: 2, Quick: true, Parallel: par}
		tbl, err := E17OfferedLoad(cfg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		tables[par] = tbl.String()
	}
	if tables[1] != tables[8] {
		t.Errorf("E17 table differs between parallel 1 and 8:\n--- 1 ---\n%s--- 8 ---\n%s", tables[1], tables[8])
	}
}

// TestE17LoadMonotonicity: offered load is a real axis — more arrivals
// per second must not raise the admission ratio, and utilization must
// not fall (quick config, two load points).
func TestE17LoadMonotonicity(t *testing.T) {
	tbl, err := E17OfferedLoad(Config{Seed: 1, Repeats: 2, Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("expected >= 2 load points, got %d", len(tbl.Rows))
	}
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	// admission column 2 ("97.3%"), cpu-util column 7.
	adm := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[2][:len(row[2])-1], 64)
		if err != nil {
			t.Fatalf("bad admission cell %q: %v", row[2], err)
		}
		return v
	}
	util := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("bad util cell %q: %v", row[7], err)
		}
		return v
	}
	if adm(last) > adm(first) {
		t.Errorf("admission rose with load: %.1f%% at low vs %.1f%% at high", adm(first), adm(last))
	}
	if util(last) < util(first) {
		t.Errorf("cpu utilization fell with load: %.3f at low vs %.3f at high", util(first), util(last))
	}
}

// TestE19ChurnCostsReconfigurations: with node churn on, the monitor
// must detect silent members and renegotiate — the reconfiguration
// counters separate E19 from a closed world that merely re-runs E17.
func TestE19ChurnCostsReconfigurations(t *testing.T) {
	tbl, err := E19CombinedChurn(Config{Seed: 1, Repeats: 2, Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, churned := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if base[3] != "0.0" {
		t.Errorf("no-churn row reports reconfigurations: %v", base)
	}
	reconf, err := strconv.ParseFloat(churned[3], 64)
	if err != nil {
		t.Fatalf("bad reconf cell %q: %v", churned[3], err)
	}
	leaves, err := strconv.ParseFloat(churned[5], 64)
	if err != nil {
		t.Fatalf("bad leaves cell %q: %v", churned[5], err)
	}
	if leaves == 0 {
		t.Fatal("churned row saw no node leaves; the sweep exercises nothing")
	}
	if reconf == 0 {
		t.Error("churn produced node leaves but zero reconfigurations; is the monitor wired?")
	}
}
