package xp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/workload"
)

// E14EnergyDepletion exercises the battery model: coalition members are
// battery-powered and drain over time; the paper motivates cooperation
// partly by "battery energy loss" (Section 7), and a realistic
// deployment must survive helpers dying of exhaustion. The organizer's
// monitor treats an exhausted member like any failed member and
// renegotiates among the survivors (which include a mains-powered
// access point).
func E14EnergyDepletion(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E14 operation under battery depletion",
		"drain-rate", "first-death-s", "deaths@300s", "reconfigs", "served@300s")
	rates := []float64{0, 5, 15, 40}
	if cfg.Quick {
		rates = []float64{0, 15}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, rates, func(rate float64, rep Rep) ([]float64, error) {
		fd, d, rc, sv, err := energyRun(rep.Seed, rate)
		if err != nil {
			return nil, err
		}
		if fd < 0 {
			fd = nan // no helper died in this replication
		}
		return []float64{fd, d, rc, sv}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, rate := range rates {
		s := acc.Point(i)
		fdCell := "-"
		if s[0].N() > 0 {
			fdCell = fmt.Sprintf("%.1f", s[0].Mean())
		}
		t.AddRow(rate, fdCell, s[1].Mean(), s[2].Mean(), metrics.Ratio(s[3].Mean(), 1))
	}
	t.Note("8 nodes: battery-powered phones/PDAs/laptops + 1 mains access point; 3 tasks at 1.2x; %d seeds per row", reps)
	t.Note("drain in energy units per second; laptops carry 4000 units, phones 400")
	return t, nil
}

// E15QualityUpgrade exercises the run-time adaptation extension
// (Organizer.TryImprove): a coalition formed under scarcity upgrades its
// QoS levels when stronger nodes later join the neighbourhood —
// Section 4's "dynamically change the executing quality level".
func E15QualityUpgrade(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E15 run-time quality upgrade on arrival of stronger nodes",
		"laptops-arriving", "dist-before", "dist-after", "upgrades", "util-before", "util-after")
	arrivals := []int{0, 1, 2, 4}
	if cfg.Quick {
		arrivals = []int{0, 2}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, arrivals, func(k int, rep Rep) ([]float64, error) {
		before, after, upgrades, utilB, utilA, err := upgradeRun(rep.Seed, k)
		if err != nil {
			return nil, err
		}
		return []float64{before, after, upgrades, utilB, utilA}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range arrivals {
		s := acc.Point(i)
		t.AddRow(k, s[0].Mean(), s[1].Mean(), s[2].Mean(), s[3].Mean(), s[4].Mean())
	}
	t.Note("4 phones form a degraded 2-task coalition; k laptops arrive at t=10, TryImprove at t=12; %d seeds per row", reps)
	t.Note("TryImprove is an extension realizing the paper's run-time adaptation sketch (DESIGN.md)")
	return t, nil
}

func upgradeRun(seed int64, laptops int) (distBefore, distAfter, upgrades, utilBefore, utilAfter float64, err error) {
	cl := core.NewCluster(seed, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	const phones = 4
	for i := 0; i < phones; i++ {
		if _, aerr := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), workload.Phone, core.GridPlacement(i, phones+laptops, 10))); aerr != nil {
			return 0, 0, 0, 0, 0, aerr
		}
	}
	svc := workload.StreamService("e15", 2, 0.5)
	var first *core.Result
	org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if first == nil {
			first = r
		}
	})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	cl.Eng.At(10, func() {
		for j := 0; j < laptops; j++ {
			id := radio.NodeID(phones + j)
			if _, aerr := cl.AddNode(workload.NodeSpecFor(id, workload.Laptop, core.GridPlacement(int(id), phones+laptops, 10))); aerr != nil {
				err = aerr
			}
		}
	})
	cl.Eng.At(12, org.TryImprove)
	cl.Run(20)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if first == nil || !first.Complete() {
		return 0, 0, 0, 0, 0, fmt.Errorf("xp: e15 initial formation failed (seed %d)", seed)
	}
	distBefore = first.MeanDistance()
	utilBefore = meanUtility(svc, first)
	finalRes := &core.Result{ServiceID: svc.ID, Assigned: org.Snapshot()}
	distAfter = finalRes.MeanDistance()
	utilAfter = meanUtility(svc, finalRes)
	return distBefore, distAfter, float64(org.Upgrades), utilBefore, utilAfter, nil
}

func energyRun(seed int64, drain float64) (firstDeath, deaths, reconfs, served float64, err error) {
	cl := core.NewCluster(seed, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	profiles := []workload.Profile{
		workload.Phone, workload.PDA, workload.Laptop, workload.PDA,
		workload.Laptop, workload.Phone, workload.PDA, workload.AccessPoint,
	}
	for i, p := range profiles {
		spec := workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, len(profiles), 10))
		// Helpers drain; the requesting user's device (node 0, attended
		// and charged) and the mains access point do not.
		if i != 0 && p.Name != "accesspoint" {
			spec.BatteryDrain = drain
		}
		if _, err := cl.AddNode(spec); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	svc := workload.StreamService("e14", 3, 1.2)
	// Without the consolidation pass, zero-distance ties break toward
	// low node IDs, so the initial coalition lands on battery-powered
	// helpers; the interesting dynamics are the deaths and the monitor's
	// migration toward longer-lived nodes.
	ocfg := core.DefaultOrganizerConfig
	ocfg.Policy = core.SelectionPolicy{DistanceEps: 0.05, UseCommCost: true}
	var first *core.Result
	org, err := cl.Submit(0, 0, svc, ocfg, func(r *core.Result) {
		if first == nil {
			first = r
		}
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	// Track deaths by sampling node liveness each second.
	firstDeath = -1
	down := make(map[radio.NodeID]bool)
	var tick func()
	tick = func() {
		for i := range profiles {
			id := radio.NodeID(i)
			if cl.Medium.Down(id) && !down[id] {
				down[id] = true
				if firstDeath < 0 {
					firstDeath = cl.Eng.Now()
				}
			}
		}
		if cl.Eng.Now() < 299 {
			cl.Eng.After(1, tick)
		}
	}
	cl.Eng.After(1, tick)
	cl.Run(300)
	if first == nil {
		return 0, 0, 0, 0, fmt.Errorf("xp: e14 formation incomplete (seed %d)", seed)
	}
	served = float64(len(org.Snapshot())) / float64(len(svc.Tasks))
	return firstDeath, float64(len(down)), float64(org.Reconfigurations), served, nil
}
