package xp

import (
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/session"
	"repro/internal/workload"
)

// The open-system experiments (E17-E19) leave the one-shot world behind:
// sessions arrive continuously from a seeded arrival process, negotiate,
// operate for a holding time, and dissolve, while E19 additionally
// churns helper nodes off the air. All three run the session lifecycle
// engine on the shared virtual clock and report steady-state statistics
// over [warmup, horizon].

// openRun builds a fresh neighbourhood (mix nil = the default
// population) and drives one open-system replication to its horizon.
func openRun(seed int64, nodes int, mix workload.Mix, cfg session.Config) (*session.Stats, error) {
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = nodes
	scfg.Mix = mix
	sc, err := workload.Build(scfg)
	if err != nil {
		return nil, err
	}
	eng, err := session.New(sc.Cluster, cfg, seed)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// openHorizon returns the (horizon, warmup) pair for the configuration
// size: long enough past warmup that offered load, not the initial
// transient, dominates the averages.
func openHorizon(quick bool) (horizon, warmup float64) {
	if quick {
		return 300, 60
	}
	return 1200, 120
}

// E17OfferedLoad sweeps the session arrival rate at fixed holding time
// over a 16-node neighbourhood: the open-system analogue of E2's load
// axis. As offered load (arrival rate x holding time, in erlangs of
// concurrent sessions) grows past what the population can carry,
// admission falls, the steady-state QoS distance of the sessions that
// do get in degrades, and per-resource utilization saturates.
func E17OfferedLoad(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E17 steady-state admission and QoS vs offered load",
		"rate/s", "offered-erl", "admission", "blocking", "live-avg", "live-peak",
		"qos-dist", "cpu-util", "net-util")
	rates := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	if cfg.Quick {
		rates = []float64{0.05, 0.2}
	}
	const holdMean = 40.0
	horizon, warmup := openHorizon(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, rates, func(rate float64, rep Rep) ([]float64, error) {
		tmpl := workload.SessionTemplate{Name: "e17", Tasks: 3, Scale: 1.0}
		st, err := openRun(rep.Seed, 16, nil, session.Config{
			Arrivals:   arrival.Poisson{Rate: rate},
			NewService: tmpl.Instantiate,
			HoldMean:   holdMean,
			Horizon:    horizon,
			Warmup:     warmup,
			Organizer:  core.DefaultOrganizerConfig,
			SlowPath:   cfg.SlowPath,
			Trace:      rep.Trace,
		})
		if err != nil {
			return nil, err
		}
		return []float64{
			st.AdmissionRatio(), st.BlockingRatio(),
			st.LiveAvg, float64(st.PeakLive), st.DistanceAvg,
			st.Util[resource.CPU], st.Util[resource.NetBW],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, rate := range rates {
		s := acc.Point(i)
		t.AddRow(rate, rate*holdMean,
			metrics.Ratio(s[0].Mean(), 1), metrics.Ratio(s[1].Mean(), 1),
			s[2].Mean(), s[3].Mean(), s[4].Mean(), s[5].Mean(), s[6].Mean())
	}
	t.Note("16 nodes; 3-task sessions at 1.0x demand, exponential holding mean %gs; horizon %gs, warmup %gs; %d seeds per row", holdMean, horizon, warmup, reps)
	t.Note("admitted = all tasks assigned on first formation; blocked sessions dissolve immediately")
	return t, nil
}

// E18ArrivalShapes compares arrival processes at equal mean offered
// load: the same number of sessions per hour arrives uniformly,
// diurnally (sinusoid), in periodic bursts, or modulated by an on/off
// Markov chain. Mean load alone does not determine steady-state
// quality — the burstier the process, the deeper the transient
// overloads and the higher the blocking at equal mean.
func E18ArrivalShapes(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E18 arrival shape at equal mean load",
		"shape", "arrivals", "admission", "live-avg", "live-peak", "qos-dist", "cpu-util")
	const mean = 0.15
	const holdMean = 40.0
	horizon, warmup := openHorizon(cfg.Quick)
	// Four full cycles inside the measurement window [warmup, horizon]:
	// over an integer number of periods the sinusoid integrates to its
	// mean and the burst windows cover exactly their calibrated
	// fraction, whatever the phase — so the deterministic shapes offer
	// *exactly* equal in-window load, not just equal long-run load.
	period := (horizon - warmup) / 4
	shapes := []string{"constant", "diurnal", "burst", "mmpp"}
	if cfg.Quick {
		shapes = []string{"constant", "burst"}
	}
	process := func(shape string) arrival.Process {
		switch shape {
		case "constant":
			return arrival.Poisson{Rate: mean}
		case "diurnal":
			return arrival.Inhomogeneous{Profile: arrival.Diurnal{Mean: mean, Amplitude: 0.9, Period: period}}
		case "burst":
			// 10% of each period at 7.75x the mean rate (31x the quiet
			// base of mean/4), mean preserved.
			return arrival.Inhomogeneous{Profile: arrival.Burst{
				Base: mean / 4, Burst: mean/4 + (3.0/4.0)*mean*10,
				Period: period, BurstLen: period / 10,
			}}
		default: // mmpp
			// On one third of the time at 3x the mean, off otherwise.
			return &arrival.MMPP{OnRate: 3 * mean, MeanOn: period / 3, MeanOff: 2 * period / 3}
		}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, shapes, func(shape string, rep Rep) ([]float64, error) {
		tmpl := workload.SessionTemplate{Name: "e18", Tasks: 3, Scale: 1.0}
		st, err := openRun(rep.Seed, 16, nil, session.Config{
			Arrivals:   process(shape),
			NewService: tmpl.Instantiate,
			HoldMean:   holdMean,
			Horizon:    horizon,
			Warmup:     warmup,
			Organizer:  core.DefaultOrganizerConfig,
			SlowPath:   cfg.SlowPath,
		})
		if err != nil {
			return nil, err
		}
		return []float64{
			float64(st.Arrivals), st.AdmissionRatio(),
			st.LiveAvg, float64(st.PeakLive), st.DistanceAvg,
			st.Util[resource.CPU],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, shape := range shapes {
		s := acc.Point(i)
		t.AddRow(shape, s[0].Mean(), metrics.Ratio(s[1].Mean(), 1),
			s[2].Mean(), s[3].Mean(), s[4].Mean(), s[5].Mean())
	}
	t.Note("all shapes calibrated to %.2f sessions/s mean (%.0f erlangs offered); period %gs, 4 full cycles in-window; %d seeds per row", mean, mean*holdMean, period, reps)
	t.Note("diurnal = sinusoid amplitude 0.9; burst = 10%% of period at 7.75x the mean; mmpp = on/off at 3x mean, on 1/3 of the time")
	return t, nil
}

// E19CombinedChurn runs service arrivals and node churn together: the
// paper's spontaneous neighbourhood where both the offered services and
// the helping devices come and go. Leave events take a helper off the
// air mid-coalition; the operation-phase monitor detects the silent
// member and renegotiates, so reconfiguration rate — not just admission
// — is the cost axis of node volatility.
func E19CombinedChurn(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E19 combined service and node churn",
		"leaves/h", "admission", "qos-dist", "reconf/h", "member-failures", "node-leaves", "live-avg")
	perHour := []float64{0, 30, 120, 360}
	if cfg.Quick {
		perHour = []float64{0, 120}
	}
	const rate = 0.1
	const holdMean = 40.0
	horizon, warmup := openHorizon(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, perHour, func(lph float64, rep Rep) ([]float64, error) {
		tmpl := workload.SessionTemplate{Name: "e19", Tasks: 3, Scale: 1.0}
		scfg := session.Config{
			Arrivals:   arrival.Poisson{Rate: rate},
			NewService: tmpl.Instantiate,
			HoldMean:   holdMean,
			Horizon:    horizon,
			Warmup:     warmup,
			Organizer:  core.DefaultOrganizerConfig,
			SlowPath:   cfg.SlowPath,
		}
		if lph > 0 {
			scfg.Churn = &session.ChurnConfig{
				Leave:    arrival.Poisson{Rate: lph / 3600},
				DownMean: 30,
			}
		}
		// No access-point giant (workload.ChurnMix): a leave event has
		// a real chance of hitting a serving member and forcing a
		// reconfiguration.
		st, err := openRun(rep.Seed, 16, workload.ChurnMix, scfg)
		if err != nil {
			return nil, err
		}
		return []float64{
			st.AdmissionRatio(), st.DistanceAvg,
			st.ReconfigPerHour(horizon),
			float64(st.MemberFailures), float64(st.NodeLeaves),
			st.LiveAvg,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, lph := range perHour {
		s := acc.Point(i)
		t.AddRow(lph, metrics.Ratio(s[0].Mean(), 1), s[1].Mean(),
			s[2].Mean(), s[3].Mean(), s[4].Mean(), s[5].Mean())
	}
	t.Note("16 nodes; %.2f sessions/s, holding %gs; leave victims rejoin after 30s mean downtime with soft state wiped", rate, holdMean)
	t.Note("organizer node 0 is churn-protected; reconf/h normalized to the %gs horizon; %d seeds per row", horizon, reps)
	return t, nil
}
