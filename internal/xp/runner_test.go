package xp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunnerDoRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		var ran [57]int32
		err := Runner{Workers: workers}.Do(len(ran), func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestRunnerDoReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := Runner{Workers: workers}.Do(20, func(i int) error {
			switch i {
			case 7:
				return errA
			case 15:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: got %v, want error from job 7", workers, err)
		}
	}
}

func TestSweepSeedsAndRngPerReplication(t *testing.T) {
	cfg := Config{Seed: 42, Parallel: 4}
	const reps = 6
	acc, err := sweep(cfg, reps, []string{"p0", "p1"}, func(p string, rep Rep) ([]float64, error) {
		if rep.Seed != cfg.Seed+int64(rep.Index) {
			return nil, fmt.Errorf("rep %d got seed %d", rep.Index, rep.Seed)
		}
		// The rng must be private and freshly seeded: its first draw is
		// a pure function of the seed.
		return []float64{rep.Rng.Float64()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < reps; r++ {
		a, b := acc.Get(0, r), acc.Get(1, r)
		if a[0] != b[0] {
			t.Errorf("rep %d: points drew different firsts (%v vs %v) from the same seed", r, a[0], b[0])
		}
	}
}

// TestSweepDeterminismAcrossParallelism is the tentpole's contract: every
// experiment table is byte-identical whether its replications run
// sequentially or across 4 or 8 workers. E10 and E28 are excluded
// because they schedule real goroutines (and, for E28, real sockets)
// against wall-clock timers and are not guaranteed reproducible even
// run-to-run at a fixed parallelism.
func TestSweepDeterminismAcrossParallelism(t *testing.T) {
	for _, e := range All() {
		if e.ID == "E10" || e.ID == "E28" {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, par := range []int{1, 4, 8} {
				tbl, err := e.Run(Config{Seed: 1, Repeats: 2, Quick: true, Parallel: par})
				if err != nil {
					t.Fatalf("parallel=%d: %v", par, err)
				}
				got := tbl.String()
				if par == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("parallel=%d diverged from sequential:\n--- sequential ---\n%s--- parallel=%d ---\n%s",
						par, want, par, got)
				}
			}
		})
	}
}
