package xp

import (
	"repro/internal/adapt"
	"repro/internal/admit"
	"repro/internal/arrival"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/session"
	"repro/internal/workload"
)

// The admission-policy experiments (E29-E30) score the economic
// admission layer (internal/admit) against the clairvoyant oracle
// (baseline.Clairvoyant): every replication records its full arrival
// trace, the oracle's polynomial relaxation bounds the utility any
// policy could have extracted from that trace in hindsight, and the
// optimality gap 1 - achieved/bound says how much the online policy
// left on the table. Churn and fault injection stay off — the bound's
// accounting assumes clean, constant capacity (see baseline.Bound).

// admitRun drives one open-system replication like openRun, but with an
// admission policy installed, and scores the achieved admission-time
// utility against the clairvoyant bound of the recorded arrival trace.
// The fleet snapshot is taken before the run (clean capacities), and
// the bound's admission window is the policy's worst-case
// arrival-to-admission latency: queue MaxWait plus formation slack.
func admitRun(seed int64, nodes int, mix workload.Mix, cfg session.Config) (*session.Stats, float64, float64, error) {
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = nodes
	scfg.Mix = mix
	sc, err := workload.Build(scfg)
	if err != nil {
		return nil, 0, 0, err
	}
	adm := cfg.Admission.WithDefaults()
	tr := baseline.Trace{
		Horizon: cfg.Horizon,
		Window:  adm.MaxWait + 30,
	}
	for _, id := range sc.Cluster.Nodes() {
		tr.Nodes = append(tr.Nodes, baseline.NodeView{
			ID:  id,
			Res: resource.NewSet(sc.Cluster.Node(id).Res.Capacity()),
		})
	}
	eng, err := session.New(sc.Cluster, cfg, seed)
	if err != nil {
		return nil, 0, 0, err
	}
	st, err := eng.Run()
	if err != nil {
		return nil, 0, 0, err
	}
	for _, a := range eng.ArrivalTrace() {
		tr.Sessions = append(tr.Sessions, baseline.TraceSession{
			Arrive: a.T, Hold: a.Hold, Service: a.Svc,
		})
	}
	bound, err := baseline.Clairvoyant{}.Bound(&tr)
	if err != nil {
		return nil, 0, 0, err
	}
	return st, st.Admit.UtilitySum, bound, nil
}

// optGap is the optimality-gap column: the fraction of the clairvoyant
// bound the policy failed to extract, clamped to [0, 1]. A slack bound
// (or an empty trace) yields gap 0 rather than a negative artifact.
func optGap(utility, bound float64) float64 {
	if bound <= 0 {
		return 0
	}
	g := 1 - utility/bound
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// admitPoint is one (arrival rate, admission policy) cell of E29.
type admitPoint struct {
	rate   float64
	policy admit.Policy
}

// E29AdmissionPolicies crosses the E17 load sweep with the three
// admission policies and scores each cell against the clairvoyant
// bound. Block is the PR-9 baseline economy; queue trades latency for
// admission by letting blocked sessions wait out transient congestion;
// yield buys admission by degrading incumbents when the arrival's
// marginal utility exceeds the drift cost. The gap column is the
// differential claim: no policy extracts more utility than the oracle
// bound allows (gap >= 0 by construction, and benchgate pins gap <= 1).
func E29AdmissionPolicies(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E29 admission policy vs clairvoyant bound across offered load",
		"rate/s", "policy", "admission", "q-admit", "y-admit", "utility", "bound", "gap")
	rates := []float64{0.05, 0.2, 0.4}
	if cfg.Quick {
		rates = []float64{0.05, 0.2}
	}
	policies := []admit.Policy{admit.Block, admit.Queue, admit.Yield}
	var points []admitPoint
	for _, rate := range rates {
		for _, p := range policies {
			points = append(points, admitPoint{rate: rate, policy: p})
		}
	}
	const holdMean = 40.0
	horizon, warmup := openHorizon(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, points, func(p admitPoint, rep Rep) ([]float64, error) {
		scfg := session.Config{
			Arrivals:   arrival.Poisson{Rate: p.rate},
			NewService: workload.SessionTemplate{Name: "e29", Tasks: 3, Scale: 1.0}.Instantiate,
			HoldMean:   holdMean,
			Horizon:    horizon,
			Warmup:     warmup,
			Organizer:  core.DefaultOrganizerConfig,
			SlowPath:   cfg.SlowPath,
			Trace:      rep.Trace,
			Admission:  &admit.Config{Policy: p.policy},
		}
		if p.policy == admit.Yield {
			// Yield degrades incumbents through the adaptation engine;
			// churn repair config is moot (no churn here), but the
			// engine requires an owner for its ladder bookkeeping.
			scfg.Organizer = adaptOrganizer()
			scfg.Adapt = &adapt.Config{OnChurn: adapt.DegradeToFit}
		}
		st, utility, bound, err := admitRun(rep.Seed, 16, nil, scfg)
		if err != nil {
			return nil, err
		}
		return []float64{
			st.AdmissionRatio(),
			float64(st.Admit.QueueAdmits), float64(st.Admit.YieldAdmits),
			utility, bound, optGap(utility, bound),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		s := acc.Point(i)
		t.AddRow(p.rate, p.policy.String(), metrics.Ratio(s[0].Mean(), 1),
			s[1].Mean(), s[2].Mean(), s[3].Mean(), s[4].Mean(), s[5].Mean())
	}
	t.Note("16 nodes; 3-task sessions at 1.0x demand, exponential holding mean %gs; horizon %gs, warmup %gs; %d seeds per row", holdMean, horizon, warmup, reps)
	t.Note("utility = sum of admission-time eq. 3 utility over all admitted sessions (full horizon); bound = clairvoyant fractional-knapsack relaxation of the recorded trace; gap = 1 - utility/bound, clamped to [0, 1]")
	t.Note("queue: 30s max wait, 5s retry; yield: up to 8 incumbent degrade steps when marginal gain exceeds drift cost; no churn or faults (bound validity)")
	return t, nil
}

// E30QueueVsYieldBurst drives the E23 burst shape through all three
// policies: deep transient overloads are exactly where the policies
// diverge. Queue rides the burst out — arrivals wait for the trough and
// admission recovers at a latency cost; yield meets the burst head-on —
// incumbents shed QoS (drift) to make room immediately. Block, the
// baseline, simply loses the burst's arrivals. The gap column keeps all
// three under the clairvoyant bound of the identical recorded trace.
func E30QueueVsYieldBurst(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E30 queue vs yield under burst overload",
		"policy", "admission", "q-admit", "expired", "y-admit", "reverted", "drift", "utility", "gap")
	policies := []admit.Policy{admit.Block, admit.Queue, admit.Yield}
	const mean = 0.15
	const holdMean = 40.0
	horizon, warmup := openHorizon(cfg.Quick)
	period := (horizon - warmup) / 4
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, policies, func(policy admit.Policy, rep Rep) ([]float64, error) {
		scfg := session.Config{
			// The E18/E23 burst shape: 10% of each period at 7.75x the
			// mean rate, mean preserved — deep transient overloads at
			// equal mean load.
			Arrivals: arrival.Inhomogeneous{Profile: arrival.Burst{
				Base: mean / 4, Burst: mean/4 + (3.0/4.0)*mean*10,
				Period: period, BurstLen: period / 10,
			}},
			NewService: workload.SessionTemplate{Name: "e30", Tasks: 3, Scale: 1.0}.Instantiate,
			HoldMean:   holdMean,
			Horizon:    horizon,
			Warmup:     warmup,
			Organizer:  adaptOrganizer(),
			SlowPath:   cfg.SlowPath,
			Trace:      rep.Trace,
			Admission:  &admit.Config{Policy: policy},
			// Full adaptation on every row so the rows differ only in
			// admission policy: yield's degrades and the pressure
			// trigger's degrades share one reclamation economy, and the
			// post-burst epoch scans upgrade both back. No node churn —
			// the clairvoyant bound requires constant capacity.
			Adapt: &adapt.Config{
				OnChurn:           adapt.DegradeToFit,
				DegradeOnPressure: true, UtilHigh: 0.85,
				UpgradeOnSlack: true, UtilLow: 0.6,
				Epoch: 10,
			},
		}
		st, utility, bound, err := admitRun(rep.Seed, 16, workload.ChurnMix, scfg)
		if err != nil {
			return nil, err
		}
		return []float64{
			st.AdmissionRatio(),
			float64(st.Admit.QueueAdmits), float64(st.Admit.Expired),
			float64(st.Admit.YieldAdmits), float64(st.Admit.YieldReverted),
			st.Adapt.MeanDrift(), utility, optGap(utility, bound),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		s := acc.Point(i)
		t.AddRow(policy.String(), metrics.Ratio(s[0].Mean(), 1),
			s[1].Mean(), s[2].Mean(), s[3].Mean(), s[4].Mean(),
			s[5].Mean(), s[6].Mean(), s[7].Mean())
	}
	t.Note("16 nodes, burst arrivals at %.2f sessions/s mean (10%% of each %gs period at 7.75x), holding %gs; %d seeds per row", mean, period, holdMean, reps)
	t.Note("all rows run degrade+upgrade adaptation (pressure 0.85, hysteresis 0.6, epoch 10s); queue: 30s max wait, 5s retry; drift = mean (departure - admission) distance; no churn or faults (bound validity)")
	return t, nil
}
