package xp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/workload"
)

// E6SelectionAblation isolates the paper's three selection criteria:
// distance only, distance + communication cost, and the full policy with
// member consolidation.
func E6SelectionAblation(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E6 selection-criteria ablation",
		"policy", "mean-dist", "total-commcost-s", "members", "acceptance")
	type policyCase struct {
		name string
		p    core.SelectionPolicy
	}
	policies := []policyCase{
		{"distance-only", core.SelectionPolicy{}},
		{"+comm-cost", core.SelectionPolicy{DistanceEps: 0.05, UseCommCost: true}},
		{"+consolidate (full)", core.SelectionPolicy{DistanceEps: 0.05, UseCommCost: true, Consolidate: true}},
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, policies, func(pol policyCase, rep Rep) ([]float64, error) {
		scfg := ablationScenario(rep.Seed)
		svc := workload.StreamService("e6", 6, 1.2)
		ocfg := core.DefaultOrganizerConfig
		ocfg.Policy = pol.p
		out, err := runCoalition(scfg, svc, ocfg, 0)
		if err != nil {
			return nil, err
		}
		var cc float64
		for _, a := range out.Result.Assigned {
			cc += a.CommCost
		}
		return []float64{
			out.Result.MeanDistance(),
			cc,
			float64(len(out.Result.Members())),
			float64(len(out.Result.Assigned)) / float64(len(svc.Tasks)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pol := range policies {
		s := acc.Point(i)
		t.AddRow(pol.name, s[0].Mean(), s[1].Mean(), s[2].Mean(), metrics.Ratio(s[3].Mean(), 1))
	}
	t.Note("16 nodes (no access point), 6 tasks at 1.2x demand, 2 ms/m propagation delay; %d seeds per policy", reps)
	return t, nil
}

// E7FailureReconfig kills coalition members mid-operation and measures
// how many tasks remain served with reconfiguration enabled versus
// disabled.
func E7FailureReconfig(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E7 reconfiguration under member failures",
		"failures", "served(reconfig)", "served(none)", "reconfigurations", "detected")
	kills := []int{1, 2, 3}
	if cfg.Quick {
		kills = []int{1}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, kills, func(k int, rep Rep) ([]float64, error) {
		servedOn, nre, nfail, err := failureRun(rep.Seed, k, true)
		if err != nil {
			return nil, err
		}
		servedOff, _, _, err := failureRun(rep.Seed, k, false)
		if err != nil {
			return nil, err
		}
		return []float64{servedOn, servedOff, nre, nfail}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range kills {
		s := acc.Point(i)
		t.AddRow(k, metrics.Ratio(s[0].Mean(), 1), metrics.Ratio(s[1].Mean(), 1),
			s[2].Mean(), s[3].Mean())
	}
	t.Note("12 nodes, 4-task service; members killed at t=5s, served fraction measured at t=40s; %d seeds per row", reps)
	return t, nil
}

func failureRun(seed int64, kills int, reconfig bool) (served, reconfs, failures float64, err error) {
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = 12
	sc, err := workload.Build(scfg)
	if err != nil {
		return 0, 0, 0, err
	}
	svc := workload.StreamService("e7", 4, 1.2)
	ocfg := core.DefaultOrganizerConfig
	ocfg.Reconfigure = reconfig
	var first *core.Result
	org, err := sc.Cluster.Submit(0, 0, svc, ocfg, func(r *core.Result) {
		if first == nil {
			first = r
		}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	sc.Cluster.Eng.At(5, func() {
		if first == nil {
			return
		}
		killed := 0
		for _, m := range first.Members() {
			if m == 0 {
				continue // never kill the organizer
			}
			sc.Cluster.FailNode(m)
			killed++
			if killed == kills {
				break
			}
		}
	})
	sc.Cluster.Run(40)
	if first == nil {
		return 0, 0, 0, fmt.Errorf("xp: e7 formation never completed (seed %d)", seed)
	}
	frac := float64(len(org.Snapshot())) / float64(len(svc.Tasks))
	return frac, float64(org.Reconfigurations), float64(org.Failures), nil
}

// E8Heterogeneity compares a phone requesting a demanding service in a
// phone-only neighbourhood against heterogeneous neighbourhoods.
func E8Heterogeneity(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E8 heterogeneity: who helps a weak device",
		"population", "acceptance", "mean-utility", "members", "remote-tasks")
	type popCase struct {
		name string
		mix  workload.Mix
	}
	pops := []popCase{
		{"8 phones", workload.UniformMix(workload.Phone)},
		{"7 phones + 1 laptop", workload.Mix{
			{Profile: workload.Phone, Weight: 7},
			{Profile: workload.Laptop, Weight: 1},
		}},
		{"mixed (default)", workload.DefaultMix},
		{"4 phones + 4 laptops", workload.Mix{
			{Profile: workload.Phone, Weight: 1},
			{Profile: workload.Laptop, Weight: 1},
		}},
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, pops, func(pop popCase, rep Rep) ([]float64, error) {
		scfg := workload.DefaultScenario(rep.Seed)
		scfg.Nodes = 8
		scfg.Mix = pop.mix
		svc := workload.StreamService("e8", 4, 2.0)
		out, err := runCoalition(scfg, svc, core.DefaultOrganizerConfig, 0)
		if err != nil {
			return nil, err
		}
		rem := 0
		for _, a := range out.Result.Assigned {
			if a.Node != 0 {
				rem++
			}
		}
		return []float64{
			float64(len(out.Result.Assigned)) / float64(len(svc.Tasks)),
			out.MeanUtility,
			float64(len(out.Result.Members())),
			float64(rem),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pop := range pops {
		s := acc.Point(i)
		t.AddRow(pop.name, metrics.Ratio(s[0].Mean(), 1), s[1].Mean(), s[2].Mean(), s[3].Mean())
	}
	t.Note("8 nodes, organizer always a phone, 4 tasks at 2.0x demand; %d seeds per row", reps)
	return t, nil
}

// E9DistanceConsistency property-checks the Section 6 evaluation over
// randomized admissible proposals: distance is 0 exactly at the preferred
// level, never negative, never above MaxDistance, and agrees with the
// user's lexicographic preference order on a large sampled fraction of
// comparable pairs. Each request case is one sweep point with its own
// replication rng, so the cases are independent and parallelizable.
func E9DistanceConsistency(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E9 evaluation-function consistency",
		"request", "samples", "range-violations", "zero-at-preferred", "dominance-violations", "lex-agreement")
	trials := 20000
	if cfg.Quick {
		trials = 2000
	}
	type reqCase struct {
		name string
		spec *qos.Spec
		req  qos.Request
	}
	cases := []reqCase{
		{"surveillance (S3.1)", workload.VideoSpec(), workload.SurveillanceRequest()},
		{"streaming", workload.VideoSpec(), workload.StreamingRequest("e9")},
		{"offload", workload.OffloadSpec(), workload.OffloadRequest("e9o")},
	}
	acc, err := sweep(cfg, 1, cases, func(c reqCase, rep Rep) ([]float64, error) {
		eval, err := qos.NewEvaluator(c.spec, &c.req)
		if err != nil {
			return nil, err
		}
		ladder, err := qos.BuildLadder(c.spec, &c.req, 4)
		if err != nil {
			return nil, err
		}
		// The sampling loop below runs 2*trials evaluations; the
		// compiled tables are bit-identical to eval.Distance on ladder
		// levels (the qos property test enforces ==), so the table is
		// unchanged while the loop stops allocating.
		comp, err := eval.Compile(ladder, nil)
		if err != nil {
			return nil, err
		}
		maxD := eval.MaxDistance()
		rangeViol, domViol := 0, 0
		agree, comparable := 0, 0

		dPref := comp.Distance(ladder.NewAssignment())
		zeroOK := 0.0
		if dPref == 0 {
			zeroOK = 1
		}

		randAssign := func() qos.Assignment {
			a := ladder.NewAssignment()
			for i := range a {
				a[i] = rep.Rng.Intn(len(ladder.Attrs[i].Choices))
			}
			return a
		}
		for i := 0; i < trials; i++ {
			a, b := randAssign(), randAssign()
			// The map-based evaluator rejected dependency-violating
			// proposals with an error; keep that guard (the current
			// specs declare no deps, so no sample is skipped today).
			if ok, _ := comp.DepsSatisfied(a); !ok {
				continue
			}
			if ok, _ := comp.DepsSatisfied(b); !ok {
				continue
			}
			da := comp.Distance(a)
			db := comp.Distance(b)
			if da < 0 || da > maxD+1e-9 {
				rangeViol++
			}
			// Dominance: a no deeper than b on every attribute and
			// strictly shallower somewhere must not evaluate worse.
			if dominates(a, b) && da > db+1e-9 {
				domViol++
			}
			// Lexicographic agreement over the user's importance order.
			if cmp := lexCompare(a, b); cmp != 0 {
				comparable++
				if (cmp < 0) == (da < db) && da != db {
					agree++
				}
			}
		}
		return []float64{float64(rangeViol), zeroOK, float64(domViol),
			float64(agree), float64(comparable)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		vec := acc.Get(i, 0)
		t.AddRow(c.name, trials, int(vec[0]), vec[1] != 0, int(vec[2]),
			metrics.Ratio(vec[3], vec[4]))
	}
	t.Note("dominance uses ladder depth (the user's own per-attribute preference order)")
	return t, nil
}

// dominates reports a <= b everywhere with a < b somewhere (ladder depth).
func dominates(a, b qos.Assignment) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// lexCompare compares two assignments in the user's importance order.
func lexCompare(a, b qos.Assignment) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// E10LiveVsSim runs the identical neighbourhood and service through the
// discrete-event simulator and the goroutine runtime and compares the
// resulting allocations. The live half schedules real goroutines against
// scaled wall-clock timers, so — uniquely in the suite — its rows are
// not guaranteed bit-identical across runs.
func E10LiveVsSim(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E10 live goroutine runtime vs simulator",
		"trial", "sim-members", "live-members", "same-assignment", "sim-dist", "live-dist")
	reps := repeats(cfg)
	// The live half races real goroutines against scaled wall-clock
	// timers; running replications concurrently would contend for CPU
	// and time them out, so this experiment always runs sequentially.
	cfg.Parallel = 1
	acc, err := sweep(cfg, reps, []int{0}, func(_ int, rep Rep) ([]float64, error) {
		simRes, err := e10Sim(rep.Seed)
		if err != nil {
			return nil, err
		}
		liveRes, err := e10Live(rep.Seed)
		if err != nil {
			return nil, err
		}
		same := 0.0
		if sameAssignment(simRes, liveRes) {
			same = 1
		}
		return []float64{
			float64(len(simRes.Members())),
			float64(len(liveRes.Members())),
			same,
			simRes.MeanDistance(),
			liveRes.MeanDistance(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	matches := 0
	for r := 0; r < reps; r++ {
		vec := acc.Get(0, r)
		same := vec[2] != 0
		if same {
			matches++
		}
		t.AddRow(r, int(vec[0]), int(vec[1]), same, vec[3], vec[4])
	}
	t.Note("deterministic 6-node neighbourhood; %d/%d identical allocations", matches, reps)
	return t, nil
}

func e10Profiles() []workload.Profile {
	return []workload.Profile{
		workload.Phone, workload.PDA, workload.Laptop,
		workload.PDA, workload.Laptop, workload.Phone,
	}
}

func e10Sim(seed int64) (*core.Result, error) {
	cl := core.NewCluster(seed, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	for i, p := range e10Profiles() {
		if _, err := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, 6, 10))); err != nil {
			return nil, err
		}
	}
	svc := workload.StreamService("e10", 3, 1.0)
	var res *core.Result
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		return nil, err
	}
	cl.Run(5)
	if res == nil {
		return nil, fmt.Errorf("xp: e10 sim formation incomplete")
	}
	return res, nil
}

func e10Live(seed int64) (*core.Result, error) {
	rt := live.NewRuntime(live.Config{TimeScale: 0.02, Provider: core.DefaultProviderConfig})
	defer rt.Shutdown()
	for i, p := range e10Profiles() {
		pos := core.GridPlacement(i, 6, 10)
		if _, err := rt.AddNode(radio.NodeID(i), radio.Pos(pos), p.RangeM, p.Bitrate, p.Capacity); err != nil {
			return nil, err
		}
	}
	svc := workload.StreamService("e10", 3, 1.0)
	ch := make(chan *core.Result, 4)
	n0 := rt.Node(0)
	if _, err := n0.Submit(svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		select {
		case ch <- r:
		default:
		}
	}); err != nil {
		return nil, err
	}
	// The negotiation needs ProposalWait+AckWait per round; wait out a
	// generous multiple in scaled wall time.
	deadline := 200 // x 50ms virtual => 10s virtual
	for i := 0; i < deadline; i++ {
		select {
		case r := <-ch:
			return r, nil
		default:
			rt.VirtualSleep(0.05)
		}
	}
	return nil, fmt.Errorf("xp: e10 live formation timed out")
}

func sameAssignment(a, b *core.Result) bool {
	if len(a.Assigned) != len(b.Assigned) {
		return false
	}
	for tid, aa := range a.Assigned {
		ba, ok := b.Assigned[tid]
		if !ok || ba.Node != aa.Node {
			return false
		}
		if math.Abs(ba.Distance-aa.Distance) > 1e-9 {
			return false
		}
	}
	return true
}
