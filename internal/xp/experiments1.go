package xp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/workload"
)

// nodeSweep returns the population sizes exercised by the scaling
// experiments.
func nodeSweep(quick bool) []int {
	if quick {
		return []int{4, 8}
	}
	return []int{2, 4, 8, 16, 32}
}

func repeats(cfg Config) int {
	if cfg.Repeats > 0 {
		return cfg.Repeats
	}
	if cfg.Quick {
		return 2
	}
	return 5
}

// E1AcceptanceVsNodes measures the fraction of tasks served as the
// neighbourhood grows, for coalition formation versus the local-only
// baseline. The service (5 video tasks at 2x demand) deliberately exceeds
// a phone's capacity: the paper's "coalition formation is necessary when
// a single node cannot execute a specific service".
func E1AcceptanceVsNodes(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E1 acceptance ratio vs population size",
		"nodes", "coalition-acc", "local-acc", "coalition-util", "local-util", "rounds")
	nodes := nodeSweep(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, nodes, func(n int, rep Rep) ([]float64, error) {
		scfg := workload.DefaultScenario(rep.Seed)
		scfg.Nodes = n
		svc := workload.StreamService("e1", 5, 2.0)

		// Local-only baseline on an identical, untouched scenario.
		scBase, err := workload.Build(scfg)
		if err != nil {
			return nil, err
		}
		la, err := baseline.LocalOnly{}.Allocate(snapshotProblem(scBase, svc))
		if err != nil {
			return nil, err
		}

		out, err := runCoalition(scfg, svc, core.DefaultOrganizerConfig, 0)
		if err != nil {
			return nil, err
		}
		return []float64{
			float64(len(out.Result.Assigned)) / float64(len(svc.Tasks)),
			float64(len(la.Assigned)) / float64(len(svc.Tasks)),
			out.MeanUtility,
			allocUtility(svc, la),
			float64(out.Result.Rounds),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range nodes {
		s := acc.Point(i)
		t.AddRow(n,
			metrics.Ratio(s[0].Mean(), 1), metrics.Ratio(s[1].Mean(), 1),
			s[2].Mean(), s[3].Mean(), s[4].Mean())
	}
	t.Note("service: 5 video tasks at 2.0x demand; organizer is always a phone; %d seeds per row", reps)
	return t, nil
}

// E2UtilityVsLoad compares the mean perceived utility (1 = preferred
// level, 0 = unserved) of the coalition protocol against the random and
// greedy baselines as per-task demand scales up on a fixed 16-node
// population.
func E2UtilityVsLoad(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E2 user-perceived utility vs load",
		"demand-scale", "coalition-util", "random-util", "greedy-util",
		"coalition-acc", "random-acc", "greedy-acc")
	scales := []float64{0.5, 1, 2, 4, 6}
	if cfg.Quick {
		scales = []float64{1, 4}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, scales, func(scale float64, rep Rep) ([]float64, error) {
		scfg := workload.DefaultScenario(rep.Seed)
		svc := workload.StreamService("e2", 6, scale)

		// Each baseline allocates on its own freshly built copy of the
		// identical scenario.
		runBase := func(name string, alloc baseline.Allocator) (util, accepted float64, err error) {
			scBase, err := workload.Build(scfg)
			if err != nil {
				return 0, 0, fmt.Errorf("%s: %w", name, err)
			}
			al, err := alloc.Allocate(snapshotProblem(scBase, svc))
			if err != nil {
				return 0, 0, fmt.Errorf("%s: %w", name, err)
			}
			return allocUtility(svc, al), float64(len(al.Assigned)) / float64(len(svc.Tasks)), nil
		}
		ru, ra, err := runBase("random", baseline.Random{Rng: newRng(rep.Seed)})
		if err != nil {
			return nil, err
		}
		gu, ga, err := runBase("greedy", baseline.Greedy{})
		if err != nil {
			return nil, err
		}

		out, err := runCoalition(scfg, svc, core.DefaultOrganizerConfig, 0)
		if err != nil {
			return nil, err
		}
		cu := out.MeanUtility
		ca := float64(len(out.Result.Assigned)) / float64(len(svc.Tasks))
		return []float64{cu, ru, gu, ca, ra, ga}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, scale := range scales {
		s := acc.Point(i)
		t.AddRow(scale, s[0].Mean(), s[1].Mean(), s[2].Mean(),
			metrics.Ratio(s[3].Mean(), 1), metrics.Ratio(s[4].Mean(), 1), metrics.Ratio(s[5].Mean(), 1))
	}
	t.Note("16 nodes, 6-task video service; utility counts unserved tasks as 0; %d seeds per row", reps)
	return t, nil
}

// E3MessageOverhead counts negotiation traffic per formed coalition as
// the population grows: broadcast CFPs fan out to every neighbour, so
// deliveries grow linearly while unicast replies track the population.
func E3MessageOverhead(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E3 negotiation message overhead",
		"nodes", "broadcasts", "unicasts", "deliveries", "kbytes", "proposals", "formation-s")
	nodes := nodeSweep(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, nodes, func(n int, rep Rep) ([]float64, error) {
		scfg := workload.DefaultScenario(rep.Seed)
		scfg.Nodes = n
		// Disable heartbeats and monitoring so the counters measure
		// pure negotiation traffic.
		scfg.Provider.HeartbeatEvery = 0
		ocfg := core.DefaultOrganizerConfig
		ocfg.Monitor = false
		svc := workload.StreamService("e3", 4, 1.0)
		out, err := runCoalition(scfg, svc, ocfg, 0)
		if err != nil {
			return nil, err
		}
		return []float64{
			float64(out.Stats.Broadcasts),
			float64(out.Stats.Unicasts),
			float64(out.Stats.Deliveries),
			float64(out.Stats.Bytes) / 1024,
			float64(out.Result.ProposalsReceived),
			out.Result.FormationTime,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range nodes {
		s := acc.Point(i)
		t.AddRow(n, s[0].Mean(), s[1].Mean(), s[2].Mean(), s[3].Mean(), s[4].Mean(), s[5].Mean())
	}
	t.Note("4-task video service; heartbeats disabled, counts are pure negotiation traffic; %d seeds per row", reps)
	return t, nil
}

// E4CoalitionSize measures how the member-consolidation pass (criterion
// c) shrinks the coalition as the service grows, at equal or nearly equal
// evaluation value.
func E4CoalitionSize(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E4 coalition size: consolidation ablation",
		"tasks", "members(criterion-c)", "members(spread)", "dist(criterion-c)", "dist(spread)")
	sizes := []int{1, 2, 4, 6, 8}
	if cfg.Quick {
		sizes = []int{2, 4}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, sizes, func(nt int, rep Rep) ([]float64, error) {
		// 1.2x demand over a population without the access-point
		// giant: strong nodes saturate after a couple of tasks, so
		// packing (criterion c) and spreading genuinely differ.
		svc := workload.StreamService("e4", nt, 1.2)
		scfg := ablationScenario(rep.Seed)

		on := core.DefaultOrganizerConfig
		on.Policy = core.SelectionPolicy{DistanceEps: 0.1, UseCommCost: true, Consolidate: true}
		off := core.DefaultOrganizerConfig
		off.Policy = core.SelectionPolicy{DistanceEps: 0.1, UseCommCost: true, Spread: true}

		outOn, err := runCoalition(scfg, svc, on, 0)
		if err != nil {
			return nil, err
		}
		outOff, err := runCoalition(scfg, svc, off, 0)
		if err != nil {
			return nil, err
		}
		return []float64{
			float64(len(outOn.Result.Members())),
			float64(len(outOff.Result.Members())),
			outOn.Result.MeanDistance(),
			outOff.Result.MeanDistance(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, nt := range sizes {
		s := acc.Point(i)
		t.AddRow(nt, s[0].Mean(), s[1].Mean(), s[2].Mean(), s[3].Mean())
	}
	t.Note("16 nodes (phones/PDAs/laptops, no access point) at 1.2x demand; %d seeds per row", reps)
	t.Note("spread = load-balancing anti-policy: same distance band, prefers emptiest node")
	return t, nil
}

// E5HeuristicVsOptimal compares the Section 5 degradation heuristic
// against exhaustive search over the same ladder as local resources get
// scarcer. capacity = fraction x (demand of the preferred level). The
// point grid is deterministic (no seeds); the runner still fans the
// independent capacity fractions out across workers.
func E5HeuristicVsOptimal(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E5 degradation heuristic vs exhaustive optimum",
		"capacity-frac", "paper-reward", "resource-aware-reward", "optimal-reward",
		"paper-degr", "aware-degr", "optimal-degr")
	fracs := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}
	if cfg.Quick {
		fracs = []float64{1.0, 0.6, 0.3}
	}
	acc, err := sweep(cfg, 1, fracs, func(frac float64, rep Rep) ([]float64, error) {
		spec := workload.VideoSpec()
		req := workload.StreamingRequest("e5")
		dm := workload.VideoDemand(1.0)

		ladder, err := qos.BuildLadder(spec, &req, 3)
		if err != nil {
			return nil, err
		}
		preferred := ladder.Level(ladder.NewAssignment())
		prefDemand, err := dm.Demand(spec, preferred)
		if err != nil {
			return nil, err
		}
		capacity := prefDemand.Scale(frac)
		set := resource.NewSet(capacity)
		h, herr := core.Formulate(spec, &req, dm, set.CanReserve, 3, nil)
		ra, raerr := core.FormulateResourceAware(spec, &req, dm, set.CanReserve, 3, nil)
		o, oerr := core.FormulateExhaustive(spec, &req, dm, set.CanReserve, 3, nil, 1<<20)
		switch {
		case herr != nil && oerr != nil && raerr != nil:
			return []float64{nan, nan, nan, nan, nan, nan}, nil
		case herr != nil || oerr != nil || raerr != nil:
			return nil, fmt.Errorf("xp: formulators disagree on feasibility at frac %g: %v / %v / %v", frac, herr, raerr, oerr)
		default:
			return []float64{h.Reward, ra.Reward, o.Reward,
				float64(h.Degradations), float64(ra.Degradations), float64(o.Degradations)}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	for i, frac := range fracs {
		vec := acc.Get(i, 0)
		if isNaN(vec[0]) {
			t.AddRow(frac, "infeasible", "infeasible", "infeasible", "-", "-", "-")
			continue
		}
		t.AddRow(frac, vec[0], vec[1], vec[2], int(vec[3]), int(vec[4]), int(vec[5]))
	}
	t.Note("video streaming request, grid 3; capacity scaled from the preferred level's demand")
	t.Note("paper = S5 heuristic (min reward loss); resource-aware = extension scoring relief per reward lost")
	return t, nil
}
