package xp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/workload"
)

// nodeSweep returns the population sizes exercised by the scaling
// experiments.
func nodeSweep(quick bool) []int {
	if quick {
		return []int{4, 8}
	}
	return []int{2, 4, 8, 16, 32}
}

func repeats(cfg Config) int {
	if cfg.Repeats > 0 {
		return cfg.Repeats
	}
	if cfg.Quick {
		return 2
	}
	return 5
}

// E1AcceptanceVsNodes measures the fraction of tasks served as the
// neighbourhood grows, for coalition formation versus the local-only
// baseline. The service (5 video tasks at 2x demand) deliberately exceeds
// a phone's capacity: the paper's "coalition formation is necessary when
// a single node cannot execute a specific service".
func E1AcceptanceVsNodes(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E1 acceptance ratio vs population size",
		"nodes", "coalition-acc", "local-acc", "coalition-util", "local-util", "rounds")
	reps := repeats(cfg)
	for _, n := range nodeSweep(cfg.Quick) {
		var cAcc, lAcc, cUtil, lUtil, rounds metrics.Sample
		for r := 0; r < reps; r++ {
			seed := cfg.Seed + int64(r)
			scfg := workload.DefaultScenario(seed)
			scfg.Nodes = n
			svc := workload.StreamService("e1", 5, 2.0)

			// Local-only baseline on an identical, untouched scenario.
			scBase, err := workload.Build(scfg)
			if err != nil {
				return nil, err
			}
			prob := snapshotProblem(scBase, svc)
			la, err := baseline.LocalOnly{}.Allocate(prob)
			if err != nil {
				return nil, err
			}
			lAcc.Add(float64(len(la.Assigned)) / float64(len(svc.Tasks)))
			lUtil.Add(allocUtility(svc, la))

			out, err := runCoalition(scfg, svc, core.DefaultOrganizerConfig, 0)
			if err != nil {
				return nil, err
			}
			cAcc.Add(float64(len(out.Result.Assigned)) / float64(len(svc.Tasks)))
			cUtil.Add(out.MeanUtility)
			rounds.Add(float64(out.Result.Rounds))
		}
		t.AddRow(n,
			metrics.Ratio(cAcc.Mean(), 1), metrics.Ratio(lAcc.Mean(), 1),
			cUtil.Mean(), lUtil.Mean(), rounds.Mean())
	}
	t.Note("service: 5 video tasks at 2.0x demand; organizer is always a phone; %d seeds per row", reps)
	return t, nil
}

// E2UtilityVsLoad compares the mean perceived utility (1 = preferred
// level, 0 = unserved) of the coalition protocol against the random and
// greedy baselines as per-task demand scales up on a fixed 16-node
// population.
func E2UtilityVsLoad(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E2 user-perceived utility vs load",
		"demand-scale", "coalition-util", "random-util", "greedy-util",
		"coalition-acc", "random-acc", "greedy-acc")
	scales := []float64{0.5, 1, 2, 4, 6}
	if cfg.Quick {
		scales = []float64{1, 4}
	}
	reps := repeats(cfg)
	for _, scale := range scales {
		var cu, ru, gu, ca, ra, ga metrics.Sample
		for r := 0; r < reps; r++ {
			seed := cfg.Seed + int64(r)
			scfg := workload.DefaultScenario(seed)
			svc := workload.StreamService("e2", 6, scale)

			for name, s := range map[string]*struct {
				u, a  *metrics.Sample
				alloc baseline.Allocator
			}{
				"random": {u: &ru, a: &ra, alloc: baseline.Random{Rng: newRng(seed)}},
				"greedy": {u: &gu, a: &ga, alloc: baseline.Greedy{}},
			} {
				scBase, err := workload.Build(scfg)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
				al, err := s.alloc.Allocate(snapshotProblem(scBase, svc))
				if err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
				s.u.Add(allocUtility(svc, al))
				s.a.Add(float64(len(al.Assigned)) / float64(len(svc.Tasks)))
			}

			out, err := runCoalition(scfg, svc, core.DefaultOrganizerConfig, 0)
			if err != nil {
				return nil, err
			}
			cu.Add(out.MeanUtility)
			ca.Add(float64(len(out.Result.Assigned)) / float64(len(svc.Tasks)))
		}
		t.AddRow(scale, cu.Mean(), ru.Mean(), gu.Mean(),
			metrics.Ratio(ca.Mean(), 1), metrics.Ratio(ra.Mean(), 1), metrics.Ratio(ga.Mean(), 1))
	}
	t.Note("16 nodes, 6-task video service; utility counts unserved tasks as 0; %d seeds per row", reps)
	return t, nil
}

// E3MessageOverhead counts negotiation traffic per formed coalition as
// the population grows: broadcast CFPs fan out to every neighbour, so
// deliveries grow linearly while unicast replies track the population.
func E3MessageOverhead(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E3 negotiation message overhead",
		"nodes", "broadcasts", "unicasts", "deliveries", "kbytes", "proposals", "formation-s")
	reps := repeats(cfg)
	for _, n := range nodeSweep(cfg.Quick) {
		var bc, uc, del, kb, props, ft metrics.Sample
		for r := 0; r < reps; r++ {
			scfg := workload.DefaultScenario(cfg.Seed + int64(r))
			scfg.Nodes = n
			// Disable heartbeats and monitoring so the counters measure
			// pure negotiation traffic.
			scfg.Provider.HeartbeatEvery = 0
			ocfg := core.DefaultOrganizerConfig
			ocfg.Monitor = false
			svc := workload.StreamService("e3", 4, 1.0)
			out, err := runCoalition(scfg, svc, ocfg, 0)
			if err != nil {
				return nil, err
			}
			bc.Add(float64(out.Stats.Broadcasts))
			uc.Add(float64(out.Stats.Unicasts))
			del.Add(float64(out.Stats.Deliveries))
			kb.Add(float64(out.Stats.Bytes) / 1024)
			props.Add(float64(out.Result.ProposalsReceived))
			ft.Add(out.Result.FormationTime)
		}
		t.AddRow(n, bc.Mean(), uc.Mean(), del.Mean(), kb.Mean(), props.Mean(), ft.Mean())
	}
	t.Note("4-task video service; heartbeats disabled, counts are pure negotiation traffic; %d seeds per row", reps)
	return t, nil
}

// E4CoalitionSize measures how the member-consolidation pass (criterion
// c) shrinks the coalition as the service grows, at equal or nearly equal
// evaluation value.
func E4CoalitionSize(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E4 coalition size: consolidation ablation",
		"tasks", "members(criterion-c)", "members(spread)", "dist(criterion-c)", "dist(spread)")
	sizes := []int{1, 2, 4, 6, 8}
	if cfg.Quick {
		sizes = []int{2, 4}
	}
	reps := repeats(cfg)
	for _, nt := range sizes {
		var mc, mp, dc, dp metrics.Sample
		for r := 0; r < reps; r++ {
			seed := cfg.Seed + int64(r)
			// 1.2x demand over a population without the access-point
			// giant: strong nodes saturate after a couple of tasks, so
			// packing (criterion c) and spreading genuinely differ.
			svc := workload.StreamService("e4", nt, 1.2)
			scfg := ablationScenario(seed)

			on := core.DefaultOrganizerConfig
			on.Policy = core.SelectionPolicy{DistanceEps: 0.1, UseCommCost: true, Consolidate: true}
			off := core.DefaultOrganizerConfig
			off.Policy = core.SelectionPolicy{DistanceEps: 0.1, UseCommCost: true, Spread: true}

			outOn, err := runCoalition(scfg, svc, on, 0)
			if err != nil {
				return nil, err
			}
			outOff, err := runCoalition(scfg, svc, off, 0)
			if err != nil {
				return nil, err
			}
			mc.Add(float64(len(outOn.Result.Members())))
			mp.Add(float64(len(outOff.Result.Members())))
			dc.Add(outOn.Result.MeanDistance())
			dp.Add(outOff.Result.MeanDistance())
		}
		t.AddRow(nt, mc.Mean(), mp.Mean(), dc.Mean(), dp.Mean())
	}
	t.Note("16 nodes (phones/PDAs/laptops, no access point) at 1.2x demand; %d seeds per row", reps)
	t.Note("spread = load-balancing anti-policy: same distance band, prefers emptiest node")
	return t, nil
}

// E5HeuristicVsOptimal compares the Section 5 degradation heuristic
// against exhaustive search over the same ladder as local resources get
// scarcer. capacity = fraction x (demand of the preferred level).
func E5HeuristicVsOptimal(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E5 degradation heuristic vs exhaustive optimum",
		"capacity-frac", "paper-reward", "resource-aware-reward", "optimal-reward",
		"paper-degr", "aware-degr", "optimal-degr")
	fracs := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}
	if cfg.Quick {
		fracs = []float64{1.0, 0.6, 0.3}
	}
	spec := workload.VideoSpec()
	req := workload.StreamingRequest("e5")
	dm := workload.VideoDemand(1.0)

	ladder, err := qos.BuildLadder(spec, &req, 3)
	if err != nil {
		return nil, err
	}
	preferred := ladder.Level(ladder.NewAssignment())
	prefDemand, err := dm.Demand(spec, preferred)
	if err != nil {
		return nil, err
	}
	for _, frac := range fracs {
		capacity := prefDemand.Scale(frac)
		set := resource.NewSet(capacity)
		h, herr := core.Formulate(spec, &req, dm, set.CanReserve, 3, nil)
		ra, raerr := core.FormulateResourceAware(spec, &req, dm, set.CanReserve, 3, nil)
		o, oerr := core.FormulateExhaustive(spec, &req, dm, set.CanReserve, 3, nil, 1<<20)
		switch {
		case herr != nil && oerr != nil && raerr != nil:
			t.AddRow(frac, "infeasible", "infeasible", "infeasible", "-", "-", "-")
		case herr != nil || oerr != nil || raerr != nil:
			return nil, fmt.Errorf("xp: formulators disagree on feasibility at frac %g: %v / %v / %v", frac, herr, raerr, oerr)
		default:
			t.AddRow(frac, h.Reward, ra.Reward, o.Reward, h.Degradations, ra.Degradations, o.Degradations)
		}
	}
	t.Note("video streaming request, grid 3; capacity scaled from the preferred level's demand")
	t.Note("paper = S5 heuristic (min reward loss); resource-aware = extension scoring relief per reward lost")
	return t, nil
}
