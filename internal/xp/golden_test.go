package xp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the pinned experiment tables. Run
//
//	go test ./internal/xp -run TestGoldenTables -update-golden
//
// ONLY when a table legitimately changes (new column, new sweep point);
// never to paper over an unexplained numeric drift — the whole point of
// the pin is that refactors of the QoS hot path keep every table
// byte-identical.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden experiment tables")

// goldenCfg is frozen: the pinned tables were produced with this exact
// configuration (and are parallelism-independent by the sweep-runner
// contract, so Parallel only affects wall time).
var goldenCfg = Config{Seed: 1, Repeats: 2, Quick: true, Parallel: 4}

// TestGoldenTables pins the rendered table of every experiment against
// testdata/golden/<ID>.txt. E10 and E28 are excluded: their live/TCP
// halves race real goroutines (and sockets) against scaled wall-clock
// timers and are documented as not bit-stable across runs.
func TestGoldenTables(t *testing.T) {
	for _, e := range All() {
		if e.ID == "E10" || e.ID == "E28" {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(goldenCfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			got := tbl.String()
			path := filepath.Join("testdata", "golden", e.ID+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden table (generate with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s table drifted from golden pin\n--- got ---\n%s--- want ---\n%s", e.ID, got, want)
			}
		})
	}
}
