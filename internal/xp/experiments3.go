package xp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/workload"
)

// E11MobilityStress measures formation and operation under node
// mobility: the paper's scenario is "a local ad-hoc network [that]
// forms spontaneously, as nodes move in range of each other", so the
// protocol must survive links appearing and disappearing mid-coalition.
func E11MobilityStress(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E11 formation and operation under mobility",
		"speed-m/s", "acceptance", "served@60s", "reconfigs", "failures-detected")
	speeds := []float64{0, 1.2, 5, 15}
	if cfg.Quick {
		speeds = []float64{0, 5}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, speeds, func(speed float64, rep Rep) ([]float64, error) {
		scfg := workload.DefaultScenario(rep.Seed)
		scfg.Nodes = 12
		scfg.AreaM = 150 // wide area: movement genuinely breaks links
		scfg.Mobile = speed > 0
		scfg.MobileSpeed = speed
		sc, err := workload.Build(scfg)
		if err != nil {
			return nil, err
		}
		svc := workload.StreamService("e11", 4, 1.0)
		var first *core.Result
		org, err := sc.Cluster.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(res *core.Result) {
			if first == nil {
				first = res
			}
		})
		if err != nil {
			return nil, err
		}
		sc.Cluster.Run(60)
		if first == nil {
			return nil, fmt.Errorf("xp: e11 formation incomplete (speed %g seed %d)", speed, rep.Seed)
		}
		return []float64{
			float64(len(first.Assigned)) / float64(len(svc.Tasks)),
			float64(len(org.Snapshot())) / float64(len(svc.Tasks)),
			float64(org.Reconfigurations),
			float64(org.Failures),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, speed := range speeds {
		s := acc.Point(i)
		t.AddRow(speed, metrics.Ratio(s[0].Mean(), 1), metrics.Ratio(s[1].Mean(), 1),
			s[2].Mean(), s[3].Mean())
	}
	t.Note("12 nodes in a 150 m area, 4 tasks at 1.0x, monitored until t=60 s; %d seeds per row", reps)
	t.Note("members leaving radio range are detected as failures and their tasks renegotiated")
	return t, nil
}

// E12LossyRadio measures negotiation robustness to packet loss: lost
// proposals or awards cost renegotiation rounds, and enough rounds let
// the formation converge anyway.
func E12LossyRadio(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E12 negotiation under packet loss",
		"loss-prob", "acceptance", "rounds", "formation-s", "drops")
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if cfg.Quick {
		losses = []float64{0, 0.2}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, losses, func(loss float64, rep Rep) ([]float64, error) {
		scfg := workload.DefaultScenario(rep.Seed)
		scfg.Radio.LossProb = loss
		scfg.Provider.HeartbeatEvery = 0
		ocfg := core.DefaultOrganizerConfig
		ocfg.Monitor = false
		ocfg.MaxRounds = 8
		svc := workload.StreamService("e12", 4, 1.0)
		out, err := runCoalition(scfg, svc, ocfg, 0)
		if err != nil {
			return nil, err
		}
		return []float64{
			float64(len(out.Result.Assigned)) / float64(len(svc.Tasks)),
			float64(out.Result.Rounds),
			out.Result.FormationTime,
			float64(out.Stats.Drops),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, loss := range losses {
		s := acc.Point(i)
		t.AddRow(loss, metrics.Ratio(s[0].Mean(), 1), s[1].Mean(), s[2].Mean(), s[3].Mean())
	}
	t.Note("16 nodes, 4 tasks at 1.0x, up to 8 rounds, heartbeats off; %d seeds per row", reps)
	return t, nil
}

// E13ConcurrentServices has several organizers negotiate simultaneously
// over the same neighbourhood, the situation where a proposal is not a
// hard commitment and award-time reservations can fail. It ablates the
// provider-side tentative-hold mechanism (ProviderConfig.Hold).
func E13ConcurrentServices(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E13 concurrent negotiations: proposal holds ablation",
		"services", "acc(no-hold)", "declines(no-hold)", "acc(hold)", "declines(hold)")
	counts := []int{1, 2, 3, 4}
	if cfg.Quick {
		counts = []int{2}
	}
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, counts, func(k int, rep Rep) ([]float64, error) {
		accNo, decNo, err := concurrentRun(rep.Seed, k, false)
		if err != nil {
			return nil, err
		}
		accHold, decHold, err := concurrentRun(rep.Seed, k, true)
		if err != nil {
			return nil, err
		}
		return []float64{accNo, decNo, accHold, decHold}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range counts {
		s := acc.Point(i)
		t.AddRow(k, metrics.Ratio(s[0].Mean(), 1), s[1].Mean(),
			metrics.Ratio(s[2].Mean(), 1), s[3].Mean())
	}
	t.Note("16 nodes; k organizers each request 3 tasks at 1.2x simultaneously; %d seeds per row", reps)
	t.Note("holds reserve proposal demand tentatively until award or timeout")
	return t, nil
}

func concurrentRun(seed int64, services int, hold bool) (acceptance, declines float64, err error) {
	scfg := workload.DefaultScenario(seed)
	scfg.Provider.Hold = hold
	scfg.Provider.HoldTimeout = 1.0
	sc, err := workload.Build(scfg)
	if err != nil {
		return 0, 0, err
	}
	totalTasks := 0
	results := make([]*core.Result, services)
	for s := 0; s < services; s++ {
		s := s
		svc := workload.StreamService(fmt.Sprintf("e13-%d", s), 3, 1.2)
		totalTasks += len(svc.Tasks)
		if _, err := sc.Cluster.Submit(0, radio.NodeID(s), svc, core.DefaultOrganizerConfig, func(res *core.Result) {
			if results[s] == nil {
				results[s] = res
			}
		}); err != nil {
			return 0, 0, err
		}
	}
	sc.Cluster.Run(30)
	assigned := 0
	for s, res := range results {
		if res == nil {
			return 0, 0, fmt.Errorf("xp: e13 service %d incomplete (seed %d)", s, seed)
		}
		assigned += len(res.Assigned)
	}
	var totalDeclines float64
	for _, id := range sc.Cluster.Nodes() {
		totalDeclines += float64(sc.Cluster.Node(id).Provider.Declines)
	}
	return float64(assigned) / float64(totalTasks), totalDeclines, nil
}
