package xp

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/workload"
)

// E16OptimalScaling measures what the branch-and-bound rewrite of the
// optimal baseline buys: the exhaustive enumerator pays
// (nodes+1)^tasks full re-formulation passes and stops being runnable
// after a couple dozen nodes, while the bounded search explores a tiny,
// slowly growing fraction of that space — so the optimality-gap axis of
// E5-style comparisons can extend to populations the enumerator cannot
// touch. Where both run, their allocations are asserted identical
// (same argmin, bit-equal distances). The population grid is
// deterministic; the runner fans the independent points out across
// workers.
func E16OptimalScaling(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E16 optimal baseline: branch-and-bound vs exhaustive enumeration",
		"nodes", "search-space", "bnb-explored", "pruning-x", "enum-agrees", "mean-dist", "served")
	pops := []int{3, 6, 12, 24, 48}
	if cfg.Quick {
		pops = []int{3, 12}
	}
	const nTasks = 4
	// The enumerator is only attempted while its cross-product stays
	// affordable inside a sweep; beyond that the row shows "-" (this is
	// precisely the wall the branch-and-bound removes).
	const enumBudget = 300_000
	acc, err := sweep(cfg, 1, pops, func(nodes int, rep Rep) ([]float64, error) {
		pb, err := e16Problem(nodes, nTasks)
		if err != nil {
			return nil, err
		}
		alloc, explored, err := baseline.Optimal{}.AllocateCounted(pb)
		if err != nil {
			return nil, err
		}
		space := math.Pow(float64(nodes+1), nTasks)
		agree := nan
		if space <= enumBudget {
			pe, err := e16Problem(nodes, nTasks)
			if err != nil {
				return nil, err
			}
			enum, err := baseline.OptimalExhaustive{MaxCombinations: enumBudget}.Allocate(pe)
			if err != nil {
				return nil, err
			}
			agree = 0
			if alloc.Equal(enum) {
				agree = 1
			}
		}
		return []float64{
			space,
			float64(explored),
			space / float64(explored),
			agree,
			alloc.MeanDistance(),
			float64(len(alloc.Assigned)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, nodes := range pops {
		vec := acc.Get(i, 0)
		agrees := "-"
		if !isNaN(vec[3]) {
			agrees = fmt.Sprintf("%v", vec[3] != 0)
		}
		t.AddRow(nodes, vec[0], int64(vec[1]), vec[2], agrees,
			vec[4], fmt.Sprintf("%d/%d", int(vec[5]), nTasks))
	}
	t.Note("4 stream tasks at 1.5x demand over a deterministic phone/PDA/laptop cycle")
	t.Note("search-space = (nodes+1)^tasks leaves of full re-formulation; explored = bnb search edges")
	t.Note("enum-agrees asserts bit-identical allocations where the enumerator is tractable; '-' = refused")
	return t, nil
}

// e16Problem builds the deterministic allocation instance: profiles
// cycle phone, PDA, laptop so capacity grows smoothly with population.
func e16Problem(nodes, nTasks int) (*baseline.Problem, error) {
	svc := workload.StreamService("e16", nTasks, 1.5)
	p := &baseline.Problem{Service: svc, Organizer: 0, GridSteps: qos.DefaultGridSteps}
	profiles := []workload.Profile{workload.Phone, workload.PDA, workload.Laptop}
	for i := 0; i < nodes; i++ {
		prof := profiles[i%len(profiles)]
		p.Nodes = append(p.Nodes, baseline.NodeView{
			ID:       radio.NodeID(i),
			Res:      resource.NewSet(prof.Capacity),
			CommCost: float64(i) * 0.01,
		})
	}
	return p, nil
}
