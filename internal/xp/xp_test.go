package xp

import (
	"strconv"
	"strings"
	"testing"
)

// quickCfg keeps experiment runs fast inside the test suite.
var quickCfg = Config{Seed: 1, Repeats: 2, Quick: true}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(quickCfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tbl.Title == "" || len(tbl.Cols) == 0 {
				t.Fatalf("%s produced a malformed table", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Cols) {
					t.Fatalf("%s row width %d != header %d", e.ID, len(row), len(tbl.Cols))
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E5")
	if err != nil || e.ID != "E5" {
		t.Fatalf("ByID(E5) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestExperimentIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for i, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate %s", e.ID)
		}
		seen[e.ID] = true
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Claim == "" || e.Title == "" {
			t.Errorf("%s missing claim or title", e.ID)
		}
	}
}

// TestE1CoalitionBeatsLocalOnly pins the headline result: with enough
// neighbours, coalition acceptance must strictly exceed the local-only
// baseline for an over-demanding service.
func TestE1CoalitionBeatsLocalOnly(t *testing.T) {
	tbl, err := E1AcceptanceVsNodes(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	coalition := parsePct(t, last[1])
	local := parsePct(t, last[2])
	if coalition <= local {
		t.Errorf("coalition %v%% must beat local-only %v%%", coalition, local)
	}
	if coalition < 50 {
		t.Errorf("coalition acceptance %v%% suspiciously low at max population", coalition)
	}
}

// TestE5ResourceAwareAtLeastPaper pins the extension result: the
// resource-aware formulator never does worse than the paper heuristic.
func TestE5ResourceAwareAtLeastPaper(t *testing.T) {
	tbl, err := E5HeuristicVsOptimal(Config{Seed: 1, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] == "infeasible" {
			continue
		}
		paper := parseF(t, row[1])
		aware := parseF(t, row[2])
		optimal := parseF(t, row[3])
		if aware < paper-1e-9 {
			t.Errorf("frac %s: aware %v < paper %v", row[0], aware, paper)
		}
		if optimal < aware-1e-9 {
			t.Errorf("frac %s: optimal %v < aware %v", row[0], optimal, aware)
		}
	}
}

// TestE9NoViolations pins the evaluation-function invariants: zero range
// violations and zero dominance violations for the repo's requests.
func TestE9NoViolations(t *testing.T) {
	tbl, err := E9DistanceConsistency(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[2] != "0" {
			t.Errorf("%s: %s range violations", row[0], row[2])
		}
		if row[3] != "true" {
			t.Errorf("%s: distance not zero at preferred", row[0])
		}
		if row[4] != "0" {
			t.Errorf("%s: %s dominance violations", row[0], row[4])
		}
	}
}

// TestE13HoldsEliminateDeclines pins the holds ablation: with tentative
// holds enabled, award declines must be zero at every concurrency level.
func TestE13HoldsEliminateDeclines(t *testing.T) {
	tbl, err := E13ConcurrentServices(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if parseF(t, row[4]) != 0 {
			t.Errorf("services=%s: %s declines with holds enabled", row[0], row[4])
		}
	}
}

// TestE14ServiceSurvivesBatteryDeaths pins the battery experiment: the
// service must stay fully served despite helper exhaustion (the mains
// access point is always available as a fallback).
func TestE14ServiceSurvivesBatteryDeaths(t *testing.T) {
	tbl, err := E14EnergyDepletion(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if got := parsePct(t, row[4]); got < 100 {
			t.Errorf("drain=%s: served fell to %v%%", row[0], got)
		}
	}
}

// TestE15UpgradeNeverRegresses pins the adaptation extension: the
// post-upgrade distance is never worse than the pre-upgrade one, and
// with arriving laptops it strictly improves.
func TestE15UpgradeNeverRegresses(t *testing.T) {
	tbl, err := E15QualityUpgrade(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		before, after := parseF(t, row[1]), parseF(t, row[2])
		if after > before+1e-9 {
			t.Errorf("arrivals=%s: distance regressed %v -> %v", row[0], before, after)
		}
		if row[0] != "0" && after >= before {
			t.Errorf("arrivals=%s: no improvement (%v -> %v)", row[0], before, after)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}
