package xp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

// tracedChaosJSONL runs the quick E26 chaos sweep with the flight
// recorder on and returns the journal serialized as JSONL.
func tracedChaosJSONL(t *testing.T, parallel int, slow bool) string {
	t.Helper()
	j := trace.NewJournal()
	cfg := Config{Seed: 1, Repeats: 2, Quick: true, Parallel: parallel,
		SlowPath: slow, Trace: j, TraceGroup: "E26"}
	if _, err := E26BurstLoss(cfg); err != nil {
		t.Fatalf("E26: %v", err)
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.String()
}

// TestChaosTraceDeterminism pins the flight recorder's reproducibility
// contract: a same-seed chaos run emits byte-identical JSONL traces no
// matter the worker-pool width and no matter which session loop
// implementation drives it. This is the trace-level twin of the table
// equivalence gate in scripts/determinism.sh.
func TestChaosTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep four times")
	}
	base := tracedChaosJSONL(t, 1, false)
	if base == "" {
		t.Fatal("traced chaos run produced an empty journal")
	}
	for _, kind := range []string{"arrival", "reconcile.begin", "reconcile.end", "freeze"} {
		if !strings.Contains(base, `"kind":"`+kind+`"`) {
			// freeze only appears when the plan freezes nodes; E26 plans
			// are loss-only, so tolerate its absence but require the rest.
			if kind == "freeze" {
				continue
			}
			t.Errorf("trace missing %q events", kind)
		}
	}
	if again := tracedChaosJSONL(t, 1, false); again != base {
		t.Error("two same-seed runs disagree byte-for-byte")
	}
	if par := tracedChaosJSONL(t, 8, false); par != base {
		t.Error("parallel 8 trace differs from sequential trace")
	}
	if slow := tracedChaosJSONL(t, 1, true); slow != base {
		t.Error("slow-path trace differs from fast-path trace")
	}
}

// TestTracingDoesNotPerturbTables pins that the recorder is
// emission-only: running an experiment with the flight recorder on must
// render byte-identical tables to running it with tracing off, because
// no emission site draws from a replication's rng or changes control
// flow. This is what lets the golden pins stay valid with tracing on.
func TestTracingDoesNotPerturbTables(t *testing.T) {
	off := Config{Seed: 1, Repeats: 2, Quick: true}
	on := off
	on.Trace = trace.NewJournal()
	on.TraceGroup = "E26"
	toff, err := E26BurstLoss(off)
	if err != nil {
		t.Fatal(err)
	}
	ton, err := E26BurstLoss(on)
	if err != nil {
		t.Fatal(err)
	}
	if toff.String() != ton.String() {
		t.Errorf("tracing perturbed the table:\noff:\n%s\non:\n%s", toff, ton)
	}
	if on.Trace.Total() == 0 {
		t.Error("traced run recorded nothing")
	}
}
