// Package xp defines the experiment suite of this reproduction. The
// paper (a model/architecture paper) publishes no tables or figures; each
// experiment here operationalizes one of its qualitative claims (see
// EXPERIMENTS.md for the catalog and DESIGN.md for the module map) into
// a reproducible table. Experiments declare their sweeps against the
// parallel runner in runner.go; cmd/qosbench prints the tables and the
// root bench_test.go wraps each in a testing.B benchmark.
package xp

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config scales an experiment run.
type Config struct {
	// Seed is the base seed; repeat r of a sweep point uses Seed+r.
	Seed int64
	// Repeats is the number of seeds averaged per sweep point.
	Repeats int
	// Quick shrinks sweeps for use inside testing.B loops.
	Quick bool
	// Parallel is the worker-pool width the sweep runner fans
	// replications and sweep points out over; <= 1 runs sequentially.
	// Tables are bit-identical at every width: each replication owns a
	// rand.Rand seeded with Seed+r and aggregation happens in
	// replication order after the fan-in.
	Parallel int
	// SlowPath makes the open-system experiments (E17-E24) drive the
	// retained reference session loop instead of the pooled fast path.
	// Tables are bit-identical either way — scripts/determinism.sh diffs
	// the two as the equivalence gate.
	SlowPath bool
	// Trace, when set, collects every replication's flight-recorder
	// events into the journal, one scope per (sweep point, replication)
	// job so serialization order is independent of Parallel. Experiments
	// that support tracing pass Rep.Trace into their session.Config; the
	// rest leave the journal empty. nil (the default) disables tracing.
	Trace *trace.Journal
	// TraceGroup prefixes the journal scope names of this run (e.g. the
	// experiment ID), keeping multiple traced runs apart in one journal.
	TraceGroup string
}

// DefaultConfig is used by cmd/qosbench.
var DefaultConfig = Config{Seed: 1, Repeats: 5}

// Experiment is one entry of the suite.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg Config) (*metrics.Table, error)
}

// All returns the suite in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Acceptance ratio vs population size",
			Claim: "coalitions serve requests a single node cannot (Abstract, S1)", Run: E1AcceptanceVsNodes},
		{ID: "E2", Title: "User-perceived quality vs load",
			Claim: "selection by lowest evaluation maximizes perceived utility (S4.2)", Run: E2UtilityVsLoad},
		{ID: "E3", Title: "Negotiation message overhead vs population size",
			Claim: "distributed broadcast negotiation scales linearly in neighbours (S4.2)", Run: E3MessageOverhead},
		{ID: "E4", Title: "Coalition size with and without consolidation",
			Claim: "operation complexity grows with distinct members (S4.2)", Run: E4CoalitionSize},
		{ID: "E5", Title: "Degradation heuristic vs exhaustive optimum",
			Claim: "the S5 heuristic finds the closest schedulable level", Run: E5HeuristicVsOptimal},
		{ID: "E6", Title: "Selection-criteria ablation",
			Claim: "all three selection criteria matter (S4.2)", Run: E6SelectionAblation},
		{ID: "E7", Title: "Reconfiguration under member failures",
			Claim: "operation-phase reconfiguration survives partial failures (S4)", Run: E7FailureReconfig},
		{ID: "E8", Title: "Heterogeneity: weak device among strong neighbours",
			Claim: "weak devices offload to nearby more powerful nodes (S1/S2)", Run: E8Heterogeneity},
		{ID: "E9", Title: "Evaluation-function consistency",
			Claim: "lower distance always means closer to the preference order (S6)", Run: E9DistanceConsistency},
		{ID: "E10", Title: "Live goroutine runtime vs simulator",
			Claim: "the protocol is runtime-independent (engineering validation)", Run: E10LiveVsSim},
		{ID: "E11", Title: "Formation and operation under mobility",
			Claim: "coalitions survive nodes moving in and out of range (S1)", Run: E11MobilityStress},
		{ID: "E12", Title: "Negotiation under packet loss",
			Claim: "renegotiation rounds absorb lossy wireless links (S2)", Run: E12LossyRadio},
		{ID: "E13", Title: "Concurrent negotiations and proposal holds",
			Claim: "proposals are not hard commitments; holds trade utilization for decline rate", Run: E13ConcurrentServices},
		{ID: "E14", Title: "Operation under battery depletion",
			Claim: "cooperation must survive helpers dying of battery exhaustion (S7)", Run: E14EnergyDepletion},
		{ID: "E15", Title: "Run-time quality upgrade",
			Claim: "coalitions can dynamically change the executing quality level (S4)", Run: E15QualityUpgrade},
		{ID: "E16", Title: "Optimal baseline: branch-and-bound vs exhaustive enumeration",
			Claim: "pruning, not enumeration, keeps the optimal baseline tractable as populations grow", Run: E16OptimalScaling},
		{ID: "E17", Title: "Steady-state admission and QoS vs offered load",
			Claim: "the spontaneous neighbourhood serves a continuous stream of arriving services (S1/S2)", Run: E17OfferedLoad},
		{ID: "E18", Title: "Arrival shape at equal mean load",
			Claim: "burstier arrival processes degrade admission at equal mean offered load", Run: E18ArrivalShapes},
		{ID: "E19", Title: "Combined service and node churn",
			Claim: "coalitions form, operate and dissolve while both services and devices come and go (S1, S4)", Run: E19CombinedChurn},
		{ID: "E20", Title: "City fabric: shard-count scaling at fixed offered load",
			Claim: "many spontaneous neighbourhoods coexist across a wide area; capacity scales out with shards (S1)", Run: E20ShardScaling},
		{ID: "E21", Title: "City fabric: hotspot load imbalance",
			Claim: "equal mean load does not mean equal quality — skew across neighbourhoods drives city-wide blocking", Run: E21HotspotImbalance},
		{ID: "E22", Title: "Churn repair policy: degrade vs migrate vs kill",
			Claim: "renegotiating live sessions to a degraded level beats killing them when members churn (S4)", Run: E22AdaptChurn},
		{ID: "E23", Title: "Upgrade reclamation after burst load",
			Claim: "run-time adaptation is bidirectional — degraded sessions reclaim quality when capacity frees (S4)", Run: E23UpgradeReclamation},
		{ID: "E24", Title: "City-scale adaptation under hotspot imbalance",
			Claim: "mid-session adaptation concentrates its work where the load is, lifting city-wide survival (S1, S4)", Run: E24CityAdaptation},
		{ID: "E25", Title: "Admission under message loss: retransmission vs bare protocol",
			Claim: "bounded blind retransmission with backoff recovers most of the admission a lossy radio destroys (S2)", Run: E25LossRetry},
		{ID: "E26", Title: "Loss shape at equal mean drop rate",
			Claim: "bursty loss defeats bounded retransmission where i.i.d. loss of equal mean does not", Run: E26BurstLoss},
		{ID: "E27", Title: "Transient partitions: reconfiguration and reclamation",
			Claim: "coalitions reconfigure around a split and the reconciliation sweep reclaims what the cut stranded (S4)", Run: E27PartitionHeal},
		{ID: "E28", Title: "TCP socket fabric vs simulator, with daemon crash",
			Claim: "the protocol is deployment-independent: real sockets form the same coalition, and survive losing a daemon mid-negotiation (engineering validation)", Run: E28InteropTCP},
		{ID: "E29", Title: "Admission policy vs clairvoyant bound across offered load",
			Claim: "queue and yield lift admission and utility over block at every load, and no policy exceeds the clairvoyant oracle's bound on its own recorded trace (economic admission)", Run: E29AdmissionPolicies},
		{ID: "E30", Title: "Queue vs yield under burst overload",
			Claim: "under deep transient overload queueing rides the burst out while yielding meets it by degrading incumbents, and both stay under the clairvoyant bound (economic admission)", Run: E30QueueVsYieldBurst},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("xp: unknown experiment %q", id)
}

// formationOutcome captures one coalition run.
type formationOutcome struct {
	Result  *core.Result
	Stats   radio.Stats
	Cluster *core.Cluster
	// MeanUtility is the mean per-task utility (1 = preferred level)
	// over assigned tasks.
	MeanUtility float64
}

// runCoalition builds the scenario, submits svc at node 0, and runs the
// negotiation to completion (plus settle seconds of operation).
func runCoalition(scfg workload.ScenarioConfig, svc *task.Service, ocfg core.OrganizerConfig, settle float64) (*formationOutcome, error) {
	sc, err := workload.Build(scfg)
	if err != nil {
		return nil, err
	}
	var res *core.Result
	_, err = sc.Cluster.Submit(0, 0, svc, ocfg, func(r *core.Result) {
		if res == nil {
			res = r
		}
	})
	if err != nil {
		return nil, err
	}
	horizon := 10.0 + settle
	sc.Cluster.Run(horizon)
	if res == nil {
		return nil, fmt.Errorf("xp: formation did not complete within %g s", horizon)
	}
	out := &formationOutcome{Result: res, Stats: sc.Cluster.Medium.Stats, Cluster: sc.Cluster}
	out.MeanUtility = meanUtility(svc, res)
	return out, nil
}

// meanUtility converts assigned distances into mean [0,1] utility;
// unserved tasks contribute utility 0, making it comparable across
// allocators with different acceptance.
func meanUtility(svc *task.Service, res *core.Result) float64 {
	if len(svc.Tasks) == 0 {
		return 0
	}
	var total float64
	for _, t := range svc.Tasks {
		a, ok := res.Assigned[t.ID]
		if !ok {
			continue
		}
		eval, err := qos.NewEvaluator(svc.Spec, &t.Request)
		if err != nil {
			continue
		}
		total += eval.Utility(a.Distance)
	}
	return total / float64(len(svc.Tasks))
}

// allocUtility is meanUtility for baseline allocations.
func allocUtility(svc *task.Service, alloc *baseline.Allocation) float64 {
	if len(svc.Tasks) == 0 {
		return 0
	}
	byID := make(map[string]baseline.TaskAlloc, len(alloc.Assigned))
	for _, a := range alloc.Assigned {
		byID[a.TaskID] = a
	}
	var total float64
	for _, t := range svc.Tasks {
		a, ok := byID[t.ID]
		if !ok {
			continue
		}
		eval, err := qos.NewEvaluator(svc.Spec, &t.Request)
		if err != nil {
			continue
		}
		total += eval.Utility(a.Distance)
	}
	return total / float64(len(svc.Tasks))
}

// ablationScenario is the population used by the selection-policy
// ablations: no access-point giant (it would absorb every task at zero
// distance under any policy) and a propagation-delay radio so that
// communication costs differ across neighbours.
func ablationScenario(seed int64) workload.ScenarioConfig {
	scfg := workload.DefaultScenario(seed)
	scfg.Mix = workload.Mix{
		{Profile: workload.Phone, Weight: 0.4},
		{Profile: workload.PDA, Weight: 0.35},
		{Profile: workload.Laptop, Weight: 0.25},
	}
	scfg.Radio.PropDelay = 2e-3 // 2 ms per meter: position matters
	return scfg
}

// newRng builds a deterministic random source for baseline allocators.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// snapshotProblem views a freshly built scenario as a baseline Problem.
// Only nodes the organizer can actually reach over the radio participate,
// so baselines compete under the same physical constraints as the
// protocol.
func snapshotProblem(sc *workload.Scenario, svc *task.Service) *baseline.Problem {
	nodes := make(map[radio.NodeID]*resource.Set)
	for _, id := range sc.Cluster.Nodes() {
		if id != 0 && !sc.Cluster.Medium.InRange(0, id) {
			continue
		}
		nodes[id] = sc.Cluster.Node(id).Res
	}
	comm := func(id radio.NodeID) float64 {
		return sc.Cluster.Medium.TxTime(0, id, 32*1024)
	}
	return baseline.SnapshotProblem(svc, 0, nodes, comm, qos.DefaultGridSteps)
}
