package xp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	qnet "repro/internal/net"
	"repro/internal/proto"
	"repro/internal/radio"
)

// E28 parameters: the E10 neighbourhood (six profiled nodes on a 10 m
// grid) negotiated over real TCP loopback sockets instead of the
// simulated radio or the goroutine runtime.
const (
	e28Total     = 6
	e28Tasks     = 3
	e28Scale     = 1.0
	e28TimeScale = 0.05 // wall seconds per virtual second; generous for CI
)

// e28Fleet boots the interop fabric in-process: daemons 1..total-1
// listening on ephemeral loopback ports, plus the dial-only organizer
// node 0, fully connected to every daemon before it returns.
func e28Fleet() (org *qnet.Node, daemons []*qnet.Node, err error) {
	closeAll := func() {
		for _, d := range daemons {
			d.Close()
		}
		if org != nil {
			org.Close()
		}
	}
	for i := 1; i < e28Total; i++ {
		d := qnet.NewNode(qnet.NodeConfig{
			Endpoint: qnet.InteropEndpointConfig(radio.NodeID(i), e28Total, "127.0.0.1:0", e28TimeScale),
			Provider: core.DefaultProviderConfig,
			Retry:    proto.DefaultRetryConfig,
		})
		if err := d.Start(); err != nil {
			closeAll()
			return nil, nil, err
		}
		daemons = append(daemons, d)
	}
	org = qnet.NewNode(qnet.NodeConfig{
		Endpoint: qnet.InteropEndpointConfig(0, e28Total, "", e28TimeScale),
		Provider: core.DefaultProviderConfig,
		Retry:    proto.DefaultRetryConfig,
	})
	if err := org.Start(); err != nil {
		closeAll()
		return nil, nil, err
	}
	for i, d := range daemons {
		if err := org.Endpoint.Dial(radio.NodeID(i+1), d.Endpoint.Addr()); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	return org, daemons, nil
}

// e28Run negotiates the interop service over the TCP fabric. kill, when
// >= 1, closes that daemon a tenth of a virtual second into the
// negotiation — mid proposal window — simulating a daemon crash; the
// formation must still complete via the protocol's renegotiation and
// the reliability layer's timeouts. After formation the coalition is
// dissolved and every surviving daemon's ledger must drain back to full
// capacity; the returned ledgersEmpty reports whether they all did.
func e28Run(kill radio.NodeID) (res *core.Result, ledgersEmpty bool, err error) {
	org, daemons, err := e28Fleet()
	if err != nil {
		return nil, false, err
	}
	defer org.Close()
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()

	ch := make(chan *core.Result, 4)
	o, err := org.Submit(qnet.InteropService(e28Tasks, e28Scale), core.DefaultOrganizerConfig, func(r *core.Result) {
		select {
		case ch <- r:
		default:
		}
	})
	if err != nil {
		return nil, false, err
	}
	if kill >= 1 {
		time.AfterFunc(time.Duration(0.1*e28TimeScale*float64(time.Second)), func() {
			daemons[kill-1].Close()
		})
	}
	select {
	case res = <-ch:
	case <-time.After(60 * time.Second):
		return nil, false, fmt.Errorf("xp: e28 TCP formation timed out")
	}

	o.Dissolve("e28 done")
	deadline := time.Now().Add(10 * time.Second)
	for !ledgersEmpty && time.Now().Before(deadline) {
		ledgersEmpty = true
		for i, d := range daemons {
			if radio.NodeID(i+1) == kill {
				continue // the killed daemon is closed, not reclaimed
			}
			if d.Res.Available() != d.Res.Capacity() {
				ledgersEmpty = false
			}
		}
		if org.Res.Available() != org.Res.Capacity() {
			ledgersEmpty = false
		}
		if !ledgersEmpty {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return res, ledgersEmpty, nil
}

// e28KillTarget picks which daemon the crash variant kills: the node
// the (deterministic) simulator run assigns most tasks to — the
// coalition's backbone — falling back to daemon 1 when the winner is
// the organizer itself.
func e28KillTarget(sim *core.Result) radio.NodeID {
	counts := map[radio.NodeID]int{}
	for _, a := range sim.Assigned {
		counts[a.Node]++
	}
	best, bestN := radio.NodeID(1), 0
	for id, n := range counts {
		if id == 0 {
			continue
		}
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best
}

// E28InteropTCP runs the identical neighbourhood and service through
// the discrete-event simulator and through real TCP loopback sockets
// (in-process qosnoded-equivalent daemons) and compares the resulting
// allocations. A second variant kills the coalition's strongest daemon
// mid-negotiation and requires the formation to complete anyway via
// renegotiation, with every surviving ledger ending exactly empty.
// Like E10, the networked half races goroutines and real sockets
// against scaled wall-clock timers, so its rows are not guaranteed
// bit-identical across runs.
func E28InteropTCP(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E28 TCP sockets vs simulator, with daemon crash",
		"trial", "sim-members", "tcp-members", "same-assignment", "crash-tasks", "crash-survives-kill", "ledgers-empty")
	reps := repeats(cfg)
	// Real sockets and scaled wall-clock timers: replications must not
	// contend for CPU, so this experiment always runs sequentially.
	cfg.Parallel = 1
	acc, err := sweep(cfg, reps, []int{0}, func(_ int, rep Rep) ([]float64, error) {
		simRes, err := qnet.InteropSim(rep.Seed, e28Total, e28Tasks, e28Scale)
		if err != nil {
			return nil, err
		}
		tcpRes, clean, err := e28Run(0)
		if err != nil {
			return nil, err
		}
		same := 0.0
		if sameAssignment(simRes, tcpRes) {
			same = 1
		}
		kill := e28KillTarget(simRes)
		killRes, killEmpty, err := e28Run(kill)
		if err != nil {
			return nil, err
		}
		avoided := 1.0
		for _, a := range killRes.Assigned {
			if a.Node == kill {
				avoided = 0
			}
		}
		empty := 0.0
		if clean && killEmpty {
			empty = 1
		}
		return []float64{
			float64(len(simRes.Members())),
			float64(len(tcpRes.Members())),
			same,
			float64(len(killRes.Assigned)),
			avoided,
			empty,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	matches, recovered := 0, 0
	for r := 0; r < reps; r++ {
		vec := acc.Get(0, r)
		if vec[2] != 0 {
			matches++
		}
		if vec[4] != 0 && vec[5] != 0 {
			recovered++
		}
		t.AddRow(r, int(vec[0]), int(vec[1]), vec[2] != 0, int(vec[3]), vec[4] != 0, vec[5] != 0)
	}
	t.Note("TCP loopback fabric; %d/%d identical allocations; %d/%d crash runs recovered with clean ledgers",
		matches, reps, recovered, reps)
	return t, nil
}
