package xp

import (
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/session"
	"repro/internal/workload"
)

// The city experiments (E20-E21) scale the open system out: instead of
// one neighbourhood at a time, the fabric engine runs a grid of
// independent neighbourhood shards on a worker pool and folds their
// steady-state stats into city-wide tables. Shard s derives all of its
// randomness from seed + s, so the tables are bit-identical at any
// -parallel width — scripts/determinism.sh enforces that in CI.

// splitHotEdge separates a 3x3 city's centre ("hot") shard from the
// merged 8 outer ("edge") shards — the reporting convention E21 and
// E24 share.
func splitHotEdge(res *fabric.Result) (hot fabric.ShardResult, edge session.Stats) {
	const centre = 4 // (1,1) of the 3x3 grid
	for i := range res.Shards {
		if i != centre {
			st := res.Shards[i].Stats
			edge.Merge(&st)
		}
	}
	return res.Shards[centre], edge
}

// cityRun drives one city replication. The fabric's shard pool reuses
// the sweep's parallelism knob: the replication is deterministic either
// way, the width only sets how many shards run concurrently.
func cityRun(rep Rep, cfg Config, city workload.CityScenario, churnPerHour float64) (*fabric.Result, error) {
	horizon, warmup := openHorizon(cfg.Quick)
	fc := fabric.Config{
		City:      city,
		Template:  workload.SessionTemplate{Name: "city", Tasks: 3, Scale: 1.0},
		HoldMean:  40,
		Horizon:   horizon,
		Warmup:    warmup,
		Organizer: core.DefaultOrganizerConfig,
		Parallel:  cfg.Parallel,
		Seed:      rep.Seed,
		SlowPath:  cfg.SlowPath,
	}
	if churnPerHour > 0 {
		fc.ChurnPerHour, fc.ChurnDownMean = churnPerHour, 30
	}
	return fabric.Run(fc)
}

// E20ShardScaling fixes the city-wide offered load and spreads it over
// more and more neighbourhood shards: the scale-out claim in simulated
// terms. One shard drowning in 16 erlangs blocks most sessions; eight
// shards carrying 2 erlangs each admit nearly everything — the city
// admits more sessions per simulated hour from the same demand, and
// because shards are independent the fabric turns extra cores directly
// into wall-clock speedup (BenchmarkCityFabric measures that half).
func E20ShardScaling(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E20 shard-count scaling at fixed total offered load",
		"shards", "nodes", "arrivals", "admission", "blocking", "admitted/h",
		"live-avg", "cpu-util", "events")
	shardCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		shardCounts = []int{1, 4}
	}
	const totalRate = 0.4 // sessions/s city-wide: 16 erlangs at 40 s holding
	horizon, warmup := openHorizon(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, shardCounts, func(shards int, rep Rep) ([]float64, error) {
		city := workload.CityScenario{
			Rows: 1, Cols: shards, NodesPerShard: 16,
			TotalRate: totalRate, Profile: workload.CityUniform,
		}
		res, err := cityRun(rep, cfg, city, 0)
		if err != nil {
			return nil, err
		}
		st := &res.City
		return []float64{
			float64(st.Nodes), float64(st.Arrivals),
			st.AdmissionRatio(), st.BlockingRatio(),
			float64(st.Admitted) * 3600 / (horizon - warmup),
			st.LiveAvg, st.Util[resource.CPU], float64(st.SimEvents),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, shards := range shardCounts {
		s := acc.Point(i)
		t.AddRow(shards, s[0].Mean(), s[1].Mean(),
			metrics.Ratio(s[2].Mean(), 1), metrics.Ratio(s[3].Mean(), 1),
			s[4].Mean(), s[5].Mean(), s[6].Mean(), s[7].Mean())
	}
	t.Note("city offered load fixed at %.2f sessions/s (%.0f erlangs at 40s holding), split uniformly across shards of 16 nodes", totalRate, totalRate*40)
	t.Note("horizon %gs, warmup %gs; %d seeds per row; shards run on the fabric worker pool — tables are identical at any -parallel width", horizon, warmup, reps)
	return t, nil
}

// E21HotspotImbalance fixes the city-wide offered load on a 3x3 grid
// and skews it toward the centre neighbourhood: mean load alone does
// not determine city-wide quality — the hotspot saturates while the
// edge shards idle, so blocking rises with skew at exactly equal total
// demand. The per-shard stats the fabric keeps make the mechanism
// visible: centre blocking explodes, edge blocking stays near zero.
func E21HotspotImbalance(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E21 hotspot imbalance at fixed total offered load",
		"boost", "hot-rate/s", "admission", "blocking", "hot-blocking", "edge-blocking",
		"live-avg", "cpu-util")
	boosts := []float64{1, 2, 4, 8}
	if cfg.Quick {
		boosts = []float64{1, 8}
	}
	const totalRate = 0.99 // 0.11 sessions/s per shard when uniform
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, boosts, func(boost float64, rep Rep) ([]float64, error) {
		city := workload.CityScenario{
			Rows: 3, Cols: 3, NodesPerShard: 16,
			TotalRate: totalRate, Profile: workload.CityHotspot, HotspotBoost: boost,
		}
		res, err := cityRun(rep, cfg, city, 0)
		if err != nil {
			return nil, err
		}
		hot, edge := splitHotEdge(res)
		return []float64{
			hot.Rate,
			res.City.AdmissionRatio(), res.City.BlockingRatio(),
			hot.Stats.BlockingRatio(), edge.BlockingRatio(),
			res.City.LiveAvg, res.City.Util[resource.CPU],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, boost := range boosts {
		s := acc.Point(i)
		t.AddRow(boost, s[0].Mean(),
			metrics.Ratio(s[1].Mean(), 1), metrics.Ratio(s[2].Mean(), 1),
			metrics.Ratio(s[3].Mean(), 1), metrics.Ratio(s[4].Mean(), 1),
			s[5].Mean(), s[6].Mean())
	}
	t.Note("3x3 grid of 16-node shards; city load fixed at %.2f sessions/s, hotspot weight 1+(boost-1)*2^-d, rates renormalized to the fixed total", totalRate)
	t.Note("hot = centre shard, edge = merged 8 outer shards; %d seeds per row", reps)
	return t, nil
}
