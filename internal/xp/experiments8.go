package xp

import (
	"repro/internal/adapt"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/workload"
)

// The adaptation experiments (E22-E24) measure what mid-session QoS
// renegotiation buys: instead of holding every admitted session at its
// admission-time levels (and killing it when churn takes a member), the
// adapt engine repairs churn-orphaned tasks via the degradation walk,
// sheds QoS under utilisation pressure, and reclaims it at epoch scans.
// All three derive every draw from the replication seed and the adapt
// engine draws no randomness at all, so the tables are bit-identical at
// any -parallel width (scripts/determinism.sh pins E22 and E24).

// adaptOrganizer is the organizer configuration for adaptation runs:
// heartbeat monitoring and protocol-level reconfiguration are off, so
// the adaptation engine is the single owner of churn repair (DESIGN.md
// §10's ownership rule).
func adaptOrganizer() core.OrganizerConfig {
	ocfg := core.DefaultOrganizerConfig
	ocfg.Monitor = false
	ocfg.Reconfigure = false
	return ocfg
}

// E22AdaptChurn compares churn repair policies under identical node
// churn: kill (the PR-3 baseline — an affected session dies), migrate
// (re-place orphaned tasks at their current level) and degrade
// (re-place at the smallest QoS degradation that restores feasibility).
// Survival rises monotonically from kill to degrade under the same
// seeds, and the degrade column shows the price: mean distance drift —
// how much worse than admission-time QoS the surviving sessions run.
func E22AdaptChurn(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E22 churn repair policy: degrade vs migrate vs kill",
		"policy", "survival", "admission", "qos-dist", "drift", "repairs", "kills", "leaves")
	policies := []adapt.ChurnPolicy{adapt.KillAffected, adapt.MigrateExact, adapt.DegradeToFit}
	const rate = 0.1
	const holdMean = 40.0
	const leavesPerHour = 360.0
	horizon, warmup := openHorizon(cfg.Quick)
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, policies, func(policy adapt.ChurnPolicy, rep Rep) ([]float64, error) {
		scfg := session.Config{
			Arrivals:   arrival.Poisson{Rate: rate},
			NewService: workload.SessionTemplate{Name: "e22", Tasks: 3, Scale: 1.0}.Instantiate,
			HoldMean:   holdMean,
			Horizon:    horizon,
			Warmup:     warmup,
			Organizer:  adaptOrganizer(),
			SlowPath:   cfg.SlowPath,
			Churn: &session.ChurnConfig{
				Leave:    arrival.Poisson{Rate: leavesPerHour / 3600},
				DownMean: 30,
			},
			Adapt: &adapt.Config{OnChurn: policy},
		}
		st, err := openRun(rep.Seed, 16, workload.ChurnMix, scfg)
		if err != nil {
			return nil, err
		}
		return []float64{
			st.SurvivalRatio(), st.AdmissionRatio(), st.DistanceAvg,
			st.Adapt.MeanDrift(), float64(st.Adapt.Repairs),
			float64(st.Adapt.Kills), float64(st.NodeLeaves),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		s := acc.Point(i)
		t.AddRow(policy.String(), metrics.Ratio(s[0].Mean(), 1), metrics.Ratio(s[1].Mean(), 1),
			s[2].Mean(), s[3].Mean(), s[4].Mean(), s[5].Mean(), s[6].Mean())
	}
	t.Note("16 nodes (no AP giant), %.2f sessions/s, holding %gs, %g leaves/h with 30s mean downtime; %d seeds per row", rate, holdMean, leavesPerHour, reps)
	t.Note("survival = admitted sessions not killed; drift = mean (departure - admission) QoS distance of surviving sessions; organizer monitor off — the adapt engine owns churn repair")
	return t, nil
}

// E23UpgradeReclamation drives a burst arrival profile through the
// pressure/reclamation triggers: during the burst the engine sheds QoS
// from live sessions (freeing capacity that lifts admission), and after
// the burst the epoch scans upgrade the degraded survivors back toward
// their admission-time levels. Comparing fixed / degrade-only /
// degrade+upgrade shows both halves: degradation buys admission at a
// distance cost, reclamation claws the distance back once the burst
// passes.
func E23UpgradeReclamation(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E23 upgrade reclamation after burst load",
		"policy", "admission", "qos-dist", "drift", "degrades", "upgrades", "adapted")
	policies := []string{"fixed", "degrade", "degrade+upgrade"}
	const mean = 0.15
	const holdMean = 40.0
	horizon, warmup := openHorizon(cfg.Quick)
	period := (horizon - warmup) / 4
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, policies, func(policy string, rep Rep) ([]float64, error) {
		scfg := session.Config{
			// The E18 burst shape: 10% of each period at 7.75x the mean
			// rate, mean preserved — deep transient overloads at equal
			// mean load.
			Arrivals: arrival.Inhomogeneous{Profile: arrival.Burst{
				Base: mean / 4, Burst: mean/4 + (3.0/4.0)*mean*10,
				Period: period, BurstLen: period / 10,
			}},
			NewService: workload.SessionTemplate{Name: "e23", Tasks: 3, Scale: 1.0}.Instantiate,
			HoldMean:   holdMean,
			Horizon:    horizon,
			Warmup:     warmup,
			Organizer:  adaptOrganizer(),
			SlowPath:   cfg.SlowPath,
		}
		if policy != "fixed" {
			scfg.Adapt = &adapt.Config{
				OnChurn:           adapt.DegradeToFit,
				DegradeOnPressure: true, UtilHigh: 0.85,
				UpgradeOnSlack: policy == "degrade+upgrade", UtilLow: 0.6,
				Epoch: 10,
			}
		}
		st, err := openRun(rep.Seed, 16, workload.ChurnMix, scfg)
		if err != nil {
			return nil, err
		}
		return []float64{
			st.AdmissionRatio(), st.DistanceAvg, st.Adapt.MeanDrift(),
			float64(st.Adapt.Degrades), float64(st.Adapt.Upgrades),
			float64(st.Adapt.AdaptedSessions),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		s := acc.Point(i)
		t.AddRow(policy, metrics.Ratio(s[0].Mean(), 1), s[1].Mean(), s[2].Mean(),
			s[3].Mean(), s[4].Mean(), s[5].Mean())
	}
	t.Note("16 nodes, burst arrivals at %.2f sessions/s mean (10%% of each %gs period at 7.75x), holding %gs; %d seeds per row", mean, period, holdMean, reps)
	t.Note("pressure threshold 0.85 max-kind node utilisation, reclamation hysteresis 0.6, epoch 10s; drift = mean (departure - admission) distance over departed sessions; adapted = departed sessions with at least one adaptation event")
	return t, nil
}

// E24CityAdaptation scales adaptation out to the city fabric: a 3x3
// hotspot grid under per-shard node churn, with the centre shard
// carrying 8x the edge load. Without adaptation every churn-affected
// session dies (the kill baseline); with degrade+upgrade repair the
// city-wide survival recovers, and the merged per-shard stats show the
// adaptation work concentrating where the load is — the hot shard
// degrades and reclaims, the edges barely adapt.
func E24CityAdaptation(cfg Config) (*metrics.Table, error) {
	t := metrics.NewTable("E24 city-scale adaptation under hotspot imbalance",
		"policy", "survival", "admission", "hot-blocking", "edge-blocking",
		"drift", "repairs", "kills", "hot-share")
	policies := []adapt.ChurnPolicy{adapt.KillAffected, adapt.DegradeToFit}
	const totalRate = 0.99
	reps := repeats(cfg)
	acc, err := sweep(cfg, reps, policies, func(policy adapt.ChurnPolicy, rep Rep) ([]float64, error) {
		horizon, warmup := openHorizon(cfg.Quick)
		res, err := fabric.Run(fabric.Config{
			City: workload.CityScenario{
				Rows: 3, Cols: 3, NodesPerShard: 16,
				TotalRate: totalRate, Profile: workload.CityHotspot, HotspotBoost: 8,
			},
			Template:     workload.SessionTemplate{Name: "e24", Tasks: 3, Scale: 1.0},
			HoldMean:     40,
			Horizon:      horizon,
			Warmup:       warmup,
			Organizer:    adaptOrganizer(),
			ChurnPerHour: 120, ChurnDownMean: 30,
			Adapt: &adapt.Config{
				OnChurn:           policy,
				DegradeOnPressure: policy == adapt.DegradeToFit, UtilHigh: 0.85,
				UpgradeOnSlack: policy == adapt.DegradeToFit, UtilLow: 0.6,
				Epoch: 10,
			},
			Parallel: cfg.Parallel,
			Seed:     rep.Seed,
			SlowPath: cfg.SlowPath,
		})
		if err != nil {
			return nil, err
		}
		hotShard, edge := splitHotEdge(res)
		hot := hotShard.Stats
		city := &res.City
		hotShare := 0.0
		if n := city.Adapt.Repairs + city.Adapt.Degrades + city.Adapt.Upgrades; n > 0 {
			hotShare = float64(hot.Adapt.Repairs+hot.Adapt.Degrades+hot.Adapt.Upgrades) / float64(n)
		}
		return []float64{
			city.SurvivalRatio(), city.AdmissionRatio(),
			hot.BlockingRatio(), edge.BlockingRatio(),
			city.Adapt.MeanDrift(), float64(city.Adapt.Repairs),
			float64(city.Adapt.Kills), hotShare,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		s := acc.Point(i)
		t.AddRow(policy.String(), metrics.Ratio(s[0].Mean(), 1), metrics.Ratio(s[1].Mean(), 1),
			metrics.Ratio(s[2].Mean(), 1), metrics.Ratio(s[3].Mean(), 1),
			s[4].Mean(), s[5].Mean(), s[6].Mean(), metrics.Ratio(s[7].Mean(), 1))
	}
	t.Note("3x3 grid of 16-node shards, city load %.2f sessions/s with hotspot boost 8, 120 leaves/h per shard (30s mean downtime); %d seeds per row", totalRate, reps)
	t.Note("hot-share = fraction of all adaptation events (repairs+degrades+upgrades) in the centre shard; organizer monitor off — the adapt engine owns churn repair")
	return t, nil
}
