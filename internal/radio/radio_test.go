package radio

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func newTestMedium(t *testing.T, cfg Config) (*sim.Engine, *Medium) {
	t.Helper()
	eng := sim.New(1)
	return eng, NewMedium(eng, cfg)
}

type capture struct {
	from []NodeID
	msgs []any
}

func (c *capture) handler() Handler {
	return func(from NodeID, msg any) {
		c.from = append(c.from, from)
		c.msgs = append(c.msgs, msg)
	}
}

func TestPosDist(t *testing.T) {
	if d := (Pos{0, 0}).Dist(Pos{3, 4}); d != 5 {
		t.Errorf("dist = %v", d)
	}
	if d := (Pos{1, 1}).Dist(Pos{1, 1}); d != 0 {
		t.Errorf("self dist = %v", d)
	}
}

func TestAttachValidation(t *testing.T) {
	_, m := newTestMedium(t, Config{})
	if err := m.Attach(1, Static{}, 100, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(1, Static{}, 100, 1e6, nil); err == nil {
		t.Error("duplicate attach accepted")
	}
	if err := m.Attach(2, nil, 100, 1e6, nil); err == nil {
		t.Error("nil mobility accepted")
	}
	if err := m.Attach(3, Static{}, 0, 1e6, nil); err == nil {
		t.Error("zero range accepted")
	}
	if err := m.Attach(4, Static{}, 10, 0, nil); err == nil {
		t.Error("zero bitrate accepted")
	}
}

func TestInRangeSymmetricMinRange(t *testing.T) {
	_, m := newTestMedium(t, Config{})
	// a has range 100, b only 30; they sit 50 apart -> NOT in range
	// (symmetric links use the smaller radio).
	if err := m.Attach(1, Static{X: 0}, 100, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, Static{X: 50}, 30, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if m.InRange(1, 2) || m.InRange(2, 1) {
		t.Error("links must use min(range_a, range_b)")
	}
	if err := m.Attach(3, Static{X: 20}, 30, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if !m.InRange(1, 3) || !m.InRange(3, 1) {
		t.Error("nodes 20 m apart with 30 m radios must connect")
	}
	if m.InRange(1, 99) {
		t.Error("unknown node in range")
	}
}

func TestNeighborsSorted(t *testing.T) {
	_, m := newTestMedium(t, Config{})
	for i := 5; i >= 1; i-- {
		if err := m.Attach(NodeID(i), Static{X: float64(i)}, 100, 1e6, nil); err != nil {
			t.Fatal(err)
		}
	}
	nb := m.Neighbors(3)
	want := []NodeID{1, 2, 4, 5}
	if len(nb) != len(want) {
		t.Fatalf("neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Errorf("neighbors[%d] = %v, want %v (ascending)", i, nb[i], want[i])
		}
	}
}

func TestSendDeliversWithLatency(t *testing.T) {
	eng, m := newTestMedium(t, Config{ProcDelay: 0.01})
	var rx capture
	if err := m.Attach(1, Static{X: 0}, 100, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, Static{X: 10}, 100, 1e6, rx.handler()); err != nil {
		t.Fatal(err)
	}
	m.Send(1, 2, "hello", 1000) // tx = 8000 bits / 1e6 = 8 ms, + 10 ms proc
	if len(rx.msgs) != 0 {
		t.Fatal("delivery must not be synchronous")
	}
	eng.Run(0)
	if len(rx.msgs) != 1 || rx.msgs[0] != "hello" || rx.from[0] != 1 {
		t.Fatalf("rx = %+v", rx)
	}
	wantLat := 0.018
	if math.Abs(eng.Now()-wantLat) > 1e-9 {
		t.Errorf("delivery at %v, want %v", eng.Now(), wantLat)
	}
	if m.Stats.Unicasts != 1 || m.Stats.Deliveries != 1 || m.Stats.Bytes != 1000 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestBroadcastReachesOnlyNeighbors(t *testing.T) {
	eng, m := newTestMedium(t, Config{})
	var near, far capture
	if err := m.Attach(1, Static{X: 0}, 50, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, Static{X: 10}, 50, 1e6, near.handler()); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(3, Static{X: 500}, 50, 1e6, far.handler()); err != nil {
		t.Fatal(err)
	}
	m.SendBroadcast(1, "cfp", 100)
	eng.Run(0)
	if len(near.msgs) != 1 {
		t.Error("in-range neighbour missed broadcast")
	}
	if len(far.msgs) != 0 {
		t.Error("out-of-range node heard broadcast")
	}
	if m.Stats.Broadcasts != 1 {
		t.Errorf("broadcast count = %d", m.Stats.Broadcasts)
	}
}

func TestDownNodesNeitherSendNorReceive(t *testing.T) {
	eng, m := newTestMedium(t, Config{})
	var rx capture
	if err := m.Attach(1, Static{X: 0}, 100, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, Static{X: 10}, 100, 1e6, rx.handler()); err != nil {
		t.Fatal(err)
	}
	m.SetDown(2, true)
	if !m.Down(2) || m.Down(1) {
		t.Error("Down flag broken")
	}
	m.Send(1, 2, "x", 10)
	eng.Run(0)
	if len(rx.msgs) != 0 {
		t.Error("down node received")
	}
	m.SetDown(2, false)
	m.SetDown(1, true)
	m.Send(1, 2, "y", 10)
	eng.Run(0)
	if len(rx.msgs) != 0 {
		t.Error("down sender transmitted")
	}
	if m.Stats.Unreachable == 0 {
		t.Error("unreachable not counted")
	}
	// Recovery restores connectivity.
	m.SetDown(1, false)
	m.Send(1, 2, "z", 10)
	eng.Run(0)
	if len(rx.msgs) != 1 {
		t.Error("recovered node cannot send")
	}
}

func TestFailureDuringFlightDropsDelivery(t *testing.T) {
	eng, m := newTestMedium(t, Config{ProcDelay: 1.0})
	var rx capture
	if err := m.Attach(1, Static{X: 0}, 100, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, Static{X: 10}, 100, 1e6, rx.handler()); err != nil {
		t.Fatal(err)
	}
	m.Send(1, 2, "x", 10)
	eng.At(0.5, func() { m.SetDown(2, true) }) // fails while message in flight
	eng.Run(0)
	if len(rx.msgs) != 0 {
		t.Error("message delivered to node that failed mid-flight")
	}
}

func TestLossProbability(t *testing.T) {
	eng, m := newTestMedium(t, Config{LossProb: 0.5})
	var rx capture
	if err := m.Attach(1, Static{X: 0}, 100, 1e9, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, Static{X: 1}, 100, 1e9, rx.handler()); err != nil {
		t.Fatal(err)
	}
	const total = 2000
	for i := 0; i < total; i++ {
		m.Send(1, 2, i, 10)
	}
	eng.Run(0)
	got := len(rx.msgs)
	if got < total/3 || got > 2*total/3 {
		t.Errorf("deliveries = %d of %d with 50%% loss", got, total)
	}
	if m.Stats.Drops+m.Stats.Deliveries != total {
		t.Errorf("drops %d + deliveries %d != %d", m.Stats.Drops, m.Stats.Deliveries, total)
	}
}

func TestTxTime(t *testing.T) {
	_, m := newTestMedium(t, Config{})
	if err := m.Attach(1, Static{X: 0}, 100, 2e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, Static{X: 10}, 100, 10e6, nil); err != nil {
		t.Fatal(err)
	}
	// Bottleneck is the slower radio: 2e6 b/s.
	want := float64(1000*8) / 2e6
	if got := m.TxTime(1, 2, 1000); math.Abs(got-want) > 1e-12 {
		t.Errorf("TxTime = %v, want %v", got, want)
	}
	if m.TxTime(1, 1, 1000) != 0 {
		t.Error("self tx must be free")
	}
	if !math.IsInf(m.TxTime(1, 99, 10), 1) {
		t.Error("unknown destination must be +Inf")
	}
	m.SetDown(2, true)
	if !math.IsInf(m.TxTime(1, 2, 10), 1) {
		t.Error("down destination must be +Inf")
	}
}

func TestWaypointMobility(t *testing.T) {
	w, err := NewWaypoint(10, 1, Pos{0, 0}, Pos{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p := w.Pos(0); p != (Pos{0, 0}) {
		t.Errorf("t=0 pos = %v", p)
	}
	if p := w.Pos(0.5); p != (Pos{0, 0}) {
		t.Errorf("pause ignored: %v", p)
	}
	// After 1 s pause + 5 s travel = half way.
	p := w.Pos(6)
	if math.Abs(p.X-50) > 1e-9 {
		t.Errorf("mid-travel pos = %v, want x=50", p)
	}
	// Past the trace end, parked at the final waypoint.
	if p := w.Pos(1000); p != (Pos{100, 0}) {
		t.Errorf("final pos = %v", p)
	}
	if _, err := NewWaypoint(0, 1, Pos{}); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := NewWaypoint(1, 1); err == nil {
		t.Error("empty trace accepted")
	}
	single, err := NewWaypoint(1, 0, Pos{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if single.Pos(99) != (Pos{5, 5}) {
		t.Error("single waypoint must be static")
	}
}

func TestMobilityBreaksLinks(t *testing.T) {
	eng, m := newTestMedium(t, Config{})
	w, err := NewWaypoint(10, 0, Pos{0, 0}, Pos{1000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(1, Static{X: 0}, 50, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(2, w, 50, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if !m.InRange(1, 2) {
		t.Fatal("initially in range")
	}
	eng.At(10, func() { // node 2 has walked 100 m
		if m.InRange(1, 2) {
			t.Error("link survived beyond radio range")
		}
	})
	eng.Run(0)
}

func TestSetHandlerAndNodeIDs(t *testing.T) {
	eng, m := newTestMedium(t, Config{})
	if err := m.Attach(2, Static{}, 10, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(1, Static{}, 10, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	ids := m.NodeIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("NodeIDs = %v", ids)
	}
	var rx capture
	m.SetHandler(2, rx.handler())
	m.Send(1, 2, "x", 1)
	eng.Run(0)
	if len(rx.msgs) != 1 {
		t.Error("late-bound handler missed message")
	}
	if _, ok := m.PosOf(1); !ok {
		t.Error("PosOf known node failed")
	}
	if _, ok := m.PosOf(9); ok {
		t.Error("PosOf unknown node succeeded")
	}
}

// scriptedInterceptor replays a fixed fate sequence, one per delivery.
type scriptedInterceptor struct {
	fates []Fate
	i     int
}

func (s *scriptedInterceptor) DeliverFate(now float64, from, to NodeID, size int) Fate {
	if s.i >= len(s.fates) {
		return Fate{}
	}
	f := s.fates[s.i]
	s.i++
	return f
}

func TestInterceptorFates(t *testing.T) {
	eng, m := newTestMedium(t, Config{})
	if err := m.Attach(1, Static{}, 50, 1e6, nil); err != nil {
		t.Fatal(err)
	}
	var rx capture
	if err := m.Attach(2, Static{X: 10}, 50, 1e6, rx.handler()); err != nil {
		t.Fatal(err)
	}
	m.SetInterceptor(&scriptedInterceptor{fates: []Fate{
		{Drop: true},
		{Dup: true, DupDelay: 0.5},
		{Delay: 2},
		{},
	}})
	for i := 0; i < 4; i++ {
		m.Send(1, 2, i, 8)
	}
	var arrivals []float64
	m.SetHandler(2, func(from NodeID, msg any) {
		rx.handler()(from, msg)
		arrivals = append(arrivals, eng.Now())
	})
	eng.Run(0)
	// msg 0 dropped; msg 1 duplicated; msg 2 delayed 2s; msg 3 normal.
	if len(rx.msgs) != 4 {
		t.Fatalf("delivered %d messages, want 4 (dup of 1, delayed 2, normal 3): %v", len(rx.msgs), rx.msgs)
	}
	if m.Stats.FaultDrops != 1 || m.Stats.FaultDups != 1 {
		t.Fatalf("fault stats = %+v", m.Stats)
	}
	for _, msg := range rx.msgs {
		if msg.(int) == 0 {
			t.Fatal("dropped message delivered")
		}
	}
	// The delayed message must land 2s after the base latency; the dup
	// 0.5s after its original.
	last := arrivals[len(arrivals)-1]
	if last < 2 {
		t.Fatalf("delay spike not applied: final arrival at %g", last)
	}
}

func TestNilInterceptorIdentical(t *testing.T) {
	run := func(install bool) Stats {
		eng, m := newTestMedium(t, Config{LossProb: 0.3})
		if err := m.Attach(1, Static{}, 50, 1e6, nil); err != nil {
			t.Fatal(err)
		}
		var rx capture
		if err := m.Attach(2, Static{X: 10}, 50, 1e6, rx.handler()); err != nil {
			t.Fatal(err)
		}
		if install {
			m.SetInterceptor(&scriptedInterceptor{}) // always zero fates
		}
		for i := 0; i < 200; i++ {
			m.Send(1, 2, i, 8)
		}
		eng.Run(0)
		return m.Stats
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("zero-fate interceptor perturbed the medium: %+v vs %+v", a, b)
	}
}
