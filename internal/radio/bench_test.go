package radio

import (
	"testing"

	"repro/internal/sim"
)

// benchMedium builds an n-node fully connected medium.
func benchMedium(b *testing.B, n int) (*sim.Engine, *Medium) {
	b.Helper()
	eng := sim.New(1)
	m := NewMedium(eng, Config{ProcDelay: 0.001})
	for i := 0; i < n; i++ {
		if err := m.Attach(NodeID(i), Static{X: float64(i % 8), Y: float64(i / 8)}, 100, 1e7, func(NodeID, any) {}); err != nil {
			b.Fatal(err)
		}
	}
	return eng, m
}

func BenchmarkBroadcast32(b *testing.B) {
	eng, m := benchMedium(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SendBroadcast(0, "cfp", 512)
		eng.Run(0)
	}
}

func BenchmarkUnicastChain(b *testing.B) {
	eng, m := benchMedium(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(0, 1, i, 256)
		eng.Run(0)
	}
}

func BenchmarkNeighbors64(b *testing.B) {
	_, m := benchMedium(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Neighbors(0)) == 0 {
			b.Fatal("no neighbours")
		}
	}
}
