// Package radio simulates the spontaneous local ad-hoc network of the
// paper: nodes on a 2-D plane, unit-disk connectivity (two nodes hear
// each other when within radio range), optional mobility, and a message
// medium with transmission + propagation latency and loss injection.
// Coalition negotiation happens between single-hop neighbours, matching
// the paper's "nodes move in range of each other" scenario.
package radio

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// NodeID identifies a node on the medium.
type NodeID int

// Broadcast is the destination used for broadcast sends.
const Broadcast NodeID = -1

// Pos is a point on the simulation plane, in meters.
type Pos struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Pos) Dist(o Pos) float64 {
	dx, dy := p.X-o.X, p.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Mobility produces a node's position as a function of simulated time.
type Mobility interface {
	Pos(t sim.Time) Pos
}

// Static is a non-moving node.
type Static Pos

// Pos implements Mobility.
func (s Static) Pos(sim.Time) Pos { return Pos(s) }

// Waypoint is a simple random-waypoint-style mobility trace: the node
// moves between successive waypoints at constant speed, pausing at each.
// The trace is precomputed so that position lookup is deterministic and
// cheap.
type Waypoint struct {
	Points []Pos      // successive waypoints, at least one
	Speed  float64    // meters per second, > 0
	Pause  float64    // seconds paused at each waypoint
	starts []sim.Time // computed arrival times
}

// NewWaypoint builds a waypoint trace and precomputes segment timing.
func NewWaypoint(speed, pause float64, points ...Pos) (*Waypoint, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("radio: waypoint trace needs at least one point")
	}
	if speed <= 0 {
		return nil, fmt.Errorf("radio: waypoint speed must be positive")
	}
	w := &Waypoint{Points: points, Speed: speed, Pause: pause}
	w.starts = make([]sim.Time, len(points))
	t := sim.Time(0)
	for i := 1; i < len(points); i++ {
		t += pause + points[i-1].Dist(points[i])/speed
		w.starts[i] = t
	}
	return w, nil
}

// Pos implements Mobility: position at time t along the trace; the node
// stays at the final waypoint after the trace completes.
func (w *Waypoint) Pos(t sim.Time) Pos {
	if t <= 0 || len(w.Points) == 1 {
		return w.Points[0]
	}
	for i := 1; i < len(w.Points); i++ {
		arrive := w.starts[i]
		depart := w.starts[i-1] + w.Pause
		if t >= arrive {
			continue
		}
		if t <= depart {
			return w.Points[i-1]
		}
		frac := (t - depart) / (arrive - depart)
		a, b := w.Points[i-1], w.Points[i]
		return Pos{X: a.X + (b.X-a.X)*frac, Y: a.Y + (b.Y-a.Y)*frac}
	}
	return w.Points[len(w.Points)-1]
}

// Handler receives a delivered message.
type Handler func(from NodeID, msg any)

// Link is the transport-independent description of one node's radio
// parameters: where it is and how it is heard. It is the unit of the
// link model shared by the simulated medium, the in-process live
// runtime, and the TCP fabric's peer directory (internal/net), so that
// reachability and communication cost evaluate bit-identically on every
// runtime — a node's Hello registration on the networked fabric carries
// exactly these fields.
type Link struct {
	Pos     Pos
	RangeM  float64 // radio range in meters
	Bitrate float64 // link bitrate in bits per second
}

// LinkInRange reports whether two links can currently hear each other:
// within the smaller of the two radio ranges (symmetric links).
func LinkInRange(a, b Link) bool {
	return a.Pos.Dist(b.Pos) <= math.Min(a.RangeM, b.RangeM)
}

// LinkLatency is the one-way delivery latency of size bytes between two
// links: transmission at the slower endpoint's rate, plus per-meter
// propagation, plus fixed processing. The expression is shared verbatim
// by every runtime so the organizer's communication-cost criterion
// selects identical winners over the radio medium, goroutine channels,
// and TCP sockets.
func LinkLatency(a, b Link, size int64, propDelay, procDelay float64) float64 {
	rate := math.Min(a.Bitrate, b.Bitrate)
	tx := float64(size*8) / rate
	d := a.Pos.Dist(b.Pos)
	return tx + d*propDelay + procDelay
}

// nodeState is the medium's view of one attached node.
type nodeState struct {
	id       NodeID
	mobility Mobility
	rangeM   float64 // radio range in meters
	bitrate  float64 // link bitrate in bits per second
	handler  Handler
	down     bool
}

// Config tunes the medium.
type Config struct {
	// PropDelay is the per-meter propagation delay in seconds (default
	// effectively zero; kept configurable for long-range scenarios).
	PropDelay float64
	// ProcDelay is fixed per-message processing latency in seconds
	// (MAC + protocol stack), applied to every delivery.
	ProcDelay float64
	// LossProb is the independent probability that any single delivery
	// is dropped.
	LossProb float64
}

// Stats aggregates medium activity for the message-overhead experiments.
type Stats struct {
	Unicasts    uint64
	Broadcasts  uint64
	Deliveries  uint64
	Drops       uint64 // lost to LossProb
	Unreachable uint64 // destination out of range or down
	Bytes       uint64
	// FaultDrops and FaultDups count deliveries consumed or cloned by an
	// installed fault Interceptor (internal/faults); zero without one.
	FaultDrops uint64
	FaultDups  uint64
}

// Fate is an Interceptor's verdict on one delivery. The zero value
// delivers normally.
type Fate struct {
	// Drop consumes the delivery entirely.
	Drop bool
	// Delay adds seconds on top of the modeled latency; large spikes
	// reorder the message past later traffic.
	Delay float64
	// Dup schedules a second, identical delivery DupDelay seconds after
	// the first (0 = back-to-back on the same tick).
	Dup      bool
	DupDelay float64
}

// Interceptor decides the fate of every otherwise-successful delivery:
// the adversarial hook the deterministic fault injector
// (internal/faults) attaches to. It runs after reachability and
// LossProb, so a nil or always-zero interceptor leaves the medium's
// behavior and rng draw sequence byte-identical.
type Interceptor interface {
	DeliverFate(now float64, from, to NodeID, size int) Fate
}

// Medium connects nodes through the simulated ether. All methods must be
// called from the simulation goroutine (the engine's event loop).
type Medium struct {
	eng   *sim.Engine
	cfg   Config
	nodes map[NodeID]*nodeState

	// deliveries is a free-list of in-flight delivery records, recycled
	// when their event fires: one pooled object per message instead of
	// one closure allocation per send.
	deliveries []*delivery
	// bcast is the reused neighbor scratch for SendBroadcast.
	bcast []NodeID
	// ids caches the ascending node-ID list; invalidated by Attach.
	ids []NodeID

	// interceptor, when set, rules on every otherwise-successful
	// delivery (fault injection); nil costs one predictable branch.
	interceptor Interceptor

	// Stats is exported for experiment harvesting.
	Stats Stats
}

// NewMedium builds a medium on the engine.
func NewMedium(eng *sim.Engine, cfg Config) *Medium {
	return &Medium{eng: eng, cfg: cfg, nodes: make(map[NodeID]*nodeState)}
}

// delivery is one scheduled message delivery, pooled on the medium.
type delivery struct {
	m    *Medium
	from NodeID
	to   NodeID
	msg  any
}

// runDelivery is the shared event handler for every delivery record.
func runDelivery(x any) {
	d := x.(*delivery)
	m := d.m
	n, ok := m.nodes[d.to]
	if !ok || n.down || n.handler == nil {
		m.Stats.Unreachable++
	} else {
		m.Stats.Deliveries++
		n.handler(d.from, d.msg)
	}
	d.msg = nil
	m.deliveries = append(m.deliveries, d)
}

// Attach registers a node. bitrate is the node's link speed in bits/s,
// rangeM its radio range in meters.
func (m *Medium) Attach(id NodeID, mob Mobility, rangeM, bitrate float64, h Handler) error {
	if _, dup := m.nodes[id]; dup {
		return fmt.Errorf("radio: node %d already attached", id)
	}
	if mob == nil {
		return fmt.Errorf("radio: node %d has nil mobility", id)
	}
	if rangeM <= 0 || bitrate <= 0 {
		return fmt.Errorf("radio: node %d needs positive range and bitrate", id)
	}
	m.nodes[id] = &nodeState{id: id, mobility: mob, rangeM: rangeM, bitrate: bitrate, handler: h}
	m.ids = nil // invalidate the cached ID list
	return nil
}

// SetHandler replaces a node's delivery handler.
func (m *Medium) SetHandler(id NodeID, h Handler) {
	if n, ok := m.nodes[id]; ok {
		n.handler = h
	}
}

// SetDown marks a node failed (true) or recovered (false); down nodes
// neither send nor receive. Used by the failure-injection experiments.
func (m *Medium) SetDown(id NodeID, down bool) {
	if n, ok := m.nodes[id]; ok {
		n.down = down
	}
}

// Down reports whether the node is currently failed.
func (m *Medium) Down(id NodeID) bool {
	n, ok := m.nodes[id]
	return ok && n.down
}

// PosOf returns a node's current position.
func (m *Medium) PosOf(id NodeID) (Pos, bool) {
	n, ok := m.nodes[id]
	if !ok {
		return Pos{}, false
	}
	return n.mobility.Pos(m.eng.Now()), true
}

// InRange reports whether a and b can currently hear each other: both up
// and within the smaller of the two radio ranges (symmetric links).
func (m *Medium) InRange(a, b NodeID) bool {
	na, ok := m.nodes[a]
	if !ok || na.down {
		return false
	}
	nb, ok := m.nodes[b]
	if !ok || nb.down {
		return false
	}
	return LinkInRange(m.linkOf(na), m.linkOf(nb))
}

// linkOf snapshots a node's link description at the current instant.
func (m *Medium) linkOf(n *nodeState) Link {
	return Link{Pos: n.mobility.Pos(m.eng.Now()), RangeM: n.rangeM, Bitrate: n.bitrate}
}

// Neighbors returns the IDs currently in range of id, in ascending order.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	return m.neighborsInto(id, nil)
}

// neighborsInto appends the IDs currently in range of id to buf (reused
// by SendBroadcast to keep the per-broadcast scan allocation-free).
func (m *Medium) neighborsInto(id NodeID, buf []NodeID) []NodeID {
	for other := range m.nodes {
		if other != id && m.InRange(id, other) {
			buf = append(buf, other)
		}
	}
	sortNodeIDs(buf)
	return buf
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// latency computes the one-way delivery latency for size bytes between
// two attached nodes.
func (m *Medium) latency(from, to *nodeState, size int) float64 {
	return LinkLatency(m.linkOf(from), m.linkOf(to), int64(size), m.cfg.PropDelay, m.cfg.ProcDelay)
}

// TxTime estimates the transfer time of size bytes from a to b at the
// current instant; used as the communication-cost term during proposal
// selection. Returns +Inf when the pair is not connected.
func (m *Medium) TxTime(a, b NodeID, size int64) float64 {
	if a == b {
		return 0
	}
	na, okA := m.nodes[a]
	nb, okB := m.nodes[b]
	if !okA || !okB || !m.InRange(a, b) {
		return math.Inf(1)
	}
	return m.latency(na, nb, int(size))
}

// Send delivers msg of the given wire size from one node to another after
// the modeled latency. Out-of-range or down destinations are counted and
// dropped silently, like real radio.
func (m *Medium) Send(from, to NodeID, msg any, size int) {
	src, ok := m.nodes[from]
	if !ok || src.down {
		m.Stats.Unreachable++
		return
	}
	m.Stats.Unicasts++
	m.Stats.Bytes += uint64(size)
	m.deliver(src, to, msg, size)
}

// SendBroadcast delivers msg to every node currently in range of from.
func (m *Medium) SendBroadcast(from NodeID, msg any, size int) {
	src, ok := m.nodes[from]
	if !ok || src.down {
		m.Stats.Unreachable++
		return
	}
	m.Stats.Broadcasts++
	m.Stats.Bytes += uint64(size)
	m.bcast = m.neighborsInto(from, m.bcast[:0])
	for _, to := range m.bcast {
		m.deliver(src, to, msg, size)
	}
}

// SetInterceptor installs (or, with nil, removes) the delivery fault
// hook. With none installed the medium behaves byte-identically to a
// build without the hook: the interceptor runs strictly after the
// LossProb draw and never touches the engine rng.
func (m *Medium) SetInterceptor(i Interceptor) { m.interceptor = i }

func (m *Medium) deliver(src *nodeState, to NodeID, msg any, size int) {
	dst, ok := m.nodes[to]
	if !ok || dst.down || !m.InRange(src.id, to) {
		m.Stats.Unreachable++
		return
	}
	if m.cfg.LossProb > 0 && m.eng.Rand().Float64() < m.cfg.LossProb {
		m.Stats.Drops++
		return
	}
	lat := m.latency(src, dst, size)
	if m.interceptor != nil {
		fate := m.interceptor.DeliverFate(m.eng.Now(), src.id, to, size)
		if fate.Drop {
			m.Stats.FaultDrops++
			return
		}
		lat += fate.Delay
		if fate.Dup {
			m.Stats.FaultDups++
			m.schedule(src.id, to, msg, lat+fate.DupDelay)
		}
	}
	m.schedule(src.id, to, msg, lat)
}

// schedule queues one delivery event after lat seconds, recycling a
// pooled record.
func (m *Medium) schedule(from, to NodeID, msg any, lat float64) {
	var d *delivery
	if n := len(m.deliveries); n > 0 {
		d = m.deliveries[n-1]
		m.deliveries = m.deliveries[:n-1]
	} else {
		d = &delivery{m: m}
	}
	d.from, d.to, d.msg = from, to, msg
	m.eng.AfterArg(lat, runDelivery, d)
}

// NodeIDs returns all attached node IDs in ascending order. The slice is
// freshly allocated and owned by the caller; hot paths should prefer IDs.
func (m *Medium) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	return ids
}

// IDs returns the cached ascending node-ID list. The slice is shared and
// MUST be treated as read-only; it is rebuilt after every Attach. Hot
// per-tick readers (utilization sampling, adaptation scans, churn victim
// selection) use it to avoid re-sorting the population every event.
func (m *Medium) IDs() []NodeID {
	if m.ids == nil {
		m.ids = m.NodeIDs()
	}
	return m.ids
}
