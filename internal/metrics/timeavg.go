package metrics

import "math"

// TimeAvg integrates a piecewise-constant signal over simulated time
// and reports its time-weighted mean. The open-system experiments use
// it for steady-state quantities that a plain per-event Sample would
// bias toward busy periods: live-session count, mean QoS distance of
// the sessions currently operating, and per-resource utilization.
//
// Observe(t, v) declares that the signal holds value v from time t
// until the next observation; Mean(until) closes the last segment at
// until and returns the average over [firstT, until]. Observations must
// come with non-decreasing t (the discrete-event clock is monotone); an
// earlier t is clamped to the latest one seen.
type TimeAvg struct {
	started      bool
	firstT       float64
	lastT, lastV float64
	area         float64
}

// Observe records that the signal takes value v at time t.
func (a *TimeAvg) Observe(t, v float64) {
	if !a.started {
		a.started = true
		a.firstT, a.lastT, a.lastV = t, t, v
		return
	}
	if t < a.lastT {
		t = a.lastT
	}
	a.area += a.lastV * (t - a.lastT)
	a.lastT, a.lastV = t, v
}

// Merge folds another time average into a as the parallel (sum-signal)
// composition: the merged accumulator integrates a(t) + b(t), where
// each signal is 0 before its first observation and holds its last
// value after its last one — the same extension Mean applies. Over one
// shared observation window the sum-signal mean equals the sum of the
// per-signal means; that identity, pinned by the property tests here,
// is why the city fabric's scalar fold (session.Stats.Merge) may
// simply add per-shard LiveAvg values — every shard observes over the
// same [warmup, horizon] window. For a pair the fold is commutative
// (two float additions), and any fixed merge order is deterministic.
func (a *TimeAvg) Merge(b *TimeAvg) {
	if b == nil || !b.started {
		return
	}
	if !a.started {
		*a = *b
		return
	}
	first := math.Min(a.firstT, b.firstT)
	last := math.Max(a.lastT, b.lastT)
	a.area += a.lastV*(last-a.lastT) + b.area + b.lastV*(last-b.lastT)
	a.firstT, a.lastT = first, last
	a.lastV += b.lastV
}

// Mean returns the time-weighted average over [firstT, until]. Before
// any observation it returns 0; with zero elapsed time it returns the
// last observed value.
func (a *TimeAvg) Mean(until float64) float64 {
	if !a.started {
		return 0
	}
	if until < a.lastT {
		until = a.lastT
	}
	span := until - a.firstT
	if span <= 0 {
		return a.lastV
	}
	return (a.area + a.lastV*(until-a.lastT)) / span
}
