package metrics

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestJSONLStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	want := []Entry{
		{Commit: "abc1234", Source: "bench.sh", Kind: "bench",
			Name: "BenchmarkFormulate", Metrics: map[string]float64{"ns_op": 494.9, "allocs_op": 4}},
		{Commit: "def5678", Kind: "experiment",
			Name: "E17/rate/s=0.05", Metrics: map[string]float64{"admission": 0.97}},
	}
	st, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range want[:1] {
		if err := st.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open: the store is append-only across sessions.
	st, err = OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Record(want[1]); err != nil {
		t.Fatal(err)
	}
	st.Close()

	got, err := ReadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadStoreMissingFileIsEmpty(t *testing.T) {
	got, err := ReadStore(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || got != nil {
		t.Fatalf("missing store: %v, %v", got, err)
	}
}

func TestReadStoreRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	os.WriteFile(path, []byte("{\"kind\":\"bench\"}\nnot json\n"), 0o644)
	if _, err := ReadStore(path); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestBenchDocEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	os.WriteFile(path, []byte(`{
	  "commit": "69b88cf", "date": "2026-08-08T00:00:00Z", "go": "go1.24.0",
	  "benchmarks": {
	    "BenchmarkB": {"ns_op": 2, "bytes_op": null, "allocs_op": null},
	    "BenchmarkA": {"ns_op": 1, "bytes_op": 10, "allocs_op": 3}
	  }
	}`), 0o644)
	d, err := ReadBenchDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Entries("import")
	want := []Entry{
		{Commit: "69b88cf", Date: "2026-08-08T00:00:00Z", Source: "import", Kind: "bench",
			Name: "BenchmarkA", Metrics: map[string]float64{"ns_op": 1, "bytes_op": 10, "allocs_op": 3}},
		{Commit: "69b88cf", Date: "2026-08-08T00:00:00Z", Source: "import", Kind: "bench",
			Name: "BenchmarkB", Metrics: map[string]float64{"ns_op": 2}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("entries:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestTableMetricsParsesRatioCells(t *testing.T) {
	tb := NewTable("t", "rate/s", "admission", "qos-dist", "label")
	tb.AddRow(0.05, Ratio(0.613, 1), 0.25, "burst")
	keys, rows := tb.Metrics()
	if len(keys) != 1 || keys[0] != "rate/s=0.05" {
		t.Fatalf("keys = %v", keys)
	}
	want := map[string]float64{"admission": 0.613, "qos-dist": 0.25}
	if !reflect.DeepEqual(rows[0], want) {
		t.Fatalf("metrics = %v, want %v", rows[0], want)
	}
}

func TestResultsEntries(t *testing.T) {
	r := &Results{Describe: "abc", Started: "2026-08-08T00:00:00Z"}
	tb := NewTable("E17", "rate/s", "admission")
	tb.AddRow(0.05, Ratio(0.97, 1))
	r.Add("E17", "t", "c", 2e9, tb, nil)
	r.Add("E18", "t", "c", 0, nil, os.ErrInvalid) // errored: skipped
	got := r.Entries("qosbench")
	if len(got) != 2 {
		t.Fatalf("entries = %+v", got)
	}
	if got[0].Name != "E17/rate/s=0.05" || got[0].Metrics["admission"] != 0.97 {
		t.Fatalf("row entry: %+v", got[0])
	}
	if got[1].Name != "E17/wall" || got[1].Metrics["seconds"] != 2 {
		t.Fatalf("wall entry: %+v", got[1])
	}
}

func TestReadBenchDocLegacyShapes(t *testing.T) {
	dir := t.TempDir()
	pr2 := filepath.Join(dir, "pr2.json")
	os.WriteFile(pr2, []byte(`{"pr": 2, "title": "t",
	  "before": {"BenchmarkX": {"ns_op": 9}},
	  "after":  {"BenchmarkX": {"ns_op": 5}}}`), 0o644)
	d, err := ReadBenchDoc(pr2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Commit != "PR2" || d.Benchmarks["BenchmarkX"].NsOp != 5 {
		t.Fatalf("PR-2 shape misread: %+v", d)
	}

	pr3 := filepath.Join(dir, "pr3.json")
	os.WriteFile(pr3, []byte(`{"pr": 3, "benchmarks": {"BenchmarkX": {"ns_op": 4}}}`), 0o644)
	d, err = ReadBenchDoc(pr3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Commit != "PR3" || d.Benchmarks["BenchmarkX"].NsOp != 4 {
		t.Fatalf("PR-3 shape misread: %+v", d)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"title": "no measurements"}`), 0o644)
	if _, err := ReadBenchDoc(bad); err == nil {
		t.Error("document without benchmarks accepted")
	}
}
