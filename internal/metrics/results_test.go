package metrics

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTableJSONRoundTrip(t *testing.T) {
	orig := NewTable("E0 round trip", "a", "b", "c")
	orig.AddRow(1, 2.5, "x,\"quoted\"")
	orig.AddRow("row2", 0.0001234, true)
	orig.Note("first note %d", 1)
	orig.Note("second note")

	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != orig.Title {
		t.Errorf("title %q != %q", back.Title, orig.Title)
	}
	if strings.Join(back.Cols, "|") != strings.Join(orig.Cols, "|") {
		t.Errorf("cols %v != %v", back.Cols, orig.Cols)
	}
	if len(back.Rows) != len(orig.Rows) {
		t.Fatalf("rows %d != %d", len(back.Rows), len(orig.Rows))
	}
	for i := range orig.Rows {
		if strings.Join(back.Rows[i], "|") != strings.Join(orig.Rows[i], "|") {
			t.Errorf("row %d: %v != %v", i, back.Rows[i], orig.Rows[i])
		}
	}
	if len(back.Notes) != 2 || back.Notes[0] != "first note 1" {
		t.Errorf("notes did not survive: %v", back.Notes)
	}
	// The rendered forms must agree exactly.
	if back.String() != orig.String() {
		t.Error("String() differs after round trip")
	}
	if back.CSV() != orig.CSV() {
		t.Error("CSV() differs after round trip")
	}
}

func TestTableJSONEmptyRows(t *testing.T) {
	b, err := json.Marshal(NewTable("empty", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"rows":null`) {
		t.Errorf("empty table marshals rows as null: %s", b)
	}
}

// TestAccumulatorConcurrentDeterminism hammers an Accumulator from many
// goroutines writing slots in scrambled order and checks the resulting
// Samples match a sequential fill exactly (bit-identical sums).
func TestAccumulatorConcurrentDeterminism(t *testing.T) {
	const points, reps = 7, 64
	vec := func(p, r int) []float64 {
		return []float64{float64(p) + 1/(float64(r)+1.5), float64(r) * 0.1}
	}
	seq := NewAccumulator(points, reps)
	for p := 0; p < points; p++ {
		for r := 0; r < reps; r++ {
			seq.Put(p, r, vec(p, r))
		}
	}
	par := NewAccumulator(points, reps)
	var wg sync.WaitGroup
	for p := 0; p < points; p++ {
		for r := 0; r < reps; r++ {
			p, r := p, r
			wg.Add(1)
			go func() {
				defer wg.Done()
				par.Put(p, r, vec(p, r))
			}()
		}
	}
	wg.Wait()
	for p := 0; p < points; p++ {
		ss, ps := seq.Point(p), par.Point(p)
		if len(ss) != len(ps) {
			t.Fatalf("point %d: width %d != %d", p, len(ps), len(ss))
		}
		for k := range ss {
			if ss[k].Sum() != ps[k].Sum() || ss[k].Mean() != ps[k].Mean() {
				t.Errorf("point %d col %d: parallel stats differ from sequential", p, k)
			}
		}
	}
}

func TestAccumulatorSkipsNaN(t *testing.T) {
	a := NewAccumulator(1, 3)
	a.Put(0, 0, []float64{1, math.NaN()})
	a.Put(0, 1, []float64{math.NaN(), 4})
	a.Put(0, 2, []float64{3, 6})
	s := a.Point(0)
	if s[0].N() != 2 || s[0].Mean() != 2 {
		t.Errorf("col 0: n=%d mean=%v, want 2 and 2", s[0].N(), s[0].Mean())
	}
	if s[1].N() != 2 || s[1].Mean() != 5 {
		t.Errorf("col 1: n=%d mean=%v, want 2 and 5", s[1].N(), s[1].Mean())
	}
}

func TestResultsDocument(t *testing.T) {
	res := NewResults("qosbench", map[string]any{"seed": 1, "parallel": 8})
	tbl := NewTable("E1", "nodes", "acc")
	tbl.AddRow(4, "75.0%")
	res.Add("E1", "Acceptance", "claim text", 1500*time.Millisecond, tbl, nil)
	res.Add("E2", "Broken", "", time.Second, nil, errTest)
	res.WallSeconds = 2.5

	path := filepath.Join(t.TempDir(), "out.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Results
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "qosbench" || back.GoVersion == "" || back.NumCPU <= 0 {
		t.Errorf("metadata missing: %+v", back)
	}
	if len(back.Experiments) != 2 {
		t.Fatalf("got %d experiments", len(back.Experiments))
	}
	if back.Experiments[0].WallSeconds != 1.5 {
		t.Errorf("wall time %v, want 1.5", back.Experiments[0].WallSeconds)
	}
	if back.Experiments[0].Table == nil || back.Experiments[0].Table.Rows[0][0] != "4" {
		t.Errorf("table did not survive: %+v", back.Experiments[0].Table)
	}
	if back.Experiments[1].Error != "boom" {
		t.Errorf("error not recorded: %q", back.Experiments[1].Error)
	}
}

var errTest = errBoom{}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

// TestAccumulatorPointCopies pins the ownership contract on the
// Put/Point pair: Put retains the caller's vector (so pooled buffers
// must never be passed), and Point copies element-wise into fresh
// Samples — mutating a stored vector after Point must not perturb the
// already-built statistics. This is the accumulator-side face of the
// session engine's "recycling never aliases folded stats" guarantee.
func TestAccumulatorPointCopies(t *testing.T) {
	acc := NewAccumulator(1, 2)
	v0 := []float64{1, 10}
	v1 := []float64{3, 30}
	acc.Put(0, 0, v0)
	acc.Put(0, 1, v1)
	samples := acc.Point(0)
	wantMeans := []float64{2, 20}
	for k, s := range samples {
		if s.Mean() != wantMeans[k] {
			t.Fatalf("column %d mean = %g, want %g", k, s.Mean(), wantMeans[k])
		}
	}
	// Scribble over the stored vectors, as a caller recycling its
	// buffers would; the Samples built above must not move.
	v0[0], v0[1] = 999, 999
	v1[0], v1[1] = 999, 999
	for k, s := range samples {
		if s.Mean() != wantMeans[k] {
			t.Fatalf("column %d mean changed to %g after mutating stored vectors: Point aliases Put's slices", k, s.Mean())
		}
	}
	// A fresh Point over the scribbled state sees the mutation — that is
	// exactly why Put documents that it retains vec.
	if got := acc.Point(0)[0].Mean(); got != 999 {
		t.Fatalf("expected re-read to see the mutation, got mean %g", got)
	}
}
