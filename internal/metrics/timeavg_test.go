package metrics

import (
	"math"
	"testing"
)

func TestTimeAvgPiecewiseConstant(t *testing.T) {
	var a TimeAvg
	a.Observe(10, 2) // 2 over [10,20)
	a.Observe(20, 4) // 4 over [20,40)
	a.Observe(40, 0) // 0 over [40,50]
	got := a.Mean(50)
	want := (2*10 + 4*20 + 0*10) / 40.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean(50) = %v, want %v", got, want)
	}
}

func TestTimeAvgEdgeCases(t *testing.T) {
	var empty TimeAvg
	if got := empty.Mean(100); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}

	var point TimeAvg
	point.Observe(5, 3)
	if got := point.Mean(5); got != 3 {
		t.Errorf("zero-span Mean = %v, want the last value 3", got)
	}
	if got := point.Mean(15); got != 3 {
		t.Errorf("constant-signal Mean = %v, want 3", got)
	}

	// Out-of-order observations clamp instead of producing negative
	// segments; Mean before the last observation closes at lastT.
	var clamp TimeAvg
	clamp.Observe(10, 1)
	clamp.Observe(20, 5)
	clamp.Observe(15, 7) // clamped to t=20
	if got, want := clamp.Mean(30), (1*10+7*10)/20.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("clamped Mean = %v, want %v", got, want)
	}
	if got, want := clamp.Mean(0), (1 * 10 / 10.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean before lastT = %v, want %v", got, want)
	}
}
