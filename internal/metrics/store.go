package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The results store is the repo's performance memory: an append-only
// JSONL file (one Entry per line) that benchmark and experiment runs
// write into, keyed by the commit that produced them. cmd/qostrend
// renders trajectories across commits from it and emits the baseline
// table scripts/benchgate.sh gates on; scripts/bench.sh appends each
// snapshot it takes. JSONL because append-only survives concurrent
// tooling and partial writes corrupt at most the last line.

// Entry is one record of the results store: a named measurement set
// from one tool run at one commit.
type Entry struct {
	// Commit is the git-describe-style identifier of the producing
	// build ("3f2a1bc" or "3f2a1bc-dirty").
	Commit string `json:"commit"`
	// Date is the RFC3339 UTC timestamp of the run (optional).
	Date string `json:"date,omitempty"`
	// Source names the producing tool: "qosbench", "qosim", "bench.sh".
	Source string `json:"source,omitempty"`
	// Kind classifies the record: "bench" for benchmark points,
	// "experiment" for experiment-table rows.
	Kind string `json:"kind"`
	// Name identifies the measurement: a benchmark name
	// ("BenchmarkE17OfferedLoad") or an experiment row key
	// ("E17/rate/s=0.05").
	Name string `json:"name"`
	// Metrics holds the numeric observations, e.g. ns_op/bytes_op/
	// allocs_op for benchmarks or the table columns for experiments.
	Metrics map[string]float64 `json:"metrics"`
}

// Sink receives store entries. Implementations: JSONLStore (the
// durable file store) and MemStore (tests and dry runs).
type Sink interface {
	Record(Entry) error
}

// MemStore is an in-memory Sink.
type MemStore struct {
	Entries []Entry
}

// Record appends e.
func (m *MemStore) Record(e Entry) error {
	m.Entries = append(m.Entries, e)
	return nil
}

// JSONLStore appends entries to a JSONL file, one JSON object per
// line. Open with OpenJSONLStore, Close when done.
type JSONLStore struct {
	f *os.File
}

// OpenJSONLStore opens (creating if absent) the store at path for
// appending.
func OpenJSONLStore(path string) (*JSONLStore, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &JSONLStore{f: f}, nil
}

// Record appends one entry as a JSON line.
func (s *JSONLStore) Record(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.f.Write(b)
	return err
}

// Close flushes and closes the underlying file.
func (s *JSONLStore) Close() error { return s.f.Close() }

// ReadStore parses every entry of the JSONL store at path. A missing
// file is an empty store, not an error; a malformed line is an error
// naming its line number.
func ReadStore(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("metrics: %s line %d: %w", path, line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BenchPoint is one benchmark's measurements inside a BenchDoc.
// Pointers because bench.sh writes null for missing columns.
type BenchPoint struct {
	NsOp     float64  `json:"ns_op"`
	BytesOp  *float64 `json:"bytes_op"`
	AllocsOp *float64 `json:"allocs_op"`
}

// BenchDoc is a BENCH_PR*.json document. The shape evolved across
// PRs: PR 2 recorded hand-annotated before/after sides with a "pr"
// number, PR 3 kept "pr" but a single "benchmarks" object, and since
// PR 4 scripts/bench.sh emits {commit, date, go, benchmarks}.
// ReadBenchDoc normalizes all three so the whole trajectory imports.
type BenchDoc struct {
	PR         int                   `json:"pr"`
	Commit     string                `json:"commit"`
	Date       string                `json:"date"`
	Go         string                `json:"go"`
	Benchmarks map[string]BenchPoint `json:"benchmarks"`
	// After is the PR-2 document's committed side (its "before" side
	// predates the repo's trajectory and is not imported).
	After map[string]BenchPoint `json:"after"`
}

// ReadBenchDoc parses one BENCH_PR*.json file, normalizing the legacy
// shapes: a missing "benchmarks" object falls back to the PR-2 "after"
// side, and a missing commit falls back to the "PR<n>" label.
func ReadBenchDoc(path string) (*BenchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d BenchDoc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("metrics: %s: %w", path, err)
	}
	if d.Benchmarks == nil {
		d.Benchmarks = d.After
	}
	if d.Benchmarks == nil {
		return nil, fmt.Errorf("metrics: %s: no benchmarks or after object", path)
	}
	if d.Commit == "" {
		if d.PR == 0 {
			return nil, fmt.Errorf("metrics: %s: neither commit nor pr identifies the snapshot", path)
		}
		d.Commit = fmt.Sprintf("PR%d", d.PR)
	}
	return &d, nil
}

// Entries converts the document into store entries, sorted by
// benchmark name so an import is deterministic.
func (d *BenchDoc) Entries(source string) []Entry {
	names := make([]string, 0, len(d.Benchmarks))
	for name := range d.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Entry, 0, len(names))
	for _, name := range names {
		p := d.Benchmarks[name]
		m := map[string]float64{"ns_op": p.NsOp}
		if p.BytesOp != nil {
			m["bytes_op"] = *p.BytesOp
		}
		if p.AllocsOp != nil {
			m["allocs_op"] = *p.AllocsOp
		}
		out = append(out, Entry{Commit: d.Commit, Date: d.Date, Source: source,
			Kind: "bench", Name: name, Metrics: m})
	}
	return out
}

// Metrics flattens the table into one metric map per row, keyed by
// column name. Cells are parsed as floats; percentage cells (the
// Ratio formatter's "61.3%") are parsed as fractions (0.613);
// non-numeric cells are skipped. The returned row keys pair each map
// with its sweep-point label "col0=cell0".
func (t *Table) Metrics() (keys []string, rows []map[string]float64) {
	for _, row := range t.Rows {
		key := ""
		if len(t.Cols) > 0 && len(row) > 0 {
			key = t.Cols[0] + "=" + row[0]
		}
		m := make(map[string]float64)
		for i, cell := range row {
			if i == 0 || i >= len(t.Cols) {
				continue
			}
			if v, ok := parseMetricCell(cell); ok {
				m[t.Cols[i]] = v
			}
		}
		keys = append(keys, key)
		rows = append(rows, m)
	}
	return keys, rows
}

func parseMetricCell(cell string) (float64, bool) {
	s := strings.TrimSpace(cell)
	if pct := strings.TrimSuffix(s, "%"); pct != s {
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return 0, false
		}
		return v / 100, true
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Entries converts a suite-run document into store entries: one per
// experiment-table row (named "<ID>/<col0>=<cell0>") carrying the
// row's numeric columns, plus one "<ID>/wall" entry with the
// experiment's wall-clock seconds. Experiments that errored are
// skipped — the store records measurements, not failures.
func (r *Results) Entries(source string) []Entry {
	var out []Entry
	for _, xp := range r.Experiments {
		if xp.Error != "" || xp.Table == nil {
			continue
		}
		keys, rows := xp.Table.Metrics()
		for i, m := range rows {
			if len(m) == 0 {
				continue
			}
			out = append(out, Entry{Commit: r.Describe, Date: r.Started, Source: source,
				Kind: "experiment", Name: xp.ID + "/" + keys[i], Metrics: m})
		}
		out = append(out, Entry{Commit: r.Describe, Date: r.Started, Source: source,
			Kind: "experiment", Name: xp.ID + "/wall",
			Metrics: map[string]float64{"seconds": xp.WallSeconds}})
	}
	return out
}
