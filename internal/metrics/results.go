package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Accumulator gathers per-replication metric vectors from concurrent
// workers into fixed (point, replication) slots. Because every
// observation lands in its slot rather than in arrival order, the
// Samples built from an Accumulator are bit-identical whether the
// replications ran sequentially or across any number of goroutines
// (float addition is not associative, so arrival-order aggregation
// would not be).
type Accumulator struct {
	mu    sync.Mutex
	reps  int
	cells [][][]float64 // point -> replication -> metric vector
}

// NewAccumulator sizes an accumulator for points x reps replications.
func NewAccumulator(points, reps int) *Accumulator {
	cells := make([][][]float64, points)
	for i := range cells {
		cells[i] = make([][]float64, reps)
	}
	return &Accumulator{reps: reps, cells: cells}
}

// Put stores the metric vector of one replication. It is safe to call
// from concurrent workers; each (point, rep) slot must be written at
// most once. Put retains vec — the caller hands over ownership, so a
// pooled or per-replication scratch buffer must never be passed here
// (every experiment body returns a fresh literal). Point builds its
// Samples by copying element-wise, so results read out of the
// accumulator are immune to later mutation of the stored vectors.
func (a *Accumulator) Put(point, rep int, vec []float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cells[point][rep] = vec
}

// Get returns the metric vector stored for one replication (nil if the
// replication never reported).
func (a *Accumulator) Get(point, rep int) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cells[point][rep]
}

// Point merges the replications of one sweep point column-wise: sample
// k collects element k of every stored vector, in replication order.
// NaN elements mark "no observation" and are skipped, so optional
// metrics (for example time-to-first-failure when nothing failed) keep
// clean means.
func (a *Accumulator) Point(point int) []*Sample {
	a.mu.Lock()
	defer a.mu.Unlock()
	width := 0
	for _, vec := range a.cells[point] {
		if len(vec) > width {
			width = len(vec)
		}
	}
	out := make([]*Sample, width)
	for k := range out {
		out[k] = &Sample{}
	}
	for _, vec := range a.cells[point] {
		for k, x := range vec {
			if !math.IsNaN(x) {
				out[k].Add(x)
			}
		}
	}
	return out
}

// tableJSON is the wire form of Table.
type tableJSON struct {
	Title string     `json:"title,omitempty"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
}

// MarshalJSON encodes the table as {title, cols, rows, notes}.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Cols: t.Cols, Rows: rows, Notes: t.Notes})
}

// UnmarshalJSON decodes the MarshalJSON form.
func (t *Table) UnmarshalJSON(b []byte) error {
	var w tableJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	t.Title, t.Cols, t.Rows, t.Notes = w.Title, w.Cols, w.Rows, w.Notes
	return nil
}

// ExperimentResult is one experiment's entry in a Results document.
type ExperimentResult struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	Claim       string  `json:"claim,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	Table       *Table  `json:"table,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// Results is the machine-readable document a whole suite run exports:
// run metadata, the caller's configuration, and one entry per
// experiment. cmd/qosbench -json writes one of these so benchmark
// trajectories can be recorded and diffed across commits.
type Results struct {
	Tool        string             `json:"tool"`
	Describe    string             `json:"describe"`
	GoVersion   string             `json:"go_version"`
	OS          string             `json:"os"`
	Arch        string             `json:"arch"`
	NumCPU      int                `json:"num_cpu"`
	Started     string             `json:"started"`
	WallSeconds float64            `json:"wall_seconds"`
	Config      map[string]any     `json:"config,omitempty"`
	Experiments []ExperimentResult `json:"experiments"`
}

// NewResults stamps a results document with the runtime environment.
func NewResults(tool string, config map[string]any) *Results {
	return &Results{
		Tool:        tool,
		Describe:    Describe(),
		GoVersion:   runtime.Version(),
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Started:     time.Now().UTC().Format(time.RFC3339),
		Config:      config,
		Experiments: []ExperimentResult{},
	}
}

// Add appends one experiment's outcome.
func (r *Results) Add(id, title, claim string, wall time.Duration, table *Table, err error) {
	e := ExperimentResult{ID: id, Title: title, Claim: claim,
		WallSeconds: wall.Seconds(), Table: table}
	if err != nil {
		e.Error = err.Error()
	}
	r.Experiments = append(r.Experiments, e)
}

// WriteFile marshals the document (indented) to path; "-" means stdout.
func (r *Results) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Describe returns a git-describe-style identifier of the running
// binary built from the embedded VCS build info ("3f2a1bc" or
// "3f2a1bc-dirty"), or "unknown" outside a VCS build.
func Describe() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, modified := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if modified {
		return fmt.Sprintf("%s-dirty", rev)
	}
	return rev
}
