package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestSampleMergeEqualsConcatenation: merging shard samples is exactly
// accumulating the concatenated observation stream.
func TestSampleMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nShards := 1 + rng.Intn(6)
		shards := make([]*Sample, nShards)
		var concat Sample
		for i := range shards {
			shards[i] = &Sample{}
			for k := 0; k < rng.Intn(40); k++ {
				x := rng.NormFloat64() * 10
				shards[i].Add(x)
				concat.Add(x)
			}
		}
		var merged Sample
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.N() != concat.N() {
			t.Fatalf("trial %d: merged N %d != concat N %d", trial, merged.N(), concat.N())
		}
		// Merge in shard order is literal concatenation, so every query
		// matches bit for bit — including order-sensitive float sums.
		if merged.Sum() != concat.Sum() || merged.Mean() != concat.Mean() ||
			merged.Stddev() != concat.Stddev() {
			t.Fatalf("trial %d: merged moments diverge from concatenated stream", trial)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if merged.Quantile(q) != concat.Quantile(q) {
				t.Fatalf("trial %d: quantile %g diverges", trial, q)
			}
		}
	}
}

// TestSampleMergeOrderInvariance: queries that canonicalize by sorting
// (min, max, quantiles) are bit-identical whatever order shards merge
// in; the moment queries agree to float tolerance.
func TestSampleMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := make([]*Sample, 5)
	for i := range shards {
		shards[i] = &Sample{}
		for k := 0; k < 20+rng.Intn(20); k++ {
			shards[i].Add(rng.ExpFloat64())
		}
	}
	merge := func(order []int) *Sample {
		var m Sample
		for _, i := range order {
			m.Merge(shards[i])
		}
		return &m
	}
	fwd := merge([]int{0, 1, 2, 3, 4})
	rev := merge([]int{4, 3, 2, 1, 0})
	shuf := merge([]int{2, 0, 4, 1, 3})
	for _, other := range []*Sample{rev, shuf} {
		for _, q := range []float64{0, 0.1, 0.5, 0.95, 1} {
			if fwd.Quantile(q) != other.Quantile(q) {
				t.Fatalf("quantile %g depends on merge order", q)
			}
		}
		if math.Abs(fwd.Mean()-other.Mean()) > 1e-12*math.Abs(fwd.Mean()) {
			t.Fatalf("mean depends on merge order beyond rounding: %g vs %g", fwd.Mean(), other.Mean())
		}
	}
}

// piecewise is a random step signal: value steps[i] from t[i] until
// t[i+1], generated over [0, span].
type piecewise struct {
	ts, vs []float64
}

func randPiecewise(rng *rand.Rand, span float64) piecewise {
	n := 2 + rng.Intn(10)
	p := piecewise{ts: make([]float64, n), vs: make([]float64, n)}
	p.ts[0] = 0
	for i := 1; i < n; i++ {
		p.ts[i] = p.ts[i-1] + rng.Float64()*span/float64(n)
	}
	for i := range p.vs {
		p.vs[i] = rng.NormFloat64() * 5
	}
	return p
}

// at returns the signal value at time t (0 before the first step,
// hold-last after the final one — TimeAvg's extension rule).
func (p piecewise) at(t float64) float64 {
	if t < p.ts[0] {
		return 0
	}
	v := p.vs[0]
	for i, ti := range p.ts {
		if ti <= t {
			v = p.vs[i]
		}
	}
	return v
}

// TestTimeAvgMergeEqualsCombinedStream: merging per-shard TimeAvgs
// equals accumulating the summed signal as one stream over the union of
// the shards' breakpoints — the city fabric's aligned-window case.
func TestTimeAvgMergeEqualsCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		const span = 100.0
		nShards := 2 + rng.Intn(4)
		sigs := make([]piecewise, nShards)
		avgs := make([]*TimeAvg, nShards)
		union := map[float64]bool{}
		for i := range sigs {
			sigs[i] = randPiecewise(rng, span)
			avgs[i] = &TimeAvg{}
			for k, tk := range sigs[i].ts {
				avgs[i].Observe(tk, sigs[i].vs[k])
				union[tk] = true
			}
		}
		// All shards observe from t=0 (aligned windows, like the
		// fabric's shared warmup tick), so the sum signal is exact.
		var points []float64
		for tk := range union {
			points = append(points, tk)
		}
		sortFloats(points)
		var combined TimeAvg
		for _, tk := range points {
			var sum float64
			for _, sg := range sigs {
				sum += sg.at(tk)
			}
			combined.Observe(tk, sum)
		}
		var merged TimeAvg
		for _, a := range avgs {
			merged.Merge(a)
		}
		until := span + rng.Float64()*20
		got, want := merged.Mean(until), combined.Mean(until)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d: merged mean %g != combined-stream mean %g", trial, got, want)
		}
	}
}

// TestTimeAvgMergeOrderInvariance: the merged mean does not depend on
// the order shards fold in (beyond float rounding).
func TestTimeAvgMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sigs := make([]piecewise, 4)
	for i := range sigs {
		sigs[i] = randPiecewise(rng, 50)
	}
	build := func(order []int) float64 {
		var m TimeAvg
		for _, i := range order {
			var a TimeAvg
			for k, tk := range sigs[i].ts {
				a.Observe(tk, sigs[i].vs[k])
			}
			m.Merge(&a)
		}
		return m.Mean(60)
	}
	fwd := build([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		if got := build(order); math.Abs(got-fwd) > 1e-9*math.Max(1, math.Abs(fwd)) {
			t.Fatalf("order %v: mean %g != %g", order, got, fwd)
		}
	}
}

// TestTimeAvgMergeEdgeCases: merging with empty accumulators is the
// identity, and a pairwise merge is commutative.
func TestTimeAvgMergeEdgeCases(t *testing.T) {
	var a TimeAvg
	a.Observe(0, 2)
	a.Observe(5, 4)
	var empty TimeAvg
	before := a.Mean(10)
	a.Merge(&empty)
	a.Merge(nil)
	if a.Mean(10) != before {
		t.Fatal("merging an empty TimeAvg changed the mean")
	}
	var b TimeAvg
	b.Observe(2, 1)
	b.Observe(6, 3)
	ab, ba := a, b
	ab.Merge(&b)
	ba.Merge(&a)
	if ab.Mean(12) != ba.Mean(12) {
		t.Fatalf("pairwise merge not commutative: %g vs %g", ab.Mean(12), ba.Mean(12))
	}
	var onto TimeAvg
	onto.Merge(&b)
	if onto.Mean(8) != b.Mean(8) {
		t.Fatal("merging into an empty TimeAvg is not the identity")
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
