// Package metrics provides the small statistics and table-rendering
// toolkit used by the experiment harness: counters, sample collections
// with quantiles, and aligned-text / CSV tables so that every experiment
// prints the same rows from cmd/qosbench and from the benchmarks.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample collects float64 observations and answers summary queries.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Merge folds another sample's observations into s, exactly as if the
// two observation streams had been concatenated (s first, then other).
// Every summary query on the merged sample equals the query on the
// concatenated stream; queries that sort first (quantiles, min, max)
// are additionally independent of the merge order. This is the
// sample-stream form of the cross-shard fold contract: the city
// fabric's production fold (session.Stats.Merge) works on scalar
// summaries, and the property tests here pin the stream-level
// semantics that fold relies on.
func (s *Sample) Merge(other *Sample) {
	if other == nil || len(other.xs) == 0 {
		return
	}
	s.xs = append(s.xs, other.xs...)
	s.sorted = false
}

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 {
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t
}

// Mean returns the arithmetic mean (0 for empty samples).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.xs))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest observation (0 for empty samples).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for empty samples).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0<=q<=1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Table is a titled grid of cells rendered as aligned text or CSV.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatCell(c any) string {
	switch x := c.(type) {
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e12 {
			return fmt.Sprintf("%.1f", x)
		}
		return fmt.Sprintf("%.4g", x)
	case float32:
		return formatCell(float64(x))
	case string:
		return x
	default:
		return fmt.Sprintf("%v", c)
	}
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Cols)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Ratio formats a/b as a percentage string, guarding b == 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*a/b)
}
