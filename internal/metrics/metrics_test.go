package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func sampleOf(xs ...float64) *Sample {
	s := &Sample{}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestSampleBasics(t *testing.T) {
	s := sampleOf(1, 2, 3, 4)
	if s.N() != 4 || s.Sum() != 10 || s.Mean() != 2.5 {
		t.Errorf("N/Sum/Mean = %d/%v/%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := &Sample{}
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty sample must answer zeros")
	}
}

func TestQuantile(t *testing.T) {
	s := sampleOf(4, 1, 3, 2) // unsorted on purpose
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); q != 2.5 {
		t.Errorf("median = %v", q)
	}
	if q := s.Quantile(-1); q != 1 {
		t.Errorf("clamped low = %v", q)
	}
	if q := s.Quantile(2); q != 4 {
		t.Errorf("clamped high = %v", q)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		s := sampleOf(xs...)
		qs := []float64{0, 0.25, 0.5, 0.75, 1}
		var prev float64 = math.Inf(-1)
		for _, q := range qs {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Quantile(0) == sorted[0] && s.Quantile(1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	s := sampleOf(3, 1)
	_ = s.Quantile(0.5) // sorts
	s.Add(2)
	if s.Quantile(0.5) != 2 {
		t.Error("Add after Quantile lost re-sort")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.0)
	tb.AddRow("b", 2.3456789)
	tb.AddRow("with,comma", `quote"d`)
	tb.Note("footnote %d", 7)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.346") {
		t.Errorf("rows wrong:\n%s", out)
	}
	if !strings.Contains(out, "note: footnote 7") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header alignment: each data row starts with padded first column.
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}

	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Error("comma cell not quoted")
	}
	if !strings.Contains(csv, `"quote""d"`) {
		t.Error("quote cell not escaped")
	}
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("csv header = %q", csv)
	}
}

func TestFormatCellInteger(t *testing.T) {
	tb := NewTable("x", "v")
	tb.AddRow(3.0)
	if tb.Rows[0][0] != "3.0" {
		t.Errorf("integral float renders %q", tb.Rows[0][0])
	}
	tb.AddRow(float32(1.5))
	if tb.Rows[1][0] != "1.5" {
		t.Errorf("float32 renders %q", tb.Rows[1][0])
	}
	tb.AddRow(42)
	if tb.Rows[2][0] != "42" {
		t.Errorf("int renders %q", tb.Rows[2][0])
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != "50.0%" {
		t.Errorf("Ratio = %q", Ratio(1, 2))
	}
	if Ratio(1, 0) != "n/a" {
		t.Error("division by zero not guarded")
	}
}
