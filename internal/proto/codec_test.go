package proto

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/qos"
	"repro/internal/resource"
)

// sampleMsgs returns one representative of every wire message type,
// with both populated and empty collection fields exercised across the
// set (zero-length collections round-trip as nil by convention).
func sampleMsgs() []Msg {
	req := qos.Request{
		Service: "video",
		Dims: []qos.DimPref{
			{Dim: "video", Attrs: []qos.AttrPref{
				{Attr: "frame-rate", Sets: []qos.ValueSet{qos.Span(10, 5), qos.Span(4, 1)}},
				{Attr: "color", Sets: []qos.ValueSet{qos.One(qos.Str("rgb24")), qos.One(qos.Str("gray"))}},
			}},
			{Dim: "audio", Attrs: []qos.AttrPref{
				{Attr: "rate", Sets: []qos.ValueSet{qos.One(qos.Int(44100)), qos.One(qos.Int(22050))}},
			}},
		},
	}
	return []Msg{
		&CFP{
			ServiceID: "svc-1", Round: 2, SpecName: "video-spec",
			Tasks: []TaskDescr{
				{TaskID: "t0", Request: req, DemandRef: "svc-1/t0", InBytes: 4096, OutBytes: 1 << 20},
				{TaskID: "t1", DemandRef: "shared/demand", InBytes: 0, OutBytes: -1},
			},
			Deadline: 1.25,
		},
		&Proposal{
			ServiceID: "svc-1", Round: 0,
			Tasks: []TaskProposal{
				{
					TaskID: "t0",
					Level: qos.Level{
						{Dim: "video", Attr: "frame-rate"}: qos.Float(7.5),
						{Dim: "video", Attr: "color"}:      qos.Str("rgb24"),
						{Dim: "audio", Attr: "rate"}:       qos.Int(44100),
					},
					Reward: 0.875, Copies: 3,
				},
				{TaskID: "t1", Reward: -2.5, Copies: 1}, // nil level
			},
		},
		&Proposal{ServiceID: "empty", Round: 7},
		&Award{ServiceID: "svc-1", Round: 1, TaskIDs: []string{"t0", "t1"}},
		&AwardAck{ServiceID: "svc-1", Round: 1, TaskIDs: []string{"t0"}, OK: true},
		&AwardAck{ServiceID: "svc-1", Round: 3, OK: false, Reason: "capacity consumed"},
		&TaskData{ServiceID: "svc-1", TaskID: "t0", Bytes: 5 << 20},
		&TaskRelease{ServiceID: "svc-1", TaskID: "t1", Reason: "migrated", Round: 4},
		&Heartbeat{ServiceID: "svc-1", TaskIDs: []string{"t0", "t1", "t2"}},
		&Heartbeat{ServiceID: "idle"},
		&Dissolve{ServiceID: "svc-1", Reason: "user done"},
		&Sequenced{Seq: 1 << 40, Inner: &Award{ServiceID: "s", Round: 0, TaskIDs: []string{"a"}}},
		&Hello{
			Node: 42, X: 12.5, Y: -3.25, RangeM: 80, Bitrate: 5e6,
			Capacity: resource.Vector{400, 128, 5000, 900, 512},
		},
		&CatalogUpdate{
			Specs: [][]byte{[]byte(`{"name":"video-spec"}`)},
			Demands: []DemandEntry{
				{
					Ref:  "svc-1/t0",
					Base: resource.Vector{10, 5, 0, 1, 0},
					Coef: []AttrVector{
						{Dim: "video", Attr: "frame-rate", Vec: resource.Vector{2, 0.5, 40, 0.25, 0}},
					},
				},
				{Ref: "flat", Base: resource.Vector{1, 1, 1, 1, 1}},
			},
		},
		&CatalogUpdate{},
		&Bye{Reason: "closing"},
	}
}

// TestCodecRoundTrip is the core property: Decode(Encode(m)) == m for
// every message type.
func TestCodecRoundTrip(t *testing.T) {
	var c Codec
	for _, m := range sampleMsgs() {
		frame, err := c.Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Kind(), err)
		}
		got, err := c.Decode(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip mismatch:\n got %#v\nwant %#v", m.Kind(), got, m)
		}
	}
}

// TestCodecStream checks the io framing: several messages written
// back-to-back read out in order, a clean end gives io.EOF, and a
// stream cut inside a frame gives an unexpected-EOF error.
func TestCodecStream(t *testing.T) {
	var c Codec
	var buf bytes.Buffer
	msgs := sampleMsgs()
	for _, m := range msgs {
		if err := c.WriteMsg(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.Kind(), err)
		}
	}
	full := buf.Bytes()
	rd := bytes.NewReader(full)
	for i, want := range msgs {
		got, err := c.ReadMsg(rd)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("read %d: mismatch", i)
		}
	}
	if _, err := c.ReadMsg(rd); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
	cut := bytes.NewReader(full[:len(full)-3])
	for {
		_, err := c.ReadMsg(cut)
		if err == nil {
			continue
		}
		if !strings.Contains(err.Error(), "unexpected EOF") {
			t.Fatalf("mid-frame cut: got %v, want unexpected EOF", err)
		}
		break
	}
}

// TestCodecRejectsTruncated feeds every strict prefix of every valid
// frame to Decode: all must error, none may panic.
func TestCodecRejectsTruncated(t *testing.T) {
	var c Codec
	for _, m := range sampleMsgs() {
		frame, err := c.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(frame); i++ {
			if _, err := c.Decode(frame[:i]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes decoded successfully", m.Kind(), i, len(frame))
			}
		}
	}
}

func TestCodecRejectsCorruptHeader(t *testing.T) {
	var c Codec
	frame, err := c.Encode(&Bye{Reason: "x"})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := c.Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: got %v", err)
	}
	bad = append([]byte(nil), frame...)
	bad[1] = CodecVersion + 1
	if _, err := c.Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: got %v", err)
	}
	bad = append([]byte(nil), frame...)
	bad[2] = 0xEE
	if _, err := c.Decode(bad); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("unknown kind: got %v", err)
	}
	if _, err := c.Decode(append(frame, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestCodecRejectsOversized(t *testing.T) {
	small := Codec{MaxFrame: 16}
	big := &Dissolve{ServiceID: "s", Reason: strings.Repeat("x", 64)}
	if _, err := small.Encode(big); err == nil {
		t.Error("encode over MaxFrame accepted")
	}
	frame, err := Codec{}.Encode(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Decode(frame); err == nil {
		t.Error("decode over MaxFrame accepted")
	}
	// A huge declared length must be refused by ReadMsg before any
	// payload allocation.
	hdr := []byte{codecMagic, CodecVersion, kindBye, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := (Codec{}).ReadMsg(bytes.NewReader(hdr)); err == nil {
		t.Error("4 GiB declared payload accepted")
	}
}

func TestCodecRejectsNestedSequenced(t *testing.T) {
	var c Codec
	inner := &Sequenced{Seq: 1, Inner: &Bye{}}
	if _, err := c.Encode(&Sequenced{Seq: 2, Inner: inner}); err == nil {
		t.Error("encoder accepted nested Sequenced")
	}
	// Hand-craft the nested frame the encoder refuses to produce.
	payload := appendUvarint(nil, 2)
	payload = append(payload, kindSequenced)
	payload = appendUvarint(payload, 1)
	payload = append(payload, kindBye)
	payload = appendStr(payload, "")
	frame := []byte{codecMagic, CodecVersion, kindSequenced, 0, 0, 0, byte(len(payload))}
	frame = append(frame, payload...)
	if _, err := c.Decode(frame); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("decoder accepted nested Sequenced: %v", err)
	}
}

// TestCodecFloatExact pins the reason the codec is binary rather than
// JSON: integral floats survive exactly (the qos JSON codec cannot
// distinguish Float(8) from Int(8)).
func TestCodecFloatExact(t *testing.T) {
	var c Codec
	m := &Proposal{ServiceID: "s", Tasks: []TaskProposal{{
		TaskID: "t",
		Level:  qos.Level{{Dim: "d", Attr: "a"}: qos.Float(8)},
		Copies: 1,
	}}}
	frame, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	v := got.(*Proposal).Tasks[0].Level[qos.AttrKey{Dim: "d", Attr: "a"}]
	if v.Type != qos.TypeFloat || v.F != 8 {
		t.Fatalf("integral float corrupted: %#v", v)
	}
	// And non-finite values survive bit-exactly.
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64, 0x1p-1074} {
		m := &CFP{ServiceID: "s", Deadline: f}
		frame, err := c.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.(*CFP).Deadline != f {
			t.Errorf("float %g corrupted to %g", f, got.(*CFP).Deadline)
		}
	}
}

// FuzzCodecRoundTrip throws arbitrary bytes at Decode: it must never
// panic, and anything it accepts must re-encode canonically — the
// re-encoded frame decodes to a message whose encoding is byte-stable.
// The corpus seeds one valid frame per message type, so the fuzzer
// starts from every arm of the decoder.
func FuzzCodecRoundTrip(f *testing.F) {
	var c Codec
	for _, m := range sampleMsgs() {
		frame, err := c.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := c.Decode(data)
		if err != nil {
			return // rejected without panic: fine
		}
		enc1, err := c.Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := c.Decode(enc1)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		enc2, err := c.Encode(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not canonical:\n first %x\nsecond %x", enc1, enc2)
		}
	})
}
