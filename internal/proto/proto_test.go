package proto

import (
	"strings"
	"testing"

	"repro/internal/qos"
)

func sampleCFP(tasks int) *CFP {
	m := &CFP{ServiceID: "svc", SpecName: "spec", Deadline: 1}
	for i := 0; i < tasks; i++ {
		m.Tasks = append(m.Tasks, TaskDescr{
			TaskID: "t",
			Request: qos.Request{
				Service: "svc",
				Dims: []qos.DimPref{{
					Dim:   "video",
					Attrs: []qos.AttrPref{{Attr: "fr", Sets: []qos.ValueSet{qos.Span(30, 10)}}},
				}},
			},
			DemandRef: "svc/t",
		})
	}
	return m
}

func TestWireSizesArePositiveAndMonotone(t *testing.T) {
	msgs := []Msg{
		sampleCFP(1),
		&Proposal{ServiceID: "s", Tasks: []TaskProposal{{TaskID: "t", Level: qos.Level{{Dim: "d", Attr: "a"}: qos.Int(1)}}}},
		&Award{ServiceID: "s", TaskIDs: []string{"t"}},
		&AwardAck{ServiceID: "s", TaskIDs: []string{"t"}, OK: true},
		&TaskData{ServiceID: "s", TaskID: "t", Bytes: 1024},
		&TaskRelease{ServiceID: "s", TaskID: "t", Reason: "migrated"},
		&Heartbeat{ServiceID: "s", TaskIDs: []string{"t"}},
		&Dissolve{ServiceID: "s", Reason: "done"},
	}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("%s wire size %d", m.Kind(), m.WireSize())
		}
		if m.Kind() == "" {
			t.Error("empty kind")
		}
	}
	// More tasks -> bigger CFP.
	if sampleCFP(3).WireSize() <= sampleCFP(1).WireSize() {
		t.Error("CFP size must grow with tasks")
	}
	// TaskData dominated by payload.
	small := &TaskData{Bytes: 10}
	big := &TaskData{Bytes: 1 << 20}
	if big.WireSize()-small.WireSize() != 1<<20-10 {
		t.Error("TaskData size must track payload bytes")
	}
	// Proposal grows with level attributes.
	p1 := &Proposal{Tasks: []TaskProposal{{Level: qos.Level{{Dim: "d", Attr: "a"}: qos.Int(1)}}}}
	p2 := &Proposal{Tasks: []TaskProposal{{Level: qos.Level{
		{Dim: "d", Attr: "a"}: qos.Int(1),
		{Dim: "d", Attr: "b"}: qos.Int(2),
	}}}}
	if p2.WireSize() <= p1.WireSize() {
		t.Error("Proposal size must grow with level attributes")
	}
}

func TestKindsAreDistinct(t *testing.T) {
	kinds := map[string]bool{}
	for _, m := range []Msg{
		&CFP{}, &Proposal{}, &Award{}, &AwardAck{}, &TaskData{}, &TaskRelease{}, &Heartbeat{}, &Dissolve{},
	} {
		if kinds[m.Kind()] {
			t.Errorf("duplicate kind %q", m.Kind())
		}
		kinds[m.Kind()] = true
	}
	if len(kinds) != 8 {
		t.Errorf("kinds = %d", len(kinds))
	}
}

func TestDescribe(t *testing.T) {
	d := Describe(&Dissolve{ServiceID: "s", Reason: "x"})
	if !strings.HasPrefix(d, "dissolve(") || !strings.HasSuffix(d, "B)") {
		t.Errorf("Describe = %q", d)
	}
}
