package proto

import "repro/internal/radio"

// Sink consumes delivered protocol messages. core.Organizer and
// core.Provider both implement it; Dispatch routes between them.
type Sink interface {
	OnMsg(from radio.NodeID, m Msg)
}

// Dispatch is the shared receive plumbing of every runtime (sim cluster,
// in-process live, TCP fabric), extracted so the three do not each carry
// a copy:
//
//   - it peels the Sequenced envelope and drops retransmitted or
//     fault-duplicated deliveries through the node's Dedup window before
//     any handler mutates state (the idempotence half of the reliability
//     layer; unsequenced messages, seq 0, pass untouched, so the default
//     configuration takes this path with zero behavioral change);
//   - it routes the organizer-bound kinds (Proposal, AwardAck,
//     Heartbeat) to the organizer owning the service, and everything
//     else to the provider — the paper's role split.
//
// organizer returns nil when the node runs no organizer for the service;
// provider may be nil on endpoints that only organize. Dispatch reports
// whether a handler consumed the message (false: duplicate, or no route).
// Callers keep the lookup closure persistent per node so the hot path
// allocates nothing.
func Dispatch(d *Dedup, from radio.NodeID, m Msg, organizer func(service string) Sink, provider Sink) bool {
	m, seq := Unwrap(m)
	if d.Duplicate(from, seq) {
		return false
	}
	var svc string
	switch msg := m.(type) {
	case *Proposal:
		svc = msg.ServiceID
	case *AwardAck:
		svc = msg.ServiceID
	case *Heartbeat:
		svc = msg.ServiceID
	default:
		if provider == nil {
			return false
		}
		provider.OnMsg(from, m)
		return true
	}
	if o := organizer(svc); o != nil {
		o.OnMsg(from, m)
		return true
	}
	return false
}
