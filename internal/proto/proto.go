// Package proto defines the wire-level vocabulary of the coalition
// formation negotiation (Section 4.2): the message types exchanged
// between the Negotiation Organizer and the QoS Providers, and the
// transport/timer abstractions that let the same state machines run on
// the discrete-event simulator (internal/sim + internal/radio) and on the
// live goroutine runtime (internal/live).
package proto

import (
	"fmt"

	"repro/internal/qos"
	"repro/internal/radio"
)

// Msg is the marker interface for protocol messages. WireSize returns the
// approximate encoded size in bytes, used by the radio medium to model
// transmission latency and by the overhead experiments.
type Msg interface {
	WireSize() int
	Kind() string
}

// TaskDescr describes one task inside a call for proposals. The demand
// model itself stays on the providers' side: the paper has providers map
// QoS to resources locally; the CFP carries only the user-visible
// request. DemandRef names a demand profile that providers resolve via a
// shared catalog (the equivalent of application deployment metadata).
type TaskDescr struct {
	TaskID    string
	Request   qos.Request
	DemandRef string
	InBytes   int64
	OutBytes  int64
}

// CFP is message (1) of the negotiation algorithm: "the Negotiation
// Organizer broadcasts the description of each service, as well as user's
// preferences on each QoS dimension".
type CFP struct {
	ServiceID string
	Round     int // renegotiation round, 0 for the initial formation
	SpecName  string
	Tasks     []TaskDescr
	// Deadline is the organizer-local time by which proposals must
	// arrive; informational for providers (they answer immediately).
	Deadline float64
}

// WireSize implements Msg.
func (m *CFP) WireSize() int {
	n := 64
	for _, t := range m.Tasks {
		n += 48 + 24*len(t.Request.Dims)
		for _, d := range t.Request.Dims {
			n += 16 * len(d.Attrs)
		}
	}
	return n
}

// Kind implements Msg.
func (m *CFP) Kind() string { return "cfp" }

// TaskProposal is one task's multi-attribute proposal inside a Proposal
// message: the QoS level the provider commits to serve and its local
// reward (Section 5, eq. 1).
type TaskProposal struct {
	TaskID string
	Level  qos.Level
	Reward float64
	// Copies is the provider's capacity hint: how many concurrent tasks
	// of this demand it could hold at proposal time (>= 1). See
	// core.Candidate.Copies and DESIGN.md ("protocol refinements").
	Copies int
}

// Proposal is message (2): a QoS Provider's reply after consulting its
// Resource Managers. Tasks the provider cannot serve at any acceptable
// level are simply absent.
type Proposal struct {
	ServiceID string
	Round     int
	Tasks     []TaskProposal
}

// WireSize implements Msg.
func (m *Proposal) WireSize() int {
	n := 48
	for _, t := range m.Tasks {
		n += 24 + 16*len(t.Level)
	}
	return n
}

// Kind implements Msg.
func (m *Proposal) Kind() string { return "proposal" }

// Award is message (3->4): the organizer informs a winning node of the
// tasks it must execute, at the levels it proposed.
type Award struct {
	ServiceID string
	Round     int
	TaskIDs   []string
}

// WireSize implements Msg.
func (m *Award) WireSize() int { return 40 + 16*len(m.TaskIDs) }

// Kind implements Msg.
func (m *Award) Kind() string { return "award" }

// AwardAck confirms (or declines) an award after the provider attempted
// the actual resource reservation. Declines happen when resources were
// consumed between proposal and award (the proposal was not a hard hold).
type AwardAck struct {
	ServiceID string
	Round     int
	TaskIDs   []string
	OK        bool
	Reason    string
}

// WireSize implements Msg.
func (m *AwardAck) WireSize() int { return 48 + 16*len(m.TaskIDs) + len(m.Reason) }

// Kind implements Msg.
func (m *AwardAck) Kind() string { return "award-ack" }

// TaskData is message (4): "relevant data for task execution is sent to
// winning node". Its wire size dominates communication cost.
type TaskData struct {
	ServiceID string
	TaskID    string
	Bytes     int64
}

// WireSize implements Msg.
func (m *TaskData) WireSize() int { return 32 + int(m.Bytes) }

// Kind implements Msg.
func (m *TaskData) Kind() string { return "task-data" }

// TaskRelease tells a member to drop one task's reservation without
// dissolving the whole coalition; used when a quality-upgrade
// renegotiation migrates the task to a better node (Section 4's
// "dynamically change the executing quality level").
type TaskRelease struct {
	ServiceID string
	TaskID    string
	Reason    string
	// Round is the negotiation round the release was issued in.
	// Providers refuse releases older than the round that placed their
	// current reservation, so a delayed or fault-duplicated release
	// replayed after the task was re-awarded to the same node cannot
	// free the newer reservation (DESIGN.md §12).
	Round int
}

// WireSize implements Msg. Round rides in the 32-byte fixed header the
// other handshake fields already occupy.
func (m *TaskRelease) WireSize() int { return 32 + len(m.Reason) }

// Kind implements Msg.
func (m *TaskRelease) Kind() string { return "task-release" }

// Heartbeat is the operation-phase liveness signal from a coalition
// member to the organizer.
type Heartbeat struct {
	ServiceID string
	TaskIDs   []string
}

// WireSize implements Msg.
func (m *Heartbeat) WireSize() int { return 24 + 8*len(m.TaskIDs) }

// Kind implements Msg.
func (m *Heartbeat) Kind() string { return "heartbeat" }

// Dissolve terminates the coalition: members release their reservations.
type Dissolve struct {
	ServiceID string
	Reason    string
}

// WireSize implements Msg.
func (m *Dissolve) WireSize() int { return 24 + len(m.Reason) }

// Kind implements Msg.
func (m *Dissolve) Kind() string { return "dissolve" }

// Transport lets a protocol entity send messages. One vocabulary serves
// three runtimes: the simulated radio medium (internal/core over
// internal/radio), the in-process goroutine runtime (internal/live), and
// real TCP sockets (internal/net).
//
// Send and Broadcast return an error when the transport *knows* the
// message did not go out — a dial failure, a broken or deadline-expired
// socket. Modeled radio loss (out of range, LossProb, a full inbox) is
// not an error: it is the lossy medium the protocol is designed for, so
// the sim and live transports always return nil. Callers treat errors
// as advisory — the negotiation is loss-tolerant by construction and
// the reliability layer (Reliable) retries regardless — but the TCP
// path surfaces them into the obs counters instead of swallowing them.
type Transport interface {
	// Self returns the local node ID.
	Self() radio.NodeID
	// Send unicasts to a neighbour.
	Send(to radio.NodeID, m Msg) error
	// Broadcast reaches all current single-hop neighbours.
	Broadcast(m Msg) error
	// CommCost estimates the cost (seconds) of moving size bytes to the
	// given node; +Inf when unreachable. The organizer uses it for the
	// "lowest communication cost" selection criterion.
	CommCost(to radio.NodeID, size int64) float64
}

// Network extends Transport with the explicit link lifecycle of
// deployments whose connections are real operating-system resources.
// In-process transports are born connected and never implement it; the
// TCP fabric (internal/net) does.
type Network interface {
	Transport
	// Listen starts accepting inbound peers.
	Listen() error
	// Dial registers (and lazily connects) the address of a peer.
	Dial(to radio.NodeID, addr string) error
	// Close tears the endpoint down, draining in-flight writes.
	Close() error
}

// Timers schedules callbacks in the entity's time base (virtual seconds
// on the simulator, scaled wall-clock on the live runtime).
type Timers interface {
	Now() float64
	After(d float64, fn func())
}

// String summarizes a message for traces.
func Describe(m Msg) string {
	return fmt.Sprintf("%s(%dB)", m.Kind(), m.WireSize())
}
