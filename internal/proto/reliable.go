package proto

import (
	"math"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/radio"
)

// This file is the at-least-once reliability layer of the negotiation
// protocol (DESIGN.md §12). The paper's handshakes assume a lossy
// ad-hoc radio but carry no redundancy; over a faulty medium
// (internal/faults) a single lost Award or TaskRelease silently
// degrades a formation or leaks a reservation. The hardening is the
// classic pair:
//
//   - at-least-once delivery: the Reliable transport wraps retriable
//     messages in a Sequenced envelope and blindly retransmits them a
//     bounded number of times with exponential backoff and
//     deterministic jitter — no acks, so the message flow stays the
//     paper's and the overhead is a fixed small factor;
//   - idempotence: receivers drop (sender, seq) duplicates through a
//     Dedup window before dispatch, so retransmissions and
//     fault-injected duplicates collapse to one effective delivery.
//
// Everything is deterministic: retry delays come from a splitmix64
// hash of (self, seq, attempt), never from an rng, so enabling
// reliability changes no random draw sequence anywhere.

// Sequenced wraps a protocol message with the sender-local sequence
// number the reliability layer retransmits and deduplicates by.
// Transports deliver it like any message; receiving dispatchers unwrap
// via Unwrap after consulting their Dedup filter.
type Sequenced struct {
	Seq   uint64
	Inner Msg
}

// WireSize implements Msg: the inner size plus the 8-byte sequence.
func (m *Sequenced) WireSize() int { return 8 + m.Inner.WireSize() }

// Kind implements Msg, delegating to the wrapped message so traces and
// overhead accounting see the protocol vocabulary, not the envelope.
func (m *Sequenced) Kind() string { return m.Inner.Kind() }

// Unwrap peels a Sequenced envelope: it returns the inner message and
// the sequence number, or the message itself with seq 0 when it is not
// sequenced (sequence numbers start at 1, so 0 means "unsequenced").
func Unwrap(m Msg) (Msg, uint64) {
	if s, ok := m.(*Sequenced); ok {
		return s.Inner, s.Seq
	}
	return m, 0
}

// RetryConfig bounds the retransmission schedule.
type RetryConfig struct {
	// Retries is the number of retransmissions after the initial send
	// (0 disables the layer entirely).
	Retries int
	// Backoff is the delay before the first retransmission in seconds
	// (default 0.05); each further one doubles it by Factor (default 2)
	// up to MaxBackoff (default 1).
	Backoff    float64
	Factor     float64
	MaxBackoff float64
	// Jitter is the relative jitter amplitude (default 0.5): attempt i
	// is delayed by backoff_i * (1 + Jitter*u) where u in [0,1) is a
	// deterministic hash of (sender, seq, i). Jitter spreads the
	// retransmissions of a burst so they do not re-collide inside one
	// loss burst or congested window.
	Jitter float64
}

// Enabled reports whether the configuration retransmits at all.
func (c RetryConfig) Enabled() bool { return c.Retries > 0 }

// withDefaults normalizes zero values.
func (c RetryConfig) withDefaults() RetryConfig {
	if c.Backoff <= 0 {
		c.Backoff = 0.05
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 1
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	} else if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	return c
}

// DefaultRetryConfig is the schedule the chaos experiments run: three
// transmissions total (initial + 2), 50 ms then 100 ms backoff, both
// jittered — bounded well under the organizer's 250 ms proposal and
// ack windows, so retransmission (not renegotiation) is the first line
// of defense against loss.
var DefaultRetryConfig = RetryConfig{Retries: 2}

// splitmix64 is the deterministic jitter hash (Steele et al.).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitter01 maps (self, seq, attempt) to [0,1).
func jitter01(self radio.NodeID, seq uint64, attempt int) float64 {
	h := splitmix64(uint64(self)*0x9e3779b97f4a7c15 ^ seq<<8 ^ uint64(attempt))
	return float64(h>>11) / float64(1<<53)
}

// Retriable reports whether the reliability layer covers a message
// kind. Heartbeats are excluded: they are periodic by construction, so
// the next tick is their retransmission and wrapping them would only
// inflate steady-state traffic.
func Retriable(m Msg) bool {
	_, hb := m.(*Heartbeat)
	return !hb
}

// Reliable decorates a Transport with bounded blind retransmission of
// sequenced messages. Sequence allocation and the retry counter are
// atomic so the live runtime's timer goroutines can share one per node;
// the simulator's single-threaded use pays only the uncontended cost.
type Reliable struct {
	inner Transport
	tm    Timers
	cfg   RetryConfig
	seq   atomic.Uint64

	// retx counts retry sends actually issued, for the overhead columns
	// of the chaos experiments; it registers into the owning runtime's
	// obs.Registry as "proto.retransmissions".
	retx obs.Counter
}

// NewReliable wraps a transport. A disabled config (Retries == 0)
// returns nil-like passthrough behavior — callers should keep the bare
// transport instead; NewReliable still handles it gracefully by never
// wrapping.
func NewReliable(inner Transport, tm Timers, cfg RetryConfig) *Reliable {
	return &Reliable{inner: inner, tm: tm, cfg: cfg.withDefaults()}
}

// Self implements Transport.
func (r *Reliable) Self() radio.NodeID { return r.inner.Self() }

// CommCost implements Transport.
func (r *Reliable) CommCost(to radio.NodeID, size int64) float64 {
	return r.inner.CommCost(to, size)
}

// Send implements Transport: retriable messages to other nodes are
// wrapped, sent, and blindly retransmitted on the backoff schedule.
// Self-sends and heartbeats pass through unwrapped. The returned error
// is the initial transmission's; retries are scheduled regardless, so
// a transient dial failure still heals through the backoff schedule.
func (r *Reliable) Send(to radio.NodeID, m Msg) error {
	if to == r.inner.Self() || !r.cfg.Enabled() || !Retriable(m) {
		return r.inner.Send(to, m)
	}
	w := r.wrap(m)
	err := r.inner.Send(to, w)
	r.scheduleRetries(func() { _ = r.inner.Send(to, w) }, w.Seq)
	return err
}

// Broadcast implements Transport: each retransmission re-broadcasts,
// reaching whatever neighbours are in range at that instant.
func (r *Reliable) Broadcast(m Msg) error {
	if !r.cfg.Enabled() || !Retriable(m) {
		return r.inner.Broadcast(m)
	}
	w := r.wrap(m)
	err := r.inner.Broadcast(w)
	r.scheduleRetries(func() { _ = r.inner.Broadcast(w) }, w.Seq)
	return err
}

func (r *Reliable) wrap(m Msg) *Sequenced {
	return &Sequenced{Seq: r.seq.Add(1), Inner: m}
}

// Retransmissions reports the retry sends issued so far.
func (r *Reliable) Retransmissions() uint64 { return r.retx.Load() }

// RetxCounter exposes the retransmission counter for registration into
// an obs.Registry under obs.Retransmissions.
func (r *Reliable) RetxCounter() *obs.Counter { return &r.retx }

// scheduleRetries arms the bounded retransmission timers: attempt i
// (1-based) fires min(Backoff*Factor^(i-1), MaxBackoff)*(1+Jitter*u_i)
// seconds after attempt i-1.
func (r *Reliable) scheduleRetries(send func(), seq uint64) {
	delay := 0.0
	backoff := r.cfg.Backoff
	for i := 1; i <= r.cfg.Retries; i++ {
		step := math.Min(backoff, r.cfg.MaxBackoff)
		delay += step * (1 + r.cfg.Jitter*jitter01(r.inner.Self(), seq, i))
		r.tm.After(delay, func() {
			r.retx.Inc()
			send()
		})
		backoff *= r.cfg.Factor
	}
}

// Dedup is the receiver-side duplicate filter: one sliding window of
// seen sequence numbers per sender. Sequence numbers from one sender
// are consumed in near order (retransmission backoff is bounded), so a
// fixed window of the most recent DedupWindow sequences per sender is
// exact in practice; anything older than the window is treated as a
// duplicate, which errs on the side of dropping ancient replays.
//
// The zero Dedup is ready to use and allocates nothing until the first
// sequenced message arrives, keeping the default (reliability off)
// paths allocation-free.
type Dedup struct {
	bySrc map[radio.NodeID]*dedupWindow
	// Duplicates counts sequenced deliveries suppressed; it registers
	// into the owning runtime's obs.Registry as "proto.duplicates".
	Duplicates obs.Counter
}

// DedupWindow is the per-sender sliding-window width.
const DedupWindow = 512

type dedupWindow struct {
	max  uint64 // highest sequence seen
	bits [DedupWindow / 64]uint64
}

func (w *dedupWindow) bit(seq uint64) (idx int, mask uint64) {
	s := seq % DedupWindow
	return int(s / 64), 1 << (s % 64)
}

// Duplicate records (from, seq) and reports whether it was already
// seen. Unsequenced messages (seq 0) are never duplicates — the filter
// only ever suppresses traffic the reliability layer wrapped.
func (d *Dedup) Duplicate(from radio.NodeID, seq uint64) bool {
	if seq == 0 {
		return false
	}
	if d.bySrc == nil {
		d.bySrc = make(map[radio.NodeID]*dedupWindow)
	}
	w, ok := d.bySrc[from]
	if !ok {
		w = &dedupWindow{}
		d.bySrc[from] = w
	}
	switch {
	case seq > w.max:
		// Advance: clear every slot the window slides past.
		if seq-w.max >= DedupWindow {
			w.bits = [DedupWindow / 64]uint64{}
		} else {
			for s := w.max + 1; s < seq; s++ {
				i, m := w.bit(s)
				w.bits[i] &^= m
			}
		}
		w.max = seq
		i, m := w.bit(seq)
		w.bits[i] |= m
		return false
	case w.max-seq >= DedupWindow:
		// Older than the window: cannot tell, drop as duplicate.
		d.Duplicates.Inc()
		return true
	default:
		i, m := w.bit(seq)
		if w.bits[i]&m != 0 {
			d.Duplicates.Inc()
			return true
		}
		w.bits[i] |= m
		return false
	}
}
