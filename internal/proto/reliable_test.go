package proto

import (
	"math"
	"testing"

	"repro/internal/radio"
)

// fakeTransport records sends; fakeTimers collects scheduled callbacks
// so tests fire them in order.
type fakeTransport struct {
	self  radio.NodeID
	sends []fakeSend
}

type fakeSend struct {
	to    radio.NodeID // radio.Broadcast for broadcasts
	msg   Msg
	bcast bool
}

func (f *fakeTransport) Self() radio.NodeID { return f.self }
func (f *fakeTransport) Send(to radio.NodeID, m Msg) error {
	f.sends = append(f.sends, fakeSend{to: to, msg: m})
	return nil
}
func (f *fakeTransport) Broadcast(m Msg) error {
	f.sends = append(f.sends, fakeSend{to: radio.Broadcast, msg: m, bcast: true})
	return nil
}
func (f *fakeTransport) CommCost(to radio.NodeID, size int64) float64 { return 0.001 }

type fakeTimer struct {
	at float64
	fn func()
}

type fakeTimers struct {
	now    float64
	queued []fakeTimer
}

func (f *fakeTimers) Now() float64 { return f.now }
func (f *fakeTimers) After(d float64, fn func()) {
	f.queued = append(f.queued, fakeTimer{at: f.now + d, fn: fn})
}

// fire runs all queued callbacks in schedule order.
func (f *fakeTimers) fire() {
	for len(f.queued) > 0 {
		best := 0
		for i, q := range f.queued {
			if q.at < f.queued[best].at {
				best = i
			}
		}
		q := f.queued[best]
		f.queued = append(f.queued[:best], f.queued[best+1:]...)
		f.now = q.at
		q.fn()
	}
}

func TestReliableRetransmitsWithBackoff(t *testing.T) {
	tr := &fakeTransport{self: 1}
	tm := &fakeTimers{}
	r := NewReliable(tr, tm, RetryConfig{Retries: 2, Backoff: 0.05, Jitter: -1})
	msg := &Award{ServiceID: "s", TaskIDs: []string{"t1"}}
	r.Send(2, msg)
	if len(tr.sends) != 1 {
		t.Fatalf("initial send count = %d", len(tr.sends))
	}
	w, ok := tr.sends[0].msg.(*Sequenced)
	if !ok || w.Seq != 1 || w.Inner != msg {
		t.Fatalf("first send not sequenced: %#v", tr.sends[0].msg)
	}
	if len(tm.queued) != 2 {
		t.Fatalf("queued %d retries, want 2", len(tm.queued))
	}
	// Jitter disabled: delays are exactly backoff and backoff*(1+factor).
	if got := tm.queued[0].at; math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("first retry at %g, want 0.05", got)
	}
	if got := tm.queued[1].at; math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("second retry at %g, want 0.15", got)
	}
	tm.fire()
	if len(tr.sends) != 3 {
		t.Fatalf("total sends = %d, want 3", len(tr.sends))
	}
	for _, s := range tr.sends[1:] {
		if s.msg != Msg(w) {
			t.Fatal("retransmission is not the identical wrapped message")
		}
	}
	if r.Retransmissions() != 2 {
		t.Fatalf("Retransmissions = %d", r.Retransmissions())
	}
}

func TestReliableSkipsSelfAndHeartbeats(t *testing.T) {
	tr := &fakeTransport{self: 1}
	tm := &fakeTimers{}
	r := NewReliable(tr, tm, DefaultRetryConfig)
	r.Send(1, &Award{ServiceID: "s"})       // self-send
	r.Send(2, &Heartbeat{ServiceID: "s"})   // heartbeat
	r.Broadcast(&Heartbeat{ServiceID: "s"}) // heartbeat broadcast
	if len(tm.queued) != 0 {
		t.Fatalf("%d retries scheduled for exempt messages", len(tm.queued))
	}
	for _, s := range tr.sends {
		if _, ok := s.msg.(*Sequenced); ok {
			t.Fatalf("exempt message wrapped: %#v", s.msg)
		}
	}
}

func TestReliableBroadcastRebroadcasts(t *testing.T) {
	tr := &fakeTransport{self: 1}
	tm := &fakeTimers{}
	r := NewReliable(tr, tm, RetryConfig{Retries: 1, Jitter: -1})
	r.Broadcast(&CFP{ServiceID: "s"})
	tm.fire()
	if len(tr.sends) != 2 || !tr.sends[0].bcast || !tr.sends[1].bcast {
		t.Fatalf("sends = %+v, want 2 broadcasts", tr.sends)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	for seq := uint64(1); seq < 100; seq++ {
		for i := 1; i <= 3; i++ {
			u := jitter01(5, seq, i)
			if u < 0 || u >= 1 {
				t.Fatalf("jitter01(5,%d,%d) = %g outside [0,1)", seq, i, u)
			}
			if u != jitter01(5, seq, i) {
				t.Fatal("jitter01 not deterministic")
			}
		}
	}
	if jitter01(5, 1, 1) == jitter01(6, 1, 1) {
		t.Fatal("jitter identical across senders (suspicious hash)")
	}
}

func TestSequencedWireSizeAndKind(t *testing.T) {
	inner := &Dissolve{ServiceID: "s", Reason: "done"}
	w := &Sequenced{Seq: 9, Inner: inner}
	if w.WireSize() != inner.WireSize()+8 {
		t.Fatalf("WireSize = %d, want inner+8", w.WireSize())
	}
	if w.Kind() != inner.Kind() {
		t.Fatalf("Kind = %q", w.Kind())
	}
	m, seq := Unwrap(w)
	if m != Msg(inner) || seq != 9 {
		t.Fatal("Unwrap lost the envelope")
	}
	m, seq = Unwrap(inner)
	if m != Msg(inner) || seq != 0 {
		t.Fatal("Unwrap of bare message changed it")
	}
}

func TestDedupWindow(t *testing.T) {
	var d Dedup
	if d.Duplicate(1, 0) || d.Duplicate(1, 0) {
		t.Fatal("unsequenced messages must never dedup")
	}
	if d.Duplicate(1, 1) {
		t.Fatal("fresh seq flagged")
	}
	if !d.Duplicate(1, 1) {
		t.Fatal("replay not flagged")
	}
	if d.Duplicate(2, 1) {
		t.Fatal("per-sender windows leaked across senders")
	}
	// Out-of-order arrivals within the window are each accepted once.
	if d.Duplicate(1, 10) || d.Duplicate(1, 5) || !d.Duplicate(1, 5) || !d.Duplicate(1, 10) {
		t.Fatal("out-of-order window handling wrong")
	}
	// A huge jump clears the window; the skipped range then reads as
	// fresh-once when it arrives late but inside the new window.
	if d.Duplicate(1, 1000) {
		t.Fatal("post-jump seq flagged")
	}
	if d.Duplicate(1, 999) || !d.Duplicate(1, 999) {
		t.Fatal("late-but-in-window seq mishandled")
	}
	// Ancient sequence numbers (outside the window) drop as duplicates.
	if !d.Duplicate(1, 100) {
		t.Fatal("ancient seq accepted")
	}
	if d.Duplicates.Load() == 0 {
		t.Fatal("duplicate counter never moved")
	}
}

// TestDedupSlideExhaustive slides one sender through many sequences
// with duplicates injected at every step: exactly one accept per seq.
func TestDedupSlideExhaustive(t *testing.T) {
	var d Dedup
	accepted := 0
	for seq := uint64(1); seq <= 3000; seq++ {
		if !d.Duplicate(7, seq) {
			accepted++
		}
		if !d.Duplicate(7, seq) {
			t.Fatalf("seq %d accepted twice", seq)
		}
		if seq > 3 && !d.Duplicate(7, seq-3) {
			t.Fatalf("recent seq %d re-accepted", seq-3)
		}
	}
	if accepted != 3000 {
		t.Fatalf("accepted %d of 3000", accepted)
	}
}
