package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
)

// This file is the wire codec of the networked fabric: a versioned,
// length-prefixed binary framing that round-trips every protocol and
// control message exactly (Decode(Encode(m)) == m, property-tested in
// codec_test.go). The simulator and the in-process live runtime pass
// Msg values by pointer and never touch it; internal/net frames every
// TCP write with it.
//
// Frame layout (all integers big-endian):
//
//	offset 0  1 byte   magic 'Q'
//	offset 1  1 byte   codec version (CodecVersion)
//	offset 2  1 byte   message kind tag
//	offset 3  4 bytes  payload length
//	offset 7  payload
//
// Payload primitives: unsigned varints for lengths/counts/sequence
// numbers, zigzag varints for signed integers, 8-byte IEEE-754 bits for
// floats (exact — the qos JSON codec is lossy for integral floats,
// which is why this codec does not reuse it), length-prefixed UTF-8 for
// strings. Maps (qos.Level, demand coefficients) are written sorted by
// key so encoding is deterministic. Zero-length collections decode as
// nil, mirroring how the message constructors build them.
//
// Decoding is strict and panic-free: truncated payloads, bad varints,
// unknown tags, nested Sequenced envelopes, counts larger than the
// remaining bytes, and trailing garbage all return errors. The frame
// length is checked against MaxFrame before the payload is read, so a
// corrupt length cannot force a huge allocation.

// CodecVersion is the wire format version this build speaks. Decode
// rejects every other version: negotiation protocols this small version
// by redeployment, not by in-band downgrade.
const CodecVersion = 1

// DefaultMaxFrame bounds the payload of one frame (1 MiB). TaskData is
// the only unbounded message; its Bytes field models payload size
// without carrying the bytes, so real frames stay tiny.
const DefaultMaxFrame = 1 << 20

// codecMagic guards against a non-protocol peer (or a desynchronized
// stream) being interpreted as frames.
const codecMagic = 'Q'

// frameHeader is the fixed prefix length: magic, version, kind, length.
const frameHeader = 7

// Message kind tags. Tags are wire format: append only, never renumber.
const (
	kindCFP byte = iota + 1
	kindProposal
	kindAward
	kindAwardAck
	kindTaskData
	kindTaskRelease
	kindHeartbeat
	kindDissolve
	kindSequenced
	kindHello
	kindCatalogUpdate
	kindBye
)

// ErrFrameTooLarge is returned when a frame's declared payload exceeds
// the codec's MaxFrame, on either side of the wire.
var ErrFrameTooLarge = errors.New("proto: frame exceeds max size")

// Codec encodes and decodes framed messages. The zero value is ready to
// use with DefaultMaxFrame.
type Codec struct {
	// MaxFrame caps the payload length accepted on decode and produced
	// on encode; 0 means DefaultMaxFrame.
	MaxFrame int
}

func (c Codec) maxFrame() int {
	if c.MaxFrame > 0 {
		return c.MaxFrame
	}
	return DefaultMaxFrame
}

// kindOf maps a message to its wire tag.
func kindOf(m Msg) (byte, error) {
	switch m.(type) {
	case *CFP:
		return kindCFP, nil
	case *Proposal:
		return kindProposal, nil
	case *Award:
		return kindAward, nil
	case *AwardAck:
		return kindAwardAck, nil
	case *TaskData:
		return kindTaskData, nil
	case *TaskRelease:
		return kindTaskRelease, nil
	case *Heartbeat:
		return kindHeartbeat, nil
	case *Dissolve:
		return kindDissolve, nil
	case *Sequenced:
		return kindSequenced, nil
	case *Hello:
		return kindHello, nil
	case *CatalogUpdate:
		return kindCatalogUpdate, nil
	case *Bye:
		return kindBye, nil
	default:
		return 0, fmt.Errorf("proto: cannot encode %T", m)
	}
}

// Encode frames a message into a fresh buffer.
func (c Codec) Encode(m Msg) ([]byte, error) { return c.AppendFrame(nil, m) }

// AppendFrame frames a message onto dst (which may be nil or a pooled
// buffer) and returns the extended slice.
func (c Codec) AppendFrame(dst []byte, m Msg) ([]byte, error) {
	kind, err := kindOf(m)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	dst = append(dst, codecMagic, CodecVersion, kind, 0, 0, 0, 0)
	dst, err = appendMsg(dst, m, false)
	if err != nil {
		return nil, err
	}
	payload := len(dst) - start - frameHeader
	if payload > c.maxFrame() {
		return nil, fmt.Errorf("proto: %s payload %d: %w", m.Kind(), payload, ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(dst[start+3:], uint32(payload))
	return dst, nil
}

// Decode parses one complete frame. The input must be exactly one
// frame; trailing bytes are an error (stream framing belongs to ReadMsg).
func (c Codec) Decode(frame []byte) (Msg, error) {
	if len(frame) < frameHeader {
		return nil, fmt.Errorf("proto: frame too short (%d bytes)", len(frame))
	}
	if frame[0] != codecMagic {
		return nil, fmt.Errorf("proto: bad magic 0x%02x", frame[0])
	}
	if frame[1] != CodecVersion {
		return nil, fmt.Errorf("proto: unsupported codec version %d (want %d)", frame[1], CodecVersion)
	}
	n := binary.BigEndian.Uint32(frame[3:7])
	if int64(n) > int64(c.maxFrame()) {
		return nil, fmt.Errorf("proto: declared payload %d: %w", n, ErrFrameTooLarge)
	}
	if len(frame)-frameHeader != int(n) {
		return nil, fmt.Errorf("proto: payload length mismatch: declared %d, have %d", n, len(frame)-frameHeader)
	}
	r := &wireReader{b: frame[frameHeader:]}
	m := decodeMsg(r, frame[2], false)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("proto: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return m, nil
}

// WriteMsg frames and writes one message.
func (c Codec) WriteMsg(w io.Writer, m Msg) error {
	frame, err := c.Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadMsg reads exactly one frame from the stream. A stream that ends
// cleanly between frames returns io.EOF; one that ends inside a frame
// returns io.ErrUnexpectedEOF. Oversized declared lengths are rejected
// before any payload allocation.
func (c Codec) ReadMsg(rd io.Reader) (Msg, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("proto: reading frame header: %w", err)
	}
	if hdr[0] != codecMagic {
		return nil, fmt.Errorf("proto: bad magic 0x%02x", hdr[0])
	}
	if hdr[1] != CodecVersion {
		return nil, fmt.Errorf("proto: unsupported codec version %d (want %d)", hdr[1], CodecVersion)
	}
	n := binary.BigEndian.Uint32(hdr[3:7])
	if int64(n) > int64(c.maxFrame()) {
		return nil, fmt.Errorf("proto: declared payload %d: %w", n, ErrFrameTooLarge)
	}
	frame := make([]byte, frameHeader+int(n))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(rd, frame[frameHeader:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("proto: reading frame payload: %w", err)
	}
	return c.Decode(frame)
}

// --- payload encoding -------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendF64(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

func appendStr(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendVec(b []byte, v resource.Vector) []byte {
	for _, f := range v {
		b = appendF64(b, f)
	}
	return b
}

func appendValue(b []byte, v qos.Value) ([]byte, error) {
	b = append(b, byte(v.Type))
	switch v.Type {
	case qos.TypeInt:
		return appendVarint(b, v.I), nil
	case qos.TypeFloat:
		return appendF64(b, v.F), nil
	case qos.TypeString:
		return appendStr(b, v.S), nil
	default:
		return nil, fmt.Errorf("proto: cannot encode qos value type %d", v.Type)
	}
}

func appendLevel(b []byte, l qos.Level) ([]byte, error) {
	keys := make([]qos.AttrKey, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Dim != keys[j].Dim {
			return keys[i].Dim < keys[j].Dim
		}
		return keys[i].Attr < keys[j].Attr
	})
	b = appendUvarint(b, uint64(len(keys)))
	var err error
	for _, k := range keys {
		b = appendStr(b, k.Dim)
		b = appendStr(b, k.Attr)
		if b, err = appendValue(b, l[k]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendRequest(b []byte, r *qos.Request) ([]byte, error) {
	b = appendStr(b, r.Service)
	b = appendUvarint(b, uint64(len(r.Dims)))
	var err error
	for i := range r.Dims {
		dp := &r.Dims[i]
		b = appendStr(b, dp.Dim)
		b = appendUvarint(b, uint64(len(dp.Attrs)))
		for j := range dp.Attrs {
			ap := &dp.Attrs[j]
			b = appendStr(b, ap.Attr)
			b = appendUvarint(b, uint64(len(ap.Sets)))
			for _, set := range ap.Sets {
				b = appendBool(b, set.Continuous)
				if set.Continuous {
					b = appendF64(b, set.From)
					b = appendF64(b, set.To)
				} else if b, err = appendValue(b, set.Single); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

func appendMsg(b []byte, m Msg, nested bool) ([]byte, error) {
	var err error
	switch v := m.(type) {
	case *CFP:
		b = appendStr(b, v.ServiceID)
		b = appendVarint(b, int64(v.Round))
		b = appendStr(b, v.SpecName)
		b = appendUvarint(b, uint64(len(v.Tasks)))
		for i := range v.Tasks {
			t := &v.Tasks[i]
			b = appendStr(b, t.TaskID)
			if b, err = appendRequest(b, &t.Request); err != nil {
				return nil, err
			}
			b = appendStr(b, t.DemandRef)
			b = appendVarint(b, t.InBytes)
			b = appendVarint(b, t.OutBytes)
		}
		return appendF64(b, v.Deadline), nil
	case *Proposal:
		b = appendStr(b, v.ServiceID)
		b = appendVarint(b, int64(v.Round))
		b = appendUvarint(b, uint64(len(v.Tasks)))
		for i := range v.Tasks {
			t := &v.Tasks[i]
			b = appendStr(b, t.TaskID)
			if b, err = appendLevel(b, t.Level); err != nil {
				return nil, err
			}
			b = appendF64(b, t.Reward)
			b = appendVarint(b, int64(t.Copies))
		}
		return b, nil
	case *Award:
		b = appendStr(b, v.ServiceID)
		b = appendVarint(b, int64(v.Round))
		return appendStrings(b, v.TaskIDs), nil
	case *AwardAck:
		b = appendStr(b, v.ServiceID)
		b = appendVarint(b, int64(v.Round))
		b = appendStrings(b, v.TaskIDs)
		b = appendBool(b, v.OK)
		return appendStr(b, v.Reason), nil
	case *TaskData:
		b = appendStr(b, v.ServiceID)
		b = appendStr(b, v.TaskID)
		return appendVarint(b, v.Bytes), nil
	case *TaskRelease:
		b = appendStr(b, v.ServiceID)
		b = appendStr(b, v.TaskID)
		b = appendStr(b, v.Reason)
		return appendVarint(b, int64(v.Round)), nil
	case *Heartbeat:
		b = appendStr(b, v.ServiceID)
		return appendStrings(b, v.TaskIDs), nil
	case *Dissolve:
		b = appendStr(b, v.ServiceID)
		return appendStr(b, v.Reason), nil
	case *Sequenced:
		if nested {
			return nil, errors.New("proto: nested Sequenced envelope")
		}
		if v.Inner == nil {
			return nil, errors.New("proto: Sequenced envelope with nil inner message")
		}
		inner, err := kindOf(v.Inner)
		if err != nil {
			return nil, err
		}
		b = appendUvarint(b, v.Seq)
		b = append(b, inner)
		return appendMsg(b, v.Inner, true)
	case *Hello:
		b = appendVarint(b, int64(v.Node))
		b = appendF64(b, v.X)
		b = appendF64(b, v.Y)
		b = appendF64(b, v.RangeM)
		b = appendF64(b, v.Bitrate)
		return appendVec(b, v.Capacity), nil
	case *CatalogUpdate:
		b = appendUvarint(b, uint64(len(v.Specs)))
		for _, s := range v.Specs {
			b = appendBytes(b, s)
		}
		b = appendUvarint(b, uint64(len(v.Demands)))
		for i := range v.Demands {
			d := &v.Demands[i]
			b = appendStr(b, d.Ref)
			b = appendVec(b, d.Base)
			b = appendUvarint(b, uint64(len(d.Coef)))
			for _, c := range d.Coef {
				b = appendStr(b, c.Dim)
				b = appendStr(b, c.Attr)
				b = appendVec(b, c.Vec)
			}
		}
		return b, nil
	case *Bye:
		return appendStr(b, v.Reason), nil
	default:
		return nil, fmt.Errorf("proto: cannot encode %T", m)
	}
}

// --- payload decoding -------------------------------------------------

// wireReader walks a payload with a sticky error: once any read fails,
// every further read is a no-op returning zero values, so decode code
// reads straight through without per-field error plumbing.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("proto: truncated payload")
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("proto: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("proto: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("proto: truncated float at offset %d", r.off)
		return 0
	}
	u := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(u)
}

func (r *wireReader) bool() bool {
	switch c := r.byte(); c {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("proto: bad bool byte 0x%02x", c)
		return false
	}
}

func (r *wireReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("proto: string length %d exceeds remaining %d", n, r.remaining())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *wireReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail("proto: byte-slice length %d exceeds remaining %d", n, r.remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return p
}

// count reads a collection length and validates it against the bytes
// left, assuming each element occupies at least elemSize bytes — a
// corrupt count can therefore never force a large allocation.
func (r *wireReader) count(elemSize int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(r.remaining()/elemSize) {
		r.fail("proto: count %d exceeds remaining %d bytes", n, r.remaining())
		return 0
	}
	return int(n)
}

func (r *wireReader) vec() resource.Vector {
	var v resource.Vector
	for i := range v {
		v[i] = r.f64()
	}
	return v
}

func (r *wireReader) value() qos.Value {
	switch t := qos.ValueType(r.byte()); t {
	case qos.TypeInt:
		return qos.Value{Type: t, I: r.varint()}
	case qos.TypeFloat:
		return qos.Value{Type: t, F: r.f64()}
	case qos.TypeString:
		return qos.Value{Type: t, S: r.str()}
	default:
		if r.err == nil {
			r.fail("proto: bad qos value type %d", t)
		}
		return qos.Value{}
	}
}

func (r *wireReader) level() qos.Level {
	n := r.count(3)
	if n == 0 {
		return nil
	}
	l := make(qos.Level, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := qos.AttrKey{Dim: r.str(), Attr: r.str()}
		l[k] = r.value()
	}
	return l
}

func (r *wireReader) request() qos.Request {
	q := qos.Request{Service: r.str()}
	nd := r.count(2)
	if nd > 0 {
		q.Dims = make([]qos.DimPref, nd)
	}
	for i := 0; i < nd && r.err == nil; i++ {
		dp := &q.Dims[i]
		dp.Dim = r.str()
		na := r.count(2)
		if na > 0 {
			dp.Attrs = make([]qos.AttrPref, na)
		}
		for j := 0; j < na && r.err == nil; j++ {
			ap := &dp.Attrs[j]
			ap.Attr = r.str()
			ns := r.count(2)
			if ns > 0 {
				ap.Sets = make([]qos.ValueSet, ns)
			}
			for k := 0; k < ns && r.err == nil; k++ {
				set := &ap.Sets[k]
				set.Continuous = r.bool()
				if set.Continuous {
					set.From = r.f64()
					set.To = r.f64()
				} else {
					set.Single = r.value()
				}
			}
		}
	}
	return q
}

func (r *wireReader) strings() []string {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := 0; i < n && r.err == nil; i++ {
		ss[i] = r.str()
	}
	return ss
}

func decodeMsg(r *wireReader, kind byte, nested bool) Msg {
	switch kind {
	case kindCFP:
		m := &CFP{ServiceID: r.str(), Round: int(r.varint()), SpecName: r.str()}
		n := r.count(5)
		if n > 0 {
			m.Tasks = make([]TaskDescr, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			t := &m.Tasks[i]
			t.TaskID = r.str()
			t.Request = r.request()
			t.DemandRef = r.str()
			t.InBytes = r.varint()
			t.OutBytes = r.varint()
		}
		m.Deadline = r.f64()
		return m
	case kindProposal:
		m := &Proposal{ServiceID: r.str(), Round: int(r.varint())}
		n := r.count(11)
		if n > 0 {
			m.Tasks = make([]TaskProposal, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			t := &m.Tasks[i]
			t.TaskID = r.str()
			t.Level = r.level()
			t.Reward = r.f64()
			t.Copies = int(r.varint())
		}
		return m
	case kindAward:
		return &Award{ServiceID: r.str(), Round: int(r.varint()), TaskIDs: r.strings()}
	case kindAwardAck:
		return &AwardAck{
			ServiceID: r.str(), Round: int(r.varint()),
			TaskIDs: r.strings(), OK: r.bool(), Reason: r.str(),
		}
	case kindTaskData:
		return &TaskData{ServiceID: r.str(), TaskID: r.str(), Bytes: r.varint()}
	case kindTaskRelease:
		return &TaskRelease{ServiceID: r.str(), TaskID: r.str(), Reason: r.str(), Round: int(r.varint())}
	case kindHeartbeat:
		return &Heartbeat{ServiceID: r.str(), TaskIDs: r.strings()}
	case kindDissolve:
		return &Dissolve{ServiceID: r.str(), Reason: r.str()}
	case kindSequenced:
		if nested {
			r.fail("proto: nested Sequenced envelope")
			return nil
		}
		seq := r.uvarint()
		inner := decodeMsg(r, r.byte(), true)
		if r.err != nil {
			return nil
		}
		return &Sequenced{Seq: seq, Inner: inner}
	case kindHello:
		return &Hello{
			Node: radio.NodeID(r.varint()),
			X:    r.f64(), Y: r.f64(), RangeM: r.f64(), Bitrate: r.f64(),
			Capacity: r.vec(),
		}
	case kindCatalogUpdate:
		m := &CatalogUpdate{}
		n := r.count(1)
		if n > 0 {
			m.Specs = make([][]byte, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Specs[i] = r.bytes()
		}
		n = r.count(1 + 8*resource.NumKinds)
		if n > 0 {
			m.Demands = make([]DemandEntry, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			d := &m.Demands[i]
			d.Ref = r.str()
			d.Base = r.vec()
			nc := r.count(2 + 8*resource.NumKinds)
			if nc > 0 {
				d.Coef = make([]AttrVector, nc)
			}
			for j := 0; j < nc && r.err == nil; j++ {
				c := &d.Coef[j]
				c.Dim = r.str()
				c.Attr = r.str()
				c.Vec = r.vec()
			}
		}
		return m
	case kindBye:
		return &Bye{Reason: r.str()}
	default:
		r.fail("proto: unknown message kind %d", kind)
		return nil
	}
}
