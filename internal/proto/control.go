package proto

import (
	"repro/internal/radio"
	"repro/internal/resource"
)

// This file holds the session-control vocabulary of the networked
// fabric (internal/net): messages exchanged between endpoints to set up
// and tear down the peer relationship itself, as opposed to the
// negotiation messages in proto.go that the paper defines. They ride
// the same codec and the same framed connections.

// Hello is the first message on every connection, in both directions:
// it registers the sender with the receiver's peer directory. It
// carries exactly the fields of the radio link model (radio.Link) —
// position, range, bitrate — so a TCP endpoint can compute in-range
// membership and communication cost with the same arithmetic the
// simulated medium uses, plus the node's capacity vector so organizers
// can report remote fleet capacity without a separate exchange.
type Hello struct {
	Node radio.NodeID
	// X, Y, RangeM and Bitrate describe the node's radio.Link.
	X, Y    float64
	RangeM  float64
	Bitrate float64
	// Capacity is the node's total resource vector (informational).
	Capacity resource.Vector
}

// WireSize implements Msg.
func (m *Hello) WireSize() int { return 8 + 4*8 + 8*resource.NumKinds }

// Kind implements Msg.
func (m *Hello) Kind() string { return "hello" }

// AttrVector is one (dimension, attribute) → resource coefficient row
// of a linear demand model, the wire form of task.LinearDemand's Coef
// map entry. Rows are ordered by (Dim, Attr) on the wire so encoding is
// deterministic.
type AttrVector struct {
	Dim, Attr string
	Vec       resource.Vector
}

// DemandEntry publishes one demand profile under its catalog reference.
type DemandEntry struct {
	Ref  string
	Base resource.Vector
	Coef []AttrVector
}

// WireSize implements Msg-style accounting for the entry.
func (d *DemandEntry) wireSize() int {
	n := 8 + len(d.Ref) + 8*resource.NumKinds
	for _, c := range d.Coef {
		n += 16 + len(c.Dim) + len(c.Attr) + 8*resource.NumKinds
	}
	return n
}

// CatalogUpdate pushes catalog entries to a remote provider before a
// CFP can reference them: QoS specs (as the qos package's canonical
// JSON, which is already the catalog interchange format) and linear
// demand models by reference. Daemons apply entries idempotently —
// re-registering an identical spec or demand is a no-op, so organizers
// can push their whole catalog before every submission.
type CatalogUpdate struct {
	// Specs holds qos.EncodeSpec JSON documents, one per spec.
	Specs   [][]byte
	Demands []DemandEntry
}

// WireSize implements Msg.
func (m *CatalogUpdate) WireSize() int {
	n := 16
	for _, s := range m.Specs {
		n += 8 + len(s)
	}
	for i := range m.Demands {
		n += m.Demands[i].wireSize()
	}
	return n
}

// Kind implements Msg.
func (m *CatalogUpdate) Kind() string { return "catalog" }

// Bye announces a graceful close: the sender will not transmit again on
// this connection, and the receiver should drop the peer from its
// directory without treating the close as a failure.
type Bye struct {
	Reason string
}

// WireSize implements Msg.
func (m *Bye) WireSize() int { return 8 + len(m.Reason) }

// Kind implements Msg.
func (m *Bye) Kind() string { return "bye" }
