package proto_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/workload"
)

// FuzzProtoDedup throws adversarial interleavings of duplicated,
// reordered, and replayed handshake messages at a formed coalition and
// checks the hardening invariants (DESIGN.md §12): whatever arrives —
// stale awards, out-of-round releases, forged acks, replayed dissolves,
// arbitrary sequence numbers — organizer round state stays a legal
// coalition state and every provider ledger drains to exactly empty
// after the final dissolve. Replays are injected from a "ghost" node so
// their sequence numbers live in a dedup window disjoint from real
// senders, the same way fault-layer duplicates reuse real envelopes.
func FuzzProtoDedup(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 1, 0, 3, 2, 200, 1, 3, 0, 0, 4, 9, 5, 5, 1, 7})
	f.Add([]byte{3, 0, 0, 3, 0, 0, 0, 0, 0, 1, 255, 9, 2, 3, 1, 6, 6, 6, 7, 7, 7})
	f.Fuzz(func(t *testing.T, script []byte) {
		const n = 4
		const ghost = radio.NodeID(9)
		cl := core.NewCluster(42, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
		if err := cl.SetRetry(proto.DefaultRetryConfig); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p := workload.Phone
			switch {
			case i == 0:
			case i%2 == 0:
				p = workload.Laptop
			default:
				p = workload.PDA
			}
			if _, err := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, n, 10))); err != nil {
				t.Fatal(err)
			}
		}
		// The ghost is on the medium (so its sends deliver) but runs no
		// protocol entity: awards routed to it are simply lost.
		if err := cl.Medium.Attach(ghost, radio.Static{X: 5, Y: 5}, 1000, 1e6, func(radio.NodeID, any) {}); err != nil {
			t.Fatal(err)
		}

		svc := workload.StreamService("s", 2, 1.0)
		org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, nil)
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(5)

		tasks := []string{"t0", "t1"}
		// Cap the interleaving length so fuzzer-grown inputs stay fast;
		// 64 injections are plenty to tangle a 2-task negotiation.
		if len(script) > 64*3 {
			script = script[:64*3]
		}
		for i := 0; i+2 < len(script); i += 3 {
			op, arg, dt := script[i], script[i+1], script[i+2]
			to := radio.NodeID(arg % n)
			round := int(arg%5) - 1
			var m proto.Msg
			switch op % 8 {
			case 0:
				m = &proto.Award{ServiceID: "s", Round: round, TaskIDs: []string{tasks[arg%2]}}
			case 1:
				m = &proto.TaskRelease{ServiceID: "s", TaskID: tasks[arg%2], Round: round, Reason: "fuzz replay"}
			case 2:
				m = &proto.TaskData{ServiceID: "s", TaskID: tasks[arg%2], Bytes: int64(arg)}
			case 3:
				m = &proto.Dissolve{ServiceID: "s", Reason: "fuzz replay"}
			case 4:
				m = &proto.Heartbeat{ServiceID: "s", TaskIDs: tasks}
				to = 0 // organizer-bound
			case 5:
				m = &proto.Proposal{ServiceID: "s", Round: round, Tasks: []proto.TaskProposal{{TaskID: tasks[arg%2], Level: nil, Reward: 1, Copies: 1}}}
				to = 0
			case 6:
				m = &proto.AwardAck{ServiceID: "s", Round: round, TaskIDs: []string{tasks[arg%2]}, OK: true}
				to = 0
			case 7:
				m = &proto.CFP{ServiceID: "s", Round: round, SpecName: svc.Spec.Name}
			}
			// Odd dt wraps the replay in a sequence envelope (a forged or
			// reordered retransmission); even dt sends it bare.
			if dt%2 == 1 {
				m = &proto.Sequenced{Seq: uint64(arg) + 1, Inner: m}
			}
			cl.Medium.Send(ghost, to, m, m.WireSize())
			cl.Run(cl.Eng.Now() + float64(dt)*0.01)
		}

		// Drain, dissolve, drain again: every ledger must be exactly empty
		// whatever the interleaving did.
		cl.Run(cl.Eng.Now() + 5)
		if st := org.State(); st != core.Forming && st != core.Operating && st != core.Dissolved {
			t.Fatalf("organizer in illegal state %v", st)
		}
		org.Dissolve("fuzz cleanup")
		cl.Run(cl.Eng.Now() + 20)
		for _, id := range cl.Nodes() {
			nd := cl.Node(id)
			if nd == nil {
				continue // ghost
			}
			if avail, cap := nd.Res.Available(), nd.Res.Capacity(); avail != cap {
				t.Fatalf("node %d ledger not empty after dissolve: avail %v cap %v", id, avail, cap)
			}
			if svcs := nd.Provider.ServiceIDs(); len(svcs) != 0 {
				t.Fatalf("node %d still accounts services %v", id, svcs)
			}
		}
	})
}
