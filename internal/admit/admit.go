// Package admit defines the admission-control policy layer of the open
// system: what happens to a session whose first formation attempt could
// not assign every task. The session engine (internal/session) executes
// the policies; this package owns the vocabulary — the policy enum, its
// knobs, the per-run counters, and the recorded arrival trace the
// clairvoyant oracle (baseline.Clairvoyant) replays offline.
//
// Three policies exist:
//
//   - Block: the PR-3 baseline — an incomplete first formation is torn
//     down immediately and the session is lost. With Config nil the
//     engine behaves byte-identically to before this layer existed;
//     with an explicit Block config the outcome per session is the
//     same, but the engine additionally records the arrival trace and
//     accounts admission-time utility, so Block rows are comparable to
//     the other policies and to the oracle bound.
//   - Queue: a blocked session waits instead of dying — its partial
//     coalition is dissolved (no reservation is parked), and the
//     engine re-submits the same service every RetryEvery seconds
//     until it admits or MaxWait expires.
//   - Yield: the engine prices the admission via the eq. 3 utility —
//     when the arriving session's best attainable utility exceeds the
//     utility cost of degrading incumbents, it sheds one dep-consistent
//     ladder step at a time from sessions on the most-loaded nodes
//     (through the adaptation engine, which keeps the steps exactly
//     revertible), then retries the formation once. A failed retry
//     rolls the incumbents back.
package admit

import (
	"fmt"

	"repro/internal/task"
)

// Policy selects the admission-control behaviour for sessions whose
// first formation attempt is incomplete.
type Policy int

const (
	// Block tears the incomplete coalition down immediately (default).
	Block Policy = iota
	// Queue retries the formation until MaxWait expires.
	Queue
	// Yield degrades incumbents to make room, when the utility gained
	// exceeds the utility cost, then retries once.
	Yield
)

// String names the policy (table rows, CLI flags).
func (p Policy) String() string {
	switch p {
	case Queue:
		return "queue"
	case Yield:
		return "yield"
	default:
		return "block"
	}
}

// ParsePolicy is String's inverse, for CLI flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "queue":
		return Queue, nil
	case "yield":
		return Yield, nil
	}
	return Block, fmt.Errorf("admit: unknown policy %q (want block, queue or yield)", s)
}

// Config parameterizes the admission layer. The zero value is the Block
// policy with default knobs.
type Config struct {
	// Policy selects the admission behaviour.
	Policy Policy
	// MaxWait (Queue) is how long after its arrival a waiting session
	// may still retry, in simulated seconds (default 30). A session
	// whose next retry would fall past arrival+MaxWait expires and
	// counts as blocked.
	MaxWait float64
	// RetryEvery (Queue) is the retry period in simulated seconds
	// (default 5). The session engine requires it to be at least twice
	// its DepartGrace, so a failed attempt's releases land before the
	// retry formation reserves again.
	RetryEvery float64
	// MaxQueue (Queue) caps the number of sessions waiting between
	// retries (default 16); a session arriving at a full queue blocks
	// immediately, like Block.
	MaxQueue int
	// MaxYieldSteps (Yield) caps the incumbent degrade steps one
	// arriving session may trigger (default 8).
	MaxYieldSteps int
}

// WithDefaults normalizes zero knobs to their defaults.
func (c Config) WithDefaults() Config {
	if c.MaxWait <= 0 {
		c.MaxWait = 30
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 5
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.MaxYieldSteps <= 0 {
		c.MaxYieldSteps = 8
	}
	return c
}

// Validate rejects configurations no run could execute sensibly.
func (c Config) Validate() error {
	d := c.WithDefaults()
	if d.Policy < Block || d.Policy > Yield {
		return fmt.Errorf("admit: unknown policy %d", d.Policy)
	}
	if d.RetryEvery > d.MaxWait {
		return fmt.Errorf("admit: RetryEvery %g exceeds MaxWait %g — no retry could ever fire", d.RetryEvery, d.MaxWait)
	}
	return nil
}

// Stats counts the admission layer's outcomes over one run. Event
// counters follow the session engine's steady-state convention (only
// post-warmup sessions count); UtilitySum deliberately does not — the
// clairvoyant bound is computed over the full recorded arrival trace,
// so the achieved utility it is compared against must cover the full
// horizon too.
type Stats struct {
	// Queued counts sessions that entered the retry queue; Retries
	// counts re-submissions fired (queue retries and yield re-attempts);
	// QueueAdmits counts sessions admitted on a retry; Expired counts
	// queued sessions whose MaxWait deadline passed (also counted as
	// Blocked in session.Stats).
	Queued, Retries, QueueAdmits, Expired int
	// YieldAttempts counts arrivals that triggered incumbent
	// degradation; YieldAdmits those admitted afterwards; YieldSteps the
	// degrade steps committed by admitted yields; YieldReverted the
	// steps rolled back after failed ones.
	YieldAttempts, YieldAdmits, YieldSteps, YieldReverted int
	// UtilitySum accumulates, over every admitted session of the whole
	// horizon, the session's admission-time utility: the sum over its
	// tasks of Evaluator.Utility(assigned distance). This is the
	// "achieved" side of the optimality gap against
	// baseline.Clairvoyant's bound.
	UtilitySum float64
	// DriftCost accumulates the utility cost inflicted on incumbents by
	// committed yields (the price the Yield policy paid for UtilitySum).
	DriftCost float64
}

// Merge folds another run's (or shard's) counters into s; all fields
// sum, so the fold is commutative like the rest of session.Stats.
func (s *Stats) Merge(o *Stats) {
	s.Queued += o.Queued
	s.Retries += o.Retries
	s.QueueAdmits += o.QueueAdmits
	s.Expired += o.Expired
	s.YieldAttempts += o.YieldAttempts
	s.YieldAdmits += o.YieldAdmits
	s.YieldSteps += o.YieldSteps
	s.YieldReverted += o.YieldReverted
	s.UtilitySum += o.UtilitySum
	s.DriftCost += o.DriftCost
}

// ArrivalRecord is one entry of the engine's recorded arrival trace:
// everything the clairvoyant oracle needs to re-decide the session's
// admission in hindsight. Hold is drawn at arrival time when the
// admission layer is on — blocked and expired sessions carry a holding
// time too, because the oracle may choose to admit them.
type ArrivalRecord struct {
	// Seq is the global arrival sequence number (0-based).
	Seq int
	// T is the arrival time; Hold the exponential holding time drawn
	// for the session.
	T, Hold float64
	// Svc is the instantiated service (shared with the engine; callers
	// must treat it as read-only).
	Svc *task.Service
}
