package admit

import "testing"

func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{Block, Queue, Yield} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
	// Out-of-range policies print as the safe default; only the three
	// named values survive a round trip.
	if s := Policy(99).String(); s != "block" {
		t.Errorf("Policy(99).String() = %q, want the block fallback", s)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	want := Config{MaxWait: 30, RetryEvery: 5, MaxQueue: 16, MaxYieldSteps: 8}
	if d != want {
		t.Errorf("zero-value defaults = %+v, want %+v", d, want)
	}
	// Explicit knobs pass through untouched.
	c := Config{Policy: Queue, MaxWait: 60, RetryEvery: 10, MaxQueue: 4, MaxYieldSteps: 2}
	if got := c.WithDefaults(); got != c {
		t.Errorf("explicit knobs rewritten: %+v -> %+v", c, got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := (Config{Policy: Policy(7)}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := (Config{RetryEvery: 40}).Validate(); err == nil {
		t.Error("RetryEvery > MaxWait accepted: no retry could ever fire")
	}
	if err := (Config{Policy: Yield, MaxYieldSteps: 3}).Validate(); err != nil {
		t.Errorf("valid yield config rejected: %v", err)
	}
}

func TestStatsMergeSumsEveryField(t *testing.T) {
	a := Stats{Queued: 1, Retries: 2, QueueAdmits: 3, Expired: 4,
		YieldAttempts: 5, YieldAdmits: 6, YieldSteps: 7, YieldReverted: 8,
		UtilitySum: 1.5, DriftCost: 0.25}
	b := Stats{Queued: 10, Retries: 20, QueueAdmits: 30, Expired: 40,
		YieldAttempts: 50, YieldAdmits: 60, YieldSteps: 70, YieldReverted: 80,
		UtilitySum: 15, DriftCost: 2.5}
	got := a
	got.Merge(&b)
	want := Stats{Queued: 11, Retries: 22, QueueAdmits: 33, Expired: 44,
		YieldAttempts: 55, YieldAdmits: 66, YieldSteps: 77, YieldReverted: 88,
		UtilitySum: 16.5, DriftCost: 2.75}
	if got != want {
		t.Errorf("Merge = %+v, want %+v", got, want)
	}
	// Commutative, like the rest of session.Stats.
	other := b
	other.Merge(&a)
	if other != want {
		t.Errorf("Merge not commutative: %+v vs %+v", other, want)
	}
}
