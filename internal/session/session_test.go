package session

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/workload"
)

// buildCluster materializes a deterministic static population.
func buildCluster(t *testing.T, seed int64, nodes int) *core.Cluster {
	t.Helper()
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = nodes
	sc, err := workload.Build(scfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Cluster
}

// ledgerEntriesFor returns every reservation ID referencing the service
// across all buckets of the cluster: firm reservations are "svc/task",
// provider holds are "hold:svc/round/task@node".
func ledgerEntriesFor(cl *core.Cluster, svcID string) []string {
	var out []string
	for _, id := range cl.Nodes() {
		res := cl.Node(id).Res
		for _, k := range resource.Kinds() {
			b, ok := res.Manager(k).(*resource.Bucket)
			if !ok {
				continue
			}
			for _, rid := range b.Holders() {
				s := string(rid)
				if strings.HasPrefix(s, svcID+"/") || strings.HasPrefix(s, "hold:"+svcID+"/") {
					out = append(out, fmt.Sprintf("node %d %s: %s", id, k, s))
				}
			}
		}
	}
	return out
}

// assertAllReleased asserts the system is back at its pristine state:
// every bucket's ledger empty and its available amount exactly equal to
// its capacity (Release snaps the running sum to zero when the ledger
// drains, so this equality is exact, not approximate).
func assertAllReleased(t *testing.T, cl *core.Cluster) {
	t.Helper()
	for _, id := range cl.Nodes() {
		res := cl.Node(id).Res
		for _, k := range resource.Kinds() {
			m := res.Manager(k)
			if b, ok := m.(*resource.Bucket); ok {
				if holders := b.Holders(); len(holders) != 0 {
					t.Errorf("node %d %s: ledger not empty after run: %v", id, k, holders)
				}
			}
			if m.Available() != m.Capacity() {
				t.Errorf("node %d %s: available %g != capacity %g after every session departed",
					id, k, m.Available(), m.Capacity())
			}
		}
	}
}

// TestLeakGuardOpenSystem is the reservation-ledger leak detector over
// an E17-style open system: after every session teardown (departure or
// admission failure) no bucket on any node may still hold a ledger
// entry referencing the session, over more than 1000 simulated
// sessions; and once every session has departed, every bucket's usage
// is exactly its pre-run value (zero). It runs once per engine path —
// the pooled slot table recycles session records, so the pooled subtest
// additionally proves that recycling never leaks a reservation.
func TestLeakGuardOpenSystem(t *testing.T) {
	for _, path := range []struct {
		name string
		slow bool
	}{{"pooled", false}, {"slowpath", true}} {
		t.Run(path.name, func(t *testing.T) {
			cl := buildCluster(t, 1, 12)
			tmpl := workload.SessionTemplate{Name: "leak", Tasks: 2, Scale: 1.0}
			checked := 0
			var eng *Engine
			cfg := Config{
				Arrivals:   arrival.Poisson{Rate: 0.5},
				NewService: tmpl.Instantiate,
				HoldMean:   20,
				Horizon:    2400,
				Warmup:     100,
				Organizer:  core.DefaultOrganizerConfig,
				SlowPath:   path.slow,
				AfterDeparture: func(now float64, svcID string) {
					checked++
					if left := ledgerEntriesFor(eng.Cluster(), svcID); len(left) != 0 {
						t.Fatalf("t=%.1fs: session %s left reservations behind: %v", now, svcID, left)
					}
				},
			}
			var err error
			eng, err = New(cl, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			st, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if checked < 1000 {
				t.Fatalf("only %d sessions tore down; the leak guard needs >= 1000", checked)
			}
			if st.Arrivals == 0 || st.Admitted == 0 {
				t.Fatalf("degenerate run: %+v", st)
			}
			if st.Admitted+st.Blocked != st.Arrivals {
				t.Errorf("admission accounting broken: %d admitted + %d blocked != %d arrivals",
					st.Admitted, st.Blocked, st.Arrivals)
			}
			assertAllReleased(t, cl)
		})
	}
}

// TestLeakGuardUnderChurn is the E19-style variant: node churn means a
// member can miss a Dissolve while off the air, so exact release is
// only required once the node has rebooted. After the run (plus reboot
// of any node still down) the system must again be pristine.
func TestLeakGuardUnderChurn(t *testing.T) {
	cl := buildCluster(t, 3, 12)
	tmpl := workload.SessionTemplate{Name: "churn", Tasks: 2, Scale: 1.0}
	cfg := Config{
		Arrivals:   arrival.Poisson{Rate: 0.3},
		NewService: tmpl.Instantiate,
		HoldMean:   25,
		Horizon:    1200,
		Warmup:     100,
		Organizer:  core.DefaultOrganizerConfig,
		Churn: &ChurnConfig{
			Leave:    arrival.Poisson{Rate: 1.0 / 60},
			DownMean: 30,
		},
	}
	eng, err := New(cl, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeLeaves == 0 {
		t.Fatal("churn never fired; the test exercises nothing")
	}
	// Nodes still off the air at the end hold whatever they missed;
	// reboot them the same way the churn stream would have.
	for _, id := range cl.Nodes() {
		if cl.Medium.Down(id) {
			cl.RebootNode(id)
		}
	}
	assertAllReleased(t, cl)
}

// fixedArrivals is a test Process emitting a predetermined schedule.
type fixedArrivals []float64

func (f fixedArrivals) Next(now float64, _ *rand.Rand) float64 {
	for _, t := range f {
		if t > now {
			return t
		}
	}
	return math.Inf(1)
}

// TestHorizonStraddlingFormation: a session arriving just before the
// horizon completes its formation during the drain run. It must tear
// down immediately (no reservation may outlive Run) and be excluded
// from the admission counters — the horizon censored its outcome.
func TestHorizonStraddlingFormation(t *testing.T) {
	cl := buildCluster(t, 1, 8)
	tmpl := workload.SessionTemplate{Name: "late", Tasks: 2, Scale: 1.0}
	eng, err := New(cl, Config{
		Arrivals:   fixedArrivals{50, 99.9},
		NewService: tmpl.Instantiate,
		HoldMean:   40,
		Horizon:    100,
		Warmup:     10,
		Organizer:  core.DefaultOrganizerConfig,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The t=50 session resolves normally; the t=99.9 one is censored.
	if st.Arrivals != 1 || st.Admitted+st.Blocked != st.Arrivals {
		t.Errorf("censored formation leaked into counters: %+v", st)
	}
	if left := ledgerEntriesFor(cl, "late-s1"); len(left) != 0 {
		t.Errorf("straddling session left reservations behind: %v", left)
	}
	assertAllReleased(t, cl)
}

// TestDissolveIdempotent pins the teardown contract the drain pass and
// late departure timers rely on: a second Dissolve (and a second
// RetireService) is a no-op, and reservations are released exactly
// once.
func TestDissolveIdempotent(t *testing.T) {
	cl := buildCluster(t, 1, 8)
	svc := workload.StreamService("twice", 2, 1.0)
	var res *core.Result
	org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(10)
	if res == nil || !res.Complete() {
		t.Fatal("formation incomplete")
	}
	org.Dissolve("first")
	org.Dissolve("second")
	if org.State() != core.Dissolved {
		t.Fatalf("state %v after double dissolve", org.State())
	}
	cl.Run(15)
	org.Dissolve("third, after delivery")
	if left := ledgerEntriesFor(cl, "twice"); len(left) != 0 {
		t.Errorf("reservations survived dissolve: %v", left)
	}
	assertAllReleased(t, cl)
	if err := cl.RetireService(0, "twice"); err != nil {
		t.Errorf("retire: %v", err)
	}
	if err := cl.RetireService(0, "twice"); err != nil {
		t.Errorf("second retire must be a no-op, got %v", err)
	}
}

// TestRetireRefusesLiveOrganizer: retiring an operating coalition would
// detach an object whose timers still fire.
func TestRetireRefusesLiveOrganizer(t *testing.T) {
	cl := buildCluster(t, 1, 8)
	svc := workload.StreamService("live", 1, 1.0)
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(10)
	if err := cl.RetireService(0, "live"); err == nil {
		t.Fatal("retire accepted an operating organizer")
	}
}

// TestRunDeterminism: two engines over identically-seeded clusters must
// produce identical Stats, the property the E17-E19 golden tables pin
// end to end.
func TestRunDeterminism(t *testing.T) {
	run := func() *Stats {
		cl := buildCluster(t, 5, 10)
		tmpl := workload.SessionTemplate{Name: "det", Tasks: 2, Scale: 1.2}
		eng, err := New(cl, Config{
			Arrivals:   arrival.Inhomogeneous{Profile: arrival.Diurnal{Mean: 0.1, Amplitude: 0.8, Period: 200}},
			NewService: tmpl.Instantiate,
			HoldMean:   30,
			Horizon:    600,
			Warmup:     60,
			Organizers: []radio.NodeID{0, 1},
			Organizer:  core.DefaultOrganizerConfig,
			Churn:      &ChurnConfig{Leave: arrival.Poisson{Rate: 1.0 / 120}, DownMean: 20},
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different stats:\n a = %+v\n b = %+v", a, b)
	}
	if a.Arrivals == 0 {
		t.Fatal("degenerate run")
	}
}

// TestConfigValidation rejects the configurations that would silently
// do nothing or spin.
func TestConfigValidation(t *testing.T) {
	cl := buildCluster(t, 1, 4)
	tmpl := workload.SessionTemplate{Name: "v", Tasks: 1, Scale: 1}
	ok := Config{Arrivals: arrival.Poisson{Rate: 1}, NewService: tmpl.Instantiate, HoldMean: 10, Horizon: 100}
	bad := []func(c *Config){
		func(c *Config) { c.Arrivals = nil },
		func(c *Config) { c.NewService = nil },
		func(c *Config) { c.HoldMean = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Warmup = 100 },
		func(c *Config) { c.Organizers = []radio.NodeID{99} },
		func(c *Config) { c.Churn = &ChurnConfig{} },
	}
	for i, mutate := range bad {
		c := ok
		mutate(&c)
		if _, err := New(cl, c, 1); err == nil {
			t.Errorf("config mutation %d accepted", i)
		}
	}
	if _, err := New(cl, ok, 1); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestSessionTemplateSharesDemandRefs pins the compiled-problem reuse
// contract: instances share demand references and requests, differ in
// service ID.
func TestSessionTemplateSharesDemandRefs(t *testing.T) {
	tmpl := workload.SessionTemplate{Name: "tpl", Tasks: 2, Scale: 1}
	a, b := tmpl.Instantiate(1), tmpl.Instantiate(2)
	if a.ID == b.ID {
		t.Fatalf("instances share service ID %q", a.ID)
	}
	for i := range a.Tasks {
		ra, rb := a.Tasks[i].Ref(a.ID), b.Tasks[i].Ref(b.ID)
		if ra != rb {
			t.Errorf("task %d demand refs differ: %q vs %q", i, ra, rb)
		}
		if !a.Tasks[i].Request.Equal(&b.Tasks[i].Request) {
			t.Errorf("task %d requests differ between instances", i)
		}
	}
	var plain task.Task
	plain.ID = "t"
	if got := plain.Ref("svc"); got != "svc/t" {
		t.Errorf("default ref = %q, want svc/t", got)
	}
}
