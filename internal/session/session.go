package session

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adapt"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/trace"
)

// ChurnConfig adds node join/leave churn as a second event stream: at
// each event of Leave, one unprotected, currently-alive node goes off
// the air for an exponential downtime, then reboots (provider soft
// state purged) and rejoins.
type ChurnConfig struct {
	// Leave generates node-leave event times.
	Leave arrival.Process
	// DownMean is the mean off-air time in seconds.
	DownMean float64
}

// Config parameterizes one open-system run.
type Config struct {
	// Arrivals generates session arrival times over [0, Horizon).
	Arrivals arrival.Process
	// NewService stamps out the seq-th session's service (seq is the
	// global arrival sequence number, 0-based). Services must have
	// unique IDs; workload.SessionTemplate.Instantiate is the standard
	// factory.
	NewService func(seq int) *task.Service
	// HoldMean is the mean exponential session holding time (seconds),
	// measured from admission.
	HoldMean float64
	// Horizon is the simulated span; Warmup excludes the initial
	// transient from every steady-state statistic.
	Horizon, Warmup float64
	// Organizers lists the nodes user requests originate at,
	// round-robin by arrival sequence (default: node 0). Organizer
	// nodes are protected from churn: a vanished organizer cannot
	// dissolve its sessions, which is a different failure mode than the
	// helper churn this engine models.
	Organizers []radio.NodeID
	// Organizer configures every session's negotiation organizer.
	Organizer core.OrganizerConfig
	// SampleEvery is the steady-state sampling period (default 1s).
	SampleEvery float64
	// DepartGrace is how long after a dissolve the radio is given to
	// deliver the release broadcast before departure hooks run
	// (default 1s).
	DepartGrace float64
	// Churn enables node join/leave churn.
	Churn *ChurnConfig
	// Adapt, when set, runs the mid-session QoS adaptation engine
	// (internal/adapt) over the live sessions: churn repair per its
	// ChurnPolicy, utilisation-pressure degradation and epoch-driven
	// upgrade reclamation. nil keeps the fixed-QoS lifecycle, where an
	// admitted session holds its admission-time levels until departure.
	// Run the organizer with Monitor/Reconfigure off when adaptation
	// owns churn repair: exactly one layer should renegotiate a lost
	// member (see DESIGN.md §10).
	Adapt *adapt.Config
	// AfterDeparture, when set, runs DepartGrace after every session
	// teardown (departure or admission failure) with the service ID;
	// the leak-guard tests hang their reservation-ledger detector here.
	AfterDeparture func(now float64, svcID string)
	// Faults, when set, wires a deterministic fault injector
	// (internal/faults) into the radio medium for the whole run and
	// schedules its freeze/thaw events: frozen nodes go radio-dark while
	// their timers and ledgers live on. nil leaves the medium untouched
	// — the default paths are byte-identical with no plan.
	Faults *faults.Injector
	// ReconcileEvery is the period (seconds) of the reservation
	// reconciliation sweep that reclaims orphaned reservations — ledger
	// entries on frozen-then-recovered providers whose coalition moved
	// on or dissolved while they were dark. 0 (the default) disables
	// the periodic sweep; a final sweep still runs after the drain
	// whenever Faults is set, so no shipped fault plan can leak.
	ReconcileEvery float64
	// Trace, when set, receives the engine's structured flight-recorder
	// events: arrivals, admission verdicts, departures and kills, churn
	// leaves, fault-plan freeze/thaw fates, reconciliation sweeps and
	// adaptation passes. Every emission site sits on code shared by the
	// fast and slow session loops, so a run's trace is byte-identical on
	// both paths (scripts/determinism.sh diffs them). nil (the default)
	// costs one pointer check per site — observability off is free.
	Trace *trace.Recorder
	// SlowPath selects the retained reference implementation of the
	// session loop: per-arrival session and closure allocations,
	// closure-chained arrival/churn streams — the pre-pooling engine
	// kept as the equivalence oracle for the pooled fast path (the
	// default). Both paths produce byte-identical Stats over any
	// scenario; the property tests in this package assert it.
	SlowPath bool
}

// Stats is the steady-state outcome of a run. Counters cover sessions
// arriving at or after Warmup; time averages cover [Warmup, Horizon].
type Stats struct {
	// Arrivals, Admitted, Blocked count post-warmup session arrivals
	// and their admission outcome (admitted = every task assigned on
	// the first formation attempt; anything less is blocked and torn
	// down immediately). A formation still in flight when the horizon
	// falls is censored: it resolves during the drain, tears down
	// without a verdict, and is excluded from all three counters, so
	// Admitted + Blocked == Arrivals always holds.
	Arrivals, Admitted, Blocked int
	// Departed counts post-warmup-admitted sessions that completed
	// their holding time and dissolved before the horizon.
	Departed int
	// PeakLive is the maximum number of concurrently operating
	// sessions observed over [Warmup, Horizon].
	PeakLive int
	// LiveAvg is the time-averaged number of operating sessions.
	LiveAvg float64
	// DistanceAvg is the time-averaged mean QoS distance of live
	// sessions (sampled every SampleEvery over instants with at least
	// one live session): the steady-state quality users experience.
	DistanceAvg float64
	// Util is the time-averaged per-resource utilization, averaged
	// over nodes: 1 - available/capacity per kind.
	Util [resource.NumKinds]float64
	// Reconfigurations and MemberFailures aggregate the organizers'
	// operation-phase counters across every session of the whole run.
	Reconfigurations, MemberFailures int
	// NodeLeaves counts churn events that took a node off the air.
	NodeLeaves int
	// Counters is the run's unified hardening-counter snapshot from the
	// cluster's obs.Registry: protocol retransmissions and duplicate
	// suppressions, provider stale-release refusals, fault-plan freezes
	// and reconciliation reclaims (obs/names.go is the key catalog).
	// Registering a counter is sufficient for it to appear here and in
	// every fabric merge — no per-counter plumbing. The map is the one
	// reference field Stats carries; Merge never mutates it in place
	// (Snapshot.Merge returns a fresh map), so value copies of Stats
	// stay safe to share.
	Counters obs.Snapshot
	// Adapt aggregates the adaptation engine's counters and per-session
	// histories (zero when Config.Adapt is nil).
	Adapt adapt.Stats
	// SimEvents is the number of discrete events the engine processed.
	SimEvents uint64
	// Nodes is the population size of the neighbourhood the stats were
	// collected over; Merge uses it to node-weight utilization when
	// folding heterogeneous shards.
	Nodes int
}

// Freezes reports the fault-plan freeze events applied (node went
// radio-dark with its state intact), from the counter snapshot.
func (s *Stats) Freezes() int { return int(s.Counters.Get(obs.Freezes)) }

// Reclaimed reports the orphaned reservations the reconciliation sweep
// released — ledger entries whose session departed, died, or migrated
// away while the holding node was unreachable.
func (s *Stats) Reclaimed() int { return int(s.Counters.Get(obs.Reclaimed)) }

// AdmissionRatio is Admitted/Arrivals (1 when nothing arrived).
func (s *Stats) AdmissionRatio() float64 {
	if s.Arrivals == 0 {
		return 1
	}
	return float64(s.Admitted) / float64(s.Arrivals)
}

// BlockingRatio is Blocked/Arrivals (0 when nothing arrived).
func (s *Stats) BlockingRatio() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Arrivals)
}

// SurvivalRatio is the fraction of admitted sessions the adaptation
// engine did not kill: (Admitted - Adapt.Kills)/Admitted (1 when
// nothing was admitted). Without adaptation every admitted session
// survives to its holding-time expiry and the ratio is 1.
func (s *Stats) SurvivalRatio() float64 {
	if s.Admitted == 0 {
		return 1
	}
	return float64(s.Admitted-s.Adapt.Kills) / float64(s.Admitted)
}

// Merge folds another neighbourhood's steady-state stats into s,
// producing city-wide statistics: the two runs are treated as parallel
// open systems observed over the same [warmup, horizon] window (which
// is how the fabric engine runs its shards). Counters and SimEvents
// sum; LiveAvg sums (concurrent sessions across shards add); Util is
// node-weighted via Nodes; DistanceAvg is admission-weighted (shards
// with no admitted sessions contribute nothing). PeakLive sums the
// per-shard peaks, an upper bound on the city-wide peak — the shard
// peaks need not coincide in time. A pairwise merge is commutative, and
// the fabric folds shards in ascending shard order, so merged tables
// are deterministic.
func (s *Stats) Merge(o *Stats) {
	// Weighted means first: they need the pre-merge counters as weights.
	if s.Admitted+o.Admitted > 0 {
		s.DistanceAvg = (s.DistanceAvg*float64(s.Admitted) + o.DistanceAvg*float64(o.Admitted)) /
			float64(s.Admitted+o.Admitted)
	}
	if s.Nodes+o.Nodes > 0 {
		for k := range s.Util {
			s.Util[k] = (s.Util[k]*float64(s.Nodes) + o.Util[k]*float64(o.Nodes)) /
				float64(s.Nodes+o.Nodes)
		}
	}
	s.Arrivals += o.Arrivals
	s.Admitted += o.Admitted
	s.Blocked += o.Blocked
	s.Departed += o.Departed
	s.PeakLive += o.PeakLive
	s.LiveAvg += o.LiveAvg
	s.Reconfigurations += o.Reconfigurations
	s.MemberFailures += o.MemberFailures
	s.NodeLeaves += o.NodeLeaves
	s.Counters = s.Counters.Merge(o.Counters)
	s.SimEvents += o.SimEvents
	s.Nodes += o.Nodes
	s.Adapt.Merge(&o.Adapt)
}

// ReconfigPerHour normalizes the reconfiguration count to simulated
// hours of horizon.
func (s *Stats) ReconfigPerHour(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.Reconfigurations) * 3600 / horizon
}

// liveSession is one operating coalition. On the fast path the record
// doubles as a slot in the engine's pooled session table: acquired from
// the free-list at arrival, retired (generation bumped) at teardown and
// reused by a later arrival. The persistent onFormedFn replaces the
// per-arrival callback closure the reference loop allocates.
type liveSession struct {
	id       string
	node     radio.NodeID
	org      *core.Organizer
	counted  bool // arrived at or after Warmup
	departed bool

	slot       int    // index in Engine.slots; -1 on the slow path
	gen        uint64 // bumped at retire; invalidates pooled timer records
	formed     bool   // first-formation guard (slow path uses a closure var)
	onFormedFn func(*core.Result)
}

// departEv is one scheduled holding-time expiry, pooled on the engine.
// It records the slot's generation at schedule time: a timer that
// outlives its session (the adapt engine killed it, or the drain beat
// the timer) fires into a recycled slot and must not touch it.
type departEv struct {
	e   *Engine
	ls  *liveSession
	gen uint64
}

// runDepart is the shared event handler for every departEv record.
func runDepart(x any) {
	ev := x.(*departEv)
	e, ls, gen := ev.e, ev.ls, ev.gen
	ev.ls = nil
	e.departPool = append(e.departPool, ev)
	if ls.gen != gen {
		return // slot recycled since scheduling: the session already ended
	}
	e.depart(ls)
}

// hookEv is one pending AfterDeparture callback, pooled on the engine.
type hookEv struct {
	e  *Engine
	id string
}

func runHook(x any) {
	ev := x.(*hookEv)
	e, id := ev.e, ev.id
	ev.id = ""
	e.hookPool = append(e.hookPool, ev)
	e.cfg.AfterDeparture(e.cl.Eng.Now(), id)
}

// rebootEv is one pending churn-victim reboot, pooled on the engine.
type rebootEv struct {
	e      *Engine
	victim radio.NodeID
}

func runReboot(x any) {
	ev := x.(*rebootEv)
	e, victim := ev.e, ev.victim
	e.rebootPool = append(e.rebootPool, ev)
	e.cl.RebootNode(victim)
}

// Engine drives the session lifecycle and churn streams over a built
// cluster. It is single-use: New, then Run once.
type Engine struct {
	cfg Config
	cl  *core.Cluster

	arriveRng, holdRng, churnRng *rand.Rand

	ad *adapt.Engine

	seq       int
	live      []*liveSession
	protected map[radio.NodeID]bool
	forming   int // submitted sessions whose first formation attempt is still running
	draining  bool
	err       error

	// activeSvc registers every submitted-and-not-yet-torn-down session
	// by service ID (forming or live); the reconciliation sweep treats
	// any reservation outside this set as an orphan.
	activeSvc map[string]*core.Organizer

	stats   Stats
	liveAvg metrics.TimeAvg
	utilAvg [resource.NumKinds]metrics.TimeAvg
	dist    metrics.Sample

	// rec is the flight recorder (nil = tracing off).
	rec *trace.Recorder

	// freezes/reclaimed are the engine's registered hardening counters;
	// Run snapshots the whole cluster registry into stats.Counters at
	// the very end, after the drain and the final reconcile sweep.
	freezes   *obs.Counter
	reclaimed *obs.Counter

	// Pooled fast path (cfg.SlowPath false): the slot-indexed session
	// table with its free-list, the pooled timer records, the persistent
	// stream closures, and the churn-candidate scratch.
	slots       []*liveSession
	freeSlots   []int
	departPool  []*departEv
	hookPool    []*hookEv
	rebootPool  []*rebootEv
	arrivalFn   func()
	churnFn     func()
	sampleFn    func()
	nextArrival float64
	nextChurn   float64
	candBuf     []radio.NodeID
}

// New builds an engine over the cluster. The seed derives the engine's
// private arrival / holding-time / churn rngs, one per stream, so the
// draw sequence of each stream is independent of how session outcomes
// interleave with arrivals.
func New(cl *core.Cluster, cfg Config, seed int64) (*Engine, error) {
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("session: config needs an arrival process")
	}
	if cfg.NewService == nil {
		return nil, fmt.Errorf("session: config needs a service factory")
	}
	if cfg.HoldMean <= 0 {
		return nil, fmt.Errorf("session: holding-time mean must be positive, got %g", cfg.HoldMean)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("session: horizon must be positive, got %g", cfg.Horizon)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("session: warmup %g outside [0, horizon %g)", cfg.Warmup, cfg.Horizon)
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.DepartGrace <= 0 {
		cfg.DepartGrace = 1
	}
	if len(cfg.Organizers) == 0 {
		cfg.Organizers = []radio.NodeID{0}
	}
	if cfg.Churn != nil && (cfg.Churn.Leave == nil || cfg.Churn.DownMean <= 0) {
		return nil, fmt.Errorf("session: churn config needs a leave process and a positive downtime mean")
	}
	if cfg.ReconcileEvery < 0 {
		return nil, fmt.Errorf("session: ReconcileEvery must be >= 0, got %g", cfg.ReconcileEvery)
	}
	e := &Engine{
		cfg:       cfg,
		cl:        cl,
		arriveRng: rand.New(rand.NewSource(seed ^ 0x243f6a8885a308d3)),
		holdRng:   rand.New(rand.NewSource(seed ^ 0x13198a2e03707344)),
		churnRng:  rand.New(rand.NewSource(seed ^ 0x0a4093822299f31d)),
		protected: make(map[radio.NodeID]bool, len(cfg.Organizers)),
		activeSvc: make(map[string]*core.Organizer),
		freezes:   cl.Obs.Counter(obs.Freezes),
		reclaimed: cl.Obs.Counter(obs.Reclaimed),
		rec:       cfg.Trace,
	}
	for _, id := range cfg.Organizers {
		if cl.Node(id) == nil {
			return nil, fmt.Errorf("session: organizer node %d not in cluster", id)
		}
		e.protected[id] = true
	}
	if cfg.Adapt != nil {
		// Exactly one layer renegotiates a lost member (DESIGN.md §10):
		// the protocol monitor and the adaptation engine repairing the
		// same session would desynchronize silently, so mixing them is
		// a configuration error, not a preference.
		if cfg.Organizer.Monitor || cfg.Organizer.Reconfigure {
			return nil, fmt.Errorf("session: adaptation owns churn repair; disable Organizer.Monitor and Organizer.Reconfigure when Config.Adapt is set")
		}
		ad, err := adapt.New(cl, *cfg.Adapt, cfg.Warmup)
		if err != nil {
			return nil, err
		}
		e.ad = ad
	}
	return e, nil
}

// Adapter returns the run's adaptation engine (nil without Config.Adapt),
// for test assertions and CLI reporting.
func (e *Engine) Adapter() *adapt.Engine { return e.ad }

// Cluster returns the cluster the engine drives, for test assertions.
func (e *Engine) Cluster() *core.Cluster { return e.cl }

// Run schedules the arrival, churn and sampling streams, drives the
// simulation to the horizon, then dissolves any sessions still
// operating and lets their releases propagate. It returns the
// steady-state statistics over [Warmup, Horizon].
func (e *Engine) Run() (*Stats, error) {
	e.sampleFn = e.sampleTick
	if e.cfg.SlowPath {
		e.scheduleArrival(0)
	} else {
		// One closure per stream for the whole run; the next-event time
		// lives on the engine instead of in a fresh closure per event.
		e.arrivalFn = func() {
			e.onArrival()
			e.scheduleArrivalFast(e.nextArrival)
		}
		e.scheduleArrivalFast(0)
	}
	if e.cfg.Churn != nil {
		if e.cfg.SlowPath {
			e.scheduleChurn(0)
		} else {
			e.churnFn = func() {
				e.onLeave()
				e.scheduleChurnFast(e.nextChurn)
			}
			e.scheduleChurnFast(0)
		}
	}
	if e.ad != nil {
		e.scheduleAdapt()
	}
	if e.cfg.Faults != nil {
		e.cl.Medium.SetInterceptor(e.cfg.Faults)
		e.scheduleFreezes()
	}
	if e.cfg.ReconcileEvery > 0 {
		e.scheduleReconcile()
	}
	e.cl.Eng.At(e.cfg.Warmup, e.sampleFn)
	e.cl.Run(e.cfg.Horizon)
	if e.err != nil {
		return nil, e.err
	}
	e.finalize()
	// Drain: dissolve sessions still operating so the system ends with
	// every reservation released, then let the radio deliver. Their
	// organizer counters flow into the stats through teardown; they do
	// not count as departures (the horizon cut them short). Formations
	// still in flight — arrivals just before the horizon — resolve
	// during the drain and tear down immediately via the draining guard
	// in onFormed; a formation attempt is bounded by
	// MaxRounds*(ProposalWait+AckWait), so the deadline loop below
	// always terminates well inside its iteration budget.
	e.draining = true
	for len(e.live) > 0 {
		e.depart(e.live[0]) // depart always removes the head: arrival order
	}
	deadline := e.cfg.Horizon
	for i := 0; e.forming > 0 && i < 64; i++ {
		deadline += e.cfg.DepartGrace
		e.cl.Run(deadline)
	}
	if e.forming > 0 {
		return nil, fmt.Errorf("session: %d formation(s) unresolved after drain", e.forming)
	}
	e.cl.Run(deadline + 2*e.cfg.DepartGrace)
	if e.err != nil {
		return nil, e.err
	}
	// Post-drain reconciliation: by now every session is torn down, so
	// any surviving ledger entry is an orphan a fault plan stranded —
	// a Dissolve blackholed by a freeze or partition that never thawed
	// before the horizon. One final sweep reclaims them all, making the
	// leak-guard invariant (reserved == 0 after drain) hold under every
	// fault plan, not only those whose faults healed in time.
	if e.cfg.Faults != nil || e.cfg.ReconcileEvery > 0 {
		e.reconcile()
	}
	// Snapshot the adaptation counters only after the drain: sessions
	// still live at the horizon record their distance drift during the
	// drain teardown.
	if e.ad != nil {
		e.stats.Adapt = *e.ad.Stats()
	}
	e.stats.Counters = e.cl.Obs.Snapshot()
	return &e.stats, nil
}

// fail records the first error and stops the simulation.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
		e.cl.Eng.Stop()
	}
}

// scheduleArrival chains the session arrival stream from the given
// simulated time (reference loop: a fresh closure per arrival).
func (e *Engine) scheduleArrival(from float64) {
	next := e.cfg.Arrivals.Next(from, e.arriveRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.cl.Eng.At(next, func() {
		e.onArrival()
		e.scheduleArrival(next)
	})
}

// scheduleArrivalFast chains the arrival stream through the persistent
// arrivalFn closure; draws and cutoffs are identical to scheduleArrival.
func (e *Engine) scheduleArrivalFast(from float64) {
	next := e.cfg.Arrivals.Next(from, e.arriveRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.nextArrival = next
	e.cl.Eng.At(next, e.arrivalFn)
}

// acquireSlot pops a retired session slot (or grows the table) and
// resets it for a new occupant. The generation deliberately survives
// the reset: it was bumped at retire time, which is what invalidates
// any pooled timer record still pointing at this slot.
func (e *Engine) acquireSlot() *liveSession {
	if n := len(e.freeSlots); n > 0 {
		ls := e.slots[e.freeSlots[n-1]]
		e.freeSlots = e.freeSlots[:n-1]
		ls.id, ls.org = "", nil
		ls.departed, ls.formed = false, false
		return ls
	}
	s := &liveSession{slot: len(e.slots)}
	s.onFormedFn = func(r *core.Result) {
		// The first-formation guard: reformation attempts of the same
		// occupancy re-fire the callback and must not re-admit. A retired
		// occupant's organizer is dissolved before the slot recycles, so
		// it can never fire this callback into the next occupant.
		if s.formed {
			return
		}
		s.formed = true
		e.onFormed(s, r)
	}
	e.slots = append(e.slots, s)
	return s
}

// onArrival spawns a session: instantiate the service, pick the
// round-robin organizer node, and submit the negotiation.
func (e *Engine) onArrival() {
	seq := e.seq
	e.seq++
	svc := e.cfg.NewService(seq)
	node := e.cfg.Organizers[seq%len(e.cfg.Organizers)]
	now := e.cl.Eng.Now()
	counted := now >= e.cfg.Warmup
	if counted {
		e.stats.Arrivals++
	}
	var ls *liveSession
	var cb func(*core.Result)
	if e.cfg.SlowPath {
		ls = &liveSession{id: svc.ID, node: node, counted: counted, slot: -1}
		first := true
		cb = func(r *core.Result) {
			if !first {
				return
			}
			first = false
			e.onFormed(ls, r)
		}
	} else {
		ls = e.acquireSlot()
		ls.id, ls.node, ls.counted = svc.ID, node, counted
		cb = ls.onFormedFn
	}
	e.rec.Point(now, int(node), "engine", "arrival", svc.ID)
	org, err := e.cl.Submit(now, node, svc, e.cfg.Organizer, cb)
	if err != nil {
		e.fail(fmt.Errorf("session: submit %s: %w", svc.ID, err))
		return
	}
	ls.org = org
	e.activeSvc[svc.ID] = org
	e.forming++
}

// onFormed decides admission on the first formation attempt: a session
// is admitted only when every task was assigned; anything less blocks —
// the partial coalition is dissolved immediately and its reservations
// released.
func (e *Engine) onFormed(ls *liveSession, r *core.Result) {
	e.forming--
	if e.draining {
		// The horizon cut this formation short: no admission verdict,
		// just teardown so no reservation outlives Run. Uncount the
		// arrival so the Admitted + Blocked == Arrivals invariant holds.
		if ls.counted {
			e.stats.Arrivals--
		}
		e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "censored", ls.id)
		e.teardown(ls, "horizon reached during formation")
		return
	}
	if r.Complete() {
		if ls.counted {
			e.stats.Admitted++
		}
		e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "admit", ls.id)
		e.live = append(e.live, ls)
		if e.ad != nil {
			if err := e.ad.Admit(e.cl.Eng.Now(), ls.node, ls.org, ls.counted); err != nil {
				e.fail(err)
				return
			}
		}
		// PeakLive, like every other steady-state statistic, excludes
		// the pre-warmup transient.
		if len(e.live) > e.stats.PeakLive && e.cl.Eng.Now() >= e.cfg.Warmup {
			e.stats.PeakLive = len(e.live)
		}
		hold := arrival.Exp(e.holdRng, e.cfg.HoldMean)
		if e.cfg.SlowPath {
			e.cl.Eng.After(hold, func() { e.depart(ls) })
		} else {
			ev := e.getDepartEv()
			ev.ls, ev.gen = ls, ls.gen
			e.cl.Eng.AfterArg(hold, runDepart, ev)
		}
		return
	}
	if ls.counted {
		e.stats.Blocked++
	}
	e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "block", ls.id)
	e.teardown(ls, fmt.Sprintf("admission failed: %d/%d tasks assigned", len(r.Assigned), len(r.Assigned)+len(r.Unserved)))
}

// depart ends an operating session at its holding-time expiry (or at
// the drain pass). Safe to invoke twice: the drain pass and a
// still-queued departure timer may both reach a session.
func (e *Engine) depart(ls *liveSession) {
	if ls.departed {
		return
	}
	for i, cur := range e.live {
		if cur == ls {
			e.live = append(e.live[:i], e.live[i+1:]...)
			break
		}
	}
	if ls.counted && !e.draining {
		e.stats.Departed++
	}
	e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "depart", ls.id)
	e.teardown(ls, "session departure")
}

// kill tears down a session the adaptation engine declared dead
// (churn policy, or an orphaned task no node could host). Killed
// sessions count neither as departures nor as blocks — adapt.Stats.Kills
// carries them, and SurvivalRatio reads them back out.
func (e *Engine) kill(svcID string) {
	for i, ls := range e.live {
		if ls.id != svcID {
			continue
		}
		e.live = append(e.live[:i], e.live[i+1:]...)
		e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "kill", ls.id)
		e.teardown(ls, "session killed: coalition member lost to churn")
		return
	}
}

// teardown dissolves, retires, and aggregates a session's
// operation-phase counters. The organizer's Dissolve is idempotent, so
// the double-invocation paths above stay safe.
func (e *Engine) teardown(ls *liveSession, reason string) {
	ls.departed = true
	delete(e.activeSvc, ls.id)
	if e.ad != nil {
		e.ad.Forget(e.cl.Eng.Now(), ls.id)
	}
	e.stats.Reconfigurations += ls.org.Reconfigurations
	e.stats.MemberFailures += ls.org.Failures
	ls.org.Dissolve(reason)
	if err := e.cl.RetireService(ls.node, ls.id); err != nil {
		e.fail(err)
		return
	}
	if hook := e.cfg.AfterDeparture; hook != nil {
		if e.cfg.SlowPath {
			id := ls.id
			e.cl.Eng.After(e.cfg.DepartGrace, func() { hook(e.cl.Eng.Now(), id) })
		} else {
			ev := e.getHookEv()
			ev.id = ls.id
			e.cl.Eng.AfterArg(e.cfg.DepartGrace, runHook, ev)
		}
	}
	if ls.slot >= 0 {
		e.retireSlot(ls)
	}
}

// retireSlot returns a torn-down session to the free-list. The
// generation bump is the pooled path's reuse guard: any timer record
// still queued for the old occupant compares generations when it fires
// and touches nothing.
func (e *Engine) retireSlot(ls *liveSession) {
	ls.gen++
	ls.org = nil
	ls.id = ""
	e.freeSlots = append(e.freeSlots, ls.slot)
}

// getDepartEv pops a pooled departure record, or allocates the first
// time the pool runs dry.
func (e *Engine) getDepartEv() *departEv {
	if n := len(e.departPool); n > 0 {
		ev := e.departPool[n-1]
		e.departPool = e.departPool[:n-1]
		return ev
	}
	return &departEv{e: e}
}

func (e *Engine) getHookEv() *hookEv {
	if n := len(e.hookPool); n > 0 {
		ev := e.hookPool[n-1]
		e.hookPool = e.hookPool[:n-1]
		return ev
	}
	return &hookEv{e: e}
}

func (e *Engine) getRebootEv() *rebootEv {
	if n := len(e.rebootPool); n > 0 {
		ev := e.rebootPool[n-1]
		e.rebootPool = e.rebootPool[:n-1]
		return ev
	}
	return &rebootEv{e: e}
}

// scheduleChurn chains the node-leave stream from the given time
// (reference loop: a fresh closure per leave event).
func (e *Engine) scheduleChurn(from float64) {
	next := e.cfg.Churn.Leave.Next(from, e.churnRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.cl.Eng.At(next, func() {
		e.onLeave()
		e.scheduleChurn(next)
	})
}

// scheduleChurnFast chains the leave stream through the persistent
// churnFn closure; draws and cutoffs are identical to scheduleChurn.
func (e *Engine) scheduleChurnFast(from float64) {
	next := e.cfg.Churn.Leave.Next(from, e.churnRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.nextChurn = next
	e.cl.Eng.At(next, e.churnFn)
}

// onLeave takes one alive, unprotected node off the air and schedules
// its reboot. Victims are drawn from the ascending node-ID list so the
// pick is a pure function of the churn rng.
func (e *Engine) onLeave() {
	var candidates []radio.NodeID
	if e.cfg.SlowPath {
		for _, id := range e.cl.Nodes() {
			if !e.protected[id] && !e.cl.Medium.Down(id) {
				candidates = append(candidates, id)
			}
		}
	} else {
		e.candBuf = e.candBuf[:0]
		for _, id := range e.cl.Medium.IDs() {
			if !e.protected[id] && !e.cl.Medium.Down(id) {
				e.candBuf = append(e.candBuf, id)
			}
		}
		candidates = e.candBuf
	}
	if len(candidates) == 0 {
		return
	}
	victim := candidates[e.churnRng.Intn(len(candidates))]
	e.cl.FailNode(victim)
	e.stats.NodeLeaves++
	e.rec.Point(e.cl.Eng.Now(), int(victim), "engine", "churn.leave", "")
	if e.ad != nil {
		for _, svcID := range e.ad.NodeDown(e.cl.Eng.Now()) {
			e.kill(svcID)
		}
	}
	down := arrival.Exp(e.churnRng, e.cfg.Churn.DownMean)
	if e.cfg.SlowPath {
		e.cl.Eng.After(down, func() {
			e.cl.RebootNode(victim)
		})
	} else {
		ev := e.getRebootEv()
		ev.victim = victim
		e.cl.Eng.AfterArg(down, runReboot, ev)
	}
}

// scheduleFreezes arms the fault plan's precomputed freeze/thaw
// schedule. A freeze is a gray failure: the node's radio goes dark (the
// injector drops its traffic) while its timers, provider and ledger
// live on — so unlike churn there is no FailNode and no reboot purge.
// With adaptation on, the node is marked avoided and its orphaned
// tasks re-placed immediately; without it, the organizer's own monitor
// (when enabled) notices the silence.
func (e *Engine) scheduleFreezes() {
	for _, ev := range e.cfg.Faults.FreezeEvents() {
		ev := ev
		e.cl.Eng.At(ev.T, func() { e.onFreezeEvent(ev) })
	}
}

func (e *Engine) onFreezeEvent(ev faults.FreezeEvent) {
	if !ev.Frozen {
		e.rec.Point(e.cl.Eng.Now(), int(ev.Node), "engine", "thaw", "")
		if e.ad != nil {
			e.ad.SetAvoid(ev.Node, false)
		}
		return
	}
	e.freezes.Inc()
	e.rec.Point(e.cl.Eng.Now(), int(ev.Node), "engine", "freeze", "")
	if e.ad != nil {
		e.ad.SetAvoid(ev.Node, true)
		for _, svcID := range e.ad.NodeUnreachable(e.cl.Eng.Now(), ev.Node) {
			e.kill(svcID)
		}
	}
}

// scheduleReconcile chains the periodic reservation sweep from
// ReconcileEvery to the horizon.
func (e *Engine) scheduleReconcile() {
	var tick func()
	next := e.cfg.ReconcileEvery
	tick = func() {
		e.reconcile()
		next += e.cfg.ReconcileEvery
		if next < e.cfg.Horizon {
			e.cl.Eng.At(next, tick)
		}
	}
	if next < e.cfg.Horizon {
		e.cl.Eng.At(next, tick)
	}
}

// reconcile sweeps every provider ledger against the active-session
// registry and reclaims orphans: reservations for departed or killed
// services (whose Dissolve a dark radio swallowed), and reservations
// for tasks a live session migrated away from the holding node while
// it was unreachable. It models the local lease expiry a deployed
// provider would run — the node itself notices its organizer is gone
// and frees the grant — so reclaiming via direct ledger calls is the
// node's own cleanup, not an out-of-band message. Live sessions are
// only inspected when their organizer is quiescent: mid-round, an
// award-time reservation legitimately precedes its published
// assignment. All iteration orders are sorted, so the sweep is
// deterministic.
func (e *Engine) reconcile() {
	sp := e.rec.Begin(e.cl.Eng.Now(), -1, "engine", "reconcile", "")
	var swept int
	for _, id := range e.cl.Medium.IDs() {
		n := e.cl.Node(id)
		if n == nil {
			continue
		}
		prov := n.Provider
		for _, svcID := range prov.ServiceIDs() {
			org, active := e.activeSvc[svcID]
			if !active {
				prov.ReleaseService(svcID)
				e.reclaimed.Inc()
				swept++
				continue
			}
			if !org.Quiescent() {
				continue
			}
			for _, tid := range prov.ReservedTasks(svcID) {
				if a, ok := org.Assignment(tid); !ok || a.Node != id {
					prov.DropTask(svcID, tid)
					e.reclaimed.Inc()
					swept++
				}
			}
		}
	}
	if e.rec.Enabled() {
		sp.End(e.cl.Eng.Now(), fmt.Sprintf("%d reclaimed", swept))
	}
}

// scheduleAdapt chains the adaptation engine's clock-driven triggers:
// the utilisation-pressure check every PressureEvery seconds and the
// upgrade-reclamation scan every Epoch seconds, both from time 0 to the
// horizon. Churn repair is event-driven from onLeave instead.
func (e *Engine) scheduleAdapt() {
	cfg := e.ad.Config()
	if cfg.DegradeOnPressure && cfg.PressureEvery < e.cfg.Horizon {
		var tick func()
		next := cfg.PressureEvery
		tick = func() {
			sp := e.rec.Begin(e.cl.Eng.Now(), -1, "engine", "adapt.pressure", "")
			e.ad.Tick(e.cl.Eng.Now())
			sp.End(e.cl.Eng.Now(), "")
			next += cfg.PressureEvery
			if next < e.cfg.Horizon {
				e.cl.Eng.At(next, tick)
			}
		}
		e.cl.Eng.At(next, tick)
	}
	if cfg.UpgradeOnSlack && cfg.Epoch < e.cfg.Horizon {
		var scan func()
		next := cfg.Epoch
		scan = func() {
			sp := e.rec.Begin(e.cl.Eng.Now(), -1, "engine", "adapt.epoch", "")
			e.ad.EpochScan(e.cl.Eng.Now())
			sp.End(e.cl.Eng.Now(), "")
			next += cfg.Epoch
			if next < e.cfg.Horizon {
				e.cl.Eng.At(next, scan)
			}
		}
		e.cl.Eng.At(next, scan)
	}
}

// sampleTick accumulates the steady-state signals every SampleEvery
// seconds over [Warmup, Horizon].
func (e *Engine) sampleTick() {
	now := e.cl.Eng.Now()
	if len(e.live) > e.stats.PeakLive {
		e.stats.PeakLive = len(e.live)
	}
	e.liveAvg.Observe(now, float64(len(e.live)))

	// Mean QoS distance over live sessions (those with at least one
	// assigned task). Both loops run in fixed orders — live in arrival
	// order, tasks in declaration order — so the float summation is
	// deterministic despite the assignment state being a map. The fast
	// path reads the same per-task sum through the allocation-free
	// accessor; the reference loop keeps the original snapshot copy.
	var total float64
	var n int
	if e.cfg.SlowPath {
		for _, ls := range e.live {
			snap := ls.org.Snapshot()
			if len(snap) == 0 {
				continue
			}
			var d float64
			for _, tk := range ls.org.Service().Tasks {
				if a, ok := snap[tk.ID]; ok {
					d += a.Distance
				}
			}
			total += d / float64(len(snap))
			n++
		}
	} else {
		for _, ls := range e.live {
			cnt, sum := ls.org.AssignedDistanceSum()
			if cnt == 0 {
				continue
			}
			total += sum / float64(cnt)
			n++
		}
	}
	if n > 0 {
		e.dist.Add(total / float64(n))
	}

	// Per-resource utilization averaged over nodes.
	var nodes []radio.NodeID
	if e.cfg.SlowPath {
		nodes = e.cl.Nodes()
	} else {
		nodes = e.cl.Medium.IDs()
	}
	var util resource.Vector
	for _, id := range nodes {
		res := e.cl.Node(id).Res
		cap, avail := res.Capacity(), res.Available()
		for k := range util {
			if cap[k] > 0 {
				util[k] += (cap[k] - avail[k]) / cap[k]
			}
		}
	}
	for k := range util {
		e.utilAvg[k].Observe(now, util[k]/float64(len(nodes)))
	}

	if next := now + e.cfg.SampleEvery; next <= e.cfg.Horizon {
		e.cl.Eng.At(next, e.sampleFn)
	}
}

// finalize closes the time averages at the horizon. Organizer counters
// are not touched here: teardown is their single accumulation point,
// and the drain pass tears down whatever is still live.
func (e *Engine) finalize() {
	e.stats.LiveAvg = e.liveAvg.Mean(e.cfg.Horizon)
	e.stats.DistanceAvg = e.dist.Mean()
	for k := range e.utilAvg {
		e.stats.Util[k] = e.utilAvg[k].Mean(e.cfg.Horizon)
	}
	e.stats.SimEvents = e.cl.Eng.Processed
	e.stats.Nodes = len(e.cl.Nodes())
}
