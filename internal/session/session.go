package session

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adapt"
	"repro/internal/admit"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/trace"
)

// ChurnConfig adds node join/leave churn as a second event stream: at
// each event of Leave, one unprotected, currently-alive node goes off
// the air for an exponential downtime, then reboots (provider soft
// state purged) and rejoins.
type ChurnConfig struct {
	// Leave generates node-leave event times.
	Leave arrival.Process
	// DownMean is the mean off-air time in seconds.
	DownMean float64
}

// Config parameterizes one open-system run.
type Config struct {
	// Arrivals generates session arrival times over [0, Horizon).
	Arrivals arrival.Process
	// NewService stamps out the seq-th session's service (seq is the
	// global arrival sequence number, 0-based). Services must have
	// unique IDs; workload.SessionTemplate.Instantiate is the standard
	// factory.
	NewService func(seq int) *task.Service
	// HoldMean is the mean exponential session holding time (seconds),
	// measured from admission.
	HoldMean float64
	// Horizon is the simulated span; Warmup excludes the initial
	// transient from every steady-state statistic.
	Horizon, Warmup float64
	// Organizers lists the nodes user requests originate at,
	// round-robin by arrival sequence (default: node 0). Organizer
	// nodes are protected from churn: a vanished organizer cannot
	// dissolve its sessions, which is a different failure mode than the
	// helper churn this engine models.
	Organizers []radio.NodeID
	// Organizer configures every session's negotiation organizer.
	Organizer core.OrganizerConfig
	// SampleEvery is the steady-state sampling period (default 1s).
	SampleEvery float64
	// DepartGrace is how long after a dissolve the radio is given to
	// deliver the release broadcast before departure hooks run
	// (default 1s).
	DepartGrace float64
	// Churn enables node join/leave churn.
	Churn *ChurnConfig
	// Adapt, when set, runs the mid-session QoS adaptation engine
	// (internal/adapt) over the live sessions: churn repair per its
	// ChurnPolicy, utilisation-pressure degradation and epoch-driven
	// upgrade reclamation. nil keeps the fixed-QoS lifecycle, where an
	// admitted session holds its admission-time levels until departure.
	// Run the organizer with Monitor/Reconfigure off when adaptation
	// owns churn repair: exactly one layer should renegotiate a lost
	// member (see DESIGN.md §10).
	Adapt *adapt.Config
	// Admission, when set, enables the admission-control policy layer
	// (internal/admit): an incomplete first formation is handled per the
	// configured policy — Block (the default behaviour), Queue (dissolve
	// the partial coalition and retry until MaxWait) or Yield (degrade
	// incumbents through the adaptation engine when the arriving
	// session's utility gain exceeds the drift cost, then retry once;
	// requires Adapt). A non-nil Admission also makes the engine draw
	// holding times at arrival, record the full arrival trace (see
	// ArrivalTrace) and account admission-time utility, so runs are
	// comparable against baseline.Clairvoyant's hindsight bound. nil —
	// the default everywhere — keeps the engine byte-identical to the
	// pre-admission-layer behaviour, rng draw order included.
	Admission *admit.Config
	// AfterDeparture, when set, runs DepartGrace after every session
	// teardown (departure or admission failure) with the service ID;
	// the leak-guard tests hang their reservation-ledger detector here.
	// With the Queue/Yield policies it runs only after a session's FINAL
	// teardown, not between retry attempts of the same service.
	AfterDeparture func(now float64, svcID string)
	// Faults, when set, wires a deterministic fault injector
	// (internal/faults) into the radio medium for the whole run and
	// schedules its freeze/thaw events: frozen nodes go radio-dark while
	// their timers and ledgers live on. nil leaves the medium untouched
	// — the default paths are byte-identical with no plan.
	Faults *faults.Injector
	// ReconcileEvery is the period (seconds) of the reservation
	// reconciliation sweep that reclaims orphaned reservations — ledger
	// entries on frozen-then-recovered providers whose coalition moved
	// on or dissolved while they were dark. 0 (the default) disables
	// the periodic sweep; a final sweep still runs after the drain
	// whenever Faults is set, so no shipped fault plan can leak.
	ReconcileEvery float64
	// Trace, when set, receives the engine's structured flight-recorder
	// events: arrivals, admission verdicts, departures and kills, churn
	// leaves, fault-plan freeze/thaw fates, reconciliation sweeps and
	// adaptation passes. Every emission site sits on code shared by the
	// fast and slow session loops, so a run's trace is byte-identical on
	// both paths (scripts/determinism.sh diffs them). nil (the default)
	// costs one pointer check per site — observability off is free.
	Trace *trace.Recorder
	// SlowPath selects the retained reference implementation of the
	// session loop: per-arrival session and closure allocations,
	// closure-chained arrival/churn streams — the pre-pooling engine
	// kept as the equivalence oracle for the pooled fast path (the
	// default). Both paths produce byte-identical Stats over any
	// scenario; the property tests in this package assert it.
	SlowPath bool
}

// Stats is the steady-state outcome of a run. Counters cover sessions
// arriving at or after Warmup; time averages cover [Warmup, Horizon].
type Stats struct {
	// Arrivals, Admitted, Blocked count post-warmup session arrivals
	// and their admission outcome (admitted = every task assigned on
	// the first formation attempt; anything less is blocked and torn
	// down immediately). A formation still in flight when the horizon
	// falls is censored: it resolves during the drain, tears down
	// without a verdict, and is excluded from all three counters, so
	// Admitted + Blocked == Arrivals always holds.
	Arrivals, Admitted, Blocked int
	// Departed counts post-warmup-admitted sessions that completed
	// their holding time and dissolved before the horizon.
	Departed int
	// PeakLive is the maximum number of concurrently operating
	// sessions observed over [Warmup, Horizon].
	PeakLive int
	// LiveAvg is the time-averaged number of operating sessions.
	LiveAvg float64
	// DistanceAvg is the time-averaged mean QoS distance of live
	// sessions (sampled every SampleEvery over instants with at least
	// one live session): the steady-state quality users experience.
	DistanceAvg float64
	// Util is the time-averaged per-resource utilization, averaged
	// over nodes: 1 - available/capacity per kind.
	Util [resource.NumKinds]float64
	// Reconfigurations and MemberFailures aggregate the organizers'
	// operation-phase counters across every session of the whole run.
	Reconfigurations, MemberFailures int
	// NodeLeaves counts churn events that took a node off the air.
	NodeLeaves int
	// Counters is the run's unified hardening-counter snapshot from the
	// cluster's obs.Registry: protocol retransmissions and duplicate
	// suppressions, provider stale-release refusals, fault-plan freezes
	// and reconciliation reclaims (obs/names.go is the key catalog).
	// Registering a counter is sufficient for it to appear here and in
	// every fabric merge — no per-counter plumbing. The map is the one
	// reference field Stats carries; Merge never mutates it in place
	// (Snapshot.Merge returns a fresh map), so value copies of Stats
	// stay safe to share.
	Counters obs.Snapshot
	// Adapt aggregates the adaptation engine's counters and per-session
	// histories (zero when Config.Adapt is nil).
	Adapt adapt.Stats
	// Admit aggregates the admission-policy layer's counters (zero when
	// Config.Admission is nil). Arrivals/Admitted/Blocked keep their
	// invariant under every policy: a queued session that eventually
	// admits counts Admitted, one whose deadline expires counts Blocked.
	Admit admit.Stats
	// SimEvents is the number of discrete events the engine processed.
	SimEvents uint64
	// Nodes is the population size of the neighbourhood the stats were
	// collected over; Merge uses it to node-weight utilization when
	// folding heterogeneous shards.
	Nodes int
}

// Freezes reports the fault-plan freeze events applied (node went
// radio-dark with its state intact), from the counter snapshot.
func (s *Stats) Freezes() int { return int(s.Counters.Get(obs.Freezes)) }

// Reclaimed reports the orphaned reservations the reconciliation sweep
// released — ledger entries whose session departed, died, or migrated
// away while the holding node was unreachable.
func (s *Stats) Reclaimed() int { return int(s.Counters.Get(obs.Reclaimed)) }

// AdmissionRatio is Admitted/Arrivals (1 when nothing arrived).
func (s *Stats) AdmissionRatio() float64 {
	if s.Arrivals == 0 {
		return 1
	}
	return float64(s.Admitted) / float64(s.Arrivals)
}

// BlockingRatio is Blocked/Arrivals (0 when nothing arrived).
func (s *Stats) BlockingRatio() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Arrivals)
}

// SurvivalRatio is the fraction of admitted sessions the adaptation
// engine did not kill: (Admitted - Adapt.Kills)/Admitted (1 when
// nothing was admitted). Without adaptation every admitted session
// survives to its holding-time expiry and the ratio is 1.
func (s *Stats) SurvivalRatio() float64 {
	if s.Admitted == 0 {
		return 1
	}
	return float64(s.Admitted-s.Adapt.Kills) / float64(s.Admitted)
}

// Merge folds another neighbourhood's steady-state stats into s,
// producing city-wide statistics: the two runs are treated as parallel
// open systems observed over the same [warmup, horizon] window (which
// is how the fabric engine runs its shards). Counters and SimEvents
// sum; LiveAvg sums (concurrent sessions across shards add); Util is
// node-weighted via Nodes; DistanceAvg is admission-weighted (shards
// with no admitted sessions contribute nothing). PeakLive sums the
// per-shard peaks, an upper bound on the city-wide peak — the shard
// peaks need not coincide in time. A pairwise merge is commutative, and
// the fabric folds shards in ascending shard order, so merged tables
// are deterministic.
func (s *Stats) Merge(o *Stats) {
	// Weighted means first: they need the pre-merge counters as weights.
	if s.Admitted+o.Admitted > 0 {
		s.DistanceAvg = (s.DistanceAvg*float64(s.Admitted) + o.DistanceAvg*float64(o.Admitted)) /
			float64(s.Admitted+o.Admitted)
	}
	if s.Nodes+o.Nodes > 0 {
		for k := range s.Util {
			s.Util[k] = (s.Util[k]*float64(s.Nodes) + o.Util[k]*float64(o.Nodes)) /
				float64(s.Nodes+o.Nodes)
		}
	}
	s.Arrivals += o.Arrivals
	s.Admitted += o.Admitted
	s.Blocked += o.Blocked
	s.Departed += o.Departed
	s.PeakLive += o.PeakLive
	s.LiveAvg += o.LiveAvg
	s.Reconfigurations += o.Reconfigurations
	s.MemberFailures += o.MemberFailures
	s.NodeLeaves += o.NodeLeaves
	s.Counters = s.Counters.Merge(o.Counters)
	s.SimEvents += o.SimEvents
	s.Nodes += o.Nodes
	s.Adapt.Merge(&o.Adapt)
	s.Admit.Merge(&o.Admit)
}

// ReconfigPerHour normalizes the reconfiguration count to simulated
// hours of horizon.
func (s *Stats) ReconfigPerHour(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.Reconfigurations) * 3600 / horizon
}

// liveSession is one operating coalition. On the fast path the record
// doubles as a slot in the engine's pooled session table: acquired from
// the free-list at arrival, retired (generation bumped) at teardown and
// reused by a later arrival. The persistent onFormedFn replaces the
// per-arrival callback closure the reference loop allocates.
type liveSession struct {
	id       string
	node     radio.NodeID
	org      *core.Organizer
	counted  bool // arrived at or after Warmup
	departed bool

	slot       int    // index in Engine.slots; -1 on the slow path
	gen        uint64 // bumped at retire; invalidates pooled timer records
	formed     bool   // first-formation guard (slow path uses a closure var)
	onFormedFn func(*core.Result)

	// Admission-layer state, meaningful only when Config.Admission is
	// set. svc keeps the instantiated service across retry attempts (the
	// same service is re-submitted); arrive/hold are the arrival instant
	// and the arrival-time holding-time draw; attempts counts
	// re-submissions so far; ySteps/yieldCost journal a pending Yield's
	// purchased steps until the retried formation settles them.
	seq       int
	svc       *task.Service
	arrive    float64
	hold      float64
	attempts  int
	ySteps    int
	yieldCost float64
}

// departEv is one scheduled holding-time expiry, pooled on the engine.
// It records the slot's generation at schedule time: a timer that
// outlives its session (the adapt engine killed it, or the drain beat
// the timer) fires into a recycled slot and must not touch it.
type departEv struct {
	e   *Engine
	ls  *liveSession
	gen uint64
}

// runDepart is the shared event handler for every departEv record.
func runDepart(x any) {
	ev := x.(*departEv)
	e, ls, gen := ev.e, ev.ls, ev.gen
	ev.ls = nil
	e.departPool = append(e.departPool, ev)
	if ls.gen != gen {
		return // slot recycled since scheduling: the session already ended
	}
	e.depart(ls)
}

// hookEv is one pending AfterDeparture callback, pooled on the engine.
type hookEv struct {
	e  *Engine
	id string
}

func runHook(x any) {
	ev := x.(*hookEv)
	e, id := ev.e, ev.id
	ev.id = ""
	e.hookPool = append(e.hookPool, ev)
	e.cfg.AfterDeparture(e.cl.Eng.Now(), id)
}

// retryEv is one scheduled admission re-submission (queue retry or
// yield re-attempt), pooled on the engine. Like departEv it records the
// slot generation at schedule time; a retry that outlives its session
// (the drain censored it) fires into a recycled or departed slot and
// must not touch it.
type retryEv struct {
	e   *Engine
	ls  *liveSession
	gen uint64
}

func runRetry(x any) {
	ev := x.(*retryEv)
	e, ls, gen := ev.e, ev.ls, ev.gen
	ev.ls = nil
	e.retryPool = append(e.retryPool, ev)
	if ls.gen != gen || ls.departed {
		return
	}
	e.retryFire(ls)
}

// rebootEv is one pending churn-victim reboot, pooled on the engine.
type rebootEv struct {
	e      *Engine
	victim radio.NodeID
}

func runReboot(x any) {
	ev := x.(*rebootEv)
	e, victim := ev.e, ev.victim
	e.rebootPool = append(e.rebootPool, ev)
	e.cl.RebootNode(victim)
}

// Engine drives the session lifecycle and churn streams over a built
// cluster. It is single-use: New, then Run once.
type Engine struct {
	cfg Config
	cl  *core.Cluster

	arriveRng, holdRng, churnRng *rand.Rand

	ad *adapt.Engine

	// Admission-policy layer (Config.Admission). adm is the normalized
	// config, admOn its presence; waiting holds sessions between retry
	// attempts in enqueue order; arrivals is the recorded trace the
	// clairvoyant oracle replays; evals caches per-(spec, demand ref)
	// utility evaluators for admission-time accounting.
	adm      admit.Config
	admOn    bool
	waiting  []*liveSession
	arrivals []admit.ArrivalRecord
	evals    map[evalKey]*sessEval

	seq       int
	live      []*liveSession
	protected map[radio.NodeID]bool
	forming   int // submitted sessions whose first formation attempt is still running
	draining  bool
	err       error

	// activeSvc registers every submitted-and-not-yet-torn-down session
	// by service ID (forming or live); the reconciliation sweep treats
	// any reservation outside this set as an orphan.
	activeSvc map[string]*core.Organizer

	stats   Stats
	liveAvg metrics.TimeAvg
	utilAvg [resource.NumKinds]metrics.TimeAvg
	dist    metrics.Sample

	// rec is the flight recorder (nil = tracing off).
	rec *trace.Recorder

	// freezes/reclaimed are the engine's registered hardening counters;
	// Run snapshots the whole cluster registry into stats.Counters at
	// the very end, after the drain and the final reconcile sweep.
	freezes   *obs.Counter
	reclaimed *obs.Counter

	// Pooled fast path (cfg.SlowPath false): the slot-indexed session
	// table with its free-list, the pooled timer records, the persistent
	// stream closures, and the churn-candidate scratch.
	slots       []*liveSession
	freeSlots   []int
	departPool  []*departEv
	hookPool    []*hookEv
	rebootPool  []*rebootEv
	retryPool   []*retryEv
	arrivalFn   func()
	churnFn     func()
	sampleFn    func()
	nextArrival float64
	nextChurn   float64
	candBuf     []radio.NodeID
}

// New builds an engine over the cluster. The seed derives the engine's
// private arrival / holding-time / churn rngs, one per stream, so the
// draw sequence of each stream is independent of how session outcomes
// interleave with arrivals.
func New(cl *core.Cluster, cfg Config, seed int64) (*Engine, error) {
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("session: config needs an arrival process")
	}
	if cfg.NewService == nil {
		return nil, fmt.Errorf("session: config needs a service factory")
	}
	if cfg.HoldMean <= 0 {
		return nil, fmt.Errorf("session: holding-time mean must be positive, got %g", cfg.HoldMean)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("session: horizon must be positive, got %g", cfg.Horizon)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("session: warmup %g outside [0, horizon %g)", cfg.Warmup, cfg.Horizon)
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.DepartGrace <= 0 {
		cfg.DepartGrace = 1
	}
	if len(cfg.Organizers) == 0 {
		cfg.Organizers = []radio.NodeID{0}
	}
	if cfg.Churn != nil && (cfg.Churn.Leave == nil || cfg.Churn.DownMean <= 0) {
		return nil, fmt.Errorf("session: churn config needs a leave process and a positive downtime mean")
	}
	if cfg.ReconcileEvery < 0 {
		return nil, fmt.Errorf("session: ReconcileEvery must be >= 0, got %g", cfg.ReconcileEvery)
	}
	var adm admit.Config
	admOn := false
	if cfg.Admission != nil {
		adm = cfg.Admission.WithDefaults()
		if err := adm.Validate(); err != nil {
			return nil, err
		}
		if adm.Policy == admit.Yield && cfg.Adapt == nil {
			return nil, fmt.Errorf("session: admission policy yield degrades incumbents through the adaptation engine; set Config.Adapt")
		}
		if adm.Policy == admit.Queue && adm.RetryEvery < 2*cfg.DepartGrace {
			return nil, fmt.Errorf("session: queue RetryEvery %g must be at least twice DepartGrace %g, so a failed attempt's releases land before the retry reserves again", adm.RetryEvery, cfg.DepartGrace)
		}
		admOn = true
	}
	e := &Engine{
		cfg:       cfg,
		cl:        cl,
		arriveRng: rand.New(rand.NewSource(seed ^ 0x243f6a8885a308d3)),
		holdRng:   rand.New(rand.NewSource(seed ^ 0x13198a2e03707344)),
		churnRng:  rand.New(rand.NewSource(seed ^ 0x0a4093822299f31d)),
		protected: make(map[radio.NodeID]bool, len(cfg.Organizers)),
		activeSvc: make(map[string]*core.Organizer),
		freezes:   cl.Obs.Counter(obs.Freezes),
		reclaimed: cl.Obs.Counter(obs.Reclaimed),
		rec:       cfg.Trace,
		adm:       adm,
		admOn:     admOn,
	}
	if admOn {
		e.evals = make(map[evalKey]*sessEval)
	}
	for _, id := range cfg.Organizers {
		if cl.Node(id) == nil {
			return nil, fmt.Errorf("session: organizer node %d not in cluster", id)
		}
		e.protected[id] = true
	}
	if cfg.Adapt != nil {
		// Exactly one layer renegotiates a lost member (DESIGN.md §10):
		// the protocol monitor and the adaptation engine repairing the
		// same session would desynchronize silently, so mixing them is
		// a configuration error, not a preference.
		if cfg.Organizer.Monitor || cfg.Organizer.Reconfigure {
			return nil, fmt.Errorf("session: adaptation owns churn repair; disable Organizer.Monitor and Organizer.Reconfigure when Config.Adapt is set")
		}
		ad, err := adapt.New(cl, *cfg.Adapt, cfg.Warmup)
		if err != nil {
			return nil, err
		}
		e.ad = ad
	}
	return e, nil
}

// Adapter returns the run's adaptation engine (nil without Config.Adapt),
// for test assertions and CLI reporting.
func (e *Engine) Adapter() *adapt.Engine { return e.ad }

// ArrivalTrace returns the run's recorded arrival trace — every arrival
// with its arrival-time holding draw — in arrival order, or nil when
// Config.Admission is unset. Callers feed it to baseline.Clairvoyant to
// bound the run's achieved utility in hindsight; the services are shared
// with the engine and must be treated as read-only.
func (e *Engine) ArrivalTrace() []admit.ArrivalRecord { return e.arrivals }

// Cluster returns the cluster the engine drives, for test assertions.
func (e *Engine) Cluster() *core.Cluster { return e.cl }

// Run schedules the arrival, churn and sampling streams, drives the
// simulation to the horizon, then dissolves any sessions still
// operating and lets their releases propagate. It returns the
// steady-state statistics over [Warmup, Horizon].
func (e *Engine) Run() (*Stats, error) {
	e.sampleFn = e.sampleTick
	if e.cfg.SlowPath {
		e.scheduleArrival(0)
	} else {
		// One closure per stream for the whole run; the next-event time
		// lives on the engine instead of in a fresh closure per event.
		e.arrivalFn = func() {
			e.onArrival()
			e.scheduleArrivalFast(e.nextArrival)
		}
		e.scheduleArrivalFast(0)
	}
	if e.cfg.Churn != nil {
		if e.cfg.SlowPath {
			e.scheduleChurn(0)
		} else {
			e.churnFn = func() {
				e.onLeave()
				e.scheduleChurnFast(e.nextChurn)
			}
			e.scheduleChurnFast(0)
		}
	}
	if e.ad != nil {
		e.scheduleAdapt()
	}
	if e.cfg.Faults != nil {
		e.cl.Medium.SetInterceptor(e.cfg.Faults)
		e.scheduleFreezes()
	}
	if e.cfg.ReconcileEvery > 0 {
		e.scheduleReconcile()
	}
	e.cl.Eng.At(e.cfg.Warmup, e.sampleFn)
	e.cl.Run(e.cfg.Horizon)
	if e.err != nil {
		return nil, e.err
	}
	e.finalize()
	// Drain: dissolve sessions still operating so the system ends with
	// every reservation released, then let the radio deliver. Their
	// organizer counters flow into the stats through teardown; they do
	// not count as departures (the horizon cut them short). Formations
	// still in flight — arrivals just before the horizon — resolve
	// during the drain and tear down immediately via the draining guard
	// in onFormed; a formation attempt is bounded by
	// MaxRounds*(ProposalWait+AckWait), so the deadline loop below
	// always terminates well inside its iteration budget.
	e.draining = true
	for len(e.live) > 0 {
		e.depart(e.live[0]) // depart always removes the head: arrival order
	}
	// Sessions parked between admission retries are censored like
	// formations in flight: the horizon fell before their verdict. Their
	// pending retry timers fire into departed/recycled slots and no-op.
	for len(e.waiting) > 0 {
		ls := e.waiting[0]
		e.waiting = e.waiting[1:]
		e.censorWaiting(ls)
	}
	deadline := e.cfg.Horizon
	for i := 0; e.forming > 0 && i < 64; i++ {
		deadline += e.cfg.DepartGrace
		e.cl.Run(deadline)
	}
	if e.forming > 0 {
		return nil, fmt.Errorf("session: %d formation(s) unresolved after drain", e.forming)
	}
	e.cl.Run(deadline + 2*e.cfg.DepartGrace)
	if e.err != nil {
		return nil, e.err
	}
	// Post-drain reconciliation: by now every session is torn down, so
	// any surviving ledger entry is an orphan a fault plan stranded —
	// a Dissolve blackholed by a freeze or partition that never thawed
	// before the horizon. One final sweep reclaims them all, making the
	// leak-guard invariant (reserved == 0 after drain) hold under every
	// fault plan, not only those whose faults healed in time.
	if e.cfg.Faults != nil || e.cfg.ReconcileEvery > 0 {
		e.reconcile()
	}
	// Snapshot the adaptation counters only after the drain: sessions
	// still live at the horizon record their distance drift during the
	// drain teardown.
	if e.ad != nil {
		e.stats.Adapt = *e.ad.Stats()
	}
	e.stats.Counters = e.cl.Obs.Snapshot()
	return &e.stats, nil
}

// fail records the first error and stops the simulation.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
		e.cl.Eng.Stop()
	}
}

// scheduleArrival chains the session arrival stream from the given
// simulated time (reference loop: a fresh closure per arrival).
func (e *Engine) scheduleArrival(from float64) {
	next := e.cfg.Arrivals.Next(from, e.arriveRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.cl.Eng.At(next, func() {
		e.onArrival()
		e.scheduleArrival(next)
	})
}

// scheduleArrivalFast chains the arrival stream through the persistent
// arrivalFn closure; draws and cutoffs are identical to scheduleArrival.
func (e *Engine) scheduleArrivalFast(from float64) {
	next := e.cfg.Arrivals.Next(from, e.arriveRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.nextArrival = next
	e.cl.Eng.At(next, e.arrivalFn)
}

// acquireSlot pops a retired session slot (or grows the table) and
// resets it for a new occupant. The generation deliberately survives
// the reset: it was bumped at retire time, which is what invalidates
// any pooled timer record still pointing at this slot.
func (e *Engine) acquireSlot() *liveSession {
	if n := len(e.freeSlots); n > 0 {
		ls := e.slots[e.freeSlots[n-1]]
		e.freeSlots = e.freeSlots[:n-1]
		ls.id, ls.org = "", nil
		ls.departed, ls.formed = false, false
		return ls
	}
	s := &liveSession{slot: len(e.slots)}
	s.onFormedFn = func(r *core.Result) {
		// The first-formation guard: reformation attempts of the same
		// occupancy re-fire the callback and must not re-admit. A retired
		// occupant's organizer is dissolved before the slot recycles, so
		// it can never fire this callback into the next occupant.
		if s.formed {
			return
		}
		s.formed = true
		e.onFormed(s, r)
	}
	e.slots = append(e.slots, s)
	return s
}

// onArrival spawns a session: instantiate the service, pick the
// round-robin organizer node, and submit the negotiation.
func (e *Engine) onArrival() {
	seq := e.seq
	e.seq++
	svc := e.cfg.NewService(seq)
	node := e.cfg.Organizers[seq%len(e.cfg.Organizers)]
	now := e.cl.Eng.Now()
	counted := now >= e.cfg.Warmup
	if counted {
		e.stats.Arrivals++
	}
	var ls *liveSession
	var cb func(*core.Result)
	if e.cfg.SlowPath {
		ls = &liveSession{id: svc.ID, node: node, counted: counted, slot: -1}
		first := true
		cb = func(r *core.Result) {
			if !first {
				return
			}
			first = false
			e.onFormed(ls, r)
		}
	} else {
		ls = e.acquireSlot()
		ls.id, ls.node, ls.counted = svc.ID, node, counted
		cb = ls.onFormedFn
	}
	if e.admOn {
		// The holding time is drawn at arrival, not admission, so the
		// recorded trace carries it for every session — the clairvoyant
		// oracle may admit sessions the online policy lost. This changes
		// the holdRng draw sequence relative to Admission == nil, which
		// is why the admission layer is opt-in per run, never default.
		hold := arrival.Exp(e.holdRng, e.cfg.HoldMean)
		ls.seq, ls.svc, ls.arrive, ls.hold = seq, svc, now, hold
		ls.attempts, ls.ySteps, ls.yieldCost = 0, 0, 0
		e.arrivals = append(e.arrivals, admit.ArrivalRecord{Seq: seq, T: now, Hold: hold, Svc: svc})
	}
	e.rec.Point(now, int(node), "engine", "arrival", svc.ID)
	org, err := e.cl.Submit(now, node, svc, e.cfg.Organizer, cb)
	if err != nil {
		e.fail(fmt.Errorf("session: submit %s: %w", svc.ID, err))
		return
	}
	ls.org = org
	e.activeSvc[svc.ID] = org
	e.forming++
}

// onFormed decides admission when a formation attempt resolves. A
// complete formation admits; an incomplete one is handled per the
// admission policy — Block (the default, and the only behaviour when
// Config.Admission is nil) dissolves the partial coalition immediately,
// Queue parks the session for a retry, Yield has already been paid for
// by the time the retried formation lands here and settles its journal.
func (e *Engine) onFormed(ls *liveSession, r *core.Result) {
	e.forming--
	now := e.cl.Eng.Now()
	if e.draining {
		// The horizon cut this formation short: no admission verdict,
		// just teardown so no reservation outlives Run. Uncount the
		// arrival so the Admitted + Blocked == Arrivals invariant holds.
		if e.admOn && ls.ySteps > 0 {
			e.ad.YieldResolve(now, ls.id, false)
		}
		if ls.counted {
			e.stats.Arrivals--
		}
		e.rec.Point(now, int(ls.node), "engine", "censored", ls.id)
		e.teardown(ls, "horizon reached during formation")
		return
	}
	if r.Complete() {
		e.admitSession(ls)
		return
	}
	if e.admOn {
		switch e.adm.Policy {
		case admit.Queue:
			if e.queueFailed(ls) {
				return
			}
		case admit.Yield:
			if e.yieldFailed(ls) {
				return
			}
		}
		if ls.ySteps > 0 {
			// The post-yield retry still failed: roll the incumbents back.
			n := e.ad.YieldResolve(now, ls.id, false)
			if ls.counted {
				e.stats.Admit.YieldReverted += n
			}
			e.rec.Point(now, int(ls.node), "engine", "yield.revert", ls.id)
		}
	}
	if ls.counted {
		e.stats.Blocked++
	}
	e.rec.Point(now, int(ls.node), "engine", "block", ls.id)
	e.teardown(ls, fmt.Sprintf("admission failed: %d/%d tasks assigned", len(r.Assigned), len(r.Assigned)+len(r.Unserved)))
}

// admitSession installs a completely formed session: stats, trace,
// adaptation registration, utility accounting, departure timer.
func (e *Engine) admitSession(ls *liveSession) {
	now := e.cl.Eng.Now()
	if ls.counted {
		e.stats.Admitted++
	}
	e.rec.Point(now, int(ls.node), "engine", "admit", ls.id)
	e.live = append(e.live, ls)
	if e.ad != nil {
		if err := e.ad.Admit(now, ls.node, ls.org, ls.counted); err != nil {
			e.fail(err)
			return
		}
	}
	if e.admOn {
		e.stats.Admit.UtilitySum += e.sessionUtility(ls.org)
		if e.adm.Policy == admit.Queue && ls.attempts > 0 {
			if ls.counted {
				e.stats.Admit.QueueAdmits++
			}
			e.rec.Point(now, int(ls.node), "engine", "queue.admit", ls.id)
		}
		if ls.ySteps > 0 {
			// The yield paid off: commit the incumbents' degrades.
			e.ad.YieldResolve(now, ls.id, true)
			if ls.counted {
				e.stats.Admit.YieldAdmits++
				e.stats.Admit.YieldSteps += ls.ySteps
				e.stats.Admit.DriftCost += ls.yieldCost
			}
			e.rec.Point(now, int(ls.node), "engine", "yield.admit", ls.id)
		}
	}
	// PeakLive, like every other steady-state statistic, excludes
	// the pre-warmup transient.
	if len(e.live) > e.stats.PeakLive && now >= e.cfg.Warmup {
		e.stats.PeakLive = len(e.live)
	}
	// With the admission layer on the holding time was drawn at arrival
	// (the recorded trace needs it for every session); the default
	// engine draws it here, at admission, preserving the historical
	// holdRng sequence bit for bit.
	var hold float64
	if e.admOn {
		hold = ls.hold
	} else {
		hold = arrival.Exp(e.holdRng, e.cfg.HoldMean)
	}
	if e.cfg.SlowPath {
		e.cl.Eng.After(hold, func() { e.depart(ls) })
	} else {
		ev := e.getDepartEv()
		ev.ls, ev.gen = ls, ls.gen
		e.cl.Eng.AfterArg(hold, runDepart, ev)
	}
}

// depart ends an operating session at its holding-time expiry (or at
// the drain pass). Safe to invoke twice: the drain pass and a
// still-queued departure timer may both reach a session.
func (e *Engine) depart(ls *liveSession) {
	if ls.departed {
		return
	}
	for i, cur := range e.live {
		if cur == ls {
			e.live = append(e.live[:i], e.live[i+1:]...)
			break
		}
	}
	if ls.counted && !e.draining {
		e.stats.Departed++
	}
	e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "depart", ls.id)
	e.teardown(ls, "session departure")
}

// kill tears down a session the adaptation engine declared dead
// (churn policy, or an orphaned task no node could host). Killed
// sessions count neither as departures nor as blocks — adapt.Stats.Kills
// carries them, and SurvivalRatio reads them back out.
func (e *Engine) kill(svcID string) {
	for i, ls := range e.live {
		if ls.id != svcID {
			continue
		}
		e.live = append(e.live[:i], e.live[i+1:]...)
		e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "kill", ls.id)
		e.teardown(ls, "session killed: coalition member lost to churn")
		return
	}
}

// teardown dissolves, retires, and aggregates a session's
// operation-phase counters. The organizer's Dissolve is idempotent, so
// the double-invocation paths above stay safe. This is the FINAL
// teardown — the departure hook fires and the slot recycles; a queued
// retry between attempts goes through dissolveAttempt alone.
func (e *Engine) teardown(ls *liveSession, reason string) {
	ls.departed = true
	if !e.dissolveAttempt(ls, reason) {
		return
	}
	e.scheduleHook(ls.id)
	if ls.slot >= 0 {
		e.retireSlot(ls)
	}
}

// dissolveAttempt undoes one formation attempt: deregister, forget from
// adaptation, fold the organizer's operation counters, dissolve the
// coalition and retire its service so every reservation releases. It
// deliberately neither marks the session departed, nor schedules the
// departure hook, nor recycles the slot — the Queue policy re-submits
// the same service after a dissolveAttempt, and a hook firing between
// attempts would race the retry's fresh reservations.
func (e *Engine) dissolveAttempt(ls *liveSession, reason string) bool {
	delete(e.activeSvc, ls.id)
	if e.ad != nil {
		e.ad.Forget(e.cl.Eng.Now(), ls.id)
	}
	e.stats.Reconfigurations += ls.org.Reconfigurations
	e.stats.MemberFailures += ls.org.Failures
	ls.org.Dissolve(reason)
	if err := e.cl.RetireService(ls.node, ls.id); err != nil {
		e.fail(err)
		return false
	}
	return true
}

// scheduleHook arms the AfterDeparture callback DepartGrace out.
func (e *Engine) scheduleHook(id string) {
	hook := e.cfg.AfterDeparture
	if hook == nil {
		return
	}
	if e.cfg.SlowPath {
		e.cl.Eng.After(e.cfg.DepartGrace, func() { hook(e.cl.Eng.Now(), id) })
	} else {
		ev := e.getHookEv()
		ev.id = id
		e.cl.Eng.AfterArg(e.cfg.DepartGrace, runHook, ev)
	}
}

// queueFailed handles an incomplete formation under the Queue policy.
// It returns false to fall through to the plain block path: queue full
// on first failure, or the next retry would already overshoot MaxWait
// on first failure. Otherwise the partial coalition is dissolved and
// the session either waits for its next retry or — when its deadline
// has passed — expires as a block.
func (e *Engine) queueFailed(ls *liveSession) bool {
	now := e.cl.Eng.Now()
	retryAt := now + e.adm.RetryEvery
	expired := retryAt > ls.arrive+e.adm.MaxWait
	if ls.attempts == 0 {
		if expired || len(e.waiting) >= e.adm.MaxQueue {
			return false
		}
		if ls.counted {
			e.stats.Admit.Queued++
		}
		e.rec.Point(now, int(ls.node), "engine", "queue", ls.id)
	} else if expired {
		if ls.counted {
			e.stats.Admit.Expired++
			e.stats.Blocked++
		}
		e.rec.Point(now, int(ls.node), "engine", "queue.expire", ls.id)
		e.teardown(ls, "admission failed: queue deadline expired")
		return true
	}
	if !e.dissolveAttempt(ls, "admission retry pending") {
		return true
	}
	e.waiting = append(e.waiting, ls)
	e.scheduleRetry(ls, e.adm.RetryEvery)
	return true
}

// yieldFailed handles an incomplete formation under the Yield policy:
// price the arriving session's best attainable utility, buy incumbent
// degrade steps strictly cheaper than that gain, and retry the
// formation once after DepartGrace (so this attempt's releases land
// first). Returns false to fall through to the block path — second
// failure, nothing to gain, or no affordable step (the retry-failure
// rollback happens in onFormed, which knows ySteps).
func (e *Engine) yieldFailed(ls *liveSession) bool {
	if ls.attempts > 0 {
		return false
	}
	now := e.cl.Eng.Now()
	gain, err := e.ad.SessionBestUtility(ls.svc)
	if err != nil {
		e.fail(err)
		return false
	}
	if gain <= 0 {
		return false
	}
	steps, cost := e.ad.Yield(now, ls.id, gain, e.adm.MaxYieldSteps)
	if steps == 0 {
		return false
	}
	ls.ySteps, ls.yieldCost = steps, cost
	if ls.counted {
		e.stats.Admit.YieldAttempts++
	}
	e.rec.Point(now, int(ls.node), "engine", "yield", ls.id)
	if !e.dissolveAttempt(ls, "admission retry after yielding incumbents") {
		return true
	}
	e.waiting = append(e.waiting, ls)
	e.scheduleRetry(ls, e.cfg.DepartGrace)
	return true
}

// scheduleRetry arms the session's re-submission delay seconds out.
func (e *Engine) scheduleRetry(ls *liveSession, delay float64) {
	if e.cfg.SlowPath {
		e.cl.Eng.After(delay, func() {
			if !ls.departed {
				e.retryFire(ls)
			}
		})
	} else {
		ev := e.getRetryEv()
		ev.ls, ev.gen = ls, ls.gen
		e.cl.Eng.AfterArg(delay, runRetry, ev)
	}
}

// retryFire re-submits a waiting session's service. Sessions censored
// by the drain flush never reach here (departed guard in the event).
func (e *Engine) retryFire(ls *liveSession) {
	for i, cur := range e.waiting {
		if cur == ls {
			e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
			break
		}
	}
	ls.attempts++
	if ls.counted {
		e.stats.Admit.Retries++
	}
	now := e.cl.Eng.Now()
	var cb func(*core.Result)
	if e.cfg.SlowPath {
		first := true
		cb = func(r *core.Result) {
			if !first {
				return
			}
			first = false
			e.onFormed(ls, r)
		}
	} else {
		ls.formed = false
		cb = ls.onFormedFn
	}
	org, err := e.cl.Submit(now, ls.node, ls.svc, e.cfg.Organizer, cb)
	if err != nil {
		e.fail(fmt.Errorf("session: resubmit %s: %w", ls.id, err))
		return
	}
	ls.org = org
	e.activeSvc[ls.id] = org
	e.forming++
}

// censorWaiting ends a session the drain caught between retry attempts:
// its coalition is already dissolved, so only the bookkeeping half of a
// final teardown remains. Like a censored formation, the arrival is
// uncounted. Incumbent degrades a pending yield bought stay as ordinary
// history entries (the run is over; nothing is admitted either way).
func (e *Engine) censorWaiting(ls *liveSession) {
	if e.admOn && ls.ySteps > 0 {
		e.ad.YieldResolve(e.cl.Eng.Now(), ls.id, false)
	}
	if ls.counted {
		e.stats.Arrivals--
	}
	e.rec.Point(e.cl.Eng.Now(), int(ls.node), "engine", "censored", ls.id)
	ls.departed = true
	e.scheduleHook(ls.id)
	if ls.slot >= 0 {
		e.retireSlot(ls)
	}
}

// evalKey caches utility evaluators per (spec, demand reference),
// mirroring the adaptation engine's compiled-problem cache.
type evalKey struct {
	spec string
	ref  string
}

type sessEval struct {
	req qos.Request
	ev  *qos.Evaluator
}

// evalFor returns the cached eq. 3 evaluator for one task of svc.
func (e *Engine) evalFor(svc *task.Service, t *task.Task) (*qos.Evaluator, error) {
	key := evalKey{spec: svc.Spec.Name, ref: t.Ref(svc.ID)}
	if ent, ok := e.evals[key]; ok && ent.req.Equal(&t.Request) {
		return ent.ev, nil
	}
	ent := &sessEval{req: t.Request}
	ev, err := qos.NewEvaluator(svc.Spec, &ent.req)
	if err != nil {
		return nil, err
	}
	ent.ev = ev
	e.evals[key] = ent
	return ev, nil
}

// sessionUtility is the admitted session's admission-time utility: the
// sum over assigned tasks of Utility(distance) — the achieved side of
// the clairvoyant optimality gap. Tasks whose evaluator cannot build
// contribute 0, under-counting achieved utility, which only slackens
// the achieved <= bound comparison in the safe direction.
func (e *Engine) sessionUtility(org *core.Organizer) float64 {
	svc := org.Service()
	var u float64
	for _, t := range svc.Tasks {
		a, ok := org.Assignment(t.ID)
		if !ok {
			continue
		}
		ev, err := e.evalFor(svc, t)
		if err != nil {
			continue
		}
		u += ev.Utility(a.Distance)
	}
	return u
}

// retireSlot returns a torn-down session to the free-list. The
// generation bump is the pooled path's reuse guard: any timer record
// still queued for the old occupant compares generations when it fires
// and touches nothing.
func (e *Engine) retireSlot(ls *liveSession) {
	ls.gen++
	ls.org = nil
	ls.id = ""
	ls.svc = nil
	e.freeSlots = append(e.freeSlots, ls.slot)
}

// getDepartEv pops a pooled departure record, or allocates the first
// time the pool runs dry.
func (e *Engine) getDepartEv() *departEv {
	if n := len(e.departPool); n > 0 {
		ev := e.departPool[n-1]
		e.departPool = e.departPool[:n-1]
		return ev
	}
	return &departEv{e: e}
}

func (e *Engine) getHookEv() *hookEv {
	if n := len(e.hookPool); n > 0 {
		ev := e.hookPool[n-1]
		e.hookPool = e.hookPool[:n-1]
		return ev
	}
	return &hookEv{e: e}
}

func (e *Engine) getRetryEv() *retryEv {
	if n := len(e.retryPool); n > 0 {
		ev := e.retryPool[n-1]
		e.retryPool = e.retryPool[:n-1]
		return ev
	}
	return &retryEv{e: e}
}

func (e *Engine) getRebootEv() *rebootEv {
	if n := len(e.rebootPool); n > 0 {
		ev := e.rebootPool[n-1]
		e.rebootPool = e.rebootPool[:n-1]
		return ev
	}
	return &rebootEv{e: e}
}

// scheduleChurn chains the node-leave stream from the given time
// (reference loop: a fresh closure per leave event).
func (e *Engine) scheduleChurn(from float64) {
	next := e.cfg.Churn.Leave.Next(from, e.churnRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.cl.Eng.At(next, func() {
		e.onLeave()
		e.scheduleChurn(next)
	})
}

// scheduleChurnFast chains the leave stream through the persistent
// churnFn closure; draws and cutoffs are identical to scheduleChurn.
func (e *Engine) scheduleChurnFast(from float64) {
	next := e.cfg.Churn.Leave.Next(from, e.churnRng)
	if math.IsInf(next, 1) || next >= e.cfg.Horizon {
		return
	}
	e.nextChurn = next
	e.cl.Eng.At(next, e.churnFn)
}

// onLeave takes one alive, unprotected node off the air and schedules
// its reboot. Victims are drawn from the ascending node-ID list so the
// pick is a pure function of the churn rng.
func (e *Engine) onLeave() {
	var candidates []radio.NodeID
	if e.cfg.SlowPath {
		for _, id := range e.cl.Nodes() {
			if !e.protected[id] && !e.cl.Medium.Down(id) {
				candidates = append(candidates, id)
			}
		}
	} else {
		e.candBuf = e.candBuf[:0]
		for _, id := range e.cl.Medium.IDs() {
			if !e.protected[id] && !e.cl.Medium.Down(id) {
				e.candBuf = append(e.candBuf, id)
			}
		}
		candidates = e.candBuf
	}
	if len(candidates) == 0 {
		return
	}
	victim := candidates[e.churnRng.Intn(len(candidates))]
	e.cl.FailNode(victim)
	e.stats.NodeLeaves++
	e.rec.Point(e.cl.Eng.Now(), int(victim), "engine", "churn.leave", "")
	if e.ad != nil {
		for _, svcID := range e.ad.NodeDown(e.cl.Eng.Now()) {
			e.kill(svcID)
		}
	}
	down := arrival.Exp(e.churnRng, e.cfg.Churn.DownMean)
	if e.cfg.SlowPath {
		e.cl.Eng.After(down, func() {
			e.cl.RebootNode(victim)
		})
	} else {
		ev := e.getRebootEv()
		ev.victim = victim
		e.cl.Eng.AfterArg(down, runReboot, ev)
	}
}

// scheduleFreezes arms the fault plan's precomputed freeze/thaw
// schedule. A freeze is a gray failure: the node's radio goes dark (the
// injector drops its traffic) while its timers, provider and ledger
// live on — so unlike churn there is no FailNode and no reboot purge.
// With adaptation on, the node is marked avoided and its orphaned
// tasks re-placed immediately; without it, the organizer's own monitor
// (when enabled) notices the silence.
func (e *Engine) scheduleFreezes() {
	for _, ev := range e.cfg.Faults.FreezeEvents() {
		ev := ev
		e.cl.Eng.At(ev.T, func() { e.onFreezeEvent(ev) })
	}
}

func (e *Engine) onFreezeEvent(ev faults.FreezeEvent) {
	if !ev.Frozen {
		e.rec.Point(e.cl.Eng.Now(), int(ev.Node), "engine", "thaw", "")
		if e.ad != nil {
			e.ad.SetAvoid(ev.Node, false)
		}
		return
	}
	e.freezes.Inc()
	e.rec.Point(e.cl.Eng.Now(), int(ev.Node), "engine", "freeze", "")
	if e.ad != nil {
		e.ad.SetAvoid(ev.Node, true)
		for _, svcID := range e.ad.NodeUnreachable(e.cl.Eng.Now(), ev.Node) {
			e.kill(svcID)
		}
	}
}

// scheduleReconcile chains the periodic reservation sweep from
// ReconcileEvery to the horizon.
func (e *Engine) scheduleReconcile() {
	var tick func()
	next := e.cfg.ReconcileEvery
	tick = func() {
		e.reconcile()
		next += e.cfg.ReconcileEvery
		if next < e.cfg.Horizon {
			e.cl.Eng.At(next, tick)
		}
	}
	if next < e.cfg.Horizon {
		e.cl.Eng.At(next, tick)
	}
}

// reconcile sweeps every provider ledger against the active-session
// registry and reclaims orphans: reservations for departed or killed
// services (whose Dissolve a dark radio swallowed), and reservations
// for tasks a live session migrated away from the holding node while
// it was unreachable. It models the local lease expiry a deployed
// provider would run — the node itself notices its organizer is gone
// and frees the grant — so reclaiming via direct ledger calls is the
// node's own cleanup, not an out-of-band message. Live sessions are
// only inspected when their organizer is quiescent: mid-round, an
// award-time reservation legitimately precedes its published
// assignment. All iteration orders are sorted, so the sweep is
// deterministic.
func (e *Engine) reconcile() {
	sp := e.rec.Begin(e.cl.Eng.Now(), -1, "engine", "reconcile", "")
	var swept int
	for _, id := range e.cl.Medium.IDs() {
		n := e.cl.Node(id)
		if n == nil {
			continue
		}
		prov := n.Provider
		for _, svcID := range prov.ServiceIDs() {
			org, active := e.activeSvc[svcID]
			if !active {
				prov.ReleaseService(svcID)
				e.reclaimed.Inc()
				swept++
				continue
			}
			if !org.Quiescent() {
				continue
			}
			for _, tid := range prov.ReservedTasks(svcID) {
				if a, ok := org.Assignment(tid); !ok || a.Node != id {
					prov.DropTask(svcID, tid)
					e.reclaimed.Inc()
					swept++
				}
			}
		}
	}
	if e.rec.Enabled() {
		sp.End(e.cl.Eng.Now(), fmt.Sprintf("%d reclaimed", swept))
	}
}

// scheduleAdapt chains the adaptation engine's clock-driven triggers:
// the utilisation-pressure check every PressureEvery seconds and the
// upgrade-reclamation scan every Epoch seconds, both from time 0 to the
// horizon. Churn repair is event-driven from onLeave instead.
func (e *Engine) scheduleAdapt() {
	cfg := e.ad.Config()
	if cfg.DegradeOnPressure && cfg.PressureEvery < e.cfg.Horizon {
		var tick func()
		next := cfg.PressureEvery
		tick = func() {
			sp := e.rec.Begin(e.cl.Eng.Now(), -1, "engine", "adapt.pressure", "")
			e.ad.Tick(e.cl.Eng.Now())
			sp.End(e.cl.Eng.Now(), "")
			next += cfg.PressureEvery
			if next < e.cfg.Horizon {
				e.cl.Eng.At(next, tick)
			}
		}
		e.cl.Eng.At(next, tick)
	}
	if cfg.UpgradeOnSlack && cfg.Epoch < e.cfg.Horizon {
		var scan func()
		next := cfg.Epoch
		scan = func() {
			sp := e.rec.Begin(e.cl.Eng.Now(), -1, "engine", "adapt.epoch", "")
			e.ad.EpochScan(e.cl.Eng.Now())
			sp.End(e.cl.Eng.Now(), "")
			next += cfg.Epoch
			if next < e.cfg.Horizon {
				e.cl.Eng.At(next, scan)
			}
		}
		e.cl.Eng.At(next, scan)
	}
}

// sampleTick accumulates the steady-state signals every SampleEvery
// seconds over [Warmup, Horizon].
func (e *Engine) sampleTick() {
	now := e.cl.Eng.Now()
	if len(e.live) > e.stats.PeakLive {
		e.stats.PeakLive = len(e.live)
	}
	e.liveAvg.Observe(now, float64(len(e.live)))

	// Mean QoS distance over live sessions (those with at least one
	// assigned task). Both loops run in fixed orders — live in arrival
	// order, tasks in declaration order — so the float summation is
	// deterministic despite the assignment state being a map. The fast
	// path reads the same per-task sum through the allocation-free
	// accessor; the reference loop keeps the original snapshot copy.
	var total float64
	var n int
	if e.cfg.SlowPath {
		for _, ls := range e.live {
			snap := ls.org.Snapshot()
			if len(snap) == 0 {
				continue
			}
			var d float64
			for _, tk := range ls.org.Service().Tasks {
				if a, ok := snap[tk.ID]; ok {
					d += a.Distance
				}
			}
			total += d / float64(len(snap))
			n++
		}
	} else {
		for _, ls := range e.live {
			cnt, sum := ls.org.AssignedDistanceSum()
			if cnt == 0 {
				continue
			}
			total += sum / float64(cnt)
			n++
		}
	}
	if n > 0 {
		e.dist.Add(total / float64(n))
	}

	// Per-resource utilization averaged over nodes.
	var nodes []radio.NodeID
	if e.cfg.SlowPath {
		nodes = e.cl.Nodes()
	} else {
		nodes = e.cl.Medium.IDs()
	}
	var util resource.Vector
	for _, id := range nodes {
		res := e.cl.Node(id).Res
		cap, avail := res.Capacity(), res.Available()
		for k := range util {
			if cap[k] > 0 {
				util[k] += (cap[k] - avail[k]) / cap[k]
			}
		}
	}
	for k := range util {
		e.utilAvg[k].Observe(now, util[k]/float64(len(nodes)))
	}

	if next := now + e.cfg.SampleEvery; next <= e.cfg.Horizon {
		e.cl.Eng.At(next, e.sampleFn)
	}
}

// finalize closes the time averages at the horizon. Organizer counters
// are not touched here: teardown is their single accumulation point,
// and the drain pass tears down whatever is still live.
func (e *Engine) finalize() {
	e.stats.LiveAvg = e.liveAvg.Mean(e.cfg.Horizon)
	e.stats.DistanceAvg = e.dist.Mean()
	for k := range e.utilAvg {
		e.stats.Util[k] = e.utilAvg[k].Mean(e.cfg.Horizon)
	}
	e.stats.SimEvents = e.cl.Eng.Processed
	e.stats.Nodes = len(e.cl.Nodes())
}
