// Package session turns the one-shot coalition world of the early
// experiments into an open system: services arrive continuously from a
// seeded arrival process, negotiate a coalition through a fresh
// Organizer, operate for a sampled holding time, and depart by
// dissolving — releasing every reservation — while an optional second
// event stream churns helper nodes off and back onto the air. The whole
// lifecycle runs on the cluster's single-threaded virtual clock, and
// every random draw (arrival times, holding times, churn victims and
// downtimes) comes from rngs derived from one seed, so a replication
// reproduces bit-identical steady-state statistics at any parallelism
// level of the sweep engine above it. See DESIGN.md §8 for the
// lifecycle design and the admission/draining semantics.
//
// With Config.Adapt set, the engine additionally drives the mid-session
// QoS adaptation engine (internal/adapt): admitted sessions register on
// admission, churn events trigger repair per the configured policy
// (kill, migrate, or degrade-to-fit), utilisation pressure sheds QoS
// and epoch scans reclaim it, and the resulting counters land in
// Stats.Adapt (DESIGN.md §10).
package session
