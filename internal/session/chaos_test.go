package session

import (
	"reflect"
	"testing"

	"repro/internal/adapt"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/workload"
)

// chaosCluster builds a deterministic population with the reliability
// layer on — the configuration every chaos run uses.
func chaosCluster(t *testing.T, seed int64, nodes int) *core.Cluster {
	t.Helper()
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = nodes
	scfg.Retry = proto.DefaultRetryConfig
	sc, err := workload.Build(scfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Cluster
}

// fullPlan is the kitchen-sink fault plan: i.i.d. and bursty loss,
// delay spikes, duplication, node freezes and a 2-way partition, with
// the organizer node protected from freezing.
func fullPlan() faults.Plan {
	return faults.Plan{
		Loss:      0.05,
		Burst:     &faults.BurstLoss{LossOn: 0.8, MeanOn: 3, MeanOff: 30},
		DelayProb: 0.05, DelayMean: 0.1,
		DupProb: 0.05, DupLag: 0.02,
		Freeze:    &faults.FreezePlan{Rate: 0.02, MeanDur: 20, Protected: []radio.NodeID{0}},
		Partition: &faults.PartitionPlan{K: 2, Every: 120, Len: 15},
	}
}

// chaosConfig assembles the hardened-session configuration over a
// fresh injector for the given plan.
func chaosConfig(t *testing.T, cl *core.Cluster, seed int64, horizon float64, plan faults.Plan, slow bool) Config {
	t.Helper()
	inj, err := faults.New(seed, horizon, cl.Nodes(), plan)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := workload.SessionTemplate{Name: "chaos", Tasks: 2, Scale: 1.0}
	ocfg := core.DefaultOrganizerConfig
	ocfg.Monitor = false
	ocfg.Reconfigure = false
	return Config{
		Arrivals:       arrival.Poisson{Rate: 0.4},
		NewService:     tmpl.Instantiate,
		HoldMean:       25,
		Horizon:        horizon,
		Warmup:         50,
		Organizer:      ocfg,
		Adapt:          &adapt.Config{OnChurn: adapt.DegradeToFit},
		Faults:         inj,
		ReconcileEvery: 5,
		SlowPath:       slow,
	}
}

// TestChaosLeakGuard is the acceptance invariant of the fault fabric:
// under the full plan — bursty loss, duplicated and delayed handshakes,
// frozen-then-thawed providers, periodic partitions — the run completes
// without wedging, admission accounting stays exact, and after the
// drain every provider ledger is empty with reserved == 0 exactly.
func TestChaosLeakGuard(t *testing.T) {
	cl := chaosCluster(t, 7, 12)
	eng, err := New(cl, chaosConfig(t, cl, 7, 900, fullPlan(), false), 7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals == 0 || st.Admitted == 0 {
		t.Fatalf("degenerate chaos run: %+v", st)
	}
	if st.Admitted+st.Blocked != st.Arrivals {
		t.Errorf("admission accounting broken: %d + %d != %d", st.Admitted, st.Blocked, st.Arrivals)
	}
	if st.Freezes() == 0 {
		t.Error("freeze plan never fired; plan not exercised")
	}
	assertAllReleased(t, cl)
}

// TestChaosFreezeStrandsThenReclaims pins the orphan path end to end:
// with freezes long against the holding time, sessions depart while a
// member is dark, the Dissolve is blackholed, and only the
// reconciliation sweep can reclaim the stranded reservation — so
// Reclaimed must move, and the ledgers must still end exactly empty.
func TestChaosFreezeStrandsThenReclaims(t *testing.T) {
	plan := faults.Plan{
		Freeze: &faults.FreezePlan{Rate: 0.05, MeanDur: 60, Protected: []radio.NodeID{0}},
	}
	cl := chaosCluster(t, 3, 10)
	cfg := chaosConfig(t, cl, 3, 600, plan, false)
	cfg.HoldMean = 15
	eng, err := New(cl, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Freezes() == 0 {
		t.Fatal("no freezes at rate 0.05 over 600s")
	}
	if st.Reclaimed() == 0 {
		t.Fatal("no reservation was ever stranded and reclaimed; the sweep was not exercised")
	}
	assertAllReleased(t, cl)
}

// TestChaosMonitorPath runs the organizer's own Monitor/Reconfigure
// repair (no adaptation engine) under freezes and partitions: the
// protocol path must also end pristine, with the sweep reclaiming
// whatever reconfiguration migrated off dark nodes.
func TestChaosMonitorPath(t *testing.T) {
	plan := faults.Plan{
		Loss:      0.05,
		Freeze:    &faults.FreezePlan{Rate: 0.03, MeanDur: 30, Protected: []radio.NodeID{0}},
		Partition: &faults.PartitionPlan{K: 2, Every: 100, Len: 12},
	}
	cl := chaosCluster(t, 11, 12)
	inj, err := faults.New(11, 600, cl.Nodes(), plan)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := workload.SessionTemplate{Name: "chaos-mon", Tasks: 2, Scale: 1.0}
	cfg := Config{
		Arrivals:       arrival.Poisson{Rate: 0.4},
		NewService:     tmpl.Instantiate,
		HoldMean:       25,
		Horizon:        600,
		Warmup:         50,
		Organizer:      core.DefaultOrganizerConfig, // Monitor + Reconfigure on
		Faults:         inj,
		ReconcileEvery: 5,
	}
	eng, err := New(cl, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted == 0 || st.Freezes() == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	assertAllReleased(t, cl)
}

// TestChaosDeterminism: the whole faulted run is a pure function of its
// seeds — two identical constructions produce identical Stats.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Stats {
		cl := chaosCluster(t, 7, 12)
		eng, err := New(cl, chaosConfig(t, cl, 7, 600, fullPlan(), false), 7)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestChaosFastSlowEquivalence: the pooled fast path and the reference
// slow path must stay byte-identical under a fault plan, exactly as
// they are without one.
func TestChaosFastSlowEquivalence(t *testing.T) {
	run := func(slow bool) *Stats {
		cl := chaosCluster(t, 7, 12)
		eng, err := New(cl, chaosConfig(t, cl, 7, 600, fullPlan(), slow), 7)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	fast, slowSt := run(false), run(true)
	if !reflect.DeepEqual(fast, slowSt) {
		t.Fatalf("fast and slow paths diverged under faults:\nfast %+v\nslow %+v", fast, slowSt)
	}
}

// TestChaosQuorumLossAborts: a brutal plan (heavy bursts, frequent
// partitions) must degrade formations into clean blocks, never a
// wedged drain — Run returns, and Admitted + Blocked == Arrivals.
func TestChaosQuorumLossAborts(t *testing.T) {
	plan := faults.Plan{
		Loss:      0.3,
		Burst:     &faults.BurstLoss{LossOn: 0.95, MeanOn: 10, MeanOff: 10},
		Partition: &faults.PartitionPlan{K: 3, Every: 30, Len: 15},
	}
	cl := chaosCluster(t, 5, 10)
	cfg := chaosConfig(t, cl, 5, 400, plan, false)
	eng, err := New(cl, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted+st.Blocked != st.Arrivals {
		t.Errorf("admission accounting broken: %d + %d != %d", st.Admitted, st.Blocked, st.Arrivals)
	}
	if st.Blocked == 0 {
		t.Error("brutal plan blocked nothing; plan not exercised")
	}
	assertAllReleased(t, cl)
}
