package session

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/workload"
)

// adaptCluster builds a churn-sensitive population: no access-point
// giant, so leave events hit serving coalition members.
func adaptCluster(t *testing.T, seed int64, nodes int) *core.Cluster {
	t.Helper()
	scfg := workload.DefaultScenario(seed)
	scfg.Nodes = nodes
	scfg.Mix = workload.ChurnMix
	sc, err := workload.Build(scfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Cluster
}

// adaptChurnConfig is the shared E22-style open-system configuration;
// the organizer monitor is off so the adaptation engine is the single
// owner of churn repair.
func adaptChurnConfig(policy adapt.ChurnPolicy) Config {
	ocfg := core.DefaultOrganizerConfig
	ocfg.Monitor = false
	ocfg.Reconfigure = false
	return Config{
		Arrivals:   arrival.Poisson{Rate: 0.1},
		NewService: workload.SessionTemplate{Name: "adapt", Tasks: 3, Scale: 1.0}.Instantiate,
		HoldMean:   40,
		Horizon:    600,
		Warmup:     60,
		Organizer:  ocfg,
		Churn: &ChurnConfig{
			Leave:    arrival.Poisson{Rate: 360.0 / 3600},
			DownMean: 30,
		},
		Adapt: &adapt.Config{OnChurn: policy},
	}
}

// ledgerEntriesAlive is ledgerEntriesFor restricted to nodes currently
// on the air: a down node's ledger is only required to be exact again
// after its reboot wipe.
func ledgerEntriesAlive(cl *core.Cluster, svcID string) []string {
	var out []string
	for _, id := range cl.Nodes() {
		if cl.Medium.Down(id) {
			continue
		}
		res := cl.Node(id).Res
		for _, k := range resource.Kinds() {
			b, ok := res.Manager(k).(*resource.Bucket)
			if !ok {
				continue
			}
			for _, rid := range b.Holders() {
				s := string(rid)
				if strings.HasPrefix(s, svcID+"/") || strings.HasPrefix(s, "hold:"+svcID+"/") {
					out = append(out, fmt.Sprintf("node %d %s: %s", id, k, s))
				}
			}
		}
	}
	return out
}

// TestAdaptRejectsCompetingMonitor pins the ownership rule: adaptation
// and the organizer's heartbeat monitor must not both repair churn, so
// New rejects the combination outright.
func TestAdaptRejectsCompetingMonitor(t *testing.T) {
	cl := adaptCluster(t, 1, 8)
	cfg := adaptChurnConfig(adapt.KillAffected)
	cfg.Organizer = core.DefaultOrganizerConfig // Monitor + Reconfigure on
	if _, err := New(cl, cfg, 1); err == nil {
		t.Fatal("New accepted Adapt alongside an active organizer monitor")
	}
	cfg.Organizer.Monitor = false
	if _, err := New(cl, cfg, 1); err == nil {
		t.Fatal("New accepted Adapt alongside organizer reconfiguration")
	}
	cfg.Organizer.Reconfigure = false
	if _, err := New(cl, cfg, 1); err != nil {
		t.Fatalf("New rejected a valid adaptation config: %v", err)
	}
}

// TestAdaptSurvivalOrdering pins the E22 headline under one seed pair:
// with identical churn, degrade-mode repair keeps strictly more
// admitted sessions alive than the kill-only baseline, and the baseline
// actually kills sessions (otherwise the comparison is vacuous).
func TestAdaptSurvivalOrdering(t *testing.T) {
	run := func(policy adapt.ChurnPolicy) *Stats {
		t.Helper()
		eng, err := New(adaptCluster(t, 1, 16), adaptChurnConfig(policy), 1)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	kill := run(adapt.KillAffected)
	degrade := run(adapt.DegradeToFit)
	if kill.Adapt.Kills == 0 {
		t.Fatal("kill baseline killed nothing; churn never hit a coalition member")
	}
	if kill.NodeLeaves != degrade.NodeLeaves {
		t.Fatalf("churn streams diverged across policies: %d vs %d leaves", kill.NodeLeaves, degrade.NodeLeaves)
	}
	if degrade.SurvivalRatio() <= kill.SurvivalRatio() {
		t.Errorf("degrade survival %.3f not strictly above kill survival %.3f",
			degrade.SurvivalRatio(), kill.SurvivalRatio())
	}
	if degrade.Adapt.Repairs == 0 {
		t.Error("degrade mode repaired nothing")
	}
}

// TestAdaptLeakGuard extends the churn leak guard to the full
// adaptation surface: migrations adopt reservations on new nodes,
// pressure degrades resize them down, epoch scans resize them back up —
// and after every teardown no ledger entry referencing the session may
// survive anywhere; after the run (plus reboots) the system is
// pristine, proving degrade→upgrade round-trips and adoptions are
// ledger-exact.
func TestAdaptLeakGuard(t *testing.T) {
	cl := adaptCluster(t, 5, 16)
	cfg := adaptChurnConfig(adapt.DegradeToFit)
	cfg.Arrivals = arrival.Poisson{Rate: 0.25}
	cfg.Horizon = 1500
	cfg.Adapt.DegradeOnPressure = true
	cfg.Adapt.UtilHigh = 0.7
	cfg.Adapt.UpgradeOnSlack = true
	cfg.Adapt.UtilLow = 0.5
	cfg.Adapt.Epoch = 5
	var eng *Engine
	checked := 0
	cfg.AfterDeparture = func(now float64, svcID string) {
		checked++
		// Nodes off the air legitimately hold what they missed (a
		// dissolve in flight when the member churned is dropped by the
		// radio); their ledgers are wiped on reboot and re-checked by
		// the final pristine-state assertion. Every live node must be
		// exact immediately.
		if left := ledgerEntriesAlive(eng.Cluster(), svcID); len(left) != 0 {
			t.Fatalf("t=%.1fs: session %s left reservations on live nodes: %v", now, svcID, left)
		}
	}
	var err error
	eng, err = New(cl, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if checked < 100 {
		t.Fatalf("only %d sessions tore down; the guard needs a real population", checked)
	}
	if st.Adapt.Degrades == 0 || st.Adapt.Upgrades == 0 || st.Adapt.Repairs == 0 {
		t.Fatalf("adaptation surface not exercised: %+v", st.Adapt)
	}
	for _, id := range cl.Nodes() {
		if cl.Medium.Down(id) {
			cl.RebootNode(id)
		}
	}
	assertAllReleased(t, cl)
}

// TestAdaptRunDeterminism: two runs with identical seeds and adaptation
// enabled produce identical statistics, adaptation counters included —
// the engine draws no randomness of its own.
func TestAdaptRunDeterminism(t *testing.T) {
	run := func() *Stats {
		t.Helper()
		cfg := adaptChurnConfig(adapt.DegradeToFit)
		cfg.Adapt.DegradeOnPressure = true
		cfg.Adapt.UpgradeOnSlack = true
		eng, err := New(adaptCluster(t, 9, 16), cfg, 9)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("adaptive runs diverged:\na: %+v\nb: %+v", *a, *b)
	}
}

// TestStatsMergeFoldsAdapt extends the city-fold pin: adaptation
// counters sum through session.Stats.Merge.
func TestStatsMergeFoldsAdapt(t *testing.T) {
	a := Stats{Admitted: 4}
	a.Adapt = adapt.Stats{Kills: 1, Repairs: 2, Degrades: 3, DriftSum: 0.5, DriftN: 1}
	b := Stats{Admitted: 6}
	b.Adapt = adapt.Stats{Kills: 2, Repairs: 4, Degrades: 6, DriftSum: 1.0, DriftN: 3}
	m := a
	m.Merge(&b)
	if m.Adapt.Kills != 3 || m.Adapt.Repairs != 6 || m.Adapt.Degrades != 9 ||
		m.Adapt.DriftSum != 1.5 || m.Adapt.DriftN != 4 {
		t.Fatalf("adapt counters not folded: %+v", m.Adapt)
	}
	if got := m.SurvivalRatio(); got != float64(10-3)/10 {
		t.Fatalf("merged survival %g, want 0.7", got)
	}
}
