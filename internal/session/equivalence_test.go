package session

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/adapt"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// This file is the equivalence harness for the pooled session engine:
// the slow path (Config.SlowPath, the pre-pooling reference loop) and
// the pooled fast path must produce byte-identical Stats over any
// scenario. The property test samples the scenario space at random, the
// fuzz targets attack the slot table and the open-system lifecycle
// directly, and the mutation test pins that recycling never aliases
// into already-folded statistics.

// scenario is one random point of the equivalence property test's
// input space: arrival shape x churn x adaptation policy, plus the
// load/population knobs.
type scenario struct {
	Seed    int64
	Nodes   int
	Shape   int // 0 Poisson, 1 diurnal, 2 burst
	Rate    float64
	Hold    float64
	Horizon float64
	Churn   bool
	Adapt   int // 0 none, 1 kill, 2 migrate, 3 degrade+upgrade
}

func (s scenario) String() string {
	shapes := []string{"poisson", "diurnal", "burst"}
	policies := []string{"none", "kill", "migrate", "degrade+upgrade"}
	return fmt.Sprintf("seed=%d nodes=%d shape=%s rate=%.3f hold=%.1f horizon=%g churn=%v adapt=%s",
		s.Seed, s.Nodes, shapes[s.Shape], s.Rate, s.Hold, s.Horizon, s.Churn, policies[s.Adapt])
}

// config assembles the session Config for one path. Both paths get the
// identical configuration except the SlowPath switch itself.
func (s scenario) config(slow bool) Config {
	var proc arrival.Process
	switch s.Shape {
	case 1:
		proc = arrival.Inhomogeneous{Profile: arrival.Diurnal{Mean: s.Rate, Amplitude: 0.7, Period: s.Horizon / 2}}
	case 2:
		proc = arrival.Inhomogeneous{Profile: arrival.Burst{
			Base: s.Rate / 2, Burst: s.Rate * 4, Period: s.Horizon / 3, BurstLen: s.Horizon / 30,
		}}
	default:
		proc = arrival.Poisson{Rate: s.Rate}
	}
	cfg := Config{
		Arrivals:   proc,
		NewService: workload.SessionTemplate{Name: "eq", Tasks: 2, Scale: 1.0}.Instantiate,
		HoldMean:   s.Hold,
		Horizon:    s.Horizon,
		Warmup:     s.Horizon / 10,
		Organizer:  core.DefaultOrganizerConfig,
		SlowPath:   slow,
	}
	if s.Churn {
		cfg.Churn = &ChurnConfig{Leave: arrival.Poisson{Rate: 1.0 / 45}, DownMean: 25}
	}
	if s.Adapt > 0 {
		cfg.Organizer.Monitor = false
		cfg.Organizer.Reconfigure = false
		policy := []adapt.ChurnPolicy{adapt.KillAffected, adapt.KillAffected, adapt.MigrateExact, adapt.DegradeToFit}[s.Adapt]
		cfg.Adapt = &adapt.Config{OnChurn: policy}
		if s.Adapt == 3 {
			cfg.Adapt.DegradeOnPressure = true
			cfg.Adapt.UtilHigh = 0.85
			cfg.Adapt.UpgradeOnSlack = true
			cfg.Adapt.UtilLow = 0.6
			cfg.Adapt.Epoch = 10
		}
	}
	return cfg
}

// run drives one path of the scenario over a freshly built cluster.
func (s scenario) run(t *testing.T, slow bool) (*Stats, error) {
	t.Helper()
	cl := buildCluster(t, s.Seed, s.Nodes)
	eng, err := New(cl, s.config(slow), s.Seed)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// mismatch reports whether the two paths of the scenario disagree.
func (s scenario) mismatch(t *testing.T) (fast, slow *Stats, bad bool) {
	t.Helper()
	fast, errF := s.run(t, false)
	slow, errS := s.run(t, true)
	if (errF == nil) != (errS == nil) {
		t.Fatalf("%v: one path errored: fast=%v slow=%v", s, errF, errS)
	}
	if errF != nil {
		return nil, nil, false // both refused identically: equivalent
	}
	return fast, slow, !reflect.DeepEqual(fast, slow)
}

// shrink greedily simplifies a failing scenario one dimension at a time
// (drop adaptation, drop churn, flatten the arrival shape, halve the
// horizon) and returns the smallest variant that still fails, so the
// failure report points at the narrowest reproducer.
func (s scenario) shrink(t *testing.T) scenario {
	t.Helper()
	cur := s
	for changed := true; changed; {
		changed = false
		var cands []scenario
		if cur.Adapt != 0 {
			c := cur
			c.Adapt = 0
			cands = append(cands, c)
		}
		if cur.Churn {
			c := cur
			c.Churn = false
			cands = append(cands, c)
		}
		if cur.Shape != 0 {
			c := cur
			c.Shape = 0
			cands = append(cands, c)
		}
		if cur.Horizon > 100 {
			c := cur
			c.Horizon = cur.Horizon / 2
			cands = append(cands, c)
		}
		for _, c := range cands {
			if _, _, bad := c.mismatch(t); bad {
				cur, changed = c, true
				break
			}
		}
	}
	return cur
}

// TestFastSlowEquivalence is the property test behind the SlowPath
// contract: over randomized scenarios spanning every arrival shape,
// churn on/off and every adaptation policy, the pooled fast path and
// the reference loop produce deeply equal Stats. Failures are shrunk to
// the smallest still-failing scenario before reporting, and every
// scenario prints its parameters, so a red run is reproducible from the
// log alone.
func TestFastSlowEquivalence(t *testing.T) {
	const cases = 12
	rng := rand.New(rand.NewSource(20260807))
	for i := 0; i < cases; i++ {
		s := scenario{
			Seed:    rng.Int63n(1 << 30),
			Nodes:   8 + rng.Intn(9),
			Shape:   rng.Intn(3),
			Rate:    0.05 + 0.25*rng.Float64(),
			Hold:    15 + 35*rng.Float64(),
			Horizon: 400,
			Churn:   rng.Intn(2) == 1,
			Adapt:   rng.Intn(4),
		}
		fast, _, bad := s.mismatch(t)
		if bad {
			min := s.shrink(t)
			mf, ms, _ := min.mismatch(t)
			t.Fatalf("fast and slow paths diverge.\n original: %v\n shrunk:   %v\n fast: %+v\n slow: %+v", s, min, mf, ms)
		}
		if fast != nil && fast.Arrivals == 0 && s.Rate > 0.1 {
			t.Errorf("%v: degenerate scenario, no arrivals", s)
		}
	}
}

// FuzzSlotTable attacks the pooled session table directly with
// arbitrary acquire/retire interleavings. Invariants, checked after
// every operation:
//
//   - a slot index is never handed out while a live occupant holds it
//     (no ID reuse while live);
//   - retiring bumps the generation, so pooled timer records scheduled
//     against the old occupancy can never touch the new one;
//   - the table partitions exactly into live slots and the free-list —
//     no slot is leaked and none is double-freed.
func FuzzSlotTable(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 3, 1, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 5, 3, 1, 0, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		e := &Engine{}
		live := make(map[int]*liveSession)
		lastGen := make(map[int]uint64) // slot -> generation at last retire
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 { // admit
				ls := e.acquireSlot()
				if _, clash := live[ls.slot]; clash {
					t.Fatalf("slot %d handed out while its occupant is live", ls.slot)
				}
				if ls.id != "" || ls.org != nil || ls.departed || ls.formed {
					t.Fatalf("slot %d not reset on acquire: %+v", ls.slot, ls)
				}
				// The generation survives the reset on purpose: retire
				// bumped it, which is what invalidates stale timer records,
				// and the new occupant inherits the bumped value. Reuse at a
				// LOWER generation would re-arm those stale records.
				if g, seen := lastGen[ls.slot]; seen && ls.gen < g {
					t.Fatalf("slot %d reused at generation %d < retired generation %d", ls.slot, ls.gen, g)
				}
				ls.id = fmt.Sprintf("s%d-g%d", ls.slot, ls.gen)
				live[ls.slot] = ls
			} else { // retire the op-th live slot (deterministic pick)
				idx := int(op) % len(e.slots)
				ls, ok := live[idx]
				if !ok {
					continue
				}
				gen := ls.gen
				e.retireSlot(ls)
				if ls.gen != gen+1 {
					t.Fatalf("retire did not bump generation: %d -> %d", gen, ls.gen)
				}
				lastGen[idx] = ls.gen
				delete(live, idx)
			}
			// Partition invariant.
			if len(live)+len(e.freeSlots) != len(e.slots) {
				t.Fatalf("table does not partition: %d live + %d free != %d slots",
					len(live), len(e.freeSlots), len(e.slots))
			}
			seen := make(map[int]bool, len(e.freeSlots))
			for _, s := range e.freeSlots {
				if seen[s] {
					t.Fatalf("slot %d double-freed", s)
				}
				seen[s] = true
				if _, isLive := live[s]; isLive {
					t.Fatalf("slot %d simultaneously live and free", s)
				}
			}
		}
	})
}

// FuzzOpenSystemLifecycle drives whole randomized open-system runs on
// the pooled path and holds them to the PR-3 leak-guard bar: after
// every teardown no ledger entry may reference the departed session,
// after the drain every bucket must be back at capacity, and the Stats
// must match the reference loop bit for bit. The fuzz input picks the
// population, load, churn and adaptation policy, so admit / dissolve /
// reboot / retire interleavings the hand-written tests never reach are
// explored mechanically.
func FuzzOpenSystemLifecycle(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(128), uint8(0), uint8(0))
	f.Add(int64(7), uint8(0), uint8(255), uint8(1), uint8(1))
	f.Add(int64(42), uint8(7), uint8(64), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nodesB, rateB, churnB, adaptB uint8) {
		s := scenario{
			Seed:    seed & 0xffff,
			Nodes:   8 + int(nodesB%8),
			Shape:   0,
			Rate:    0.05 + float64(rateB)/255*0.25,
			Hold:    20,
			Horizon: 300,
			Churn:   churnB%2 == 1,
			Adapt:   int(adaptB) % 4,
		}
		cl := buildCluster(t, s.Seed, s.Nodes)
		cfg := s.config(false)
		var eng *Engine
		cfg.AfterDeparture = func(now float64, svcID string) {
			if left := ledgerEntriesFor(eng.Cluster(), svcID); len(left) != 0 {
				t.Fatalf("%v: t=%.1fs: session %s left reservations behind: %v", s, now, svcID, left)
			}
		}
		var err error
		eng, err = New(cl, cfg, s.Seed)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		fast, err := eng.Run()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// Reboot any node churn left off the air, then the system must be
		// pristine: the pooled teardown path released everything.
		for _, id := range cl.Nodes() {
			if cl.Medium.Down(id) {
				cl.RebootNode(id)
			}
		}
		assertAllReleased(t, cl)
		// The reference loop over the identical scenario must agree
		// exactly. It carries the same leak-check hook: hook firings are
		// engine events, so the two paths must schedule the same set for
		// SimEvents to match.
		clS := buildCluster(t, s.Seed, s.Nodes)
		cfgS := s.config(true)
		var engS *Engine
		cfgS.AfterDeparture = func(now float64, svcID string) {
			if left := ledgerEntriesFor(engS.Cluster(), svcID); len(left) != 0 {
				t.Fatalf("%v: t=%.1fs: slow path leaked %s: %v", s, now, svcID, left)
			}
		}
		engS, err = New(clS, cfgS, s.Seed)
		if err != nil {
			t.Fatalf("%v: slow path: %v", s, err)
		}
		slow, err := engS.Run()
		if err != nil {
			t.Fatalf("%v: slow path: %v", s, err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("%v: pooled path diverged from reference:\n fast: %+v\n slow: %+v", s, fast, slow)
		}
	})
}

// TestRecycledMutationDoesNotPerturbStats pins the anti-aliasing
// contract of the pooled engine: Stats must be a pure value — after Run
// returns, scribbling over every pooled object the engine retains
// (session slots, timer records, churn scratch) must not change the
// returned statistics. A regression here means some Stats field started
// aliasing pooled memory (a retained slice, a shared map) and recycling
// would silently corrupt already-folded results.
func TestRecycledMutationDoesNotPerturbStats(t *testing.T) {
	s := scenario{Seed: 11, Nodes: 12, Shape: 0, Rate: 0.2, Hold: 20, Horizon: 400, Churn: true, Adapt: 3}
	cl := buildCluster(t, s.Seed, s.Nodes)
	eng, err := New(cl, s.config(false), s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals == 0 || st.NodeLeaves == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	before := *st // value copy: legitimate only if Stats is reference-free

	// Scribble over everything the engine pools.
	for _, ls := range eng.slots {
		ls.id, ls.node, ls.counted, ls.departed = "garbage", 99, true, false
		ls.gen += 1000
		ls.org = nil
	}
	for _, ev := range eng.departPool {
		ev.ls, ev.gen = nil, 1<<60
	}
	for _, ev := range eng.hookPool {
		ev.id = "garbage"
	}
	for _, ev := range eng.rebootPool {
		ev.victim = 99
	}
	for i := range eng.candBuf {
		eng.candBuf[i] = 99
	}

	if !reflect.DeepEqual(*st, before) {
		t.Fatalf("mutating recycled pooled objects perturbed Stats:\n before: %+v\n after:  %+v", before, *st)
	}
}

// TestStatsIsReferenceFree guards the premise of the mutation test and
// of fabric's shard merge: session.Stats (including the embedded
// adapt.Stats) must contain no pointers, slices or maps, so a value
// copy is a deep copy and folded shard statistics can never alias a
// pooled object. Adding a reference-typed field to Stats requires
// rethinking Merge and the recycling story — this test makes that a
// conscious decision instead of an accident.
//
// One conscious exemption exists: Stats.Counters (obs.Snapshot) is a
// map. It is safe against both hazards this test exists for because
// (a) the engine writes it exactly once, at the very end of Run, from
// a fresh Registry.Snapshot() — no pooled engine memory is ever
// reachable from it — and (b) Merge never mutates it in place:
// Snapshot.Merge returns a new map (TestStatsMergeDoesNotAliasCounters
// pins that), so value copies of merged Stats cannot see later merges.
func TestStatsIsReferenceFree(t *testing.T) {
	snapshotType := reflect.TypeOf(obs.Snapshot(nil))
	var check func(path string, ty reflect.Type)
	check = func(path string, ty reflect.Type) {
		if path == "Stats.Counters" && ty == snapshotType {
			return // the documented exemption above
		}
		switch ty.Kind() {
		case reflect.Ptr, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func, reflect.Interface:
			t.Errorf("%s has reference kind %v; Stats must stay a pure value", path, ty.Kind())
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				check(path+"."+f.Name, f.Type)
			}
		case reflect.Array:
			check(path+"[]", ty.Elem())
		}
	}
	check("Stats", reflect.TypeOf(Stats{}))
}
