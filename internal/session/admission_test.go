package session

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/adapt"
	"repro/internal/admit"
	"repro/internal/baseline"
	"repro/internal/resource"
	"repro/internal/trace"
)

// This file holds the admission-policy layer to the same bars as the
// rest of the engine: fast/slow-path equivalence (queue retry timers
// are a new pooled event type), run-to-run determinism of the queue
// orderings, the PR-3 reservation-leak guard, and the differential
// bound — no policy may ever extract more utility from a trace than
// the clairvoyant oracle's relaxation allows.

// admitConfig assembles the scenario's config with an admission policy
// installed. Yield requires the adaptation engine; when the scenario
// did not pick one, the minimal config is promoted exactly like the
// qosim -admit=yield quick-start.
func admitConfig(s scenario, pol admit.Policy, slow bool) Config {
	cfg := s.config(slow)
	cfg.Admission = &admit.Config{Policy: pol}
	if pol == admit.Yield && cfg.Adapt == nil {
		cfg.Organizer.Monitor = false
		cfg.Organizer.Reconfigure = false
		cfg.Adapt = &adapt.Config{OnChurn: adapt.KillAffected}
	}
	return cfg
}

// TestPolicyFastSlowEquivalence extends the SlowPath contract to every
// admission policy: over randomized scenarios (all arrival shapes,
// churn on/off, every adaptation policy), the pooled fast path and the
// reference loop must produce deeply equal Stats with Block, Queue and
// Yield installed. The risky new machinery is the pooled retry timer —
// a generation-guarded event that must fire (or be invalidated) exactly
// like the slow path's closures.
func TestPolicyFastSlowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	policies := []admit.Policy{admit.Block, admit.Queue, admit.Yield}
	const cases = 12
	for i := 0; i < cases; i++ {
		pol := policies[i%len(policies)]
		s := scenario{
			Seed:    rng.Int63n(1 << 30),
			Nodes:   8 + rng.Intn(9),
			Shape:   rng.Intn(3),
			Rate:    0.05 + 0.25*rng.Float64(),
			Hold:    15 + 35*rng.Float64(),
			Horizon: 400,
			Churn:   rng.Intn(2) == 1,
			Adapt:   rng.Intn(4),
		}
		run := func(slow bool) (*Stats, error) {
			cl := buildCluster(t, s.Seed, s.Nodes)
			eng, err := New(cl, admitConfig(s, pol, slow), s.Seed)
			if err != nil {
				return nil, err
			}
			return eng.Run()
		}
		fast, errF := run(false)
		slow, errS := run(true)
		if (errF == nil) != (errS == nil) {
			t.Fatalf("%v policy=%s: one path errored: fast=%v slow=%v", s, pol, errF, errS)
		}
		if errF != nil {
			continue // both refused identically: equivalent
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("policy=%s: fast and slow paths diverge.\n scenario: %v\n fast: %+v\n slow: %+v",
				pol, s, fast, slow)
		}
	}
}

// admitJSONL drives one queue-heavy run with the flight recorder on and
// returns (stats, serialized trace). The scenario overloads a small
// population so queue entries, expiries and retry admissions all occur.
func admitJSONL(t *testing.T, pol admit.Policy, slow bool) (*Stats, string) {
	t.Helper()
	s := scenario{Seed: 5, Nodes: 8, Shape: 2, Rate: 0.3, Hold: 30, Horizon: 400}
	cl := buildCluster(t, s.Seed, s.Nodes)
	cfg := admitConfig(s, pol, slow)
	j := trace.NewJournal()
	cfg.Trace = trace.NewRecorder(j.Scope("admit/0000"))
	eng, err := New(cl, cfg, s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return st, buf.String()
}

// TestQueueDeterminism pins the queue orderings: same seed, same
// policy — byte-identical flight-recorder traces (the queue /
// queue.expire / queue.admit points carry the admit and expire order)
// and deeply equal Stats, on both engine paths. Together with the
// E29/E30 rows in scripts/determinism.sh this is the admission layer's
// determinism contract at every parallelism.
func TestQueueDeterminism(t *testing.T) {
	for _, pol := range []admit.Policy{admit.Queue, admit.Yield} {
		st1, tr1 := admitJSONL(t, pol, false)
		st2, tr2 := admitJSONL(t, pol, false)
		if !reflect.DeepEqual(st1, st2) {
			t.Fatalf("%s: same-seed stats diverged:\n%+v\nvs\n%+v", pol, st1, st2)
		}
		if tr1 != tr2 {
			t.Fatalf("%s: same-seed traces differ", pol)
		}
		if tr1 == "" {
			t.Fatalf("%s: traced run recorded nothing", pol)
		}
		_, trSlow := admitJSONL(t, pol, true)
		if tr1 != trSlow {
			t.Fatalf("%s: fast and slow path traces differ", pol)
		}
	}
	// The overload scenario must actually exercise the queue machinery,
	// or this test pins nothing.
	st, trc := admitJSONL(t, admit.Queue, false)
	if st.Admit.Queued == 0 || st.Admit.Retries == 0 {
		t.Fatalf("degenerate queue scenario: %+v", st.Admit)
	}
	if !bytes.Contains([]byte(trc), []byte(`"queue"`)) {
		t.Error("trace carries no queue points")
	}
}

// FuzzAdmitPolicy drives randomized open-system runs through an
// arbitrary admission policy and holds every one to two invariants:
//
//   - the PR-3 leak bar: no reservation survives a session's teardown,
//     and after the drain every bucket is back at capacity — queue
//     retries and yield rollbacks must not park or strand anything;
//   - the differential bound: the achieved admission-time utility never
//     exceeds the clairvoyant oracle's relaxation over the run's own
//     recorded arrival trace.
//
// Churn and faults stay off: the bound's accounting assumes clean,
// constant capacity (see baseline.Clairvoyant.Bound).
func FuzzAdmitPolicy(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(128), uint8(0))
	f.Add(int64(7), uint8(0), uint8(255), uint8(1))
	f.Add(int64(42), uint8(7), uint8(200), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nodesB, rateB, polB uint8) {
		pol := []admit.Policy{admit.Block, admit.Queue, admit.Yield}[int(polB)%3]
		s := scenario{
			Seed:    seed & 0xffff,
			Nodes:   8 + int(nodesB%8),
			Shape:   0,
			Rate:    0.05 + float64(rateB)/255*0.25,
			Hold:    20,
			Horizon: 300,
		}
		cl := buildCluster(t, s.Seed, s.Nodes)
		tr := baseline.Trace{Horizon: s.Horizon, Window: 60}
		for _, id := range cl.Nodes() {
			tr.Nodes = append(tr.Nodes, baseline.NodeView{
				ID: id, Res: resource.NewSet(cl.Node(id).Res.Capacity()),
			})
		}
		cfg := admitConfig(s, pol, false)
		var eng *Engine
		cfg.AfterDeparture = func(now float64, svcID string) {
			if left := ledgerEntriesFor(eng.Cluster(), svcID); len(left) != 0 {
				t.Fatalf("%v policy=%s: t=%.1fs: session %s left reservations behind: %v",
					s, pol, now, svcID, left)
			}
		}
		var err error
		eng, err = New(cl, cfg, s.Seed)
		if err != nil {
			t.Fatalf("%v policy=%s: %v", s, pol, err)
		}
		st, err := eng.Run()
		if err != nil {
			t.Fatalf("%v policy=%s: %v", s, pol, err)
		}
		assertAllReleased(t, cl)
		for _, a := range eng.ArrivalTrace() {
			tr.Sessions = append(tr.Sessions, baseline.TraceSession{
				Arrive: a.T, Hold: a.Hold, Service: a.Svc,
			})
		}
		bound, err := baseline.Clairvoyant{}.Bound(&tr)
		if err != nil {
			t.Fatalf("%v policy=%s: bound: %v", s, pol, err)
		}
		if st.Admit.UtilitySum > bound*(1+1e-9)+1e-9 {
			t.Fatalf("%v policy=%s: achieved utility %g beats the clairvoyant bound %g",
				s, pol, st.Admit.UtilitySum, bound)
		}
	})
}
