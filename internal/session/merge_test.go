package session

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/resource"
)

// TestStatsMerge pins the city-fold semantics: counters sum, the
// unified counter snapshot merges key-wise, LiveAvg sums, Util is
// node-weighted, DistanceAvg is admission-weighted, and a pairwise
// merge is commutative.
func TestStatsMerge(t *testing.T) {
	a := Stats{Arrivals: 10, Admitted: 8, Blocked: 2, Departed: 7,
		PeakLive: 3, LiveAvg: 1.5, DistanceAvg: 0.2, Nodes: 16, SimEvents: 100,
		Counters: obs.Snapshot{obs.Freezes: 2, obs.Retransmissions: 5}}
	a.Util[resource.CPU] = 0.5
	b := Stats{Arrivals: 30, Admitted: 24, Blocked: 6, Departed: 20,
		PeakLive: 5, LiveAvg: 2.5, DistanceAvg: 0.4, Nodes: 8, SimEvents: 50,
		Counters: obs.Snapshot{obs.Freezes: 1, obs.Reclaimed: 3}}
	b.Util[resource.CPU] = 0.2

	m := a
	m.Merge(&b)
	if m.Arrivals != 40 || m.Admitted != 32 || m.Blocked != 8 || m.Departed != 27 {
		t.Fatalf("counters not summed: %+v", m)
	}
	if m.PeakLive != 8 || m.LiveAvg != 4.0 || m.Nodes != 24 || m.SimEvents != 150 {
		t.Fatalf("aggregates wrong: %+v", m)
	}
	wantUtil := (0.5*16 + 0.2*8) / 24
	if math.Abs(m.Util[resource.CPU]-wantUtil) > 1e-15 {
		t.Fatalf("util not node-weighted: got %g want %g", m.Util[resource.CPU], wantUtil)
	}
	wantDist := (0.2*8 + 0.4*24) / 32
	if math.Abs(m.DistanceAvg-wantDist) > 1e-15 {
		t.Fatalf("distance not admission-weighted: got %g want %g", m.DistanceAvg, wantDist)
	}
	if m.Admitted+m.Blocked != m.Arrivals {
		t.Fatal("admission invariant broken by merge")
	}
	wantCounters := obs.Snapshot{obs.Freezes: 3, obs.Retransmissions: 5, obs.Reclaimed: 3}
	if !reflect.DeepEqual(m.Counters, wantCounters) {
		t.Fatalf("counter snapshot not merged: %v want %v", m.Counters, wantCounters)
	}
	if m.Freezes() != 3 || m.Reclaimed() != 3 {
		t.Fatalf("accessors disagree with snapshot: freezes=%d reclaimed=%d", m.Freezes(), m.Reclaimed())
	}

	n := b
	n.Merge(&a)
	if !reflect.DeepEqual(n, m) {
		t.Fatalf("pairwise merge not commutative:\nab: %+v\nba: %+v", m, n)
	}

	// Zero-admission shards contribute nothing to DistanceAvg.
	empty := Stats{Nodes: 4}
	before := m.DistanceAvg
	m.Merge(&empty)
	if m.DistanceAvg != before {
		t.Fatal("empty shard perturbed admission-weighted distance")
	}
}

// TestStatsMergeDoesNotAliasCounters pins the alias-safety contract the
// reference-free exemption in equivalence_test.go relies on: merging
// into one copy of a Stats value must not change the snapshot another
// copy shares, so folded shard statistics stay immutable once read.
func TestStatsMergeDoesNotAliasCounters(t *testing.T) {
	orig := Stats{Counters: obs.Snapshot{obs.Freezes: 1}}
	copied := orig // value copy shares the map
	more := Stats{Counters: obs.Snapshot{obs.Freezes: 10}}
	orig.Merge(&more)
	if got := copied.Counters.Get(obs.Freezes); got != 1 {
		t.Fatalf("merge mutated a shared snapshot: %d", got)
	}
	if got := orig.Counters.Get(obs.Freezes); got != 11 {
		t.Fatalf("merge lost counts: %d", got)
	}
	if got := more.Counters.Get(obs.Freezes); got != 10 {
		t.Fatalf("merge mutated its operand: %d", got)
	}
}
