package task

import (
	"strings"
	"testing"

	"repro/internal/qos"
	"repro/internal/resource"
)

func testSpec() *qos.Spec {
	return &qos.Spec{
		Name: "t",
		Dimensions: []qos.Dimension{
			{ID: "video", Attributes: []qos.Attribute{
				{ID: "fr", Domain: qos.IntRange(1, 30)},
				{ID: "codec", Domain: qos.DiscreteStrings("hq", "main", "fast")},
			}},
		},
	}
}

func testRequest() qos.Request {
	return qos.Request{
		Service: "svc",
		Dims: []qos.DimPref{{
			Dim: "video",
			Attrs: []qos.AttrPref{
				{Attr: "fr", Sets: []qos.ValueSet{qos.Span(30, 10)}},
				{Attr: "codec", Sets: []qos.ValueSet{qos.One(qos.Str("hq")), qos.One(qos.Str("fast"))}},
			},
		}},
	}
}

func testTask(id string) *Task {
	return &Task{
		ID:      id,
		Request: testRequest(),
		Demand:  ConstDemand(resource.V(resource.KV{K: resource.CPU, A: 10})),
		InBytes: 100, OutBytes: 50,
	}
}

func TestServiceValidate(t *testing.T) {
	svc := &Service{ID: "s", Spec: testSpec(), Tasks: []*Task{testTask("a"), testTask("b")}}
	if err := svc.Validate(); err != nil {
		t.Fatalf("valid service rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Service)
		want   string
	}{
		{"empty id", func(s *Service) { s.ID = "" }, "empty ID"},
		{"nil spec", func(s *Service) { s.Spec = nil }, "no spec"},
		{"no tasks", func(s *Service) { s.Tasks = nil }, "no tasks"},
		{"empty task id", func(s *Service) { s.Tasks[0].ID = "" }, "empty ID"},
		{"dup task", func(s *Service) { s.Tasks[1].ID = "a" }, "duplicates"},
		{"nil demand", func(s *Service) { s.Tasks[0].Demand = nil }, "no demand model"},
		{"bad request", func(s *Service) { s.Tasks[0].Request.Dims[0].Dim = "nope" }, "unknown dimension"},
		{"negative bytes", func(s *Service) { s.Tasks[0].InBytes = -1 }, "negative data size"},
	}
	for _, c := range cases {
		svc := &Service{ID: "s", Spec: testSpec(), Tasks: []*Task{testTask("a"), testTask("b")}}
		c.mutate(svc)
		err := svc.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: %q missing %q", c.name, err, c.want)
		}
	}
}

func TestServiceTaskLookupAndBytes(t *testing.T) {
	svc := &Service{ID: "s", Spec: testSpec(), Tasks: []*Task{testTask("a")}}
	if svc.Task("a") == nil || svc.Task("z") != nil {
		t.Error("Task lookup broken")
	}
	if svc.Tasks[0].DataBytes() != 150 {
		t.Error("DataBytes = in + out")
	}
}

func TestLinearDemand(t *testing.T) {
	spec := testSpec()
	dm := &LinearDemand{
		Base: resource.V(resource.KV{K: resource.CPU, A: 5}),
		Coef: map[qos.AttrKey]resource.Vector{
			{Dim: "video", Attr: "fr"}:    resource.V(resource.KV{K: resource.CPU, A: 2}),
			{Dim: "video", Attr: "codec"}: resource.V(resource.KV{K: resource.Memory, A: 10}),
		},
	}
	level := qos.Level{
		{Dim: "video", Attr: "fr"}:    qos.Int(10),
		{Dim: "video", Attr: "codec"}: qos.Str("main"), // quality index 1
	}
	v, err := dm.Demand(spec, level)
	if err != nil {
		t.Fatal(err)
	}
	if v[resource.CPU] != 25 { // 5 + 2*10
		t.Errorf("cpu = %v, want 25", v[resource.CPU])
	}
	if v[resource.Memory] != 10 { // 10 * index(main)=1
		t.Errorf("mem = %v, want 10", v[resource.Memory])
	}
	// Higher frame rate costs strictly more (monotone in magnitude).
	level[qos.AttrKey{Dim: "video", Attr: "fr"}] = qos.Int(20)
	v2, err := dm.Demand(spec, level)
	if err != nil {
		t.Fatal(err)
	}
	if v2[resource.CPU] <= v[resource.CPU] {
		t.Error("demand not monotone in frame rate")
	}
	// Attributes absent from the level are simply skipped.
	v3, err := dm.Demand(spec, qos.Level{})
	if err != nil {
		t.Fatal(err)
	}
	if v3[resource.CPU] != 5 {
		t.Error("missing attributes should contribute nothing beyond base")
	}
}

func TestLinearDemandErrors(t *testing.T) {
	spec := testSpec()
	dm := &LinearDemand{Coef: map[qos.AttrKey]resource.Vector{
		{Dim: "video", Attr: "nope"}: resource.V(resource.KV{K: resource.CPU, A: 1}),
	}}
	level := qos.Level{{Dim: "video", Attr: "nope"}: qos.Str("x")}
	if _, err := dm.Demand(spec, level); err == nil {
		t.Error("unknown string attribute accepted")
	}
	dm2 := &LinearDemand{Coef: map[qos.AttrKey]resource.Vector{
		{Dim: "video", Attr: "codec"}: resource.V(resource.KV{K: resource.CPU, A: 1}),
	}}
	bad := qos.Level{{Dim: "video", Attr: "codec"}: qos.Str("zzz")}
	if _, err := dm2.Demand(spec, bad); err == nil {
		t.Error("out-of-domain string value accepted")
	}
	// Negative coefficients that push the vector negative must error.
	dm3 := &LinearDemand{
		Base: resource.V(resource.KV{K: resource.CPU, A: 1}),
		Coef: map[qos.AttrKey]resource.Vector{
			{Dim: "video", Attr: "fr"}: resource.V(resource.KV{K: resource.CPU, A: -1}),
		},
	}
	neg := qos.Level{{Dim: "video", Attr: "fr"}: qos.Int(10)}
	if _, err := dm3.Demand(spec, neg); err == nil {
		t.Error("negative demand vector accepted")
	}
}

func TestConstAndFuncDemand(t *testing.T) {
	want := resource.V(resource.KV{K: resource.Memory, A: 7})
	v, err := ConstDemand(want).Demand(testSpec(), qos.Level{})
	if err != nil || v != want {
		t.Errorf("ConstDemand = %v, %v", v, err)
	}
	fd := FuncDemand(func(*qos.Spec, qos.Level) (resource.Vector, error) { return want, nil })
	v, err = fd.Demand(testSpec(), qos.Level{})
	if err != nil || v != want {
		t.Errorf("FuncDemand = %v, %v", v, err)
	}
}
