// Package task models the paper's services and tasks (Section 4.1): a
// service is a set of (for now) independent tasks, each carrying the
// user's QoS preferences and a demand model mapping concrete QoS levels to
// resource requirements. The paper assumes "applications make a reasonable
// accurate analysis of their resource requirements, made a priori through
// resource monitoring tools"; DemandModel is that a-priori analysis.
package task

import (
	"fmt"

	"repro/internal/qos"
	"repro/internal/resource"
)

// Task is one independent unit of a service, negotiated and allocated
// individually during coalition formation.
type Task struct {
	ID string
	// Request carries the user's preference-ordered QoS constraints for
	// this task.
	Request qos.Request
	// Demand maps QoS levels to resource requirements.
	Demand DemandModel
	// InBytes and OutBytes size the data that must be shipped to and
	// from the executing node; they drive the communication-cost term of
	// proposal selection.
	InBytes, OutBytes int64
}

// Service is a user-requested service: a set of independent tasks plus
// the shared QoS spec they are expressed against.
type Service struct {
	ID    string
	Spec  *qos.Spec
	Tasks []*Task
}

// Validate checks the service: a nonempty ID, a valid spec, and every
// task request valid against the spec with a demand model attached.
func (s *Service) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("task: service has empty ID")
	}
	if s.Spec == nil {
		return fmt.Errorf("task: service %q has no spec", s.ID)
	}
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	if len(s.Tasks) == 0 {
		return fmt.Errorf("task: service %q has no tasks", s.ID)
	}
	seen := make(map[string]bool, len(s.Tasks))
	for _, t := range s.Tasks {
		if t.ID == "" {
			return fmt.Errorf("task: service %q contains a task with empty ID", s.ID)
		}
		if seen[t.ID] {
			return fmt.Errorf("task: service %q duplicates task %q", s.ID, t.ID)
		}
		seen[t.ID] = true
		if t.Demand == nil {
			return fmt.Errorf("task: %s/%s has no demand model", s.ID, t.ID)
		}
		if err := t.Request.Validate(s.Spec); err != nil {
			return fmt.Errorf("task: %s/%s: %w", s.ID, t.ID, err)
		}
		if t.InBytes < 0 || t.OutBytes < 0 {
			return fmt.Errorf("task: %s/%s has negative data size", s.ID, t.ID)
		}
	}
	return nil
}

// Task returns the task with the given ID, or nil.
func (s *Service) Task(id string) *Task {
	for _, t := range s.Tasks {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// DataBytes returns the total data movement of the task (input + output).
func (t *Task) DataBytes() int64 { return t.InBytes + t.OutBytes }

// DemandModel maps a concrete QoS level to the resource vector a node
// must reserve to serve it.
type DemandModel interface {
	// Demand returns the resource requirement of serving level under the
	// given spec. Implementations must be deterministic and treat level
	// as read-only.
	Demand(spec *qos.Spec, level qos.Level) (resource.Vector, error)
}

// LinearDemand is base + sum over attributes of coefficient * magnitude,
// where magnitude is the attribute's numeric value for numeric attributes
// and the quality-index position for string attributes. It captures the
// codec-style trade-offs the paper motivates (higher frame rate / color
// depth -> proportionally more CPU and bandwidth).
type LinearDemand struct {
	Base resource.Vector
	Coef map[qos.AttrKey]resource.Vector
}

// Demand implements DemandModel.
func (d *LinearDemand) Demand(spec *qos.Spec, level qos.Level) (resource.Vector, error) {
	out := d.Base
	for key, coef := range d.Coef {
		v, ok := level[key]
		if !ok {
			continue
		}
		mag, err := magnitude(spec, key, v)
		if err != nil {
			return resource.Vector{}, err
		}
		out = out.Add(coef.Scale(mag))
	}
	if !out.Nonnegative() {
		return resource.Vector{}, fmt.Errorf("task: linear demand produced negative vector %v", out)
	}
	return out, nil
}

func magnitude(spec *qos.Spec, key qos.AttrKey, v qos.Value) (float64, error) {
	if v.IsNumeric() {
		return v.Num(), nil
	}
	attr := spec.Attr(key)
	if attr == nil {
		return 0, fmt.Errorf("task: demand refers to unknown attribute %v", key)
	}
	idx := attr.Domain.IndexOf(v)
	if idx < 0 {
		return 0, fmt.Errorf("task: value %v outside domain of %v", v, key)
	}
	return float64(idx), nil
}

// FuncDemand adapts a plain function to DemandModel, for tests and ad-hoc
// workloads.
type FuncDemand func(spec *qos.Spec, level qos.Level) (resource.Vector, error)

// Demand implements DemandModel.
func (f FuncDemand) Demand(spec *qos.Spec, level qos.Level) (resource.Vector, error) {
	return f(spec, level)
}

// ConstDemand returns the same vector for every level; useful for
// baselines and tests where quality does not change cost.
func ConstDemand(v resource.Vector) DemandModel {
	return FuncDemand(func(*qos.Spec, qos.Level) (resource.Vector, error) { return v, nil })
}
