// Package task models the paper's services and tasks (Section 4.1): a
// service is a set of (for now) independent tasks, each carrying the
// user's QoS preferences and a demand model mapping concrete QoS levels to
// resource requirements. The paper assumes "applications make a reasonable
// accurate analysis of their resource requirements, made a priori through
// resource monitoring tools"; DemandModel is that a-priori analysis.
package task

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/qos"
	"repro/internal/resource"
)

// Task is one independent unit of a service, negotiated and allocated
// individually during coalition formation.
type Task struct {
	ID string
	// Request carries the user's preference-ordered QoS constraints for
	// this task.
	Request qos.Request
	// Demand maps QoS levels to resource requirements.
	Demand DemandModel
	// InBytes and OutBytes size the data that must be shipped to and
	// from the executing node; they drive the communication-cost term of
	// proposal selection.
	InBytes, OutBytes int64
	// DemandRef, when set, names the demand model in the shared catalog
	// instead of the default per-service "service/task" reference. Open
	// system sessions instantiated from one template set a shared
	// reference so every provider compiles the (spec, demand) pair once
	// across thousands of arriving services rather than once per
	// session. Tasks sharing a reference must share an identical demand
	// model (the catalog keeps the first registration).
	DemandRef string
}

// Ref returns the catalog demand reference of the task within the given
// service: the shared DemandRef when set, the per-service "svc/task"
// name otherwise.
func (t *Task) Ref(svcID string) string {
	if t.DemandRef != "" {
		return t.DemandRef
	}
	return svcID + "/" + t.ID
}

// Service is a user-requested service: a set of independent tasks plus
// the shared QoS spec they are expressed against.
type Service struct {
	ID    string
	Spec  *qos.Spec
	Tasks []*Task
}

// Validate checks the service: a nonempty ID, a valid spec, and every
// task request valid against the spec with a demand model attached.
func (s *Service) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("task: service has empty ID")
	}
	if s.Spec == nil {
		return fmt.Errorf("task: service %q has no spec", s.ID)
	}
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	if len(s.Tasks) == 0 {
		return fmt.Errorf("task: service %q has no tasks", s.ID)
	}
	seen := make(map[string]bool, len(s.Tasks))
	for _, t := range s.Tasks {
		if t.ID == "" {
			return fmt.Errorf("task: service %q contains a task with empty ID", s.ID)
		}
		if seen[t.ID] {
			return fmt.Errorf("task: service %q duplicates task %q", s.ID, t.ID)
		}
		seen[t.ID] = true
		if t.Demand == nil {
			return fmt.Errorf("task: %s/%s has no demand model", s.ID, t.ID)
		}
		if err := t.Request.Validate(s.Spec); err != nil {
			return fmt.Errorf("task: %s/%s: %w", s.ID, t.ID, err)
		}
		if t.InBytes < 0 || t.OutBytes < 0 {
			return fmt.Errorf("task: %s/%s has negative data size", s.ID, t.ID)
		}
	}
	return nil
}

// Task returns the task with the given ID, or nil.
func (s *Service) Task(id string) *Task {
	for _, t := range s.Tasks {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// DataBytes returns the total data movement of the task (input + output).
func (t *Task) DataBytes() int64 { return t.InBytes + t.OutBytes }

// DemandModel maps a concrete QoS level to the resource vector a node
// must reserve to serve it.
type DemandModel interface {
	// Demand returns the resource requirement of serving level under the
	// given spec. Implementations must be deterministic and treat level
	// as read-only.
	Demand(spec *qos.Spec, level qos.Level) (resource.Vector, error)
}

// SlotDemandModel is the optional fast path of DemandModel: models that
// decompose over individual attributes can precompute, once per ladder,
// the demand contribution of every (slot, choice) pair. The degradation
// heuristic then re-evaluates demand per step with a handful of vector
// adds on the compiled table instead of materializing a Level map and
// walking the model on every iteration. Models that cannot decompose
// (or cannot prove the decomposition safe) return an error; callers
// fall back to Demand.
type SlotDemandModel interface {
	DemandModel
	CompileDemand(spec *qos.Spec, ld *qos.Ladder) (*DemandTable, error)
}

// DemandTable is a compiled per-slot demand decomposition:
// demand(a) = Base + sum over slots i of Contrib[i][a[i]], with the
// sum taken in canonical (dim, attr) key order via order so that the
// result is bit-identical to LinearDemand.Demand on the materialized
// level — by construction, for any coefficients, not only
// exactly-representable ones.
type DemandTable struct {
	Base    resource.Vector
	Contrib [][]resource.Vector
	// order lists slot indices sorted by attribute key: the canonical
	// summation order shared with the level-by-level path.
	order []int
}

// Demand evaluates the table on an assignment, allocation-free.
func (t *DemandTable) Demand(a qos.Assignment) resource.Vector {
	out := t.Base
	for _, i := range t.order {
		out = out.Add(t.Contrib[i][a[i]])
	}
	return out
}

// CompileDemand implements SlotDemandModel: LinearDemand decomposes
// exactly (base + per-attribute coefficient * magnitude). Compilation
// fails if any ladder choice has no magnitude, or if the base or any
// contribution has a negative component: with everything nonnegative no
// evaluated demand can ever go negative, so the table needs no
// per-level negativity check, and the (exotic) mixed-sign models keep
// the level-by-level path whose Demand rejects negative vectors
// exactly where they occur.
func (d *LinearDemand) CompileDemand(spec *qos.Spec, ld *qos.Ladder) (*DemandTable, error) {
	if !d.Base.Nonnegative() {
		return nil, fmt.Errorf("task: linear demand base %v has negative component", d.Base)
	}
	t := &DemandTable{Base: d.Base, Contrib: make([][]resource.Vector, ld.Len())}
	keys := make([]qos.AttrKey, 0, ld.Len())
	for i := range ld.Attrs {
		la := &ld.Attrs[i]
		coef, ok := d.Coef[la.Key]
		t.Contrib[i] = make([]resource.Vector, len(la.Choices))
		if !ok {
			continue // attribute costs nothing; excluded from the sum
		}
		keys = append(keys, la.Key)
		for ci, v := range la.Choices {
			mag, err := magnitude(spec, la.Key, v)
			if err != nil {
				return nil, err
			}
			c := coef.Scale(mag)
			if !c.Nonnegative() {
				return nil, fmt.Errorf("task: contribution %v of %v is negative; keeping the level-by-level path", c, la.Key)
			}
			t.Contrib[i][ci] = c
		}
	}
	// Sum contributing slots in the same canonical key order as Demand.
	sortKeys(keys)
	for _, key := range keys {
		t.order = append(t.order, ld.AttrIndex(key))
	}
	return t, nil
}

// LinearDemand is base + sum over attributes of coefficient * magnitude,
// where magnitude is the attribute's numeric value for numeric attributes
// and the quality-index position for string attributes. It captures the
// codec-style trade-offs the paper motivates (higher frame rate / color
// depth -> proportionally more CPU and bandwidth). Coef must not be
// mutated after the first Demand or CompileDemand call: the canonical
// key order is computed once and cached.
type LinearDemand struct {
	Base resource.Vector
	Coef map[qos.AttrKey]resource.Vector

	keysOnce sync.Once
	keys     []qos.AttrKey
}

// sortedKeys returns Coef's keys in canonical (dim, attr) order,
// computed once; safe for concurrent use (providers share demand
// models through the catalog).
func (d *LinearDemand) sortedKeys() []qos.AttrKey {
	d.keysOnce.Do(func() {
		d.keys = make([]qos.AttrKey, 0, len(d.Coef))
		for key := range d.Coef {
			d.keys = append(d.keys, key)
		}
		sortKeys(d.keys)
	})
	return d.keys
}

// Demand implements DemandModel. Contributions are summed in canonical
// (dim, attr) key order — not Go's randomized map order — so the result
// is bit-deterministic across runs and bit-identical to the compiled
// DemandTable, which sums in the same canonical order. Float addition
// is commutative but not associative; a fixed order is what makes the
// slot-indexed fast path equal to this one by construction instead of
// by luck with exactly-representable coefficients.
func (d *LinearDemand) Demand(spec *qos.Spec, level qos.Level) (resource.Vector, error) {
	out := d.Base
	for _, key := range d.sortedKeys() {
		v, ok := level[key]
		if !ok {
			continue
		}
		mag, err := magnitude(spec, key, v)
		if err != nil {
			return resource.Vector{}, err
		}
		out = out.Add(d.Coef[key].Scale(mag))
	}
	if !out.Nonnegative() {
		return resource.Vector{}, fmt.Errorf("task: linear demand produced negative vector %v", out)
	}
	return out, nil
}

// sortKeys orders attribute keys canonically by (dim, attr).
func sortKeys(keys []qos.AttrKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Dim != keys[j].Dim {
			return keys[i].Dim < keys[j].Dim
		}
		return keys[i].Attr < keys[j].Attr
	})
}

func magnitude(spec *qos.Spec, key qos.AttrKey, v qos.Value) (float64, error) {
	if v.IsNumeric() {
		return v.Num(), nil
	}
	attr := spec.Attr(key)
	if attr == nil {
		return 0, fmt.Errorf("task: demand refers to unknown attribute %v", key)
	}
	idx := attr.Domain.IndexOf(v)
	if idx < 0 {
		return 0, fmt.Errorf("task: value %v outside domain of %v", v, key)
	}
	return float64(idx), nil
}

// FuncDemand adapts a plain function to DemandModel, for tests and ad-hoc
// workloads.
type FuncDemand func(spec *qos.Spec, level qos.Level) (resource.Vector, error)

// Demand implements DemandModel.
func (f FuncDemand) Demand(spec *qos.Spec, level qos.Level) (resource.Vector, error) {
	return f(spec, level)
}

// ConstDemand returns the same vector for every level; useful for
// baselines and tests where quality does not change cost.
func ConstDemand(v resource.Vector) DemandModel {
	return FuncDemand(func(*qos.Spec, qos.Level) (resource.Vector, error) { return v, nil })
}
