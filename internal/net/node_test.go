package net

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/workload"
)

// TestTwoNodeNegotiation runs a real coalition formation over TCP
// loopback: node 0 organizes a one-task streaming service, node 1 is a
// remote provider, and after dissolution both ledgers return to full
// capacity.
func TestTwoNodeNegotiation(t *testing.T) {
	mk := func(id radio.NodeID, x float64, profile string) *Node {
		p, err := workload.ProfileByName(profile)
		if err != nil {
			t.Fatal(err)
		}
		cfg := NodeConfig{
			Endpoint: Config{
				Self:       id,
				ListenAddr: "127.0.0.1:0",
				Link:       radio.Link{Pos: radio.Pos{X: x}, RangeM: p.RangeM, Bitrate: p.Bitrate},
				Capacity:   p.Capacity,
				TimeScale:  0.01,
			},
			Provider: core.DefaultProviderConfig,
			Retry:    proto.DefaultRetryConfig,
		}
		n := NewNode(cfg)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	org := mk(0, 0, "phone")
	prov := mk(1, 10, "laptop")
	defer prov.Close()
	defer org.Close()

	if err := org.Endpoint.Dial(1, prov.Endpoint.Addr()); err != nil {
		t.Fatal(err)
	}

	formed := make(chan *core.Result, 4)
	ocfg := core.DefaultOrganizerConfig
	ocfg.Monitor = false
	o, err := org.Submit(workload.StreamService("net-svc", 1, 1.0), ocfg, func(r *core.Result) {
		formed <- r
	})
	if err != nil {
		t.Fatal(err)
	}

	var res *core.Result
	select {
	case res = <-formed:
	case <-time.After(10 * time.Second):
		t.Fatal("formation did not complete")
	}
	if !res.Complete() {
		t.Fatalf("incomplete formation: %+v", res)
	}
	// The catalog push must have landed on the remote provider.
	if _, ok := prov.Catalog().Spec("multimedia"); !ok {
		t.Error("spec did not reach the remote catalog")
	}

	o.Dissolve("test done")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if prov.Res.Available() == prov.Res.Capacity() &&
			org.Res.Available() == org.Res.Capacity() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("ledgers not restored: org %v/%v, prov %v/%v",
		org.Res.Available(), org.Res.Capacity(), prov.Res.Available(), prov.Res.Capacity())
}
