package net

import (
	"errors"
	"math"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/task"
	"repro/internal/workload"
)

// This file pins the interop scenario shared by the qosnoded daemon,
// qosim's client mode, and experiment E28: a fixed grid of profiled
// nodes that can be instantiated identically on the discrete-event
// simulator and on the TCP fabric, so allocations are comparable
// across runtimes. It deliberately mirrors experiment E10's
// neighbourhood (the live-runtime equivalence experiment).

// InteropSpacing is the grid pitch of the interop topology, meters.
const InteropSpacing = 10.0

// InteropProcDelay is the per-hop processing delay of the interop
// communication-cost model, seconds (matches E10's radio config).
const InteropProcDelay = 0.001

// InteropProfile returns the device profile of node i in the interop
// topology: the same phone/PDA/laptop rotation as experiment E10,
// repeated for larger populations.
func InteropProfile(i int) workload.Profile {
	rot := []workload.Profile{
		workload.Phone, workload.PDA, workload.Laptop,
		workload.PDA, workload.Laptop, workload.Phone,
	}
	return rot[i%len(rot)]
}

// InteropService is the service every interop runtime negotiates.
func InteropService(tasks int, scale float64) *task.Service {
	return workload.StreamService("interop", tasks, scale)
}

// InteropEndpointConfig places node id on the interop grid and returns
// its endpoint configuration. listen may be empty for a dial-only node.
func InteropEndpointConfig(id radio.NodeID, total int, listen string, timeScale float64) Config {
	p := InteropProfile(int(id))
	pos := core.GridPlacement(int(id), total, InteropSpacing)
	return Config{
		Self:       id,
		ListenAddr: listen,
		Link:       radio.Link{Pos: radio.Pos(pos), RangeM: p.RangeM, Bitrate: p.Bitrate},
		Capacity:   p.Capacity,
		TimeScale:  timeScale,
		ProcDelay:  InteropProcDelay,
	}
}

// InteropSim runs the interop scenario through the discrete-event
// simulator and returns the first formation result — the reference a
// TCP-fabric run of the same topology is compared against.
func InteropSim(seed int64, total, tasks int, scale float64) (*core.Result, error) {
	cl := core.NewCluster(seed, radio.Config{ProcDelay: InteropProcDelay}, core.DefaultProviderConfig)
	for i := 0; i < total; i++ {
		p := InteropProfile(i)
		if _, err := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, total, InteropSpacing))); err != nil {
			return nil, err
		}
	}
	var res *core.Result
	if _, err := cl.Submit(0, 0, InteropService(tasks, scale), core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		return nil, err
	}
	cl.Run(5)
	if res == nil {
		return nil, errors.New("net: interop sim formation incomplete")
	}
	return res, nil
}

// SameAssignment reports whether two formation results allocated every
// task to the same node at the same QoS distance (within float noise) —
// the cross-runtime equality criterion of experiments E10 and E28.
func SameAssignment(a, b *core.Result) bool {
	if len(a.Assigned) != len(b.Assigned) {
		return false
	}
	for tid, aa := range a.Assigned {
		ba, ok := b.Assigned[tid]
		if !ok || ba.Node != aa.Node {
			return false
		}
		if math.Abs(ba.Distance-aa.Distance) > 1e-9 {
			return false
		}
	}
	return true
}
