package net

import (
	"math"
	gonet "net"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/resource"
)

// testConfig builds a loopback endpoint at position (x, 0) with a
// 100 m range and fast timeouts suitable for CI.
func testConfig(id radio.NodeID, x float64) Config {
	return Config{
		Self:         id,
		ListenAddr:   "127.0.0.1:0",
		Link:         radio.Link{Pos: radio.Pos{X: x}, RangeM: 100, Bitrate: 11e6},
		Capacity:     resource.Vector{100, 100, 100, 100, 100},
		TimeScale:    0.01,
		DialTimeout:  time.Second,
		WriteTimeout: time.Second,
	}
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// recv reads one delivery with a timeout.
func recv(t *testing.T, e *Endpoint) Delivery {
	t.Helper()
	select {
	case d := <-e.Inbox():
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
		return Delivery{}
	}
}

func TestEndpointLoopbackRoundTrip(t *testing.T) {
	a := NewEndpoint(testConfig(1, 0))
	b := NewEndpoint(testConfig(2, 10))
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := b.Listen(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.Dial(1, a.Addr()); err != nil {
		t.Fatal(err)
	}
	// Dial returns once b has a's Hello; a admits b from its accept
	// goroutine, so poll for the reverse entry.
	waitFor(t, "a to admit b", func() bool { return len(a.Peers()) == 1 })

	if err := b.Send(1, &proto.Heartbeat{ServiceID: "s", TaskIDs: []string{"t"}}); err != nil {
		t.Fatal(err)
	}
	d := recv(t, a)
	if d.From != 2 {
		t.Fatalf("delivery from %d, want 2", d.From)
	}
	hb, ok := d.Msg.(*proto.Heartbeat)
	if !ok || hb.ServiceID != "s" || len(hb.TaskIDs) != 1 {
		t.Fatalf("delivered %#v", d.Msg)
	}
	// And the reverse direction over the same socket.
	if err := a.Send(2, &proto.Dissolve{ServiceID: "s", Reason: "done"}); err != nil {
		t.Fatal(err)
	}
	if d := recv(t, b); d.From != 1 || d.Msg.Kind() != "dissolve" {
		t.Fatalf("reverse delivery = %+v", d)
	}

	// The handshake populated both directories: costs are finite and
	// capacities known.
	if c := b.CommCost(1, 1024); c <= 0 || c > 1 {
		t.Errorf("CommCost b->a = %v", c)
	}
	if c := a.CommCost(2, 1024); c <= 0 || c > 1 {
		t.Errorf("CommCost a->b = %v", c)
	}
	if cap, ok := a.PeerCapacity(2); !ok || cap != b.cfg.Capacity {
		t.Errorf("peer capacity = %v, %v", cap, ok)
	}
	if a.Sent.Load() != 1 || a.Delivered.Load() != 1 || a.SendErrors.Load() != 0 {
		t.Errorf("a counters: sent=%d delivered=%d errors=%d",
			a.Sent.Load(), a.Delivered.Load(), a.SendErrors.Load())
	}
}

func TestEndpointSelfSend(t *testing.T) {
	cfg := testConfig(7, 0)
	cfg.ListenAddr = "" // dial-only endpoints can still self-deliver
	e := NewEndpoint(cfg)
	defer e.Close()
	if err := e.Send(7, &proto.Heartbeat{ServiceID: "x"}); err != nil {
		t.Fatal(err)
	}
	if d := recv(t, e); d.From != 7 || d.Msg.Kind() != "heartbeat" {
		t.Fatalf("self delivery = %+v", d)
	}
	if e.CommCost(7, 1<<20) != 0 {
		t.Error("self cost must be zero")
	}
}

// TestEndpointDialFailure: a send to a peer whose address refuses
// connections surfaces the error and counts it.
func TestEndpointDialFailure(t *testing.T) {
	// Grab a loopback port and close it again: dials now get refused.
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	cfg := testConfig(1, 0)
	cfg.ListenAddr = ""
	e := NewEndpoint(cfg)
	defer e.Close()
	if err := e.Dial(2, dead); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	// The address stays registered; Send retries the dial and reports.
	if err := e.Send(2, &proto.Heartbeat{ServiceID: "s"}); err == nil {
		t.Fatal("send to unreachable peer succeeded")
	}
	if e.SendErrors.Load() == 0 {
		t.Error("send error not counted")
	}
	if e.Sent.Load() != 0 {
		t.Error("failed send counted as sent")
	}
}

// TestEndpointHandshakeDeadline: a peer that accepts the connection but
// never answers the Hello must not hang Dial past its deadline.
func TestEndpointHandshakeDeadline(t *testing.T) {
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and stay silent
		}
	}()

	cfg := testConfig(1, 0)
	cfg.ListenAddr = ""
	cfg.DialTimeout = 200 * time.Millisecond
	e := NewEndpoint(cfg)
	defer e.Close()
	begin := time.Now()
	err = e.Dial(2, ln.Addr().String())
	if err == nil {
		t.Fatal("handshake against silent peer succeeded")
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("dial blocked %v despite 200ms deadline", elapsed)
	}
}

// TestEndpointPeerLossSurfacesSendError: after a peer goes away its
// graceful Bye empties the pool, and the next send fails loudly.
func TestEndpointPeerLoss(t *testing.T) {
	a := NewEndpoint(testConfig(1, 0))
	b := NewEndpoint(testConfig(2, 10))
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(1, a.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "connection", func() bool { return len(b.Peers()) == 1 })

	a.Close() // sends Bye, closes listener and socket
	waitFor(t, "bye to drop the peer", func() bool { return len(b.Peers()) == 0 })

	if err := b.Send(1, &proto.Heartbeat{ServiceID: "s"}); err == nil {
		t.Fatal("send to closed peer succeeded")
	}
	if b.SendErrors.Load() == 0 {
		t.Error("send error not counted")
	}
}

// TestEndpointMidStreamCut: a peer that dies mid-frame (or spews
// garbage) is dropped without panicking the read loop.
func TestEndpointMidStreamCut(t *testing.T) {
	a := NewEndpoint(testConfig(1, 0))
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var codec proto.Codec
	raw, err := gonet.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.WriteMsg(raw, &proto.Hello{Node: 99, RangeM: 100, Bitrate: 1e6}); err != nil {
		t.Fatal(err)
	}
	if _, err := codec.ReadMsg(raw); err != nil { // a's answering Hello
		t.Fatal(err)
	}
	waitFor(t, "admission", func() bool { return len(a.Peers()) == 1 })

	// A full frame followed by a truncated one, then a hard close.
	frame, err := codec.Encode(&proto.Heartbeat{ServiceID: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(frame[:len(frame)-2]); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	if d := recv(t, a); d.From != 99 || d.Msg.Kind() != "heartbeat" {
		t.Fatalf("delivery = %+v", d)
	}
	waitFor(t, "peer drop after cut", func() bool { return len(a.Peers()) == 0 })

	// A second client that opens with garbage instead of a Hello is
	// rejected without admission.
	raw2, err := gonet.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw2.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	raw2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw2.Read(buf); err == nil {
		t.Fatal("garbage handshake was answered")
	}
	raw2.Close()
	if n := len(a.Peers()); n != 0 {
		t.Fatalf("garbage client admitted: %d peers", n)
	}
}

// TestEndpointBroadcastRangeFilter: broadcast follows the radio range
// model — a connected but out-of-range peer is silently skipped, and
// its communication cost is infinite.
func TestEndpointBroadcastRangeFilter(t *testing.T) {
	a := NewEndpoint(testConfig(1, 0))
	near := NewEndpoint(testConfig(2, 50))
	farCfg := testConfig(3, 5000) // far outside the 100 m range
	far := NewEndpoint(farCfg)
	for _, e := range []*Endpoint{a, near, far} {
		if err := e.Listen(); err != nil {
			t.Fatal(err)
		}
		defer e.Close()
	}
	if err := a.Dial(2, near.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Dial(3, far.Addr()); err != nil {
		t.Fatal(err)
	}

	if err := a.Broadcast(&proto.Dissolve{ServiceID: "s", Reason: "r"}); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if d := recv(t, near); d.Msg.Kind() != "dissolve" {
		t.Fatalf("near delivery = %+v", d)
	}
	select {
	case d := <-far.Inbox():
		t.Fatalf("out-of-range peer received %+v", d)
	case <-time.After(100 * time.Millisecond):
	}
	if c := a.CommCost(3, 1024); !math.IsInf(c, 1) {
		t.Errorf("cost to out-of-range peer = %v, want +Inf", c)
	}
}

func TestEndpointCloseIdempotent(t *testing.T) {
	e := NewEndpoint(testConfig(1, 0))
	if err := e.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Send(2, &proto.Heartbeat{ServiceID: "s"}); err == nil {
		t.Error("send after close succeeded")
	}
}
