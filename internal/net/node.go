package net

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
)

// NodeConfig assembles one networked node.
type NodeConfig struct {
	// Endpoint configures the TCP transport.
	Endpoint Config
	// Provider configures the node's QoS Provider.
	Provider core.ProviderConfig
	// Retry enables the at-least-once reliability layer, exactly as on
	// the other runtimes; over real sockets it doubles as the re-dial
	// schedule for transiently unreachable peers.
	Retry proto.RetryConfig
}

// Node is one networked device: an Endpoint, the node's resources and
// QoS Provider, and any organizers it runs for locally requested
// services. It is the TCP sibling of core.Node and live.Node, built on
// the same state machines and the same shared dispatch plumbing.
type Node struct {
	Endpoint *Endpoint
	Res      *resource.Set
	Provider *core.Provider

	catalog  *core.Catalog
	tr       proto.Transport
	tm       proto.Timers
	reliable *proto.Reliable

	orgMu      sync.Mutex
	organizers map[string]*core.Organizer
	orgSink    func(svc string) proto.Sink
	dedup      proto.Dedup

	quit     chan struct{}
	done     chan struct{}
	started  atomic.Bool
	stopOnce sync.Once
}

// NewNode builds a node; Start brings it onto the fabric.
func NewNode(cfg NodeConfig) *Node {
	ep := NewEndpoint(cfg.Endpoint)
	n := &Node{
		Endpoint:   ep,
		Res:        resource.NewSet(ep.cfg.Capacity),
		catalog:    core.NewCatalog(),
		tm:         ep.Timers(),
		organizers: make(map[string]*core.Organizer),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	n.orgSink = func(svc string) proto.Sink {
		if o := n.organizer(svc); o != nil {
			return o
		}
		return nil // explicit nil interface, not a typed-nil *core.Organizer
	}
	n.tr = ep
	if cfg.Retry.Enabled() {
		n.reliable = proto.NewReliable(ep, n.tm, cfg.Retry)
		n.tr = n.reliable
		ep.Obs().Register(obs.Retransmissions, n.reliable.RetxCounter())
	}
	ep.Obs().Register(obs.Duplicates, &n.dedup.Duplicates)
	n.Provider = core.NewProvider(ep.Self(), n.Res, n.catalog, n.tr, n.tm, cfg.Provider)
	ep.Obs().Register(obs.StaleReleases, &n.Provider.StaleReleases)
	return n
}

// Catalog exposes the node's application catalog, for pre-seeding
// specs and demand models out of band.
func (n *Node) Catalog() *core.Catalog { return n.catalog }

// Start begins listening (when a listen address is configured) and
// starts the dispatch loop.
func (n *Node) Start() error {
	if n.Endpoint.cfg.ListenAddr != "" {
		if err := n.Endpoint.Listen(); err != nil {
			return err
		}
	}
	n.started.Store(true)
	go n.loop()
	return nil
}

// Close tears the node down: the endpoint first (so no further
// deliveries arrive), then the dispatch loop. Close is idempotent.
func (n *Node) Close() error {
	err := n.Endpoint.Close()
	n.stopOnce.Do(func() { close(n.quit) })
	if n.started.Load() {
		<-n.done
	}
	return err
}

// loop drains the endpoint inbox; it is the single goroutine that
// touches the dedup window and the protocol state machines, matching
// the live runtime's one-loop-per-node discipline.
func (n *Node) loop() {
	defer close(n.done)
	for {
		select {
		case <-n.quit:
			return
		case d := <-n.Endpoint.Inbox():
			n.handle(d.From, d.Msg)
		}
	}
}

// handle is the node's receive path: unwrap and dedup once, apply
// fabric control messages, and push everything else through the shared
// protocol dispatch.
func (n *Node) handle(from radio.NodeID, m proto.Msg) {
	inner, seq := proto.Unwrap(m)
	if n.dedup.Duplicate(from, seq) {
		return
	}
	if cu, ok := inner.(*proto.CatalogUpdate); ok {
		n.applyCatalog(cu)
		return
	}
	proto.Dispatch(&n.dedup, from, inner, n.orgSink, n.Provider)
}

// applyCatalog installs pushed specs and demand models, idempotently:
// entries already present are kept (first registration wins, matching
// core.Catalog.RegisterService).
func (n *Node) applyCatalog(cu *proto.CatalogUpdate) {
	for _, raw := range cu.Specs {
		s, err := qos.DecodeSpec(raw)
		if err != nil {
			n.Endpoint.emit("catalog-error", fmt.Sprintf("bad spec: %v", err))
			continue
		}
		if _, ok := n.catalog.Spec(s.Name); ok {
			continue
		}
		if err := n.catalog.AddSpec(s); err != nil {
			n.Endpoint.emit("catalog-error", err.Error())
		}
	}
	for i := range cu.Demands {
		d := &cu.Demands[i]
		if _, ok := n.catalog.Demand(d.Ref); ok {
			continue
		}
		ld := &task.LinearDemand{Base: d.Base}
		if len(d.Coef) > 0 {
			ld.Coef = make(map[qos.AttrKey]resource.Vector, len(d.Coef))
			for _, c := range d.Coef {
				ld.Coef[qos.AttrKey{Dim: c.Dim, Attr: c.Attr}] = c.Vec
			}
		}
		if err := n.catalog.AddDemand(d.Ref, ld); err != nil {
			n.Endpoint.emit("catalog-error", err.Error())
		}
	}
}

// CatalogUpdateFor builds the catalog push for one service: its spec's
// canonical JSON plus one demand entry per distinct task reference.
// Only task.LinearDemand crosses the wire; other models would need
// their own serialization.
func CatalogUpdateFor(svc *task.Service) (*proto.CatalogUpdate, error) {
	raw, err := qos.EncodeSpec(svc.Spec)
	if err != nil {
		return nil, err
	}
	cu := &proto.CatalogUpdate{Specs: [][]byte{raw}}
	seen := make(map[string]bool, len(svc.Tasks))
	for _, t := range svc.Tasks {
		ref := t.Ref(svc.ID)
		if seen[ref] {
			continue
		}
		seen[ref] = true
		ld, ok := t.Demand.(*task.LinearDemand)
		if !ok {
			return nil, fmt.Errorf("net: demand %q is %T; only LinearDemand is wire-serializable", ref, t.Demand)
		}
		entry := proto.DemandEntry{Ref: ref, Base: ld.Base}
		keys := make([]qos.AttrKey, 0, len(ld.Coef))
		for k := range ld.Coef {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Dim != keys[j].Dim {
				return keys[i].Dim < keys[j].Dim
			}
			return keys[i].Attr < keys[j].Attr
		})
		for _, k := range keys {
			entry.Coef = append(entry.Coef, proto.AttrVector{Dim: k.Dim, Attr: k.Attr, Vec: ld.Coef[k]})
		}
		cu.Demands = append(cu.Demands, entry)
	}
	return cu, nil
}

// Submit starts a negotiation from this node: the service's catalog
// entries are pushed to every reachable peer (frames are ordered per
// connection, so the push lands before the CFP), then the organizer
// broadcasts its call for proposals to in-process and remote providers
// alike. onFormed fires on each completed (re)formation attempt, from a
// timer goroutine.
func (n *Node) Submit(svc *task.Service, cfg core.OrganizerConfig, onFormed func(*core.Result)) (*core.Organizer, error) {
	if err := n.catalog.RegisterService(svc); err != nil {
		return nil, err
	}
	cu, err := CatalogUpdateFor(svc)
	if err != nil {
		return nil, err
	}
	// Push errors are advisory: a dead daemon simply won't propose, and
	// the endpoint already counted and traced the failure.
	_ = n.Endpoint.Broadcast(cu)
	o, err := core.NewOrganizer(svc, n.tr, n.tm, cfg, onFormed)
	if err != nil {
		return nil, err
	}
	n.orgMu.Lock()
	if _, dup := n.organizers[svc.ID]; dup {
		n.orgMu.Unlock()
		return nil, fmt.Errorf("net: node %d already organizes %q", n.Endpoint.Self(), svc.ID)
	}
	n.organizers[svc.ID] = o
	n.orgMu.Unlock()
	o.Start()
	return o, nil
}

func (n *Node) organizer(svc string) *core.Organizer {
	n.orgMu.Lock()
	defer n.orgMu.Unlock()
	return n.organizers[svc]
}

// Duplicates reports the sequenced deliveries this node suppressed.
// Call after Close — the window is owned by the loop goroutine.
func (n *Node) Duplicates() uint64 { return n.dedup.Duplicates.Load() }
