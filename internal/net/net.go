// Package net runs the coalition formation protocol over real TCP
// sockets: the third runtime after the discrete-event simulator
// (internal/core over internal/radio) and the in-process goroutine
// runtime (internal/live). Every node is an OS process hosting an
// Endpoint — a listener, a pool of framed connections, and a peer
// directory learned from Hello handshakes — and the exact protocol
// state machines of internal/core run on top through the shared
// proto.Transport/proto.Timers contract. Frames are proto.Codec
// encodings; reachability and communication cost evaluate through
// radio.Link with the same arithmetic as the simulated medium, so a
// TCP-loopback negotiation selects the same coalition as the sim run
// of the same scenario (experiment E28).
package net

import (
	"errors"
	"fmt"
	"math"
	gonet "net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/trace"
)

// Config tunes an Endpoint.
type Config struct {
	// Self is this node's protocol identity.
	Self radio.NodeID
	// ListenAddr is the TCP address to accept peers on ("127.0.0.1:0"
	// for an ephemeral loopback port). Empty disables listening: a
	// dial-only endpoint, which is how a pure client joins the fabric.
	ListenAddr string
	// Link is this node's radio link description (position, range,
	// bitrate); it is what the Hello handshake advertises and what the
	// communication-cost model evaluates against peer links.
	Link radio.Link
	// Capacity is the node's total resource vector, advertised in Hello.
	Capacity resource.Vector
	// TimeScale converts the protocol's virtual seconds to wall-clock
	// for the endpoint's Timers, exactly like the live runtime
	// (default 0.02).
	TimeScale float64
	// PropDelay and ProcDelay parameterize the communication-cost model
	// (radio.LinkLatency); set them to the sim scenario's radio.Config
	// values when comparing runtimes.
	PropDelay, ProcDelay float64
	// DialTimeout bounds connect plus the Hello handshake (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (default 2s). An expired
	// deadline is a send error: the connection is dropped and re-dialed
	// on the next send.
	WriteTimeout time.Duration
	// MaxFrame caps frame payloads in both directions (default
	// proto.DefaultMaxFrame).
	MaxFrame int
	// InboxDepth is the decoded-message queue depth; messages arriving
	// into a full inbox are dropped and counted (default 256).
	InboxDepth int
	// Trace receives endpoint events (send errors, inbox overflows,
	// peer lifecycle). Nil discards.
	Trace trace.Tracer
	// Obs, when set, is the registry the endpoint's counters register
	// into; nil creates a private one.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.TimeScale <= 0 {
		c.TimeScale = 0.02
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 256
	}
	if c.Trace == nil {
		c.Trace = trace.Nop{}
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	return c
}

// Delivery is one decoded inbound message, as read from Inbox.
type Delivery struct {
	From radio.NodeID
	Msg  proto.Msg
}

// peer is one pooled connection.
type peer struct {
	id   radio.NodeID
	conn gonet.Conn
	wmu  sync.Mutex // serializes frame writes
}

// Endpoint is the TCP implementation of proto.Network: a listener, a
// connection pool with lazy (re)dialing, read loops decoding frames
// into one inbox, and a peer directory driven by Hello handshakes.
type Endpoint struct {
	cfg   Config
	codec proto.Codec
	start time.Time

	mu     sync.Mutex
	ln     gonet.Listener
	peers  map[radio.NodeID]*peer
	addrs  map[radio.NodeID]string
	links  map[radio.NodeID]radio.Link
	caps   map[radio.NodeID]resource.Vector
	closed bool
	wg     sync.WaitGroup

	inbox chan Delivery

	// Sent counts frames written, Delivered frames decoded and queued,
	// SendErrors sends that surfaced a socket failure, Overflows
	// inbound messages dropped on a full inbox. All register into the
	// configured obs registry under the canonical net.* names.
	Sent, Delivered, SendErrors, Overflows obs.Counter
}

// NewEndpoint builds an endpoint; Listen starts accepting.
func NewEndpoint(cfg Config) *Endpoint {
	cfg = cfg.withDefaults()
	e := &Endpoint{
		cfg:   cfg,
		codec: proto.Codec{MaxFrame: cfg.MaxFrame},
		start: time.Now(),
		peers: make(map[radio.NodeID]*peer),
		addrs: make(map[radio.NodeID]string),
		links: make(map[radio.NodeID]radio.Link),
		caps:  make(map[radio.NodeID]resource.Vector),
		inbox: make(chan Delivery, cfg.InboxDepth),
	}
	e.cfg.Obs.Register(obs.NetSent, &e.Sent)
	e.cfg.Obs.Register(obs.NetDelivered, &e.Delivered)
	e.cfg.Obs.Register(obs.NetSendErrors, &e.SendErrors)
	e.cfg.Obs.Register(obs.NetOverflows, &e.Overflows)
	return e
}

// Self implements proto.Transport.
func (e *Endpoint) Self() radio.NodeID { return e.cfg.Self }

// Obs returns the registry the endpoint's counters live in.
func (e *Endpoint) Obs() *obs.Registry { return e.cfg.Obs }

// Inbox is the stream of decoded inbound messages; the owning node's
// loop drains it and feeds proto.Dispatch.
func (e *Endpoint) Inbox() <-chan Delivery { return e.inbox }

// Timers returns the endpoint's scaled wall-clock timers.
func (e *Endpoint) Timers() proto.Timers {
	return clockTimers{start: e.start, scale: e.cfg.TimeScale}
}

// clockTimers maps virtual protocol seconds onto scaled wall-clock,
// identically to the live runtime.
type clockTimers struct {
	start time.Time
	scale float64
}

func (t clockTimers) Now() float64 {
	return time.Since(t.start).Seconds() / t.scale
}

func (t clockTimers) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(time.Duration(d*t.scale*float64(time.Second)), fn)
}

// Listen implements proto.Network: it binds the configured address and
// starts the accept loop.
func (e *Endpoint) Listen() error {
	if e.cfg.ListenAddr == "" {
		return errors.New("net: endpoint has no listen address")
	}
	ln, err := gonet.Listen("tcp", e.cfg.ListenAddr)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		ln.Close()
		return errors.New("net: endpoint closed")
	}
	e.ln = ln
	e.mu.Unlock()
	e.wg.Add(1)
	go e.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address ("" before Listen), so tests
// and daemons can bind port 0 and report the real port.
func (e *Endpoint) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ln == nil {
		return ""
	}
	return e.ln.Addr().String()
}

// Dial implements proto.Network: it registers the peer's address and
// attempts to connect and handshake. The address stays registered on
// failure, so a later Send re-dials — which is how a transient dial
// failure heals through the reliability layer's retransmissions.
func (e *Endpoint) Dial(to radio.NodeID, addr string) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("net: endpoint closed")
	}
	e.addrs[to] = addr
	e.mu.Unlock()
	_, err := e.connect(to)
	return err
}

// connect returns the live connection to a peer, dialing and
// handshaking if necessary.
func (e *Endpoint) connect(to radio.NodeID) (*peer, error) {
	e.mu.Lock()
	if p, ok := e.peers[to]; ok {
		e.mu.Unlock()
		return p, nil
	}
	addr, ok := e.addrs[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("net: no address for node %d", to)
	}
	conn, err := gonet.DialTimeout("tcp", addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("net: dial node %d: %w", to, err)
	}
	// Handshake synchronously under the dial deadline: send our Hello,
	// require theirs. Once this returns, the peer's link is in the
	// directory, so in-range and cost queries see the node immediately.
	deadline := time.Now().Add(e.cfg.DialTimeout)
	conn.SetDeadline(deadline)
	if err := e.writeFrame(conn, e.hello()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("net: hello to node %d: %w", to, err)
	}
	m, err := e.codec.ReadMsg(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("net: hello from node %d: %w", to, err)
	}
	h, ok := m.(*proto.Hello)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("net: node %d opened with %s, want hello", to, m.Kind())
	}
	if h.Node != to {
		conn.Close()
		return nil, fmt.Errorf("net: dialed node %d but %d answered", to, h.Node)
	}
	conn.SetDeadline(time.Time{})
	p, err := e.admit(h, conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return p, nil
}

// hello builds this endpoint's handshake message.
func (e *Endpoint) hello() *proto.Hello {
	return &proto.Hello{
		Node: e.cfg.Self,
		X:    e.cfg.Link.Pos.X, Y: e.cfg.Link.Pos.Y,
		RangeM: e.cfg.Link.RangeM, Bitrate: e.cfg.Link.Bitrate,
		Capacity: e.cfg.Capacity,
	}
}

// admit records a handshaken connection and starts its read loop. An
// existing connection to the same peer wins: the newcomer is refused so
// both sides keep exactly one socket per pair.
func (e *Endpoint) admit(h *proto.Hello, conn gonet.Conn) (*peer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, errors.New("net: endpoint closed")
	}
	if _, dup := e.peers[h.Node]; dup {
		return nil, fmt.Errorf("net: node %d already connected", h.Node)
	}
	p := &peer{id: h.Node, conn: conn}
	e.peers[h.Node] = p
	e.links[h.Node] = radio.Link{Pos: radio.Pos{X: h.X, Y: h.Y}, RangeM: h.RangeM, Bitrate: h.Bitrate}
	e.caps[h.Node] = h.Capacity
	e.emit("peer-up", fmt.Sprintf("node %d at %s", h.Node, conn.RemoteAddr()))
	e.wg.Add(1)
	go e.readLoop(p)
	return p, nil
}

// acceptLoop admits inbound peers: read their Hello, answer with ours,
// then hand the connection to a read loop.
func (e *Endpoint) acceptLoop(ln gonet.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go func(conn gonet.Conn) {
			defer e.wg.Done()
			conn.SetDeadline(time.Now().Add(e.cfg.DialTimeout))
			m, err := e.codec.ReadMsg(conn)
			if err != nil {
				conn.Close()
				return
			}
			h, ok := m.(*proto.Hello)
			if !ok {
				conn.Close()
				return
			}
			if err := e.writeFrame(conn, e.hello()); err != nil {
				conn.Close()
				return
			}
			conn.SetDeadline(time.Time{})
			if _, err := e.admit(h, conn); err != nil {
				conn.Close()
			}
		}(conn)
	}
}

// readLoop decodes frames from one peer until the connection ends.
func (e *Endpoint) readLoop(p *peer) {
	defer e.wg.Done()
	for {
		m, err := e.codec.ReadMsg(p.conn)
		if err != nil {
			e.dropPeer(p, "read: "+err.Error())
			return
		}
		switch v := m.(type) {
		case *proto.Hello:
			// Directory refresh on an established connection.
			e.mu.Lock()
			e.links[v.Node] = radio.Link{Pos: radio.Pos{X: v.X, Y: v.Y}, RangeM: v.RangeM, Bitrate: v.Bitrate}
			e.caps[v.Node] = v.Capacity
			e.mu.Unlock()
		case *proto.Bye:
			e.dropPeer(p, "bye: "+v.Reason)
			return
		default:
			select {
			case e.inbox <- Delivery{From: p.id, Msg: m}:
				e.Delivered.Add(1)
			default:
				e.Overflows.Add(1)
				e.emit("inbox-overflow", fmt.Sprintf("dropped %s from node %d (inbox full)", m.Kind(), p.id))
			}
		}
	}
}

// dropPeer closes and forgets one connection; the address survives, so
// the next send re-dials.
func (e *Endpoint) dropPeer(p *peer, why string) {
	p.conn.Close()
	e.mu.Lock()
	if cur, ok := e.peers[p.id]; ok && cur == p {
		delete(e.peers, p.id)
	}
	closed := e.closed
	e.mu.Unlock()
	if !closed {
		e.emit("peer-down", fmt.Sprintf("node %d: %s", p.id, why))
	}
}

// writeFrame encodes and writes one frame under the write deadline.
func (e *Endpoint) writeFrame(conn gonet.Conn, m proto.Msg) error {
	frame, err := e.codec.Encode(m)
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
	_, err = conn.Write(frame)
	return err
}

// Send implements proto.Transport. Unlike the sim and live transports
// a TCP send can genuinely fail — dial refused, connection broken,
// write deadline expired — and the failure is returned, counted, and
// traced; the broken connection is dropped so the reliability layer's
// retransmissions re-dial.
func (e *Endpoint) Send(to radio.NodeID, m proto.Msg) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return errors.New("net: endpoint closed")
	}
	if to == e.cfg.Self {
		e.Sent.Add(1)
		select {
		case e.inbox <- Delivery{From: to, Msg: m}:
			e.Delivered.Add(1)
		default:
			e.Overflows.Add(1)
			e.emit("inbox-overflow", fmt.Sprintf("dropped local %s (inbox full)", m.Kind()))
		}
		return nil
	}
	p, err := e.connect(to)
	if err != nil {
		e.sendFailed(to, m, err)
		return err
	}
	p.wmu.Lock()
	err = e.writeFrame(p.conn, m)
	p.wmu.Unlock()
	if err != nil {
		e.dropPeer(p, "write: "+err.Error())
		e.sendFailed(to, m, err)
		return err
	}
	e.Sent.Add(1)
	return nil
}

func (e *Endpoint) sendFailed(to radio.NodeID, m proto.Msg, err error) {
	e.SendErrors.Add(1)
	e.emit("send-error", fmt.Sprintf("%s to node %d: %v", m.Kind(), to, err))
}

// Broadcast implements proto.Transport: the frame goes to every known
// peer (registered address or live connection, never self) whose link
// is in radio range, mirroring the medium's single-hop semantics. Send
// failures are aggregated; partial delivery is normal on a fabric with
// a dead daemon and the negotiation tolerates it.
func (e *Endpoint) Broadcast(m proto.Msg) error {
	e.mu.Lock()
	ids := make(map[radio.NodeID]bool, len(e.addrs)+len(e.peers))
	for id := range e.addrs {
		ids[id] = true
	}
	for id := range e.peers {
		ids[id] = true
	}
	e.mu.Unlock()
	order := make([]radio.NodeID, 0, len(ids))
	for id := range ids {
		if id != e.cfg.Self {
			order = append(order, id)
		}
	}
	sortNodeIDs(order)
	var errs []error
	for _, id := range order {
		// Connect first so the directory has the peer's link, then apply
		// the range filter; an unreachable peer is a send error.
		if _, err := e.connect(id); err != nil {
			e.sendFailed(id, m, err)
			errs = append(errs, err)
			continue
		}
		e.mu.Lock()
		l, ok := e.links[id]
		e.mu.Unlock()
		if !ok || !radio.LinkInRange(e.cfg.Link, l) {
			continue // out of radio range: silent, like the medium
		}
		if err := e.Send(id, m); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func sortNodeIDs(ids []radio.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// CommCost implements proto.Transport with the shared link-model
// arithmetic (radio.LinkLatency), so cost-based selection picks the
// same winners as the simulated medium for the same topology.
func (e *Endpoint) CommCost(to radio.NodeID, size int64) float64 {
	if to == e.cfg.Self {
		return 0
	}
	e.mu.Lock()
	l, ok := e.links[to]
	e.mu.Unlock()
	if !ok || !radio.LinkInRange(e.cfg.Link, l) {
		return math.Inf(1)
	}
	return radio.LinkLatency(e.cfg.Link, l, size, e.cfg.PropDelay, e.cfg.ProcDelay)
}

// PeerLink reports a peer's directory entry.
func (e *Endpoint) PeerLink(id radio.NodeID) (radio.Link, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.links[id]
	return l, ok
}

// PeerCapacity reports a peer's advertised capacity.
func (e *Endpoint) PeerCapacity(id radio.NodeID) (resource.Vector, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.caps[id]
	return c, ok
}

// Peers returns the IDs of currently connected peers, ascending.
func (e *Endpoint) Peers() []radio.NodeID {
	e.mu.Lock()
	ids := make([]radio.NodeID, 0, len(e.peers))
	for id := range e.peers {
		ids = append(ids, id)
	}
	e.mu.Unlock()
	sortNodeIDs(ids)
	return ids
}

// Close implements proto.Network: it stops accepting, says Bye to every
// peer, closes all connections, and waits for the read loops to drain.
// Close is idempotent.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ln := e.ln
	peers := make([]*peer, 0, len(e.peers))
	for _, p := range e.peers {
		peers = append(peers, p)
	}
	e.peers = make(map[radio.NodeID]*peer)
	e.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	bye := &proto.Bye{Reason: "closing"}
	for _, p := range peers {
		p.wmu.Lock()
		_ = e.writeFrame(p.conn, bye) // best effort
		p.wmu.Unlock()
		p.conn.Close()
	}
	e.wg.Wait()
	return nil
}

// emit publishes an endpoint trace event stamped with the scaled clock.
func (e *Endpoint) emit(kind, detail string) {
	e.cfg.Trace.Emit(trace.Event{
		T:      e.Timers().Now(),
		Node:   int(e.cfg.Self),
		Role:   "engine",
		Kind:   kind,
		Detail: detail,
	})
}
