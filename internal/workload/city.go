package workload

import (
	"fmt"
	"math"

	"repro/internal/arrival"
)

// CityProfile selects how a CityScenario distributes the city-wide
// offered load across its neighbourhood shards.
type CityProfile string

const (
	// CityUniform spreads the total arrival rate evenly: every shard
	// receives TotalRate / Shards() as a homogeneous Poisson stream.
	CityUniform CityProfile = "uniform"
	// CityHotspot skews the load toward the grid centre: shard weights
	// fall off exponentially with Manhattan distance from the centre
	// cell (weight 1 + (HotspotBoost-1) * 2^-d), then normalize so the
	// city-wide mean rate stays exactly TotalRate. HotspotBoost 1
	// degenerates to uniform.
	CityHotspot CityProfile = "hotspot"
	// CityDiurnal gives every shard an equal mean share of TotalRate
	// but modulates it sinusoidally with a per-shard phase shift of
	// shard/Shards() of a Period — neighbourhoods peak at different
	// times of day, so the instantaneous city load stays near its mean
	// while each shard cycles through feast and famine.
	CityDiurnal CityProfile = "diurnal"
)

// CityScenario lays out a city as a Rows x Cols grid of independent
// single-hop neighbourhoods ("shards"). Every shard is a standard
// spontaneous neighbourhood — NodesPerShard devices drawn from Mix in a
// ShardAreaM square — and the grid pitch is assumed to exceed the radio
// range, so shards never interact over the air; each shard gets its own
// cluster, medium and virtual clock, which is what lets the fabric
// engine run them on parallel workers without changing a single bit of
// the results. The scenario's job is load shaping: it calibrates
// per-shard arrival processes so their mean rates sum to exactly
// TotalRate whatever the Profile, following the equal-load calibration
// the inhomogeneous-arrival experiments (E18) established.
type CityScenario struct {
	// Rows, Cols define the shard grid; Shards() = Rows*Cols.
	Rows, Cols int
	// NodesPerShard is each neighbourhood's population (default 16).
	NodesPerShard int
	// Mix selects device classes per shard (nil = DefaultMix).
	Mix Mix
	// ShardAreaM is each neighbourhood's square side in meters
	// (default 80, everyone in radio range of everyone).
	ShardAreaM float64
	// TotalRate is the city-wide mean session arrival rate
	// (sessions per simulated second), split across shards by Profile.
	TotalRate float64
	// Profile picks the load-shaping scheme (default CityUniform).
	Profile CityProfile
	// HotspotBoost is the centre-to-edge weight ratio knob of
	// CityHotspot (values <= 1 mean uniform).
	HotspotBoost float64
	// Period and Amplitude configure CityDiurnal's sinusoid (Amplitude
	// defaults to 0.9, Period to 600 s).
	Period, Amplitude float64
}

// Validate reports the first configuration error.
func (c CityScenario) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("workload: city grid needs positive Rows x Cols, got %dx%d", c.Rows, c.Cols)
	}
	if c.TotalRate <= 0 {
		return fmt.Errorf("workload: city total arrival rate must be positive, got %g", c.TotalRate)
	}
	switch c.Profile {
	case "", CityUniform, CityHotspot, CityDiurnal:
	default:
		return fmt.Errorf("workload: unknown city profile %q", c.Profile)
	}
	return nil
}

// Shards returns the number of neighbourhood shards in the grid.
func (c CityScenario) Shards() int { return c.Rows * c.Cols }

// Pos returns the grid position of a shard (row-major order).
func (c CityScenario) Pos(shard int) (row, col int) {
	return shard / c.Cols, shard % c.Cols
}

// weight is the unnormalized load share of one shard.
func (c CityScenario) weight(shard int) float64 {
	if c.Profile != CityHotspot || c.HotspotBoost <= 1 {
		return 1
	}
	row, col := c.Pos(shard)
	// Manhattan distance from the (possibly fractional) grid centre.
	d := math.Abs(float64(row)-float64(c.Rows-1)/2) +
		math.Abs(float64(col)-float64(c.Cols-1)/2)
	return 1 + (c.HotspotBoost-1)*math.Pow(2, -d)
}

// ShardRate returns the calibrated mean arrival rate of one shard. The
// rates sum to TotalRate across the grid for every profile: skew and
// modulation redistribute the load, they never add to it.
func (c CityScenario) ShardRate(shard int) float64 {
	var sum float64
	for i := 0; i < c.Shards(); i++ {
		sum += c.weight(i)
	}
	return c.TotalRate * c.weight(shard) / sum
}

// ArrivalProcess builds a fresh arrival process for one shard. Each
// call returns a new instance, so stateful processes are never shared
// between shards (or between replications of the same shard).
func (c CityScenario) ArrivalProcess(shard int) arrival.Process {
	rate := c.ShardRate(shard)
	if c.Profile != CityDiurnal {
		return arrival.Poisson{Rate: rate}
	}
	period := c.Period
	if period <= 0 {
		period = 600
	}
	amp := c.Amplitude
	if amp <= 0 {
		amp = 0.9
	}
	phase := period * float64(shard) / float64(c.Shards())
	return arrival.Inhomogeneous{Profile: arrival.Diurnal{
		Mean: rate, Amplitude: amp, Period: period, Phase: phase,
	}}
}

// ScenarioConfig derives the shard's neighbourhood configuration from
// the city parameters and the shard's private seed.
func (c CityScenario) ScenarioConfig(seed int64) ScenarioConfig {
	scfg := DefaultScenario(seed)
	if c.NodesPerShard > 0 {
		scfg.Nodes = c.NodesPerShard
	}
	if c.ShardAreaM > 0 {
		scfg.AreaM = c.ShardAreaM
	}
	scfg.Mix = c.Mix
	return scfg
}
