package workload

import (
	"fmt"
	"sync"

	"repro/internal/qos"
	"repro/internal/task"
)

// SessionTemplate stamps out the service instances an open-system run
// spawns continuously. Every instance shares the template's QoS request
// and demand model under a shared catalog demand reference
// ("tmpl:<name>/t<i>"), so a provider compiles the (spec, demand) pair
// once for the whole run instead of once per arriving session — the
// difference between a bounded compiled-problem cache and one that
// grows (and misses) per arrival.
type SessionTemplate struct {
	// Name keys the shared request and demand references.
	Name string
	// Tasks is the number of independent stream tasks per session.
	Tasks int
	// Scale stretches the demand model (1.0 = VideoDemand baseline).
	Scale float64
}

// tmplShared holds the per-template immutable parts every instance
// shares: the spec, the request, the demand model, and the per-task ID
// and demand-reference strings. Building them once per template (not
// once per arriving session) keeps the open-system arrival path nearly
// allocation-free; all of it is read-only after construction, so
// concurrent shards instantiating the same template may share freely.
type tmplShared struct {
	spec *qos.Spec
	req  qos.Request
	dem  task.DemandModel
	ids  []string
	refs []string
}

var (
	tmplMu    sync.Mutex
	tmplCache = map[SessionTemplate]*tmplShared{}
)

// shared returns the memoized immutable parts for this template value.
func (st SessionTemplate) shared() *tmplShared {
	tmplMu.Lock()
	defer tmplMu.Unlock()
	if sh, ok := tmplCache[st]; ok {
		return sh
	}
	sh := &tmplShared{
		spec: VideoSpec(),
		req:  StreamingRequest(st.Name),
		dem:  VideoDemand(st.Scale),
	}
	for i := 0; i < st.Tasks; i++ {
		sh.ids = append(sh.ids, fmt.Sprintf("t%d", i))
		sh.refs = append(sh.refs, fmt.Sprintf("tmpl:%s/t%d", st.Name, i))
	}
	tmplCache[st] = sh
	return sh
}

// Instantiate builds the seq-th session service. Service IDs embed the
// sequence number ("<name>-s<seq>") so reservations and protocol
// traffic of concurrent sessions stay distinct, while the spec, the
// requests, the demand models and the demand references are shared
// template-wide (and treated as read-only by every consumer).
func (st SessionTemplate) Instantiate(seq int) *task.Service {
	sh := st.shared()
	svc := &task.Service{ID: fmt.Sprintf("%s-s%d", st.Name, seq), Spec: sh.spec}
	svc.Tasks = make([]*task.Task, st.Tasks)
	tasks := make([]task.Task, st.Tasks)
	for i := 0; i < st.Tasks; i++ {
		tasks[i] = task.Task{
			ID:        sh.ids[i],
			Request:   sh.req,
			Demand:    sh.dem,
			DemandRef: sh.refs[i],
			InBytes:   24 * 1024, OutBytes: 8 * 1024,
		}
		svc.Tasks[i] = &tasks[i]
	}
	return svc
}
