package workload

import (
	"fmt"

	"repro/internal/task"
)

// SessionTemplate stamps out the service instances an open-system run
// spawns continuously. Every instance shares the template's QoS request
// and demand model under a shared catalog demand reference
// ("tmpl:<name>/t<i>"), so a provider compiles the (spec, demand) pair
// once for the whole run instead of once per arriving session — the
// difference between a bounded compiled-problem cache and one that
// grows (and misses) per arrival.
type SessionTemplate struct {
	// Name keys the shared request and demand references.
	Name string
	// Tasks is the number of independent stream tasks per session.
	Tasks int
	// Scale stretches the demand model (1.0 = VideoDemand baseline).
	Scale float64
}

// Instantiate builds the seq-th session service. Service IDs embed the
// sequence number ("<name>-s<seq>") so reservations and protocol
// traffic of concurrent sessions stay distinct, while demand
// references and requests are shared template-wide.
func (st SessionTemplate) Instantiate(seq int) *task.Service {
	svc := &task.Service{ID: fmt.Sprintf("%s-s%d", st.Name, seq), Spec: VideoSpec()}
	for i := 0; i < st.Tasks; i++ {
		svc.Tasks = append(svc.Tasks, &task.Task{
			ID:        fmt.Sprintf("t%d", i),
			Request:   StreamingRequest(st.Name),
			Demand:    VideoDemand(st.Scale),
			DemandRef: fmt.Sprintf("tmpl:%s/t%d", st.Name, i),
			InBytes:   24 * 1024, OutBytes: 8 * 1024,
		})
	}
	return svc
}
