package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/radio"
)

// ScenarioConfig parameterizes a generated ad-hoc neighbourhood.
type ScenarioConfig struct {
	Seed int64
	// Nodes is the population size.
	Nodes int
	// AreaM is the square side in meters; nodes are placed uniformly.
	// Keep it at or below the typical radio range to model the paper's
	// single-hop spontaneous neighbourhood.
	AreaM float64
	// Mix selects device classes (nil = DefaultMix).
	Mix Mix
	// Mobile makes nodes wander between random waypoints; static
	// otherwise.
	Mobile bool
	// MobileSpeed is the waypoint speed in m/s (default 1.2, a
	// pedestrian walk).
	MobileSpeed float64
	// Radio configures the medium.
	Radio radio.Config
	// Provider configures every node's QoS Provider.
	Provider core.ProviderConfig
	// Retry enables the at-least-once reliability layer (sequence
	// envelopes, bounded retransmission, receiver dedup) on every node.
	// The zero value keeps the historical bare transport.
	Retry proto.RetryConfig
}

// DefaultScenario returns the baseline configuration used by the
// experiments: 16 nodes in an 80 m square (everyone in range of
// everyone), default mix, static, lossless radio.
func DefaultScenario(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Seed:     seed,
		Nodes:    16,
		AreaM:    80,
		Mix:      DefaultMix,
		Provider: core.DefaultProviderConfig,
	}
}

// Scenario is a generated cluster plus its bookkeeping.
type Scenario struct {
	Cluster  *core.Cluster
	Profiles map[radio.NodeID]Profile
	Rng      *rand.Rand
}

// Build materializes the configuration into a ready-to-run cluster.
// Node 0 is always the weakest profile in the mix: the experiments model
// the paper's scenario of a constrained device requesting help from its
// neighbourhood, so the organizer node is a phone-class device.
func Build(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("workload: scenario needs at least one node")
	}
	if cfg.AreaM <= 0 {
		cfg.AreaM = 80
	}
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix
	}
	cl := core.NewCluster(cfg.Seed, cfg.Radio, cfg.Provider)
	if cfg.Retry.Enabled() {
		if err := cl.SetRetry(cfg.Retry); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5e3779b97f4a7c15))
	sc := &Scenario{Cluster: cl, Profiles: make(map[radio.NodeID]Profile), Rng: rng}

	weakest := mix[0].Profile
	for _, wp := range mix[1:] {
		if wp.Profile.Capacity[0] < weakest.Capacity[0] {
			weakest = wp.Profile
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := radio.NodeID(i)
		p := mix.Sample(rng)
		if i == 0 {
			p = weakest
		}
		mob, err := placement(cfg, rng)
		if err != nil {
			return nil, err
		}
		if _, err := cl.AddNode(NodeSpecFor(id, p, mob)); err != nil {
			return nil, err
		}
		sc.Profiles[id] = p
	}
	return sc, nil
}

func placement(cfg ScenarioConfig, rng *rand.Rand) (radio.Mobility, error) {
	pt := func() radio.Pos {
		return radio.Pos{X: rng.Float64() * cfg.AreaM, Y: rng.Float64() * cfg.AreaM}
	}
	if !cfg.Mobile {
		return radio.Static(pt()), nil
	}
	points := make([]radio.Pos, 6)
	for i := range points {
		points[i] = pt()
	}
	speed := cfg.MobileSpeed
	if speed <= 0 {
		speed = 1.2 // pedestrian walk
	}
	return radio.NewWaypoint(speed, 2.0, points...)
}

// ProfileCount tallies how many nodes of each profile were generated.
func (s *Scenario) ProfileCount() map[string]int {
	out := make(map[string]int)
	for _, p := range s.Profiles {
		out[p.Name]++
	}
	return out
}
