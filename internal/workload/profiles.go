package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/resource"
)

// Profile is a device class with calibrated capacities. Units: CPU in
// MIPS-like processing units, memory in MB, network bandwidth in kbit/s,
// energy in joule-like budget units, storage in MB.
type Profile struct {
	Name     string
	Capacity resource.Vector
	RangeM   float64 // radio range, meters
	Bitrate  float64 // link speed, bits per second
}

// The calibrated device classes. Relative capacities matter more than
// absolute numbers: a laptop has roughly an order of magnitude more CPU
// than a phone, matching the paper's motivation that weak devices offload
// "computationally intensive processing" to "nearby more powerful (or
// less congested) devices".
var (
	// Phone is a small mobile client: enough to decode audio, struggles
	// with video tasks at preferred quality.
	Phone = Profile{
		Name: "phone",
		Capacity: resource.V(
			resource.KV{K: resource.CPU, A: 150},
			resource.KV{K: resource.Memory, A: 64},
			resource.KV{K: resource.NetBW, A: 2000},
			resource.KV{K: resource.Energy, A: 400},
			resource.KV{K: resource.Storage, A: 128},
		),
		RangeM:  60,
		Bitrate: 2e6,
	}

	// PDA is a mid-range handheld.
	PDA = Profile{
		Name: "pda",
		Capacity: resource.V(
			resource.KV{K: resource.CPU, A: 400},
			resource.KV{K: resource.Memory, A: 128},
			resource.KV{K: resource.NetBW, A: 5000},
			resource.KV{K: resource.Energy, A: 900},
			resource.KV{K: resource.Storage, A: 512},
		),
		RangeM:  80,
		Bitrate: 5e6,
	}

	// Laptop is a strong battery-powered peer.
	Laptop = Profile{
		Name: "laptop",
		Capacity: resource.V(
			resource.KV{K: resource.CPU, A: 1600},
			resource.KV{K: resource.Memory, A: 1024},
			resource.KV{K: resource.NetBW, A: 11000},
			resource.KV{K: resource.Energy, A: 4000},
			resource.KV{K: resource.Storage, A: 4096},
		),
		RangeM:  100,
		Bitrate: 11e6,
	}

	// AccessPoint models the optional fixed infrastructure the paper
	// explicitly allows ("this model does not preclude the existence of
	// a fixed wired infrastructure collaborating with the wireless
	// nodes").
	AccessPoint = Profile{
		Name: "accesspoint",
		Capacity: resource.V(
			resource.KV{K: resource.CPU, A: 4000},
			resource.KV{K: resource.Memory, A: 4096},
			resource.KV{K: resource.NetBW, A: 54000},
			resource.KV{K: resource.Energy, A: 1e9}, // mains powered
			resource.KV{K: resource.Storage, A: 16384},
		),
		RangeM:  120,
		Bitrate: 54e6,
	}
)

// Profiles returns the device classes in increasing capability order.
func Profiles() []Profile { return []Profile{Phone, PDA, Laptop, AccessPoint} }

// ProfileByName resolves a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Mix is a categorical distribution over profiles.
type Mix []WeightedProfile

// WeightedProfile pairs a profile with a sampling weight.
type WeightedProfile struct {
	Profile Profile
	Weight  float64
}

// DefaultMix is the heterogeneous population used by most experiments:
// mostly phones and PDAs with some laptops, occasionally an access point.
var DefaultMix = Mix{
	{Profile: Phone, Weight: 0.40},
	{Profile: PDA, Weight: 0.30},
	{Profile: Laptop, Weight: 0.25},
	{Profile: AccessPoint, Weight: 0.05},
}

// ChurnMix is the churn-sensitive population of the churn and
// adaptation experiments (E19, E22-E24) and qosim's open mode: no
// access-point giant, so leave events have a real chance of hitting a
// serving coalition member.
var ChurnMix = Mix{
	{Profile: Phone, Weight: 0.40},
	{Profile: PDA, Weight: 0.35},
	{Profile: Laptop, Weight: 0.25},
}

// UniformMix gives every listed profile equal weight.
func UniformMix(ps ...Profile) Mix {
	m := make(Mix, len(ps))
	for i, p := range ps {
		m[i] = WeightedProfile{Profile: p, Weight: 1}
	}
	return m
}

// Sample draws a profile.
func (m Mix) Sample(rng *rand.Rand) Profile {
	var total float64
	for _, wp := range m {
		total += wp.Weight
	}
	x := rng.Float64() * total
	for _, wp := range m {
		x -= wp.Weight
		if x < 0 {
			return wp.Profile
		}
	}
	return m[len(m)-1].Profile
}

// NodeSpecFor instantiates a cluster NodeSpec from a profile at a
// position.
func NodeSpecFor(id radio.NodeID, p Profile, mob radio.Mobility) core.NodeSpec {
	return core.NodeSpec{
		ID: id, Mobility: mob,
		RangeM: p.RangeM, Bitrate: p.Bitrate,
		Capacity: p.Capacity, Profile: p.Name,
	}
}
