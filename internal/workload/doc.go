// Package workload generates the synthetic populations and services the
// experiments run on: heterogeneous device profiles (the paper's phones,
// PDAs and laptops), multimedia service templates built from the paper's
// own examples (video streaming Section 3, remote surveillance Section
// 3.1, computation offloading Sections 1/7), and seeded scenario
// generators.
//
// Two generators matter beyond single-shot experiments: SessionTemplate
// stamps out the continuously arriving services of the open system
// (sharing catalog demand references so providers compile each
// (spec, demand) pair once per run — DESIGN.md §8), and CityScenario
// lays out the shard grid of the city fabric, calibrating per-shard
// arrival rates under uniform, hotspot or phase-shifted diurnal load
// profiles so the per-shard means always sum to the configured
// city-wide total (DESIGN.md §9).
package workload
