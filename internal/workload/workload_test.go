package workload

import (
	"math/rand"
	"testing"

	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
)

func TestPaperSpecMatchesSection3(t *testing.T) {
	s := VideoSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cd := s.Attr(qos.AttrKey{Dim: "video", Attr: "color_depth"})
	want := []int64{1, 3, 8, 16, 24}
	if len(cd.Domain.Values) != len(want) {
		t.Fatalf("color depth domain = %v", cd.Domain.Values)
	}
	for i, v := range want {
		if !cd.Domain.Values[i].Equal(qos.Int(v)) {
			t.Errorf("color depth[%d] = %v, want %v (paper AVcolor_depth)", i, cd.Domain.Values[i], v)
		}
	}
	fr := s.Attr(qos.AttrKey{Dim: "video", Attr: "frame_rate"})
	if fr.Domain.Kind != qos.Continuous || fr.Domain.Min != 1 || fr.Domain.Max != 30 {
		t.Errorf("frame rate domain = %+v, want continuous [1,30]", fr.Domain)
	}
	sr := s.Attr(qos.AttrKey{Dim: "audio", Attr: "sampling_rate"})
	if sr.Domain.IndexOf(qos.Int(44)) != 3 {
		t.Error("sampling rate domain should be {8,16,24,44}")
	}
}

func TestSurveillanceRequestMatchesSection31(t *testing.T) {
	r := SurveillanceRequest()
	if err := r.Validate(VideoSpec()); err != nil {
		t.Fatal(err)
	}
	// "Video is much more important than audio": video must come first.
	if r.Dims[0].Dim != "video" || r.Dims[1].Dim != "audio" {
		t.Error("dimension importance order wrong")
	}
	// frame rate more important than color depth.
	if r.Dims[0].Attrs[0].Attr != "frame_rate" {
		t.Error("attribute importance order wrong")
	}
	// Preferred: frame rate 10, color depth 3, audio 8/8.
	pref := r.Preferred()
	if pref[qos.AttrKey{Dim: "video", Attr: "frame_rate"}].Num() != 10 {
		t.Error("preferred frame rate != 10")
	}
	if !pref[qos.AttrKey{Dim: "video", Attr: "color_depth"}].Equal(qos.Int(3)) {
		t.Error("preferred color depth != 3")
	}
}

func TestServiceTemplatesValidate(t *testing.T) {
	for _, svc := range []interface {
		Validate() error
	}{
		StreamService("s1", 3, 1),
		SurveillanceService("s2", 1),
		OffloadService("s3", 4, 1),
	} {
		if err := svc.Validate(); err != nil {
			t.Errorf("template invalid: %v", err)
		}
	}
}

func TestVideoDemandMonotoneInQuality(t *testing.T) {
	spec := VideoSpec()
	dm := VideoDemand(1)
	low := qos.Level{
		{Dim: "video", Attr: "frame_rate"}:    qos.Int(5),
		{Dim: "video", Attr: "color_depth"}:   qos.Int(1),
		{Dim: "audio", Attr: "sampling_rate"}: qos.Int(8),
		{Dim: "audio", Attr: "sample_bits"}:   qos.Int(8),
	}
	high := qos.Level{
		{Dim: "video", Attr: "frame_rate"}:    qos.Int(30),
		{Dim: "video", Attr: "color_depth"}:   qos.Int(24),
		{Dim: "audio", Attr: "sampling_rate"}: qos.Int(44),
		{Dim: "audio", Attr: "sample_bits"}:   qos.Int(24),
	}
	dl, err := dm.Demand(spec, low)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := dm.Demand(spec, high)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []resource.Kind{resource.CPU, resource.NetBW} {
		if dh[k] <= dl[k] {
			t.Errorf("%v demand not monotone: %v <= %v", k, dh[k], dl[k])
		}
	}
	// Scaling doubles everything.
	dm2 := VideoDemand(2)
	d2, err := dm2.Demand(spec, low)
	if err != nil {
		t.Fatal(err)
	}
	if d2[resource.CPU] != 2*dl[resource.CPU] {
		t.Errorf("scale 2: %v vs %v", d2[resource.CPU], dl[resource.CPU])
	}
}

func TestOffloadDemandCodecCost(t *testing.T) {
	spec := OffloadSpec()
	dm := OffloadDemand(1)
	mk := func(codec string) qos.Level {
		return qos.Level{
			{Dim: "throughput", Attr: "blocks_per_s"}: qos.Int(24),
			{Dim: "throughput", Attr: "codec"}:        qos.Str(codec),
			{Dim: "fidelity", Attr: "quantizer"}:      qos.Int(4),
		}
	}
	hq, err := dm.Demand(spec, mk("hq"))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := dm.Demand(spec, mk("fast"))
	if err != nil {
		t.Fatal(err)
	}
	if hq[resource.CPU] <= fast[resource.CPU] {
		t.Error("hq codec must cost more CPU than fast")
	}
	if _, err := dm.Demand(spec, qos.Level{}); err == nil {
		t.Error("missing attributes accepted")
	}
	bad := mk("hq")
	bad[qos.AttrKey{Dim: "throughput", Attr: "codec"}] = qos.Str("zzz")
	if _, err := dm.Demand(spec, bad); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestProfilesOrderedByCapability(t *testing.T) {
	ps := Profiles()
	for i := 1; i < len(ps); i++ {
		if ps[i].Capacity[resource.CPU] <= ps[i-1].Capacity[resource.CPU] {
			t.Errorf("profiles not ascending in CPU: %s <= %s", ps[i].Name, ps[i-1].Name)
		}
	}
	if _, err := ProfileByName("laptop"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("mainframe"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestMixSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Mix{
		{Profile: Phone, Weight: 1},
		{Profile: Laptop, Weight: 3},
	}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[m.Sample(rng).Name]++
	}
	if counts["laptop"] < 2*counts["phone"] {
		t.Errorf("weights ignored: %v", counts)
	}
	u := UniformMix(Phone, PDA)
	c2 := map[string]int{}
	for i := 0; i < 4000; i++ {
		c2[u.Sample(rng).Name]++
	}
	if c2["phone"] == 0 || c2["pda"] == 0 {
		t.Errorf("uniform mix skipped a profile: %v", c2)
	}
}

func TestBuildScenarioDeterministic(t *testing.T) {
	cfg := DefaultScenario(5)
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Profiles) != cfg.Nodes {
		t.Fatalf("built %d nodes", len(a.Profiles))
	}
	for id, p := range a.Profiles {
		if b.Profiles[id].Name != p.Name {
			t.Fatalf("same seed produced different profiles at node %d", id)
		}
		pa, _ := a.Cluster.Medium.PosOf(id)
		pb, _ := b.Cluster.Medium.PosOf(id)
		if pa != pb {
			t.Fatalf("same seed produced different positions at node %d", id)
		}
	}
	// Node 0 is the weakest profile (the requesting phone).
	if a.Profiles[0].Name != "phone" {
		t.Errorf("node 0 profile = %s, want phone", a.Profiles[0].Name)
	}
	counts := a.ProfileCount()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != cfg.Nodes {
		t.Errorf("profile counts = %v", counts)
	}
}

func TestBuildMobileScenario(t *testing.T) {
	cfg := DefaultScenario(9)
	cfg.Mobile = true
	cfg.Nodes = 4
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Waypoint mobility: positions at t=0 and far future may differ.
	moved := false
	for _, id := range sc.Cluster.Nodes() {
		p0, _ := sc.Cluster.Medium.PosOf(id)
		sc.Cluster.Eng.At(500, func() {})
		sc.Cluster.Run(500)
		p1, _ := sc.Cluster.Medium.PosOf(id)
		if p0 != p1 {
			moved = true
		}
		break
	}
	_ = moved // mobility traces may pause; presence of a valid build is the core assertion
}

func TestBuildRejectsBadConfig(t *testing.T) {
	cfg := DefaultScenario(1)
	cfg.Nodes = 0
	if _, err := Build(cfg); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestNodeSpecFor(t *testing.T) {
	spec := NodeSpecFor(3, Laptop, radio.Static{X: 1, Y: 2})
	if spec.ID != 3 || spec.Profile != "laptop" || spec.RangeM != Laptop.RangeM {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Capacity != Laptop.Capacity {
		t.Error("capacity not copied")
	}
}
