package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arrival"
)

// TestCityRateCalibration: whatever the profile, per-shard mean rates
// must sum to exactly the city-wide TotalRate — skew redistributes
// load, it never adds to it.
func TestCityRateCalibration(t *testing.T) {
	cities := []CityScenario{
		{Rows: 2, Cols: 4, TotalRate: 0.8, Profile: CityUniform},
		{Rows: 3, Cols: 3, TotalRate: 0.45, Profile: CityHotspot, HotspotBoost: 8},
		{Rows: 1, Cols: 5, TotalRate: 0.25, Profile: CityDiurnal, Period: 400},
		{Rows: 4, Cols: 4, TotalRate: 1.6, Profile: CityHotspot, HotspotBoost: 2.5},
	}
	for _, c := range cities {
		var sum float64
		for s := 0; s < c.Shards(); s++ {
			sum += c.ShardRate(s)
		}
		if math.Abs(sum-c.TotalRate) > 1e-9 {
			t.Errorf("%s %dx%d: rates sum to %g, want %g", c.Profile, c.Rows, c.Cols, sum, c.TotalRate)
		}
	}
}

// TestCityHotspotShape: the centre shard carries the most load, weights
// fall off with distance, and boost 1 degenerates to uniform.
func TestCityHotspotShape(t *testing.T) {
	c := CityScenario{Rows: 3, Cols: 3, TotalRate: 0.9, Profile: CityHotspot, HotspotBoost: 8}
	centre := c.ShardRate(4)
	edge := c.ShardRate(1)
	corner := c.ShardRate(0)
	if !(centre > edge && edge > corner) {
		t.Fatalf("hotspot weights not monotone in distance: centre %g, edge %g, corner %g",
			centre, edge, corner)
	}
	flat := CityScenario{Rows: 3, Cols: 3, TotalRate: 0.9, Profile: CityHotspot, HotspotBoost: 1}
	for s := 0; s < flat.Shards(); s++ {
		if math.Abs(flat.ShardRate(s)-0.1) > 1e-12 {
			t.Fatalf("boost 1 shard %d rate %g, want uniform 0.1", s, flat.ShardRate(s))
		}
	}
}

// TestCityDiurnalPhases: every shard has an equal mean share but a
// distinct phase, so the per-shard instantaneous rates peak at
// different times while the long-run means stay calibrated.
func TestCityDiurnalPhases(t *testing.T) {
	c := CityScenario{Rows: 1, Cols: 4, TotalRate: 0.4, Profile: CityDiurnal, Period: 400, Amplitude: 0.9}
	for s := 0; s < c.Shards(); s++ {
		p, ok := c.ArrivalProcess(s).(arrival.Inhomogeneous)
		if !ok {
			t.Fatalf("shard %d: diurnal city built %T, want Inhomogeneous", s, c.ArrivalProcess(s))
		}
		d := p.Profile.(arrival.Diurnal)
		if math.Abs(d.MeanRate()-0.1) > 1e-12 {
			t.Errorf("shard %d mean rate %g, want 0.1", s, d.MeanRate())
		}
		wantPhase := 400 * float64(s) / 4
		if d.Phase != wantPhase {
			t.Errorf("shard %d phase %g, want %g", s, d.Phase, wantPhase)
		}
	}
}

// TestCityArrivalProcessFresh: stateful arrival processes must never be
// shared — two calls for the same shard return distinct values that
// generate identical streams from identical rngs.
func TestCityArrivalProcessFresh(t *testing.T) {
	c := CityScenario{Rows: 2, Cols: 2, TotalRate: 0.4, Profile: CityDiurnal, Period: 300}
	a := c.ArrivalProcess(1)
	b := c.ArrivalProcess(1)
	ra := rand.New(rand.NewSource(5))
	rb := rand.New(rand.NewSource(5))
	for i, now := 0, 0.0; i < 50; i++ {
		ta, tb := a.Next(now, ra), b.Next(now, rb)
		if ta != tb {
			t.Fatalf("step %d: fresh processes diverge (%g vs %g)", i, ta, tb)
		}
		now = ta
	}
}

func TestCityValidate(t *testing.T) {
	good := CityScenario{Rows: 2, Cols: 2, TotalRate: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid city rejected: %v", err)
	}
	bad := []CityScenario{
		{Rows: 0, Cols: 2, TotalRate: 0.1},
		{Rows: 2, Cols: -1, TotalRate: 0.1},
		{Rows: 2, Cols: 2, TotalRate: 0},
		{Rows: 2, Cols: 2, TotalRate: 0.1, Profile: "spiral"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid city accepted", i)
		}
	}
}

// TestCityScenarioConfig: shard neighbourhoods inherit the city's
// population knobs and fall back to the standard defaults.
func TestCityScenarioConfig(t *testing.T) {
	c := CityScenario{Rows: 2, Cols: 2, TotalRate: 0.1, NodesPerShard: 24, ShardAreaM: 60}
	scfg := c.ScenarioConfig(11)
	if scfg.Nodes != 24 || scfg.AreaM != 60 || scfg.Seed != 11 {
		t.Fatalf("scenario config not derived: %+v", scfg)
	}
	def := CityScenario{Rows: 1, Cols: 1, TotalRate: 0.1}.ScenarioConfig(3)
	if def.Nodes != 16 || def.AreaM != 80 {
		t.Fatalf("defaults not applied: %+v", def)
	}
}
