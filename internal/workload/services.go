package workload

import (
	"fmt"

	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/task"
)

// VideoSpec is the paper's Section 3 example spec, verbatim:
//
//	Dim  = {Video Quality, Audio Quality}
//	Attr = {color depth, frame rate, sampling rate, sample bits}
//	AV(color depth)   = {1, 3, 8, 16, 24}
//	AV(frame rate)    = [1..30]
//	AV(sampling rate) = {8, 16, 24, 44}
//	AV(sample bits)   = {8, 16, 24}
func VideoSpec() *qos.Spec {
	return &qos.Spec{
		Name: "multimedia",
		Dimensions: []qos.Dimension{
			{
				ID: "video", Name: "Video Quality",
				Attributes: []qos.Attribute{
					{ID: "frame_rate", Name: "frame rate", Domain: qos.IntRange(1, 30)},
					{ID: "color_depth", Name: "color depth", Domain: qos.DiscreteInts(1, 3, 8, 16, 24)},
				},
			},
			{
				ID: "audio", Name: "Audio Quality",
				Attributes: []qos.Attribute{
					{ID: "sampling_rate", Name: "sampling rate", Domain: qos.DiscreteInts(8, 16, 24, 44)},
					{ID: "sample_bits", Name: "sample bits", Domain: qos.DiscreteInts(8, 16, 24)},
				},
			},
		},
	}
}

// SurveillanceRequest is the paper's Section 3.1 request, verbatim:
// video much more important than audio, gray scale and low frame rate
// acceptable:
//
//  1. Video Quality:  frame rate [10..5],[4..1]; color depth 3, 1
//  2. Audio Quality:  sampling rate 8; sample bits 8
func SurveillanceRequest() qos.Request {
	return qos.Request{
		Service: "surveillance",
		Dims: []qos.DimPref{
			{
				Dim: "video",
				Attrs: []qos.AttrPref{
					{Attr: "frame_rate", Sets: []qos.ValueSet{qos.Span(10, 5), qos.Span(4, 1)}},
					{Attr: "color_depth", Sets: []qos.ValueSet{qos.One(qos.Int(3)), qos.One(qos.Int(1))}},
				},
			},
			{
				Dim: "audio",
				Attrs: []qos.AttrPref{
					{Attr: "sampling_rate", Sets: []qos.ValueSet{qos.One(qos.Int(8))}},
					{Attr: "sample_bits", Sets: []qos.ValueSet{qos.One(qos.Int(8))}},
				},
			},
		},
	}
}

// StreamingRequest is a demanding video-conference style request over
// VideoSpec: high frame rate and color depth preferred, degradable.
func StreamingRequest(service string) qos.Request {
	return qos.Request{
		Service: service,
		Dims: []qos.DimPref{
			{
				Dim: "video",
				Attrs: []qos.AttrPref{
					{Attr: "frame_rate", Sets: []qos.ValueSet{qos.Span(30, 15), qos.Span(14, 5)}},
					{Attr: "color_depth", Sets: []qos.ValueSet{
						qos.One(qos.Int(24)), qos.One(qos.Int(16)), qos.One(qos.Int(8)),
					}},
				},
			},
			{
				Dim: "audio",
				Attrs: []qos.AttrPref{
					{Attr: "sampling_rate", Sets: []qos.ValueSet{
						qos.One(qos.Int(44)), qos.One(qos.Int(24)), qos.One(qos.Int(16)),
					}},
					{Attr: "sample_bits", Sets: []qos.ValueSet{
						qos.One(qos.Int(16)), qos.One(qos.Int(8)),
					}},
				},
			},
		},
	}
}

// VideoDemand is the codec-style demand model over VideoSpec: CPU and
// bandwidth scale with frame rate and color depth, audio cost scales with
// sampling rate and sample size. scale stretches the whole model, letting
// experiments trade load against capacity.
func VideoDemand(scale float64) task.DemandModel {
	if scale <= 0 {
		scale = 1
	}
	return &task.LinearDemand{
		Base: resource.V(
			resource.KV{K: resource.CPU, A: 20 * scale},
			resource.KV{K: resource.Memory, A: 8 * scale},
			resource.KV{K: resource.NetBW, A: 50 * scale},
			resource.KV{K: resource.Energy, A: 10 * scale},
		),
		Coef: map[qos.AttrKey]resource.Vector{
			{Dim: "video", Attr: "frame_rate"}: resource.V(
				resource.KV{K: resource.CPU, A: 6 * scale},
				resource.KV{K: resource.NetBW, A: 30 * scale},
				resource.KV{K: resource.Energy, A: 2 * scale},
			),
			{Dim: "video", Attr: "color_depth"}: resource.V(
				resource.KV{K: resource.CPU, A: 4 * scale},
				resource.KV{K: resource.Memory, A: 2 * scale},
				resource.KV{K: resource.NetBW, A: 15 * scale},
			),
			{Dim: "audio", Attr: "sampling_rate"}: resource.V(
				resource.KV{K: resource.CPU, A: 1.5 * scale},
				resource.KV{K: resource.NetBW, A: 4 * scale},
			),
			{Dim: "audio", Attr: "sample_bits"}: resource.V(
				resource.KV{K: resource.CPU, A: 0.5 * scale},
				resource.KV{K: resource.NetBW, A: 2 * scale},
			),
		},
	}
}

// OffloadSpec describes a compression/decompression pipeline (the
// paper's Section 7 motivation: "playing downloaded movies may require
// decompression ... transmitting data to the Internet from the mobile
// devices may require compression").
func OffloadSpec() *qos.Spec {
	return &qos.Spec{
		Name: "offload",
		Dimensions: []qos.Dimension{
			{
				ID: "throughput", Name: "Processing Throughput",
				Attributes: []qos.Attribute{
					{ID: "blocks_per_s", Name: "blocks per second", Domain: qos.IntRange(1, 60)},
					{ID: "codec", Name: "codec profile", Domain: qos.DiscreteStrings("hq", "main", "fast")},
				},
			},
			{
				ID: "fidelity", Name: "Output Fidelity",
				Attributes: []qos.Attribute{
					{ID: "quantizer", Name: "quantizer", Domain: qos.DiscreteInts(2, 4, 8, 16)},
				},
			},
		},
	}
}

// OffloadRequest prefers fast, high-fidelity processing, degradable all
// the way to 8 blocks/s on the "fast" profile.
func OffloadRequest(service string) qos.Request {
	return qos.Request{
		Service: service,
		Dims: []qos.DimPref{
			{
				Dim: "throughput",
				Attrs: []qos.AttrPref{
					{Attr: "blocks_per_s", Sets: []qos.ValueSet{qos.Span(48, 24), qos.Span(23, 8)}},
					{Attr: "codec", Sets: []qos.ValueSet{
						qos.One(qos.Str("hq")), qos.One(qos.Str("main")), qos.One(qos.Str("fast")),
					}},
				},
			},
			{
				Dim: "fidelity",
				Attrs: []qos.AttrPref{
					{Attr: "quantizer", Sets: []qos.ValueSet{
						qos.One(qos.Int(2)), qos.One(qos.Int(4)), qos.One(qos.Int(8)), qos.One(qos.Int(16)),
					}},
				},
			},
		},
	}
}

// OffloadDemand maps the offload spec to resources: CPU scales with block
// rate and codec quality (hq = index 0 costs most, so invert the quality
// index), fidelity raises memory pressure.
func OffloadDemand(scale float64) task.DemandModel {
	if scale <= 0 {
		scale = 1
	}
	return task.FuncDemand(func(spec *qos.Spec, level qos.Level) (resource.Vector, error) {
		bps, ok := level[qos.AttrKey{Dim: "throughput", Attr: "blocks_per_s"}]
		if !ok {
			return resource.Vector{}, fmt.Errorf("workload: offload level missing blocks_per_s")
		}
		codec := level[qos.AttrKey{Dim: "throughput", Attr: "codec"}]
		quant := level[qos.AttrKey{Dim: "fidelity", Attr: "quantizer"}]
		codecAttr := spec.Attr(qos.AttrKey{Dim: "throughput", Attr: "codec"})
		ci := codecAttr.Domain.IndexOf(codec)
		if ci < 0 {
			return resource.Vector{}, fmt.Errorf("workload: codec %v outside domain", codec)
		}
		codecCost := float64(len(codecAttr.Domain.Values) - ci) // hq=3, main=2, fast=1
		cpu := (10 + bps.Num()*2.2*codecCost) * scale
		mem := (16 + 128/quant.Num()) * scale
		bw := (20 + bps.Num()*4) * scale
		en := (5 + bps.Num()*0.8*codecCost) * scale
		return resource.V(
			resource.KV{K: resource.CPU, A: cpu},
			resource.KV{K: resource.Memory, A: mem},
			resource.KV{K: resource.NetBW, A: bw},
			resource.KV{K: resource.Energy, A: en},
		), nil
	})
}

// StreamService builds a video-streaming service with nTasks independent
// stream tasks (e.g. pipeline stages or concurrent streams) over
// VideoSpec, with demand scaled by scale and data sizes sized for the
// communication-cost criterion.
func StreamService(id string, nTasks int, scale float64) *task.Service {
	svc := &task.Service{ID: id, Spec: VideoSpec()}
	for i := 0; i < nTasks; i++ {
		svc.Tasks = append(svc.Tasks, &task.Task{
			ID:      fmt.Sprintf("t%d", i),
			Request: StreamingRequest(id),
			Demand:  VideoDemand(scale),
			InBytes: 24 * 1024, OutBytes: 8 * 1024,
		})
	}
	return svc
}

// SurveillanceService builds the paper's surveillance example as a
// two-task service (capture+encode, relay).
func SurveillanceService(id string, scale float64) *task.Service {
	svc := &task.Service{ID: id, Spec: VideoSpec()}
	for i, name := range []string{"encode", "relay"} {
		req := SurveillanceRequest()
		req.Service = id
		svc.Tasks = append(svc.Tasks, &task.Task{
			ID:      name,
			Request: req,
			Demand:  VideoDemand(scale * float64(1+i)),
			InBytes: 16 * 1024, OutBytes: 16 * 1024,
		})
	}
	return svc
}

// OffloadService builds an nTasks-way partitioned compression pipeline.
func OffloadService(id string, nTasks int, scale float64) *task.Service {
	svc := &task.Service{ID: id, Spec: OffloadSpec()}
	for i := 0; i < nTasks; i++ {
		svc.Tasks = append(svc.Tasks, &task.Task{
			ID:      fmt.Sprintf("part%d", i),
			Request: OffloadRequest(id),
			Demand:  OffloadDemand(scale),
			InBytes: 64 * 1024, OutBytes: 48 * 1024,
		})
	}
	return svc
}
