package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/workload"
)

// holdCluster builds a cluster whose providers place tentative holds.
func holdCluster(t *testing.T, holdTimeout float64) *core.Cluster {
	t.Helper()
	pcfg := core.DefaultProviderConfig
	pcfg.Hold = true
	pcfg.HoldTimeout = holdTimeout
	cl := core.NewCluster(11, radio.Config{ProcDelay: 0.001}, pcfg)
	for i, p := range []workload.Profile{workload.Phone, workload.Laptop, workload.Laptop} {
		if _, err := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, 3, 10))); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

func TestHoldsConvertToFirmReservations(t *testing.T) {
	cl := holdCluster(t, 2.0)
	svc := workload.StreamService("h1", 2, 1.0)
	var res *core.Result
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	cl.Run(10)
	if res == nil || !res.Complete() {
		t.Fatalf("formation failed: %+v", res)
	}
	// After hold expiry (2 s) plus settle, only firm reservations may
	// remain: winning nodes hold exactly their tasks' demand, losers
	// hold nothing.
	for _, id := range cl.Nodes() {
		n := cl.Node(id)
		held := n.Res.Capacity().Sub(n.Res.Available())
		isWinner := false
		for _, a := range res.Assigned {
			if a.Node == id {
				isWinner = true
			}
		}
		if !isWinner && !held.IsZero() {
			t.Errorf("losing node %d still holds %v after hold expiry", id, held)
		}
		if isWinner && held.IsZero() {
			t.Errorf("winning node %d holds nothing", id)
		}
	}
}

func TestHoldsExpireWithoutAward(t *testing.T) {
	cl := holdCluster(t, 0.5)
	// An organizer that only collects proposals and never awards:
	// providers place holds on CFP; awards never arrive because the
	// service is submitted from a node that fails right after the CFP
	// goes out.
	svc := workload.StreamService("h2", 2, 1.0)
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, nil); err != nil {
		t.Fatal(err)
	}
	// Kill the organizer just after the CFP broadcast but before
	// awards (ProposalWait is 0.25 s).
	cl.Eng.At(0.1, func() { cl.FailNode(0) })
	cl.Run(10)
	for _, id := range cl.Nodes()[1:] {
		n := cl.Node(id)
		held := n.Res.Capacity().Sub(n.Res.Available())
		if !held.IsZero() {
			t.Errorf("node %d leaked a hold: %v", id, held)
		}
	}
}

func TestConcurrentServicesBothComplete(t *testing.T) {
	cl := core.NewCluster(13, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	profiles := []workload.Profile{
		workload.Phone, workload.Phone, workload.Laptop, workload.Laptop,
		workload.PDA, workload.PDA, workload.AccessPoint, workload.Laptop,
	}
	for i, p := range profiles {
		if _, err := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, len(profiles), 10))); err != nil {
			t.Fatal(err)
		}
	}
	var resA, resB *core.Result
	svcA := workload.StreamService("svcA", 3, 1.0)
	svcB := workload.StreamService("svcB", 3, 1.0)
	if _, err := cl.Submit(0, 0, svcA, core.DefaultOrganizerConfig, func(r *core.Result) {
		if resA == nil {
			resA = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(0, 1, svcB, core.DefaultOrganizerConfig, func(r *core.Result) {
		if resB == nil {
			resB = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	cl.Run(20)
	if resA == nil || resB == nil {
		t.Fatal("one of the concurrent formations never completed")
	}
	if !resA.Complete() || !resB.Complete() {
		t.Fatalf("unserved tasks: A=%v B=%v", resA.Unserved, resB.Unserved)
	}
	// No node may be over-committed.
	for _, id := range cl.Nodes() {
		n := cl.Node(id)
		if !n.Res.Available().Nonnegative() {
			t.Errorf("node %d over-committed: %v", id, n.Res.Available())
		}
	}
}

func TestSameServiceIDOnDifferentOrganizers(t *testing.T) {
	// Two users may coincidentally pick the same service ID on
	// different nodes; the cluster keys organizers per node so both
	// negotiations proceed (providers share the catalog entry).
	cl := holdCluster(t, 2.0)
	svc1 := workload.StreamService("dup", 1, 0.5)
	svc2 := workload.StreamService("dup", 1, 0.5)
	var r1, r2 *core.Result
	if _, err := cl.Submit(0, 0, svc1, core.DefaultOrganizerConfig, func(r *core.Result) { r1 = r }); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(0, 1, svc2, core.DefaultOrganizerConfig, func(r *core.Result) { r2 = r }); err != nil {
		t.Fatal(err)
	}
	cl.Run(20)
	if r1 == nil || r2 == nil {
		t.Fatal("a negotiation stalled")
	}
}

func TestProviderStatsAccumulate(t *testing.T) {
	cl := holdCluster(t, 2.0)
	svc := workload.StreamService("h3", 2, 1.0)
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(5)
	var cfps, proposals int
	for _, id := range cl.Nodes() {
		p := cl.Node(id).Provider
		cfps += p.CFPs
		proposals += p.Proposals
	}
	if cfps == 0 || proposals == 0 {
		t.Errorf("stats not collected: cfps=%d proposals=%d", cfps, proposals)
	}
}

func TestTraceTimelineCoversProtocol(t *testing.T) {
	ring := trace.NewRing(256)
	pcfg := core.DefaultProviderConfig
	pcfg.Trace = ring
	cl := core.NewCluster(17, radio.Config{ProcDelay: 0.001}, pcfg)
	for i, p := range []workload.Profile{workload.Phone, workload.Laptop, workload.Laptop} {
		if _, err := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, 3, 10))); err != nil {
			t.Fatal(err)
		}
	}
	ocfg := core.DefaultOrganizerConfig
	ocfg.Trace = ring
	svc := workload.StreamService("tr", 2, 1.0)
	var res *core.Result
	org, err := cl.Submit(0, 0, svc, ocfg, func(r *core.Result) {
		if res == nil {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(3)
	org.Dissolve("trace test")
	cl.Run(4)
	if res == nil || !res.Complete() {
		t.Fatalf("formation failed: %+v", res)
	}
	for _, kind := range []string{"cfp", "propose", "select", "reserve", "formed", "dissolve"} {
		if len(ring.Filter(kind)) == 0 {
			t.Errorf("no %q events in the timeline:\n%s", kind, ring.String())
		}
	}
	// Events must be clock-ordered per the single-threaded simulator.
	ev := ring.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].T < ev[i-1].T {
			t.Fatalf("timeline out of order at %d: %v after %v", i, ev[i].T, ev[i-1].T)
		}
	}
}

func TestReleaseServiceIdempotent(t *testing.T) {
	cl := holdCluster(t, 2.0)
	svc := workload.StreamService("h4", 1, 0.5)
	var res *core.Result
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	cl.Run(5)
	if res == nil || !res.Complete() {
		t.Fatal("formation failed")
	}
	winner := cl.Node(res.Assigned["t0"].Node)
	winner.Provider.ReleaseService("h4")
	winner.Provider.ReleaseService("h4") // second release is a no-op
	if winner.Res.Available() != winner.Res.Capacity() {
		t.Error("ReleaseService did not free the reservation")
	}
}
