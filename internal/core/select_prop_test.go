package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
)

// genProblem builds a random selection instance from a seed.
func genProblem(seed int64) ([]string, map[string][]Candidate) {
	rng := rand.New(rand.NewSource(seed))
	nTasks := 1 + rng.Intn(6)
	nNodes := 1 + rng.Intn(10)
	level := qos.Level{{Dim: "d", Attr: "a"}: qos.Int(1)}
	var tasks []string
	cands := make(map[string][]Candidate)
	for t := 0; t < nTasks; t++ {
		tid := fmt.Sprintf("t%d", t)
		tasks = append(tasks, tid)
		for n := 0; n < nNodes; n++ {
			if rng.Float64() < 0.3 {
				continue // this node made no offer for this task
			}
			cands[tid] = append(cands[tid], Candidate{
				Node: radio.NodeID(n), TaskID: tid, Level: level,
				Distance: float64(rng.Intn(20)) * 0.05,
				CommCost: rng.Float64(),
				Copies:   1 + rng.Intn(4),
			})
		}
	}
	return tasks, cands
}

// TestSelectInvariants property-checks winner selection across policies:
//  1. every task appears exactly once (assigned xor unserved);
//  2. assignments only use offered candidates;
//  3. no node exceeds its hinted capacity budget;
//  4. a task with at least one candidate on an unsaturated node is
//     never left unserved.
func TestSelectInvariants(t *testing.T) {
	policies := []SelectionPolicy{
		{},
		{DistanceEps: 0.05, UseCommCost: true},
		{DistanceEps: 0.05, UseCommCost: true, Consolidate: true},
		{DistanceEps: 0.1, UseCommCost: true, Spread: true},
	}
	f := func(seed int64) bool {
		tasks, cands := genProblem(seed)
		for _, pol := range policies {
			sel := SelectWinners(tasks, cands, pol)
			seen := make(map[string]int)
			budget := make(map[radio.NodeID]float64)
			for _, a := range sel.Assigned {
				seen[a.TaskID]++
				// (2) the assignment must match an actual offer.
				found := false
				for _, c := range cands[a.TaskID] {
					if c.Node == a.Node && c.Distance == a.Distance {
						found = true
						budget[a.Node] += c.budgetCost()
						break
					}
				}
				if !found {
					t.Logf("policy %+v seed %d: fabricated assignment %+v", pol, seed, a)
					return false
				}
			}
			for _, tid := range sel.Unserved {
				seen[tid]++
			}
			// (1) exact partition of the task list.
			if len(seen) != len(tasks) {
				t.Logf("policy %+v seed %d: partition broken", pol, seed)
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
			// (3) budgets respected.
			for node, b := range budget {
				if b > 1+1e-6 {
					t.Logf("policy %+v seed %d: node %d over budget %v", pol, seed, node, b)
					return false
				}
			}
			// (4) no spurious unserved: every unserved task must have
			// all its candidates on saturated nodes.
			for _, tid := range sel.Unserved {
				for _, c := range cands[tid] {
					if budget[c.Node]+c.budgetCost() <= 1+1e-9 {
						t.Logf("policy %+v seed %d: task %s unserved though node %d had budget", pol, seed, tid, c.Node)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConsolidateShrinksMembersOnAverage checks criterion (c) in
// aggregate: both the consolidation pass and the plain policy are greedy
// heuristics, so no per-instance dominance holds, but across many random
// instances consolidation must yield strictly fewer distinct members in
// total and never lose service coverage.
func TestConsolidateShrinksMembersOnAverage(t *testing.T) {
	var plainMembers, consMembers, plainServed, consServed int
	for seed := int64(0); seed < 500; seed++ {
		tasks, cands := genProblem(seed)
		plain := SelectWinners(tasks, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true})
		cons := SelectWinners(tasks, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true, Consolidate: true})
		plainMembers += len(plain.Members())
		consMembers += len(cons.Members())
		plainServed += len(plain.Assigned)
		consServed += len(cons.Assigned)
	}
	// Coverage must stay essentially equal (both passes are greedy and
	// can strand a task the other serves; single-round differences are
	// recovered by renegotiation rounds in the full protocol). Allow
	// 0.5% slack, require a real member reduction.
	if float64(consServed) < 0.995*float64(plainServed) {
		t.Errorf("consolidation lost coverage: %d vs %d tasks served", consServed, plainServed)
	}
	if consMembers >= plainMembers {
		t.Errorf("consolidation did not shrink coalitions: %d vs %d total members", consMembers, plainMembers)
	}
	t.Logf("500 instances: members %d (consolidate) vs %d (plain), served %d vs %d",
		consMembers, plainMembers, consServed, plainServed)
}

// TestClusterDeterminism: identical seeds and scenarios must produce
// identical formation outcomes, event counts and radio statistics.
func TestClusterDeterminism(t *testing.T) {
	run := func() (string, uint64) {
		cl := buildClusterForDeterminism(t)
		var res *Result
		svc := deterministicService()
		if _, err := cl.Submit(0, 0, svc, DefaultOrganizerConfig, func(r *Result) {
			if res == nil {
				res = r
			}
		}); err != nil {
			t.Fatal(err)
		}
		cl.Run(10)
		if res == nil {
			t.Fatal("no result")
		}
		sig := fmt.Sprintf("%d|%v|%.9f", res.Rounds, res.Unserved, res.MeanDistance())
		for _, tid := range []string{"s0", "s1", "s2"} {
			if a, ok := res.Assigned[tid]; ok {
				sig += fmt.Sprintf("|%s->%d@%.9f", tid, a.Node, a.Distance)
			}
		}
		return sig, cl.Eng.Processed
	}
	sigA, evA := run()
	sigB, evB := run()
	if sigA != sigB {
		t.Errorf("outcomes differ:\n%s\n%s", sigA, sigB)
	}
	if evA != evB {
		t.Errorf("event counts differ: %d vs %d", evA, evB)
	}
}

// The determinism fixtures are built by hand (package workload would be
// an import cycle from an internal core test).

func detSpec() *qos.Spec {
	return &qos.Spec{
		Name: "det",
		Dimensions: []qos.Dimension{
			{ID: "q", Attributes: []qos.Attribute{
				{ID: "rate", Domain: qos.IntRange(1, 20)},
				{ID: "depth", Domain: qos.DiscreteInts(1, 2, 4, 8)},
			}},
		},
	}
}

func detRequest() qos.Request {
	return qos.Request{
		Service: "det",
		Dims: []qos.DimPref{{
			Dim: "q",
			Attrs: []qos.AttrPref{
				{Attr: "rate", Sets: []qos.ValueSet{qos.Span(20, 5)}},
				{Attr: "depth", Sets: []qos.ValueSet{
					qos.One(qos.Int(8)), qos.One(qos.Int(4)), qos.One(qos.Int(2)),
				}},
			},
		}},
	}
}

func deterministicService() *task.Service {
	svc := &task.Service{ID: "det", Spec: detSpec()}
	for i := 0; i < 3; i++ {
		svc.Tasks = append(svc.Tasks, &task.Task{
			ID:      fmt.Sprintf("s%d", i),
			Request: detRequest(),
			Demand: &task.LinearDemand{
				Base: resource.V(resource.KV{K: resource.CPU, A: 10}),
				Coef: map[qos.AttrKey]resource.Vector{
					{Dim: "q", Attr: "rate"}:  resource.V(resource.KV{K: resource.CPU, A: 4}),
					{Dim: "q", Attr: "depth"}: resource.V(resource.KV{K: resource.Memory, A: 3}),
				},
			},
			InBytes: 4096, OutBytes: 1024,
		})
	}
	return svc
}

func buildClusterForDeterminism(t *testing.T) *Cluster {
	t.Helper()
	cl := NewCluster(99, radio.Config{ProcDelay: 0.001, LossProb: 0.1}, DefaultProviderConfig)
	caps := []float64{60, 100, 200, 150, 90}
	for i, cpu := range caps {
		spec := NodeSpec{
			ID:       radio.NodeID(i),
			Mobility: GridPlacement(i, len(caps), 10),
			RangeM:   80, Bitrate: 2e6,
			Capacity: resource.V(resource.KV{K: resource.CPU, A: cpu}, resource.KV{K: resource.Memory, A: 64}),
		}
		if _, err := cl.AddNode(spec); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}
